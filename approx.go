package lof

import (
	"context"
	"fmt"

	"lof/internal/approx"
	"lof/internal/core"
	"lof/internal/matdb"
)

// DefaultPruneEps is the certification half-width of the approximate fast
// paths when callers pass a non-positive eps: pruned scores are reported as
// 1 with the exact value provably inside [1/(1+eps), 1+eps].
const DefaultPruneEps = approx.DefaultEps

// coresetSeed fixes the systematic-resampling offset so every replica
// deriving a coreset from the same model selects the same points.
const coresetSeed int64 = 0x10F5EED

// PrunedResult is the outcome of a pruned fit: exact sweep scores for the
// uncertain frontier, certified ≈1 for everything pruned.
type PrunedResult struct {
	// Scores holds one aggregated LOF per fitted object: exactly the full
	// sweep's value (bit for bit) for frontier objects, 1 for pruned ones.
	Scores []float64
	// Pruned marks the objects certified as LOF ≈ 1 without evaluation.
	Pruned []bool
	// Lower and Upper are the certified per-object LOF intervals: the exact
	// LOF at every swept MinPts provably lies within.
	Lower, Upper []float64
	// Frontier is the number of objects evaluated exactly.
	Frontier int
	// Eps is the certification half-width actually used.
	Eps float64

	model *Model
}

// PrunedCount returns the number of objects certified without evaluation.
func (r *PrunedResult) PrunedCount() int { return len(r.Pruned) - r.Frontier }

// Model returns the fitted model behind this pruned fit. The model is the
// same as a full fit's — pruning skips score evaluation, not fitting — so
// out-of-sample scoring through it is exact.
func (r *PrunedResult) Model() *Model { return r.model }

// FitPruned is the approximate counterpart of Fit: it materializes exactly
// like a full fit, then certifies dense-core objects as LOF ≈ 1 from
// k-distance/reachability bounds and runs the MinPts sweep only over the
// uncertain frontier. Frontier scores are bit-identical to Fit's; pruned
// objects report 1 with the exact value provably in [1/(1+eps), 1+eps].
// A non-positive eps means DefaultPruneEps. On clustered data the frontier
// is a small fraction of the input, which is where the speedup over the
// full sweep comes from.
func (d *Detector) FitPruned(data [][]float64, eps float64) (*PrunedResult, error) {
	return d.FitPrunedContext(context.Background(), data, eps)
}

// FitPrunedContext is FitPruned under cooperative cancellation, with the
// same polling points as FitContext.
func (d *Detector) FitPrunedContext(ctx context.Context, data [][]float64, eps float64) (*PrunedResult, error) {
	pts, err := toPoints(data)
	if err != nil {
		return nil, err
	}
	if d.cfg.Weights != nil && len(d.cfg.Weights) != pts.Dim() {
		return nil, fmt.Errorf("lof: %d weights for %d-dimensional data", len(d.cfg.Weights), pts.Dim())
	}
	if pts.Len() <= d.cfg.MinPtsUB {
		return nil, fmt.Errorf("lof: %d objects cannot support MinPtsUB=%d; need at least %d",
			pts.Len(), d.cfg.MinPtsUB, d.cfg.MinPtsUB+1)
	}
	ix, err := d.buildIndex(pts, nil)
	if err != nil {
		return nil, err
	}
	opts := []matdb.Option{matdb.WithPool(d.pool), matdb.WithContext(ctx)}
	if d.cfg.Distinct {
		opts = append(opts, matdb.Distinct())
	}
	db, err := matdb.Materialize(pts, ix, d.cfg.MinPtsUB, opts...)
	if err != nil {
		return nil, err
	}
	pr, err := approx.PruneSweep(ctx, db, d.cfg.MinPtsLB, d.cfg.MinPtsUB, eps, d.cfg.coreAggregate(), d.pool)
	if err != nil {
		return nil, err
	}
	sc, err := core.NewScorer(pts, ix, db, d.metric, d.cfg.MinPtsLB, d.cfg.MinPtsUB)
	if err != nil {
		return nil, err
	}
	m := &Model{
		cfg: d.cfg, metric: d.metric, pts: pts, ix: ix, db: db,
		scorer: sc.WithPool(d.pool), pool: d.pool,
	}
	d.model.Store(m)
	return &PrunedResult{
		Scores: pr.Scores, Pruned: pr.Pruned, Lower: pr.Lower, Upper: pr.Upper,
		Frontier: pr.Frontier, Eps: pr.Eps, model: m,
	}, nil
}

func (c Config) coreAggregate() core.Aggregate {
	switch c.Aggregation {
	case AggregateMean:
		return core.AggMean
	case AggregateMin:
		return core.AggMin
	default:
		return core.AggMax
	}
}

// PrunedBatch is the outcome of an approximate batch score: exact scores
// for uncertain queries, certified ≈1 for the rest.
type PrunedBatch struct {
	// Scores holds one aggregated LOF per query, in input order: the
	// bit-exact out-of-sample score for uncertain queries, 1 for certified
	// ones.
	Scores []float64
	// Pruned marks the queries whose score was certified without a full
	// evaluation.
	Pruned []bool
	// Certified is the number of pruned queries.
	Certified int
	// Eps is the certification half-width actually used.
	Eps float64
}

// ScoreBatchPruned is the approximate counterpart of ScoreBatch: each query
// is probed once for its merged neighborhood, certified against the pruning
// bounds, and fully evaluated only when the bounds cannot place its LOF
// inside [1/(1+eps), 1+eps]. Certified queries report 1 and skip merged-row
// assembly and per-MinPts evaluation entirely — the fast path costs one kNN
// probe plus an O(k²) bound computation. Uncertain queries produce scores
// bit-identical to ScoreBatch. A non-positive eps means DefaultPruneEps.
func (m *Model) ScoreBatchPruned(queries [][]float64, eps float64) (*PrunedBatch, error) {
	return m.ScoreBatchPrunedContext(context.Background(), queries, eps)
}

// ScoreBatchPrunedContext is ScoreBatchPruned under cooperative
// cancellation, with ScoreBatchContext's polling behavior.
func (m *Model) ScoreBatchPrunedContext(ctx context.Context, queries [][]float64, eps float64) (*PrunedBatch, error) {
	if eps <= 0 {
		eps = DefaultPruneEps
	}
	for i, q := range queries {
		if err := m.validateQuery(q); err != nil {
			return nil, fmt.Errorf("lof: batch row %d: %w", i, err)
		}
	}
	lb, ub := m.scorer.MinPtsRange()
	out := &PrunedBatch{
		Scores: make([]float64, len(queries)),
		Pruned: make([]bool, len(queries)),
		Eps:    eps,
	}
	errs := make([]error, len(queries))
	certified := make([]int64, len(queries))
	if err := m.pool.EachCtx(ctx, len(queries), func(i int) {
		qRow := m.scorer.QueryRow(queries[i])
		if lower, upper := approx.QueryBounds(m.db, qRow, lb, ub); approx.Certified(lower, upper, eps) {
			out.Scores[i] = 1
			out.Pruned[i] = true
			certified[i] = 1
			return
		}
		series, err := m.scorer.ScoreSeriesFromRow(ctx, queries[i], qRow)
		if err != nil {
			errs[i] = err
			return
		}
		out.Scores[i] = core.ScoreAggregate(series, m.coreAggregate())
	}); err != nil {
		return nil, fmt.Errorf("lof: batch cancelled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lof: batch row %d: %w", i, err)
		}
	}
	for _, c := range certified {
		out.Certified += int(c)
	}
	return out, nil
}

// Coreset returns a model refitted on an importance-weighted sample of at
// most n fitted points — the principled upgrade of Subsample's stride
// sampling. Points are drawn by sensitivity (Lucic/Bachem/Krause):
// selection probability mixes a uniform floor with a term proportional to
// the point's k-distance, so sparse regions — cluster fringes, small
// clusters, the places a stride sample decimates first and whose absence
// distorts downstream LOF scores the most — are preferentially retained.
// The draw is deterministic (fixed seed, systematic resampling), so every
// replica deriving a coreset from the same model selects the same points.
// n must exceed the configured MinPtsUB; when the model already has at most
// n points the receiver itself is returned.
func (m *Model) Coreset(n int) (*Model, error) {
	total := m.pts.Len()
	if n >= total {
		return m, nil
	}
	if n <= m.cfg.MinPtsUB {
		return nil, fmt.Errorf("lof: coreset of %d cannot support MinPtsUB=%d; need at least %d",
			n, m.cfg.MinPtsUB, m.cfg.MinPtsUB+1)
	}
	indices, _, err := approx.Coreset(m.db, m.cfg.MinPtsUB, n, coresetSeed)
	if err != nil {
		return nil, fmt.Errorf("lof: coreset draw: %w", err)
	}
	data := make([][]float64, len(indices))
	for i, src := range indices {
		row := make([]float64, m.pts.Dim())
		copy(row, m.pts.At(src))
		data[i] = row
	}
	cfg := m.cfg.clone()
	cfg.MinPts = 0 // normalized configs carry the range in MinPtsLB/UB
	det, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("lof: coreset config: %w", err)
	}
	res, err := det.Fit(data)
	if err != nil {
		return nil, fmt.Errorf("lof: coreset refit: %w", err)
	}
	return res.Model()
}
