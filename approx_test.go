package lof

import (
	"math"
	"math/rand"
	"testing"
)

// approxTestData builds clustered data with a few far outliers — the
// dense-core workload the pruned paths are designed to certify.
func approxTestData(rng *rand.Rand, n int) [][]float64 {
	data := make([][]float64, 0, n+4)
	for i := 0; i < n; i++ {
		c := float64(i%3) * 15
		data = append(data, []float64{c + rng.NormFloat64(), c + rng.NormFloat64()})
	}
	data = append(data,
		[]float64{60, -40}, []float64{-35, 55}, []float64{100, 100}, []float64{-60, -60})
	return data
}

// TestFitPrunedOracle: a pruned fit must agree with the exact fit on every
// unpruned object at the Float64bits level, and every pruned object's exact
// score must lie inside the certified band. On clustered data a meaningful
// fraction must actually be pruned and the planted outliers never.
func TestFitPrunedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := approxTestData(rng, 600)
	for _, agg := range []Aggregation{AggregateMax, AggregateMean, AggregateMin} {
		cfg := Config{Aggregation: agg, Workers: 1}
		det, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		exactRes, err := det.Fit(data)
		if err != nil {
			t.Fatal(err)
		}
		exact := exactRes.Scores()
		pr, err := det.FitPruned(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Eps != DefaultPruneEps {
			t.Fatalf("eps = %v, want default %v", pr.Eps, DefaultPruneEps)
		}
		if pr.PrunedCount() < len(data)/2 {
			t.Fatalf("agg %v: only %d of %d pruned on a dense-core dataset", agg, pr.PrunedCount(), len(data))
		}
		lo, hi := 1/(1+pr.Eps), 1+pr.Eps
		for i, v := range exact {
			if pr.Pruned[i] {
				if v < lo*(1-1e-12) || v > hi*(1+1e-12) {
					t.Fatalf("agg %v: pruned object %d has exact score %v outside [%v, %v]", agg, i, v, lo, hi)
				}
				if pr.Scores[i] != 1 {
					t.Fatalf("agg %v: pruned object %d reported %v", agg, i, pr.Scores[i])
				}
				continue
			}
			if math.Float64bits(pr.Scores[i]) != math.Float64bits(v) {
				t.Fatalf("agg %v: frontier object %d diverged: %v vs exact %v", agg, i, pr.Scores[i], v)
			}
		}
		for i := len(data) - 4; i < len(data); i++ {
			if pr.Pruned[i] {
				t.Fatalf("agg %v: planted outlier %d (exact %v) was pruned", agg, i, exact[i])
			}
		}
		if pr.Model() == nil {
			t.Fatal("pruned fit returned no model")
		}
	}
}

// TestScoreBatchPrunedOracle: certified queries really have out-of-sample
// scores in the band, uncertain ones are bit-identical to ScoreBatch, and
// near-cluster queries do take the fast path.
func TestScoreBatchPrunedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := approxTestData(rng, 500)
	det, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]float64, 0, 48)
	for i := 0; i < 40; i++ {
		base := data[rng.Intn(500)]
		queries = append(queries, []float64{base[0] + rng.NormFloat64()*0.2, base[1] + rng.NormFloat64()*0.2})
	}
	for i := 0; i < 8; i++ {
		queries = append(queries, []float64{rng.Float64()*300 - 150, rng.Float64()*300 - 150})
	}
	exact, err := m.ScoreBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := m.ScoreBatchPruned(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Certified == 0 {
		t.Fatal("no query certified; the pruned serving path would never fast-path")
	}
	lo, hi := 1/(1+pb.Eps), 1+pb.Eps
	for i, v := range exact {
		if pb.Pruned[i] {
			if v < lo*(1-1e-12) || v > hi*(1+1e-12) {
				t.Fatalf("query %d certified but exact score %v outside [%v, %v]", i, v, lo, hi)
			}
			if pb.Scores[i] != 1 {
				t.Fatalf("certified query %d reported %v", i, pb.Scores[i])
			}
			continue
		}
		if math.Float64bits(pb.Scores[i]) != math.Float64bits(v) {
			t.Fatalf("uncertain query %d diverged: %v vs %v", i, pb.Scores[i], v)
		}
	}
	var n int
	for _, p := range pb.Pruned {
		if p {
			n++
		}
	}
	if n != pb.Certified {
		t.Fatalf("Certified=%d but %d marks set", pb.Certified, n)
	}
}

// TestCoresetModel: the coreset refit is deterministic, respects the
// MinPtsUB floor, retains planted outlier regions, and carries the metric
// configuration (including feature weights) into the derived model.
func TestCoresetModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := approxTestData(rng, 400)
	det, err := New(Config{Weights: []float64{1, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Coreset(m.Config().MinPtsUB); err == nil {
		t.Fatal("coreset at MinPtsUB should be rejected")
	}
	if cm, err := m.Coreset(m.Len() + 5); err != nil || cm != m {
		t.Fatalf("oversized coreset should return the receiver, got %v (%v)", cm, err)
	}
	cm, err := m.Coreset(120)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Len() != 120 {
		t.Fatalf("coreset model has %d points, want 120", cm.Len())
	}
	if w := cm.Config().Weights; len(w) != 2 || w[0] != 1 || w[1] != 2.5 {
		t.Fatalf("coreset dropped metric weights: %v", w)
	}
	cm2, err := m.Coreset(120)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q := []float64{rng.Float64() * 40, rng.Float64() * 40}
		a, errA := cm.Score(q)
		b, errB := cm2.Score(q)
		if errA != nil || errB != nil || math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("coreset draw not deterministic: %v (%v) vs %v (%v)", a, errA, b, errB)
		}
	}
	// An outlier far from every cluster must still look outlying to the
	// coreset model: sensitivity sampling keeps the sparse regions that give
	// the score its contrast.
	score, err := cm.Score([]float64{200, 200})
	if err != nil {
		t.Fatal(err)
	}
	if score < 1.5 {
		t.Fatalf("coreset model scores a far outlier %v; sparse regions were lost", score)
	}
}

// TestSubsampleEdgeCases covers the stride sampler's boundaries: a request
// covering the whole model returns the receiver, the MinPtsUB floor is
// enforced exactly, metric weights survive the refit, and the stride is
// deterministic.
func TestSubsampleEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	data := approxTestData(rng, 200)
	det, err := New(Config{MinPtsLB: 5, MinPtsUB: 12, Weights: []float64{0.5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	if sm, err := m.Subsample(m.Len()); err != nil || sm != m {
		t.Fatalf("full-size subsample should return the receiver, got %v (%v)", sm, err)
	}
	if sm, err := m.Subsample(m.Len() * 10); err != nil || sm != m {
		t.Fatalf("oversized subsample should return the receiver, got %v (%v)", sm, err)
	}
	if _, err := m.Subsample(12); err == nil {
		t.Fatal("subsample of MinPtsUB points should be rejected")
	}
	if _, err := m.Subsample(0); err == nil {
		t.Fatal("empty subsample should be rejected")
	}
	sm, err := m.Subsample(13) // smallest legal size
	if err != nil {
		t.Fatal(err)
	}
	if sm.Len() != 13 {
		t.Fatalf("subsample has %d points, want 13", sm.Len())
	}
	if w := sm.Config().Weights; len(w) != 2 || w[0] != 0.5 || w[1] != 3 {
		t.Fatalf("subsample dropped metric weights: %v", w)
	}
	if lb, ub := sm.Config().MinPtsLB, sm.Config().MinPtsUB; lb != 5 || ub != 12 {
		t.Fatalf("subsample changed MinPts range to [%d, %d]", lb, ub)
	}
	sm2, err := m.Subsample(13)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{7, 7}
	a, _ := sm.Score(q)
	b, _ := sm2.Score(q)
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("stride subsample not deterministic: %v vs %v", a, b)
	}
}
