// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each benchmark
// runs the same code path as the corresponding lofexp experiment; custom
// metrics report the headline quantities (LOF values, ranks) so a bench run
// doubles as a regression check of the reproduced results.
//
//	go test -bench=. -benchmem
package lof_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"lof"
	"lof/internal/core"
	"lof/internal/dataset"
	"lof/internal/exp"
	"lof/internal/index"
	"lof/internal/index/kdtree"
	"lof/internal/index/linear"
	"lof/internal/matdb"
)

const benchSeed = 42

// BenchmarkFig1DS1 regenerates the figure 1 experiment: LOF isolates o1 and
// o2 on DS1 while the DB(pct,dmin) sweep cannot isolate o2.
func BenchmarkFig1DS1(b *testing.B) {
	var r *exp.DS1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunDS1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.LOFO1, "LOF(o1)")
	b.ReportMetric(r.LOFO2, "LOF(o2)")
	b.ReportMetric(float64(r.RankO2+1), "rank(o2)")
}

// BenchmarkFig3Theorem1 regenerates the theorem 1 bound demonstration.
func BenchmarkFig3Theorem1(b *testing.B) {
	var r *exp.Thm1DemoResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunThm1Demo(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Lower, "LOF-lower")
	b.ReportMetric(r.Upper, "LOF-upper")
	b.ReportMetric(r.Actual, "LOF-actual")
}

// BenchmarkFig4BoundSpread regenerates the analytic bound-spread series.
func BenchmarkFig4BoundSpread(b *testing.B) {
	var r *exp.Fig4Result
	for i := 0; i < b.N; i++ {
		r = exp.RunFig4()
	}
	last := len(r.Ratios) - 1
	b.ReportMetric(r.LOFMax[2][last]-r.LOFMin[2][last], "spread@pct10-ratio10")
}

// BenchmarkFig5RelativeSpan regenerates the closed-form relative-span curve.
func BenchmarkFig5RelativeSpan(b *testing.B) {
	var r *exp.Fig5Result
	for i := 0; i < b.N; i++ {
		r = exp.RunFig5()
	}
	b.ReportMetric(r.Spans[len(r.Spans)-1], "span@pct99")
}

// BenchmarkFig6Theorem2 regenerates the multi-cluster bound demonstration.
func BenchmarkFig6Theorem2(b *testing.B) {
	var r *exp.Thm2DemoResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunThm2Demo(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Thm1Upper-r.Thm1Lower, "thm1-spread")
	b.ReportMetric(r.Thm2Upper-r.Thm2Lower, "thm2-spread")
}

// BenchmarkFig7GaussianSweep regenerates the LOF-fluctuation experiment
// (MinPts 2..50 inside one Gaussian cluster).
func BenchmarkFig7GaussianSweep(b *testing.B) {
	var r *exp.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunFig7(benchSeed, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Max[0], "maxLOF@MinPts2")
	b.ReportMetric(r.Max[len(r.Max)-1], "maxLOF@MinPts50")
}

// BenchmarkFig8Ranges regenerates the LOF-vs-MinPts curves for the three
// cluster sizes (10/35/500).
func BenchmarkFig8Ranges(b *testing.B) {
	var r *exp.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunFig8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxS1, "maxLOF-S1")
	b.ReportMetric(r.MaxS2, "maxLOF-S2")
	b.ReportMetric(r.MaxS3, "maxLOF-S3")
}

// BenchmarkFig9Surface regenerates the LOF surface of the four-cluster
// dataset at MinPts=40.
func BenchmarkFig9Surface(b *testing.B) {
	var r *exp.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunFig9(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MinOutlierLOF, "min-outlier-LOF")
	b.ReportMetric(r.UniformMax, "uniform-max-LOF")
}

// BenchmarkHockeyTest1 regenerates section 7.2 test 1 (points, plus-minus,
// penalty minutes).
func BenchmarkHockeyTest1(b *testing.B) {
	var r *exp.HockeyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunHockey(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.RankOf["Vladimir Konstantinov"]), "rank-konstantinov")
	b.ReportMetric(float64(r.RankOf["Matthew Barnaby"]), "rank-barnaby")
}

// BenchmarkHockeyTest2 regenerates section 7.2 test 2 (games, goals,
// shooting percentage).
func BenchmarkHockeyTest2(b *testing.B) {
	var r *exp.HockeyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunHockey(benchSeed, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.RankOf["Chris Osgood"]), "rank-osgood")
	b.ReportMetric(float64(r.RankOf["Mario Lemieux"]), "rank-lemieux")
	b.ReportMetric(float64(r.RankOf["Steve Poapst"]), "rank-poapst")
}

// BenchmarkTable3Soccer regenerates the Table 3 soccer experiment.
func BenchmarkTable3Soccer(b *testing.B) {
	var r *exp.SoccerResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunSoccer(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Outliers)), "outliers>1.5")
	if len(r.Outliers) > 0 {
		b.ReportMetric(r.Outliers[0].Score, "top-LOF")
	}
}

// BenchmarkHighDim64 regenerates the 64-dimensional color-histogram
// experiment.
func BenchmarkHighDim64(b *testing.B) {
	var r *exp.HighDimResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunHighDim(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxOutlierLOF, "max-outlier-LOF")
	b.ReportMetric(float64(r.PlantedInTop), "planted-in-top")
}

// BenchmarkFig10Materialization measures step 1 (index build + kNN
// materialization, MinPtsUB=50) across the paper's dimensionalities. The
// per-op time is the figure's y value; sweep n via -bench and compare.
func BenchmarkFig10Materialization(b *testing.B) {
	for _, dim := range []int{2, 5, 10, 20} {
		for _, n := range []int{2000, 8000} {
			b.Run(fmt.Sprintf("d=%d/n=%d", dim, n), func(b *testing.B) {
				d := dataset.RandomClusters(benchSeed, n, dim, 10)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ix := kdtree.New(d.Points, nil)
					if _, err := matdb.Materialize(d.Points, ix, 50); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig11LOFStep measures step 2 (two scans per MinPts in 10..50
// over the materialization database) — the paper shows it is linear in n.
func BenchmarkFig11LOFStep(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := dataset.RandomClusters(benchSeed, n, 2, 10)
			ix := kdtree.New(d.Points, nil)
			db, err := matdb.Materialize(d.Points, ix, 50)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweep(db, 10, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndexes compares the materialization cost under each
// index structure on one workload (the IndexAuto design choice).
func BenchmarkAblationIndexes(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 4000, 5, 10)
	for _, kind := range []lof.IndexKind{lof.IndexLinear, lof.IndexGrid, lof.IndexKDTree, lof.IndexXTree, lof.IndexVAFile} {
		b.Run(kind.String(), func(b *testing.B) {
			rows := make([][]float64, d.Len())
			for i := range rows {
				rows[i] = d.Points.At(i)
			}
			det, err := lof.New(lof.Config{MinPts: 20, Index: kind})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Fit(rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaterialization contrasts the paper's two-step algorithm
// with naive per-MinPts recomputation over the index.
func BenchmarkAblationMaterialization(b *testing.B) {
	const lb, ub = 10, 30
	d := dataset.RandomClusters(benchSeed, 1500, 2, 5)
	ix := kdtree.New(d.Points, nil)
	b.Run("two-step", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := matdb.Materialize(d.Points, ix, ub)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Sweep(db, lb, ub); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for minPts := lb; minPts <= ub; minPts++ {
				core.NaiveLOFs(ix, func(j int) []index.Neighbor {
					return index.KNNWithTies(ix, d.Points.At(j), minPts, j)
				}, minPts)
			}
		}
	})
}

// BenchmarkAblationReachVsRaw quantifies the reach-dist smoothing design
// choice: LOF standard deviation inside a uniform cluster with and without
// Definition 5's smoothing.
func BenchmarkAblationReachVsRaw(b *testing.B) {
	var r *exp.AblationReachResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunAblationReach(benchSeed, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ReachStd, "reach-std")
	b.ReportMetric(r.RawStd, "raw-std")
}

// BenchmarkAblationAggregators compares max/mean/min aggregation over the
// MinPts range (the Sec. 6.2 heuristic).
func BenchmarkAblationAggregators(b *testing.B) {
	var r *exp.AblationAggregatesResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunAblationAggregates(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxScore, "max-agg-score")
	b.ReportMetric(r.MinScore, "min-agg-score")
}

// BenchmarkQualityComparison regenerates the detection-quality study: LOF
// vs the global rankings on planted local+global outliers.
func BenchmarkQualityComparison(b *testing.B) {
	var r *exp.QualityResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunQuality(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Methods[0].AUC, "LOF-AUC")
	b.ReportMetric(r.Methods[1].AUC, "kNN-AUC")
	b.ReportMetric(float64(r.LocalFoundLOF), "locals-found-LOF")
	b.ReportMetric(float64(r.LocalFoundKNN), "locals-found-kNN")
}

// BenchmarkNoiseVsLOF regenerates the clustering-noise comparison on the
// figure 9 dataset.
func BenchmarkNoiseVsLOF(b *testing.B) {
	var r *exp.NoiseVsLOFResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = exp.RunNoiseVsLOF(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.NoiseSize), "noise-size")
	b.ReportMetric(r.AUCLOF, "LOF-AUC")
}

// BenchmarkStreamInsert measures the incremental detector's per-insertion
// cost on a growing two-cluster stream (the "improve performance" ongoing-
// work direction).
func BenchmarkStreamInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	s, err := lof.NewStream(2, 10, "")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Insert([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Insert([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreLOFSingle measures one two-scan LOF computation (MinPts=20)
// in isolation, the unit cost behind figure 11.
func BenchmarkCoreLOFSingle(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 5000, 2, 8)
	db, err := matdb.Materialize(d.Points, linear.New(d.Points, nil), 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LOFs(db, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI measures the full facade path (auto index, default
// MinPts range) on a mid-sized 2-d workload.
func BenchmarkPublicAPI(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 3000, 2, 6)
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	det, err := lof.New(lof.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Fit(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFit measures the full fit pipeline (materialization + MinPts
// sweep) on a 10k-point dataset across worker-pool widths. Results are
// bit-identical at every width; only wall-clock changes.
func BenchmarkFit(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 10000, 2, 10)
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	widths := []int{1, 2, 4}
	if ncpu := runtime.NumCPU(); ncpu != 1 && ncpu != 2 && ncpu != 4 {
		widths = append(widths, ncpu)
	}
	for _, workers := range widths {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			det, err := lof.New(lof.Config{MinPtsLB: 10, MinPtsUB: 20, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Fit(rows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScoreBatch measures out-of-sample inference throughput across
// batch sizes and worker-pool widths against a fixed 3000-point model.
func BenchmarkScoreBatch(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 3000, 2, 6)
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	rng := rand.New(rand.NewSource(benchSeed + 1))
	for _, workers := range []int{1, 4, 8} {
		det, err := lof.New(lof.Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := det.Fit(rows); err != nil {
			b.Fatal(err)
		}
		for _, batch := range []int{1, 64, 1024} {
			queries := make([][]float64, batch)
			for i := range queries {
				queries[i] = []float64{4 * rng.NormFloat64(), 4 * rng.NormFloat64()}
			}
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := det.ScoreBatch(queries); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
			})
		}
	}
}

// BenchmarkApproxFit compares the exact MinPts sweep against the pruned
// sweep (bound certification + exact frontier) on the recall-gate workload
// shape. The certified fraction is reported so a bound regression that
// silently certifies less shows up next to the timing.
func BenchmarkApproxFit(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 10000, 2, 5)
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	cfg := lof.Config{MinPtsLB: 10, MinPtsUB: 40}
	b.Run("exact", func(b *testing.B) {
		det, err := lof.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := det.Fit(rows)
			if err != nil {
				b.Fatal(err)
			}
			_ = res.Scores()
		}
	})
	b.Run("pruned", func(b *testing.B) {
		det, err := lof.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var pruned *lof.PrunedResult
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pruned, err = det.FitPruned(rows, lof.DefaultPruneEps)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(pruned.PrunedCount())/float64(len(rows)), "certified-frac")
	})
}

// BenchmarkApproxScore measures out-of-sample scoring throughput of the
// three serving paths — exact, pruned, and coreset — against the same
// fitted model, re-scoring every fitted point as a query.
func BenchmarkApproxScore(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 10000, 2, 5)
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	det, err := lof.New(lof.Config{MinPtsLB: 10, MinPtsUB: 40})
	if err != nil {
		b.Fatal(err)
	}
	res, err := det.Fit(rows)
	if err != nil {
		b.Fatal(err)
	}
	model, err := res.Model()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.ScoreBatch(rows); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
	b.Run("pruned", func(b *testing.B) {
		var batch *lof.PrunedBatch
		for i := 0; i < b.N; i++ {
			batch, err = model.ScoreBatchPruned(rows, lof.DefaultPruneEps)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		b.ReportMetric(float64(batch.Certified)/float64(len(rows)), "certified-frac")
	})
	coreset, err := model.Coreset(2048)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("coreset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := coreset.ScoreBatch(rows); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	})
}

// BenchmarkFitTraceOverhead compares a plain fit against the same fit with
// Config.Trace enabled. The disabled-tracer path is the default and is
// guarded separately by the deterministic zero-allocation test in
// internal/obs; this benchmark makes the enabled-path cost visible so a
// regression that slips timestamping into a hot loop shows up as a gap
// between the two sub-benchmarks (expected: well under 1%, since spans
// wrap whole phases, never per-point work).
func BenchmarkFitTraceOverhead(b *testing.B) {
	d := dataset.RandomClusters(benchSeed, 5000, 2, 8)
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	for _, traced := range []bool{false, true} {
		b.Run(fmt.Sprintf("traced=%v", traced), func(b *testing.B) {
			det, err := lof.New(lof.Config{MinPtsLB: 10, MinPtsUB: 20, Trace: traced})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := det.Fit(rows); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(rows))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}
