// Command lofcli computes local outlier factors for CSV input and prints a
// ranked outlier report.
//
// Usage:
//
//	lofcli -in data.csv -minpts-lb 10 -minpts-ub 20 -top 10
//	lofcli -in players.csv -header -label-col 0 -threshold 1.5
//	cat data.csv | lofcli -top 5
//
// Every non-label column must be numeric. Scores aggregate the LOF over the
// MinPts range with the configured aggregate (max by default, following the
// paper's Sec. 6.2 heuristic).
//
// A fit can be frozen into a model snapshot with -save-model, and the
// score subcommand scores new CSV points against such a snapshot without
// refitting (out-of-sample inference):
//
//	lofcli -in data.csv -minpts 10 -save-model model.bin
//	lofcli score -model model.bin -in queries.csv
//
// -approx switches fit and score to the pruned fast path: dense-core
// points are certified as LOF ≈ 1 from k-distance bounds and only the
// uncertain frontier is evaluated exactly (bit-identical to the exact
// path). -approx-eps widens or narrows the certification band:
//
//	lofcli -in data.csv -approx -top 10
//	lofcli score -model model.bin -in queries.csv -approx
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lof"
	"lof/internal/dataset"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "score" {
		if err := runScoreCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lofcli score: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var (
		in        = flag.String("in", "", "input CSV path ('-' or empty for stdin)")
		header    = flag.Bool("header", false, "input has a header row")
		labelCol  = flag.Int("label-col", -1, "index of a non-numeric label column, -1 for none")
		minPts    = flag.Int("minpts", 0, "single MinPts value (overrides the range)")
		minPtsLB  = flag.Int("minpts-lb", lof.DefaultMinPtsLB, "lower bound of the MinPts range")
		minPtsUB  = flag.Int("minpts-ub", lof.DefaultMinPtsUB, "upper bound of the MinPts range")
		agg       = flag.String("agg", "max", "aggregate over the MinPts range: max, mean or min")
		metric    = flag.String("metric", "euclidean", "distance: euclidean, manhattan or chebyshev")
		indexKind = flag.String("index", "auto", "knn index: auto, linear, grid, kdtree, xtree or vafile")
		top       = flag.Int("top", 10, "print the top N outliers (0 disables)")
		threshold = flag.Float64("threshold", 0, "also print all objects with score above this (0 disables)")
		distinct  = flag.Bool("distinct", false, "use k-distinct-distance neighborhoods (duplicate handling)")
		allScores = flag.Bool("scores", false, "print every object's score instead of a ranking")
		explain   = flag.Bool("explain", false, "print per-dimension deviation profiles for the top outliers")
		weights   = flag.String("weights", "", "comma-separated per-column weights for a weighted euclidean distance")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		saveModel = flag.String("save-model", "", "write a binary model snapshot for out-of-sample scoring")
		workers   = flag.Int("workers", 0, "worker pool width for fit and scoring (0 = all CPUs, 1 = sequential)")
		stats     = flag.Bool("stats", false, "trace the fit and print a per-phase timing breakdown")
		approx    = flag.Bool("approx", false, "pruned fast path: certify dense-core points as LOF≈1, evaluate only the frontier")
		approxEps = flag.Float64("approx-eps", 0, "certification half-width for -approx (0 = default)")
	)
	flag.Parse()

	opts := options{
		in: *in, header: *header, labelCol: *labelCol,
		minPts: *minPts, minPtsLB: *minPtsLB, minPtsUB: *minPtsUB,
		agg: *agg, metric: *metric, indexKind: *indexKind,
		top: *top, threshold: *threshold,
		distinct: *distinct, allScores: *allScores, explain: *explain,
		weights: *weights, jsonOut: *jsonOut, saveModel: *saveModel,
		workers: *workers, stats: *stats,
		approx: *approx, approxEps: *approxEps,
	}
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintf(os.Stderr, "lofcli: %v\n", err)
		os.Exit(1)
	}
}

// options carries the parsed flag values; run is separated from main so
// tests can drive it.
type options struct {
	in                 string
	header             bool
	labelCol           int
	minPts             int
	minPtsLB, minPtsUB int
	agg, metric        string
	indexKind          string
	top                int
	threshold          float64
	distinct           bool
	allScores          bool
	explain            bool
	weights            string
	jsonOut            bool
	saveModel          string
	workers            int
	stats              bool
	approx             bool
	approxEps          float64
}

func run(w io.Writer, o options) error {
	in := o.in
	header, labelCol := o.header, o.labelCol
	minPts, minPtsLB, minPtsUB := o.minPts, o.minPtsLB, o.minPtsUB
	agg, metric, indexKind := o.agg, o.metric, o.indexKind
	top, threshold := o.top, o.threshold
	distinct, allScores := o.distinct, o.allScores

	var r io.Reader = os.Stdin
	name := "stdin"
	if in != "" && in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
		name = in
	}
	d, err := dataset.ReadCSV(r, name, dataset.CSVOptions{Header: header, LabelColumn: labelCol})
	if err != nil {
		return err
	}

	cfg := lof.Config{Metric: metric, Distinct: distinct, Workers: o.workers, Trace: o.stats}
	if o.weights != "" {
		ws, err := parseWeights(o.weights)
		if err != nil {
			return err
		}
		cfg.Weights = ws
	}
	if minPts != 0 {
		cfg.MinPts = minPts
	} else {
		cfg.MinPtsLB, cfg.MinPtsUB = minPtsLB, minPtsUB
	}
	if cfg.Aggregation, err = lof.ParseAggregation(agg); err != nil {
		return err
	}
	if cfg.Index, err = lof.ParseIndexKind(indexKind); err != nil {
		return err
	}

	det, err := lof.New(cfg)
	if err != nil {
		return err
	}
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	if o.approx {
		return runApproxFit(w, d, det, rows, o)
	}
	fitStart := time.Now()
	res, err := det.Fit(rows)
	if err != nil {
		return err
	}
	fitWall := time.Since(fitStart)

	if o.saveModel != "" {
		if err := writeModelFile(res, o.saveModel); err != nil {
			return err
		}
	}

	if o.jsonOut {
		return writeJSON(w, d, res, top, threshold, o.stats, fitWall)
	}
	if allScores {
		for i, s := range res.Scores() {
			fmt.Fprintf(w, "%s,%.6f\n", d.Label(i), s)
		}
		if o.stats {
			return writeStats(w, res, fitWall)
		}
		return nil
	}
	lb, ub := res.MinPtsRange()
	fmt.Fprintf(w, "# %d objects, %d dims, MinPts %d..%d, %s aggregate\n", d.Len(), d.Dim(), lb, ub, agg)
	if top > 0 {
		fmt.Fprintf(w, "top %d outliers:\n", top)
		for rank, ol := range res.TopN(top) {
			fmt.Fprintf(w, "%4d  %8.3f  %s\n", rank+1, ol.Score, d.Label(ol.Index))
			if o.explain {
				prof, err := res.ExplainDimensions(ol.Index, lb)
				if err != nil {
					return err
				}
				for _, c := range prof {
					fmt.Fprintf(w, "          dim %d: z=%.2f delta=%+.3f\n", c.Dim, c.ZScore, c.Delta)
				}
			}
		}
	}
	if threshold > 0 {
		out := res.OutliersAbove(threshold)
		fmt.Fprintf(w, "objects with score > %g: %d\n", threshold, len(out))
		for _, o := range out {
			fmt.Fprintf(w, "      %8.3f  %s\n", o.Score, d.Label(o.Index))
		}
	}
	if o.stats {
		return writeStats(w, res, fitWall)
	}
	return nil
}

// runApproxFit runs the pruned fast path and prints the same ranked report
// from its scores: frontier scores are bit-identical to the exact fit,
// certified points report 1. The explain/save-model/stats/json machinery is
// wired to the exact Result type and is rejected rather than silently
// degraded.
func runApproxFit(w io.Writer, d *dataset.Dataset, det *lof.Detector, rows [][]float64, o options) error {
	for flag, set := range map[string]bool{
		"-explain": o.explain, "-save-model": o.saveModel != "",
		"-stats": o.stats, "-json": o.jsonOut,
	} {
		if set {
			return fmt.Errorf("%s is not supported with -approx", flag)
		}
	}
	fitStart := time.Now()
	pruned, err := det.FitPruned(rows, o.approxEps)
	if err != nil {
		return err
	}
	fitWall := time.Since(fitStart)
	if o.allScores {
		for i, s := range pruned.Scores {
			fmt.Fprintf(w, "%s,%.6f\n", d.Label(i), s)
		}
		return nil
	}
	fmt.Fprintf(w, "# %d objects, %d dims, approx fit in %v: %d certified LOF≈1 (eps=%.2f), %d evaluated exactly\n",
		d.Len(), d.Dim(), fitWall, pruned.PrunedCount(), pruned.Eps, pruned.Frontier)
	order := make([]int, len(pruned.Scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return pruned.Scores[order[a]] > pruned.Scores[order[b]] })
	if o.top > 0 {
		n := o.top
		if n > len(order) {
			n = len(order)
		}
		fmt.Fprintf(w, "top %d outliers:\n", n)
		for rank := 0; rank < n; rank++ {
			i := order[rank]
			fmt.Fprintf(w, "%4d  %8.3f  %s\n", rank+1, pruned.Scores[i], d.Label(i))
		}
	}
	if o.threshold > 0 {
		flagged := 0
		for _, i := range order {
			if pruned.Scores[i] > o.threshold {
				flagged++
			}
		}
		fmt.Fprintf(w, "objects with score > %g: %d\n", o.threshold, flagged)
		for _, i := range order {
			if pruned.Scores[i] > o.threshold {
				fmt.Fprintf(w, "      %8.3f  %s\n", pruned.Scores[i], d.Label(i))
			}
		}
	}
	return nil
}

// writeStats prints the traced fit's phase breakdown after the report.
// Scores() runs the aggregate phase, so the table is rendered after the
// report has forced it.
func writeStats(w io.Writer, res *lof.Result, fitWall time.Duration) error {
	if _, err := fmt.Fprintf(w, "\nfit wall clock: %v\n", fitWall); err != nil {
		return err
	}
	return res.Stats().WriteTable(w)
}

// writeModelFile freezes the fitted model into a snapshot file.
func writeModelFile(res *lof.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := res.WriteModel(f); err != nil {
		f.Close()
		return fmt.Errorf("writing model %s: %w", path, err)
	}
	return f.Close()
}

// runScoreCmd implements the score subcommand: load a model snapshot and
// score a CSV of query points through the out-of-sample path.
func runScoreCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lofcli score", flag.ContinueOnError)
	var (
		modelPath = fs.String("model", "", "model snapshot written by -save-model (required)")
		in        = fs.String("in", "", "query CSV path ('-' or empty for stdin)")
		header    = fs.Bool("header", false, "input has a header row")
		labelCol  = fs.Int("label-col", -1, "index of a non-numeric label column, -1 for none")
		jsonOut   = fs.Bool("json", false, "emit scores as JSON")
		workers   = fs.Int("workers", 0, "worker pool width for scoring (0 = all CPUs, 1 = sequential)")
		approx    = fs.Bool("approx", false, "pruned fast path: certify dense-core queries as LOF≈1 instead of evaluating them")
		approxEps = fs.Float64("approx-eps", 0, "certification half-width for -approx (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("-model is required")
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := lof.LoadModel(mf)
	mf.Close()
	if err != nil {
		return fmt.Errorf("loading %s: %w", *modelPath, err)
	}
	if *workers > 0 {
		model = model.WithWorkers(*workers)
	}

	var r io.Reader = os.Stdin
	name := "stdin"
	if *in != "" && *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
		name = *in
	}
	d, err := dataset.ReadCSV(r, name, dataset.CSVOptions{Header: *header, LabelColumn: *labelCol})
	if err != nil {
		return err
	}
	if d.Dim() != model.Dim() {
		return fmt.Errorf("queries have %d columns, model expects %d", d.Dim(), model.Dim())
	}
	queries := make([][]float64, d.Len())
	for i := range queries {
		queries[i] = d.Points.At(i)
	}
	var scores []float64
	var certified []bool
	if *approx {
		batch, err := model.ScoreBatchPruned(queries, *approxEps)
		if err != nil {
			return err
		}
		scores, certified = batch.Scores, batch.Pruned
	} else {
		if scores, err = model.ScoreBatch(queries); err != nil {
			return err
		}
	}
	if *jsonOut {
		out := make([]jsonOutlier, len(scores))
		for i, s := range scores {
			out[i] = jsonOutlier{Index: i, Label: d.Label(i), Score: s}
			if certified != nil {
				out[i].Certified = certified[i]
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for i, s := range scores {
		fmt.Fprintf(w, "%s,%.6f\n", d.Label(i), s)
	}
	return nil
}

// parseWeights parses a comma-separated weight list.
func parseWeights(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("weight %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// jsonReport is the machine-readable output shape of -json.
type jsonReport struct {
	Objects   int           `json:"objects"`
	Dims      int           `json:"dims"`
	MinPtsLB  int           `json:"minPtsLB"`
	MinPtsUB  int           `json:"minPtsUB"`
	Top       []jsonOutlier `json:"top,omitempty"`
	Threshold float64       `json:"threshold,omitempty"`
	Flagged   []jsonOutlier `json:"flagged,omitempty"`
	FitNS     int64         `json:"fitNS,omitempty"`
	Stats     *lof.RunStats `json:"stats,omitempty"`
}

type jsonOutlier struct {
	Index int     `json:"index"`
	Label string  `json:"label"`
	Score float64 `json:"score"`
	// Certified marks scores answered from the pruning bound (score
	// subcommand with -approx only).
	Certified bool `json:"certified,omitempty"`
}

func writeJSON(w io.Writer, d *dataset.Dataset, res *lof.Result, top int, threshold float64, stats bool, fitWall time.Duration) error {
	lb, ub := res.MinPtsRange()
	rep := jsonReport{Objects: d.Len(), Dims: d.Dim(), MinPtsLB: lb, MinPtsUB: ub}
	for _, o := range res.TopN(top) {
		rep.Top = append(rep.Top, jsonOutlier{Index: o.Index, Label: d.Label(o.Index), Score: o.Score})
	}
	if threshold > 0 {
		rep.Threshold = threshold
		for _, o := range res.OutliersAbove(threshold) {
			rep.Flagged = append(rep.Flagged, jsonOutlier{Index: o.Index, Label: d.Label(o.Index), Score: o.Score})
		}
	}
	if stats {
		rep.FitNS = int64(fitWall)
		rep.Stats = res.Stats()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
