package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestCSV creates a CSV with a labeled cluster and one obvious outlier
// named "anomaly".
func writeTestCSV(t *testing.T, withLabels bool) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	if withLabels {
		b.WriteString("name,x,y\n")
	}
	for i := 0; i < 60; i++ {
		if withLabels {
			fmt.Fprintf(&b, "pt-%02d,", i)
		}
		fmt.Fprintf(&b, "%.4f,%.4f\n", rng.NormFloat64(), rng.NormFloat64())
	}
	if withLabels {
		b.WriteString("anomaly,")
	}
	b.WriteString("30,30\n")
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseOptions(path string) options {
	return options{
		in: path, labelCol: -1,
		minPtsLB: 10, minPtsUB: 15,
		agg: "max", metric: "euclidean", indexKind: "auto",
		top: 3,
	}
}

func TestRunRankingOutput(t *testing.T) {
	path := writeTestCSV(t, false)
	var out bytes.Buffer
	if err := run(&out, baseOptions(path)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# 61 objects, 2 dims, MinPts 10..15, max aggregate") {
		t.Fatalf("header missing: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// The top-ranked object is the planted outlier (#60).
	if !strings.Contains(lines[2], "#60") {
		t.Fatalf("top outlier line: %q", lines[2])
	}
}

func TestRunWithLabelsAndThreshold(t *testing.T) {
	path := writeTestCSV(t, true)
	o := baseOptions(path)
	o.header = true
	o.labelCol = 0
	o.threshold = 2
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "anomaly") {
		t.Fatalf("label missing: %q", s)
	}
	if !strings.Contains(s, "objects with score > 2") {
		t.Fatalf("threshold section missing: %q", s)
	}
}

func TestRunScoresMode(t *testing.T) {
	path := writeTestCSV(t, false)
	o := baseOptions(path)
	o.allScores = true
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 61 {
		t.Fatalf("lines=%d", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, ",") {
			t.Fatalf("bad scores line %q", l)
		}
	}
}

func TestRunExplain(t *testing.T) {
	path := writeTestCSV(t, false)
	o := baseOptions(path)
	o.top = 1
	o.explain = true
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dim 0: z=") {
		t.Fatalf("explain output missing: %q", out.String())
	}
}

func TestRunSingleMinPts(t *testing.T) {
	path := writeTestCSV(t, false)
	o := baseOptions(path)
	o.minPts = 12
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MinPts 12..12") {
		t.Fatalf("single MinPts not honored: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestCSV(t, false)
	cases := []func(*options){
		func(o *options) { o.in = "/nonexistent/file.csv" },
		func(o *options) { o.agg = "median" },
		func(o *options) { o.indexKind = "btree" },
		func(o *options) { o.metric = "cosine" },
		func(o *options) { o.minPtsLB = 100; o.minPtsUB = 200 }, // too few rows
	}
	for i, mod := range cases {
		o := baseOptions(path)
		mod(&o)
		if err := run(&bytes.Buffer{}, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunAllIndexKindsAndAggregates(t *testing.T) {
	path := writeTestCSV(t, false)
	for _, kind := range []string{"auto", "linear", "grid", "kdtree", "xtree", "vafile"} {
		o := baseOptions(path)
		o.indexKind = kind
		if err := run(&bytes.Buffer{}, o); err != nil {
			t.Errorf("index %s: %v", kind, err)
		}
	}
	for _, agg := range []string{"max", "mean", "min"} {
		o := baseOptions(path)
		o.agg = agg
		if err := run(&bytes.Buffer{}, o); err != nil {
			t.Errorf("agg %s: %v", agg, err)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTestCSV(t, true)
	o := baseOptions(path)
	o.header = true
	o.labelCol = 0
	o.jsonOut = true
	o.threshold = 2
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Objects int `json:"objects"`
		Dims    int `json:"dims"`
		Top     []struct {
			Label string  `json:"label"`
			Score float64 `json:"score"`
		} `json:"top"`
		Flagged []struct {
			Label string `json:"label"`
		} `json:"flagged"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, out.String())
	}
	if rep.Objects != 61 || rep.Dims != 2 {
		t.Fatalf("report=%+v", rep)
	}
	if len(rep.Top) != 3 || rep.Top[0].Label != "anomaly" {
		t.Fatalf("top=%+v", rep.Top)
	}
	if len(rep.Flagged) == 0 || rep.Flagged[0].Label != "anomaly" {
		t.Fatalf("flagged=%+v", rep.Flagged)
	}
}

func TestRunWeights(t *testing.T) {
	path := writeTestCSV(t, false)
	o := baseOptions(path)
	o.weights = "1,1"
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#60") {
		t.Fatalf("weighted run missed the outlier: %q", out.String())
	}
	o.weights = "1,notanumber"
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("bad weights accepted")
	}
	o.weights = "1" // wrong arity for 2-d data
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("wrong weight count accepted")
	}
}

// TestSaveModelAndScoreSubcommand freezes a fit into a snapshot, then
// scores a query CSV through the score subcommand; served scores must
// match the library's out-of-sample path, and the planted far-away query
// must outscore the inlier query.
func TestSaveModelAndScoreSubcommand(t *testing.T) {
	dataPath := writeTestCSV(t, false)
	modelPath := filepath.Join(t.TempDir(), "model.bin")
	opts := baseOptions(dataPath)
	opts.saveModel = modelPath
	var out bytes.Buffer
	if err := run(&out, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	queryPath := filepath.Join(t.TempDir(), "queries.csv")
	if err := os.WriteFile(queryPath, []byte("0.1,0.2\n25,-25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runScoreCmd([]string{"-model", modelPath, "-in", queryPath}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), out.String())
	}
	var inlier, outlier float64
	if _, err := fmt.Sscanf(strings.Split(lines[0], ",")[1], "%f", &inlier); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(strings.Split(lines[1], ",")[1], "%f", &outlier); err != nil {
		t.Fatal(err)
	}
	if outlier <= inlier {
		t.Fatalf("far query scored %v, inlier %v", outlier, inlier)
	}

	// JSON output shape.
	out.Reset()
	if err := runScoreCmd([]string{"-model", modelPath, "-in", queryPath, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var rows []jsonOutlier
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("bad JSON %q: %v", out.String(), err)
	}
	if len(rows) != 2 || rows[1].Score <= rows[0].Score {
		t.Fatalf("JSON rows %+v", rows)
	}

	// Error paths: missing -model, dimension mismatch.
	if err := runScoreCmd([]string{"-in", queryPath}, io.Discard); err == nil {
		t.Error("missing -model accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(badPath, []byte("1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScoreCmd([]string{"-model", modelPath, "-in", badPath}, io.Discard); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestRunStatsFlag pins the -stats output: a phase breakdown table after
// the report, with the pipeline phases and counters present.
func TestRunStatsFlag(t *testing.T) {
	path := writeTestCSV(t, false)
	o := baseOptions(path)
	o.stats = true
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "fit wall clock:") {
		t.Fatalf("missing wall clock line:\n%s", s)
	}
	for _, want := range []string{"PHASE", "ingest", "index_build", "materialize", "sweep", "aggregate", "total", "COUNTER", "knn_queries_total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats table missing %q:\n%s", want, s)
		}
	}
}

// TestRunStatsJSON pins the machine-readable stats embedding.
func TestRunStatsJSON(t *testing.T) {
	path := writeTestCSV(t, false)
	o := baseOptions(path)
	o.stats = true
	o.jsonOut = true
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		FitNS int64 `json:"fitNS"`
		Stats *struct {
			Phases []struct {
				Name  string `json:"name"`
				Count int64  `json:"count"`
			} `json:"phases"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.FitNS <= 0 {
		t.Fatalf("fitNS = %d, want > 0", rep.FitNS)
	}
	if rep.Stats == nil || len(rep.Stats.Phases) == 0 {
		t.Fatalf("stats missing from JSON report:\n%s", out.String())
	}
	names := make(map[string]bool)
	for _, p := range rep.Stats.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"ingest", "index_build", "materialize", "sweep"} {
		if !names[want] {
			t.Fatalf("JSON stats missing phase %q: %v", want, names)
		}
	}
}

// TestRunNoStatsByDefault keeps tracing opt-in.
func TestRunNoStatsByDefault(t *testing.T) {
	path := writeTestCSV(t, false)
	var out bytes.Buffer
	if err := run(&out, baseOptions(path)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "PHASE") {
		t.Fatalf("stats table printed without -stats:\n%s", out.String())
	}
}
