// Command lofcoord runs the scatter-gather coordinator of the sharded
// serving tier. It fronts a fleet of lofserve shard processes: a fit is
// performed once, globally, then split into per-shard snapshots and
// replicated; scores are answered by fanning out to every shard and
// merging the candidates into exact global LOF — bit-identical to what a
// single lofserve holding the whole model would return.
//
// Usage:
//
//	lofcoord -addr :8090 -shards "http://s0:8080;http://s1:8080;http://s2:8080"
//	lofcoord -shards "http://s0a:8080,http://s0b:8080;http://s1:8080"   # 2 shards, first has 2 replicas
//	lofcoord -shards "..." -model model.bin                             # preload and distribute
//	lofcoord -shards "..." -hedge 20ms -partitioner range
//
// In -shards, ';' separates shards and ',' separates interchangeable
// replicas of one shard. Endpoints mirror lofserve's API (POST /v1/fit,
// POST /v1/score, GET /v1/model, /healthz, /readyz, /metrics), so clients
// need not know whether they talk to a single node or a coordinator.
//
// A background repair loop re-pushes the current snapshot to replicas that
// report unready or a stale version, so restarted shards converge without
// operator action.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lof"
	"lof/internal/client"
	"lof/internal/coord"
	"lof/internal/shard"
	"lof/internal/trace"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8090", "listen address")
		shards         = flag.String("shards", "", "shard replica URLs: ';' separates shards, ',' separates replicas of one shard")
		modelPath      = flag.String("model", "", "model snapshot to preload, split and distribute (see lofcli -save-model)")
		hedge          = flag.Duration("hedge", 50*time.Millisecond, "delay before hedging a shard request to the next replica (<=0 disables)")
		partitioner    = flag.String("partitioner", "hash", "point-to-shard assignment: hash or range")
		degradedSample = flag.Int("degraded-sample", 2048, "points in the local degraded fallback model (<0 disables)")
		repairEvery    = flag.Duration("repair-interval", 2*time.Second, "how often to sweep replicas for repair")
		grace          = flag.Duration("grace", 15*time.Second, "graceful shutdown drain budget")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceSample    = flag.Float64("trace-sample", 0, "probability of recording a trace for requests without an inbound sampled traceparent (0 disables tracing unless -trace-slow is set)")
		traceSlow      = flag.Duration("trace-slow", 0, "always record spans at least this slow, even unsampled (0 disables the slow override)")
		traceBuffer    = flag.Int("trace-buffer", 4096, "recorded spans kept in the in-process ring buffer served by /v1/debug/traces")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o := options{
		addr: *addr, shards: *shards, modelPath: *modelPath,
		hedge: *hedge, partitioner: *partitioner,
		degradedSample: *degradedSample, repairEvery: *repairEvery,
		grace: *grace, logLevel: *logLevel,
		traceSample: *traceSample, traceSlow: *traceSlow, traceBuffer: *traceBuffer,
	}
	if err := run(ctx, o, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "lofcoord: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	addr           string
	shards         string
	modelPath      string
	hedge          time.Duration
	partitioner    string
	degradedSample int
	repairEvery    time.Duration
	grace          time.Duration
	logLevel       string
	traceSample    float64
	traceSlow      time.Duration
	traceBuffer    int
}

// parseTargets splits the -shards grammar: ';' between shards, ',' between
// replicas. Blanks are tolerated around separators; empty shards are not.
func parseTargets(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-shards is required (';' separates shards, ',' separates replicas)")
	}
	var targets [][]string
	for i, group := range strings.Split(s, ";") {
		var replicas []string
		for _, u := range strings.Split(group, ",") {
			if u = strings.TrimSpace(u); u != "" {
				replicas = append(replicas, u)
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("shard %d has no replica URLs", i)
		}
		targets = append(targets, replicas)
	}
	return targets, nil
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// run starts the coordinator and blocks until ctx is cancelled, then drains
// gracefully. If ready is non-nil the bound address is sent once the
// listener accepts connections — the test and script seam.
func run(ctx context.Context, o options, logw io.Writer, ready chan<- string) error {
	level, err := parseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(logw, &slog.HandlerOptions{Level: level}))
	targets, err := parseTargets(o.shards)
	if err != nil {
		return err
	}
	parter, err := shard.ParsePartitioner(o.partitioner)
	if err != nil {
		return err
	}
	var collector *trace.Collector
	if o.traceSample > 0 || o.traceSlow > 0 {
		collector = trace.NewCollector(trace.Config{
			Service:       "lofcoord",
			Capacity:      o.traceBuffer,
			Sample:        o.traceSample,
			SlowThreshold: o.traceSlow,
		})
		logger.LogAttrs(ctx, slog.LevelInfo, "tracing enabled",
			slog.Float64("sample", o.traceSample),
			slog.Duration("slow", o.traceSlow),
			slog.Int("buffer", o.traceBuffer))
	}
	c, err := coord.New(coord.Config{
		Targets:        targets,
		Client:         client.Config{},
		Hedge:          o.hedge,
		Partitioner:    parter,
		DegradedSample: o.degradedSample,
		RepairInterval: o.repairEvery,
		Logger:         logger,
		Trace:          collector,
	})
	if err != nil {
		return err
	}
	if o.modelPath != "" {
		m, info, err := lof.OpenModelFile(o.modelPath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", o.modelPath, err)
		}
		mode := "copy"
		if info.Mapped {
			mode = "mmap"
		}
		logger.LogAttrs(ctx, slog.LevelInfo, "model snapshot opened",
			slog.String("path", o.modelPath),
			slog.Int("snapshot_version", info.Version),
			slog.String("load_mode", mode),
			slog.Int64("bytes", info.Bytes))
		// Shards may still be starting; keep trying until the snapshot
		// lands or shutdown wins.
		go func() {
			for {
				info, err := c.Install(ctx, m)
				if err == nil {
					logger.LogAttrs(ctx, slog.LevelInfo, "preloaded model distributed",
						slog.Uint64("version", info.Version),
						slog.Int("objects", info.Objects))
					return
				}
				logger.LogAttrs(ctx, slog.LevelWarn, "preload distribution failed; retrying",
					slog.String("error", err.Error()))
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		}()
	}
	go c.Run(ctx) // repair loop

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("shards", c.Shards()))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "shutting down",
		slog.Duration("grace", o.grace))
	shCtx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
