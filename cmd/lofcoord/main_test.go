package main

import (
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lof"
	"lof/internal/client"
	"lof/internal/server"
)

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("http://a:1,http://b:2 ; http://c:3")
	if err != nil {
		t.Fatalf("parseTargets: %v", err)
	}
	if len(got) != 2 || len(got[0]) != 2 || got[0][1] != "http://b:2" || got[1][0] != "http://c:3" {
		t.Fatalf("parseTargets = %v", got)
	}
	for _, bad := range []string{"", "  ", "http://a:1;;http://b:2", ";http://a:1"} {
		if _, err := parseTargets(bad); err == nil {
			t.Fatalf("parseTargets(%q) accepted", bad)
		}
	}
}

// startShard runs an in-process lofserve on a loopback port.
func startShard(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: server.New(server.Config{}).Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

func trainData() [][]float64 {
	var data [][]float64
	for i := 0; i < 60; i++ {
		fx := float64(i%7)/7 - 0.5
		fy := float64(i%5)/5 - 0.5
		cx, cy := 0.0, 0.0
		if i%2 == 1 {
			cx, cy = 10, 10
		}
		data = append(data, []float64{cx + fx, cy + fy})
	}
	return append(data, []float64{40, -40})
}

// TestLifecycle drives a full coordinator process: two shards, a preloaded
// model, HTTP fit and score through the standard client, clean shutdown.
func TestLifecycle(t *testing.T) {
	data := trainData()
	det, err := lof.New(lof.Config{MinPtsLB: 3, MinPtsUB: 7})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := m.WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	f.Close()

	shards := startShard(t) + ";" + startShard(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr: "127.0.0.1:0", shards: shards, modelPath: path,
			partitioner: "range", hedge: 10 * time.Millisecond,
			degradedSample: 64, repairEvery: 100 * time.Millisecond,
			grace: 5 * time.Second, logLevel: "error",
		}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	}

	cl, err := client.New(client.Config{BaseURL: "http://" + addr})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	// The preload distribution is async; poll readiness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := cl.Readyz(ctx)
		if err == nil && info.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never became ready: %+v, %v", info, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	queries := [][]float64{{0, 0}, {10, 10}, {40, -40}, {5, 5}}
	got, err := cl.Score(ctx, queries)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	want, err := m.ScoreBatchContext(ctx, queries)
	if err != nil {
		t.Fatalf("local scores: %v", err)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("query %d: coordinator %v != local %v", i, got[i], want[i])
		}
	}

	// A refit through the coordinator replaces the preloaded model.
	if _, err := cl.Fit(ctx, server.FitConfig{MinPtsLB: 2, MinPtsUB: 5}, data); err != nil {
		t.Fatalf("Fit via coordinator: %v", err)
	}
	if info, err := cl.Model(ctx); err != nil || info.MinPtsUB != 5 {
		t.Fatalf("model after refit: %+v, %v", info, err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}

func TestRunBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, options{shards: "", logLevel: "info"}, io.Discard, nil); err == nil {
		t.Fatal("run accepted empty -shards")
	}
	if err := run(ctx, options{shards: "http://a", partitioner: "mod", logLevel: "info"}, io.Discard, nil); err == nil {
		t.Fatal("run accepted unknown partitioner")
	}
	if err := run(ctx, options{shards: "http://a", logLevel: "loud"}, io.Discard, nil); err == nil {
		t.Fatal("run accepted unknown log level")
	}
}
