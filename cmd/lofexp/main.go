// Command lofexp regenerates the tables and figures of the LOF paper's
// evaluation. Each experiment prints the rows or series the corresponding
// figure plots.
//
// Usage:
//
//	lofexp -exp all
//	lofexp -exp ds1,fig7,soccer -seed 42
//	lofexp -exp fig7 -stats
//	lofexp -list
//
// With -stats, each experiment runs under a pipeline tracer and is
// followed by a per-phase timing and counter breakdown of all the fits it
// performed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"lof/internal/exp"
	"lof/internal/obs"
)

// experiment is one runnable experiment producing printable tables.
type experiment struct {
	name string
	desc string
	run  func(seed int64, quick bool) ([]*exp.Table, error)
}

func experiments() []experiment {
	return []experiment{
		{"ds1", "figure 1 / section 3: local outliers vs DB(pct,dmin) on DS1", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunDS1(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"thm1", "figure 3: theorem 1 bounds for an object outside a cluster", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunThm1Demo(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"fig4", "figure 4: analytic LOF bound spread vs direct/indirect", func(int64, bool) ([]*exp.Table, error) {
			return []*exp.Table{exp.RunFig4().Table()}, nil
		}},
		{"fig5", "figure 5: relative span vs fluctuation percentage", func(int64, bool) ([]*exp.Table, error) {
			return []*exp.Table{exp.RunFig5().Table()}, nil
		}},
		{"thm2", "figure 6: theorem 2 multi-cluster bounds", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunThm2Demo(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"fig7", "figure 7: LOF fluctuation within a Gaussian cluster", func(seed int64, quick bool) ([]*exp.Table, error) {
			n := 1000
			if quick {
				n = 300
			}
			r, err := exp.RunFig7(seed, n)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"fig8", "figure 8: LOF over MinPts for three cluster sizes", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunFig8(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"fig9", "figure 9: LOF surface of the four-cluster dataset", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunFig9(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"hockey1", "section 7.2 test 1: points / plus-minus / penalty minutes", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunHockey(seed, 1)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table(), exp.RankTable("documented outlier ranks", r.RankOf)}, nil
		}},
		{"hockey2", "section 7.2 test 2: games / goals / shooting percentage", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunHockey(seed, 2)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table(), exp.RankTable("documented outlier ranks", r.RankOf)}, nil
		}},
		{"soccer", "table 3: Bundesliga 1998/99 outliers", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunSoccer(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table(), exp.RankTable("published outlier ranks", r.RankOf)}, nil
		}},
		{"highdim", "section 7: 64-d color histograms", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunHighDim(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"fig10", "figure 10: materialization time vs n and dimension", func(seed int64, quick bool) ([]*exp.Table, error) {
			sizes := []int{2000, 5000, 10000, 20000, 40000}
			dims := []int{2, 5, 10, 20}
			if quick {
				sizes = []int{500, 1000}
				dims = []int{2, 10}
			}
			r, err := exp.RunFig10(seed, sizes, dims, "kdtree")
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"fig11", "figure 11: LOF computation time vs n", func(seed int64, quick bool) ([]*exp.Table, error) {
			sizes := []int{2000, 5000, 10000, 20000, 40000}
			if quick {
				sizes = []int{500, 1000}
			}
			r, err := exp.RunFig11(seed, sizes)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"ablation-index", "ablation: index structures for materialization", func(seed int64, quick bool) ([]*exp.Table, error) {
			n := 8000
			if quick {
				n = 600
			}
			r, err := exp.RunAblationIndexes(seed, n, 5)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"ablation-mat", "ablation: two-step algorithm vs naive recomputation", func(seed int64, quick bool) ([]*exp.Table, error) {
			n := 3000
			if quick {
				n = 300
			}
			r, err := exp.RunAblationMaterialization(seed, n)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"ablation-reach", "ablation: reach-dist smoothing vs raw distances", func(seed int64, quick bool) ([]*exp.Table, error) {
			n := 2000
			if quick {
				n = 400
			}
			r, err := exp.RunAblationReach(seed, n)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"quality", "detection quality: LOF vs kNN-distance vs DB-count on local+global outliers", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunQuality(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"noise-vs-lof", "DBSCAN binary noise vs LOF degrees on the figure 9 dataset", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunNoiseVsLOF(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"ablation-agg", "ablation: max vs mean vs min aggregation", func(seed int64, _ bool) ([]*exp.Table, error) {
			r, err := exp.RunAblationAggregates(seed)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"approx", "approximate fast path: recall@n vs speedup (pruning + coresets)", func(seed int64, quick bool) ([]*exp.Table, error) {
			r, err := exp.RunApprox(seed, quick)
			if err != nil {
				return nil, err
			}
			return []*exp.Table{r.Table()}, nil
		}},
		{"approx-gate", "CI recall gate: fixed-seed synthetic, prints a parseable GATE line", func(seed int64, quick bool) ([]*exp.Table, error) {
			n := 20000
			if quick {
				n = 2000
			}
			r, err := exp.RunApproxGate(seed, n)
			if err != nil {
				return nil, err
			}
			// The trailing single-cell table renders the GATE line verbatim
			// for scripts/approx_gate.sh to grep.
			return []*exp.Table{r.Table(), {Rows: [][]string{{r.GateLine()}}}}, nil
		}},
	}
}

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		seed     = flag.Int64("seed", 42, "random seed for synthetic datasets")
		quick    = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		listOnly = flag.Bool("list", false, "list available experiments and exit")
		stats    = flag.Bool("stats", false, "print a pipeline phase/counter breakdown after each experiment")
	)
	flag.Parse()

	exps := experiments()
	if *listOnly {
		for _, e := range exps {
			fmt.Printf("%-16s %s\n", e.name, e.desc)
		}
		return
	}

	byName := map[string]experiment{}
	for _, e := range exps {
		byName[e.name] = e
	}
	var selected []experiment
	if *expFlag == "all" {
		selected = exps
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(name)
			e, ok := byName[name]
			if !ok {
				known := make([]string, 0, len(byName))
				for n := range byName {
					known = append(known, n)
				}
				sort.Strings(known)
				fmt.Fprintf(os.Stderr, "lofexp: unknown experiment %q; available: %s\n", name, strings.Join(known, ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		tables, snap, err := runExperiment(e, *seed, *quick, *stats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lofexp: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		if snap != nil {
			printStats(os.Stdout, e.name, snap)
			fmt.Println()
		}
	}
}

// runExperiment runs one experiment, optionally under a fresh
// process-default tracer. Experiments call the internal pipeline packages
// directly rather than through a Config, so the default tracer is the
// hook that observes them; it is cleared again before returning so traced
// runs cannot leak into each other.
func runExperiment(e experiment, seed int64, quick, stats bool) ([]*exp.Table, *obs.RunStats, error) {
	if !stats {
		tables, err := e.run(seed, quick)
		return tables, nil, err
	}
	tr := obs.NewTracer()
	obs.SetDefault(tr)
	defer obs.SetDefault(nil)
	tables, err := e.run(seed, quick)
	if err != nil {
		return nil, nil, err
	}
	return tables, tr.Snapshot(), nil
}

// printStats renders a tracer snapshot as the experiment's phase and
// counter breakdown.
func printStats(w io.Writer, name string, snap *obs.RunStats) {
	fmt.Fprintf(w, "## %s pipeline stats\n", name)
	if len(snap.Phases) == 0 {
		fmt.Fprintln(w, "no traced phases (experiment does not run the LOF pipeline)")
		return
	}
	fmt.Fprintf(w, "%-14s %8s %10s %14s\n", "phase", "count", "items", "total")
	for _, p := range snap.Phases {
		indent := ""
		if obs.Nested(p.Name) {
			indent = "  "
		}
		fmt.Fprintf(w, "%-14s %8d %10d %14v\n", indent+p.Name, p.Count, p.Items, p.Total)
	}
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "%-33s %14d\n", c.Name, c.Value)
	}
}
