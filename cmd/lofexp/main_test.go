package main

import (
	"testing"
)

// Every registered experiment must run in quick mode and produce at least
// one non-empty table — the smoke test behind `lofexp -exp all -quick`.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range experiments() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			tables, err := e.run(42, true)
			if err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.name)
			}
			for ti, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %d is empty", e.name, ti)
				}
			}
		})
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments() {
		if seen[e.name] {
			t.Fatalf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Fatalf("experiment %q lacks a description", e.name)
		}
	}
}
