package main

import (
	"strings"
	"testing"

	"lof/internal/obs"
)

// Every registered experiment must run in quick mode and produce at least
// one non-empty table — the smoke test behind `lofexp -exp all -quick`.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range experiments() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			tables, err := e.run(42, true)
			if err != nil {
				t.Fatalf("%s: %v", e.name, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.name)
			}
			for ti, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %d is empty", e.name, ti)
				}
			}
		})
	}
}

func TestExperimentNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments() {
		if seen[e.name] {
			t.Fatalf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
		if e.desc == "" {
			t.Fatalf("experiment %q lacks a description", e.name)
		}
	}
}

// TestRunExperimentStats pins the -stats path: a pipeline-running
// experiment yields a snapshot with phases, and the process-default tracer
// is cleared afterwards.
func TestRunExperimentStats(t *testing.T) {
	var target experiment
	for _, e := range experiments() {
		if e.name == "fig7" {
			target = e
		}
	}
	tables, snap, err := runExperiment(target, 42, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	if snap == nil || len(snap.Phases) == 0 {
		t.Fatalf("stats run produced no phases: %+v", snap)
	}
	found := false
	for _, p := range snap.Phases {
		if p.Name == obs.PhaseMaterialize {
			found = true
		}
	}
	if !found {
		t.Fatalf("materialize phase missing from %+v", snap.Phases)
	}
	if obs.Default() != nil {
		t.Fatal("default tracer not cleared after traced experiment")
	}

	var buf strings.Builder
	printStats(&buf, target.name, snap)
	if !strings.Contains(buf.String(), "materialize") || !strings.Contains(buf.String(), "phase") {
		t.Fatalf("printed stats missing content:\n%s", buf.String())
	}

	// Without -stats no snapshot is produced.
	_, snap, err = runExperiment(target, 42, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatal("untraced experiment produced a snapshot")
	}
}
