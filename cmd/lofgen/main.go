// Command lofgen writes the library's synthetic datasets as CSV for use
// with lofcli or external tools.
//
// Usage:
//
//	lofgen -dataset ds1 > ds1.csv
//	lofgen -dataset clusters -n 10000 -dim 5 -k 8 -seed 7 > big.csv
//	lofgen -dataset soccer -labels > players.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"lof/internal/dataset"
	"lof/internal/geom"
)

func main() {
	var (
		name   = flag.String("dataset", "clusters", "ds1, fig7, fig8, fig9, soccer, hockey1, hockey2, colorhist or clusters")
		seed   = flag.Int64("seed", 42, "random seed")
		n      = flag.Int("n", 1000, "points for -dataset clusters / fig7")
		dim    = flag.Int("dim", 2, "dimensionality for -dataset clusters")
		k      = flag.Int("k", 5, "cluster count for -dataset clusters")
		labels = flag.Bool("labels", false, "emit a label column (column 0) and a header row")
	)
	flag.Parse()

	d, err := build(*name, *seed, *n, *dim, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lofgen: %v\n", err)
		os.Exit(2)
	}
	opts := dataset.CSVOptions{LabelColumn: -1}
	if *labels {
		opts = dataset.CSVOptions{Header: true, LabelColumn: 0}
	}
	if err := dataset.WriteCSV(os.Stdout, d, opts); err != nil {
		fmt.Fprintf(os.Stderr, "lofgen: %v\n", err)
		os.Exit(1)
	}
}

func build(name string, seed int64, n, dim, k int) (*dataset.Dataset, error) {
	switch name {
	case "ds1":
		return dataset.DS1(seed), nil
	case "fig7":
		return dataset.Fig7Gaussian(seed, n), nil
	case "fig8":
		return dataset.Fig8Dataset(seed).Dataset, nil
	case "fig9":
		return dataset.Fig9Dataset(seed), nil
	case "soccer":
		return dataset.Soccer(seed).Dataset(), nil
	case "hockey1":
		return dataset.Hockey(seed).Test1(), nil
	case "hockey2":
		return dataset.Hockey(seed).Test2(), nil
	case "colorhist":
		return dataset.ColorHistograms(seed, dataset.DefaultColorHistSpec()), nil
	case "clusters":
		return dataset.RandomClusters(seed, n, dim, k), nil
	case "uniform":
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for i := range hi {
			hi[i] = 1
		}
		return dataset.UniformBox(seed, lo, hi, n), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
