package main

import (
	"testing"
)

func TestBuildKnownDatasets(t *testing.T) {
	cases := []struct {
		name    string
		wantLen int
		wantDim int
	}{
		{"ds1", 502, 2},
		{"fig7", 100, 2},
		{"fig8", 545, 2},
		{"fig9", 1707, 2},
		{"soccer", 375, 3},
		{"hockey1", 0, 3}, // size depends on the league; only dim checked
		{"hockey2", 0, 3},
		{"colorhist", 730, 64},
		{"clusters", 100, 4},
		{"uniform", 100, 4},
	}
	for _, c := range cases {
		d, err := build(c.name, 42, 100, 4, 3)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if c.wantLen > 0 && d.Len() != c.wantLen {
			t.Errorf("%s: len=%d want %d", c.name, d.Len(), c.wantLen)
		}
		if d.Dim() != c.wantDim {
			t.Errorf("%s: dim=%d want %d", c.name, d.Dim(), c.wantDim)
		}
	}
}

func TestBuildUnknownDataset(t *testing.T) {
	if _, err := build("mystery", 1, 10, 2, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := build("clusters", 7, 50, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build("clusters", 7, 50, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Points.At(i).Equal(b.Points.At(i)) {
			t.Fatalf("row %d differs", i)
		}
	}
}
