// Command lofload is a soak and load generator for lofserve. It drives a
// fit+score request mix at a target rate through the fault-tolerant client
// (retries, backoff, retry budget), optionally injecting client-side
// faults — latency spikes, transient errors, dropped responses — so the
// whole retry path is exercised, and reports throughput, latency quantiles
// and retry/fault counters at the end.
//
// Usage:
//
//	lofload -self -duration 10s -rps 50                 # self-hosted target
//	lofload -addr http://127.0.0.1:8080 -duration 1m    # external server
//	lofload -self -error-prob 0.1 -latency-prob 0.2 -latency 5ms
//	lofload -self -mode degraded -rps 200               # degraded opt-in
//
// With -self, an in-process lofserve instance is started on a loopback
// port and torn down afterwards, so a single command is a full soak test.
// The exit code is 0 only when every logical request eventually succeeded.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lof/internal/client"
	"lof/internal/faults"
	"lof/internal/obs"
	"lof/internal/server"
)

type options struct {
	addr      string
	self      bool
	duration  time.Duration
	rps       float64
	workers   int
	batch     int
	dim       int
	points    int
	scoreFrac float64
	mode      string
	seed      int64

	dropProb    float64
	errorProb   float64
	latencyProb float64
	latency     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "base URL of a running lofserve (e.g. http://127.0.0.1:8080)")
	flag.BoolVar(&o.self, "self", false, "start an in-process server on a loopback port as the target")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "how long to drive load")
	flag.Float64Var(&o.rps, "rps", 50, "target request rate per second (open loop)")
	flag.IntVar(&o.workers, "workers", 8, "concurrent request senders")
	flag.IntVar(&o.batch, "batch", 16, "query points per score request")
	flag.IntVar(&o.dim, "dim", 4, "data dimensionality")
	flag.IntVar(&o.points, "points", 400, "data points per fit request")
	flag.Float64Var(&o.scoreFrac, "score-frac", 0.95, "fraction of requests that score (the rest refit)")
	flag.StringVar(&o.mode, "mode", "", `score mode: "" (exact), "full" or "degraded"`)
	flag.Int64Var(&o.seed, "seed", 1, "seed for workload and fault schedules")
	flag.Float64Var(&o.dropProb, "drop-prob", 0, "client-side injected dropped-response probability")
	flag.Float64Var(&o.errorProb, "error-prob", 0, "client-side injected transient-error probability")
	flag.Float64Var(&o.latencyProb, "latency-prob", 0, "client-side injected latency-spike probability")
	flag.DurationVar(&o.latency, "latency", 5*time.Millisecond, "injected latency-spike ceiling")
	flag.Parse()

	rep, err := run(context.Background(), o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lofload:", err)
		os.Exit(1)
	}
	if rep.failed.Load() > 0 {
		os.Exit(1)
	}
}

// report aggregates one run's outcome. Counters are atomic because the
// workers race on them; read them after run returns.
type report struct {
	sent     atomic.Int64 // requests handed to workers
	skipped  atomic.Int64 // pacer ticks dropped because every worker was busy
	ok       atomic.Int64
	failed   atomic.Int64
	degraded atomic.Int64 // responses served from the degraded model

	fitHist   *obs.Histogram
	scoreHist *obs.Histogram
	elapsed   time.Duration

	clientStats client.Stats
	faultStats  faults.Stats
}

// loadBuckets spans 100µs to ~26s in powers of two — wide enough for both
// sub-millisecond scores and multi-second refits.
var loadBuckets = func() []float64 {
	var bs []float64
	for b := 100e-6; b < 30; b *= 2 {
		bs = append(bs, b)
	}
	return bs
}()

// clusters draws n points from two Gaussian clusters in dim dimensions —
// the same workload shape the rest of the repo benchmarks with.
func clusters(rng *rand.Rand, n, dim int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dim)
		off := 0.0
		if i%2 == 1 {
			off = 10
		}
		for d := range row {
			row[d] = off + rng.NormFloat64()
		}
		data[i] = row
	}
	return data
}

// selfServer starts an in-process lofserve on a loopback port and returns
// its base URL plus a shutdown func.
func selfServer() (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := server.New(server.Config{})
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func run(ctx context.Context, o options, out io.Writer) (*report, error) {
	if o.addr == "" && !o.self {
		return nil, fmt.Errorf("need -addr or -self")
	}
	if o.rps <= 0 || o.workers <= 0 || o.duration <= 0 {
		return nil, fmt.Errorf("-rps, -workers and -duration must be positive")
	}
	base := o.addr
	if o.self {
		var stop func()
		var err error
		base, stop, err = selfServer()
		if err != nil {
			return nil, err
		}
		defer stop()
	}

	inj := faults.New(faults.Config{
		Seed:        o.seed,
		DropProb:    o.dropProb,
		ErrorProb:   o.errorProb,
		LatencyProb: o.latencyProb,
		Latency:     o.latency,
	})
	c, err := client.New(client.Config{
		BaseURL:    base,
		HTTPClient: &http.Client{Transport: inj.Transport(nil)},
		// Soak posture: more attempts and headroom than the default, so a
		// lossy schedule still converges to 100% eventual success.
		MaxAttempts:      8,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       250 * time.Millisecond,
		RetryBudgetRatio: 2 * (o.dropProb + o.errorProb + 0.05),
		RetryBudgetBurst: 64,
		Seed:             o.seed,
	})
	if err != nil {
		return nil, err
	}

	rep := &report{
		fitHist:   obs.NewHistogram(loadBuckets),
		scoreHist: obs.NewHistogram(loadBuckets),
	}
	fitCfg := server.FitConfig{MinPtsLB: 3, MinPtsUB: 10}
	seedRng := rand.New(rand.NewSource(o.seed))
	fitData := clusters(seedRng, o.points, o.dim)

	// The soak needs a model before the mix starts; this initial fit also
	// proves the target is reachable.
	if _, err := c.Fit(ctx, fitCfg, fitData); err != nil {
		return nil, fmt.Errorf("initial fit: %w", err)
	}

	runCtx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	start := time.Now()

	// Open-loop pacer: ticks arrive at the target rate regardless of how
	// fast responses come back; a full queue means the workers are
	// saturated and the tick is counted as skipped rather than deferred —
	// deferring would hide coordinated omission.
	jobs := make(chan struct{}, o.workers)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(w)*7919))
			for range jobs {
				doOne(runCtx, c, o, rng, fitCfg, rep)
			}
		}(w)
	}
	interval := time.Duration(float64(time.Second) / o.rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
pace:
	for {
		select {
		case <-runCtx.Done():
			break pace
		case <-ticker.C:
			select {
			case jobs <- struct{}{}:
				rep.sent.Add(1)
			default:
				rep.skipped.Add(1)
			}
		}
	}
	ticker.Stop()
	close(jobs)
	wg.Wait()

	rep.elapsed = time.Since(start)
	rep.clientStats = c.Stats()
	rep.faultStats = inj.Stats()
	printReport(out, o, rep)
	return rep, nil
}

// doOne issues one request of the mix. A request that fails after the
// client's full retry envelope counts as failed; context expiry at the end
// of the run window does not (the run ended, the request did not fail).
func doOne(ctx context.Context, c *client.Client, o options, rng *rand.Rand, fitCfg server.FitConfig, rep *report) {
	score := rng.Float64() < o.scoreFrac
	start := time.Now()
	var err error
	if score {
		queries := clusters(rng, o.batch, o.dim)
		var res *client.ScoreResult
		res, err = c.ScoreMode(ctx, queries, o.mode)
		if err == nil && res.Mode == "degraded" {
			rep.degraded.Add(1)
		}
	} else {
		_, err = c.Fit(ctx, fitCfg, clusters(rng, o.points, o.dim))
	}
	elapsed := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			rep.sent.Add(-1) // run window closed mid-request: not a verdict
			return
		}
		rep.failed.Add(1)
		return
	}
	rep.ok.Add(1)
	if score {
		rep.scoreHist.Observe(elapsed)
	} else {
		rep.fitHist.Observe(elapsed)
	}
}

func printReport(w io.Writer, o options, rep *report) {
	sent, ok, failed := rep.sent.Load(), rep.ok.Load(), rep.failed.Load()
	fmt.Fprintf(w, "lofload: %s at %.0f rps, %d workers, score-frac %.2f\n",
		rep.elapsed.Round(time.Millisecond), o.rps, o.workers, o.scoreFrac)
	fmt.Fprintf(w, "  requests: sent=%d ok=%d failed=%d skipped=%d degraded=%d (%.1f req/s achieved)\n",
		sent, ok, failed, rep.skipped.Load(), rep.degraded.Load(),
		float64(ok+failed)/rep.elapsed.Seconds())
	for _, h := range []struct {
		name string
		snap obs.HistogramSnapshot
	}{{"score", rep.scoreHist.Snapshot()}, {"fit", rep.fitHist.Snapshot()}} {
		if h.snap.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %s latency: n=%d p50=%s p95=%s p99=%s\n", h.name, h.snap.Count(),
			h.snap.Quantile(0.50).Round(10*time.Microsecond),
			h.snap.Quantile(0.95).Round(10*time.Microsecond),
			h.snap.Quantile(0.99).Round(10*time.Microsecond))
	}
	cs := rep.clientStats
	fmt.Fprintf(w, "  client: attempts=%d retries=%d budget-denials=%d\n",
		cs.Attempts, cs.Retries, cs.BudgetDenials)
	fs := rep.faultStats
	if fs != (faults.Stats{}) {
		fmt.Fprintf(w, "  injected faults: drops=%d errors=%d latency-spikes=%d\n",
			fs.Drops, fs.Errors, fs.Latencies)
	}
}
