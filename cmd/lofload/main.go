// Command lofload is a soak and load generator for lofserve. It drives a
// fit+score request mix at a target rate through the fault-tolerant client
// (retries, backoff, retry budget), optionally injecting client-side
// faults — latency spikes, transient errors, dropped responses — so the
// whole retry path is exercised, and reports throughput, latency quantiles
// and retry/fault counters at the end.
//
// Usage:
//
//	lofload -self -duration 10s -rps 50                 # self-hosted target
//	lofload -addr http://127.0.0.1:8080 -duration 1m    # external server
//	lofload -addr http://a:8080,http://b:8080 -rps 400  # round-robin fan-out
//	lofload -self -error-prob 0.1 -latency-prob 0.2 -latency 5ms
//	lofload -self -mode degraded -rps 200               # degraded opt-in
//	lofload -self -mode pruned -rps 200                 # bound-certified fast path
//	lofload -self -json report.json                     # machine-readable report
//	lofload -self -stream -rps 500 -score-frac 0.5      # streaming ingest mix
//	lofload -self -trace -json -                        # trace IDs of p99 stragglers
//
// With -self, an in-process lofserve instance is started on a loopback
// port and torn down afterwards, so a single command is a full soak test.
// -addr accepts a comma-separated list of base URLs (independent lofserve
// instances or lofcoord coordinators); requests round-robin across them,
// which is how throughput scaling across a sharded tier is measured. With
// -json, a machine-readable report — latency quantiles, error and degraded
// counts, achieved rate — is written to the given path ("-" for stdout) in
// the same spirit as the BENCH_*.json baselines.
//
// With -stream, the workload switches from fit+score to streaming
// ingestion: each request is either a batched insert push (which the
// server's sliding window bounds, expiring the oldest points) or an
// out-of-sample score against the published epoch, mixed by -score-frac.
// The report then adds sustained inserts/sec and the insert-push latency
// quantiles — the streaming bench numbers BENCH_5 baselines. Pushes ride
// the same retry loop as everything else; a push retried after a lost
// response re-inserts its batch, which inflates ingest volume slightly
// under injected faults but never corrupts the window.
// The exit code is 0 only when every logical request eventually succeeded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lof"
	"lof/internal/client"
	"lof/internal/faults"
	"lof/internal/obs"
	"lof/internal/server"
	"lof/internal/trace"
)

type options struct {
	addr      string
	self      bool
	model     string
	duration  time.Duration
	rps       float64
	workers   int
	batch     int
	dim       int
	points    int
	scoreFrac float64
	mode      string
	seed      int64
	jsonPath  string

	trace bool

	stream       bool
	streamWindow int
	streamMinPts int

	dropProb    float64
	errorProb   float64
	latencyProb float64
	latency     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "comma-separated base URLs of running lofserve/lofcoord targets (round-robin)")
	flag.BoolVar(&o.self, "self", false, "start an in-process server on a loopback port as the target")
	flag.StringVar(&o.model, "model", "", "model snapshot to preload into the -self server (mmap'd when the format and platform allow)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "how long to drive load")
	flag.Float64Var(&o.rps, "rps", 50, "target request rate per second (open loop)")
	flag.IntVar(&o.workers, "workers", 8, "concurrent request senders")
	flag.IntVar(&o.batch, "batch", 16, "query points per score request")
	flag.IntVar(&o.dim, "dim", 4, "data dimensionality")
	flag.IntVar(&o.points, "points", 400, "data points per fit request")
	flag.Float64Var(&o.scoreFrac, "score-frac", 0.95, "fraction of requests that score (the rest refit)")
	flag.StringVar(&o.mode, "mode", "", `score mode: "" (exact), "full", "pruned", "coreset" or "degraded"`)
	flag.Int64Var(&o.seed, "seed", 1, "seed for workload and fault schedules")
	flag.StringVar(&o.jsonPath, "json", "", `write a machine-readable JSON report to this path ("-" for stdout)`)
	flag.BoolVar(&o.trace, "trace", false, "send a sampled traceparent with every request and report the trace IDs of p99 score stragglers (pair with the target's -trace-sample/-trace-slow and /v1/debug/traces)")
	flag.BoolVar(&o.stream, "stream", false, "drive streaming ingest traffic (insert pushes + epoch scores) instead of fit+score")
	flag.IntVar(&o.streamWindow, "stream-window", 2000, "sliding-window point bound for -stream")
	flag.IntVar(&o.streamMinPts, "stream-minpts", 10, "MinPts for -stream pipelines")
	flag.Float64Var(&o.dropProb, "drop-prob", 0, "client-side injected dropped-response probability")
	flag.Float64Var(&o.errorProb, "error-prob", 0, "client-side injected transient-error probability")
	flag.Float64Var(&o.latencyProb, "latency-prob", 0, "client-side injected latency-spike probability")
	flag.DurationVar(&o.latency, "latency", 5*time.Millisecond, "injected latency-spike ceiling")
	flag.Parse()

	rep, err := run(context.Background(), o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lofload:", err)
		os.Exit(1)
	}
	if rep.failed.Load() > 0 {
		os.Exit(1)
	}
}

// report aggregates one run's outcome. Counters are atomic because the
// workers race on them; read them after run returns.
type report struct {
	targets  []string     // resolved base URLs, in round-robin order
	sent     atomic.Int64 // requests handed to workers
	skipped  atomic.Int64 // pacer ticks dropped because every worker was busy
	ok       atomic.Int64
	failed   atomic.Int64
	degraded atomic.Int64 // responses served from the degraded model
	inserted atomic.Int64 // points ingested in -stream mode
	expired  atomic.Int64 // points the sliding window expired in -stream mode

	fitHist    *obs.Histogram
	scoreHist  *obs.Histogram
	insertHist *obs.Histogram
	elapsed    time.Duration

	// stragglers keeps the slowest traced score requests (trace ID +
	// latency) so the report can name what to pull from /v1/debug/traces.
	stragglerMu sync.Mutex
	stragglers  []straggler

	clientStats client.Stats
	faultStats  faults.Stats
}

// straggler is one traced score request retained for the report.
type straggler struct {
	TraceID string  `json:"trace_id"`
	MS      float64 `json:"latency_ms"`
}

// maxStragglers bounds retention: only the slowest requests matter, and a
// long soak must not accumulate one entry per request.
const maxStragglers = 64

// noteTraced records a traced score request, evicting the fastest retained
// entry once the bound is hit.
func (rep *report) noteTraced(traceID string, elapsed time.Duration) {
	ms := float64(elapsed.Microseconds()) / 1000
	rep.stragglerMu.Lock()
	defer rep.stragglerMu.Unlock()
	if len(rep.stragglers) < maxStragglers {
		rep.stragglers = append(rep.stragglers, straggler{traceID, ms})
		return
	}
	min := 0
	for i := 1; i < len(rep.stragglers); i++ {
		if rep.stragglers[i].MS < rep.stragglers[min].MS {
			min = i
		}
	}
	if ms > rep.stragglers[min].MS {
		rep.stragglers[min] = straggler{traceID, ms}
	}
}

// p99Stragglers returns the slowest 1% of score requests (at least one),
// slowest first, capped at n. The cut is by rank, not by the histogram's
// p99 estimate: bucket interpolation can place that estimate above the true
// maximum, which would name no stragglers at all.
func (rep *report) p99Stragglers(n int) []straggler {
	k := int(rep.scoreHist.Snapshot().Count() / 100)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rep.stragglerMu.Lock()
	out := append([]straggler(nil), rep.stragglers...)
	rep.stragglerMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].MS > out[j].MS })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// loadBuckets spans 100µs to ~26s in powers of two — wide enough for both
// sub-millisecond scores and multi-second refits.
var loadBuckets = func() []float64 {
	var bs []float64
	for b := 100e-6; b < 30; b *= 2 {
		bs = append(bs, b)
	}
	return bs
}()

// clusters draws n points from two Gaussian clusters in dim dimensions —
// the same workload shape the rest of the repo benchmarks with.
func clusters(rng *rand.Rand, n, dim int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dim)
		off := 0.0
		if i%2 == 1 {
			off = 10
		}
		for d := range row {
			row[d] = off + rng.NormFloat64()
		}
		data[i] = row
	}
	return data
}

// selfServer starts an in-process lofserve on a loopback port and returns
// its base URL plus a shutdown func. With traced, the server records every
// span so -self -trace is a self-contained demo of the straggler report.
// A non-empty modelPath preloads a snapshot (mmap'd when possible) so a
// score-only soak can run against a served model without fitting first.
func selfServer(traced bool, modelPath string) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var cfg server.Config
	if traced {
		cfg.Trace = trace.NewCollector(trace.Config{Service: "lofload-self", Sample: 1})
	}
	srv := server.New(cfg)
	if modelPath != "" {
		m, info, err := lof.OpenModelFile(modelPath)
		if err != nil {
			ln.Close()
			return "", nil, fmt.Errorf("preloading %s: %w", modelPath, err)
		}
		srv.SetModel(m)
		mode := "copy"
		if info.Mapped {
			mode = "mmap"
		}
		fmt.Fprintf(os.Stderr, "lofload: preloaded %s (v%d, %d bytes, %s, %d points)\n",
			modelPath, info.Version, info.Bytes, mode, m.Len())
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func run(ctx context.Context, o options, out io.Writer) (*report, error) {
	if o.addr == "" && !o.self {
		return nil, fmt.Errorf("need -addr or -self")
	}
	if o.rps <= 0 || o.workers <= 0 || o.duration <= 0 {
		return nil, fmt.Errorf("-rps, -workers and -duration must be positive")
	}
	var targets []string
	for _, u := range strings.Split(o.addr, ",") {
		if u = strings.TrimSpace(u); u != "" {
			targets = append(targets, u)
		}
	}
	if o.model != "" && !o.self {
		return nil, fmt.Errorf("-model requires -self; external targets load their own snapshots")
	}
	if o.self {
		base, stop, err := selfServer(o.trace, o.model)
		if err != nil {
			return nil, err
		}
		defer stop()
		targets = append(targets, base)
	}

	inj := faults.New(faults.Config{
		Seed:        o.seed,
		DropProb:    o.dropProb,
		ErrorProb:   o.errorProb,
		LatencyProb: o.latencyProb,
		Latency:     o.latency,
	})
	clients := make([]*client.Client, len(targets))
	for i, base := range targets {
		c, err := client.New(client.Config{
			BaseURL:    base,
			HTTPClient: &http.Client{Transport: inj.Transport(nil)},
			// Soak posture: more attempts and headroom than the default, so a
			// lossy schedule still converges to 100% eventual success.
			MaxAttempts:      8,
			BaseBackoff:      2 * time.Millisecond,
			MaxBackoff:       250 * time.Millisecond,
			RetryBudgetRatio: 2 * (o.dropProb + o.errorProb + 0.05),
			RetryBudgetBurst: 64,
			Seed:             o.seed,
		})
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}

	rep := &report{
		targets:    targets,
		fitHist:    obs.NewHistogram(loadBuckets),
		scoreHist:  obs.NewHistogram(loadBuckets),
		insertHist: obs.NewHistogram(loadBuckets),
	}
	fitCfg := server.FitConfig{MinPtsLB: 3, MinPtsUB: 10}
	seedRng := rand.New(rand.NewSource(o.seed))

	if o.stream {
		if o.streamWindow <= o.streamMinPts {
			return nil, fmt.Errorf("-stream-window (%d) must exceed -stream-minpts (%d)", o.streamWindow, o.streamMinPts)
		}
		// Each target gets its own pipeline, primed with one batch so the
		// first scores see a populated window; priming also proves each
		// target is reachable.
		scfg := server.StreamConfig{Dim: o.dim, MinPts: o.streamMinPts, MaxPoints: o.streamWindow}
		prime := clusters(seedRng, o.points, o.dim)
		for i, c := range clients {
			if _, err := c.StreamInit(ctx, scfg); err != nil {
				return nil, fmt.Errorf("stream init on %s: %w", targets[i], err)
			}
			if _, err := c.StreamPush(ctx, prime, nil, 0); err != nil {
				return nil, fmt.Errorf("priming push on %s: %w", targets[i], err)
			}
		}
	} else {
		fitData := clusters(seedRng, o.points, o.dim)
		// Every target needs a model before the mix starts (targets are
		// independent servers or coordinators); the initial fits also prove
		// each one is reachable.
		for i, c := range clients {
			if _, err := c.Fit(ctx, fitCfg, fitData); err != nil {
				return nil, fmt.Errorf("initial fit on %s: %w", targets[i], err)
			}
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, o.duration)
	defer cancel()
	start := time.Now()

	// Open-loop pacer: ticks arrive at the target rate regardless of how
	// fast responses come back; a full queue means the workers are
	// saturated and the tick is counted as skipped rather than deferred —
	// deferring would hide coordinated omission.
	jobs := make(chan struct{}, o.workers)
	var next atomic.Int64 // round-robin cursor over targets
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(w)*7919))
			for range jobs {
				c := clients[int(next.Add(1))%len(clients)]
				doOne(runCtx, c, o, rng, fitCfg, rep)
			}
		}(w)
	}
	interval := time.Duration(float64(time.Second) / o.rps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
pace:
	for {
		select {
		case <-runCtx.Done():
			break pace
		case <-ticker.C:
			select {
			case jobs <- struct{}{}:
				rep.sent.Add(1)
			default:
				rep.skipped.Add(1)
			}
		}
	}
	ticker.Stop()
	close(jobs)
	wg.Wait()

	rep.elapsed = time.Since(start)
	for _, c := range clients {
		s := c.Stats()
		rep.clientStats.Attempts += s.Attempts
		rep.clientStats.Retries += s.Retries
		rep.clientStats.BudgetDenials += s.BudgetDenials
	}
	rep.faultStats = inj.Stats()
	printReport(out, o, rep)
	if o.jsonPath != "" {
		if err := writeJSONReport(o, rep, out); err != nil {
			return nil, fmt.Errorf("writing JSON report: %w", err)
		}
	}
	return rep, nil
}

// jsonReport is the machine-readable run summary written by -json, shaped
// like the BENCH_*.json baselines: stable field names, one object per run,
// durations in milliseconds.
type jsonReport struct {
	Targets     []string `json:"targets"`
	DurationSec float64  `json:"duration_seconds"`
	TargetRPS   float64  `json:"target_rps"`
	AchievedRPS float64  `json:"achieved_rps"`
	Workers     int      `json:"workers"`
	Batch       int      `json:"batch"`
	ScoreFrac   float64  `json:"score_frac"`
	Mode        string   `json:"mode,omitempty"`

	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Failed   int64 `json:"failed"`
	Skipped  int64 `json:"skipped"`
	Degraded int64 `json:"degraded"`

	ScoreLatency  *jsonLatency `json:"score_latency,omitempty"`
	FitLatency    *jsonLatency `json:"fit_latency,omitempty"`
	InsertLatency *jsonLatency `json:"insert_latency,omitempty"`

	Stream *jsonStream `json:"stream,omitempty"`

	// TraceStragglers lists the slowest traced score requests at or above
	// the p99, slowest first — the IDs to pull from /v1/debug/traces.
	TraceStragglers []straggler `json:"trace_stragglers,omitempty"`

	Client struct {
		Attempts      int64 `json:"attempts"`
		Retries       int64 `json:"retries"`
		BudgetDenials int64 `json:"budget_denials"`
	} `json:"client"`
	Faults struct {
		Drops         int64 `json:"drops"`
		Errors        int64 `json:"errors"`
		LatencySpikes int64 `json:"latency_spikes"`
	} `json:"faults"`
}

type jsonLatency struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// jsonStream is the -stream addendum: sustained ingest throughput and the
// window churn that produced it.
type jsonStream struct {
	WindowPoints  int     `json:"window_points"`
	MinPts        int     `json:"min_pts"`
	Inserted      int64   `json:"inserted"`
	Expired       int64   `json:"expired"`
	InsertsPerSec float64 `json:"inserts_per_sec"`
}

func latencyOf(snap obs.HistogramSnapshot) *jsonLatency {
	if snap.Count() == 0 {
		return nil
	}
	ms := func(q float64) float64 {
		return float64(snap.Quantile(q).Microseconds()) / 1000
	}
	return &jsonLatency{Count: snap.Count(), P50ms: ms(0.50), P95ms: ms(0.95), P99ms: ms(0.99)}
}

func writeJSONReport(o options, rep *report, stdout io.Writer) error {
	jr := jsonReport{
		Targets:     rep.targets,
		DurationSec: rep.elapsed.Seconds(),
		TargetRPS:   o.rps,
		Workers:     o.workers,
		Batch:       o.batch,
		ScoreFrac:   o.scoreFrac,
		Mode:        o.mode,
		Sent:        rep.sent.Load(),
		OK:          rep.ok.Load(),
		Failed:      rep.failed.Load(),
		Skipped:     rep.skipped.Load(),
		Degraded:    rep.degraded.Load(),
	}
	jr.AchievedRPS = float64(jr.OK+jr.Failed) / rep.elapsed.Seconds()
	jr.ScoreLatency = latencyOf(rep.scoreHist.Snapshot())
	jr.FitLatency = latencyOf(rep.fitHist.Snapshot())
	jr.InsertLatency = latencyOf(rep.insertHist.Snapshot())
	if o.stream {
		jr.Stream = &jsonStream{
			WindowPoints:  o.streamWindow,
			MinPts:        o.streamMinPts,
			Inserted:      rep.inserted.Load(),
			Expired:       rep.expired.Load(),
			InsertsPerSec: float64(rep.inserted.Load()) / rep.elapsed.Seconds(),
		}
	}
	if o.trace {
		jr.TraceStragglers = rep.p99Stragglers(10)
	}
	jr.Client.Attempts = rep.clientStats.Attempts
	jr.Client.Retries = rep.clientStats.Retries
	jr.Client.BudgetDenials = rep.clientStats.BudgetDenials
	jr.Faults.Drops = rep.faultStats.Drops
	jr.Faults.Errors = rep.faultStats.Errors
	jr.Faults.LatencySpikes = rep.faultStats.Latencies
	buf, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if o.jsonPath == "-" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(o.jsonPath, buf, 0o644)
}

// doOne issues one request of the mix. A request that fails after the
// client's full retry envelope counts as failed; context expiry at the end
// of the run window does not (the run ended, the request did not fail).
func doOne(ctx context.Context, c *client.Client, o options, rng *rand.Rand, fitCfg server.FitConfig, rep *report) {
	score := rng.Float64() < o.scoreFrac
	var traceID string
	if o.trace {
		// A fresh sampled trace per request: the client injects it as the
		// traceparent, the target records the request's spans under it, and
		// the report names the IDs worth pulling from /v1/debug/traces.
		sc := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID(), Sampled: true}
		ctx = trace.ContextWithRemote(ctx, sc)
		traceID = sc.TraceID.String()
	}
	start := time.Now()
	var err error
	switch {
	case o.stream && score:
		_, err = c.StreamScore(ctx, clusters(rng, o.batch, o.dim))
	case o.stream:
		var res *client.StreamPushResult
		res, err = c.StreamPush(ctx, clusters(rng, o.batch, o.dim), nil, 0)
		if err == nil {
			rep.inserted.Add(int64(len(res.Inserted)))
			rep.expired.Add(int64(len(res.Expired)))
		}
	case score:
		queries := clusters(rng, o.batch, o.dim)
		var res *client.ScoreResult
		res, err = c.ScoreMode(ctx, queries, o.mode)
		if err == nil && res.Mode == "degraded" {
			rep.degraded.Add(1)
		}
	default:
		_, err = c.Fit(ctx, fitCfg, clusters(rng, o.points, o.dim))
	}
	elapsed := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			rep.sent.Add(-1) // run window closed mid-request: not a verdict
			return
		}
		rep.failed.Add(1)
		return
	}
	rep.ok.Add(1)
	switch {
	case score:
		rep.scoreHist.Observe(elapsed)
		if traceID != "" {
			rep.noteTraced(traceID, elapsed)
		}
	case o.stream:
		rep.insertHist.Observe(elapsed)
	default:
		rep.fitHist.Observe(elapsed)
	}
}

func printReport(w io.Writer, o options, rep *report) {
	sent, ok, failed := rep.sent.Load(), rep.ok.Load(), rep.failed.Load()
	fmt.Fprintf(w, "lofload: %s at %.0f rps, %d workers, score-frac %.2f\n",
		rep.elapsed.Round(time.Millisecond), o.rps, o.workers, o.scoreFrac)
	fmt.Fprintf(w, "  requests: sent=%d ok=%d failed=%d skipped=%d degraded=%d (%.1f req/s achieved)\n",
		sent, ok, failed, rep.skipped.Load(), rep.degraded.Load(),
		float64(ok+failed)/rep.elapsed.Seconds())
	if o.stream {
		fmt.Fprintf(w, "  stream: inserted=%d expired=%d window=%d (%.0f inserts/s sustained)\n",
			rep.inserted.Load(), rep.expired.Load(), o.streamWindow,
			float64(rep.inserted.Load())/rep.elapsed.Seconds())
	}
	for _, h := range []struct {
		name string
		snap obs.HistogramSnapshot
	}{{"score", rep.scoreHist.Snapshot()}, {"fit", rep.fitHist.Snapshot()}, {"insert", rep.insertHist.Snapshot()}} {
		if h.snap.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "  %s latency: n=%d p50=%s p95=%s p99=%s\n", h.name, h.snap.Count(),
			h.snap.Quantile(0.50).Round(10*time.Microsecond),
			h.snap.Quantile(0.95).Round(10*time.Microsecond),
			h.snap.Quantile(0.99).Round(10*time.Microsecond))
	}
	if o.trace {
		for _, s := range rep.p99Stragglers(5) {
			fmt.Fprintf(w, "  p99 straggler: trace=%s latency=%.2fms\n", s.TraceID, s.MS)
		}
	}
	cs := rep.clientStats
	fmt.Fprintf(w, "  client: attempts=%d retries=%d budget-denials=%d\n",
		cs.Attempts, cs.Retries, cs.BudgetDenials)
	fs := rep.faultStats
	if fs != (faults.Stats{}) {
		fmt.Fprintf(w, "  injected faults: drops=%d errors=%d latency-spikes=%d\n",
			fs.Drops, fs.Errors, fs.Latencies)
	}
}
