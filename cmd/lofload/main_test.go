package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSoakAgainstSelfWithFaults is the short in-process soak: a second of
// mixed fit+score load through the retrying client against a self-hosted
// server, with transient errors, drops and latency spikes injected on the
// client path. Every logical request must eventually succeed, the report
// must show the retry machinery actually fired, and no goroutines may
// outlive the run.
func TestSoakAgainstSelfWithFaults(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var out bytes.Buffer
	o := options{
		self:        true,
		duration:    1200 * time.Millisecond,
		rps:         60,
		workers:     4,
		batch:       4,
		dim:         3,
		points:      150,
		scoreFrac:   0.9,
		seed:        1,
		dropProb:    0.03,
		errorProb:   0.07,
		latencyProb: 0.15,
		latency:     2 * time.Millisecond,
	}
	rep, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := rep.failed.Load(); got != 0 {
		t.Errorf("%d requests never succeeded under 10%% fault injection\n%s", got, out.String())
	}
	if rep.ok.Load() == 0 {
		t.Fatalf("soak sent no successful requests\n%s", out.String())
	}
	if rep.clientStats.Retries == 0 {
		t.Errorf("no retries recorded — fault injection did not engage\n%s", out.String())
	}
	if rep.faultStats.Drops+rep.faultStats.Errors == 0 {
		t.Errorf("injector fired no faults\n%s", out.String())
	}
	for _, want := range []string{"requests:", "client:", "injected faults:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q section:\n%s", want, out.String())
		}
	}

	// The self-server, its pool and the workers must all be gone.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak after soak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestDegradedSoak: the degraded opt-in flows end to end — the report
// counts degraded responses when the mode is requested.
func TestDegradedSoak(t *testing.T) {
	var out bytes.Buffer
	o := options{
		self:      true,
		duration:  500 * time.Millisecond,
		rps:       40,
		workers:   2,
		batch:     2,
		dim:       2,
		points:    120,
		scoreFrac: 1.0,
		mode:      "degraded",
		seed:      2,
	}
	rep, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed.Load() != 0 {
		t.Errorf("failures in clean degraded soak:\n%s", out.String())
	}
	if rep.degraded.Load() == 0 {
		t.Errorf("no degraded responses recorded despite -mode degraded\n%s", out.String())
	}
}

// TestStreamSoak drives the -stream mixed insert/expire/score workload
// against a self-hosted server: the window must churn (inserts and
// expiries both observed), the report must carry the stream section and
// insert quantiles, and the JSON report must include the stream block.
func TestStreamSoak(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	o := options{
		self:         true,
		duration:     1200 * time.Millisecond,
		rps:          40,
		workers:      4,
		batch:        8,
		dim:          2,
		points:       80,
		scoreFrac:    0.5,
		seed:         5,
		jsonPath:     path,
		stream:       true,
		streamWindow: 100,
		streamMinPts: 5,
	}
	rep, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if rep.failed.Load() != 0 || rep.ok.Load() == 0 {
		t.Fatalf("stream soak: ok=%d failed=%d\n%s", rep.ok.Load(), rep.failed.Load(), out.String())
	}
	if rep.inserted.Load() == 0 || rep.expired.Load() == 0 {
		t.Fatalf("window did not churn: inserted=%d expired=%d\n%s",
			rep.inserted.Load(), rep.expired.Load(), out.String())
	}
	if !strings.Contains(out.String(), "stream:") || !strings.Contains(out.String(), "insert latency:") {
		t.Errorf("report missing stream sections:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var jr jsonReport
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if jr.Stream == nil || jr.Stream.Inserted != rep.inserted.Load() || jr.Stream.InsertsPerSec <= 0 {
		t.Fatalf("JSON stream block = %+v", jr.Stream)
	}
	if jr.InsertLatency == nil || jr.InsertLatency.Count == 0 {
		t.Fatalf("JSON insert latency = %+v", jr.InsertLatency)
	}
}

// TestStreamValidation: -stream option validation fails fast.
func TestStreamValidation(t *testing.T) {
	o := options{
		self: true, duration: time.Second, rps: 10, workers: 1, batch: 1,
		dim: 2, points: 10, stream: true, streamWindow: 5, streamMinPts: 5,
	}
	if _, err := run(context.Background(), o, &bytes.Buffer{}); err == nil {
		t.Fatal("want error when -stream-window does not exceed -stream-minpts")
	}
}

// TestRunValidation: option validation fails fast with a useful error.
func TestRunValidation(t *testing.T) {
	if _, err := run(context.Background(), options{}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error when neither -addr nor -self is set")
	}
	if _, err := run(context.Background(), options{self: true}, &bytes.Buffer{}); err == nil {
		t.Fatal("want error for non-positive rps/workers/duration")
	}
}

// TestMultiTargetJSONReport drives two independent in-process servers
// round-robin and checks the machine-readable report: both targets listed,
// all requests accounted for, quantiles present, the file valid JSON.
func TestMultiTargetJSONReport(t *testing.T) {
	baseA, stopA, err := selfServer(false, "")
	if err != nil {
		t.Fatalf("selfServer: %v", err)
	}
	defer stopA()
	baseB, stopB, err := selfServer(false, "")
	if err != nil {
		t.Fatalf("selfServer: %v", err)
	}
	defer stopB()

	path := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	o := options{
		addr:      baseA + "," + baseB,
		duration:  800 * time.Millisecond,
		rps:       80,
		workers:   4,
		batch:     4,
		dim:       2,
		points:    120,
		scoreFrac: 1.0,
		seed:      3,
		jsonPath:  path,
	}
	rep, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if rep.failed.Load() != 0 || rep.ok.Load() == 0 {
		t.Fatalf("multi-target soak: ok=%d failed=%d\n%s", rep.ok.Load(), rep.failed.Load(), out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var jr jsonReport
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if len(jr.Targets) != 2 || jr.Targets[0] != baseA || jr.Targets[1] != baseB {
		t.Fatalf("report targets = %v", jr.Targets)
	}
	if jr.OK != rep.ok.Load() || jr.AchievedRPS <= 0 {
		t.Fatalf("report counters = %+v", jr)
	}
	if jr.ScoreLatency == nil || jr.ScoreLatency.Count == 0 || jr.ScoreLatency.P99ms < jr.ScoreLatency.P50ms {
		t.Fatalf("report score latency = %+v", jr.ScoreLatency)
	}
}

// TestTraceStragglerReport: with -trace every score request carries a
// sampled traceparent and the report names the p99 stragglers' trace IDs,
// both in the text summary and the JSON report.
func TestTraceStragglerReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	o := options{
		self:      true,
		trace:     true,
		duration:  600 * time.Millisecond,
		rps:       60,
		workers:   4,
		batch:     4,
		dim:       2,
		points:    120,
		scoreFrac: 1.0,
		seed:      4,
		jsonPath:  path,
	}
	rep, err := run(context.Background(), o, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if rep.failed.Load() != 0 || rep.ok.Load() == 0 {
		t.Fatalf("trace soak: ok=%d failed=%d\n%s", rep.ok.Load(), rep.failed.Load(), out.String())
	}
	if !strings.Contains(out.String(), "p99 straggler: trace=") {
		t.Errorf("report missing straggler lines:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var jr jsonReport
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if len(jr.TraceStragglers) == 0 {
		t.Fatalf("JSON report has no trace stragglers: %s", raw)
	}
	for _, s := range jr.TraceStragglers {
		if len(s.TraceID) != 32 || s.MS <= 0 {
			t.Fatalf("malformed straggler %+v", s)
		}
	}
}
