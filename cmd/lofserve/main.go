// Command lofserve serves LOF out-of-sample scoring over an HTTP JSON API.
//
// Usage:
//
//	lofserve -addr :8080
//	lofserve -addr :8080 -model model.bin          # preload a snapshot
//	lofserve -max-inflight 128 -timeout 10s
//	lofserve -pprof-addr 127.0.0.1:6060 -log-level debug
//	lofserve -stream-dim 2 -stream-minpts 10 -stream-max-points 10000 \
//	    -stream-freeze-every 30s -stream-snapshot window.bin
//
// Endpoints:
//
//	POST /v1/fit              fit a model from JSON data, replacing the current one
//	POST /v1/score            score query points against the current model
//	GET  /v1/model            current model summary
//	POST /v1/shard/snapshot   install a shard partition pushed by lofcoord
//	POST /v1/shard/candidates per-partition kNN candidates (shard role)
//	POST /v1/shard/rows       merged rows of owned points (shard role)
//	POST /v1/stream/init      create (or replace) the streaming pipeline
//	POST /v1/stream           apply one ingestion batch (inserts/deletes/expiry)
//	POST /v1/stream/score     score queries against the published stream epoch
//	GET  /v1/stream/lofs      stream window IDs and maintained LOF values
//	GET  /v1/stream/stats     stream pipeline counters and epoch shape
//	POST /v1/stream/freeze    refit the stream window into the serving model
//	GET  /healthz             liveness only: 200 whenever the process serves
//	GET  /readyz              readiness: model/partition presence and version,
//	                          503 while empty or mid-swap
//	GET  /metrics             Prometheus text-format metrics (per-route histograms)
//	GET  /metrics.json        legacy JSON counter view
//
// A lofserve can therefore serve in two roles: standalone (fit and score
// the whole model) or as one shard of a lofcoord fleet, holding a
// partition snapshot at a coordinator-assigned version. -max-snapshot
// bounds the accepted partition snapshot size.
//
// The server sheds load above -max-inflight with 429 responses, bounds
// each request by -timeout, and drains in-flight requests before exiting
// on SIGTERM or SIGINT (up to -grace). Logs are structured JSON lines on
// stderr, one per request, filtered by -log-level. When -pprof-addr is
// set, net/http/pprof profiling endpoints are served on that address on a
// separate listener so profiling is never exposed on the API port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lof"
	"lof/internal/server"
	"lof/internal/stream"
	"lof/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		modelPath   = flag.String("model", "", "model snapshot to preload (see lofcli -save-model)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		maxInFlight = flag.Int("max-inflight", 64, "concurrent requests before shedding with 429")
		maxBatch    = flag.Int("max-batch", 100000, "maximum query points per score request")
		maxSnap     = flag.Int64("max-snapshot", 1<<30, "maximum shard snapshot size in bytes")
		grace       = flag.Duration("grace", 15*time.Second, "graceful shutdown drain budget")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (separate listener; empty disables)")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")

		traceSample = flag.Float64("trace-sample", 0, "probability of recording a trace for requests without an inbound sampled traceparent (0 disables tracing unless -trace-slow is set)")
		traceSlow   = flag.Duration("trace-slow", 0, "always record spans at least this slow, even unsampled (0 disables the slow override)")
		traceBuffer = flag.Int("trace-buffer", 4096, "recorded spans kept in the in-process ring buffer served by /v1/debug/traces")

		streamDim       = flag.Int("stream-dim", 0, "start a streaming pipeline for points of this dimensionality (0 disables; /v1/stream/init can still create one)")
		streamMinPts    = flag.Int("stream-minpts", 10, "MinPts for the streaming pipeline")
		streamMetric    = flag.String("stream-metric", "", "metric for the streaming pipeline (default euclidean)")
		streamMaxPoints = flag.Int("stream-max-points", 0, "sliding-window point bound for the streaming pipeline (0 = unbounded)")
		streamMaxAge    = flag.Duration("stream-max-age", 0, "sliding-window age bound for the streaming pipeline (0 = unbounded)")
		freezeEvery     = flag.Duration("stream-freeze-every", 0, "periodically freeze the stream window into the serving model (0 disables)")
		snapshotPath    = flag.String("stream-snapshot", "", "also save each frozen model to this snapshot file (requires -stream-freeze-every)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o := options{
		addr: *addr, modelPath: *modelPath,
		timeout: *timeout, maxInFlight: *maxInFlight, maxBatch: *maxBatch,
		maxSnap:   *maxSnap,
		grace:     *grace,
		pprofAddr: *pprofAddr, logLevel: *logLevel,
		traceSample: *traceSample, traceSlow: *traceSlow, traceBuffer: *traceBuffer,
		streamDim: *streamDim, streamMinPts: *streamMinPts, streamMetric: *streamMetric,
		streamMaxPoints: *streamMaxPoints, streamMaxAge: *streamMaxAge,
		freezeEvery: *freezeEvery, snapshotPath: *snapshotPath,
	}
	if err := run(ctx, o, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "lofserve: %v\n", err)
		os.Exit(1)
	}
}

// options carries the parsed flags; run is separated from main so tests
// can drive the full server lifecycle in-process.
type options struct {
	addr        string
	modelPath   string
	timeout     time.Duration
	maxInFlight int
	maxBatch    int
	maxSnap     int64
	grace       time.Duration
	pprofAddr   string
	logLevel    string

	traceSample float64
	traceSlow   time.Duration
	traceBuffer int

	streamDim       int
	streamMinPts    int
	streamMetric    string
	streamMaxPoints int
	streamMaxAge    time.Duration
	freezeEvery     time.Duration
	snapshotPath    string
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// pprofHandler builds an explicit mux for the profiling listener rather
// than importing net/http/pprof for its DefaultServeMux side effect, so
// nothing ever registers profiling routes on the API handler.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run starts the server and blocks until ctx is cancelled (SIGTERM/SIGINT
// in production), then shuts down gracefully, draining in-flight requests.
// If ready is non-nil, the bound API and pprof addresses are sent on it
// once the listeners are accepting connections (pprof address empty when
// disabled).
func run(ctx context.Context, o options, logw io.Writer, ready chan<- [2]string) error {
	level, err := parseLevel(o.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(logw, &slog.HandlerOptions{Level: level}))
	var collector *trace.Collector
	if o.traceSample > 0 || o.traceSlow > 0 {
		collector = trace.NewCollector(trace.Config{
			Service:       "lofserve",
			Capacity:      o.traceBuffer,
			Sample:        o.traceSample,
			SlowThreshold: o.traceSlow,
		})
		logger.LogAttrs(ctx, slog.LevelInfo, "tracing enabled",
			slog.Float64("sample", o.traceSample),
			slog.Duration("slow", o.traceSlow),
			slog.Int("buffer", o.traceBuffer))
	}
	srv := server.New(server.Config{
		MaxInFlight:      o.maxInFlight,
		RequestTimeout:   o.timeout,
		MaxBatch:         o.maxBatch,
		MaxSnapshotBytes: o.maxSnap,
		Logger:           logger,
		Trace:            collector,
	})
	if o.modelPath != "" {
		start := time.Now()
		m, info, err := lof.OpenModelFile(o.modelPath)
		if err != nil {
			return fmt.Errorf("loading %s: %w", o.modelPath, err)
		}
		srv.SetModel(m)
		mode := "copy"
		if info.Mapped {
			mode = "mmap"
		}
		logger.LogAttrs(ctx, slog.LevelInfo, "model loaded",
			slog.String("path", o.modelPath),
			slog.Int("objects", m.Len()),
			slog.Int("dims", m.Dim()),
			slog.Int("snapshot_version", info.Version),
			slog.String("load_mode", mode),
			slog.Int64("bytes", info.Bytes),
			slog.Duration("elapsed", time.Since(start)))
	}

	var freezeDone chan struct{}
	if o.streamDim > 0 {
		pl, err := stream.New(stream.Config{
			Dim:       o.streamDim,
			MinPts:    o.streamMinPts,
			Metric:    o.streamMetric,
			MaxPoints: o.streamMaxPoints,
			MaxAge:    o.streamMaxAge,
		})
		if err != nil {
			return fmt.Errorf("stream pipeline: %w", err)
		}
		srv.SetStream(pl)
		logger.LogAttrs(ctx, slog.LevelInfo, "stream pipeline started",
			slog.Int("dim", o.streamDim),
			slog.Int("minPts", o.streamMinPts),
			slog.Int("maxPoints", o.streamMaxPoints),
			slog.Duration("maxAge", o.streamMaxAge))
		if o.freezeEvery > 0 {
			freezeDone = make(chan struct{})
			go func() {
				defer close(freezeDone)
				freezeLoop(ctx, srv, o, logger)
			}()
		}
	} else if o.freezeEvery > 0 || o.snapshotPath != "" {
		return fmt.Errorf("-stream-freeze-every and -stream-snapshot require -stream-dim")
	}

	var pprofLn net.Listener
	var pprofSrv *http.Server
	pprofAddr := ""
	if o.pprofAddr != "" {
		pprofLn, err = net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pprofSrv = &http.Server{
			Handler:           pprofHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go pprofSrv.Serve(pprofLn)
		pprofAddr = pprofLn.Addr().String()
		logger.LogAttrs(ctx, slog.LevelInfo, "pprof listening",
			slog.String("addr", pprofAddr))
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", ln.Addr().String()))
	if ready != nil {
		ready <- [2]string{ln.Addr().String(), pprofAddr}
	}

	select {
	case err := <-errc:
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		return err
	case <-ctx.Done():
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "shutting down",
		slog.Duration("grace", o.grace))
	shCtx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if pprofSrv != nil {
		pprofSrv.Close()
	}
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if freezeDone != nil {
		<-freezeDone
	}
	return nil
}

// freezeLoop periodically refits the stream window into the serving model
// and, when configured, saves it as a standard snapshot file. The save
// goes through a temp file and rename, so a concurrent loader never sees
// a torn snapshot.
func freezeLoop(ctx context.Context, srv *server.Server, o options, logger *slog.Logger) {
	t := time.NewTicker(o.freezeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		m, seq, err := srv.FreezeStreamInstall()
		if err != nil {
			// A window too small to refit is routine during warm-up.
			logger.LogAttrs(ctx, slog.LevelDebug, "stream freeze skipped",
				slog.String("reason", err.Error()))
			continue
		}
		attrs := []slog.Attr{slog.Uint64("epoch", seq), slog.Int("objects", m.Len())}
		if o.snapshotPath != "" {
			if err := saveSnapshot(o.snapshotPath, m); err != nil {
				logger.LogAttrs(ctx, slog.LevelError, "stream snapshot save failed",
					slog.String("error", err.Error()))
				continue
			}
			attrs = append(attrs, slog.String("snapshot", o.snapshotPath))
		}
		logger.LogAttrs(ctx, slog.LevelInfo, "stream window frozen", attrs...)
	}
}

// saveSnapshot writes m to path atomically via a same-directory temp file.
func saveSnapshot(path string, m *lof.Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
