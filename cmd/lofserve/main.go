// Command lofserve serves LOF out-of-sample scoring over an HTTP JSON API.
//
// Usage:
//
//	lofserve -addr :8080
//	lofserve -addr :8080 -model model.bin          # preload a snapshot
//	lofserve -max-inflight 128 -timeout 10s
//
// Endpoints:
//
//	POST /v1/fit     fit a model from JSON data, replacing the current one
//	POST /v1/score   score query points against the current model
//	GET  /v1/model   current model summary
//	GET  /healthz    liveness and model presence
//	GET  /metrics    request/latency/batch counters
//
// The server sheds load above -max-inflight with 429 responses, bounds
// each request by -timeout, and drains in-flight requests before exiting
// on SIGTERM or SIGINT (up to -grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lof"
	"lof/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		modelPath   = flag.String("model", "", "model snapshot to preload (see lofcli -save-model)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		maxInFlight = flag.Int("max-inflight", 64, "concurrent requests before shedding with 429")
		maxBatch    = flag.Int("max-batch", 100000, "maximum query points per score request")
		grace       = flag.Duration("grace", 15*time.Second, "graceful shutdown drain budget")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o := options{
		addr: *addr, modelPath: *modelPath,
		timeout: *timeout, maxInFlight: *maxInFlight, maxBatch: *maxBatch,
		grace: *grace,
	}
	if err := run(ctx, o, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "lofserve: %v\n", err)
		os.Exit(1)
	}
}

// options carries the parsed flags; run is separated from main so tests
// can drive the full server lifecycle in-process.
type options struct {
	addr        string
	modelPath   string
	timeout     time.Duration
	maxInFlight int
	maxBatch    int
	grace       time.Duration
}

// run starts the server and blocks until ctx is cancelled (SIGTERM/SIGINT
// in production), then shuts down gracefully, draining in-flight requests.
// If ready is non-nil, the bound address is sent on it once the listener
// is accepting connections.
func run(ctx context.Context, o options, logw io.Writer, ready chan<- string) error {
	srv := server.New(server.Config{
		MaxInFlight:    o.maxInFlight,
		RequestTimeout: o.timeout,
		MaxBatch:       o.maxBatch,
	})
	if o.modelPath != "" {
		f, err := os.Open(o.modelPath)
		if err != nil {
			return err
		}
		m, err := lof.LoadModel(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", o.modelPath, err)
		}
		srv.SetModel(m)
		fmt.Fprintf(logw, "lofserve: loaded model: %d objects, %d dims\n", m.Len(), m.Dim())
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "lofserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "lofserve: shutting down, draining in-flight requests\n")
	shCtx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
