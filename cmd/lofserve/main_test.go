package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lof"
)

// startServer runs the full lofserve lifecycle in-process and returns the
// API base URL, the pprof base URL (empty unless o.pprofAddr is set), and
// a shutdown function that cancels the context (the SIGTERM path) and
// waits for the drain to complete.
func startServer(t *testing.T, o options) (string, string, func() error) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	if o.timeout == 0 {
		o.timeout = 10 * time.Second
	}
	if o.grace == 0 {
		o.grace = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, io.Discard, ready) }()
	select {
	case addrs := <-ready:
		pprofBase := ""
		if addrs[1] != "" {
			pprofBase = "http://" + addrs[1]
		}
		return "http://" + addrs[0], pprofBase, func() error {
			cancel()
			select {
			case err := <-done:
				return err
			case <-time.After(15 * time.Second):
				return fmt.Errorf("server did not shut down")
			}
		}
	case err := <-done:
		cancel()
		t.Fatalf("server exited before ready: %v", err)
		return "", "", nil
	}
}

// TestServeFitScoreShutdown is the command-level end-to-end test: start,
// fit over HTTP, score, read metrics, then shut down gracefully.
func TestServeFitScoreShutdown(t *testing.T) {
	base, _, shutdown := startServer(t, options{maxInFlight: 8, maxBatch: 1000})

	rng := rand.New(rand.NewSource(17))
	data := make([][]float64, 50)
	for i := range data {
		if i < 25 {
			data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		} else {
			data[i] = []float64{8 + 0.2*rng.NormFloat64(), 8 + 0.2*rng.NormFloat64()}
		}
	}
	fitBody, err := json.Marshal(map[string]interface{}{
		"config": map[string]interface{}{"minPtsLB": 3, "minPtsUB": 6},
		"data":   data,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/fit", "application/json", bytes.NewReader(fitBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("fit status %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/score", "application/json",
		bytes.NewReader([]byte(`{"queries":[[4,4],[0,0]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Scores []float64 `json:"scores"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Scores) != 2 || sr.Scores[0] <= sr.Scores[1] {
		t.Fatalf("scores %v: between-cluster point should outscore the inlier", sr.Scores)
	}

	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var ms struct {
		Requests map[string]int64 `json:"requests"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ms)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Requests["/v1/fit"] != 1 || ms.Requests["/v1/score"] != 1 {
		t.Fatalf("metrics %+v", ms.Requests)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(promBody, []byte("# TYPE lof_http_request_duration_seconds histogram")) {
		t.Fatalf("/metrics missing Prometheus histogram family:\n%s", promBody)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// TestServePreloadedModel starts lofserve with a -model snapshot and
// scores against it without any fit call.
func TestServePreloadedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := make([][]float64, 40)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	det, err := lof.New(lof.Config{MinPtsLB: 3, MinPtsUB: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.WriteModel(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	base, _, shutdown := startServer(t, options{modelPath: path, maxInFlight: 4})
	defer shutdown()

	resp, err := http.Get(base + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Objects int `json:"objects"`
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Objects != 40 {
		t.Fatalf("preloaded model reports %d objects", info.Objects)
	}
	resp, err = http.Post(base+"/v1/score", "application/json",
		bytes.NewReader([]byte(`{"queries":[[0.1,0.2]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("score against preloaded model: status %d", resp.StatusCode)
	}
}

// TestServeBadModelPath pins the startup failure mode.
func TestServeBadModelPath(t *testing.T) {
	err := run(context.Background(), options{
		addr: "127.0.0.1:0", modelPath: filepath.Join(t.TempDir(), "missing.bin"),
		timeout: time.Second, grace: time.Second,
	}, io.Discard, nil)
	if err == nil {
		t.Fatal("missing model path accepted")
	}
}

// TestServePprofSeparateListener pins the -pprof-addr contract: profiling
// endpoints answer on their own listener and are absent from the API port.
func TestServePprofSeparateListener(t *testing.T) {
	base, pprofBase, shutdown := startServer(t, options{
		maxInFlight: 4, pprofAddr: "127.0.0.1:0",
	})
	defer shutdown()
	if pprofBase == "" {
		t.Fatal("pprof listener did not start")
	}

	resp, err := http.Get(pprofBase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("profiling endpoint exposed on the API listener")
	}
}

// TestServeStructuredLogs asserts one JSON log line per request with the
// fields downstream log pipelines key on.
func TestServeStructuredLogs(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := lockedWriter{mu: &mu, w: &buf}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan [2]string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			addr: "127.0.0.1:0", timeout: 5 * time.Second, grace: 5 * time.Second,
			logLevel: "info",
		}, w, ready)
	}()
	var base string
	select {
	case addrs := <-ready:
		base = "http://" + addrs[0]
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}

	resp, err := http.Get(base + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var sawListening, sawRequest bool
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var entry map[string]interface{}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		switch entry["msg"] {
		case "listening":
			sawListening = true
			if entry["addr"] == "" {
				t.Fatalf("listening line missing addr: %s", line)
			}
		case "request":
			sawRequest = true
			// No model is loaded, so the info request 404s; the line must
			// still carry the route, status and request ID.
			if entry["route"] != "/v1/model" || entry["status"] != float64(404) || entry["requestId"] == "" {
				t.Fatalf("request line fields: %s", line)
			}
		}
	}
	if !sawListening || !sawRequest {
		t.Fatalf("logs missing listening=%v request=%v:\n%s", sawListening, sawRequest, out)
	}
}

// TestServeBadLogLevel pins the flag validation failure mode.
func TestServeBadLogLevel(t *testing.T) {
	err := run(context.Background(), options{
		addr: "127.0.0.1:0", logLevel: "loud",
		timeout: time.Second, grace: time.Second,
	}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "log level") {
		t.Fatalf("bad log level: err = %v", err)
	}
}

// lockedWriter serializes writes so the test can read the buffer while the
// server goroutine may still be logging.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
