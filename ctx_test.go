package lof

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

func ctxTestData(rng *rand.Rand, n int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	return data
}

// TestFitContextBitIdentical: an uncancelled FitContext is the same
// computation as Fit — score-for-score identical, not just approximately.
func TestFitContextBitIdentical(t *testing.T) {
	data := ctxTestData(rand.New(rand.NewSource(3)), 400)
	cfg := Config{MinPtsLB: 4, MinPtsUB: 12, Workers: 4}
	det1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := det1.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := det2.FitContext(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := res1.Scores(), res2.Scores()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("score %d: Fit=%v FitContext=%v — not bit-identical", i, s1[i], s2[i])
		}
	}
}

// TestFitContextPreCancelled: an already-cancelled context never starts
// the fit; the error wraps context.Canceled and no result escapes.
func TestFitContextPreCancelled(t *testing.T) {
	det, err := New(Config{MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := det.FitContext(ctx, ctxTestData(rand.New(rand.NewSource(4)), 100))
	if res != nil {
		t.Fatal("cancelled fit returned a partial result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", err)
	}
}

// TestFitContextCancelMidFlight: cancelling during the materialization
// scan aborts the fit promptly — no partial result, no stuck workers.
func TestFitContextCancelMidFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Large enough that the fit takes well over the cancellation delay
	// on any machine; the kNN materialization alone is tens of ms.
	data := ctxTestData(rand.New(rand.NewSource(5)), 6000)
	det, err := New(Config{MinPtsLB: 5, MinPtsUB: 30, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res *Result
	var fitErr error
	start := time.Now()
	go func() {
		defer close(done)
		res, fitErr = det.FitContext(ctx, data)
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled fit did not return within 10s")
	}
	elapsed := time.Since(start)
	if fitErr == nil {
		t.Fatalf("fit completed in %v despite cancellation at 2ms — dataset too small for the race, or cancellation is not checked", elapsed)
	}
	if !errors.Is(fitErr, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", fitErr)
	}
	if res != nil {
		t.Fatal("cancelled fit returned a partial result")
	}
	// The pool workers must be idle again: no goroutine may still be
	// chewing on the abandoned scan.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine count %d did not settle to baseline %d", runtime.NumGoroutine(), baseline)
}

// TestScoreBatchContextCancelled: a cancelled batch returns the context
// error and no scores.
func TestScoreBatchContextCancelled(t *testing.T) {
	det, err := New(Config{MinPtsLB: 3, MinPtsUB: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(ctxTestData(rand.New(rand.NewSource(6)), 200))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scores, err := m.ScoreBatchContext(ctx, ctxTestData(rand.New(rand.NewSource(7)), 50))
	if scores != nil {
		t.Fatal("cancelled batch returned scores")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", err)
	}
}

// TestSubsampleDeterministic: the degraded-model subsample is a pure
// function of the model — two calls agree — and scores remain sane.
func TestSubsampleDeterministic(t *testing.T) {
	det, err := New(Config{MinPtsLB: 3, MinPtsUB: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(ctxTestData(rand.New(rand.NewSource(8)), 300))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.Subsample(100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Subsample(100)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 100 || s2.Len() != 100 {
		t.Fatalf("subsample sizes %d, %d; want 100", s1.Len(), s2.Len())
	}
	q := []float64{0.1, -0.2, 0.3}
	v1, err := s1.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s2.Score(q)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("two subsamples score %v vs %v; want deterministic agreement", v1, v2)
	}
	// Subsampling never upsamples: asking for more points than the model
	// holds returns the model itself.
	same, err := m.Subsample(10000)
	if err != nil {
		t.Fatal(err)
	}
	if same != m {
		t.Error("oversized subsample did not return the original model")
	}
}
