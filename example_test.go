package lof_test

import (
	"fmt"
	"log"

	"lof"
)

// grid9 is a tiny deterministic dataset: a 5×5 unit grid plus one distant
// point, so the examples have stable output.
func grid9() [][]float64 {
	var data [][]float64
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			data = append(data, []float64{float64(x), float64(y)})
		}
	}
	data = append(data, []float64{12, 12})
	return data
}

// The simplest path: one MinPts value, one call.
func ExampleScores() {
	scores, err := lof.Scores(grid9(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid point: %.2f\n", scores[12]) // center of the grid
	fmt.Printf("far point:  %.2f\n", scores[25])
	// Output:
	// grid point: 0.91
	// far point:  8.47
}

// The full API: a MinPts range with max aggregation and a ranking.
func ExampleDetector_Fit() {
	det, err := lof.New(lof.Config{MinPtsLB: 4, MinPtsUB: 6})
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Fit(grid9())
	if err != nil {
		log.Fatal(err)
	}
	top := res.TopN(1)
	fmt.Printf("top outlier: object %d with LOF %.2f\n", top[0].Index, top[0].Score)
	// Output:
	// top outlier: object 25 with LOF 8.47
}

// Maintaining scores under insertions.
func ExampleStream() {
	s, err := lof.NewStream(2, 4, "euclidean")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range grid9() {
		if _, err := s.Insert(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("far point: %.2f\n", s.Score(25))
	// Output:
	// far point: 8.47
}
