// Ecommerce demonstrates the paper's motivating scenario — detecting
// unusual activity in electronic commerce — with purely public-API usage.
// Customer sessions are described by (order value, items per order,
// minutes on site, returns rate). Legitimate behaviour forms several
// segments of very different densities: bargain hunters are a broad,
// sparse population while subscription renewals are an extremely tight
// one. A fraudulent session close to the tight segment would pass a global
// distance threshold — LOF flags it because it is isolated *relative to
// its local neighborhood*.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lof"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	var data [][]float64
	var names []string

	add := func(name string, n int, f func() []float64) {
		for i := 0; i < n; i++ {
			data = append(data, f())
			names = append(names, fmt.Sprintf("%s-%03d", name, i))
		}
	}

	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	// Segment 1: bargain hunters — low value, long sessions, high spread.
	add("bargain", 400, func() []float64 {
		return []float64{
			uniform(5, 45),  // order value ($)
			uniform(1, 4),   // items
			uniform(10, 70), // minutes on site
			uniform(0, 12),  // returns rate (%)
		}
	})
	// Segment 2: subscription renewals — identical flows, tiny spread,
	// well separated from the bargain segment.
	add("renewal", 300, func() []float64 {
		return []float64{
			99 + rng.NormFloat64()*2,
			1 + rng.NormFloat64()*0.3,
			2 + rng.NormFloat64()*1.2,
			0.5 + rng.NormFloat64()*0.4,
		}
	})
	// Segment 3: bulk buyers — high value, many items.
	add("bulk", 200, func() []float64 {
		return []float64{
			uniform(250, 650),
			uniform(15, 45),
			uniform(10, 45),
			uniform(0, 8),
		}
	})

	// Fraud case A: card testing near the renewal segment — a $99-ish
	// order but with an abnormal flow. Globally it is *closer* to data
	// than a typical bargain hunter is to its own neighbors.
	fraudA := len(data)
	data = append(data, []float64{102, 1, 9, 0.4})
	names = append(names, "FRAUD-card-testing")
	// Fraud case B: obvious global outlier — huge order, instant session.
	fraudB := len(data)
	data = append(data, []float64{2100, 3, 1, 0})
	names = append(names, "FRAUD-stolen-card")

	// Standardize columns before detection: order values span thousands of
	// dollars while returns rates span a few percent, and unstandardized
	// Euclidean distances would be dominated by the dollar column.
	data, _, _, err := lof.Standardize(data)
	if err != nil {
		log.Fatal(err)
	}

	det, err := lof.New(lof.Config{MinPtsLB: 10, MinPtsUB: 20})
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top 6 sessions by local outlier factor:")
	for rank, o := range res.TopN(6) {
		fmt.Printf("%2d. LOF %6.2f  %s\n", rank+1, o.Score, names[o.Index])
	}

	scores := res.Scores()
	fmt.Printf("\ncard-testing session: LOF %.2f (flagged despite being globally unremarkable)\n", scores[fraudA])
	fmt.Printf("stolen-card session:  LOF %.2f\n", scores[fraudB])

	// A fixed alert threshold on the LOF score separates the fraud cases
	// cleanly; a *global* distance threshold could not, because the
	// card-testing session is closer to legitimate renewals than bargain
	// hunters are to each other.
	flagged := res.OutliersAbove(3)
	fp := 0
	for _, o := range flagged {
		if o.Index != fraudA && o.Index != fraudB {
			fp++
		}
	}
	fmt.Printf("\nsessions with LOF > 3: %d (false positives among them: %d)\n", len(flagged), fp)
}
