// Highdim runs LOF on the 64-dimensional color-histogram workload of the
// paper's high-dimensionality experiment: scene clusters of TV-snapshot
// histograms with planted outlier frames. It demonstrates the VA-file
// index path the library selects automatically beyond 16 dimensions.
//
//	go run ./examples/highdim
package main

import (
	"fmt"
	"log"

	"lof"
	"lof/internal/dataset"
)

func main() {
	d := dataset.ColorHistograms(42, dataset.DefaultColorHistSpec())
	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}

	det, err := lof.New(lof.Config{MinPtsLB: 10, MinPtsUB: 20}) // IndexAuto → VA-file at 64-d
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Fit(rows)
	if err != nil {
		log.Fatal(err)
	}

	planted := map[int]bool{}
	for _, o := range d.Outliers {
		planted[o] = true
	}
	fmt.Printf("%d snapshots in 64 dimensions, %d planted outlier frames\n\n", d.Len(), len(d.Outliers))
	fmt.Println("top ranks by max LOF (MinPts 10..20):")
	hits := 0
	for rank, o := range res.TopN(len(d.Outliers)) {
		mark := " "
		if planted[o.Index] {
			mark = "*"
			hits++
		}
		fmt.Printf("%2d. LOF %5.2f  %s %s\n", rank+1, o.Score, d.Label(o.Index), mark)
	}
	fmt.Printf("\nplanted outliers recovered in top %d: %d\n", len(d.Outliers), hits)
}
