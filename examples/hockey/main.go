// Hockey reproduces the two NHL experiments of section 7.2 on the
// synthetic NHL96-like league: test 1 ranks players in the subspace
// (points, plus-minus, penalty minutes), test 2 in (games played, goals,
// shooting percentage), both by maximum LOF over MinPts 30..50.
//
//	go run ./examples/hockey
package main

import (
	"fmt"
	"log"

	"lof"
	"lof/internal/dataset"
)

func main() {
	league := dataset.Hockey(42)

	run := func(title string, d *dataset.Dataset, cols [3]string) {
		rows := make([][]float64, d.Len())
		for i := range rows {
			rows[i] = d.Points.At(i)
		}
		det, err := lof.New(lof.Config{MinPtsLB: 30, MinPtsUB: 50})
		if err != nil {
			log.Fatal(err)
		}
		res, err := det.Fit(rows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", title)
		fmt.Printf("rank  LOF    %-22s %10s %10s %10s\n", "player", cols[0], cols[1], cols[2])
		for rank, o := range res.TopN(5) {
			p := d.Points.At(o.Index)
			fmt.Printf("%4d  %5.2f  %-22s %10.1f %10.1f %10.1f\n",
				rank+1, o.Score, d.Label(o.Index), p[0], p[1], p[2])
		}
		fmt.Println()
	}

	run("test 1: points / plus-minus / penalty minutes (paper: Konstantinov, then Barnaby)",
		league.Test1(), [3]string{"points", "plus-minus", "pim"})
	run("test 2: games / goals / shooting%% (paper: Osgood, Lemieux, Poapst)",
		league.Test2(), [3]string{"games", "goals", "shoot%"})
}
