// Quickstart: compute local outlier factors for a small 2-d dataset using
// only the public lof API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lof"
)

func main() {
	// A dense cluster, a sparse cluster, and two anomalies: one far from
	// everything (a global outlier) and one sitting just outside the dense
	// cluster (a local outlier that distance-based methods struggle with).
	rng := rand.New(rand.NewSource(1))
	var data [][]float64
	for i := 0; i < 150; i++ { // dense cluster at (0, 0)
		data = append(data, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
	}
	for i := 0; i < 150; i++ { // sparse cluster at (25, 0)
		data = append(data, []float64{25 + rng.NormFloat64()*4, rng.NormFloat64() * 4})
	}
	global := len(data)
	data = append(data, []float64{12, 18}) // far from both clusters
	local := len(data)
	data = append(data, []float64{3, 0}) // just outside the dense cluster

	det, err := lof.New(lof.Config{MinPtsLB: 10, MinPtsUB: 20})
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top 5 outliers (score ≈ 1 means 'inside a cluster'):")
	for rank, o := range res.TopN(5) {
		tag := ""
		switch o.Index {
		case global:
			tag = "  <- planted global outlier"
		case local:
			tag = "  <- planted local outlier"
		}
		fmt.Printf("%2d. object %3d  LOF %.2f%s\n", rank+1, o.Index, o.Score, tag)
	}

	// Per-object diagnostics: the LOF trajectory over the MinPts range and
	// the Theorem 1 bounds at one MinPts value.
	minPtsValues, lofs := res.Series(local)
	fmt.Printf("\nlocal outlier's LOF across MinPts %d..%d: first %.2f, last %.2f\n",
		minPtsValues[0], minPtsValues[len(minPtsValues)-1], lofs[0], lofs[len(lofs)-1])
	lo, hi, err := res.Bounds(local, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theorem-1 bounds on its LOF at MinPts=15: [%.2f, %.2f]\n", lo, hi)
}
