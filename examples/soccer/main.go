// Soccer reproduces Table 3 of the paper on the synthetic Bundesliga
// 1998/99 league: every player whose maximum LOF over MinPts 30..50
// exceeds 1.5 is reported, together with the dataset's summary statistics.
//
//	go run ./examples/soccer
package main

import (
	"fmt"
	"log"

	"lof"
	"lof/internal/dataset"
)

func main() {
	league := dataset.Soccer(42)
	d := league.Dataset()

	rows := make([][]float64, d.Len())
	for i := range rows {
		rows[i] = d.Points.At(i)
	}
	det, err := lof.New(lof.Config{MinPtsLB: 30, MinPtsUB: 50})
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Fit(rows)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rank  LOF   player               games  goals  position")
	for rank, o := range res.OutliersAbove(1.5) {
		p := league.Players[o.Index]
		fmt.Printf("%4d  %.2f  %-19s  %5.0f  %5.0f  %s\n",
			rank+1, o.Score, p.Name, p.Games, p.Goals, p.Position)
	}

	games := summarize(league.GamesColumn())
	goals := summarize(league.GoalsColumn())
	fmt.Printf("\n%-19s %8s %8s\n", "", "games", "goals")
	fmt.Printf("%-19s %8.0f %8.0f\n", "minimum", games.min, goals.min)
	fmt.Printf("%-19s %8.1f %8.1f\n", "mean", games.mean, goals.mean)
	fmt.Printf("%-19s %8.0f %8.0f\n", "maximum", games.max, goals.max)
}

type summary struct{ min, max, mean float64 }

func summarize(xs []float64) summary {
	s := summary{min: xs[0], max: xs[0]}
	for _, x := range xs {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
		s.mean += x
	}
	s.mean /= float64(len(xs))
	return s
}
