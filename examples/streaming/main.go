// Streaming demonstrates incremental LOF maintenance (lof.Stream): sensor
// readings arrive one at a time, each insertion updates only the affected
// scores, and an alert fires the moment a reading's LOF exceeds a
// threshold. A sliding window keeps the reference set bounded by removing
// the oldest readings.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"lof"
)

const (
	minPts    = 10
	window    = 300 // sliding-window size
	threshold = 2.5 // alert when a new reading's LOF exceeds this
)

func main() {
	s, err := lof.NewStream(2, minPts, "euclidean")
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	// The "sensor": a daily cycle in (temperature, vibration) with noise,
	// plus occasional injected faults.
	reading := func(step int) ([]float64, bool) {
		phase := float64(step) / 50 * 2 * math.Pi
		if step%97 == 96 { // injected fault: vibration spike
			return []float64{20 + 5*math.Sin(phase), 9 + rng.Float64()}, true
		}
		return []float64{
			20 + 5*math.Sin(phase) + rng.NormFloat64()*0.4,
			1 + 0.5*math.Sin(phase/2) + rng.NormFloat64()*0.15,
		}, false
	}

	var oldest int // index of the oldest live point
	alerts, faults, falseAlerts := 0, 0, 0
	totalAffected := 0
	for step := 0; step < 600; step++ {
		p, isFault := reading(step)
		if isFault {
			faults++
		}
		id, err := s.Insert(p)
		if err != nil {
			log.Fatal(err)
		}
		totalAffected += s.LastAffected()

		// Alert on the just-inserted reading.
		if score := s.Score(id); s.Len() > minPts+1 && score > threshold {
			alerts++
			if !isFault {
				falseAlerts++
			}
			tag := "FAULT"
			if !isFault {
				tag = "normal"
			}
			fmt.Printf("step %3d: alert, LOF %5.2f (%s reading)\n", step, score, tag)
		}

		// Slide the window.
		for s.Len() > window {
			if err := s.Remove(oldest); err != nil {
				log.Fatal(err)
			}
			oldest++
		}
	}

	fmt.Printf("\n%d readings, %d injected faults, %d alerts (%d false)\n",
		600, faults, alerts, falseAlerts)
	fmt.Printf("average points touched per insertion: %.1f of %d in the window\n",
		float64(totalAffected)/600, window)
}
