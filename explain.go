package lof

import (
	"fmt"
	"math"

	"lof/internal/explain"
	"lof/internal/optics"
	"lof/internal/stats"
)

// This file exposes the explanation facilities built for the paper's
// "ongoing work" directions (Sec. 8): per-dimension outlier profiles and
// cluster context via an OPTICS handshake.

// DimensionContribution quantifies one feature dimension's share of an
// object's outlier-ness relative to its MinPts-neighborhood.
type DimensionContribution struct {
	// Dim is the feature column.
	Dim int
	// ZScore is the object's absolute deviation from the neighborhood mean
	// on this dimension, in neighborhood standard deviations.
	ZScore float64
	// Delta is the signed raw deviation from the neighborhood mean.
	Delta float64
}

// ExplainDimensions decomposes object i's deviation from its
// MinPts-neighborhood per feature dimension, most deviating first. For
// high-dimensional data this answers the paper's explanation question: a
// local outlier "may be outlying only on some, but not on all, dimensions".
func (r *Result) ExplainDimensions(i, minPts int) ([]DimensionContribution, error) {
	prof, err := explain.DimensionProfile(r.db, r.pts, i, minPts)
	if err != nil {
		return nil, err
	}
	out := make([]DimensionContribution, len(prof))
	for j, c := range prof {
		out[j] = DimensionContribution{Dim: c.Dim, ZScore: c.ZScore, Delta: c.Delta}
	}
	return out, nil
}

// ClusterContext locates the cluster an object is outlying relative to.
type ClusterContext struct {
	// Found reports whether any cluster was extracted; the remaining
	// fields are meaningful only when true.
	Found bool
	// ClusterSize is the member count of the nearest extracted cluster.
	ClusterSize int
	// Distance is the distance from the object to that cluster's nearest
	// member.
	Distance float64
	// Separation is Distance in units of the cluster's own density scale
	// (its mean reachability distance): large values mean "far away
	// relative to how tightly that cluster packs" — the locality LOF
	// measures.
	Separation float64
}

// ClusterContext runs the OPTICS handshake lazily (once per Result) and
// reports which extracted cluster object i is closest to and how separated
// from it the object is. The extraction uses the detector's MinPtsLB and a
// threshold of twice the median MinPts-distance.
func (r *Result) ClusterContext(i int) (ClusterContext, error) {
	if i < 0 || i >= r.pts.Len() {
		return ClusterContext{}, fmt.Errorf("lof: point %d out of range", i)
	}
	r.opticsOnce.Do(func() {
		res, err := optics.Run(r.pts, r.ix, optics.Params{MinPts: r.cfg.MinPtsLB})
		if err != nil {
			r.opticsErr = err
			return
		}
		threshold := r.extractionThreshold()
		clusters, _ := res.ExtractClusters(threshold, r.cfg.MinPtsLB)
		r.opticsClusters = clusters
	})
	if r.opticsErr != nil {
		return ClusterContext{}, r.opticsErr
	}
	ctx, err := explain.NearestCluster(r.pts, r.metric, r.opticsClusters, i)
	if err != nil {
		return ClusterContext{}, err
	}
	if ctx.Cluster < 0 {
		return ClusterContext{Found: false}, nil
	}
	return ClusterContext{
		Found:       true,
		ClusterSize: len(r.opticsClusters[ctx.Cluster].Members),
		Distance:    ctx.Distance,
		Separation:  ctx.Separation,
	}, nil
}

// extractionThreshold derives the OPTICS reachability cut: twice the median
// MinPtsLB-distance over all objects.
func (r *Result) extractionThreshold() float64 {
	n := r.db.Len()
	kdists := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if kd := r.db.KDistance(i, r.cfg.MinPtsLB); !math.IsInf(kd, 1) {
			kdists = append(kdists, kd)
		}
	}
	med, err := stats.Quantile(kdists, 0.5)
	if err != nil || med == 0 {
		return math.Inf(1)
	}
	return 2 * med
}
