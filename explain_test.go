package lof

import (
	"math"
	"math/rand"
	"testing"
)

// explainScene: a dense cluster, a sparse cluster, and an outlier near the
// dense one that deviates mainly on dimension 0.
func explainScene(t *testing.T) ([][]float64, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	var data [][]float64
	for i := 0; i < 120; i++ {
		data = append(data, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
	}
	for i := 0; i < 120; i++ {
		data = append(data, []float64{40 + rng.NormFloat64()*3, rng.NormFloat64() * 3})
	}
	outlier := len(data)
	data = append(data, []float64{5, 0.1})
	return data, outlier
}

func TestExplainDimensions(t *testing.T) {
	data, outlier := explainScene(t)
	det, err := New(Config{MinPtsLB: 10, MinPtsUB: 15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := res.ExplainDimensions(outlier, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 2 {
		t.Fatalf("profile len=%d", len(prof))
	}
	if prof[0].Dim != 0 {
		t.Fatalf("dominant dimension=%d want 0: %v", prof[0].Dim, prof)
	}
	if prof[0].ZScore <= prof[1].ZScore {
		t.Fatalf("profile not sorted: %v", prof)
	}
	if prof[0].Delta <= 0 {
		t.Fatalf("delta should be positive (outlier is to the right): %v", prof[0])
	}
	if _, err := res.ExplainDimensions(outlier, 99); err == nil {
		t.Error("MinPts beyond K accepted")
	}
}

func TestClusterContext(t *testing.T) {
	data, outlier := explainScene(t)
	det, err := New(Config{MinPtsLB: 10, MinPtsUB: 15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := res.ClusterContext(outlier)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Found {
		t.Fatal("no cluster context found")
	}
	// The nearest cluster is the dense one (~120 members), and the outlier
	// sits many cluster spacings away from it.
	if ctx.ClusterSize < 80 {
		t.Fatalf("cluster size=%d", ctx.ClusterSize)
	}
	if ctx.Distance < 3 || math.IsInf(ctx.Distance, 1) {
		t.Fatalf("distance=%v", ctx.Distance)
	}
	if ctx.Separation < 3 {
		t.Fatalf("separation=%v", ctx.Separation)
	}

	// A deep cluster member has a much smaller separation.
	memberCtx, err := res.ClusterContext(0)
	if err != nil {
		t.Fatal(err)
	}
	if !memberCtx.Found || memberCtx.Separation >= ctx.Separation {
		t.Fatalf("member ctx=%+v outlier ctx=%+v", memberCtx, ctx)
	}

	if _, err := res.ClusterContext(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := res.ClusterContext(len(data)); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestClusterContextCachedAcrossCalls(t *testing.T) {
	data, _ := explainScene(t)
	det, err := New(Config{MinPtsLB: 10, MinPtsUB: 15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	a, err := res.ClusterContext(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.ClusterContext(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("context changed across calls: %+v vs %+v", a, b)
	}
}
