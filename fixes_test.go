package lof

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"lof/internal/geom"
)

// TestExplicitVAFileErrorSurfaces pins the buildIndex contract: an
// explicitly requested VA-file that cannot be built must error out, not
// silently degrade to a linear scan.
func TestExplicitVAFileErrorSurfaces(t *testing.T) {
	pts, err := toPoints(clusterPlusOutlier(3, 60))
	if err != nil {
		t.Fatal(err)
	}
	// The only metrics reachable through Config are all VA-file-compatible,
	// so drive buildIndex directly with one that is not (Minkowski has no
	// rectangle upper bound).
	d := &Detector{cfg: Config{Index: IndexVAFile}, metric: geom.Minkowski{P: 3}}
	if _, err := d.buildIndex(pts, nil); err == nil {
		t.Fatal("explicitly requested vafile with an unsupported metric built without error; must surface the failure")
	}
	// Auto-selection may still degrade: same metric, Index left to Auto.
	auto := &Detector{cfg: Config{Index: IndexAuto}, metric: geom.Minkowski{P: 3}}
	hd := geom.NewPoints(20, 0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		p := make(geom.Point, 20)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		if err := hd.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := auto.buildIndex(hd, nil) // dim 20 auto-selects vafile
	if err != nil {
		t.Fatalf("auto-selected vafile fallback errored: %v", err)
	}
	if ix == nil {
		t.Fatal("auto-selection returned no index")
	}
}

// TestExplicitVAFileStillWorks guards against over-correcting: a supported
// metric with an explicit VA-file request keeps fitting.
func TestExplicitVAFileStillWorks(t *testing.T) {
	det, err := New(Config{MinPts: 5, Index: IndexVAFile})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(clusterPlusOutlier(5, 80)); err != nil {
		t.Fatalf("explicit vafile fit with euclidean metric failed: %v", err)
	}
}

// TestConfigWeightsNotAliased pins the defensive-copy contract of
// Detector.Config and Model.Config: callers cannot reach the live weights.
func TestConfigWeightsNotAliased(t *testing.T) {
	orig := []float64{1, 2}
	det, err := New(Config{MinPts: 5, Weights: orig})
	if err != nil {
		t.Fatal(err)
	}

	// Mutating the slice passed to New must not affect the detector.
	orig[0] = 999
	if got := det.Config().Weights[0]; got != 1 {
		t.Fatalf("detector weights follow the caller's slice after New: got %v, want 1", got)
	}

	// Mutating the slice returned by Config must not affect the detector.
	det.Config().Weights[1] = -7
	if got := det.Config().Weights[1]; got != 2 {
		t.Fatalf("Detector.Config leaks its live weights slice: got %v, want 2", got)
	}

	rng := rand.New(rand.NewSource(6))
	data := make([][]float64, 60)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	if _, err := det.Fit(data); err != nil {
		t.Fatal(err)
	}
	m := det.Model()
	m.Config().Weights[0] = -1
	if got := m.Config().Weights[0]; got != 1 {
		t.Fatalf("Model.Config leaks its live weights slice: got %v, want 1", got)
	}
}

// TestStreamBoundsChecks pins the Stream accessor contract: out-of-range
// indices score NaN like deleted points, and Remove returns a descriptive
// error instead of panicking.
func TestStreamBoundsChecks(t *testing.T) {
	s, err := NewStream(2, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		if _, err := s.Insert([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{-1, 10, 1 << 30} {
		if got := s.Score(i); !math.IsNaN(got) {
			t.Errorf("Score(%d) = %v, want NaN", i, got)
		}
		if err := s.Remove(i); err == nil {
			t.Errorf("Remove(%d) succeeded, want descriptive error", i)
		}
	}
	// In-range behavior unchanged: live scores finite-or-Inf, removal
	// tombstones to NaN, double removal errors.
	if got := s.Score(4); math.IsNaN(got) {
		t.Fatal("live point scores NaN")
	}
	if err := s.Remove(4); err != nil {
		t.Fatalf("Remove(4): %v", err)
	}
	if got := s.Score(4); !math.IsNaN(got) {
		t.Fatalf("removed point scores %v, want NaN", got)
	}
	if err := s.Remove(4); err == nil {
		t.Fatal("double Remove succeeded, want error")
	}
}

// TestDetectorConcurrentFitScoreModel exercises the documented atomic-swap
// contract under contention: Fit, Score, ScoreBatch and Model racing on
// one Detector must be safe (run under -race) and every observed model
// must be internally consistent.
func TestDetectorConcurrentFitScoreModel(t *testing.T) {
	det, err := New(Config{MinPtsLB: 3, MinPtsUB: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	dataA := clusterPlusOutlier(11, 50)
	dataB := clusterPlusOutlier(12, 70)
	if _, err := det.Fit(dataA); err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	var wg sync.WaitGroup
	errCh := make(chan error, 4*rounds)
	wg.Add(4)
	go func() { // refitter, alternating datasets
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			data := dataA
			if i%2 == 1 {
				data = dataB
			}
			if _, err := det.Fit(data); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() { // single-point scorer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := det.Score([]float64{30, 30}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() { // batch scorer
		defer wg.Done()
		queries := [][]float64{{0, 0}, {30, 30}, {-5, 2}}
		for i := 0; i < rounds; i++ {
			scores, err := det.ScoreBatch(queries)
			if err != nil {
				errCh <- err
				return
			}
			if len(scores) != len(queries) {
				errCh <- fmt.Errorf("got %d scores for %d queries", len(scores), len(queries))
				return
			}
		}
	}()
	go func() { // model observer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			m := det.Model()
			if m == nil {
				continue
			}
			// A model observed mid-refit must still answer consistently.
			if _, err := m.Score([]float64{1, 1}); err != nil {
				errCh <- err
				return
			}
			if m.Len() != len(dataA) && m.Len() != len(dataB) {
				errCh <- fmt.Errorf("observed model with %d objects, want %d or %d", m.Len(), len(dataA), len(dataB))
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
