package lof_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lof"
)

// fuzzSeedModel fits a tiny model whose v3 encoding seeds the fuzzer.
func fuzzSeedModel(distinct bool) []byte {
	rng := rand.New(rand.NewSource(41))
	var rows [][]float64
	for i := 0; i < 24; i++ {
		rows = append(rows, []float64{rng.NormFloat64(), 5 * rng.NormFloat64()})
	}
	if distinct {
		rows = append(rows, rows[0], rows[1], rows[1])
	}
	det, err := lof.New(lof.Config{MinPtsLB: 3, MinPtsUB: 5, Distinct: distinct, Workers: 1})
	if err != nil {
		panic(err)
	}
	res, err := det.Fit(rows)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := res.WriteModel(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotV3Roundtrip asserts the flat snapshot loader never panics on
// arbitrary bytes, and that any bytes it does accept describe a model that
// re-encodes deterministically, reloads, and scores identically to the
// first load — i.e. acceptance implies a fully coherent model, never a
// partially validated one.
func FuzzSnapshotV3Roundtrip(f *testing.F) {
	for _, distinct := range []bool{false, true} {
		seed := fuzzSeedModel(distinct)
		f.Add(seed)
		for _, pos := range []int{5, 20, 50, 70, len(seed) / 2, len(seed) - 3} {
			mut := append([]byte(nil), seed...)
			mut[pos] ^= 0x81
			f.Add(mut)
		}
		f.Add(seed[:len(seed)/2])
	}
	f.Add([]byte("LOFS"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := lof.LoadModelBytes(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("accepted model failed to encode: %v", err)
		}
		m2, err := lof.LoadModelBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded model failed to load: %v", err)
		}
		if m2.Len() != m.Len() || m2.Dim() != m.Dim() {
			t.Fatalf("round-trip changed shape: %d×%d vs %d×%d",
				m2.Len(), m2.Dim(), m.Len(), m.Dim())
		}
		q := make([]float64, m.Dim())
		for j := range q {
			q[j] = float64(j%3) - 1
		}
		a, errA := m.Score(q)
		b, errB := m2.Score(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("score errors disagree: %v vs %v", errA, errB)
		}
		if errA == nil && math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("round-trip changed score: %v vs %v", a, b)
		}
	})
}
