module lof

go 1.22
