module lof

go 1.23
