// Package approx implements the approximate LOF fast paths: PLOF-style
// pruning, which certifies dense-core points as LOF ≈ 1 from k-distance /
// reachability bounds without ever evaluating them, and sensitivity-based
// coreset sampling (coreset.go), a principled importance-weighted upgrade
// of stride subsampling.
//
// The pruning pass rests on a range-wide, mean-aware form of the paper's
// Theorem 1. For any MinPts m in the swept [lb, ub] the reachability
// distance reach_m(p, o) = max(kd_m(o), d(p, o)) is bracketed by its
// values at the range ends, because the k-distance is monotone in m:
//
//	reach_m(p, o) ∈ [max(kd_lb(o), d), max(kd_ub(o), d)].
//
// lrd_m(p) is the reciprocal of the MEAN reachability over N_m(p), and
// every N_m(p) is a prefix of the stored row (neighbor lists are sorted by
// distance), so running prefix means of the bracket endpoints over the
// admissible prefix sizes bound lrd_m(p) for EVERY m simultaneously —
// far tighter than the min/max-of-terms bound of Theorem 1 as stated,
// which on Gaussian data is too wide to certify anything. LOF_m(p) is
// again a mean (of neighbor densities) over the same prefixes divided by
// lrd_m(p), so one more prefix pass brackets every swept LOF value, hence
// any max/min/mean aggregate. Because the interval width scales with the
// k-distance growth across the bracketed range, the swept range is split
// into segments of bounded MinPts ratio, each bracketed independently, and
// the per-segment intervals are unioned — O(log(ub/lb)) segments of three
// O(n·k) passes each, still far below the sweep's O(n·k·(ub−lb+1)) scans.
// Points whose interval fits inside [1/(1+eps), 1+eps] are certified ≈1
// and pruned; the surviving frontier is evaluated exactly with arithmetic
// identical, operation for operation, to the full sweep, so unpruned
// scores match core.Sweep at the Float64bits level (see DESIGN.md §12 for
// the full argument).
package approx

import (
	"context"
	"fmt"
	"math"

	"lof/internal/core"
	"lof/internal/matdb"
	"lof/internal/pool"
)

// DefaultEps is the certification band half-width used when callers pass a
// non-positive eps: a point is pruned when its LOF provably lies within
// [1/(1+eps), 1+eps]. Segmented prefix-mean certificates on Gaussian
// cluster cores come out ~1.4 wide (upper/lower ratio), so the band must
// admit roughly [0.67, 1.5] to prune the dense bulk; 0.5 does — certifying
// ~85-90% of clustered 2D data over the default 10..20 sweep — while
// staying well below the ≥2 scores of clear outliers.
const DefaultEps = 0.5

// cancelStride mirrors core's polling cadence: loops poll ctx every this
// many points (a power of two, so the check is a mask).
const cancelStride = 256

func strideCancelled(ctx context.Context, i int) bool {
	return ctx != nil && i&(cancelStride-1) == 0 && ctx.Err() != nil
}

// Certified reports whether a [lower, upper] LOF interval fits the ≈1 band
// of half-width eps. NaN bounds (degenerate geometry, e.g. all-duplicate
// neighborhoods) fail both comparisons and are never certified.
func Certified(lower, upper, eps float64) bool {
	return upper <= 1+eps && lower >= 1/(1+eps)
}

// prefixBracket accumulates low/high term pairs in row order and tracks
// the minimum prefix mean of the low terms and the maximum prefix mean of
// the high terms over prefix sizes ≥ slo. Because every admissible
// neighborhood is a row prefix whose size lies in the tracked range, the
// resulting [mnLow, mxHigh] brackets the true mean for every MinPts.
type prefixBracket struct {
	slo          int
	loSum, hiSum float64
	n            int
	mnLow        float64
	mxHigh       float64
	any          bool
}

func newPrefixBracket(slo int) prefixBracket {
	if slo < 1 {
		slo = 1
	}
	return prefixBracket{slo: slo}
}

func (b *prefixBracket) add(lo, hi float64) {
	b.loSum += lo
	b.hiSum += hi
	b.n++
	if b.n < b.slo {
		return
	}
	inv := 1 / float64(b.n)
	if m := b.loSum * inv; !b.any || m < b.mnLow {
		b.mnLow = m
	}
	if m := b.hiSum * inv; !b.any || m > b.mxHigh {
		b.mxHigh = m
	}
	b.any = true
}

// bounds returns the bracket, degrading to the uninformative [0, +Inf]
// when no admissible prefix was seen.
func (b *prefixBracket) bounds() (mnLow, mxHigh float64) {
	if !b.any {
		return 0, math.Inf(1)
	}
	return b.mnLow, b.mxHigh
}

// segmentRatio caps the within-segment MinPts growth when a swept range is
// split for bounding. The bracket width a segment can achieve scales with
// its k-distance growth kd_hi/kd_lo ≈ (hi/lo)^(1/dim), so capping hi/lo at
// 4/3 keeps intervals tight enough to certify uniform cluster cores while
// the pass count stays logarithmic in the range width (3 segments for the
// default 10..20 sweep, against the sweep's 11 full scans).
const segmentRatio = 4.0 / 3

// segments splits [lb, ub] into consecutive subranges with hi ≤ lo·4/3.
func segments(lb, ub int) [][2]int {
	segs := make([][2]int, 0, 4)
	for lo := lb; lo <= ub; {
		hi := int(float64(lo) * segmentRatio)
		if hi > ub {
			hi = ub
		}
		if hi < lo {
			hi = lo
		}
		segs = append(segs, [2]int{lo, hi})
		lo = hi + 1
	}
	return segs
}

// Bounds computes, for every point, an interval [lower[i], upper[i]]
// guaranteed to contain LOF_m(i) for every MinPts m in [lb, ub] — and
// therefore any max/min/mean aggregate over that range. The range is split
// into segments of modest k-distance growth, each bounded with three
// O(n·k) passes, and the per-segment intervals are unioned; total cost is
// O(n·k·log(ub/lb)), far below the sweep's O(n·k·(ub−lb+1)). The pool
// parallelizes each pass (nil for sequential). Points with empty
// neighborhoods score exactly 1 at every m and get the degenerate
// interval [1, 1].
func Bounds(db *matdb.DB, lb, ub int, p *pool.Pool) (lower, upper []float64, err error) {
	if lb > ub {
		return nil, nil, fmt.Errorf("approx: MinPtsLB=%d exceeds MinPtsUB=%d", lb, ub)
	}
	if err := db.CheckMinPts(lb); err != nil {
		return nil, nil, err
	}
	if err := db.CheckMinPts(ub); err != nil {
		return nil, nil, err
	}
	n := db.Len()
	for si, seg := range segments(lb, ub) {
		segLower, segUpper := boundsSegment(db, seg[0], seg[1], p)
		if si == 0 {
			lower, upper = segLower, segUpper
			continue
		}
		for i := 0; i < n; i++ {
			if segLower[i] < lower[i] {
				lower[i] = segLower[i]
			}
			if segUpper[i] > upper[i] {
				upper[i] = segUpper[i]
			}
		}
	}
	return lower, upper, nil
}

// boundsSegment brackets LOF_m(i) for every m in one pre-validated
// subrange [lb, ub] with three chunked passes.
func boundsSegment(db *matdb.DB, lb, ub int, p *pool.Pool) (lower, upper []float64) {
	n := db.Len()
	kdLB := make([]float64, n)
	kdUB := make([]float64, n)
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			kdLB[i] = db.KDistance(i, lb)
			kdUB[i] = db.KDistance(i, ub)
		}
	})
	// lrdLow/lrdHigh bracket lrd_m(i) for every m: the reciprocals of the
	// extreme prefix means of the per-term reachability brackets.
	lrdLow := make([]float64, n)
	lrdHigh := make([]float64, n)
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nn := db.Neighborhood(i, ub)
			if len(nn) == 0 {
				lrdLow[i], lrdHigh[i] = math.Inf(1), math.Inf(1) // isolated: exact lrd is +Inf
				continue
			}
			b := newPrefixBracket(len(db.Neighborhood(i, lb)))
			for _, nb := range nn {
				b.add(core.ReachDist(kdLB[nb.Index], nb.Dist), core.ReachDist(kdUB[nb.Index], nb.Dist))
			}
			mnLow, mxHigh := b.bounds()
			lrdLow[i] = 1 / mxHigh // a mean of zeros gives +Inf, matching the sum==0 rule
			lrdHigh[i] = 1 / mnLow
		}
	})
	lower = make([]float64, n)
	upper = make([]float64, n)
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nn := db.Neighborhood(i, ub)
			if len(nn) == 0 {
				lower[i], upper[i] = 1, 1 // LOF of an isolated point is defined as 1
				continue
			}
			// LOF_m(i) = mean over N_m(i) of lrd_m(q), divided by lrd_m(i):
			// prefix-bracket the numerator mean with the same admissible sizes.
			b := newPrefixBracket(len(db.Neighborhood(i, lb)))
			for _, nb := range nn {
				b.add(lrdLow[nb.Index], lrdHigh[nb.Index])
			}
			numLow, numHigh := b.bounds()
			lower[i], upper[i] = boundRatio(numLow, numHigh, lrdLow[i], lrdHigh[i])
		}
	})
	return lower, upper
}

// boundRatio turns a numerator bracket (mean neighbor density) and a
// denominator bracket (own density) into an LOF interval, widening any
// degenerate combination (NaN from 0·Inf or Inf/Inf in duplicate-heavy
// neighborhoods, or an inverted interval) to the uninformative [0, +Inf]
// instead of certifying through it.
func boundRatio(numLow, numHigh, lrdLow, lrdHigh float64) (lower, upper float64) {
	lower = numLow / lrdHigh
	upper = numHigh / lrdLow
	if math.IsNaN(lower) || math.IsNaN(upper) || lower > upper {
		return 0, math.Inf(1)
	}
	return lower, upper
}

// Result is the outcome of a pruned sweep over a fitted database.
type Result struct {
	// Scores holds the aggregated sweep score of every point: exactly 1 for
	// pruned points, the bit-exact sweep value for the frontier.
	Scores []float64
	// Pruned marks the points certified as LOF ≈ 1 without evaluation.
	Pruned []bool
	// Lower and Upper are the certified per-point LOF intervals from Bounds.
	Lower, Upper []float64
	// Frontier is the number of points evaluated exactly.
	Frontier int
	// Eps is the certification half-width actually used.
	Eps float64
}

// PrunedCount returns the number of certified points.
func (r *Result) PrunedCount() int { return len(r.Pruned) - r.Frontier }

// PruneSweep is the approximate counterpart of core.SweepCtx + Aggregate:
// it certifies dense-core points as LOF ≈ 1 from Bounds and evaluates only
// the uncertain frontier, per MinPts value, with the sweep's exact
// arithmetic. Frontier scores are Float64bits-identical to the full
// sweep's aggregate; pruned scores are 1 with the exact value provably in
// [1/(1+eps), 1+eps]. A non-positive eps means DefaultEps. The pool
// parallelizes across MinPts values and within each scan (nil for
// sequential); ctx cancels between and inside scans (nil never cancels).
func PruneSweep(ctx context.Context, db *matdb.DB, lb, ub int, eps float64, agg core.Aggregate, p *pool.Pool) (*Result, error) {
	if eps <= 0 {
		eps = DefaultEps
	}
	lower, upper, err := Bounds(db, lb, ub, p)
	if err != nil {
		return nil, err
	}
	n := db.Len()
	res := &Result{
		Scores: make([]float64, n),
		Pruned: make([]bool, n),
		Lower:  lower,
		Upper:  upper,
		Eps:    eps,
	}
	frontier := make([]int, 0, n/8+1)
	for i := 0; i < n; i++ {
		if Certified(lower[i], upper[i], eps) {
			res.Pruned[i] = true
			res.Scores[i] = 1
		} else {
			frontier = append(frontier, i)
		}
	}
	res.Frontier = len(frontier)
	if len(frontier) == 0 {
		return res, nil
	}

	// Per-MinPts exact evaluation of the frontier. Only densities the
	// frontier actually reads — the frontier points and their m-neighbors —
	// are computed, so a scan costs O(n + |frontier|·k²) instead of the full
	// sweep's O(n·k). The arithmetic (k-distance array, neighbor iteration
	// order, sum-then-divide shapes) mirrors the unexported sweep scan
	// bodies exactly; any divergence here breaks the Float64bits oracle in
	// approx_test.go.
	nm := ub - lb + 1
	series := make([][]float64, nm)
	scan := func(j int) {
		m := lb + j
		kd := make([]float64, n)
		p.Chunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if strideCancelled(ctx, i) {
					return
				}
				kd[i] = db.KDistance(i, m)
			}
		})
		needed := make([]bool, n)
		for _, i := range frontier {
			needed[i] = true
			for _, nb := range db.Neighborhood(i, m) {
				needed[nb.Index] = true
			}
		}
		list := make([]int, 0, len(frontier)*(m+1))
		for i, ok := range needed {
			if ok {
				list = append(list, i)
			}
		}
		lrd := make([]float64, n)
		p.Chunks(len(list), func(lo, hi int) {
			for li := lo; li < hi; li++ {
				if strideCancelled(ctx, li) {
					return
				}
				i := list[li]
				nn := db.Neighborhood(i, m)
				if len(nn) == 0 {
					lrd[i] = math.Inf(1)
					continue
				}
				var sum float64
				for _, nb := range nn {
					sum += core.ReachDist(kd[nb.Index], nb.Dist)
				}
				if sum == 0 {
					lrd[i] = math.Inf(1)
					continue
				}
				lrd[i] = float64(len(nn)) / sum
			}
		})
		vals := make([]float64, len(frontier))
		p.Chunks(len(frontier), func(lo, hi int) {
			for fi := lo; fi < hi; fi++ {
				if strideCancelled(ctx, fi) {
					return
				}
				i := frontier[fi]
				nn := db.Neighborhood(i, m)
				if len(nn) == 0 {
					vals[fi] = 1
					continue
				}
				var sum float64
				for _, nb := range nn {
					sum += core.DensityRatio(lrd[nb.Index], lrd[i])
				}
				vals[fi] = sum / float64(len(nn))
			}
		})
		series[j] = vals
	}
	if ctx != nil {
		err = p.EachCtx(ctx, nm, scan)
	} else {
		p.Each(nm, scan)
	}
	if err != nil {
		return nil, fmt.Errorf("approx: pruned sweep cancelled: %w", err)
	}

	// Fold per-MinPts frontier values with the same comparison / summation
	// order as core.SweepResult.Aggregate: series index ascending, so mean
	// sums in ascending-MinPts order before the single divide.
	for fi, i := range frontier {
		var v float64
		switch agg {
		case core.AggMin:
			v = math.Inf(1)
			for j := 0; j < nm; j++ {
				if series[j][fi] < v {
					v = series[j][fi]
				}
			}
		case core.AggMean:
			for j := 0; j < nm; j++ {
				v += series[j][fi]
			}
			v /= float64(nm)
		default: // core.AggMax
			v = math.Inf(-1)
			for j := 0; j < nm; j++ {
				if series[j][fi] > v {
					v = series[j][fi]
				}
			}
		}
		res.Scores[i] = v
	}
	return res, nil
}

// QueryBounds computes an interval containing the out-of-sample LOF of a
// query — the score of q in data ∪ {q} — for every MinPts in [lb, ub],
// using only the query's probed row (which IS q's exact merged-world
// neighborhood) and the STORED rows and k-distances of the fitted
// database. The inserted point shifts stored neighborhoods by at most one
// rank, so for any stored point o and m ∈ [lb, ub]:
//
//	kd'_m(o) ∈ [kd_{lb-1}(o), kd_ub(o)]   (kd_0 := 0)
//
// where kd' is the k-distance in data ∪ {q}: the upper end because adding
// a point never grows a k-distance and kd is monotone in m; the lower end
// because removing the inserted point restores at least the (m−1)-th
// stored distance. The merged m-neighborhood of a stored o is a prefix of
// its stored row with q possibly spliced in, so prefix means over both
// splice shapes bracket o's merged density. Certified queries skip
// merged-row assembly and per-MinPts evaluation entirely and report 1.
func QueryBounds(db *matdb.DB, qRow matdb.Row, lb, ub int) (lower, upper float64) {
	if len(qRow.Neighborhood(ub)) == 0 {
		return 1, 1 // isolated query scores exactly 1 at every MinPts
	}
	for si, seg := range segments(lb, ub) {
		segLower, segUpper := queryBoundsSegment(db, qRow, seg[0], seg[1])
		if si == 0 {
			lower, upper = segLower, segUpper
			continue
		}
		lower = math.Min(lower, segLower)
		upper = math.Max(upper, segUpper)
	}
	return lower, upper
}

// queryBoundsSegment is the QueryBounds body for one subrange [lb, ub].
func queryBoundsSegment(db *matdb.DB, qRow matdb.Row, lb, ub int) (lower, upper float64) {
	nn := qRow.Neighborhood(ub)
	if len(nn) == 0 {
		return 1, 1
	}
	kdFloor := func(o int) float64 {
		if lb >= 2 {
			return db.KDistance(o, lb-1)
		}
		return 0
	}
	kdqLB, kdqUB := qRow.KDistance(lb), qRow.KDistance(ub)
	// Direct side: qRow is exact, so its prefixes are the true merged
	// neighborhoods; only the neighbor k-distances are enveloped.
	direct := newPrefixBracket(len(qRow.Neighborhood(lb)))
	num := newPrefixBracket(len(qRow.Neighborhood(lb)))
	for _, o := range nn {
		direct.add(core.ReachDist(kdFloor(o.Index), o.Dist), core.ReachDist(db.KDistance(o.Index, ub), o.Dist))
		oLow, oHigh := storedLRDBracket(db, o.Index, core.ReachDist(kdqLB, o.Dist), core.ReachDist(kdqUB, o.Dist), lb, ub, kdFloor)
		num.add(oLow, oHigh)
	}
	meanLow, meanHigh := direct.bounds()
	numLow, numHigh := num.bounds()
	return boundRatio(numLow, numHigh, 1/meanHigh, 1/meanLow)
}

// storedLRDBracket brackets the merged-world density lrd'_m(o) of a stored
// point o for every m ∈ [lb, ub], from o's stored row plus the inserted
// query's reachability bracket [loQ, hiQ]. Each merged m-neighborhood is
// either a stored-row prefix or a stored-row prefix with its last slot
// taken by q, so both shapes are folded into the prefix extremes.
func storedLRDBracket(db *matdb.DB, o int, loQ, hiQ float64, lb, ub int, kdFloor func(int) float64) (lrdLow, lrdHigh float64) {
	row := db.Neighborhood(o, ub)
	mnLow, mxHigh := math.Inf(1), math.Inf(-1)
	any := false
	consider := func(lo, hi float64, n int) {
		inv := 1 / float64(n)
		if m := lo * inv; !any || m < mnLow {
			mnLow = m
		}
		if m := hi * inv; !any || m > mxHigh {
			mxHigh = m
		}
		any = true
	}
	var loSum, hiSum float64
	// Shape B with zero stored entries: the neighborhood is {q} alone —
	// only admissible when lb == 1.
	if lb == 1 {
		consider(loQ, hiQ, 1)
	}
	for n, r := range row {
		lo := core.ReachDist(kdFloor(r.Index), r.Dist)
		hi := core.ReachDist(db.KDistance(r.Index, ub), r.Dist)
		// Admissible sizes: merged neighborhoods have at least lb members
		// and at most |N_ub(o)|+1 (the stored ub-neighborhood plus q).
		if n+1 >= lb {
			consider(loSum+lo, hiSum+hi, n+1)   // shape A: first n+1 stored entries
			consider(loSum+loQ, hiSum+hiQ, n+1) // shape B: first n stored entries + q
		}
		loSum += lo
		hiSum += hi
	}
	if n := len(row); n+1 >= lb {
		consider(loSum+loQ, hiSum+hiQ, n+1) // shape B at full width
	}
	if !any {
		return 0, math.Inf(1) // no admissible neighborhood: uninformative
	}
	return 1 / mxHigh, 1 / mnLow
}

// MergedQueryBounds is QueryBounds for the coordinator's scatter-gather
// world: the caller holds the query's merged candidate row, the MERGED
// rows of its ub-neighborhood (so those prefixes are the true merged
// neighborhoods and no splice-shape folding is needed), and stored
// k-distance envelopes [kd_{lb-1}, kd_ub] for second-hop points fetched
// with a lightweight RPC instead of full rows. rowOf resolves a first-hop
// global id to its merged row; kdEnv resolves a second-hop id to its
// envelope; qIdx is the virtual index of the query in merged rows. A
// failed lookup widens to the uninformative [0, +Inf] — the caller falls
// back to the exact path.
func MergedQueryBounds(qRow matdb.Row, qIdx int, rowOf func(int) (matdb.Row, bool), kdEnv func(int) (lo, hi float64, ok bool), lb, ub int) (lower, upper float64) {
	if len(qRow.Neighborhood(ub)) == 0 {
		return 1, 1
	}
	for si, seg := range segments(lb, ub) {
		segLower, segUpper := mergedQuerySegment(qRow, qIdx, rowOf, kdEnv, seg[0], seg[1])
		if si == 0 {
			lower, upper = segLower, segUpper
			continue
		}
		lower = math.Min(lower, segLower)
		upper = math.Max(upper, segUpper)
	}
	return lower, upper
}

// mergedQuerySegment is the MergedQueryBounds body for one subrange
// [lb, ub]. The kdEnv envelopes the caller fetched cover the FULL swept
// range, so they stay sound (if looser than necessary) on every subrange.
func mergedQuerySegment(qRow matdb.Row, qIdx int, rowOf func(int) (matdb.Row, bool), kdEnv func(int) (lo, hi float64, ok bool), lb, ub int) (lower, upper float64) {
	nn := qRow.Neighborhood(ub)
	if len(nn) == 0 {
		return 1, 1
	}
	kdqLB, kdqUB := qRow.KDistance(lb), qRow.KDistance(ub)
	direct := newPrefixBracket(len(qRow.Neighborhood(lb)))
	num := newPrefixBracket(len(qRow.Neighborhood(lb)))
	for _, o := range nn {
		row, ok := rowOf(o.Index)
		if !ok {
			return 0, math.Inf(1)
		}
		// The merged row's own k-distances are exact at both range ends.
		direct.add(core.ReachDist(row.KDistance(lb), o.Dist), core.ReachDist(row.KDistance(ub), o.Dist))
		ob := newPrefixBracket(len(row.Neighborhood(lb)))
		degenerate := false
		for _, r := range row.Neighborhood(ub) {
			var lo, hi float64
			if r.Index == qIdx {
				lo, hi = kdqLB, kdqUB
			} else {
				var found bool
				if lo, hi, found = kdEnv(r.Index); !found {
					degenerate = true
					break
				}
			}
			ob.add(core.ReachDist(lo, r.Dist), core.ReachDist(hi, r.Dist))
		}
		if degenerate {
			return 0, math.Inf(1)
		}
		oMeanLow, oMeanHigh := ob.bounds()
		num.add(1/oMeanHigh, 1/oMeanLow)
	}
	meanLow, meanHigh := direct.bounds()
	numLow, numHigh := num.bounds()
	return boundRatio(numLow, numHigh, 1/meanHigh, 1/meanLow)
}
