package approx

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"lof/internal/core"
	"lof/internal/dataset"
	"lof/internal/geom"
	"lof/internal/index/kdtree"
	"lof/internal/matdb"
	"lof/internal/pool"
)

// testDB materializes a dataset with the defaults the experiments use.
func testDB(t testing.TB, d *dataset.Dataset, k int) *matdb.DB {
	t.Helper()
	ix := kdtree.New(d.Points, nil)
	db, err := matdb.Materialize(d.Points, ix, k)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return db
}

// clusteredWithOutliers builds a dense-core mixture with planted far
// outliers — the workload pruning is designed for.
func clusteredWithOutliers(seed int64, n int) *dataset.Dataset {
	per := n / 4
	return dataset.Mixture(seed, dataset.MixtureSpec{
		Gaussians: []dataset.GaussianSpec{
			{Center: []float64{0, 0}, Sigma: 1, N: per},
			{Center: []float64{40, 5}, Sigma: 1.5, N: per},
			{Center: []float64{10, 60}, Sigma: 2, N: per},
			{Center: []float64{-35, 30}, Sigma: 1, N: n - 3*per},
		},
		Outliers: []geom.Point{
			{20, 20}, {80, 80}, {-60, -10}, {0, -45}, {55, 55},
		},
	})
}

// within reports |a−b| small relative to the magnitudes, absorbing the
// few-ulp slack between a float mean and the exact min/max brackets the
// bounds are derived from.
func within(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}

func TestBoundsContainEverySweptLOF(t *testing.T) {
	d := clusteredWithOutliers(1, 400)
	lb, ub := 10, 20
	db := testDB(t, d, ub)
	lower, upper, err := Bounds(db, lb, ub, nil)
	if err != nil {
		t.Fatalf("Bounds: %v", err)
	}
	const slack = 1e-12
	for m := lb; m <= ub; m++ {
		lofs, err := core.LOFs(db, m)
		if err != nil {
			t.Fatalf("LOFs(%d): %v", m, err)
		}
		for i, v := range lofs {
			if v < lower[i] && !within(v, lower[i], slack) {
				t.Fatalf("point %d at MinPts %d: LOF %v below lower bound %v", i, m, v, lower[i])
			}
			if v > upper[i] && !within(v, upper[i], slack) {
				t.Fatalf("point %d at MinPts %d: LOF %v above upper bound %v", i, m, v, upper[i])
			}
		}
	}
}

func TestBoundsValidation(t *testing.T) {
	d := clusteredWithOutliers(2, 100)
	db := testDB(t, d, 20)
	if _, _, err := Bounds(db, 21, 10, nil); err == nil {
		t.Fatal("lb > ub accepted")
	}
	if _, _, err := Bounds(db, 1, 999, nil); err == nil {
		t.Fatal("ub beyond materialized K accepted")
	}
}

// TestPruneSweepOracle is the acceptance-criteria oracle: every unpruned
// (frontier) score is Float64bits-identical to the exact sweep aggregate,
// and every pruned point's exact score lies inside the certified ≈1 band.
func TestPruneSweepOracle(t *testing.T) {
	d := clusteredWithOutliers(3, 600)
	lb, ub := 10, 20
	db := testDB(t, d, ub)
	sw, err := core.Sweep(db, lb, ub)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	for _, agg := range []core.Aggregate{core.AggMax, core.AggMean, core.AggMin} {
		exact := sw.Aggregate(agg)
		res, err := PruneSweep(nil, db, lb, ub, DefaultEps, agg, nil)
		if err != nil {
			t.Fatalf("PruneSweep(%v): %v", agg, err)
		}
		if res.PrunedCount() == 0 {
			t.Fatalf("agg %v: nothing pruned on a dense-core dataset", agg)
		}
		if res.Frontier == 0 {
			t.Fatalf("agg %v: empty frontier despite planted outliers", agg)
		}
		band := 1 + res.Eps
		for i := range exact {
			if res.Pruned[i] {
				if exact[i] > band*(1+1e-12) || exact[i] < (1/band)*(1-1e-12) {
					t.Fatalf("agg %v: pruned point %d has exact score %v outside band [%v, %v]",
						agg, i, exact[i], 1/band, band)
				}
				if res.Scores[i] != 1 {
					t.Fatalf("agg %v: pruned point %d scored %v, want 1", agg, i, res.Scores[i])
				}
				continue
			}
			if math.Float64bits(res.Scores[i]) != math.Float64bits(exact[i]) {
				t.Fatalf("agg %v: frontier point %d: pruned-sweep score %v != exact %v (bit mismatch)",
					agg, i, res.Scores[i], exact[i])
			}
		}
		// The planted outliers all score well above the band, so none may be
		// certified: recall over them is exactly 1.
		for _, o := range d.Outliers {
			if res.Pruned[o] {
				t.Fatalf("agg %v: planted outlier %d (exact %v) was pruned", agg, o, exact[o])
			}
		}
	}
}

func TestPruneSweepParallelMatchesSequential(t *testing.T) {
	d := clusteredWithOutliers(4, 500)
	lb, ub := 8, 16
	db := testDB(t, d, ub)
	seq, err := PruneSweep(nil, db, lb, ub, 0.25, core.AggMax, nil)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := PruneSweep(nil, db, lb, ub, 0.25, core.AggMax, pool.New(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range seq.Scores {
		if math.Float64bits(seq.Scores[i]) != math.Float64bits(par.Scores[i]) {
			t.Fatalf("point %d: sequential %v != parallel %v", i, seq.Scores[i], par.Scores[i])
		}
		if seq.Pruned[i] != par.Pruned[i] {
			t.Fatalf("point %d: pruned divergence", i)
		}
	}
}

func TestPruneSweepCancelled(t *testing.T) {
	d := clusteredWithOutliers(5, 300)
	db := testDB(t, d, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PruneSweep(ctx, db, 10, 20, 0, core.AggMax, nil); err == nil {
		t.Fatal("cancelled PruneSweep returned no error")
	}
}

func TestPruneSweepDefaultEps(t *testing.T) {
	d := clusteredWithOutliers(6, 200)
	db := testDB(t, d, 20)
	res, err := PruneSweep(nil, db, 10, 20, 0, core.AggMax, nil)
	if err != nil {
		t.Fatalf("PruneSweep: %v", err)
	}
	if res.Eps != DefaultEps {
		t.Fatalf("eps defaulted to %v, want %v", res.Eps, DefaultEps)
	}
}

// TestQueryBoundsContainSeries checks the out-of-sample certificate: for a
// spread of query points, every value of the exact score series lies in
// [lower, upper].
func TestQueryBoundsContainSeries(t *testing.T) {
	d := clusteredWithOutliers(7, 500)
	lb, ub := 10, 20
	db := testDB(t, d, ub)
	ix := kdtree.New(d.Points, nil)
	scorer, err := core.NewScorer(d.Points, ix, db, geom.Euclidean{}, lb, ub)
	if err != nil {
		t.Fatalf("NewScorer: %v", err)
	}
	rng := rand.New(rand.NewSource(99))
	queries := make([]geom.Point, 0, 64)
	for i := 0; i < 40; i++ {
		// Near cluster members (certifiable) ...
		base := d.Points.At(rng.Intn(d.Points.Len()))
		queries = append(queries, geom.Point{base[0] + rng.NormFloat64()*0.3, base[1] + rng.NormFloat64()*0.3})
	}
	for i := 0; i < 24; i++ {
		// ... and far field (outlying).
		queries = append(queries, geom.Point{rng.Float64()*300 - 150, rng.Float64()*300 - 150})
	}
	const slack = 1e-12
	certified := 0
	for qi, q := range queries {
		qRow := scorer.QueryRow(q)
		lower, upper := QueryBounds(db, qRow, lb, ub)
		series, err := scorer.ScoreSeries(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		for j, v := range series {
			if v < lower && !within(v, lower, slack) {
				t.Fatalf("query %d MinPts %d: score %v below lower bound %v", qi, lb+j, v, lower)
			}
			if v > upper && !within(v, upper, slack) {
				t.Fatalf("query %d MinPts %d: score %v above upper bound %v", qi, lb+j, v, upper)
			}
		}
		if Certified(lower, upper, DefaultEps) {
			certified++
		}
	}
	if certified == 0 {
		t.Fatal("no query certified; pruned serving would never fast-path")
	}
}

// TestScoreSeriesFromRowMatchesProbe pins the scorer split: probing first
// and evaluating later is bit-identical to the one-shot path.
func TestScoreSeriesFromRowMatchesProbe(t *testing.T) {
	d := clusteredWithOutliers(8, 300)
	db := testDB(t, d, 20)
	ix := kdtree.New(d.Points, nil)
	scorer, err := core.NewScorer(d.Points, ix, db, geom.Euclidean{}, 10, 20)
	if err != nil {
		t.Fatalf("NewScorer: %v", err)
	}
	q := geom.Point{3.5, -1.25}
	direct, err := scorer.ScoreSeriesCtx(nil, q)
	if err != nil {
		t.Fatalf("ScoreSeriesCtx: %v", err)
	}
	split, err := scorer.ScoreSeriesFromRow(nil, q, scorer.QueryRow(q))
	if err != nil {
		t.Fatalf("ScoreSeriesFromRow: %v", err)
	}
	for j := range direct {
		if math.Float64bits(direct[j]) != math.Float64bits(split[j]) {
			t.Fatalf("MinPts slot %d: %v != %v", j, direct[j], split[j])
		}
	}
}

func TestSensitivityDistribution(t *testing.T) {
	d := clusteredWithOutliers(9, 400)
	db := testDB(t, d, 20)
	q, err := Sensitivity(db, 20)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	var sum float64
	minQ := math.Inf(1)
	for _, v := range q {
		sum += v
		if v < minQ {
			minQ = v
		}
	}
	if !within(sum, 1, 1e-9) {
		t.Fatalf("sensitivity sums to %v, want 1", sum)
	}
	n := float64(db.Len())
	if minQ < sensitivityMix/n*(1-1e-9) {
		t.Fatalf("minimum sensitivity %v below the uniform floor %v", minQ, sensitivityMix/n)
	}
	// A planted far outlier must outweigh a typical cluster member.
	var mean float64
	for _, v := range q {
		mean += v
	}
	mean /= n
	for _, o := range d.Outliers {
		if q[o] <= mean {
			t.Fatalf("outlier %d sensitivity %v not above mean %v", o, q[o], mean)
		}
	}
}

func TestCoresetDeterministicAndWeighted(t *testing.T) {
	d := clusteredWithOutliers(10, 400)
	db := testDB(t, d, 20)
	idx1, w1, err := Coreset(db, 20, 100, 42)
	if err != nil {
		t.Fatalf("Coreset: %v", err)
	}
	idx2, w2, err := Coreset(db, 20, 100, 42)
	if err != nil {
		t.Fatalf("Coreset repeat: %v", err)
	}
	if len(idx1) != 100 || len(w1) != 100 {
		t.Fatalf("got %d indices, %d weights, want 100 each", len(idx1), len(w1))
	}
	for j := range idx1 {
		if idx1[j] != idx2[j] || w1[j] != w2[j] {
			t.Fatalf("slot %d: same-seed draws diverge (%d/%v vs %d/%v)", j, idx1[j], w1[j], idx2[j], w2[j])
		}
		if j > 0 && idx1[j] <= idx1[j-1] {
			t.Fatalf("indices not strictly ascending at slot %d", j)
		}
		if !(w1[j] > 0) || math.IsInf(w1[j], 0) {
			t.Fatalf("slot %d: degenerate weight %v", j, w1[j])
		}
	}
	idx3, _, err := Coreset(db, 20, 100, 43)
	if err != nil {
		t.Fatalf("Coreset reseed: %v", err)
	}
	same := true
	for j := range idx1 {
		if idx1[j] != idx3[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical coresets")
	}
}

func TestCoresetEdgeCases(t *testing.T) {
	d := clusteredWithOutliers(11, 60)
	db := testDB(t, d, 10)
	if _, _, err := Coreset(db, 10, 0, 1); err == nil {
		t.Fatal("non-positive size accepted")
	}
	idx, w, err := Coreset(db, 10, db.Len()+50, 1)
	if err != nil {
		t.Fatalf("oversized coreset: %v", err)
	}
	if len(idx) != db.Len() {
		t.Fatalf("oversized coreset returned %d of %d points", len(idx), db.Len())
	}
	for j, i := range idx {
		if i != j || w[j] != 1 {
			t.Fatalf("oversized coreset is not the identity at slot %d", j)
		}
	}
	if _, _, err := Coreset(db, 9999, 10, 1); err == nil {
		t.Fatal("invalid minPts accepted")
	}
}

// TestCoresetKeepsSparseRegions is the behavioral contrast with stride
// subsampling: sensitivity sampling must retain planted outliers at a rate
// far above their uniform share.
func TestCoresetKeepsSparseRegions(t *testing.T) {
	n := 800
	d := clusteredWithOutliers(12, n)
	db := testDB(t, d, 20)
	kept := 0
	trials := 20
	for s := int64(0); s < int64(trials); s++ {
		idx, _, err := Coreset(db, 20, 80, s)
		if err != nil {
			t.Fatalf("Coreset: %v", err)
		}
		in := make(map[int]bool, len(idx))
		for _, i := range idx {
			in[i] = true
		}
		for _, o := range d.Outliers {
			if in[o] {
				kept++
			}
		}
	}
	total := trials * len(d.Outliers)
	// Uniform sampling would keep ~10% (80/805); sensitivity must do far
	// better on the points that dominate the k-distance mass.
	if kept*2 < total {
		t.Fatalf("kept %d/%d planted outliers across seeds; sensitivity sampling is not favoring sparse regions", kept, total)
	}
}
