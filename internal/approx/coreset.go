package approx

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lof/internal/matdb"
)

// Sensitivity sampling (Lucic/Bachem/Krause): instead of the stride
// subsample's "every j-th point", draw points with probability
// proportional to an upper bound on how much each one can matter, and the
// sample approximates the density landscape with bounded distortion. For
// LOF the natural per-point contribution proxy is the k-distance — the
// reciprocal of local density: sparse points (cluster fringes, outliers,
// small clusters) are exactly the ones a uniform or stride sample
// decimates first, and exactly the ones whose absence moves downstream
// LOF scores the most. Mixing half the mass uniformly keeps every point's
// probability bounded below, the standard lightweight-coreset guard that
// caps importance weights and covers the dense bulk.

// sensitivityMix is the uniform share of the sampling distribution.
const sensitivityMix = 0.5

// Sensitivity returns the normalized sampling distribution q over the
// database's points: q(i) = mix/n + (1−mix)·kd_minPts(i)/Σ kd_minPts.
// Non-finite k-distances (possible only for isolated points in degenerate
// databases) contribute zero to the density term. When every k-distance is
// zero (all points coincide) the distribution degrades to uniform.
func Sensitivity(db *matdb.DB, minPts int) ([]float64, error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return nil, err
	}
	n := db.Len()
	if n == 0 {
		return nil, fmt.Errorf("approx: sensitivity of an empty database")
	}
	kd := make([]float64, n)
	var sum float64
	for i := range kd {
		if d := db.KDistance(i, minPts); !math.IsInf(d, 1) {
			kd[i] = d
			sum += d
		}
	}
	out := make([]float64, n)
	uniform := 1 / float64(n)
	if sum == 0 {
		for i := range out {
			out[i] = uniform
		}
		return out, nil
	}
	for i := range out {
		out[i] = sensitivityMix*uniform + (1-sensitivityMix)*kd[i]/sum
	}
	return out, nil
}

// Coreset draws m distinct point indices from the sensitivity distribution
// by systematic resampling: m evenly spaced positions with one shared
// random offset walk the cumulative distribution, so the draw is a single
// O(n) pass, has lower variance than independent sampling, and is fully
// deterministic for a fixed seed — every replica deriving a coreset from
// the same model selects the same points. Duplicated draws (a point
// spanning several positions) are collapsed and the freed slots go to the
// highest-sensitivity undrawn points, so the result always has exactly
// min(m, n) distinct indices, ascending.
//
// weights[j] is the unbiasedness weight of indices[j]: draws/(m·q(i)) for
// sampled points — the Horvitz-Thompson correction that makes weighted
// sums over the coreset estimate sums over the full data — and 1 for
// deterministic fill-ins, which represent only themselves.
func Coreset(db *matdb.DB, minPts, m int, seed int64) (indices []int, weights []float64, err error) {
	if m <= 0 {
		return nil, nil, fmt.Errorf("approx: coreset size must be positive, got %d", m)
	}
	q, err := Sensitivity(db, minPts)
	if err != nil {
		return nil, nil, err
	}
	n := db.Len()
	if m >= n {
		indices = make([]int, n)
		weights = make([]float64, n)
		for i := range indices {
			indices[i] = i
			weights[i] = 1
		}
		return indices, weights, nil
	}
	u := rand.New(rand.NewSource(seed)).Float64()
	counts := make([]int, n)
	cum := 0.0
	j := 0
	for i := 0; i < n && j < m; i++ {
		cum += q[i]
		for j < m && (float64(j)+u)/float64(m) < cum {
			counts[i]++
			j++
		}
	}
	for ; j < m; j++ {
		counts[n-1]++ // float accumulation slack: park leftovers on the tail
	}
	drawn := 0
	for _, c := range counts {
		if c > 0 {
			drawn++
		}
	}
	if missing := m - drawn; missing > 0 {
		// Slots freed by multiply-drawn points go to the most sensitive
		// points not yet in the sample, largest q first (ties by index for
		// determinism).
		undrawn := make([]int, 0, n-drawn)
		for i, c := range counts {
			if c == 0 {
				undrawn = append(undrawn, i)
			}
		}
		sort.Slice(undrawn, func(a, b int) bool {
			if q[undrawn[a]] != q[undrawn[b]] {
				return q[undrawn[a]] > q[undrawn[b]]
			}
			return undrawn[a] < undrawn[b]
		})
		for _, i := range undrawn[:missing] {
			counts[i] = -1 // fill-in marker: weight 1, not Horvitz-Thompson
		}
	}
	indices = make([]int, 0, m)
	weights = make([]float64, 0, m)
	for i, c := range counts {
		switch {
		case c > 0:
			indices = append(indices, i)
			weights = append(weights, float64(c)/(float64(m)*q[i]))
		case c < 0:
			indices = append(indices, i)
			weights = append(weights, 1)
		}
	}
	return indices, weights, nil
}
