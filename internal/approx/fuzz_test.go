package approx

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/core"
	"lof/internal/geom"
	"lof/internal/index/kdtree"
	"lof/internal/matdb"
)

// FuzzPruneBoundSafety is the safety net under the pruning proof: for
// arbitrary point configurations (clustered, degenerate, duplicate-heavy)
// and arbitrary swept ranges, every point the pruned sweep certifies must
// really have its exact aggregated LOF inside the claimed band, every
// unpruned point must score bit-identically to the full sweep, and the
// Bounds interval must contain the exact LOF at every swept MinPts. A
// violation of any of these means the certificate lies, which is the one
// failure mode the approximate path must never have.
func FuzzPruneBoundSafety(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(3), uint8(5), false)
	f.Add(int64(7), uint8(120), uint8(5), uint8(9), false)
	f.Add(int64(42), uint8(60), uint8(4), uint8(4), true)
	f.Add(int64(99), uint8(200), uint8(10), uint8(20), false)
	f.Add(int64(3), uint8(30), uint8(2), uint8(7), true)
	f.Fuzz(func(t *testing.T, seed int64, n, lbRaw, span uint8, distinct bool) {
		lb := int(lbRaw)%12 + 1
		ub := lb + int(span)%12
		num := int(n)
		if num < ub+2 {
			num = ub + 2
		}
		if num > 300 {
			num = 300
		}
		rng := rand.New(rand.NewSource(seed))
		pts := geom.NewPoints(2, num)
		for i := 0; i < num; i++ {
			var p geom.Point
			switch rng.Intn(10) {
			case 0: // far outlier
				p = geom.Point{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
			case 1: // exact duplicate of an earlier point, when one exists
				p = geom.Point{0, 0}
				if pts.Len() > 0 {
					src := pts.At(rng.Intn(pts.Len()))
					p = geom.Point{src[0], src[1]}
				}
			default: // cluster member
				c := float64(rng.Intn(3)) * 10
				p = geom.Point{c + rng.NormFloat64(), c + rng.NormFloat64()}
			}
			if err := pts.Append(p); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		var opts []matdb.Option
		if distinct {
			opts = append(opts, matdb.Distinct())
		}
		db, err := matdb.Materialize(pts, kdtree.New(pts, nil), ub, opts...)
		if err != nil {
			t.Skip("materialization rejected the configuration")
		}
		lower, upper, err := Bounds(db, lb, ub, nil)
		if err != nil {
			t.Fatalf("Bounds: %v", err)
		}
		sw, err := core.SweepCtx(nil, db, lb, ub, nil, nil)
		if err != nil {
			t.Fatalf("sweep: %v", err)
		}
		for j := range sw.MinPts {
			for i, v := range sw.Values[j] {
				if math.IsNaN(v) {
					continue
				}
				if v < lower[i]*(1-1e-9)-1e-12 || v > upper[i]*(1+1e-9)+1e-12 {
					t.Fatalf("LOF_%d(%d)=%v outside bound [%v, %v]", sw.MinPts[j], i, v, lower[i], upper[i])
				}
			}
		}
		for _, agg := range []core.Aggregate{core.AggMax, core.AggMean, core.AggMin} {
			res, err := PruneSweep(nil, db, lb, ub, 0, agg, nil)
			if err != nil {
				t.Fatalf("prune sweep: %v", err)
			}
			exact := sw.Aggregate(agg)
			for i, v := range exact {
				if res.Pruned[i] {
					lo, hi := 1/(1+res.Eps), 1+res.Eps
					if !(v >= lo*(1-1e-9) && v <= hi*(1+1e-9)) {
						t.Fatalf("agg %v: pruned point %d has exact score %v outside certified band [%v, %v]",
							agg, i, v, lo, hi)
					}
					if res.Scores[i] != 1 {
						t.Fatalf("agg %v: pruned point %d reported %v, want 1", agg, i, res.Scores[i])
					}
					continue
				}
				if math.Float64bits(res.Scores[i]) != math.Float64bits(v) {
					t.Fatalf("agg %v: frontier point %d diverged: pruned sweep %v, exact %v", agg, i, res.Scores[i], v)
				}
			}
		}
	})
}
