// Package client is a fault-tolerant HTTP client for the lofserve API. It
// retries transient failures — network errors, 429s and 5xx responses that
// plausibly clear on their own — with jittered exponential backoff under a
// per-attempt timeout, honors Retry-After hints from the server, and caps
// cluster-wide retry amplification with a token-bucket retry budget: each
// fresh request earns a fraction of a retry token, each retry spends one,
// so a fleet of these clients converges to bounded extra load against a
// struggling server instead of a retry storm.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lof/internal/server"
	"lof/internal/trace"
)

// ErrBudgetExhausted wraps the last attempt's error when the retry budget
// denies further attempts; errors.Is distinguishes it from a request that
// ran out of attempts.
var ErrBudgetExhausted = errors.New("client: retry budget exhausted")

// Config parameterizes a Client. The zero value of every field takes the
// documented default.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// HTTPClient issues the requests; nil uses a fresh http.Client. Set a
	// faults.Transport here to chaos-test the retry loop.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request (first attempt included).
	// Default 4.
	MaxAttempts int
	// PerAttemptTimeout bounds each attempt; the caller's context bounds
	// the whole request including backoff waits. Default 10s.
	PerAttemptTimeout time.Duration
	// BaseBackoff is the backoff before the first retry; attempt n waits
	// BaseBackoff·2ⁿ, halved-to-full jittered, capped at MaxBackoff.
	// Defaults 50ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryBudgetRatio is the retry-token fraction earned per fresh
	// request, and RetryBudgetBurst the bucket capacity (also the initial
	// balance). Defaults 0.2 and 10: sustained retries are capped at 20%
	// of request volume, with bursts of up to 10. A negative ratio
	// disables budgeting.
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// Seed drives backoff jitter; zero seeds from the budget burst — any
	// fixed value is fine, jitter needs spread, not entropy.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.PerAttemptTimeout <= 0 {
		c.PerAttemptTimeout = 10 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.2
	}
	if c.RetryBudgetBurst <= 0 {
		c.RetryBudgetBurst = 10
	}
	return c
}

// Stats counts what the retry loop did, for soak reporting and tests.
type Stats struct {
	Requests      int64 // logical requests issued
	Attempts      int64 // HTTP attempts, including first tries
	Retries       int64 // attempts beyond the first
	BudgetDenials int64 // retries the budget refused
}

// Client issues retrying requests against one lofserve instance. Safe for
// concurrent use.
type Client struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	budget float64

	requests      atomic.Int64
	attempts      atomic.Int64
	retries       atomic.Int64
	budgetDenials atomic.Int64
}

// New validates cfg and returns a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.RetryBudgetBurst)
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed)), budget: cfg.RetryBudgetBurst}, nil
}

// Stats returns a snapshot of the retry-loop counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:      c.requests.Load(),
		Attempts:      c.attempts.Load(),
		Retries:       c.retries.Load(),
		BudgetDenials: c.budgetDenials.Load(),
	}
}

// earn credits the budget for one fresh request.
func (c *Client) earn() {
	if c.cfg.RetryBudgetRatio < 0 {
		return
	}
	c.mu.Lock()
	c.budget = math.Min(c.budget+c.cfg.RetryBudgetRatio, c.cfg.RetryBudgetBurst)
	c.mu.Unlock()
}

// spend takes one retry token; false means the budget is dry.
func (c *Client) spend() bool {
	if c.cfg.RetryBudgetRatio < 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget < 1 {
		return false
	}
	c.budget--
	return true
}

// backoff returns the jittered wait before retry number n (0-based): a
// uniform draw from [d/2, d] where d = BaseBackoff·2ⁿ capped at MaxBackoff.
func (c *Client) backoff(n int) time.Duration {
	d := float64(c.cfg.BaseBackoff) * math.Pow(2, float64(n))
	if d > float64(c.cfg.MaxBackoff) {
		d = float64(c.cfg.MaxBackoff)
	}
	c.mu.Lock()
	u := c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(d/2 + u*d/2)
}

// retryAfter parses a Retry-After header as delay seconds; 0, false when
// absent or unparsable. (HTTP-date values are rare from this server and
// fall back to plain backoff.)
func retryAfter(resp *http.Response) (time.Duration, bool) {
	if resp == nil {
		return 0, false
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// retryableStatus reports whether a status code is worth retrying: the
// server shed or timed out the request, or an injected/transient 5xx.
// Client errors (4xx other than 429) are permanent by definition.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// apiError is a non-retryable server response, carrying the decoded error
// body when one was present.
type apiError struct {
	Status    int
	Message   string
	RequestID string
}

func (e *apiError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("client: server returned status %d", e.Status)
	}
	return fmt.Sprintf("client: server returned status %d: %s", e.Status, e.Message)
}

// do runs the retry loop for one logical request: POST body (or GET when
// body is nil) to path, decode a 200 into out. The caller's ctx bounds the
// whole loop; each attempt additionally gets PerAttemptTimeout.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out interface{}) error {
	return c.doTyped(ctx, method, path, body, "application/json", out)
}

// doTyped is do with an explicit request content type; the shard snapshot
// push sends raw bytes, everything else JSON.
func (c *Client) doTyped(ctx context.Context, method, path string, body []byte, contentType string, out interface{}) error {
	c.requests.Add(1)
	c.earn()
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if !c.spend() {
				c.budgetDenials.Add(1)
				return fmt.Errorf("%w after %d attempts: %w", ErrBudgetExhausted, attempt, lastErr)
			}
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		sp, sctx := trace.StartSpan(ctx, "rpc "+path)
		sp.SetAttrInt("attempt", int64(attempt))
		resp, err := c.attempt(sctx, method, path, body, contentType)
		retry, done := c.finish(resp, err, out)
		if resp != nil {
			sp.SetAttrInt("status", int64(resp.StatusCode))
		}
		if done != nil {
			sp.SetError(done.Error())
		}
		sp.End()
		if done == nil && retry == 0 {
			return nil
		}
		if retry == 0 {
			return done
		}
		lastErr = done
		// Honor the server's Retry-After when it exceeds our own backoff;
		// the hint reflects actual drain time, the backoff only guesses.
		wait := c.backoff(attempt)
		if retry > wait {
			wait = retry
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("client: %w (last attempt: %w)", ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt issues one HTTP attempt under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, contentType string) (*http.Response, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.PerAttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	// Propagate the trace context and correlation ID on every attempt —
	// retries and hedges included — so server-side spans parent correctly
	// and both sides log the same X-Request-ID.
	trace.Inject(ctx, req.Header)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	// Read the whole body under the attempt timeout, then detach it from
	// the cancelled context.
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	return resp, nil
}

// finish classifies one attempt's outcome. retry > 0 means try again after
// at least that wait (a nominal 1ns when no Retry-After hint applies);
// retry == 0 with err == nil means success (out is decoded).
func (c *Client) finish(resp *http.Response, err error, out interface{}) (retry time.Duration, _ error) {
	const again = time.Nanosecond
	if err != nil {
		// Transport-level failure: severed connection, injected fault,
		// attempt timeout. All retryable — but not worth retrying when the
		// parent context is done, which do's wait select catches.
		return again, err
	}
	if resp.StatusCode == http.StatusOK {
		if out == nil {
			return 0, nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return again, fmt.Errorf("client: decoding response: %w", err)
		}
		return 0, nil
	}
	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	serr := &apiError{Status: resp.StatusCode, Message: body.Error, RequestID: body.RequestID}
	if !retryableStatus(resp.StatusCode) {
		return 0, serr
	}
	if ra, ok := retryAfter(resp); ok && ra > 0 {
		return ra, serr
	}
	return again, serr
}

// --- API surface ---------------------------------------------------------

// jsonFloat decodes the server's float encoding, where non-finite values
// arrive as the strings "+Inf", "-Inf" and "NaN".
type jsonFloat float64

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = jsonFloat(math.Inf(1))
		case "-Inf":
			*f = jsonFloat(math.Inf(-1))
		case "NaN":
			*f = jsonFloat(math.NaN())
		default:
			return fmt.Errorf("client: unknown float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// ModelInfo mirrors the server's model summary.
type ModelInfo struct {
	Objects  int    `json:"objects"`
	Dims     int    `json:"dims"`
	MinPtsLB int    `json:"minPtsLB"`
	MinPtsUB int    `json:"minPtsUB"`
	Metric   string `json:"metric"`
	Distinct bool   `json:"distinct"`
}

// FitResult is a fit response: the installed model's summary plus the
// server-side fit latency.
type FitResult struct {
	ModelInfo
	FitMS float64 `json:"fitMillis"`
}

// Fit posts data with the given configuration and returns the installed
// model's summary. Retries on transient failures; a retried fit is
// idempotent for identical payloads (the same model is re-installed).
func (c *Client) Fit(ctx context.Context, cfg server.FitConfig, data [][]float64) (*FitResult, error) {
	body, err := json.Marshal(struct {
		Config server.FitConfig `json:"config"`
		Data   [][]float64      `json:"data"`
	}{cfg, data})
	if err != nil {
		return nil, err
	}
	var out FitResult
	if err := c.do(ctx, http.MethodPost, "/v1/fit", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ScoreResult is a score response: one LOF per query, and the mode that
// served it ("degraded" when the subsampled model answered, "" for exact).
type ScoreResult struct {
	Scores []float64
	Mode   string
}

// Score returns exact scores for the query points.
func (c *Client) Score(ctx context.Context, queries [][]float64) ([]float64, error) {
	res, err := c.ScoreMode(ctx, queries, "")
	if err != nil {
		return nil, err
	}
	return res.Scores, nil
}

// ScoreMode scores with an explicit mode: "" or "full" for exact scores,
// "pruned" for the bound-certified fast path (exact except for queries
// certified as LOF ≈ 1), "coreset" to score against the server's
// sensitivity-sampled coreset model, and "degraded" to accept approximate
// scores from the server's fallback model (and its reserve capacity when
// the server is saturated).
func (c *Client) ScoreMode(ctx context.Context, queries [][]float64, mode string) (*ScoreResult, error) {
	body, err := json.Marshal(struct {
		Queries [][]float64 `json:"queries"`
	}{queries})
	if err != nil {
		return nil, err
	}
	path := "/v1/score"
	if mode != "" {
		path += "?mode=" + mode
	}
	var out struct {
		Scores []jsonFloat `json:"scores"`
		Mode   string      `json:"mode"`
	}
	if err := c.do(ctx, http.MethodPost, path, body, &out); err != nil {
		return nil, err
	}
	res := &ScoreResult{Scores: make([]float64, len(out.Scores)), Mode: out.Mode}
	for i, v := range out.Scores {
		res.Scores[i] = float64(v)
	}
	return res, nil
}

// Model fetches the current model summary.
func (c *Client) Model(ctx context.Context) (*ModelInfo, error) {
	var out ModelInfo
	if err := c.do(ctx, http.MethodGet, "/v1/model", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports whether the server is up and whether a model is loaded.
func (c *Client) Healthz(ctx context.Context) (modelLoaded bool, err error) {
	var out struct {
		Status string `json:"status"`
		Model  bool   `json:"model"`
	}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return false, err
	}
	return out.Model, nil
}
