package client

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lof"
	"lof/internal/faults"
	"lof/internal/server"
)

// testData draws two Gaussian clusters, the same shape the server tests
// use, so scores are well-defined and finite.
func testData(rng *rand.Rand, n int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		cx, cy := 0.0, 0.0
		if i%2 == 1 {
			cx, cy = 10, 10
		}
		data[i] = []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
	}
	return data
}

// fittedServer returns a Server with a model over n points installed.
func fittedServer(t *testing.T, n int) *server.Server {
	t.Helper()
	det, err := lof.New(lof.Config{MinPtsLB: 3, MinPtsUB: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(testData(rand.New(rand.NewSource(1)), n))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{RequestTimeout: 20 * time.Second})
	srv.SetModel(m)
	return srv
}

// checkNoGoroutineLeak fails the test if the goroutine count has not
// settled back to (about) the baseline within a grace window.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, baseline %d", n, baseline)
}

// TestChaosEventualSuccess is the headline chaos property: against a
// server injecting 10% transient errors plus latency spikes and dropped
// connections, every logical request eventually succeeds, and no
// goroutines leak.
func TestChaosEventualSuccess(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := fittedServer(t, 200)
	inj := faults.New(faults.Config{
		Seed:        1,
		DropProb:    0.05,
		ErrorProb:   0.10,
		LatencyProb: 0.20,
		Latency:     2 * time.Millisecond,
	})
	hs := httptest.NewServer(inj.Middleware(srv.Handler()))
	defer hs.Close()

	c, err := New(Config{
		BaseURL:           hs.URL,
		MaxAttempts:       6,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        20 * time.Millisecond,
		PerAttemptTimeout: 5 * time.Second,
		RetryBudgetBurst:  1000, // the budget is not under test here
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers   = 4
		perWorker = 25
	)
	var failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				q := [][]float64{{rng.NormFloat64(), rng.NormFloat64()}}
				scores, err := c.Score(context.Background(), q)
				if err != nil || len(scores) != 1 || math.IsNaN(scores[0]) {
					t.Errorf("worker %d request %d failed: scores=%v err=%v", w, i, scores, err)
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d of %d chaos requests never succeeded", failures.Load(), workers*perWorker)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Error("no retries recorded — the fault injector appears inert, so the test proved nothing")
	}
	if st.Requests != workers*perWorker {
		t.Errorf("Requests = %d, want %d", st.Requests, workers*perWorker)
	}
	hs.Close()
	checkNoGoroutineLeak(t, baseline)
}

// TestRetryBudgetExhaustion: when the server only ever sheds, the budget —
// not the attempt cap — stops the retry loop, and the error says so.
func TestRetryBudgetExhaustion(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"always down"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c, err := New(Config{
		BaseURL:          hs.URL,
		MaxAttempts:      10,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		RetryBudgetRatio: 0.001, // earns essentially nothing back
		RetryBudgetBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Model(context.Background())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("error = %v, want ErrBudgetExhausted", err)
	}
	// First try plus the two budgeted retries.
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (burst 2 + first try)", got)
	}
	st := c.Stats()
	if st.BudgetDenials != 1 {
		t.Errorf("BudgetDenials = %d, want 1", st.BudgetDenials)
	}
	// A second request earns ~nothing back: one first try, zero retries.
	hits.Store(0)
	if _, err := c.Model(context.Background()); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second request error = %v, want ErrBudgetExhausted", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("drained budget allowed %d attempts, want 1", got)
	}
}

// TestRetryAfterHonored: a 503 carrying Retry-After delays the retry by at
// least the advertised time even though the backoff alone would be shorter.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"objects":1,"dims":1,"minPtsLB":1,"minPtsUB":1,"metric":"euclidean"}`))
	}))
	defer hs.Close()

	c, err := New(Config{
		BaseURL:     hs.URL,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Model(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retry fired after %v, want ≥1s per Retry-After", elapsed)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2", calls.Load())
	}
}

// TestPermanentErrorNotRetried: 4xx responses other than 429 fail
// immediately with the server's error message attached.
func TestPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"minPts out of range","requestId":"abc"}`, http.StatusBadRequest)
	}))
	defer hs.Close()

	c, err := New(Config{BaseURL: hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Score(context.Background(), [][]float64{{1}})
	if err == nil {
		t.Fatal("want error for 400 response")
	}
	var ae *apiError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T does not unwrap to *apiError: %v", err, err)
	}
	if ae.Status != http.StatusBadRequest || ae.Message != "minPts out of range" || ae.RequestID != "abc" {
		t.Errorf("apiError = %+v, want 400/minPts out of range/abc", ae)
	}
	if calls.Load() != 1 {
		t.Errorf("400 was attempted %d times, want exactly 1", calls.Load())
	}
}

// TestNonFiniteScoreDecoding: the server encodes non-finite LOFs as
// strings; the client maps them back to float64 specials.
func TestNonFiniteScoreDecoding(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"scores":["+Inf","-Inf","NaN",1.5]}`))
	}))
	defer hs.Close()

	c, err := New(Config{BaseURL: hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := c.Score(context.Background(), [][]float64{{0}, {0}, {0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(scores[0], 1) || !math.IsInf(scores[1], -1) || !math.IsNaN(scores[2]) || scores[3] != 1.5 {
		t.Errorf("decoded scores = %v, want [+Inf -Inf NaN 1.5]", scores)
	}
}

// TestContextCancelsBackoff: cancelling the caller's context during a
// backoff wait returns promptly with the context error.
func TestContextCancelsBackoff(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"long drain"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	c, err := New(Config{BaseURL: hs.URL, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Model(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return from the 30s Retry-After wait", elapsed)
	}
}
