package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lof/internal/server"
	"lof/internal/shard"
	"lof/internal/trace"
)

// Shard-tier methods: the coordinator talks to each shard replica through
// these. Data requests (Candidates, Rows) ride the normal retry loop — a
// stale-version 503 carries Retry-After and is retried like any transient —
// while Readyz is deliberately one-shot: a 503 there IS the answer the
// poller wants, not a failure to paper over.

// PushSnapshot uploads an encoded shard.Part and returns the shard's
// installation acknowledgement. Safe to retry: installation is idempotent
// for identical payloads (last write wins).
func (c *Client) PushSnapshot(ctx context.Context, encoded []byte) (*shard.SnapshotInfo, error) {
	var out shard.SnapshotInfo
	if err := c.doTyped(ctx, http.MethodPost, "/v1/shard/snapshot", encoded, "application/octet-stream", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Candidates fetches per-partition kNN candidates for a batch of queries,
// pinned to the given snapshot version.
func (c *Client) Candidates(ctx context.Context, version uint64, queries [][]float64) (*shard.CandidatesResponse, error) {
	body, err := json.Marshal(shard.CandidatesRequest{Version: version, Queries: queries})
	if err != nil {
		return nil, err
	}
	var out shard.CandidatesResponse
	if err := c.do(ctx, http.MethodPost, "/v1/shard/candidates", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rows fetches merged rows of owned points, pinned to the given snapshot
// version.
func (c *Client) Rows(ctx context.Context, version uint64, queries []shard.RowsQuery) (*shard.RowsResponse, error) {
	body, err := json.Marshal(shard.RowsRequest{Version: version, Queries: queries})
	if err != nil {
		return nil, err
	}
	var out shard.RowsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/shard/rows", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// KDists fetches the stored k-distance envelope of owned points at two
// neighborhood ranks, pinned to the given snapshot version.
func (c *Client) KDists(ctx context.Context, version uint64, ids []uint32, lo, hi int) (*shard.KDistsResponse, error) {
	body, err := json.Marshal(shard.KDistsRequest{Version: version, Lo: lo, Hi: hi, IDs: ids})
	if err != nil {
		return nil, err
	}
	var out shard.KDistsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/shard/kdists", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Readyz reports the server's readiness state with a single un-retried GET:
// an unready 503 still decodes into a meaningful report, and a transport
// error means "not reachable, hence not ready" to a polling coordinator.
func (c *Client) Readyz(ctx context.Context) (*server.ReadyInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	trace.Inject(ctx, req.Header)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var info server.ReadyInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("client: decoding readyz: %w", err)
	}
	return &info, nil
}

// ReplicaSet is a group of clients addressing replicas of the same shard:
// any member can answer any data request, so calls fan out with hedging and
// the first success wins.
type ReplicaSet struct {
	clients []*Client
}

// NewReplicaSet builds one client per replica URL from the template config
// (its BaseURL is ignored; everything else — transport, retry policy —
// carries over).
func NewReplicaSet(urls []string, tmpl Config) (*ReplicaSet, error) {
	if len(urls) == 0 {
		return nil, errors.New("client: replica set needs at least one URL")
	}
	rs := &ReplicaSet{clients: make([]*Client, len(urls))}
	for i, u := range urls {
		cfg := tmpl
		cfg.BaseURL = u
		c, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("client: replica %d: %w", i, err)
		}
		rs.clients[i] = c
	}
	return rs, nil
}

// Clients exposes the member clients, primary first.
func (rs *ReplicaSet) Clients() []*Client { return rs.clients }

// Len returns the number of replicas.
func (rs *ReplicaSet) Len() int { return len(rs.clients) }

// Hedged runs op against the replica set: the primary is tried first, and
// each time the hedge delay passes without an answer — or an attempt fails
// outright — the next replica is engaged concurrently. The first success
// wins and cancels the rest; the call fails only when every replica has
// failed. A hedge delay ≤ 0 disables time-based hedging, leaving pure
// failover-on-error. Results from cancelled losers are discarded, which is
// safe for the shard API: every operation is read-only or idempotent.
func Hedged[T any](ctx context.Context, rs *ReplicaSet, hedge time.Duration, op func(context.Context, *Client) (T, error)) (T, error) {
	var zero T
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, len(rs.clients))
	launched := 0
	launch := func() {
		c := rs.clients[launched]
		idx := launched
		launched++
		go func() {
			// Each replica attempt is its own span, so hedge winners and
			// losers show up as siblings under the caller's span; op runs
			// under the replica span's context so its RPC spans nest inside.
			sp, sctx := trace.StartSpan(cctx, "replica")
			sp.SetAttrInt("replica", int64(idx))
			if idx > 0 {
				sp.SetAttr("hedged", "true")
			}
			v, err := op(sctx, c)
			switch {
			case err == nil:
				sp.SetAttr("outcome", "won")
			case cctx.Err() != nil:
				// Cancelled because a sibling already won.
				sp.SetAttr("outcome", "lost")
			default:
				sp.SetAttr("outcome", "error")
				sp.SetError(err.Error())
			}
			sp.End()
			ch <- result{v, err}
		}()
	}
	launch()
	var hedgeC <-chan time.Time
	var timer *time.Timer
	if hedge > 0 && len(rs.clients) > 1 {
		timer = time.NewTimer(hedge)
		defer timer.Stop()
		hedgeC = timer.C
	}
	pending := 1
	var lastErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.v, nil
			}
			lastErr = r.err
			if launched < len(rs.clients) {
				launch()
				pending++
			} else if pending == 0 {
				return zero, fmt.Errorf("client: all %d replicas failed: %w", len(rs.clients), lastErr)
			}
		case <-hedgeC:
			if launched < len(rs.clients) {
				launch()
				pending++
				timer.Reset(hedge)
			} else {
				hedgeC = nil
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}
