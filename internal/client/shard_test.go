package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lof"
	"lof/internal/server"
	"lof/internal/shard"
)

func shardServer(t *testing.T) (*server.Server, *httptest.Server, []*shard.Part) {
	t.Helper()
	det, err := lof.New(lof.Config{MinPtsLB: 2, MinPtsUB: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := det.Fit([][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5},
		{10, 10}, {11, 10}, {10, 11}, {11, 11}, {30, -20},
	})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	pts, db := m.Fitted()
	parts, err := shard.Split(pts, db, shard.Meta{}, 2, shard.PartitionRange, 3)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, parts
}

func TestShardClientRoundTrip(t *testing.T) {
	_, ts, parts := shardServer(t)
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatalf("New client: %v", err)
	}
	ctx := context.Background()

	// Readyz is a one-shot answer, 503 or not.
	info, err := c.Readyz(ctx)
	if err != nil || info.Ready {
		t.Fatalf("readyz before snapshot: %+v, %v", info, err)
	}

	enc, err := shard.EncodePart(parts[0])
	if err != nil {
		t.Fatalf("EncodePart: %v", err)
	}
	ack, err := c.PushSnapshot(ctx, enc)
	if err != nil {
		t.Fatalf("PushSnapshot: %v", err)
	}
	if ack.Version != 3 || ack.Shards != 2 {
		t.Fatalf("snapshot ack = %+v", ack)
	}
	info, err = c.Readyz(ctx)
	if err != nil || !info.Ready || info.Version != 3 || info.Role != "shard" {
		t.Fatalf("readyz after snapshot: %+v, %v", info, err)
	}

	cresp, err := c.Candidates(ctx, 3, [][]float64{{0.4, 0.4}})
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	if len(cresp.Candidates) != 1 || len(cresp.Candidates[0]) == 0 {
		t.Fatalf("candidates = %+v", cresp)
	}

	rresp, err := c.Rows(ctx, 3, []shard.RowsQuery{{Query: []float64{0.4, 0.4}, IDs: []uint32{0}}})
	if err != nil {
		t.Fatalf("Rows: %v", err)
	}
	if len(rresp.Rows) != 1 || len(rresp.Rows[0]) != 1 {
		t.Fatalf("rows = %+v", rresp)
	}

	// A stale pin exhausts retries with the server's 503 as the cause.
	short, err := New(Config{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("New client: %v", err)
	}
	ctxShort, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := short.Candidates(ctxShort, 99, [][]float64{{0, 0}}); err == nil {
		t.Fatal("stale-version candidates succeeded")
	}
}

func TestHedgedFailover(t *testing.T) {
	// Replica 0 is dead (closed listener); replica 1 answers. Hedging must
	// recover without the caller seeing the failure.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	_, ts, parts := shardServer(t)
	enc, _ := shard.EncodePart(parts[0])
	rs, err := NewReplicaSet([]string{deadURL, ts.URL}, Config{
		MaxAttempts: 1, BaseBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	ctx := context.Background()
	if _, err := Hedged(ctx, rs, 0, func(ctx context.Context, c *Client) (*shard.SnapshotInfo, error) {
		return c.PushSnapshot(ctx, enc)
	}); err != nil {
		t.Fatalf("Hedged push over dead primary: %v", err)
	}
	got, err := Hedged(ctx, rs, 50*time.Millisecond, func(ctx context.Context, c *Client) (*shard.CandidatesResponse, error) {
		return c.Candidates(ctx, 3, [][]float64{{0.4, 0.4}})
	})
	if err != nil {
		t.Fatalf("Hedged candidates: %v", err)
	}
	if len(got.Candidates) != 1 {
		t.Fatalf("hedged candidates = %+v", got)
	}
}

func TestHedgedLatency(t *testing.T) {
	// The primary hangs; the hedge timer must engage the secondary long
	// before the primary's timeout would expire.
	release := make(chan struct{})
	var slowHits atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		slowHits.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(release)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer fast.Close()
	rs, err := NewReplicaSet([]string{slow.URL, fast.URL}, Config{MaxAttempts: 1, PerAttemptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	start := time.Now()
	_, err = Hedged(context.Background(), rs, 20*time.Millisecond, func(ctx context.Context, c *Client) (struct{}, error) {
		var out struct{}
		return out, c.do(ctx, http.MethodGet, "/", nil, nil)
	})
	if err != nil {
		t.Fatalf("Hedged: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge did not engage: took %v", elapsed)
	}
	if slowHits.Load() == 0 {
		t.Fatal("primary was never tried")
	}
}

func TestHedgedAllFail(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusBadRequest)
	}))
	defer bad.Close()
	rs, err := NewReplicaSet([]string{bad.URL, bad.URL}, Config{MaxAttempts: 1})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	_, err = Hedged(context.Background(), rs, time.Millisecond, func(ctx context.Context, c *Client) (struct{}, error) {
		var out struct{}
		return out, errors.New("replica error")
	})
	if err == nil {
		t.Fatal("Hedged succeeded with all replicas failing")
	}
}

func TestHedgedContextCancel(t *testing.T) {
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hang.Close()
	rs, err := NewReplicaSet([]string{hang.URL}, Config{MaxAttempts: 1, PerAttemptTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("NewReplicaSet: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = Hedged(ctx, rs, 0, func(ctx context.Context, c *Client) (struct{}, error) {
		var out struct{}
		return out, c.do(ctx, http.MethodGet, "/", nil, nil)
	})
	if err == nil {
		t.Fatal("Hedged outlived its context")
	}
}
