package client

import (
	"context"
	"encoding/json"
	"net/http"

	"lof/internal/server"
)

// StreamStats mirrors the server's stream pipeline snapshot.
type StreamStats struct {
	Epoch       uint64 `json:"epoch"`
	Live        int    `json:"live"`
	Slots       int    `json:"slots"`
	Inserts     uint64 `json:"inserts_total"`
	Deletes     uint64 `json:"deletes_total"`
	Expired     uint64 `json:"expired_total"`
	Compactions uint64 `json:"compactions_total"`
	MinPts      int    `json:"min_pts"`
	Dim         int    `json:"dim"`
}

// StreamPushResult reports what one ingestion batch did.
type StreamPushResult struct {
	Epoch     uint64   `json:"epoch"`
	Inserted  []uint64 `json:"inserted"`
	Expired   []uint64 `json:"expired"`
	Deleted   int      `json:"deleted"`
	Live      int      `json:"live"`
	Compacted bool     `json:"compacted"`
}

// StreamScoreResult is a stream score response: one LOF per query plus the
// epoch the scores were computed against.
type StreamScoreResult struct {
	Scores []float64
	Epoch  uint64
}

// StreamLOFs is the stream window's maintained values at one epoch.
type StreamLOFs struct {
	IDs   []uint64
	LOFs  []float64
	Epoch uint64
}

// StreamInit creates (or replaces) the server's streaming pipeline.
// CAUTION on retries: init is idempotent for identical configs in effect
// (a replayed init just resets an empty pipeline again), but an init
// retried after ingestion started would drop the window — the server only
// sees duplicate inits when the first response was lost, which this
// client's retry loop can cause under injected faults.
func (c *Client) StreamInit(ctx context.Context, cfg server.StreamConfig) (*StreamStats, error) {
	body, err := json.Marshal(struct {
		Config server.StreamConfig `json:"config"`
	}{cfg})
	if err != nil {
		return nil, err
	}
	var out StreamStats
	if err := c.do(ctx, http.MethodPost, "/v1/stream/init", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamPush applies one ingestion batch: inserts are appended to the
// window (the server assigns and returns their IDs), deletes remove
// previously inserted points by ID, and the window's count/age bounds
// expire the oldest points. nowUnixNanos pins the batch timestamp for age
// expiry; zero takes the server clock.
//
// Unlike Fit and Score, a push is NOT idempotent: a retry after a lost
// response re-applies the batch. Callers that cannot tolerate duplicate
// inserts should disable retries (MaxAttempts=1) or dedupe downstream.
func (c *Client) StreamPush(ctx context.Context, inserts [][]float64, deletes []uint64, nowUnixNanos int64) (*StreamPushResult, error) {
	body, err := json.Marshal(struct {
		Inserts      [][]float64 `json:"inserts,omitempty"`
		Deletes      []uint64    `json:"deletes,omitempty"`
		NowUnixNanos int64       `json:"nowUnixNanos,omitempty"`
	}{inserts, deletes, nowUnixNanos})
	if err != nil {
		return nil, err
	}
	var out StreamPushResult
	if err := c.do(ctx, http.MethodPost, "/v1/stream", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamScore scores query points against the published stream epoch.
func (c *Client) StreamScore(ctx context.Context, queries [][]float64) (*StreamScoreResult, error) {
	body, err := json.Marshal(struct {
		Queries [][]float64 `json:"queries"`
	}{queries})
	if err != nil {
		return nil, err
	}
	var out struct {
		Scores []jsonFloat `json:"scores"`
		Epoch  uint64      `json:"epoch"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/stream/score", body, &out); err != nil {
		return nil, err
	}
	res := &StreamScoreResult{Scores: make([]float64, len(out.Scores)), Epoch: out.Epoch}
	for i, v := range out.Scores {
		res.Scores[i] = float64(v)
	}
	return res, nil
}

// StreamWindowLOFs fetches the window's IDs and maintained LOF values.
func (c *Client) StreamWindowLOFs(ctx context.Context) (*StreamLOFs, error) {
	var out struct {
		IDs   []uint64    `json:"ids"`
		LOFs  []jsonFloat `json:"lofs"`
		Epoch uint64      `json:"epoch"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/stream/lofs", nil, &out); err != nil {
		return nil, err
	}
	res := &StreamLOFs{IDs: out.IDs, LOFs: make([]float64, len(out.LOFs)), Epoch: out.Epoch}
	for i, v := range out.LOFs {
		res.LOFs[i] = float64(v)
	}
	return res, nil
}

// StreamStats fetches the pipeline counters and epoch shape.
func (c *Client) StreamStats(ctx context.Context) (*StreamStats, error) {
	var out StreamStats
	if err := c.do(ctx, http.MethodGet, "/v1/stream/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamFreezeResult is a freeze response: the installed model's summary
// plus the epoch it froze.
type StreamFreezeResult struct {
	ModelInfo
	Epoch uint64 `json:"epoch"`
}

// StreamFreeze refits the current stream window into a standard batch
// model and installs it as the server's serving model. Idempotent: a
// retried freeze refits the same (or a newer) window.
func (c *Client) StreamFreeze(ctx context.Context) (*StreamFreezeResult, error) {
	var out StreamFreezeResult
	if err := c.do(ctx, http.MethodPost, "/v1/stream/freeze", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
