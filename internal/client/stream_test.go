package client

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"lof"
	"lof/internal/server"
)

// TestClientStreamRoundTrip drives the streaming API through the retrying
// client: init, pushes, scores pinned to an epoch, window LOFs matching a
// batch fit, stats, and freeze into the batch model.
func TestClientStreamRoundTrip(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL, HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Stream calls before init surface the server's 409 as a permanent
	// (non-retried) API error.
	if _, err := c.StreamStats(ctx); err == nil {
		t.Fatal("stats before init succeeded")
	}
	st, err := c.StreamInit(ctx, server.StreamConfig{Dim: 2, MinPts: 4, MaxPoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 0 || st.Live != 0 || st.MinPts != 4 || st.Dim != 2 {
		t.Fatalf("init stats=%+v", st)
	}

	rng := rand.New(rand.NewSource(3))
	window := make(map[uint64][]float64)
	var lastID uint64
	for batch := 0; batch < 4; batch++ {
		inserts := make([][]float64, 15)
		for i := range inserts {
			inserts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		res, err := c.StreamPush(ctx, inserts, nil, 0)
		if err != nil {
			t.Fatalf("push %d: %v", batch, err)
		}
		for i, id := range res.Inserted {
			window[id] = inserts[i]
			lastID = id
		}
		for _, id := range res.Expired {
			delete(window, id)
		}
		if res.Live != len(window) {
			t.Fatalf("push %d: live=%d tracked=%d", batch, res.Live, len(window))
		}
	}

	// Delete one point by ID; deleting it again must fail permanently.
	if _, err := c.StreamPush(ctx, nil, []uint64{lastID}, 0); err != nil {
		t.Fatal(err)
	}
	delete(window, lastID)
	if _, err := c.StreamPush(ctx, nil, []uint64{lastID}, 0); err == nil {
		t.Fatal("double delete succeeded")
	}

	lofs, err := c.StreamWindowLOFs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, len(lofs.IDs))
	for i, id := range lofs.IDs {
		rows[i] = window[id]
	}
	want, err := lof.Scores(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(lofs.LOFs[i]) != math.Float64bits(want[i]) {
			t.Fatalf("id %d: stream %v batch %v", lofs.IDs[i], lofs.LOFs[i], want[i])
		}
	}

	sc, err := c.StreamScore(ctx, [][]float64{{0, 0}, {6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Scores) != 2 || sc.Epoch != lofs.Epoch {
		t.Fatalf("score=%+v, want 2 scores at epoch %d", sc, lofs.Epoch)
	}

	fr, err := c.StreamFreeze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Objects != len(window) || fr.Epoch != lofs.Epoch {
		t.Fatalf("freeze=%+v, want objects=%d epoch=%d", fr, len(window), lofs.Epoch)
	}
	// The frozen model now serves the batch Score API.
	if _, err := c.Score(ctx, [][]float64{{0, 0}}); err != nil {
		t.Fatalf("batch score after freeze: %v", err)
	}

	st, err = c.StreamStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != len(window) || st.Inserts != 60 || st.Deletes != 1 {
		t.Fatalf("stats=%+v, want live=%d inserts=60 deletes=1", st, len(window))
	}
}
