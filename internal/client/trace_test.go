package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lof/internal/trace"
)

// TestRequestIDForwardedAcrossRetries is the regression test for the bug
// where internal/client dropped X-Request-ID on the wire: coordinator-side
// and shard-side logs for one request could not be joined. Every attempt of
// a retried request must now carry the same correlation ID and the same
// trace ID.
func TestRequestIDForwardedAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var ids, traceparents []string
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-ID"))
		traceparents = append(traceparents, r.Header.Get("traceparent"))
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			// Transient failures; the client must retry with the same IDs.
			http.Error(w, `{"error":"injected"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","model":true}`))
	}))
	defer ts.Close()

	cl, err := New(Config{
		BaseURL:          ts.URL,
		MaxAttempts:      4,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		RetryBudgetRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	col := trace.NewCollector(trace.Config{Service: "test", Sample: 1})
	sp, ctx := col.StartRequest(context.Background(), "root", "")
	ctx = trace.ContextWithRequestID(ctx, "chaos-42")
	if _, err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	sp.End()

	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(ids))
	}
	for i, id := range ids {
		if id != "chaos-42" {
			t.Fatalf("attempt %d carried X-Request-ID %q, want chaos-42 on every attempt", i, id)
		}
	}
	root := sp.Context().TraceID
	seenSpanIDs := map[string]bool{}
	for i, tp := range traceparents {
		sc, ok := trace.Parse(tp)
		if !ok {
			t.Fatalf("attempt %d carried unparsable traceparent %q", i, tp)
		}
		if sc.TraceID != root {
			t.Fatalf("attempt %d trace ID %s, want root %s", i, sc.TraceID, root)
		}
		seenSpanIDs[sc.SpanID.String()] = true
	}
	// Each attempt is its own span, so the propagated parent differs per try.
	if len(seenSpanIDs) != 3 {
		t.Fatalf("attempts shared span IDs: %v", seenSpanIDs)
	}

	// The collector holds one rpc span per attempt, failures marked.
	var rpcs []trace.Recorded
	for _, rec := range col.Spans(trace.Query{TraceID: root.String()}) {
		if rec.Name == "rpc /healthz" {
			rpcs = append(rpcs, rec)
		}
	}
	if len(rpcs) != 3 {
		t.Fatalf("collector holds %d rpc spans, want 3", len(rpcs))
	}
	failed := 0
	for _, rec := range rpcs {
		if rec.Error != "" {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("%d rpc spans marked failed, want the 2 injected 503s", failed)
	}
}

// TestHedgedSiblingSpans asserts hedge fan-out is visible in the trace:
// each engaged replica is a sibling span under the caller's span, the
// failed one marked error and the winner marked won.
func TestHedgedSiblingSpans(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"injected"}`, http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","model":true}`))
	}))
	defer good.Close()

	rs, err := NewReplicaSet([]string{bad.URL, good.URL}, Config{
		BaseURL:          "placeholder",
		MaxAttempts:      1,
		RetryBudgetRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	col := trace.NewCollector(trace.Config{Service: "coord", Sample: 1})
	sp, ctx := col.StartRequest(context.Background(), "root", "")
	_, err = Hedged(ctx, rs, 0, func(ctx context.Context, c *Client) (bool, error) {
		return c.Healthz(ctx)
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.End()

	var replicas []trace.Recorded
	for _, rec := range col.Spans(trace.Query{TraceID: sp.Context().TraceID.String()}) {
		if rec.Name == "replica" {
			replicas = append(replicas, rec)
		}
	}
	if len(replicas) != 2 {
		t.Fatalf("recorded %d replica spans, want 2 siblings", len(replicas))
	}
	parent := sp.Context().SpanID.String()
	outcomes := map[string]string{}
	for _, rec := range replicas {
		if rec.ParentID != parent {
			t.Fatalf("replica span parented to %s, want the caller's span %s", rec.ParentID, parent)
		}
		outcomes[rec.Attrs["replica"]] = rec.Attrs["outcome"]
	}
	if outcomes["0"] != "error" || outcomes["1"] != "won" {
		t.Fatalf("outcomes %v, want replica 0 error and replica 1 won", outcomes)
	}
}
