package coord_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lof"
	"lof/internal/coord"
	"lof/internal/shard"
)

// TestPrunedMode: the coordinator's pruned path certifies a meaningful
// share of clustered queries as ≈1 from the k-distance envelopes alone,
// answers every uncertain query bit-identically to the exact path, and
// never certifies a genuine outlier into the band.
func TestPrunedMode(t *testing.T) {
	queries := testQueries()
	// A narrow MinPts range keeps the stored k-distance envelope
	// [kd_{lb-1}, kd_ub] tight enough to certify; see DESIGN.md §12.
	m := fitModel(t, lof.Config{MinPtsLB: 8, MinPtsUB: 12})
	want, err := m.ScoreBatchContext(context.Background(), queries)
	if err != nil {
		t.Fatalf("single-node scores: %v", err)
	}
	for _, shards := range []int{2, 3} {
		c := newCoord(t, startShards(t, shards, nil), shard.PartitionRange)
		if _, err := c.Install(context.Background(), m); err != nil {
			t.Fatalf("shards=%d: Install: %v", shards, err)
		}
		got, mode, certified, err := c.Score(context.Background(), queries, "pruned")
		if err != nil {
			t.Fatalf("shards=%d: pruned Score: %v", shards, err)
		}
		if mode != "pruned" {
			t.Fatalf("shards=%d: served mode %q, want pruned", shards, mode)
		}
		if certified == 0 {
			t.Fatalf("shards=%d: no query certified; clustered queries should fast-path", shards)
		}
		eps := lof.DefaultPruneEps
		pruned := 0
		for i, v := range got {
			if v == 1 && math.Float64bits(want[i]) != math.Float64bits(1.0) {
				pruned++
				if want[i] < 1/(1+eps)*(1-1e-9) || want[i] > (1+eps)*(1+1e-9) {
					t.Fatalf("shards=%d query %d: certified but exact %v outside 1±%v", shards, i, want[i], eps)
				}
				continue
			}
			if math.Float64bits(v) != math.Float64bits(want[i]) {
				t.Fatalf("shards=%d query %d: uncertain score %v != exact %v", shards, i, v, want[i])
			}
		}
		if pruned > certified {
			t.Fatalf("shards=%d: %d scores snapped to 1 but only %d reported certified", shards, pruned, certified)
		}
		// The planted outliers (queries 4 and 7) must never be certified.
		for _, oi := range []int{4, 7} {
			if got[oi] < 1.5 {
				t.Fatalf("shards=%d: outlier query %d scored %v in pruned mode", shards, oi, got[oi])
			}
		}
	}
}

// TestCoresetMode: coreset requests serve from the locally derived
// sensitivity sample — bit-identical to deriving the same coreset from the
// same model — and fall back to exact serving when derivation is disabled.
func TestCoresetMode(t *testing.T) {
	queries := testQueries()
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 9})
	cs, err := m.Coreset(64)
	if err != nil {
		t.Fatalf("Coreset: %v", err)
	}
	want, err := cs.ScoreBatch(queries)
	if err != nil {
		t.Fatalf("coreset scores: %v", err)
	}

	c, err := coord.New(coord.Config{
		Targets:       startShards(t, 2, nil),
		Client:        fastClient(),
		Partitioner:   shard.PartitionRange,
		CoresetSample: 64,
	})
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	got, mode, _, err := c.Score(context.Background(), queries, "coreset")
	if err != nil {
		t.Fatalf("coreset Score: %v", err)
	}
	if mode != "coreset" {
		t.Fatalf("served mode %q, want coreset", mode)
	}
	assertBitIdentical(t, got, want, "coreset")

	// Disabled derivation: the request is honored exactly, unlabeled.
	c2, err := coord.New(coord.Config{
		Targets:       startShards(t, 2, nil),
		Client:        fastClient(),
		Partitioner:   shard.PartitionRange,
		CoresetSample: -1,
	})
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	if _, err := c2.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	exact, _ := m.ScoreBatchContext(context.Background(), queries)
	got, mode, _, err = c2.Score(context.Background(), queries, "coreset")
	if err != nil || mode != "" {
		t.Fatalf("disabled coreset: mode=%q err=%v", mode, err)
	}
	assertBitIdentical(t, got, exact, "coreset-disabled")
}

// TestPrunedModeHTTP drives ?mode=pruned through the coordinator's HTTP
// surface and checks the response shape and the mode-labeled metrics.
func TestPrunedModeHTTP(t *testing.T) {
	m := fitModel(t, lof.Config{MinPtsLB: 8, MinPtsUB: 12})
	c := newCoord(t, startShards(t, 2, nil), shard.PartitionRange)
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]interface{}{"queries": testQueries()})
	resp, err := ts.Client().Post(ts.URL+"/v1/score?mode=pruned", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST score: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, raw)
	}
	// Scores decode as interface{}: non-finite values arrive as strings
	// ("+Inf", "NaN") under the protocol's tolerant float rendering.
	var out struct {
		Scores    []interface{} `json:"scores"`
		Mode      string        `json:"mode"`
		Certified int           `json:"certified"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	if out.Mode != "pruned" || out.Certified == 0 || len(out.Scores) != len(testQueries()) {
		t.Fatalf("pruned response = %+v", out)
	}

	// Rejected mode names enumerate the valid set.
	resp, err = ts.Client().Post(ts.URL+"/v1/score?mode=bogus", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST bogus mode: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus mode status %d, want 400", resp.StatusCode)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	text := string(mraw)
	if !strings.Contains(text, `lof_coord_score_mode_total{mode="pruned"} 1`) {
		t.Errorf("metrics missing pruned mode count")
	}
	for _, mode := range []string{"full", "coreset", "degraded"} {
		if !strings.Contains(text, `lof_coord_score_mode_total{mode="`+mode+`"} 0`) {
			t.Errorf("mode %q not pre-seeded in metrics", mode)
		}
	}
	if !strings.Contains(text, "lof_coord_pruned_certified_total") {
		t.Errorf("metrics missing lof_coord_pruned_certified_total")
	}
}
