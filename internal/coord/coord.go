// Package coord implements the lofcoord scatter-gather coordinator: the
// control and query plane of the sharded LOF serving tier. It fits a model
// globally, splits the fitted state into per-shard sub-snapshots
// (shard.Split), replicates them to lofserve shard processes, and answers
// score requests by a three-round scatter-gather that reassembles exact
// global LOF:
//
//	round 1  every shard returns its partition's kNN candidates for the
//	         query batch; the coordinator merges them into each query's
//	         exact global row (matdb.MergeCandidates)
//	round 2  the merged rows of each query's neighborhood are fetched from
//	         their owning shards (matdb.SpliceRow applied shard-side)
//	round 3  the rows of those rows' neighbors — the two-hop closure the
//	         LOF arithmetic touches — are fetched the same way
//
// Evaluation then runs core.EvalAt over the fetched rows: literally the
// code path the in-process scorer uses, which is what makes a distributed
// score bit-identical to a single-node one.
//
// Failure policy: per-shard calls hedge across replicas (first success
// wins); when a whole shard is unreachable, a request that opted into
// ?mode=degraded is answered from a local approximate model with the
// response marked "degraded", and any other request fails with a gateway
// error — never a silently wrong exact score. A background repair loop
// re-pushes snapshots to replicas that report unready or stale.
//
// Approximate modes ride the same scatter-gather machinery:
//
//	?mode=pruned   rounds 1 and 2 run as usual, but instead of fetching
//	               the full second-hop row closure, the coordinator
//	               fetches lightweight stored k-distance envelopes
//	               (POST /v1/shard/kdists) and certifies queries whose
//	               LOF interval (approx.MergedQueryBounds) lies inside
//	               the 1±eps band as exactly 1; only uncertain queries
//	               pay for round 3 and exact evaluation
//	?mode=coreset  answered from a local sensitivity-sampled coreset
//	               model derived at fit time (lof.Model.Coreset), no
//	               shard RPCs at all; falls back to exact when disabled
package coord

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"lof"
	"lof/internal/approx"
	"lof/internal/client"
	"lof/internal/core"
	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/matdb"
	"lof/internal/obs"
	"lof/internal/pool"
	"lof/internal/server"
	"lof/internal/shard"
	"lof/internal/trace"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Targets lists the replica URLs of each shard: Targets[s] are
	// interchangeable replicas all serving shard s. Required, one entry per
	// shard, each non-empty.
	Targets [][]string
	// Client is the template for per-replica clients; its BaseURL is
	// ignored. The zero value takes the client package defaults.
	Client client.Config
	// Hedge is the delay before a data request is hedged to the next
	// replica of a shard; 0 or negative leaves pure failover-on-error.
	Hedge time.Duration
	// Partitioner is the point→shard assignment rule.
	Partitioner shard.Partitioner
	// DegradedSample sizes the local subsampled model kept as the
	// degraded-mode fallback for shard outages. Zero means 2048; negative
	// disables degraded serving.
	DegradedSample int
	// CoresetSample sizes the sensitivity-sampled coreset model kept for
	// ?mode=coreset serving and preferred by the degraded fallback. Zero
	// means 2048; negative disables coreset derivation.
	CoresetSample int
	// PruneEps is the ?mode=pruned certification band half-width: queries
	// whose LOF interval lies inside [1/(1+eps), 1+eps] are answered 1
	// without exact evaluation. Zero means lof.DefaultPruneEps.
	PruneEps float64
	// Workers bounds the coordinator-side merge/eval parallelism per batch.
	// Zero means GOMAXPROCS.
	Workers int
	// RepairInterval paces the background repair loop. Default 2s.
	RepairInterval time.Duration
	// Logger receives coordinator events. Nil discards.
	Logger *slog.Logger
	// Trace collects distributed-tracing spans for coordinator requests and
	// scatter-gather rounds; nil disables tracing.
	Trace *trace.Collector
}

// state is the installed serving state: everything a score request needs,
// swapped atomically on fit.
type state struct {
	version  uint64
	meta     shard.Meta
	dim      int
	lb, ub   int
	agg      core.Aggregate
	info     ModelInfo
	encoded  [][]byte // per-shard snapshots, kept for repair re-pushes
	degraded *lof.Model
	coreset  *lof.Model
}

// ModelInfo mirrors the single-node server's model summary, so the same
// clients understand both.
type ModelInfo struct {
	Objects  int    `json:"objects"`
	Dims     int    `json:"dims"`
	MinPtsLB int    `json:"minPtsLB"`
	MinPtsUB int    `json:"minPtsUB"`
	Metric   string `json:"metric"`
	Distinct bool   `json:"distinct"`
	Shards   int    `json:"shards,omitempty"`
	Version  uint64 `json:"version,omitempty"`
}

// Coordinator owns the replica sets and the installed state. Safe for
// concurrent use; fits are serialized.
type Coordinator struct {
	cfg      Config
	replicas []*client.ReplicaSet
	pool     *pool.Pool
	state    atomic.Pointer[state]
	version  atomic.Uint64

	fitMu sync.Mutex

	// Per-shard observability: RPC latency and failures by shard index.
	shardLatency []*obs.Histogram
	shardFails   []expvar.Int
	degradedHits expvar.Int
	repairPushes expvar.Int
	fits         expvar.Int
	scoreQueries expvar.Int
	// scoreModes counts score requests by the mode that actually served
	// them; certified counts pruned-mode queries certified without exact
	// evaluation.
	scoreModes expvar.Map
	certified  expvar.Int

	// Per-route HTTP observability (see http.go's wrap middleware).
	routes map[string]*coordRoute
}

// New validates cfg and returns a Coordinator with one client per replica.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("coord: at least one shard target is required")
	}
	if cfg.DegradedSample == 0 {
		cfg.DegradedSample = 2048
	}
	if cfg.CoresetSample == 0 {
		cfg.CoresetSample = 2048
	}
	if cfg.PruneEps == 0 {
		cfg.PruneEps = lof.DefaultPruneEps
	}
	if cfg.RepairInterval <= 0 {
		cfg.RepairInterval = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	c := &Coordinator{
		cfg:          cfg,
		replicas:     make([]*client.ReplicaSet, len(cfg.Targets)),
		pool:         pool.New(cfg.Workers),
		shardLatency: make([]*obs.Histogram, len(cfg.Targets)),
		shardFails:   make([]expvar.Int, len(cfg.Targets)),
		routes:       make(map[string]*coordRoute, len(coordRoutes)),
	}
	for _, route := range coordRoutes {
		c.routes[route] = &coordRoute{latency: obs.NewHistogram(obs.DefaultLatencyBuckets)}
	}
	// Pre-seed every mode label so the metrics exposition shape is stable
	// from the first scrape.
	for _, mode := range []string{"full", "pruned", "coreset", "degraded"} {
		c.scoreModes.Add(mode, 0)
	}
	for s, urls := range cfg.Targets {
		rs, err := client.NewReplicaSet(urls, cfg.Client)
		if err != nil {
			return nil, fmt.Errorf("coord: shard %d: %w", s, err)
		}
		c.replicas[s] = rs
		c.shardLatency[s] = obs.NewHistogram(obs.DefaultLatencyBuckets)
	}
	return c, nil
}

// Shards returns the configured shard count.
func (c *Coordinator) Shards() int { return len(c.replicas) }

// Info returns the installed model summary, or false when none is.
func (c *Coordinator) Info() (ModelInfo, bool) {
	st := c.state.Load()
	if st == nil {
		return ModelInfo{}, false
	}
	return st.info, true
}

// Version returns the installed snapshot version (0 before the first fit).
func (c *Coordinator) Version() uint64 {
	if st := c.state.Load(); st != nil {
		return st.version
	}
	return 0
}

// Fit fits the model globally, splits it, and replicates one sub-snapshot
// per shard. The new version serves once every shard has acknowledged the
// push on at least one replica; remaining replicas are brought up to date
// by the repair loop. The full fitted model is released after the split —
// the coordinator keeps only the encoded parts and the small degraded
// fallback.
func (c *Coordinator) Fit(ctx context.Context, fitCfg server.FitConfig, data [][]float64) (ModelInfo, error) {
	c.fitMu.Lock()
	defer c.fitMu.Unlock()
	det, err := fitCfg.Detector()
	if err != nil {
		return ModelInfo{}, err
	}
	res, err := det.FitContext(ctx, data)
	if err != nil {
		return ModelInfo{}, err
	}
	m, err := res.Model()
	if err != nil {
		return ModelInfo{}, err
	}
	st, err := c.buildState(m)
	if err != nil {
		return ModelInfo{}, err
	}
	if err := c.distribute(ctx, st); err != nil {
		return ModelInfo{}, err
	}
	c.state.Store(st)
	c.fits.Add(1)
	c.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "model distributed",
		slog.Uint64("version", st.version),
		slog.Int("shards", len(c.replicas)),
		slog.Int("objects", st.info.Objects))
	return st.info, nil
}

// Install splits and replicates an already-fitted model — the preload path
// (lofcoord -model) and the test seam.
func (c *Coordinator) Install(ctx context.Context, m *lof.Model) (ModelInfo, error) {
	c.fitMu.Lock()
	defer c.fitMu.Unlock()
	st, err := c.buildState(m)
	if err != nil {
		return ModelInfo{}, err
	}
	if err := c.distribute(ctx, st); err != nil {
		return ModelInfo{}, err
	}
	c.state.Store(st)
	return st.info, nil
}

// buildState splits m into encoded per-shard snapshots under a fresh
// version and derives the degraded fallback.
func (c *Coordinator) buildState(m *lof.Model) (*state, error) {
	pts, db := m.Fitted()
	mcfg := m.Config()
	version := c.version.Add(1)
	meta := shard.Meta{Metric: mcfg.Metric, Weights: mcfg.Weights}
	parts, err := shard.Split(pts, db, meta, len(c.replicas), c.cfg.Partitioner, version)
	if err != nil {
		return nil, fmt.Errorf("coord: splitting model: %w", err)
	}
	st := &state{
		version: version,
		meta:    parts[0].Meta(),
		dim:     pts.Dim(),
		lb:      mcfg.MinPtsLB,
		ub:      mcfg.MinPtsUB,
		agg:     coreAggregate(mcfg.Aggregation),
		encoded: make([][]byte, len(parts)),
	}
	metric := mcfg.Metric
	if metric == "" {
		metric = "euclidean"
	}
	if mcfg.Weights != nil {
		metric = "weighted-euclidean"
	}
	st.info = ModelInfo{
		Objects: pts.Len(), Dims: pts.Dim(),
		MinPtsLB: mcfg.MinPtsLB, MinPtsUB: mcfg.MinPtsUB,
		Metric: metric, Distinct: mcfg.Distinct,
		Shards: len(parts), Version: version,
	}
	for s, p := range parts {
		if st.encoded[s], err = shard.EncodePart(p); err != nil {
			return nil, fmt.Errorf("coord: encoding shard %d: %w", s, err)
		}
	}
	if c.cfg.DegradedSample > 0 {
		if d, err := m.Subsample(c.cfg.DegradedSample); err == nil {
			st.degraded = d
		}
	}
	if c.cfg.CoresetSample > 0 {
		if cs, err := m.Coreset(c.cfg.CoresetSample); err == nil {
			st.coreset = cs
		}
	}
	return st, nil
}

// distribute pushes every shard's snapshot to all of its replicas in
// parallel. A shard is distributed once any replica acknowledges; a shard
// with zero successful replicas fails the distribution.
func (c *Coordinator) distribute(ctx context.Context, st *state) error {
	type push struct{ s, r int }
	var work []push
	for s := range c.replicas {
		for r := range c.replicas[s].Clients() {
			work = append(work, push{s, r})
		}
	}
	okByShard := make([]atomic.Int64, len(c.replicas))
	errsByShard := make([]atomic.Pointer[error], len(c.replicas))
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w push) {
			defer wg.Done()
			cl := c.replicas[w.s].Clients()[w.r]
			if _, err := cl.PushSnapshot(ctx, st.encoded[w.s]); err != nil {
				errsByShard[w.s].Store(&err)
				return
			}
			okByShard[w.s].Add(1)
		}(w)
	}
	wg.Wait()
	for s := range c.replicas {
		if okByShard[s].Load() == 0 {
			err := fmt.Errorf("no replica reachable")
			if p := errsByShard[s].Load(); p != nil {
				err = *p
			}
			return fmt.Errorf("coord: distributing snapshot to shard %d: %w", s, err)
		}
	}
	return nil
}

// errNoModel distinguishes "nothing fitted yet" for the HTTP layer.
var errNoModel = errors.New("coord: no fitted model")

// shardError marks a scatter-gather round that lost a shard — the class of
// failure degraded mode may absorb.
type shardError struct {
	shard int
	err   error
}

func (e *shardError) Error() string {
	return fmt.Sprintf("coord: shard %d unavailable: %v", e.shard, e.err)
}

func (e *shardError) Unwrap() error { return e.err }

// Score answers a batch of queries under the requested mode:
//
//	""/"full"  exact scatter-gather; a shard outage fails the request
//	"degraded" exact, but a shard outage is absorbed by the local
//	           approximate fallback (coreset preferred, stride subsample
//	           otherwise), the return marked "degraded"
//	"pruned"   band-certified: queries whose LOF interval lies inside
//	           1±eps answer 1 without round 3; the rest answer exactly
//	"coreset"  served from the local coreset model; exact when disabled
//
// The returned mode is what actually served ("" for exact), and certified
// is the number of pruned-mode queries answered from the bound alone.
func (c *Coordinator) Score(ctx context.Context, queries [][]float64, mode string) ([]float64, string, int, error) {
	st := c.state.Load()
	if st == nil {
		return nil, "", 0, errNoModel
	}
	for i, q := range queries {
		if len(q) != st.dim {
			return nil, "", 0, fmt.Errorf("coord: batch row %d has %d dimensions, model expects %d", i, len(q), st.dim)
		}
		if !geom.Point(q).Valid() {
			return nil, "", 0, fmt.Errorf("coord: batch row %d has non-finite coordinates", i)
		}
	}
	if mode == "coreset" && st.coreset != nil {
		scores, err := st.coreset.ScoreBatchContext(ctx, queries)
		if err != nil {
			return nil, "", 0, err
		}
		c.scoreQueries.Add(int64(len(queries)))
		c.scoreModes.Add("coreset", 1)
		return scores, "coreset", 0, nil
	}
	if mode == "pruned" {
		scores, certified, err := c.scorePruned(ctx, st, queries)
		if err != nil {
			return nil, "", 0, err
		}
		c.scoreQueries.Add(int64(len(queries)))
		c.scoreModes.Add("pruned", 1)
		c.certified.Add(int64(certified))
		return scores, "pruned", certified, nil
	}
	scores, err := c.scoreExact(ctx, st, queries)
	if err == nil {
		c.scoreQueries.Add(int64(len(queries)))
		c.scoreModes.Add("full", 1)
		return scores, "", 0, nil
	}
	var se *shardError
	fallback := st.coreset
	if fallback == nil {
		fallback = st.degraded
	}
	if errors.As(err, &se) && mode == "degraded" && c.cfg.DegradedSample > 0 && fallback != nil {
		if ctx.Err() != nil {
			return nil, "", 0, err
		}
		c.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "serving degraded",
			slog.Int("shard", se.shard), slog.String("cause", se.err.Error()))
		dsp, dctx := trace.StartSpan(ctx, "coord/degraded")
		dsp.SetAttrInt("shard", int64(se.shard))
		dsp.SetAttr("cause", se.err.Error())
		scores, derr := fallback.ScoreBatchContext(dctx, queries)
		dsp.End()
		if derr != nil {
			return nil, "", 0, fmt.Errorf("coord: degraded fallback after %v: %w", err, derr)
		}
		c.degradedHits.Add(int64(len(queries)))
		c.scoreModes.Add("degraded", 1)
		return scores, "degraded", 0, nil
	}
	return nil, "", 0, err
}

// shardCall runs op against a shard's replica set with hedging, records
// per-shard latency and failures, and traces the whole hedged call as one
// named span (replica attempts appear as its children).
func shardCall[T any](ctx context.Context, c *Coordinator, s int, name string, op func(context.Context, *client.Client) (T, error)) (T, error) {
	sp, sctx := trace.StartSpan(ctx, name)
	sp.SetAttrInt("shard", int64(s))
	start := time.Now()
	v, err := client.Hedged(sctx, c.replicas[s], c.cfg.Hedge, op)
	c.shardLatency[s].Observe(time.Since(start))
	if err != nil {
		c.shardFails[s].Add(1)
		sp.SetError(err.Error())
	}
	sp.End()
	return v, err
}

// gathered is the product of scatter-gather rounds 1 and 2, shared by the
// exact and pruned scoring paths: each query's merged global row, its
// first-hop neighbor ids, and the merged rows fetched so far.
type gathered struct {
	qRows []matdb.Row
	first [][]int
	rows  []map[int]matdb.Row
}

// secondHopIDs returns the ids of query qi's second-hop closure — the
// neighbors of its first-hop rows not yet fetched — deduplicated.
func (g *gathered) secondHopIDs(st *state, qi int) []int {
	var second []int
	seen := make(map[int]bool)
	for _, id := range g.first[qi] {
		for _, nid := range neighborIDs(g.rows[qi][id], st.ub, st.meta.Total, g.rows[qi]) {
			if !seen[nid] {
				seen[nid] = true
				second = append(second, nid)
			}
		}
	}
	return second
}

// scoreExact runs the three-round scatter-gather and evaluation.
func (c *Coordinator) scoreExact(ctx context.Context, st *state, queries [][]float64) ([]float64, error) {
	g, err := c.gatherFirstHop(ctx, st, queries)
	if err != nil {
		return nil, err
	}
	need := make([][]int, len(queries))
	for qi := range need {
		need[qi] = g.secondHopIDs(st, qi)
	}
	if err := c.fetchRowsSpan(ctx, st, queries, need, g.rows, 3); err != nil {
		return nil, err
	}
	out := make([]float64, len(queries))
	if err := c.evalInto(ctx, st, g, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// scorePruned is the band-certified scoring path: rounds 1 and 2 run as in
// the exact path, then — instead of the round-3 row closure — the
// coordinator fetches stored k-distance envelopes for the second-hop ids
// and brackets every query's whole LOF series (approx.MergedQueryBounds).
// A query whose interval lies inside 1±eps is certified ≈1 and answered 1
// on the spot; the uncertain remainder pays for round 3 and evaluates
// exactly, bit-identical to scoreExact.
func (c *Coordinator) scorePruned(ctx context.Context, st *state, queries [][]float64) ([]float64, int, error) {
	g, err := c.gatherFirstHop(ctx, st, queries)
	if err != nil {
		return nil, 0, err
	}
	nq := len(queries)
	qIdx := st.meta.Total
	second := make([][]int, nq)
	var union []int
	inUnion := make(map[int]bool)
	for qi := range second {
		second[qi] = g.secondHopIDs(st, qi)
		for _, id := range second[qi] {
			if !inUnion[id] {
				inUnion[id] = true
				union = append(union, id)
			}
		}
	}
	env, err := c.fetchKDists(ctx, st, union)
	if err != nil {
		return nil, 0, err
	}
	eps := c.cfg.PruneEps
	out := make([]float64, nq)
	skip := make([]bool, nq)
	uncertain := make([][]int, nq)
	c.pool.Each(nq, func(qi int) {
		rowOf := func(i int) (matdb.Row, bool) {
			r, ok := g.rows[qi][i]
			return r, ok
		}
		kdEnv := func(i int) (lo, hi float64, ok bool) {
			// First-hop rows are merged (the query already spliced in), so
			// their k-distances are exact at both range ends; everything
			// else uses the stored envelope from the kdists round.
			if r, found := g.rows[qi][i]; found {
				return r.KDistance(st.lb), r.KDistance(st.ub), true
			}
			e, found := env[i]
			return e[0], e[1], found
		}
		lower, upper := approx.MergedQueryBounds(g.qRows[qi], qIdx, rowOf, kdEnv, st.lb, st.ub)
		if approx.Certified(lower, upper, eps) {
			out[qi] = 1
			skip[qi] = true
		} else {
			uncertain[qi] = second[qi]
		}
	})
	certified := 0
	for _, s := range skip {
		if s {
			certified++
		}
	}
	if certified < nq {
		if err := c.fetchRowsSpan(ctx, st, queries, uncertain, g.rows, 3); err != nil {
			return nil, 0, err
		}
		if err := c.evalInto(ctx, st, g, out, skip); err != nil {
			return nil, 0, err
		}
	}
	return out, certified, nil
}

// fetchKDists fetches the stored k-distance envelopes [kd_{lb-1}, kd_ub]
// of ids from their owning shards — the lightweight substitute for the
// round-3 row closure on the pruned path. The lower rank is lb-1 because
// splicing the query into a stored neighborhood can shift every rank down
// by at most one.
func (c *Coordinator) fetchKDists(ctx context.Context, st *state, ids []int) (map[int][2]float64, error) {
	sp, sctx := trace.StartSpan(ctx, "coord/kdists")
	sp.SetAttrInt("ids", int64(len(ids)))
	defer sp.End()
	byShard := make([][]uint32, len(c.replicas))
	for _, id := range ids {
		s := c.cfg.Partitioner.Shard(uint32(id), len(c.replicas), st.meta.Total)
		byShard[s] = append(byShard[s], uint32(id))
	}
	env := make(map[int][2]float64, len(ids))
	var mu sync.Mutex
	err := c.eachShard(sctx, func(s int) error {
		if len(byShard[s]) == 0 {
			return nil
		}
		resp, err := shardCall(sctx, c, s, "rpc/kdists", func(ctx context.Context, cl *client.Client) (*shard.KDistsResponse, error) {
			return cl.KDists(ctx, st.version, byShard[s], st.lb-1, st.ub)
		})
		if err != nil {
			return err
		}
		if len(resp.Lo) != len(byShard[s]) || len(resp.Hi) != len(byShard[s]) {
			return fmt.Errorf("shard %d returned %d/%d envelopes for %d ids",
				s, len(resp.Lo), len(resp.Hi), len(byShard[s]))
		}
		mu.Lock()
		defer mu.Unlock()
		for i, id := range byShard[s] {
			env[int(id)] = [2]float64{resp.Lo[i], resp.Hi[i]}
		}
		return nil
	})
	if err != nil {
		sp.SetError(err.Error())
		return nil, err
	}
	return env, nil
}

// gatherFirstHop runs scatter-gather rounds 1 and 2: merge every query's
// global row from per-shard candidates, then fetch the merged rows of its
// first-hop neighborhood.
func (c *Coordinator) gatherFirstHop(ctx context.Context, st *state, queries [][]float64) (*gathered, error) {
	nq := len(queries)
	qIdx := st.meta.Total

	// Round 1: per-partition candidates from every shard, in parallel.
	candsByShard := make([][][]shard.WireCandidate, len(c.replicas))
	csp, cctx := trace.StartSpan(ctx, "coord/candidates")
	csp.SetAttrInt("queries", int64(nq))
	err := c.eachShard(cctx, func(s int) error {
		resp, err := shardCall(cctx, c, s, "rpc/candidates", func(ctx context.Context, cl *client.Client) (*shard.CandidatesResponse, error) {
			return cl.Candidates(ctx, st.version, queries)
		})
		if err != nil {
			return err
		}
		if len(resp.Candidates) != nq {
			return fmt.Errorf("shard %d returned %d candidate lists for %d queries", s, len(resp.Candidates), nq)
		}
		candsByShard[s] = resp.Candidates
		return nil
	})
	if err != nil {
		csp.SetError(err.Error())
	}
	csp.End()
	if err != nil {
		return nil, err
	}

	// Merge each query's global row locally; coordinate lookups for
	// distinct-rank recomputation come from the candidate payloads.
	msp, _ := trace.StartSpan(ctx, "coord/merge")
	qRows := make([]matdb.Row, nq)
	coords := make([]map[int]geom.Point, nq)
	mergeErrs := make([]error, nq)
	c.pool.Each(nq, func(qi int) {
		var cands []index.Neighbor
		var at func(int) geom.Point
		if st.meta.Distinct {
			cm := make(map[int]geom.Point)
			for s := range candsByShard {
				for _, cand := range candsByShard[s][qi] {
					cands = append(cands, cand.Neighbor())
					cm[int(cand.ID)] = cand.Point
				}
			}
			coords[qi] = cm
			at = func(i int) geom.Point {
				if i == qIdx {
					return queries[qi]
				}
				return cm[i]
			}
		} else {
			for s := range candsByShard {
				for _, cand := range candsByShard[s][qi] {
					cands = append(cands, cand.Neighbor())
				}
			}
		}
		qRows[qi], mergeErrs[qi] = matdb.MergeCandidates(cands, at, st.meta.K, st.meta.Distinct)
	})
	for qi, err := range mergeErrs {
		if err != nil {
			msp.SetError(err.Error())
			msp.End()
			return nil, fmt.Errorf("coord: merging query %d: %w", qi, err)
		}
	}
	msp.End()

	// Round 2: fetch the merged rows of each query's first-hop
	// neighborhood.
	rows := make([]map[int]matdb.Row, nq)
	for qi := range rows {
		rows[qi] = make(map[int]matdb.Row)
	}
	first := make([][]int, nq)
	for qi := range first {
		first[qi] = neighborIDs(qRows[qi], st.ub, qIdx, rows[qi])
	}
	if err := c.fetchRowsSpan(ctx, st, queries, first, rows, 2); err != nil {
		return nil, err
	}
	return &gathered{qRows: qRows, first: first, rows: rows}, nil
}

// evalInto evaluates every query not marked in skip — the same core.EvalAt
// the in-process scorer runs — writing scores into out. A nil skip
// evaluates everything.
func (c *Coordinator) evalInto(ctx context.Context, st *state, g *gathered, out []float64, skip []bool) error {
	esp, _ := trace.StartSpan(ctx, "coord/eval")
	defer esp.End()
	nq := len(out)
	qIdx := st.meta.Total
	evalErrs := make([]error, nq)
	c.pool.Each(nq, func(qi int) {
		if skip != nil && skip[qi] {
			return
		}
		missing := -1
		rowOf := func(i int) matdb.Row {
			r, ok := g.rows[qi][i]
			if !ok && missing < 0 {
				missing = i
			}
			return r
		}
		series := make([]float64, st.ub-st.lb+1)
		for j := range series {
			series[j] = core.EvalAt(qIdx, g.qRows[qi], rowOf, st.lb+j)
		}
		if missing >= 0 {
			evalErrs[qi] = fmt.Errorf("coord: query %d: merged row %d missing from the fetched closure", qi, missing)
			return
		}
		out[qi] = core.ScoreAggregate(series, st.agg)
	})
	for _, err := range evalErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// eachShard runs fn for every shard concurrently and returns the first
// error wrapped as a shardError.
func (c *Coordinator) eachShard(ctx context.Context, fn func(s int) error) error {
	errs := make([]error, len(c.replicas))
	var wg sync.WaitGroup
	for s := range c.replicas {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return &shardError{shard: s, err: err}
		}
	}
	return nil
}

// neighborIDs returns the ids in row's ub-neighborhood that are real points
// (not the query) and not already fetched.
func neighborIDs(row matdb.Row, ub, qIdx int, have map[int]matdb.Row) []int {
	var out []int
	for _, nb := range row.Neighborhood(ub) {
		if nb.Index == qIdx {
			continue
		}
		if _, ok := have[nb.Index]; ok {
			continue
		}
		out = append(out, nb.Index)
	}
	return out
}

// fetchRowsSpan wraps one fetchRows round in a "coord/rows" span labeled
// with its scatter-gather round number.
func (c *Coordinator) fetchRowsSpan(ctx context.Context, st *state, queries [][]float64, need [][]int, rows []map[int]matdb.Row, round int) error {
	sp, sctx := trace.StartSpan(ctx, "coord/rows")
	sp.SetAttrInt("round", int64(round))
	err := c.fetchRows(sctx, st, queries, need, rows)
	if err != nil {
		sp.SetError(err.Error())
	}
	sp.End()
	return err
}

// fetchRows fetches the merged rows of need[qi] for every query, grouped by
// owning shard, and records them in rows[qi]. One Rows RPC per shard covers
// the whole batch.
func (c *Coordinator) fetchRows(ctx context.Context, st *state, queries [][]float64, need [][]int, rows []map[int]matdb.Row) error {
	reqs := make([][]shard.RowsQuery, len(c.replicas))
	backRefs := make([][]int, len(c.replicas)) // request entry → query index
	for qi, ids := range need {
		if len(ids) == 0 {
			continue
		}
		byShard := make(map[int][]uint32)
		for _, id := range ids {
			s := c.cfg.Partitioner.Shard(uint32(id), len(c.replicas), st.meta.Total)
			byShard[s] = append(byShard[s], uint32(id))
		}
		for s, sids := range byShard {
			reqs[s] = append(reqs[s], shard.RowsQuery{Query: queries[qi], IDs: sids})
			backRefs[s] = append(backRefs[s], qi)
		}
	}
	var mu sync.Mutex
	return c.eachShard(ctx, func(s int) error {
		if len(reqs[s]) == 0 {
			return nil
		}
		resp, err := shardCall(ctx, c, s, "rpc/rows", func(ctx context.Context, cl *client.Client) (*shard.RowsResponse, error) {
			return cl.Rows(ctx, st.version, reqs[s])
		})
		if err != nil {
			return err
		}
		if len(resp.Rows) != len(reqs[s]) {
			return fmt.Errorf("shard %d returned %d row lists for %d requests", s, len(resp.Rows), len(reqs[s]))
		}
		mu.Lock()
		defer mu.Unlock()
		for e, wireRows := range resp.Rows {
			qi := backRefs[s][e]
			for _, wr := range wireRows {
				rows[qi][int(wr.ID)] = wr.Row(st.meta.Distinct)
			}
		}
		return nil
	})
}

// Repair runs one repair sweep: every replica reporting unreachable,
// unready, or a version other than the installed one gets the current
// snapshot re-pushed. Returns the number of pushes performed.
func (c *Coordinator) Repair(ctx context.Context) int {
	st := c.state.Load()
	if st == nil {
		return 0
	}
	var pushes atomic.Int64
	var wg sync.WaitGroup
	for s := range c.replicas {
		for _, cl := range c.replicas[s].Clients() {
			wg.Add(1)
			go func(s int, cl *client.Client) {
				defer wg.Done()
				info, err := cl.Readyz(ctx)
				if err == nil && info.Ready && info.Version == st.version {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if _, err := cl.PushSnapshot(ctx, st.encoded[s]); err == nil {
					pushes.Add(1)
					c.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "repaired replica",
						slog.Int("shard", s), slog.Uint64("version", st.version))
				}
			}(s, cl)
		}
	}
	wg.Wait()
	n := int(pushes.Load())
	c.repairPushes.Add(int64(n))
	return n
}

// Run drives the repair loop until ctx is cancelled.
func (c *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Repair(ctx)
		}
	}
}

// coreAggregate maps the public aggregation enum onto the core one.
func coreAggregate(a lof.Aggregation) core.Aggregate {
	switch a {
	case lof.AggregateMean:
		return core.AggMean
	case lof.AggregateMin:
		return core.AggMin
	default:
		return core.AggMax
	}
}

// discardHandler is a slog.Handler that drops everything (slog.DiscardHandler
// arrived in Go 1.24; this build supports 1.23).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
