package coord_test

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lof"
	"lof/internal/client"
	"lof/internal/coord"
	"lof/internal/faults"
	"lof/internal/server"
	"lof/internal/shard"
)

// trainData is the shared fixture: three separated clusters, two clear
// outliers, and a block of exact duplicates that makes distinct mode
// meaningful.
func trainData() [][]float64 {
	var data [][]float64
	emit := func(cx, cy float64, n int, spread float64) {
		for i := 0; i < n; i++ {
			// Deterministic low-discrepancy jitter; no RNG needed.
			fx := float64(i%7)/7 - 0.5
			fy := float64(i%5)/5 - 0.5
			data = append(data, []float64{cx + spread*fx, cy + spread*fy})
		}
	}
	emit(0, 0, 40, 1.0)
	emit(12, 12, 40, 1.5)
	emit(-10, 8, 40, 0.8)
	data = append(data, []float64{50, -40}, []float64{-35, 60}) // outliers
	for i := 0; i < 6; i++ {                                    // exact duplicates
		data = append(data, []float64{3.25, 3.25})
	}
	return data
}

func testQueries() [][]float64 {
	return [][]float64{
		{0, 0}, {0.3, -0.2}, {12, 12}, {-10, 8},
		{50, -40}, {25, 25}, {3.25, 3.25}, {-35, 60},
		{6, 6}, {100, 100}, {0.5, 0.5}, {11.4, 12.6},
	}
}

func fitModel(t *testing.T, cfg lof.Config) *lof.Model {
	t.Helper()
	det, err := lof.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := det.Fit(trainData())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	return m
}

// startShards launches n lofserve shard processes (in-process) and returns
// one single-replica target list per shard. wrap, when non-nil, may
// instrument a shard's handler — the chaos tests' hook.
func startShards(t *testing.T, n int, wrap func(shardID int, h http.Handler) http.Handler) [][]string {
	t.Helper()
	targets := make([][]string, n)
	for s := 0; s < n; s++ {
		h := http.Handler(server.New(server.Config{}).Handler())
		if wrap != nil {
			h = wrap(s, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		targets[s] = []string{ts.URL}
	}
	return targets
}

func fastClient() client.Config {
	return client.Config{
		MaxAttempts: 5,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
}

func newCoord(t *testing.T, targets [][]string, part shard.Partitioner) *coord.Coordinator {
	t.Helper()
	c, err := coord.New(coord.Config{
		Targets:     targets,
		Client:      fastClient(),
		Partitioner: part,
	})
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	return c
}

// assertBitIdentical fails unless got and want agree bit for bit.
func assertBitIdentical(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: query %d: sharded %v (%#x) != single-node %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestOracle is the acceptance oracle: for every query, a sharded
// scatter-gather score must be bit-identical to the single-node model's
// score — across shard counts, partitioners, and both tie semantics.
func TestOracle(t *testing.T) {
	queries := testQueries()
	for _, tc := range []struct {
		name string
		cfg  lof.Config
	}{
		{"plain", lof.Config{MinPtsLB: 3, MinPtsUB: 9}},
		{"distinct", lof.Config{MinPtsLB: 3, MinPtsUB: 9, Distinct: true}},
		{"mean-agg", lof.Config{MinPtsLB: 4, MinPtsUB: 7, Aggregation: lof.AggregateMean}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := fitModel(t, tc.cfg)
			want, err := m.ScoreBatchContext(context.Background(), queries)
			if err != nil {
				t.Fatalf("single-node scores: %v", err)
			}
			for _, shards := range []int{2, 3, 5} {
				for _, part := range []shard.Partitioner{shard.PartitionHash, shard.PartitionRange} {
					c := newCoord(t, startShards(t, shards, nil), part)
					if _, err := c.Install(context.Background(), m); err != nil {
						t.Fatalf("shards=%d part=%v: Install: %v", shards, part, err)
					}
					got, mode, _, err := c.Score(context.Background(), queries, "")
					if err != nil {
						t.Fatalf("shards=%d part=%v: Score: %v", shards, part, err)
					}
					if mode != "" {
						t.Fatalf("shards=%d part=%v: exact score reported mode %q", shards, part, mode)
					}
					assertBitIdentical(t, got, want, tc.name)
				}
			}
		})
	}
}

// TestOracleHTTP drives the whole tier over HTTP: fit through the
// coordinator's API with the standard client, score through it, and compare
// against a local fit of the same data — bit-identical because fitting is
// deterministic and the evaluation path is shared.
func TestOracleHTTP(t *testing.T) {
	c := newCoord(t, startShards(t, 3, nil), shard.PartitionHash)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	ctx := context.Background()

	// Unfitted: model 404s, readyz 503s, score conflicts.
	if _, err := cl.Model(ctx); err == nil {
		t.Fatal("Model before fit succeeded")
	}
	if info, err := cl.Readyz(ctx); err != nil || info.Ready {
		t.Fatalf("readyz before fit: %+v, %v", info, err)
	}

	fitCfg := server.FitConfig{MinPtsLB: 3, MinPtsUB: 8}
	fr, err := cl.Fit(ctx, fitCfg, trainData())
	if err != nil {
		t.Fatalf("Fit via coordinator: %v", err)
	}
	if fr.Objects != len(trainData()) || fr.Dims != 2 {
		t.Fatalf("fit result = %+v", fr)
	}

	queries := testQueries()
	got, err := cl.Score(ctx, queries)
	if err != nil {
		t.Fatalf("Score via coordinator: %v", err)
	}
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 8})
	want, err := m.ScoreBatchContext(ctx, queries)
	if err != nil {
		t.Fatalf("local scores: %v", err)
	}
	assertBitIdentical(t, got, want, "http")

	if info, err := cl.Readyz(ctx); err != nil || !info.Ready || info.Role != "coordinator" || info.Shards != 3 {
		t.Fatalf("readyz after fit: %+v, %v", info, err)
	}
	mi, err := cl.Model(ctx)
	if err != nil || mi.Objects != len(trainData()) {
		t.Fatalf("model info: %+v, %v", mi, err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, family := range []string{
		"lof_coord_fits_total", "lof_coord_score_points_total",
		"lof_coord_shard_rpc_duration_seconds", "lof_coord_snapshot_version",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("metrics missing %s:\n%s", family, body)
		}
	}
}

// TestChaosFaultyShard keeps one shard behind a 15%% fault profile (a mix
// of dropped connections and injected 503s). Every answered request must
// still be exact: retries absorb the faults, and a wrong score — rather
// than an error — is the one unacceptable outcome.
func TestChaosFaultyShard(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:       42,
		DropProb:   0.05,
		ErrorProb:  0.10,
		RetryAfter: time.Millisecond,
	})
	targets := startShards(t, 3, func(s int, h http.Handler) http.Handler {
		if s == 1 {
			return inj.Middleware(h)
		}
		return h
	})
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 9})
	c := newCoord(t, targets, shard.PartitionHash)
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	queries := testQueries()
	want, err := m.ScoreBatchContext(context.Background(), queries)
	if err != nil {
		t.Fatalf("single-node scores: %v", err)
	}
	answered := 0
	for round := 0; round < 25; round++ {
		got, mode, _, err := c.Score(context.Background(), queries, "")
		if err != nil {
			// A shard exhausting its retries is an acceptable, explicit
			// outcome; a silent wrong answer is not.
			continue
		}
		if mode != "" {
			t.Fatalf("round %d: exact request served mode %q", round, mode)
		}
		assertBitIdentical(t, got, want, "chaos")
		answered++
	}
	if answered == 0 {
		t.Fatal("no round survived a 15% fault rate; retries are not engaging")
	}
	if st := inj.Stats(); st.Drops+st.Errors == 0 {
		t.Fatal("fault injector never fired; the chaos test tested nothing")
	}
}

// TestChaosShardDown takes a whole shard offline. Exact requests must fail
// loudly; requests that opted into degraded mode get the subsampled
// fallback, explicitly labeled.
func TestChaosShardDown(t *testing.T) {
	var down atomic.Bool
	targets := startShards(t, 2, func(s int, h http.Handler) http.Handler {
		if s != 1 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if down.Load() {
				panic(http.ErrAbortHandler) // sever the connection, like a crash
			}
			h.ServeHTTP(w, r)
		})
	})
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 9})
	c := newCoord(t, targets, shard.PartitionRange)
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	queries := testQueries()
	down.Store(true)

	if _, _, _, err := c.Score(context.Background(), queries, ""); err == nil {
		t.Fatal("exact score succeeded with a shard down")
	}
	scores, mode, _, err := c.Score(context.Background(), queries, "degraded")
	if err != nil {
		t.Fatalf("degraded score with a shard down: %v", err)
	}
	if mode != "degraded" {
		t.Fatalf("fallback answer labeled %q, want degraded", mode)
	}
	if len(scores) != len(queries) {
		t.Fatalf("degraded scores: %d for %d queries", len(scores), len(queries))
	}
	for i, s := range scores {
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("degraded score %d = %v", i, s)
		}
	}

	// Recovery: the shard comes back, exact serving resumes bit-identically.
	down.Store(false)
	want, _ := m.ScoreBatchContext(context.Background(), queries)
	got, mode, _, err := c.Score(context.Background(), queries, "")
	if err != nil || mode != "" {
		t.Fatalf("exact score after recovery: mode=%q err=%v", mode, err)
	}
	assertBitIdentical(t, got, want, "recovered")
}

// TestRepairAndFailover exercises replica management: a replica that missed
// the initial distribution is caught up by Repair, after which it can carry
// the shard alone when the primary dies.
func TestRepairAndFailover(t *testing.T) {
	var primaryDead, secondaryUp atomic.Bool
	gated := func(flag *atomic.Bool, want bool, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if flag.Load() != want {
				panic(http.ErrAbortHandler)
			}
			h.ServeHTTP(w, r)
		})
	}
	primary := httptest.NewServer(gated(&primaryDead, false, server.New(server.Config{}).Handler()))
	defer primary.Close()
	secondary := httptest.NewServer(gated(&secondaryUp, true, server.New(server.Config{}).Handler()))
	defer secondary.Close()
	other := httptest.NewServer(server.New(server.Config{}).Handler())
	defer other.Close()

	targets := [][]string{{primary.URL, secondary.URL}, {other.URL}}
	c := newCoord(t, targets, shard.PartitionHash)
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 9})
	queries := testQueries()
	want, _ := m.ScoreBatchContext(context.Background(), queries)

	// Distribution succeeds despite the dead secondary: one live replica per
	// shard is enough.
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install with one replica down: %v", err)
	}
	got, _, _, err := c.Score(context.Background(), queries, "")
	if err != nil {
		t.Fatalf("Score via primary: %v", err)
	}
	assertBitIdentical(t, got, want, "primary")

	// The secondary comes up empty; a repair sweep pushes the snapshot.
	secondaryUp.Store(true)
	if n := c.Repair(context.Background()); n == 0 {
		t.Fatal("Repair pushed nothing to the empty secondary")
	}
	if n := c.Repair(context.Background()); n != 0 {
		t.Fatalf("second Repair sweep re-pushed %d snapshots to converged replicas", n)
	}

	// The primary dies; failover serves exact scores from the secondary.
	primaryDead.Store(true)
	got, mode, _, err := c.Score(context.Background(), queries, "")
	if err != nil || mode != "" {
		t.Fatalf("Score after failover: mode=%q err=%v", mode, err)
	}
	assertBitIdentical(t, got, want, "failover")
}

// TestScoreValidation covers the coordinator's own request validation.
func TestScoreValidation(t *testing.T) {
	c := newCoord(t, startShards(t, 2, nil), shard.PartitionHash)
	ctx := context.Background()
	if _, _, _, err := c.Score(ctx, [][]float64{{0, 0}}, ""); err == nil {
		t.Fatal("Score before any fit succeeded")
	}
	m := fitModel(t, lof.Config{MinPtsLB: 2, MinPtsUB: 4})
	if _, err := c.Install(ctx, m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if _, _, _, err := c.Score(ctx, [][]float64{{1, 2, 3}}, ""); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, _, err := c.Score(ctx, [][]float64{{math.NaN(), 0}}, ""); err == nil {
		t.Fatal("NaN query accepted")
	}
}
