package coord

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"lof/internal/obs"
	"lof/internal/server"
	"lof/internal/trace"
)

// The coordinator's HTTP surface speaks the same JSON protocol as the
// single-node lofserve API — same request bodies, same response shapes,
// same error envelope — so internal/client (and anything else written
// against lofserve) points at a lofcoord unchanged. Coordinator-specific
// detail (shard count, snapshot version) rides in additive fields.

const defaultMaxBodyBytes = 1 << 30

type fitRequest struct {
	Config server.FitConfig `json:"config"`
	Data   [][]float64      `json:"data"`
}

type fitResponse struct {
	ModelInfo
	FitMS float64 `json:"fitMillis"`
}

type scoreRequest struct {
	Queries [][]float64 `json:"queries"`
	// Workers is accepted for lofserve protocol compatibility; the
	// coordinator sizes its own merge pool and ignores it.
	Workers int `json:"workers,omitempty"`
}

type scoreResponse struct {
	Scores []jsonFloat `json:"scores"`
	Mode   string      `json:"mode,omitempty"`
	// Certified is the number of pruned-mode queries answered from the
	// LOF bound alone, without exact evaluation.
	Certified int `json:"certified,omitempty"`
}

// jsonFloat mirrors the server's non-finite-tolerant float rendering:
// +Inf/-Inf/NaN marshal as strings instead of failing the response.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// coordRoutes fixes the exposition order of the coordinator's per-route
// series.
var coordRoutes = []string{"/v1/fit", "/v1/score", "/v1/model"}

// coordRoute is the coordinator's per-route observability: a latency
// histogram plus the slowest traced request and its trace ID (the exemplar
// linking the histogram's top bucket to /v1/debug/traces).
type coordRoute struct {
	latency *obs.Histogram
	mu      sync.Mutex
	slowest time.Duration
	trace   string
}

func (cr *coordRoute) record(d time.Duration, traceID string) {
	cr.latency.Observe(d)
	cr.mu.Lock()
	if d > cr.slowest && traceID != "" {
		cr.slowest = d
		cr.trace = traceID
	}
	cr.mu.Unlock()
}

func (cr *coordRoute) exemplar() (time.Duration, string, bool) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.slowest, cr.trace, cr.trace != ""
}

// coordStatusWriter records the response status for span error marking.
type coordStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *coordStatusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *coordStatusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// wrap is the coordinator's request middleware: it assigns (or continues)
// the X-Request-ID, echoes it on the response, starts the request span —
// continuing an inbound traceparent — and records per-route latency with
// the slowest-request trace exemplar.
func (c *Coordinator) wrap(route string, h http.HandlerFunc) http.Handler {
	cr := c.routes[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := trace.IncomingRequestID(r)
		ctx := trace.ContextWithRequestID(r.Context(), id)
		sp, ctx := c.cfg.Trace.StartRequest(ctx, "http "+route, r.Header.Get(trace.Header))
		sp.SetAttr("route", route)
		sp.SetAttr("requestId", id)
		w.Header().Set(trace.RequestIDHeader, id)
		sw := &coordStatusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		sp.SetAttrInt("status", int64(status))
		if status >= 500 {
			sp.SetError(fmt.Sprintf("status %d", status))
		}
		sp.EndIn(elapsed)
		cr.record(elapsed, sp.TraceIDString())
	})
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/fit", c.wrap("/v1/fit", c.handleFit))
	mux.Handle("POST /v1/score", c.wrap("/v1/score", c.handleScore))
	mux.Handle("GET /v1/model", c.wrap("/v1/model", c.handleModel))
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.Handle("GET /v1/debug/traces", trace.DebugHandler(c.cfg.Trace))
	return mux
}

func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, defaultMaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return false
	}
	return true
}

func (c *Coordinator) handleFit(w http.ResponseWriter, r *http.Request) {
	var req fitRequest
	if !c.decode(w, r, &req) {
		return
	}
	if len(req.Data) == 0 {
		writeError(w, http.StatusBadRequest, "fit requires a non-empty data array")
		return
	}
	start := time.Now()
	info, err := c.Fit(r.Context(), req.Config, req.Data)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, fitResponse{
		ModelInfo: info,
		FitMS:     float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (c *Coordinator) handleScore(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("mode")
	switch mode {
	case "", "full", "degraded", "pruned", "coreset":
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown mode %q; valid modes are %q, %q, %q and %q",
				mode, "full", "degraded", "pruned", "coreset"))
		return
	}
	var req scoreRequest
	if !c.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "score requires a non-empty queries array")
		return
	}
	scores, servedMode, certified, err := c.Score(r.Context(), req.Queries, mode)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		switch {
		case errors.Is(err, errNoModel):
			writeError(w, http.StatusConflict, "no fitted model; POST /v1/fit first or start with -model")
		case isShardError(err):
			writeError(w, http.StatusBadGateway, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	resp := scoreResponse{Scores: make([]jsonFloat, len(scores)), Mode: servedMode, Certified: certified}
	for i, v := range scores {
		resp.Scores[i] = jsonFloat(v)
	}
	writeJSON(w, http.StatusOK, resp)
}

func isShardError(err error) bool {
	var se *shardError
	return errors.As(err, &se)
}

func (c *Coordinator) handleModel(w http.ResponseWriter, r *http.Request) {
	info, ok := c.Info()
	if !ok {
		writeError(w, http.StatusNotFound, "no fitted model")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleHealthz is pure liveness, like the shard servers': the process is
// up and serving HTTP. Routing decisions belong to /readyz.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, ok := c.Info()
	writeJSON(w, http.StatusOK, map[string]interface{}{"status": "ok", "model": ok})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	info, ok := c.Info()
	ri := server.ReadyInfo{
		Ready:   ok,
		Version: info.Version,
		Role:    "coordinator",
		Model:   ok,
		Shards:  len(c.replicas),
		Points:  info.Objects,
	}
	status := http.StatusOK
	if !ri.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ri)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	p.Family("lof_coord_fits_total", "counter", "Models fitted and distributed by this coordinator.")
	p.IntSample("lof_coord_fits_total", c.fits.Value())
	p.Family("lof_coord_score_points_total", "counter", "Query points answered exactly via scatter-gather.")
	p.IntSample("lof_coord_score_points_total", c.scoreQueries.Value())
	p.Family("lof_coord_degraded_total", "counter", "Query points answered from the local degraded model.")
	p.IntSample("lof_coord_degraded_total", c.degradedHits.Value())
	p.Family("lof_coord_score_mode_total", "counter", "Score requests by the mode that served them.")
	c.scoreModes.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			p.IntSample("lof_coord_score_mode_total", v.Value(), "mode", kv.Key)
		}
	})
	p.Family("lof_coord_pruned_certified_total", "counter", "Pruned-mode queries certified without exact evaluation.")
	p.IntSample("lof_coord_pruned_certified_total", c.certified.Value())
	p.Family("lof_coord_repair_pushes_total", "counter", "Snapshot re-pushes performed by the repair loop.")
	p.IntSample("lof_coord_repair_pushes_total", c.repairPushes.Value())
	p.Family("lof_coord_snapshot_version", "gauge", "Installed snapshot version.")
	p.IntSample("lof_coord_snapshot_version", int64(c.Version()))
	p.Family("lof_coord_shard_failures_total", "counter", "Failed shard RPC rounds by shard.")
	for s := range c.shardFails {
		p.IntSample("lof_coord_shard_failures_total", c.shardFails[s].Value(), "shard", strconv.Itoa(s))
	}
	p.Family("lof_coord_shard_rpc_duration_seconds", "histogram", "Shard RPC round latency by shard (hedging included).")
	for s, h := range c.shardLatency {
		p.Histo("lof_coord_shard_rpc_duration_seconds", h.Snapshot(), "shard", strconv.Itoa(s))
	}
	p.Family("lof_coord_http_request_duration_seconds", "histogram", "Coordinator HTTP request latency by route.")
	for _, route := range coordRoutes {
		p.Histo("lof_coord_http_request_duration_seconds", c.routes[route].latency.Snapshot(), "route", route)
	}
	p.Family("lof_coord_http_slowest_request_seconds", "gauge", "Slowest traced request per route, with its trace ID.")
	for _, route := range coordRoutes {
		if d, tid, ok := c.routes[route].exemplar(); ok {
			p.Sample("lof_coord_http_slowest_request_seconds", d.Seconds(),
				"route", route, "trace_id", tid)
		}
	}
	ts := c.cfg.Trace.Stats()
	p.Family("lof_trace_spans_total", "counter", "Trace spans started in this process.")
	p.IntSample("lof_trace_spans_total", int64(ts.Started))
	p.Family("lof_trace_recorded_total", "counter", "Trace spans recorded to the ring buffer.")
	p.IntSample("lof_trace_recorded_total", int64(ts.Recorded))
	p.Family("lof_trace_dropped_total", "counter", "Recorded trace spans evicted by the ring bound.")
	p.IntSample("lof_trace_dropped_total", int64(ts.Dropped))
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
