package coord_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lof"
	"lof/internal/coord"
	"lof/internal/server"
	"lof/internal/shard"
	"lof/internal/trace"
)

// TestTracePropagationEndToEnd spins a coordinator over three traced
// shards, scores one batch under a sampled traceparent, and asserts the
// whole request is one trace: every span in all four processes' collectors
// carries the root trace ID, the coordinator's tree covers the
// scatter-gather rounds and per-shard RPCs, each shard recorded its
// handler spans, and the trace is retrievable over /v1/debug/traces.
func TestTracePropagationEndToEnd(t *testing.T) {
	const shards = 3
	shardCols := make([]*trace.Collector, shards)
	targets := make([][]string, shards)
	for s := 0; s < shards; s++ {
		shardCols[s] = trace.NewCollector(trace.Config{Service: "lofserve", Sample: 1})
		ts := httptest.NewServer(server.New(server.Config{Trace: shardCols[s]}).Handler())
		t.Cleanup(ts.Close)
		targets[s] = []string{ts.URL}
	}
	coordCol := trace.NewCollector(trace.Config{Service: "lofcoord", Sample: 1})
	c, err := coord.New(coord.Config{
		Targets:     targets,
		Client:      fastClient(),
		Partitioner: shard.PartitionHash,
		Trace:       coordCol,
	})
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 9})
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	root := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID(), Sampled: true}
	body, _ := json.Marshal(map[string]interface{}{"queries": testQueries()})
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/score", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, trace.Format(root))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("score: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d", resp.StatusCode)
	}

	rootID := root.TraceID.String()
	// Every span every process recorded belongs to the root trace.
	coordSpans := coordCol.Spans(trace.Query{})
	names := map[string]int{}
	for _, sp := range coordSpans {
		if sp.TraceID != rootID {
			t.Fatalf("coordinator span %q has trace %s, want root %s", sp.Name, sp.TraceID, rootID)
		}
		names[sp.Name]++
	}
	for _, want := range []string{"http /v1/score", "coord/candidates", "coord/merge", "coord/eval"} {
		if names[want] != 1 {
			t.Fatalf("coordinator recorded %d %q spans, want 1 (have %v)", names[want], want, names)
		}
	}
	if names["coord/rows"] != 2 {
		t.Fatalf("coordinator recorded %d coord/rows spans, want rounds 2 and 3 (have %v)", names["coord/rows"], names)
	}
	if names["rpc/candidates"] != shards {
		t.Fatalf("coordinator recorded %d rpc/candidates spans, want one per shard (have %v)", names["rpc/candidates"], names)
	}
	if names["replica"] < shards {
		t.Fatalf("coordinator recorded %d replica spans, want at least one per shard (have %v)", names["replica"], names)
	}

	for s, col := range shardCols {
		// The Install snapshot push precedes the scored request and roots its
		// own traces; the scored request's spans are the ones under rootID.
		spans := col.Spans(trace.Query{TraceID: rootID})
		if len(spans) == 0 {
			t.Fatalf("shard %d recorded no spans for the root trace", s)
		}
		sawCandidates := false
		for _, sp := range spans {
			if sp.Name == "http /v1/shard/candidates" {
				sawCandidates = true
			}
		}
		if !sawCandidates {
			t.Fatalf("shard %d did not record its candidates handler span", s)
		}
	}

	// The trace is retrievable over the coordinator's debug endpoint.
	dresp, err := http.Get(front.URL + "/v1/debug/traces?trace=" + rootID)
	if err != nil {
		t.Fatalf("debug traces: %v", err)
	}
	defer dresp.Body.Close()
	var dbg struct {
		Traces []struct {
			TraceID string `json:"traceId"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&dbg); err != nil {
		t.Fatalf("decoding debug traces: %v", err)
	}
	if len(dbg.Traces) != 1 || dbg.Traces[0].TraceID != rootID || len(dbg.Traces[0].Spans) < 5 {
		t.Fatalf("debug endpoint returned %+v, want the root trace with its span tree", dbg)
	}
}

// TestCoordDebugTracesConcurrent hammers the coordinator's debug endpoint
// while scores generate spans — the cross-process variant of the
// collector's -race test.
func TestCoordDebugTracesConcurrent(t *testing.T) {
	targets := startShards(t, 2, nil)
	coordCol := trace.NewCollector(trace.Config{Service: "lofcoord", Sample: 1, Capacity: 128})
	c, err := coord.New(coord.Config{
		Targets:     targets,
		Client:      fastClient(),
		Partitioner: shard.PartitionHash,
		Trace:       coordCol,
	})
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	m := fitModel(t, lof.Config{MinPtsLB: 3, MinPtsUB: 6})
	if _, err := c.Install(context.Background(), m); err != nil {
		t.Fatalf("Install: %v", err)
	}
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(map[string]interface{}{"queries": testQueries()[:2]})
		for {
			select {
			case <-stop:
				return
			default:
			}
			sc := trace.SpanContext{TraceID: trace.NewTraceID(), SpanID: trace.NewSpanID(), Sampled: true}
			req, _ := http.NewRequest(http.MethodPost, front.URL+"/v1/score", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(trace.Header, trace.Format(sc))
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp, err := http.Get(front.URL + "/v1/debug/traces")
		if err != nil {
			t.Fatalf("debug read: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(stop)
	<-done
}
