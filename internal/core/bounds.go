package core

import (
	"fmt"
	"math"

	"lof/internal/geom"
	"lof/internal/matdb"
)

// DirectIndirect holds the four quantities Theorem 1 is stated in:
// the extreme reachability distances within p's direct neighborhood
// (p to its MinPts-nearest neighbors) and within its indirect neighborhood
// (p's neighbors to their MinPts-nearest neighbors).
type DirectIndirect struct {
	DirectMin, DirectMax     float64
	IndirectMin, IndirectMax float64
}

// Direct returns the mean of DirectMin and DirectMax, the "direct(p)"
// shorthand of Sec. 5.3.
func (d DirectIndirect) Direct() float64 { return (d.DirectMin + d.DirectMax) / 2 }

// Indirect returns the mean of IndirectMin and IndirectMax.
func (d DirectIndirect) Indirect() float64 { return (d.IndirectMin + d.IndirectMax) / 2 }

// DirectIndirectOf computes the Theorem 1 quantities for point i from the
// materialization database.
func DirectIndirectOf(db *matdb.DB, i, minPts int) (DirectIndirect, error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return DirectIndirect{}, err
	}
	di := DirectIndirect{
		DirectMin:   math.Inf(1),
		DirectMax:   math.Inf(-1),
		IndirectMin: math.Inf(1),
		IndirectMax: math.Inf(-1),
	}
	nn := db.Neighborhood(i, minPts)
	if len(nn) == 0 {
		return DirectIndirect{}, fmt.Errorf("core: point %d has no neighbors", i)
	}
	for _, q := range nn {
		rd := ReachDist(db.KDistance(q.Index, minPts), q.Dist)
		di.DirectMin = math.Min(di.DirectMin, rd)
		di.DirectMax = math.Max(di.DirectMax, rd)
		for _, o := range db.Neighborhood(q.Index, minPts) {
			ird := ReachDist(db.KDistance(o.Index, minPts), o.Dist)
			di.IndirectMin = math.Min(di.IndirectMin, ird)
			di.IndirectMax = math.Max(di.IndirectMax, ird)
		}
	}
	return di, nil
}

// Theorem1Bounds returns the general lower and upper bound of Theorem 1:
//
//	direct_min(p)/indirect_max(p) ≤ LOF(p) ≤ direct_max(p)/indirect_min(p)
func Theorem1Bounds(db *matdb.DB, i, minPts int) (lower, upper float64, err error) {
	di, err := DirectIndirectOf(db, i, minPts)
	if err != nil {
		return 0, 0, err
	}
	return di.DirectMin / di.IndirectMax, di.DirectMax / di.IndirectMin, nil
}

// Theorem2Bounds returns the sharper multi-cluster bounds of Theorem 2 for
// point i, with its MinPts-nearest neighbors partitioned by the group
// function (e.g. a ground-truth cluster id). Every neighbor must be
// assigned a group; groups are identified by arbitrary ints.
//
//	LOF(p) ≥ (Σ ξ_i · direct^i_min) · (Σ ξ_i / indirect^i_max)
//	LOF(p) ≤ (Σ ξ_i · direct^i_max) · (Σ ξ_i / indirect^i_min)
func Theorem2Bounds(db *matdb.DB, i, minPts int, group func(pointIndex int) int) (lower, upper float64, err error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return 0, 0, err
	}
	nn := db.Neighborhood(i, minPts)
	if len(nn) == 0 {
		return 0, 0, fmt.Errorf("core: point %d has no neighbors", i)
	}
	type part struct {
		count                  int
		dMin, dMax, iMin, iMax float64
	}
	parts := map[int]*part{}
	for _, q := range nn {
		g := group(q.Index)
		pt, ok := parts[g]
		if !ok {
			pt = &part{
				dMin: math.Inf(1), dMax: math.Inf(-1),
				iMin: math.Inf(1), iMax: math.Inf(-1),
			}
			parts[g] = pt
		}
		pt.count++
		rd := ReachDist(db.KDistance(q.Index, minPts), q.Dist)
		pt.dMin = math.Min(pt.dMin, rd)
		pt.dMax = math.Max(pt.dMax, rd)
		for _, o := range db.Neighborhood(q.Index, minPts) {
			ird := ReachDist(db.KDistance(o.Index, minPts), o.Dist)
			pt.iMin = math.Min(pt.iMin, ird)
			pt.iMax = math.Max(pt.iMax, ird)
		}
	}
	total := float64(len(nn))
	var sumDMin, sumDMax, sumInvIMax, sumInvIMin float64
	for _, pt := range parts {
		xi := float64(pt.count) / total
		sumDMin += xi * pt.dMin
		sumDMax += xi * pt.dMax
		sumInvIMax += xi / pt.iMax
		sumInvIMin += xi / pt.iMin
	}
	return sumDMin * sumInvIMax, sumDMax * sumInvIMin, nil
}

// Lemma1Epsilon computes the ε of Lemma 1 for a collection C of points:
// ε = reach-dist-max/reach-dist-min − 1 over all ordered pairs in C. For
// every point deep inside C, 1/(1+ε) ≤ LOF ≤ 1+ε. The original points and
// metric are needed because the lemma quantifies over all pairs, not just
// materialized neighbor pairs.
func Lemma1Epsilon(db *matdb.DB, pts *geom.Points, m geom.Metric, members []int, minPts int) (eps float64, err error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return 0, err
	}
	if len(members) < 2 {
		return 0, fmt.Errorf("core: Lemma1Epsilon needs at least 2 members, got %d", len(members))
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	rdMin, rdMax := math.Inf(1), math.Inf(-1)
	for _, p := range members {
		for _, q := range members {
			if p == q {
				continue
			}
			rd := ReachDist(db.KDistance(q, minPts), m.Distance(pts.At(p), pts.At(q)))
			rdMin = math.Min(rdMin, rd)
			rdMax = math.Max(rdMax, rd)
		}
	}
	if rdMin <= 0 {
		return math.Inf(1), nil
	}
	return rdMax/rdMin - 1, nil
}

// DeepInCluster reports whether point i is "deep" in the member set in the
// sense of Lemma 1: all its MinPts-nearest neighbors are members, and all
// their MinPts-nearest neighbors are members too.
func DeepInCluster(db *matdb.DB, i, minPts int, isMember func(int) bool) bool {
	for _, q := range db.Neighborhood(i, minPts) {
		if !isMember(q.Index) {
			return false
		}
		for _, o := range db.Neighborhood(q.Index, minPts) {
			if !isMember(o.Index) {
				return false
			}
		}
	}
	return true
}

// --- Analytic curves of Sec. 5.3 (figures 4 and 5) ----------------------

// AnalyticBounds returns LOFmin and LOFmax under the Sec. 5.3
// simplification: direct and indirect reachability distances fluctuate by
// the same percentage pct around their means, i.e.
// direct_max = direct·(1+pct/100), direct_min = direct·(1−pct/100), and
// likewise for indirect. These are the curves of figure 4.
func AnalyticBounds(direct, indirect, pct float64) (lofMin, lofMax float64) {
	f := pct / 100
	lofMin = direct * (1 - f) / (indirect * (1 + f))
	lofMax = direct * (1 + f) / (indirect * (1 - f))
	return lofMin, lofMax
}

// RelativeSpan returns (LOFmax − LOFmin)/(direct/indirect) as a function of
// pct alone — the closed form of figure 5:
//
//	4·(pct/100) / (1 − (pct/100)²)
func RelativeSpan(pct float64) float64 {
	f := pct / 100
	return 4 * f / (1 - f*f)
}
