package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lof/internal/geom"
)

// Theorem 1: for every object, direct_min/indirect_max ≤ LOF ≤
// direct_max/indirect_min.
func TestTheorem1BracketsLOF(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pts := randomPoints(t, 100+seed, 200, 2)
		db := buildDB(t, pts, 12)
		for _, minPts := range []int{3, 8, 12} {
			lofs, err := LOFs(db, minPts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range lofs {
				lo, hi, err := Theorem1Bounds(db, i, minPts)
				if err != nil {
					t.Fatal(err)
				}
				if lofs[i] < lo-1e-9 || lofs[i] > hi+1e-9 {
					t.Fatalf("seed=%d minPts=%d point %d: LOF=%v outside [%v, %v]",
						seed, minPts, i, lofs[i], lo, hi)
				}
			}
		}
	}
}

// Theorem 2 holds for ANY partition of the neighborhood, so random
// groupings must still bracket the true LOF.
func TestTheorem2BracketsLOFForRandomPartitions(t *testing.T) {
	pts := randomPoints(t, 9, 150, 3)
	db := buildDB(t, pts, 10)
	lofs, err := LOFs(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		groups := rng.Intn(4) + 1
		assign := make([]int, pts.Len())
		for i := range assign {
			assign[i] = rng.Intn(groups)
		}
		for i := 0; i < pts.Len(); i += 7 {
			lo, hi, err := Theorem2Bounds(db, i, 10, func(j int) int { return assign[j] })
			if err != nil {
				t.Fatal(err)
			}
			if lofs[i] < lo-1e-9 || lofs[i] > hi+1e-9 {
				t.Fatalf("trial %d point %d: LOF=%v outside theorem-2 [%v, %v]",
					trial, i, lofs[i], lo, hi)
			}
		}
	}
}

// Corollary 1: with a single partition, Theorem 2's bounds coincide with
// Theorem 1's.
func TestCorollary1SinglePartitionEqualsTheorem1(t *testing.T) {
	pts := randomPoints(t, 10, 120, 2)
	db := buildDB(t, pts, 8)
	for i := 0; i < pts.Len(); i += 5 {
		lo1, hi1, err := Theorem1Bounds(db, i, 8)
		if err != nil {
			t.Fatal(err)
		}
		lo2, hi2, err := Theorem2Bounds(db, i, 8, func(int) int { return 0 })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lo1-lo2) > 1e-9 || math.Abs(hi1-hi2) > 1e-9 {
			t.Fatalf("point %d: thm1=[%v,%v] thm2=[%v,%v]", i, lo1, hi1, lo2, hi2)
		}
	}
}

// Theorem 2's bounds are at least as tight as Theorem 1's when partitioning
// by a meaningful grouping — here, a two-cluster dataset split by cluster.
func TestTheorem2TighterAcrossClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 30; i++ { // dense cluster
		if err := pts.Append(geom.Point{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ { // sparse cluster
		if err := pts.Append(geom.Point{10 + rng.NormFloat64()*2, rng.NormFloat64() * 2}); err != nil {
			t.Fatal(err)
		}
	}
	// A point between the clusters whose neighborhood straddles both.
	if err := pts.Append(geom.Point{5, 0}); err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, pts, 20)
	p := 60
	group := func(j int) int {
		if j < 30 {
			return 0
		}
		return 1
	}
	lo1, hi1, err := Theorem1Bounds(db, p, 20)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := Theorem2Bounds(db, p, 20, group)
	if err != nil {
		t.Fatal(err)
	}
	lofs, err := LOFs(db, 20)
	if err != nil {
		t.Fatal(err)
	}
	if lofs[p] < lo2-1e-9 || lofs[p] > hi2+1e-9 {
		t.Fatalf("LOF=%v outside thm2 [%v, %v]", lofs[p], lo2, hi2)
	}
	if (hi2 - lo2) > (hi1-lo1)+1e-9 {
		t.Fatalf("thm2 spread %v wider than thm1 spread %v", hi2-lo2, hi1-lo1)
	}
}

// Lemma 1: deep-in-cluster points obey 1/(1+ε) ≤ LOF ≤ 1+ε.
func TestLemma1DeepClusterPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 120; i++ {
		if err := pts.Append(geom.Point{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	db := buildDB(t, pts, 6)
	const minPts = 5
	members := make([]int, pts.Len())
	isMember := func(int) bool { return true }
	for i := range members {
		members[i] = i
	}
	eps, err := Lemma1Epsilon(db, pts, nil, members, minPts)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(eps, 1) {
		t.Fatal("epsilon infinite for distinct points")
	}
	lofs, err := LOFs(db, minPts)
	if err != nil {
		t.Fatal(err)
	}
	deepCount := 0
	for i := range lofs {
		if !DeepInCluster(db, i, minPts, isMember) {
			continue
		}
		deepCount++
		if lofs[i] < 1/(1+eps)-1e-9 || lofs[i] > (1+eps)+1e-9 {
			t.Fatalf("deep point %d: LOF=%v outside [%v, %v]", i, lofs[i], 1/(1+eps), 1+eps)
		}
	}
	if deepCount == 0 {
		t.Fatal("no deep points found; test is vacuous")
	}
}

func TestLemma1Validation(t *testing.T) {
	pts := randomPoints(t, 13, 20, 2)
	db := buildDB(t, pts, 5)
	if _, err := Lemma1Epsilon(db, pts, nil, []int{0}, 5); err == nil {
		t.Error("singleton member set accepted")
	}
	if _, err := Lemma1Epsilon(db, pts, nil, []int{0, 1}, 99); err == nil {
		t.Error("MinPts>K accepted")
	}
}

func TestLemma1DuplicateMembersInfiniteEpsilon(t *testing.T) {
	rows := []geom.Point{{0, 0}, {0, 0}, {1, 1}, {2, 2}}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, pts, 2)
	eps, err := Lemma1Epsilon(db, pts, nil, []int{0, 1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(eps, 1) {
		t.Fatalf("eps=%v want +Inf for zero reach-dist pairs", eps)
	}
}

func TestDirectIndirectErrors(t *testing.T) {
	pts := randomPoints(t, 14, 20, 2)
	db := buildDB(t, pts, 5)
	if _, err := DirectIndirectOf(db, 0, 0); err == nil {
		t.Error("MinPts=0 accepted")
	}
	if _, _, err := Theorem1Bounds(db, 0, 9); err == nil {
		t.Error("MinPts>K accepted")
	}
	if _, _, err := Theorem2Bounds(db, 0, 9, func(int) int { return 0 }); err == nil {
		t.Error("MinPts>K accepted by theorem 2")
	}
}

func TestDirectIndirectMeans(t *testing.T) {
	di := DirectIndirect{DirectMin: 2, DirectMax: 4, IndirectMin: 1, IndirectMax: 3}
	if di.Direct() != 3 || di.Indirect() != 2 {
		t.Fatalf("Direct=%v Indirect=%v", di.Direct(), di.Indirect())
	}
}

// Figure 5's closed form must equal the figure 4 construction:
// (LOFmax − LOFmin)/(direct/indirect) is independent of direct/indirect.
func TestRelativeSpanMatchesAnalyticBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		direct := 0.5 + rng.Float64()*10
		indirect := 0.5 + rng.Float64()*10
		pct := rng.Float64() * 90
		lofMin, lofMax := AnalyticBounds(direct, indirect, pct)
		span := (lofMax - lofMin) / (direct / indirect)
		want := RelativeSpan(pct)
		return math.Abs(span-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRelativeSpanKnownValues(t *testing.T) {
	// pct → 4(pct/100)/(1-(pct/100)²)
	cases := []struct{ pct, want float64 }{
		{0, 0},
		{50, 4 * 0.5 / 0.75},
		{10, 0.4 / 0.99},
	}
	for _, c := range cases {
		if got := RelativeSpan(c.pct); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeSpan(%v)=%v want %v", c.pct, got, c.want)
		}
	}
	// Approaches infinity as pct → 100.
	if RelativeSpan(99.999) < 1000 {
		t.Error("RelativeSpan near 100 should blow up")
	}
}

// The figure 4 observation: for fixed pct the spread grows linearly in
// direct/indirect.
func TestBoundSpreadLinearInRatio(t *testing.T) {
	const pct = 5.0
	span1 := spreadAt(1, pct)
	span2 := spreadAt(2, pct)
	span4 := spreadAt(4, pct)
	if math.Abs(span2/span1-2) > 1e-9 || math.Abs(span4/span1-4) > 1e-9 {
		t.Fatalf("spread not linear: %v %v %v", span1, span2, span4)
	}
}

func spreadAt(ratio, pct float64) float64 {
	lofMin, lofMax := AnalyticBounds(ratio, 1, pct)
	return lofMax - lofMin
}
