package core

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
	"lof/internal/matdb"
)

// LOF is a ratio of densities, so it must be invariant under global
// translation and uniform scaling of the data, and equivariant under
// permutation of the points. These properties pin down the implementation
// against subtle bookkeeping bugs (e.g. index mix-ups after sorting).

func lofsOf(t *testing.T, pts *geom.Points, minPts int) []float64 {
	t.Helper()
	db, err := matdb.Materialize(pts, linear.New(pts, nil), minPts)
	if err != nil {
		t.Fatal(err)
	}
	lofs, err := LOFs(db, minPts)
	if err != nil {
		t.Fatal(err)
	}
	return lofs
}

func randomCloud(t *testing.T, seed int64, n, dim int) *geom.Points {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(dim, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			// Mixture of two densities so LOF values are nontrivial.
			if i%3 == 0 {
				p[d] = rng.NormFloat64() * 4
			} else {
				p[d] = rng.NormFloat64()
			}
		}
		if err := pts.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func TestLOFTranslationInvariance(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		pts := randomCloud(t, 60+seed, 120, 3)
		shift := geom.Point{100, -50, 7}
		shifted := geom.NewPoints(3, pts.Len())
		for i := 0; i < pts.Len(); i++ {
			p := pts.At(i).Clone()
			for d := range p {
				p[d] += shift[d]
			}
			if err := shifted.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		a := lofsOf(t, pts, 8)
		b := lofsOf(t, shifted, 8)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
				t.Fatalf("seed %d point %d: %v vs %v after translation", seed, i, a[i], b[i])
			}
		}
	}
}

func TestLOFScaleInvariance(t *testing.T) {
	for _, scale := range []float64{0.001, 3, 1e4} {
		pts := randomCloud(t, 70, 120, 2)
		scaled := geom.NewPoints(2, pts.Len())
		for i := 0; i < pts.Len(); i++ {
			p := pts.At(i).Clone()
			for d := range p {
				p[d] *= scale
			}
			if err := scaled.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		a := lofsOf(t, pts, 8)
		b := lofsOf(t, scaled, 8)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
				t.Fatalf("scale %v point %d: %v vs %v", scale, i, a[i], b[i])
			}
		}
	}
}

func TestLOFPermutationEquivariance(t *testing.T) {
	pts := randomCloud(t, 80, 150, 2)
	rng := rand.New(rand.NewSource(81))
	perm := rng.Perm(pts.Len())
	permuted := geom.NewPoints(2, pts.Len())
	for _, src := range perm {
		if err := permuted.Append(pts.At(src).Clone()); err != nil {
			t.Fatal(err)
		}
	}
	a := lofsOf(t, pts, 10)
	b := lofsOf(t, permuted, 10)
	for dst, src := range perm {
		if math.Abs(a[src]-b[dst]) > 1e-9 {
			t.Fatalf("point %d→%d: %v vs %v after permutation", src, dst, a[src], b[dst])
		}
	}
}

// LOF values are always positive (or +Inf in degenerate duplicate cases).
func TestLOFPositivity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pts := randomCloud(t, 90+seed, 100, 2)
		for _, minPts := range []int{2, 5, 15} {
			for i, l := range lofsOf(t, pts, minPts) {
				if !(l > 0) {
					t.Fatalf("seed %d minPts %d: LOF[%d]=%v", seed, minPts, i, l)
				}
			}
		}
	}
}

// Adding a far-away point must not change the LOF of points whose
// neighborhoods it cannot enter (a locality property of the definition).
func TestLOFLocalityUnderDistantAddition(t *testing.T) {
	pts := randomCloud(t, 99, 100, 2)
	const minPts = 8
	before := lofsOf(t, pts, minPts)

	extended := pts.Clone()
	if err := extended.Append(geom.Point{1e6, 1e6}); err != nil {
		t.Fatal(err)
	}
	after := lofsOf(t, extended, minPts)
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			t.Fatalf("point %d: %v vs %v after distant addition", i, before[i], after[i])
		}
	}
}
