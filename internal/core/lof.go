// Package core implements the paper's primary contribution: the local
// outlier factor. It provides reachability distances (Definition 5), local
// reachability densities (Definition 6) and LOF values (Definition 7)
// computed from a materialization database with the two-scan algorithm of
// Sec. 7.4, the MinPts-range sweep with max/min/mean aggregation proposed
// in Sec. 6.2, and the formal bound calculators of Sec. 5 (Lemma 1,
// Theorems 1 and 2).
package core

import (
	"context"
	"fmt"
	"math"

	"lof/internal/index"
	"lof/internal/matdb"
	"lof/internal/obs"
	"lof/internal/pool"
)

// cancelStride is how many points a scan loop processes between context
// polls; a power of two so the check is a mask. At ~100ns per point this
// bounds post-cancellation work to a few tens of microseconds per worker.
const cancelStride = 256

// strideCancelled polls ctx every cancelStride iterations; i is the loop
// counter. A nil ctx never cancels.
func strideCancelled(ctx context.Context, i int) bool {
	return ctx != nil && i&(cancelStride-1) == 0 && ctx.Err() != nil
}

// ReachDist computes reach-dist_k(p, o) = max(k-distance(o), d(p, o))
// (Definition 5) from the k-distance of o and the actual distance d(p, o).
func ReachDist(kDistO, dPO float64) float64 {
	return math.Max(kDistO, dPO)
}

// LRDs computes the local reachability density (Definition 6) of every
// point for the given MinPts value — the first of the two scans over the
// materialization database. A density is +Inf when every reachability
// distance in its neighborhood is zero (at least MinPts duplicates).
func LRDs(db *matdb.DB, minPts int) ([]float64, error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return nil, err
	}
	return lrdsChunked(nil, db, minPts, nil), nil
}

// lrdsChunked is the scan body of LRDs, chunked over a worker pool (nil
// for sequential). Every chunk writes only its own indices, so the output
// is bit-identical to a sequential run. A non-nil ctx is polled every
// cancelStride points; a cancelled scan returns early with partial output,
// which callers must discard.
func lrdsChunked(ctx context.Context, db *matdb.DB, minPts int, p *pool.Pool) []float64 {
	n := db.Len()
	// Gather every point's MinPts-distance first: the reachability loop
	// below reads neighbors' k-distances in random order, and a dense
	// float64 array keeps those reads cache-resident.
	kd := make([]float64, n)
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if strideCancelled(ctx, i) {
				return
			}
			kd[i] = db.KDistance(i, minPts)
		}
	})
	lrds := make([]float64, n)
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if strideCancelled(ctx, i) {
				return
			}
			nn := db.Neighborhood(i, minPts)
			if len(nn) == 0 {
				// No neighbors at all (single point): density undefined, use
				// +Inf so the point never looks outlying.
				lrds[i] = math.Inf(1)
				continue
			}
			var sum float64
			for _, nb := range nn {
				sum += ReachDist(kd[nb.Index], nb.Dist)
			}
			if sum == 0 {
				lrds[i] = math.Inf(1)
				continue
			}
			lrds[i] = float64(len(nn)) / sum
		}
	})
	return lrds
}

// LRDsRaw computes local densities like LRDs but from raw distances
// d(p, o) instead of reachability distances — i.e. without the smoothing
// of Definition 5. It exists for the ablation study of that design choice:
// within homogeneous clusters, raw-distance LOF fluctuates more than
// reach-dist LOF, which is exactly the statistical noise reach-dist is
// introduced to suppress.
func LRDsRaw(db *matdb.DB, minPts int) ([]float64, error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return nil, err
	}
	n := db.Len()
	lrds := make([]float64, n)
	for i := 0; i < n; i++ {
		nn := db.Neighborhood(i, minPts)
		if len(nn) == 0 {
			lrds[i] = math.Inf(1)
			continue
		}
		var sum float64
		for _, nb := range nn {
			sum += nb.Dist
		}
		if sum == 0 {
			lrds[i] = math.Inf(1)
			continue
		}
		lrds[i] = float64(len(nn)) / sum
	}
	return lrds, nil
}

// LOFsFromLRDs computes the local outlier factor (Definition 7) of every
// point from precomputed densities — the second scan. Density ratios with
// infinities follow the natural limits: Inf/Inf = 1 (a duplicate among
// duplicates is not outlying), finite/Inf = 0, Inf/finite = +Inf.
func LOFsFromLRDs(db *matdb.DB, minPts int, lrds []float64) ([]float64, error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return nil, err
	}
	if len(lrds) != db.Len() {
		return nil, fmt.Errorf("core: %d densities for %d points", len(lrds), db.Len())
	}
	return lofsFromLRDsChunked(nil, db, minPts, lrds, nil), nil
}

// lofsFromLRDsChunked is the scan body of LOFsFromLRDs, chunked over a
// worker pool (nil for sequential). Cancellation follows lrdsChunked: a
// non-nil cancelled ctx stops the scan early with discardable output.
func lofsFromLRDsChunked(ctx context.Context, db *matdb.DB, minPts int, lrds []float64, p *pool.Pool) []float64 {
	n := db.Len()
	lofs := make([]float64, n)
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if strideCancelled(ctx, i) {
				return
			}
			nn := db.Neighborhood(i, minPts)
			if len(nn) == 0 {
				lofs[i] = 1 // isolated by construction; nothing to compare against
				continue
			}
			var sum float64
			for _, nb := range nn {
				sum += densityRatio(lrds[nb.Index], lrds[i])
			}
			lofs[i] = sum / float64(len(nn))
		}
	})
	return lofs
}

// DensityRatio returns lrdO / lrdP with the package's infinity semantics
// (Inf/Inf = 1, finite/Inf = 0, Inf/finite = +Inf). Exported for the
// approximate frontier evaluator in internal/approx, which must reproduce
// the sweep's arithmetic bit for bit.
func DensityRatio(lrdO, lrdP float64) float64 {
	return densityRatio(lrdO, lrdP)
}

// densityRatio returns lrdO / lrdP with infinity semantics.
func densityRatio(lrdO, lrdP float64) float64 {
	oInf, pInf := math.IsInf(lrdO, 1), math.IsInf(lrdP, 1)
	switch {
	case oInf && pInf:
		return 1
	case pInf:
		return 0
	case oInf:
		return math.Inf(1)
	default:
		return lrdO / lrdP
	}
}

// LOFs runs both scans for one MinPts value and returns the LOF of every
// point.
func LOFs(db *matdb.DB, minPts int) ([]float64, error) {
	if err := db.CheckMinPts(minPts); err != nil {
		return nil, err
	}
	return lofsChunked(nil, db, minPts, nil), nil
}

// lofsChunked runs both scans for one pre-validated MinPts value over a
// worker pool (nil for sequential).
func lofsChunked(ctx context.Context, db *matdb.DB, minPts int, p *pool.Pool) []float64 {
	return lofsFromLRDsChunked(ctx, db, minPts, lrdsChunked(ctx, db, minPts, p), p)
}

// lofsTraced is lofsChunked with each scan recorded as a nested phase span
// on tr. The per-MinPts scans run concurrently inside the sweep, so these
// spans measure busy time, not wall time; tr is nil-safe.
func lofsTraced(ctx context.Context, db *matdb.DB, minPts int, p *pool.Pool, tr *obs.Tracer) []float64 {
	sp := tr.Phase(obs.PhaseSweepLRD)
	sp.AddItems(db.Len())
	lrds := lrdsChunked(ctx, db, minPts, p)
	sp.End()
	sp = tr.Phase(obs.PhaseSweepLOF)
	sp.AddItems(db.Len())
	lofs := lofsFromLRDsChunked(ctx, db, minPts, lrds, p)
	sp.End()
	return lofs
}

// NaiveLOFs computes LOFs for one MinPts value directly against a kNN
// index, re-running neighbor queries instead of consulting a materialized
// database. It exists as the baseline for the materialization ablation; the
// results are identical to LOFs over a database built from the same index.
func NaiveLOFs(ix index.Index, queryPoint func(i int) []index.Neighbor, minPts int) []float64 {
	n := ix.Len()
	kdist := func(i int) float64 {
		nn := queryPoint(i)
		if len(nn) == 0 {
			return math.Inf(1)
		}
		if minPts <= len(nn) {
			return nn[minPts-1].Dist
		}
		return nn[len(nn)-1].Dist
	}
	neighborhood := func(i int) []index.Neighbor {
		nn := queryPoint(i)
		if minPts >= len(nn) {
			return nn
		}
		kd := nn[minPts-1].Dist
		hi := minPts
		for hi < len(nn) && nn[hi].Dist <= kd {
			hi++
		}
		return nn[:hi]
	}
	lrd := func(i int) float64 {
		nn := neighborhood(i)
		if len(nn) == 0 {
			return math.Inf(1)
		}
		var sum float64
		for _, nb := range nn {
			sum += ReachDist(kdist(nb.Index), nb.Dist)
		}
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(len(nn)) / sum
	}
	lofs := make([]float64, n)
	for i := 0; i < n; i++ {
		nn := neighborhood(i)
		if len(nn) == 0 {
			lofs[i] = 1
			continue
		}
		lrdI := lrd(i)
		var sum float64
		for _, nb := range nn {
			sum += densityRatio(lrd(nb.Index), lrdI)
		}
		lofs[i] = sum / float64(len(nn))
	}
	return lofs
}
