package core

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
	"lof/internal/matdb"
)

func buildDB(t *testing.T, pts *geom.Points, k int, opts ...matdb.Option) *matdb.DB {
	t.Helper()
	db, err := matdb.Materialize(pts, linear.New(pts, nil), k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func randomPoints(t *testing.T, seed int64, n, dim int) *geom.Points {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(dim, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		if err := pts.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func TestReachDist(t *testing.T) {
	// Definition 5 and the figure 2 intuition: close objects get smoothed
	// to the k-distance of o, far objects keep their true distance.
	cases := []struct {
		kDistO, d, want float64
	}{
		{2, 1, 2}, // p1: inside o's k-distance → smoothed
		{2, 5, 5}, // p2: beyond o's k-distance → actual distance
		{2, 2, 2}, // boundary
		{0, 0, 0}, // duplicates
	}
	for _, c := range cases {
		if got := ReachDist(c.kDistO, c.d); got != c.want {
			t.Errorf("ReachDist(%v,%v)=%v want %v", c.kDistO, c.d, got, c.want)
		}
	}
}

func TestLOFUniformLineIsOne(t *testing.T) {
	// Evenly spaced points on a line: every interior point has identical
	// neighborhood geometry, so LOF must be 1 exactly for points far from
	// the boundary.
	pts := geom.NewPoints(1, 101)
	for i := 0; i <= 100; i++ {
		if err := pts.Append(geom.Point{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	db := buildDB(t, pts, 10)
	lofs, err := LOFs(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i <= 80; i++ {
		if math.Abs(lofs[i]-1) > 1e-9 {
			t.Fatalf("interior point %d LOF=%v want 1", i, lofs[i])
		}
	}
}

func TestLOFFlagsPlantedOutlier(t *testing.T) {
	// A tight cluster plus one distant point: the distant point's LOF must
	// clearly exceed every cluster member's.
	rng := rand.New(rand.NewSource(5))
	pts := geom.NewPoints(2, 101)
	for i := 0; i < 100; i++ {
		if err := pts.Append(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pts.Append(geom.Point{20, 20}); err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, pts, 10)
	lofs, err := LOFs(db, 10)
	if err != nil {
		t.Fatal(err)
	}
	outlier := lofs[100]
	if outlier < 2 {
		t.Fatalf("outlier LOF=%v, want clearly above 1", outlier)
	}
	for i := 0; i < 100; i++ {
		if lofs[i] >= outlier {
			t.Fatalf("cluster point %d LOF=%v >= outlier %v", i, lofs[i], outlier)
		}
	}
	if got := Rank(lofs)[0].Index; got != 100 {
		t.Fatalf("top ranked=%d want 100", got)
	}
}

func TestLOFHigherForOutlierNearDenserCluster(t *testing.T) {
	// The figure 9 observation: at the same distance from a cluster, an
	// outlier next to a dense cluster has a higher LOF than one next to a
	// sparse cluster.
	rng := rand.New(rand.NewSource(6))
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 200; i++ { // dense cluster at (0,0), sigma 0.5
		if err := pts.Append(geom.Point{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ { // sparse cluster at (100,0), sigma 3
		if err := pts.Append(geom.Point{100 + rng.NormFloat64()*3, rng.NormFloat64() * 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pts.Append(geom.Point{10, 0}); err != nil { // 10 away from dense
		t.Fatal(err)
	}
	if err := pts.Append(geom.Point{90, 0}); err != nil { // 10 away from sparse
		t.Fatal(err)
	}
	db := buildDB(t, pts, 20)
	lofs, err := LOFs(db, 15)
	if err != nil {
		t.Fatal(err)
	}
	nearDense, nearSparse := lofs[400], lofs[401]
	if nearDense <= nearSparse {
		t.Fatalf("LOF near dense=%v should exceed LOF near sparse=%v", nearDense, nearSparse)
	}
	if nearSparse <= 1.5 {
		t.Fatalf("LOF near sparse=%v should still be outlying", nearSparse)
	}
}

func TestLOFDuplicatesInfinitySemantics(t *testing.T) {
	// More than MinPts duplicates at two sites: every duplicate's lrd is
	// +Inf, their LOFs must come out 1 (Inf/Inf), not NaN.
	var rows []geom.Point
	for i := 0; i < 10; i++ {
		rows = append(rows, geom.Point{0, 0})
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, geom.Point{5, 5})
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, pts, 5)
	lrds, err := LRDs(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lrds {
		if !math.IsInf(l, 1) {
			t.Fatalf("lrd[%d]=%v want +Inf", i, l)
		}
	}
	lofs, err := LOFsFromLRDs(db, 5, lrds)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lofs {
		if math.IsNaN(l) {
			t.Fatalf("LOF[%d] is NaN", i)
		}
		if l != 1 {
			t.Fatalf("duplicate LOF[%d]=%v want 1", i, l)
		}
	}
}

func TestLOFDistinctModeKeepsDensitiesFinite(t *testing.T) {
	// Same duplicate-heavy data under k-distinct-distance semantics: lrds
	// become finite and a straggler near one site is still flagged.
	var rows []geom.Point
	for i := 0; i < 10; i++ {
		rows = append(rows, geom.Point{0, 0})
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, geom.Point{1, 0})
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, geom.Point{2, 0})
	}
	rows = append(rows, geom.Point{10, 0}) // straggler
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	db := buildDB(t, pts, 3, matdb.Distinct())
	lrds, err := LRDs(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if math.IsInf(lrds[i], 1) {
			t.Fatalf("distinct-mode lrd[%d] is +Inf", i)
		}
	}
	lofs, err := LOFsFromLRDs(db, 3, lrds)
	if err != nil {
		t.Fatal(err)
	}
	straggler := lofs[30]
	for i := 0; i < 30; i++ {
		if lofs[i] >= straggler {
			t.Fatalf("duplicate site %d LOF=%v >= straggler %v", i, lofs[i], straggler)
		}
	}
}

func TestNaiveMatchesMaterialized(t *testing.T) {
	pts := randomPoints(t, 7, 150, 3)
	ix := linear.New(pts, nil)
	db := buildDB(t, pts, 12)
	for _, minPts := range []int{3, 7, 12} {
		want, err := LOFs(db, minPts)
		if err != nil {
			t.Fatal(err)
		}
		got := NaiveLOFs(ix, func(i int) []index.Neighbor {
			return index.KNNWithTies(ix, pts.At(i), minPts, i)
		}, minPts)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("minPts=%d point %d: naive=%v materialized=%v", minPts, i, got[i], want[i])
			}
		}
	}
}

func TestLOFValidation(t *testing.T) {
	pts := randomPoints(t, 8, 30, 2)
	db := buildDB(t, pts, 5)
	if _, err := LOFs(db, 0); err == nil {
		t.Error("MinPts=0 accepted")
	}
	if _, err := LOFs(db, 6); err == nil {
		t.Error("MinPts>K accepted")
	}
	if _, err := LOFsFromLRDs(db, 3, make([]float64, 5)); err == nil {
		t.Error("wrong-length lrds accepted")
	}
}

func TestDensityRatio(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		o, p, want float64
	}{
		{2, 4, 0.5},
		{inf, inf, 1},
		{3, inf, 0},
		{inf, 3, inf},
	}
	for _, c := range cases {
		if got := densityRatio(c.o, c.p); got != c.want {
			t.Errorf("densityRatio(%v,%v)=%v want %v", c.o, c.p, got, c.want)
		}
	}
}
