package core

import (
	"math"
	"sort"
	"testing"

	"lof/internal/geom"
)

// oracleLOF recomputes LOF straight from Definitions 3–7 with naive O(n²)
// loops and no shared helpers — an independent oracle for the whole
// materialize→two-scan pipeline.
func oracleLOF(pts *geom.Points, minPts int) []float64 {
	n := pts.Len()
	dist := func(a, b int) float64 {
		var s float64
		pa, pb := pts.At(a), pts.At(b)
		for d := range pa {
			diff := pa[d] - pb[d]
			s += diff * diff
		}
		return math.Sqrt(s)
	}

	// Definition 3: the k-distance of p is the distance to its MinPts-th
	// closest other object.
	kdistance := func(p int) float64 {
		ds := make([]float64, 0, n-1)
		for o := 0; o < n; o++ {
			if o != p {
				ds = append(ds, dist(p, o))
			}
		}
		sort.Float64s(ds)
		return ds[minPts-1]
	}

	// Definition 4: all objects within the k-distance (ties included).
	neighborhood := func(p int) []int {
		kd := kdistance(p)
		var out []int
		for o := 0; o < n; o++ {
			if o != p && dist(p, o) <= kd {
				out = append(out, o)
			}
		}
		return out
	}

	// Definition 5 + 6: local reachability density.
	lrd := func(p int) float64 {
		nn := neighborhood(p)
		var sum float64
		for _, o := range nn {
			rd := kdistance(o)
			if d := dist(p, o); d > rd {
				rd = d
			}
			sum += rd
		}
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(len(nn)) / sum
	}

	// Definition 7: the local outlier factor.
	out := make([]float64, n)
	for p := 0; p < n; p++ {
		nn := neighborhood(p)
		lrdP := lrd(p)
		var sum float64
		for _, o := range nn {
			sum += lrd(o) / lrdP
		}
		out[p] = sum / float64(len(nn))
	}
	return out
}

func TestPipelineMatchesDefinitionOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		pts := randomPoints(t, 200+seed, 70, 2)
		for _, minPts := range []int{2, 5, 11} {
			db := buildDB(t, pts, minPts)
			got, err := LOFs(db, minPts)
			if err != nil {
				t.Fatal(err)
			}
			want := oracleLOF(pts, minPts)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("seed=%d minPts=%d point %d: pipeline=%v oracle=%v",
						seed, minPts, i, got[i], want[i])
				}
			}
		}
	}
}
