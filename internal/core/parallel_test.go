package core

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
	"lof/internal/matdb"
	"lof/internal/pool"
)

// equalBits compares floats for exact identity, treating NaN as equal to
// NaN — the 0-ulp tolerance the determinism guarantee promises.
func equalBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

// TestSweepPoolMatchesSequential pins the tentpole guarantee: the parallel
// sweep is bit-identical to the sequential one, for plain and distinct
// databases, across pool widths, including widths far above the MinPts
// range (forcing the nested per-point chunking to engage).
func TestSweepPoolMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, distinct := range []bool{false, true} {
		pts := scoreTestData(rng, 300, true)
		var opts []matdb.Option
		if distinct {
			opts = append(opts, matdb.Distinct())
		}
		db := buildDB(t, pts, 25, opts...)
		want, err := Sweep(db, 3, 25)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			got, err := SweepPool(db, 3, 25, pool.New(workers))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.MinPts) != len(want.MinPts) {
				t.Fatalf("distinct=%v workers=%d: %d MinPts values, want %d",
					distinct, workers, len(got.MinPts), len(want.MinPts))
			}
			for m := range want.MinPts {
				if got.MinPts[m] != want.MinPts[m] {
					t.Fatalf("distinct=%v workers=%d: MinPts[%d]=%d, want %d",
						distinct, workers, m, got.MinPts[m], want.MinPts[m])
				}
				for i := range want.Values[m] {
					if !equalBits(got.Values[m][i], want.Values[m][i]) {
						t.Fatalf("distinct=%v workers=%d: LOF[m=%d][i=%d] = %v, want %v (not bit-identical)",
							distinct, workers, got.MinPts[m], i, got.Values[m][i], want.Values[m][i])
					}
				}
			}
		}
	}
}

// TestSweepPoolSingleMinPts exercises the degenerate range where all the
// parallelism must come from the per-point chunking.
func TestSweepPoolSingleMinPts(t *testing.T) {
	pts := randomPoints(t, 11, 500, 3)
	db := buildDB(t, pts, 10)
	want, err := Sweep(db, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepPool(db, 10, 10, pool.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Values[0] {
		if !equalBits(got.Values[0][i], want.Values[0][i]) {
			t.Fatalf("LOF[%d] = %v, want %v", i, got.Values[0][i], want.Values[0][i])
		}
	}
}

// TestScorerWithPoolMatchesSequential pins the scoring hot path: a pooled
// scorer returns bit-identical series to the sequential scorer for every
// query, for plain and distinct modes.
func TestScorerWithPoolMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, distinct := range []bool{false, true} {
		pts := scoreTestData(rng, 200, true)
		var opts []matdb.Option
		if distinct {
			opts = append(opts, matdb.Distinct())
		}
		metric := geom.Euclidean{}
		ix := linear.New(pts, metric)
		db, err := matdb.Materialize(pts, ix, 20, opts...)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewScorer(pts, ix, db, metric, 4, 20)
		if err != nil {
			t.Fatal(err)
		}
		par := seq.WithPool(pool.New(6))
		for trial := 0; trial < 25; trial++ {
			q := geom.Point{rng.Float64()*24 - 2, rng.Float64()*24 - 2}
			if trial == 0 {
				q = pts.At(0).Clone() // exact duplicate of the cloned block
			}
			want, err := seq.ScoreSeries(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.ScoreSeries(q)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if !equalBits(got[j], want[j]) {
					t.Fatalf("distinct=%v trial %d: series[%d] = %v, want %v (not bit-identical)",
						distinct, trial, j, got[j], want[j])
				}
			}
		}
	}
}

// TestMaterializePoolMatchesSequential verifies the shared-pool path of
// step 1 produces the identical database to the sequential path.
func TestMaterializePoolMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := scoreTestData(rng, 250, true)
	for _, distinct := range []bool{false, true} {
		var base []matdb.Option
		if distinct {
			base = append(base, matdb.Distinct())
		}
		ix := linear.New(pts, nil)
		want, err := matdb.Materialize(pts, ix, 15, base...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := matdb.Materialize(pts, ix, 15, append(base[:len(base):len(base)], matdb.WithPool(pool.New(7)))...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("distinct=%v: %d rows, want %d", distinct, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			a, b := got.Row(i), want.Row(i)
			if len(a.Neighbors) != len(b.Neighbors) {
				t.Fatalf("distinct=%v row %d: %d neighbors, want %d", distinct, i, len(a.Neighbors), len(b.Neighbors))
			}
			for j := range b.Neighbors {
				if a.Neighbors[j] != b.Neighbors[j] {
					t.Fatalf("distinct=%v row %d neighbor %d: %+v, want %+v",
						distinct, i, j, a.Neighbors[j], b.Neighbors[j])
				}
			}
		}
	}
}
