package core

import (
	"fmt"
	"math"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/matdb"
)

// Scorer computes out-of-sample LOF values against a fitted model: the
// LOF a query point would receive from a full recomputation on
// data ∪ {q}, per Definitions 5–7, without mutating or refitting the
// model. Inserting q can shrink the k-distances (and hence change the
// reachability distances and local densities) of points near q, so the
// scorer re-derives the affected quantities from merged rows — the stored
// neighborhoods with q spliced in — rather than reusing the fitted lrds.
// All state is read-only after construction; a Scorer is safe for
// concurrent use.
type Scorer struct {
	pts    *geom.Points
	ix     index.Index
	db     *matdb.DB
	metric geom.Metric
	lb, ub int
}

// NewScorer validates the model pieces and returns a Scorer for the
// MinPts range [lb, ub].
func NewScorer(pts *geom.Points, ix index.Index, db *matdb.DB, metric geom.Metric, lb, ub int) (*Scorer, error) {
	if pts == nil || ix == nil || db == nil || metric == nil {
		return nil, fmt.Errorf("core: scorer needs points, index, database and metric")
	}
	if pts.Len() != db.Len() {
		return nil, fmt.Errorf("core: %d points but %d materialized rows", pts.Len(), db.Len())
	}
	if lb > ub {
		return nil, fmt.Errorf("core: MinPtsLB=%d exceeds MinPtsUB=%d", lb, ub)
	}
	if err := db.CheckMinPts(lb); err != nil {
		return nil, err
	}
	if err := db.CheckMinPts(ub); err != nil {
		return nil, err
	}
	return &Scorer{pts: pts, ix: ix, db: db, metric: metric, lb: lb, ub: ub}, nil
}

// MinPtsRange returns the swept [lb, ub].
func (s *Scorer) MinPtsRange() (lb, ub int) { return s.lb, s.ub }

// ScoreSeries returns the query point's LOF at every MinPts value in the
// scorer's range, in ascending MinPts order — the out-of-sample analogue
// of Sweep restricted to one point. q must have the model's
// dimensionality; coordinate validation is the caller's concern.
func (s *Scorer) ScoreSeries(q geom.Point) ([]float64, error) {
	if len(q) != s.pts.Dim() {
		return nil, fmt.Errorf("core: query has %d dimensions, model has %d", len(q), s.pts.Dim())
	}
	qIdx := s.pts.Len() // the row number q would receive in a refit
	qRow := s.db.QueryRow(s.pts, s.ix, q)

	// Merged rows are MinPts-independent, so one cache serves the whole
	// sweep. Every row touched is within two hops of q.
	rows := make(map[int]matdb.Row)
	mergedRow := func(i int) matdb.Row {
		if r, ok := rows[i]; ok {
			return r
		}
		r := s.db.MergedRow(s.pts, i, q, qIdx, s.metric.Distance(s.pts.At(i), q))
		rows[i] = r
		return r
	}
	kdistAt := func(i, minPts int) float64 {
		if i == qIdx {
			return qRow.KDistance(minPts)
		}
		return mergedRow(i).KDistance(minPts)
	}
	// lrdOf computes Definition 6 over a row in data ∪ {q}.
	lrdOf := func(nn []index.Neighbor, minPts int) float64 {
		if len(nn) == 0 {
			return math.Inf(1)
		}
		var sum float64
		for _, nb := range nn {
			sum += ReachDist(kdistAt(nb.Index, minPts), nb.Dist)
		}
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(len(nn)) / sum
	}

	out := make([]float64, 0, s.ub-s.lb+1)
	for m := s.lb; m <= s.ub; m++ {
		nq := qRow.Neighborhood(m)
		if len(nq) == 0 {
			out = append(out, 1) // isolated by construction
			continue
		}
		lrdQ := lrdOf(nq, m)
		var sum float64
		for _, nb := range nq {
			lrdO := lrdOf(mergedRow(nb.Index).Neighborhood(m), m)
			sum += densityRatio(lrdO, lrdQ)
		}
		out = append(out, sum/float64(len(nq)))
	}
	return out, nil
}

// ScoreAggregate folds a ScoreSeries into one score with the given
// aggregate, matching SweepResult.Aggregate.
func ScoreAggregate(series []float64, agg Aggregate) float64 {
	if len(series) == 0 {
		return math.NaN()
	}
	switch agg {
	case AggMin:
		out := math.Inf(1)
		for _, v := range series {
			if v < out {
				out = v
			}
		}
		return out
	case AggMean:
		var sum float64
		for _, v := range series {
			sum += v
		}
		return sum / float64(len(series))
	default: // AggMax
		out := math.Inf(-1)
		for _, v := range series {
			if v > out {
				out = v
			}
		}
		return out
	}
}
