package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/matdb"
	"lof/internal/obs"
	"lof/internal/pool"
)

// Scorer computes out-of-sample LOF values against a fitted model: the
// LOF a query point would receive from a full recomputation on
// data ∪ {q}, per Definitions 5–7, without mutating or refitting the
// model. Inserting q can shrink the k-distances (and hence change the
// reachability distances and local densities) of points near q, so the
// scorer re-derives the affected quantities from merged rows — the stored
// neighborhoods with q spliced in — rather than reusing the fitted lrds.
// All state is read-only after construction; a Scorer is safe for
// concurrent use.
type Scorer struct {
	pts    *geom.Points
	ix     index.Index
	db     *matdb.DB
	metric geom.Metric
	// kern is the resolved distance kernel over pts; merged-row distances
	// go through it instead of per-call metric dispatch.
	kern   geom.Kernel
	lb, ub int
	// pool, when non-nil, parallelizes ScoreSeries across MinPts values.
	pool *pool.Pool
	// tr, when non-nil, records score phases; nil is a no-op.
	tr *obs.Tracer
	// cursors recycles index cursors across ScoreSeries calls, so each
	// query's kNN probe reuses heap and traversal scratch instead of
	// allocating. Held by pointer so WithPool/WithTracer copies share it.
	cursors *sync.Pool
}

// NewScorer validates the model pieces and returns a Scorer for the
// MinPts range [lb, ub].
func NewScorer(pts *geom.Points, ix index.Index, db *matdb.DB, metric geom.Metric, lb, ub int) (*Scorer, error) {
	if pts == nil || ix == nil || db == nil || metric == nil {
		return nil, fmt.Errorf("core: scorer needs points, index, database and metric")
	}
	if pts.Len() != db.Len() {
		return nil, fmt.Errorf("core: %d points but %d materialized rows", pts.Len(), db.Len())
	}
	if lb > ub {
		return nil, fmt.Errorf("core: MinPtsLB=%d exceeds MinPtsUB=%d", lb, ub)
	}
	if err := db.CheckMinPts(lb); err != nil {
		return nil, err
	}
	if err := db.CheckMinPts(ub); err != nil {
		return nil, err
	}
	return &Scorer{
		pts: pts, ix: ix, db: db, metric: metric, kern: geom.NewKernel(pts, metric), lb: lb, ub: ub,
		cursors: &sync.Pool{New: func() interface{} { return index.NewCursor(ix) }},
	}, nil
}

// MinPtsRange returns the swept [lb, ub].
func (s *Scorer) MinPtsRange() (lb, ub int) { return s.lb, s.ub }

// WithPool returns a copy of the scorer whose ScoreSeries parallelizes its
// per-MinPts computations over p. A nil pool keeps the sequential path;
// either way the results are bit-identical.
func (s *Scorer) WithPool(p *pool.Pool) *Scorer {
	c := *s
	c.pool = p
	return &c
}

// WithTracer returns a copy of the scorer that records score phases on t.
// A nil t disables recording; the scores themselves are unaffected.
func (s *Scorer) WithTracer(t *obs.Tracer) *Scorer {
	c := *s
	c.tr = t
	return &c
}

// ScoreSeries returns the query point's LOF at every MinPts value in the
// scorer's range, in ascending MinPts order — the out-of-sample analogue
// of Sweep restricted to one point. q must have the model's
// dimensionality; coordinate validation is the caller's concern.
//
// Merged rows are MinPts-independent and every row the computation touches
// lies within two hops of q, so the cache is built once up front; the
// per-MinPts values are then independent of each other and run across the
// scorer's pool, each writing only its own output slot.
func (s *Scorer) ScoreSeries(q geom.Point) ([]float64, error) {
	return s.ScoreSeriesCtx(nil, q)
}

// ScoreSeriesCtx is ScoreSeries under cooperative cancellation: ctx is
// polled between the kNN probe, the merged-row construction and the
// per-MinPts evaluations, and a cancelled query returns ctx's error with no
// series. A nil ctx disables cancellation; an uncancelled query is
// bit-identical to ScoreSeries.
func (s *Scorer) ScoreSeriesCtx(ctx context.Context, q geom.Point) ([]float64, error) {
	if len(q) != s.pts.Dim() {
		return nil, fmt.Errorf("core: query has %d dimensions, model has %d", len(q), s.pts.Dim())
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	tr := obs.Resolve(s.tr)
	total := tr.Phase(obs.PhaseScore)
	total.AddItems(1)
	sp := tr.Phase(obs.PhaseScoreKNN)
	qRow := s.QueryRow(q)
	sp.End()
	out, err := s.seriesFromRow(ctx, tr, q, qRow)
	total.End()
	return out, err
}

// QueryRow probes the row q would occupy in data ∪ {q} — the query's
// merged neighborhood — through the scorer's recycled cursors. The row is
// the input both to bound certification (approx.QueryBounds) and to full
// evaluation (ScoreSeriesFromRow), so the pruned serving path probes once
// and decides afterwards how much more to compute.
func (s *Scorer) QueryRow(q geom.Point) matdb.Row {
	cur := s.cursors.Get().(index.Cursor)
	qRow := s.db.QueryRowCursor(s.pts, cur, q)
	s.cursors.Put(cur)
	return qRow
}

// ScoreSeriesFromRow is ScoreSeriesCtx for a caller that already probed
// the query's merged row with QueryRow (e.g. to test pruning bounds before
// committing to a full evaluation): the kNN probe is skipped, everything
// downstream — merged-row closure, per-MinPts evaluation — is identical,
// so the series is bit-identical to ScoreSeriesCtx on the same q.
func (s *Scorer) ScoreSeriesFromRow(ctx context.Context, q geom.Point, qRow matdb.Row) ([]float64, error) {
	if len(q) != s.pts.Dim() {
		return nil, fmt.Errorf("core: query has %d dimensions, model has %d", len(q), s.pts.Dim())
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	tr := obs.Resolve(s.tr)
	total := tr.Phase(obs.PhaseScore)
	total.AddItems(1)
	out, err := s.seriesFromRow(ctx, tr, q, qRow)
	total.End()
	return out, err
}

// seriesFromRow runs the post-probe pipeline shared by ScoreSeriesCtx and
// ScoreSeriesFromRow: merged-row closure, then per-MinPts evaluation.
func (s *Scorer) seriesFromRow(ctx context.Context, tr *obs.Tracer, q geom.Point, qRow matdb.Row) ([]float64, error) {
	qIdx := s.pts.Len() // the row number q would receive in a refit
	sp := tr.Phase(obs.PhaseScoreMerge)
	rows, err := s.mergedRows(ctx, q, qIdx, qRow)
	sp.End()
	if err != nil {
		return nil, err
	}
	out := make([]float64, s.ub-s.lb+1)
	eval := func(j int) {
		out[j] = s.scoreAt(q, qIdx, qRow, rows, s.lb+j)
	}
	if ctx != nil {
		err = s.pool.EachCtx(ctx, len(out), eval)
	} else {
		s.pool.Each(len(out), eval)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// mergedRows builds the merged-row cache for q: the rows of q's
// ub-neighborhood (whose densities enter q's LOF) and of their merged
// neighbors (whose k-distances enter those densities). Neighborhoods at
// MinPts ≤ ub are subsets of the ub-neighborhood, so this closure covers
// every MinPts value in the range. Row computations are independent and
// run across the pool into write-indexed slots; the map itself is
// assembled sequentially and read-only afterwards.
func (s *Scorer) mergedRows(ctx context.Context, q geom.Point, qIdx int, qRow matdb.Row) (map[int]matdb.Row, error) {
	// The closure is the ub-neighborhood plus its neighborhoods, but the
	// second hop overlaps the first heavily in any clustered data, so a
	// linear hint covers the common case without the bucket bloat a
	// worst-case quadratic hint would carry on every query.
	closureHint := 2 * (s.ub + 2)
	rows := make(map[int]matdb.Row, closureHint)
	seen := make(map[int]bool, closureHint)
	var cancelled error
	fill := func(need []int) []matdb.Row {
		got := make([]matdb.Row, len(need))
		// One arena holds every merged neighbor list of this wave; row j
		// splices into its precomputed [offs[j], offs[j+1]) slot, so the
		// parallel computes never contend and the wave costs two
		// allocations instead of one per row.
		offs := make([]int, len(need)+1)
		for j, i := range need {
			offs[j+1] = offs[j] + len(s.db.Neighbors[i]) + 1
		}
		arena := make([]index.Neighbor, offs[len(need)])
		compute := func(j int) {
			i := need[j]
			dst := arena[offs[j]:offs[j]:offs[j+1]]
			got[j] = s.db.MergedRowInto(dst, s.pts, i, q, qIdx, s.kern.Dist(i, q))
		}
		if ctx != nil {
			if err := s.pool.EachCtx(ctx, len(need), compute); err != nil {
				cancelled = err
				return nil
			}
		} else {
			s.pool.Each(len(need), compute)
		}
		for j, i := range need {
			rows[i] = got[j]
		}
		return got
	}
	collect := func(need []int, nn []index.Neighbor) []int {
		for _, nb := range nn {
			if nb.Index != qIdx && !seen[nb.Index] {
				seen[nb.Index] = true
				need = append(need, nb.Index)
			}
		}
		return need
	}
	first := collect(make([]int, 0, s.ub+2), qRow.Neighborhood(s.ub))
	hop1 := fill(first)
	if cancelled != nil {
		return nil, cancelled
	}
	second := make([]int, 0, len(hop1)*(s.ub+2))
	for _, r := range hop1 {
		second = collect(second, r.Neighborhood(s.ub))
	}
	fill(second)
	if cancelled != nil {
		return nil, cancelled
	}
	return rows, nil
}

// scoreAt computes q's LOF at one MinPts value from the precomputed cache —
// the same arithmetic, in the same order, as a sequential evaluation.
func (s *Scorer) scoreAt(q geom.Point, qIdx int, qRow matdb.Row, rows map[int]matdb.Row, minPts int) float64 {
	// rowOf falls back to an on-the-fly computation for rows outside the
	// precomputed closure; this cannot happen for well-formed databases but
	// keeps a cache miss a slowdown instead of a wrong answer.
	rowOf := func(i int) matdb.Row {
		if r, ok := rows[i]; ok {
			return r
		}
		return s.db.MergedRow(s.pts, i, q, qIdx, s.kern.Dist(i, q))
	}
	return EvalAt(qIdx, qRow, rowOf, minPts)
}

// EvalAt computes the LOF of a query point at one MinPts value from merged
// rows alone: qRow is the row the query occupies in data ∪ {q} and rowOf
// resolves the merged row of any point within two hops of it (it is never
// asked for qIdx). This is the single evaluation both the in-process scorer
// and the scatter-gather coordinator run — the coordinator's rowOf reads
// rows fetched from shards, the scorer's reads its local cache — so a
// distributed score is bit-identical to a single-node one by construction.
func EvalAt(qIdx int, qRow matdb.Row, rowOf func(int) matdb.Row, minPts int) float64 {
	kdistAt := func(i int) float64 {
		if i == qIdx {
			return qRow.KDistance(minPts)
		}
		return rowOf(i).KDistance(minPts)
	}
	// lrdOf computes Definition 6 over a row in data ∪ {q}.
	lrdOf := func(nn []index.Neighbor) float64 {
		if len(nn) == 0 {
			return math.Inf(1)
		}
		var sum float64
		for _, nb := range nn {
			sum += ReachDist(kdistAt(nb.Index), nb.Dist)
		}
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(len(nn)) / sum
	}
	nq := qRow.Neighborhood(minPts)
	if len(nq) == 0 {
		return 1 // isolated by construction
	}
	lrdQ := lrdOf(nq)
	var sum float64
	for _, nb := range nq {
		sum += densityRatio(lrdOf(rowOf(nb.Index).Neighborhood(minPts)), lrdQ)
	}
	return sum / float64(len(nq))
}

// ScoreAggregate folds a ScoreSeries into one score with the given
// aggregate, matching SweepResult.Aggregate.
func ScoreAggregate(series []float64, agg Aggregate) float64 {
	if len(series) == 0 {
		return math.NaN()
	}
	switch agg {
	case AggMin:
		out := math.Inf(1)
		for _, v := range series {
			if v < out {
				out = v
			}
		}
		return out
	case AggMean:
		var sum float64
		for _, v := range series {
			sum += v
		}
		return sum / float64(len(series))
	default: // AggMax
		out := math.Inf(-1)
		for _, v := range series {
			if v > out {
				out = v
			}
		}
		return out
	}
}
