package core

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
	"lof/internal/matdb"
)

// scoreTestData builds a two-cluster dataset with a few straggling points;
// withDuplicates additionally plants exact duplicate coordinates so the
// distinct-mode and infinity paths get exercised.
func scoreTestData(rng *rand.Rand, n int, withDuplicates bool) *geom.Points {
	pts := geom.NewPoints(2, n)
	for i := 0; i < n; i++ {
		var p geom.Point
		switch {
		case i < n/2:
			p = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		case i < n-3:
			p = geom.Point{10 + 0.3*rng.NormFloat64(), 10 + 0.3*rng.NormFloat64()}
		default:
			p = geom.Point{rng.Float64() * 20, rng.Float64() * 20}
		}
		if err := pts.Append(p); err != nil {
			panic(err)
		}
	}
	if withDuplicates {
		// Overwrite a block with copies of one coordinate: more duplicates
		// than the largest MinPts under test.
		base := pts.At(0).Clone()
		for i := 1; i < 10; i++ {
			copy(pts.At(i), base)
		}
	}
	return pts
}

// refitSeries computes the LOF series of the query by the definitionally
// correct route: materialize data ∪ {q} from scratch and sweep.
func refitSeries(t *testing.T, pts *geom.Points, q geom.Point, metric geom.Metric, lb, ub int, distinct bool) []float64 {
	t.Helper()
	all := pts.Clone()
	if err := all.Append(q); err != nil {
		t.Fatal(err)
	}
	ix := linear.New(all, metric)
	var opts []matdb.Option
	if distinct {
		opts = append(opts, matdb.Distinct())
	}
	db, err := matdb.Materialize(all, ix, ub, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := Sweep(db, lb, ub)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.Series(all.Len() - 1)
}

// TestScorerMatchesRefit is the out-of-sample oracle: for every query
// point, metric and duplicate-handling mode, the scorer's per-MinPts series
// must match a full refit on data ∪ {q} within 1e-9.
func TestScorerMatchesRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	metrics := []geom.Metric{geom.Euclidean{}, geom.Manhattan{}, geom.Chebyshev{}}
	const lb, ub = 3, 8
	for _, distinct := range []bool{false, true} {
		pts := scoreTestData(rng, 60, distinct)
		queries := []geom.Point{
			{0.2, -0.1},                   // deep inside cluster 1
			{10.1, 9.9},                   // deep inside cluster 2
			{5, 5},                        // between the clusters: a clear outlier
			{-40, 35},                     // far from everything
			pts.At(4).Clone(),             // exact duplicate of a data point
			pts.At(pts.Len() - 1).Clone(), // duplicate of a straggler
		}
		for _, metric := range metrics {
			ix := linear.New(pts, metric)
			var opts []matdb.Option
			if distinct {
				opts = append(opts, matdb.Distinct())
			}
			db, err := matdb.Materialize(pts, ix, ub, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := NewScorer(pts, ix, db, metric, lb, ub)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				got, err := sc.ScoreSeries(q)
				if err != nil {
					t.Fatalf("distinct=%v metric=%s query %d: %v", distinct, metric.Name(), qi, err)
				}
				want := refitSeries(t, pts, q, metric, lb, ub, distinct)
				if len(got) != len(want) {
					t.Fatalf("series length %d != %d", len(got), len(want))
				}
				for m := range got {
					if math.IsInf(want[m], 1) {
						if !math.IsInf(got[m], 1) {
							t.Errorf("distinct=%v metric=%s query %d MinPts=%d: got %v, want +Inf",
								distinct, metric.Name(), qi, lb+m, got[m])
						}
						continue
					}
					if diff := math.Abs(got[m] - want[m]); diff > 1e-9 {
						t.Errorf("distinct=%v metric=%s query %d MinPts=%d: got %v, want %v (diff %g)",
							distinct, metric.Name(), qi, lb+m, got[m], want[m], diff)
					}
				}
			}
		}
	}
}

// TestScorerValidation covers the scorer's constructor and query checks.
func TestScorerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := scoreTestData(rng, 30, false)
	metric := geom.Euclidean{}
	ix := linear.New(pts, metric)
	db, err := matdb.Materialize(pts, ix, 5, nil...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScorer(nil, ix, db, metric, 2, 5); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := NewScorer(pts, ix, db, metric, 4, 2); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewScorer(pts, ix, db, metric, 2, 6); err == nil {
		t.Error("range beyond materialized K accepted")
	}
	sc, err := NewScorer(pts, ix, db, metric, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ScoreSeries(geom.Point{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// TestScoreAggregate pins the fold semantics to SweepResult.Aggregate.
func TestScoreAggregate(t *testing.T) {
	series := []float64{1.5, 0.9, 2.5, 1.0}
	if got := ScoreAggregate(series, AggMax); got != 2.5 {
		t.Errorf("max = %v", got)
	}
	if got := ScoreAggregate(series, AggMin); got != 0.9 {
		t.Errorf("min = %v", got)
	}
	if got := ScoreAggregate(series, AggMean); math.Abs(got-1.475) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := ScoreAggregate(nil, AggMax); !math.IsNaN(got) {
		t.Errorf("empty series = %v, want NaN", got)
	}
	sr := &SweepResult{MinPts: []int{2, 3, 4, 5}, Values: [][]float64{{1.5}, {0.9}, {2.5}, {1.0}}}
	for _, agg := range []Aggregate{AggMax, AggMin, AggMean} {
		if got, want := ScoreAggregate(series, agg), sr.Aggregate(agg)[0]; got != want {
			t.Errorf("%v: ScoreAggregate=%v, SweepResult.Aggregate=%v", agg, got, want)
		}
	}
}
