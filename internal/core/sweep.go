package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lof/internal/matdb"
	"lof/internal/obs"
	"lof/internal/pool"
)

// Aggregate selects how per-MinPts LOF values are folded into one score per
// object when sweeping a MinPts range (Sec. 6.2). The paper proposes Max —
// "to highlight the instance at which the object is the most outlying" —
// and discusses why Min and Mean can erase or dilute outlier-ness.
type Aggregate int

// Aggregation choices for Sweep results.
const (
	// AggMax ranks by the maximum LOF over the range (the paper's
	// recommendation).
	AggMax Aggregate = iota
	// AggMin ranks by the minimum LOF over the range.
	AggMin
	// AggMean ranks by the mean LOF over the range.
	AggMean
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggMean:
		return "mean"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// SweepResult holds LOF values for every point at every MinPts value in
// [MinPtsLB, MinPtsUB].
type SweepResult struct {
	// MinPts lists the swept values in ascending order.
	MinPts []int
	// Values[m][i] is the LOF of point i at MinPts[m].
	Values [][]float64
}

// Sweep computes LOF for every MinPts in [lb, ub] using the two-scan
// algorithm per value, exactly as the paper's step 2 ("the database M is
// scanned twice for every value of MinPts between MinPtsLB and MinPtsUB").
func Sweep(db *matdb.DB, lb, ub int) (*SweepResult, error) {
	return SweepPool(db, lb, ub, nil)
}

// SweepPool is Sweep over a shared worker pool (nil for sequential). The
// 2·(ub−lb+1) scans are embarrassingly independent across MinPts values,
// so the sweep parallelizes along MinPts first; each scan additionally
// chunks its per-point loops over the same pool, which picks up the slack
// when the range is narrower than the pool (a single MinPts value still
// uses every worker). Every goroutine writes only write-indexed slots and
// no floating-point reduction is reordered, so the result is bit-identical
// to the sequential computation.
func SweepPool(db *matdb.DB, lb, ub int, p *pool.Pool) (*SweepResult, error) {
	return SweepPoolTraced(db, lb, ub, p, nil)
}

// SweepPoolTraced is SweepPool with phase tracing: the whole sweep is one
// top-level span on tr, and each per-MinPts scan records nested sweep/lrd
// and sweep/lof busy-time spans. A nil tr falls back to the process-default
// tracer and degrades to exactly SweepPool when that is nil too.
func SweepPoolTraced(db *matdb.DB, lb, ub int, p *pool.Pool, tr *obs.Tracer) (*SweepResult, error) {
	return SweepCtx(nil, db, lb, ub, p, tr)
}

// SweepCtx is SweepPoolTraced under cooperative cancellation: ctx is polled
// between per-MinPts scans and inside each scan's chunked per-point loops,
// and a cancelled sweep returns ctx's error with no result. A nil ctx
// disables cancellation; an uncancelled sweep is bit-identical to
// SweepPoolTraced.
func SweepCtx(ctx context.Context, db *matdb.DB, lb, ub int, p *pool.Pool, tr *obs.Tracer) (*SweepResult, error) {
	if lb > ub {
		return nil, fmt.Errorf("core: MinPtsLB=%d exceeds MinPtsUB=%d", lb, ub)
	}
	if err := db.CheckMinPts(lb); err != nil {
		return nil, err
	}
	if err := db.CheckMinPts(ub); err != nil {
		return nil, err
	}
	tr = obs.Resolve(tr)
	// lb and ub valid imply every MinPts in between is valid, so the scan
	// bodies below cannot fail.
	k := ub - lb + 1
	res := &SweepResult{MinPts: make([]int, k), Values: make([][]float64, k)}
	sp := tr.Phase(obs.PhaseSweep)
	sp.AddItems(k)
	scan := func(j int) {
		res.MinPts[j] = lb + j
		res.Values[j] = lofsTraced(ctx, db, lb+j, p, tr)
	}
	var err error
	if ctx != nil {
		err = p.EachCtx(ctx, k, scan)
	} else {
		p.Each(k, scan)
	}
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: sweep cancelled: %w", err)
	}
	return res, nil
}

// NumPoints returns the number of points covered by the sweep.
func (r *SweepResult) NumPoints() int {
	if len(r.Values) == 0 {
		return 0
	}
	return len(r.Values[0])
}

// Aggregate folds the per-MinPts LOF values into one score per point.
func (r *SweepResult) Aggregate(agg Aggregate) []float64 {
	n := r.NumPoints()
	out := make([]float64, n)
	switch agg {
	case AggMin:
		for i := range out {
			out[i] = math.Inf(1)
		}
		for _, vals := range r.Values {
			for i, v := range vals {
				if v < out[i] {
					out[i] = v
				}
			}
		}
	case AggMean:
		for _, vals := range r.Values {
			for i, v := range vals {
				out[i] += v
			}
		}
		for i := range out {
			out[i] /= float64(len(r.Values))
		}
	default: // AggMax
		for i := range out {
			out[i] = math.Inf(-1)
		}
		for _, vals := range r.Values {
			for i, v := range vals {
				if v > out[i] {
					out[i] = v
				}
			}
		}
	}
	return out
}

// Series returns point i's LOF as a function of MinPts — the curves plotted
// in figure 8.
func (r *SweepResult) Series(i int) []float64 {
	out := make([]float64, len(r.Values))
	for m, vals := range r.Values {
		out[m] = vals[i]
	}
	return out
}

// Ranked pairs a point index with its aggregated outlier score.
type Ranked struct {
	Index int
	Score float64
}

// Rank orders points by descending score (ties by ascending index), the
// ranking the paper's experiments report.
func Rank(scores []float64) []Ranked {
	out := make([]Ranked, len(scores))
	for i, s := range scores {
		out[i] = Ranked{Index: i, Score: s}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// TopN returns the n highest-scoring points (all of them if n exceeds the
// dataset size).
func TopN(scores []float64, n int) []Ranked {
	ranked := Rank(scores)
	if n > len(ranked) {
		n = len(ranked)
	}
	if n < 0 {
		n = 0
	}
	return ranked[:n]
}
