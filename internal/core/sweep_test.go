package core

import (
	"math"
	"testing"
)

func TestSweepShape(t *testing.T) {
	pts := randomPoints(t, 20, 80, 2)
	db := buildDB(t, pts, 15)
	res, err := Sweep(db, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MinPts) != 11 || len(res.Values) != 11 {
		t.Fatalf("minpts=%d values=%d", len(res.MinPts), len(res.Values))
	}
	if res.MinPts[0] != 5 || res.MinPts[10] != 15 {
		t.Fatalf("MinPts=%v", res.MinPts)
	}
	if res.NumPoints() != 80 {
		t.Fatalf("NumPoints=%d", res.NumPoints())
	}
	// Each row must equal a direct computation at that MinPts.
	for m, minPts := range res.MinPts {
		want, err := LOFs(db, minPts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if res.Values[m][i] != want[i] {
				t.Fatalf("row %d point %d differs", m, i)
			}
		}
	}
}

func TestSweepValidation(t *testing.T) {
	pts := randomPoints(t, 21, 40, 2)
	db := buildDB(t, pts, 10)
	if _, err := Sweep(db, 8, 5); err == nil {
		t.Error("lb>ub accepted")
	}
	if _, err := Sweep(db, 0, 5); err == nil {
		t.Error("lb=0 accepted")
	}
	if _, err := Sweep(db, 5, 11); err == nil {
		t.Error("ub>K accepted")
	}
}

func TestAggregateOrdering(t *testing.T) {
	pts := randomPoints(t, 22, 100, 2)
	db := buildDB(t, pts, 12)
	res, err := Sweep(db, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	maxA := res.Aggregate(AggMax)
	meanA := res.Aggregate(AggMean)
	minA := res.Aggregate(AggMin)
	for i := range maxA {
		if !(minA[i] <= meanA[i]+1e-12 && meanA[i] <= maxA[i]+1e-12) {
			t.Fatalf("point %d: min=%v mean=%v max=%v", i, minA[i], meanA[i], maxA[i])
		}
	}
}

func TestSeries(t *testing.T) {
	pts := randomPoints(t, 23, 50, 2)
	db := buildDB(t, pts, 8)
	res, err := Sweep(db, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series(7)
	if len(s) != len(res.MinPts) {
		t.Fatalf("series len=%d", len(s))
	}
	for m := range s {
		if s[m] != res.Values[m][7] {
			t.Fatalf("series[%d] mismatch", m)
		}
	}
}

func TestEmptySweepResult(t *testing.T) {
	r := &SweepResult{}
	if r.NumPoints() != 0 {
		t.Fatalf("NumPoints=%d", r.NumPoints())
	}
	if got := r.Aggregate(AggMax); len(got) != 0 {
		t.Fatalf("Aggregate=%v", got)
	}
}

func TestRankOrdering(t *testing.T) {
	scores := []float64{1.0, 3.5, 2.2, 3.5, 0.1}
	ranked := Rank(scores)
	wantOrder := []int{1, 3, 2, 0, 4} // ties (1,3) broken by index
	for i, w := range wantOrder {
		if ranked[i].Index != w {
			t.Fatalf("rank %d: got %d want %d (full: %v)", i, ranked[i].Index, w, ranked)
		}
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("scores not descending")
		}
	}
}

func TestTopN(t *testing.T) {
	scores := []float64{1, 5, 3}
	if got := TopN(scores, 2); len(got) != 2 || got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("TopN=%v", got)
	}
	if got := TopN(scores, 99); len(got) != 3 {
		t.Fatalf("TopN overflow=%v", got)
	}
	if got := TopN(scores, -1); len(got) != 0 {
		t.Fatalf("TopN negative=%v", got)
	}
}

func TestAggregateString(t *testing.T) {
	if AggMax.String() != "max" || AggMin.String() != "min" || AggMean.String() != "mean" {
		t.Fatal("aggregate names wrong")
	}
	if Aggregate(9).String() == "" {
		t.Fatal("unknown aggregate name empty")
	}
}

func TestSweepSinglePoint(t *testing.T) {
	// lb == ub degenerates to one row.
	pts := randomPoints(t, 24, 30, 2)
	db := buildDB(t, pts, 5)
	res, err := Sweep(db, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MinPts) != 1 {
		t.Fatalf("rows=%d", len(res.MinPts))
	}
	agg := res.Aggregate(AggMax)
	for i, v := range res.Values[0] {
		if agg[i] != v || math.IsNaN(v) {
			t.Fatalf("agg[%d]=%v row=%v", i, agg[i], v)
		}
	}
}
