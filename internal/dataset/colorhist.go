package dataset

import (
	"fmt"
	"math/rand"

	"lof/internal/geom"
)

// The paper additionally evaluates LOF on 64-dimensional color histograms
// extracted from TV snapshots, identifying per-scene clusters (e.g. a
// tennis match) and local outliers with LOF values up to about 7. The
// snapshots are unavailable, so ColorHistograms generates simplex-
// normalized 64-d histograms: each cluster concentrates its mass on a small
// set of "scene" bins (a tennis broadcast is mostly court-green and
// skin/crowd tones), while planted outliers spread mass across many bins or
// concentrate it on bins no cluster uses.

// ColorHistSpec configures the 64-d histogram workload.
type ColorHistSpec struct {
	// Clusters is the number of scene clusters.
	Clusters int
	// PerCluster is the number of snapshots per scene.
	PerCluster int
	// Outliers is the number of planted outlier snapshots.
	Outliers int
}

// DefaultColorHistSpec mirrors the scale implied by the paper's discussion.
func DefaultColorHistSpec() ColorHistSpec {
	return ColorHistSpec{Clusters: 6, PerCluster: 120, Outliers: 10}
}

// ColorHistograms generates the 64-dimensional histogram dataset.
func ColorHistograms(seed int64, spec ColorHistSpec) *Dataset {
	if spec.Clusters <= 0 || spec.PerCluster <= 0 || spec.Outliers < 0 {
		panic(fmt.Sprintf("dataset: invalid ColorHistSpec %+v", spec))
	}
	const dim = 64
	rng := rand.New(rand.NewSource(seed))
	total := spec.Clusters*spec.PerCluster + spec.Outliers
	b := newBuilder("colorhist64", dim, total)

	normalize := func(p geom.Point) geom.Point {
		var s float64
		for _, v := range p {
			s += v
		}
		if s == 0 {
			p[0] = 1
			return p
		}
		for i := range p {
			p[i] /= s
		}
		return p
	}

	for c := 0; c < spec.Clusters; c++ {
		// Each scene uses 4–8 dominant bins with fixed proportions.
		nd := 4 + rng.Intn(5)
		bins := rng.Perm(dim)[:nd]
		weights := make([]float64, nd)
		for i := range weights {
			weights[i] = 0.5 + rng.Float64()
		}
		for s := 0; s < spec.PerCluster; s++ {
			p := make(geom.Point, dim)
			// Small background noise on every bin.
			for i := range p {
				p[i] = rng.Float64() * 0.01
			}
			// Scene mass on the dominant bins, jittered per snapshot.
			for i, bin := range bins {
				p[bin] += weights[i] * (0.8 + 0.4*rng.Float64())
			}
			b.add(normalize(p), c, "")
		}
	}
	for o := 0; o < spec.Outliers; o++ {
		p := make(geom.Point, dim)
		if o%2 == 0 {
			// Mass spread across many bins: a busy, unclustered frame.
			for i := range p {
				p[i] = rng.Float64()
			}
		} else {
			// Mass on a few bins no scene cluster is anchored to exactly.
			for i := 0; i < 3; i++ {
				p[rng.Intn(dim)] = 1 + rng.Float64()
			}
		}
		b.addOutlier(normalize(p), fmt.Sprintf("outlier-frame-%d", o))
	}
	return b.build()
}
