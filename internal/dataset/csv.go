package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lof/internal/geom"
)

// CSVOptions configures CSV reading and writing.
type CSVOptions struct {
	// Header indicates the first row is a header row.
	Header bool
	// LabelColumn is the index of a non-numeric label column, or -1 for
	// none. On write, labels are emitted in this position.
	LabelColumn int
	// Comma is the field delimiter; 0 means ','.
	Comma rune
}

// DefaultCSVOptions reads headerless, all-numeric CSV.
func DefaultCSVOptions() CSVOptions { return CSVOptions{Header: false, LabelColumn: -1} }

// ReadCSV parses a dataset from CSV. Every non-label column must parse as a
// float; non-finite values are rejected so downstream distance computations
// stay well-defined.
func ReadCSV(r io.Reader, name string, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if opts.Header && len(rows) > 0 {
		rows = rows[1:]
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: csv %q contains no data rows", name)
	}
	width := len(rows[0])
	dim := width
	if opts.LabelColumn >= 0 {
		if opts.LabelColumn >= width {
			return nil, fmt.Errorf("dataset: label column %d out of range for %d-column csv", opts.LabelColumn, width)
		}
		dim--
	}
	if dim <= 0 {
		return nil, fmt.Errorf("dataset: csv %q has no numeric columns", name)
	}

	pts := geom.NewPoints(dim, len(rows))
	var labels []string
	if opts.LabelColumn >= 0 {
		labels = make([]string, 0, len(rows))
	}
	for rowNum, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, want %d", rowNum+1, len(row), width)
		}
		p := make(geom.Point, 0, dim)
		for col, field := range row {
			if col == opts.LabelColumn {
				labels = append(labels, strings.TrimSpace(field))
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d col %d: %w", rowNum+1, col+1, err)
			}
			p = append(p, v)
		}
		if err := pts.Append(p); err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", rowNum+1, err)
		}
	}
	return &Dataset{Name: name, Points: pts, Labels: labels}, nil
}

// WriteCSV emits the dataset as CSV. If opts.Header is set, a synthetic
// header (label,x0,x1,...) is written. The label column, when configured,
// is placed at opts.LabelColumn.
func WriteCSV(w io.Writer, d *Dataset, opts CSVOptions) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if opts.Comma != 0 {
		cw.Comma = opts.Comma
	}
	dim := d.Dim()
	width := dim
	if opts.LabelColumn >= 0 {
		width++
		if opts.LabelColumn >= width {
			return fmt.Errorf("dataset: label column %d out of range for %d-column output", opts.LabelColumn, width)
		}
	}
	record := make([]string, width)
	if opts.Header {
		col := 0
		for i := 0; i < width; i++ {
			if i == opts.LabelColumn {
				record[i] = "label"
				continue
			}
			record[i] = fmt.Sprintf("x%d", col)
			col++
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	for i := 0; i < d.Len(); i++ {
		p := d.Points.At(i)
		col := 0
		for j := 0; j < width; j++ {
			if j == opts.LabelColumn {
				record[j] = d.Label(i)
				continue
			}
			record[j] = strconv.FormatFloat(p[col], 'g', -1, 64)
			col++
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
