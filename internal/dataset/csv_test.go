package dataset

import (
	"bytes"
	"strings"
	"testing"

	"lof/internal/geom"
)

func TestReadCSVNumeric(t *testing.T) {
	in := "1,2\n3,4\n5,6\n"
	d, err := ReadCSV(strings.NewReader(in), "t", DefaultCSVOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Dim() != 2 {
		t.Fatalf("len=%d dim=%d", d.Len(), d.Dim())
	}
	if !d.Points.At(2).Equal(geom.Point{5, 6}) {
		t.Fatalf("row 2=%v", d.Points.At(2))
	}
}

func TestReadCSVHeaderAndLabel(t *testing.T) {
	in := "name,x,y\nalice, 1, 2\nbob,3,4\n"
	d, err := ReadCSV(strings.NewReader(in), "t", CSVOptions{Header: true, LabelColumn: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Dim() != 2 {
		t.Fatalf("len=%d dim=%d", d.Len(), d.Dim())
	}
	if d.Label(0) != "alice" || d.Label(1) != "bob" {
		t.Fatalf("labels=%q,%q", d.Label(0), d.Label(1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"empty", "", DefaultCSVOptions()},
		{"header only", "x,y\n", CSVOptions{Header: true, LabelColumn: -1}},
		{"non numeric", "1,foo\n", DefaultCSVOptions()},
		{"NaN", "1,NaN\n", DefaultCSVOptions()},
		{"Inf", "1,+Inf\n", DefaultCSVOptions()},
		{"label col out of range", "1,2\n", CSVOptions{LabelColumn: 5}},
		{"label only column", "a\nb\n", CSVOptions{LabelColumn: 0}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), c.name, c.opts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadCSVRaggedRows(t *testing.T) {
	// encoding/csv flags inconsistent field counts itself.
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), "t", DefaultCSVOptions()); err == nil {
		t.Fatal("ragged csv accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := Soccer(42)
	d := l.Dataset()
	var buf bytes.Buffer
	opts := CSVOptions{Header: true, LabelColumn: 0}
	if err := WriteCSV(&buf, d, opts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), "rt", opts)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("round trip: len=%d dim=%d", back.Len(), back.Dim())
	}
	for i := 0; i < d.Len(); i++ {
		if !back.Points.At(i).Equal(d.Points.At(i)) {
			t.Fatalf("row %d differs: %v vs %v", i, back.Points.At(i), d.Points.At(i))
		}
		if back.Label(i) != d.Label(i) {
			t.Fatalf("row %d label differs: %q vs %q", i, back.Label(i), d.Label(i))
		}
	}
}

func TestWriteCSVNoLabel(t *testing.T) {
	d := GaussianCluster(1, geom.Point{0, 0}, 1, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d, CSVOptions{Header: true, LabelColumn: -1}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d", len(lines))
	}
	if lines[0] != "x0,x1" {
		t.Fatalf("header=%q", lines[0])
	}
}

func TestWriteCSVInvalidDataset(t *testing.T) {
	d := GaussianCluster(1, geom.Point{0, 0}, 1, 3)
	d.Labels = []string{"oops"}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d, DefaultCSVOptions()); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestCSVCustomDelimiter(t *testing.T) {
	in := "1;2\n3;4\n"
	d, err := ReadCSV(strings.NewReader(in), "t", CSVOptions{LabelColumn: -1, Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len=%d", d.Len())
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d, CSVOptions{LabelColumn: -1, Comma: ';'}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1;2") {
		t.Fatalf("out=%q", buf.String())
	}
}
