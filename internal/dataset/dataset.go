// Package dataset provides the workloads the LOF paper evaluates on:
// deterministic synthetic generators (Gaussian and uniform clusters), the
// named figure datasets (DS1, the Gaussian of figure 7, the three-cluster
// dataset of figure 8, the four-cluster-plus-outliers dataset of figure 9),
// substitutes for the paper's real-world data (NHL96-like hockey statistics,
// Bundesliga-1998/99-like soccer statistics, 64-dimensional color
// histograms), and CSV input/output.
//
// All generators are deterministic for a fixed seed so tests and benchmarks
// are reproducible.
package dataset

import (
	"errors"
	"fmt"

	"lof/internal/geom"
)

// Dataset is a collection of points with optional per-point labels and
// ground-truth annotations used by the experiment harness.
type Dataset struct {
	// Name identifies the dataset in harness output.
	Name string
	// Points holds the feature vectors.
	Points *geom.Points
	// Labels optionally names each point (player names, "o1", ...). Either
	// nil or exactly Points.Len() long.
	Labels []string
	// Cluster optionally assigns each point a ground-truth cluster id;
	// -1 marks planted outliers/noise. Either nil or Points.Len() long.
	Cluster []int
	// Outliers lists the indices of planted outliers, if known.
	Outliers []int
}

// Len returns the number of points.
func (d *Dataset) Len() int { return d.Points.Len() }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.Points.Dim() }

// Validate checks internal consistency: label/cluster lengths, finite
// coordinates, and outlier indices in range.
func (d *Dataset) Validate() error {
	if d.Points == nil {
		return errors.New("dataset: nil Points")
	}
	n := d.Points.Len()
	if d.Labels != nil && len(d.Labels) != n {
		return fmt.Errorf("dataset %q: %d labels for %d points", d.Name, len(d.Labels), n)
	}
	if d.Cluster != nil && len(d.Cluster) != n {
		return fmt.Errorf("dataset %q: %d cluster ids for %d points", d.Name, len(d.Cluster), n)
	}
	for _, i := range d.Outliers {
		if i < 0 || i >= n {
			return fmt.Errorf("dataset %q: outlier index %d out of range [0,%d)", d.Name, i, n)
		}
	}
	for i := 0; i < n; i++ {
		if !d.Points.At(i).Valid() {
			return fmt.Errorf("dataset %q: point %d has non-finite coordinates", d.Name, i)
		}
	}
	return nil
}

// Label returns the label of point i, or a synthesized "#i" if unlabeled.
func (d *Dataset) Label(i int) string {
	if d.Labels != nil && i < len(d.Labels) && d.Labels[i] != "" {
		return d.Labels[i]
	}
	return fmt.Sprintf("#%d", i)
}

// IndexOfLabel returns the index of the first point with the given label,
// or -1 if no point carries it.
func (d *Dataset) IndexOfLabel(label string) int {
	for i, l := range d.Labels {
		if l == label {
			return i
		}
	}
	return -1
}

// Column extracts feature column j across all points.
func (d *Dataset) Column(j int) []float64 {
	n := d.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = d.Points.At(i)[j]
	}
	return out
}

// builder incrementally assembles a Dataset, tracking cluster ids and
// planted outliers.
type builder struct {
	name    string
	pts     *geom.Points
	labels  []string
	cluster []int
	outlier []int
}

func newBuilder(name string, dim, capHint int) *builder {
	return &builder{name: name, pts: geom.NewPoints(dim, capHint)}
}

// add appends a point with the given cluster id and label ("" for none).
func (b *builder) add(p geom.Point, cluster int, label string) int {
	if err := b.pts.Append(p); err != nil {
		panic(fmt.Sprintf("dataset %q: %v", b.name, err))
	}
	b.labels = append(b.labels, label)
	b.cluster = append(b.cluster, cluster)
	return b.pts.Len() - 1
}

// addOutlier appends a planted outlier (cluster id -1) and records its index.
func (b *builder) addOutlier(p geom.Point, label string) int {
	i := b.add(p, -1, label)
	b.outlier = append(b.outlier, i)
	return i
}

func (b *builder) build() *Dataset {
	anyLabel := false
	for _, l := range b.labels {
		if l != "" {
			anyLabel = true
			break
		}
	}
	d := &Dataset{Name: b.name, Points: b.pts, Cluster: b.cluster, Outliers: b.outlier}
	if anyLabel {
		d.Labels = b.labels
	}
	return d
}
