package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"lof/internal/geom"
	"lof/internal/stats"
)

func TestGaussianClusterDeterministic(t *testing.T) {
	a := GaussianCluster(1, geom.Point{0, 0}, 1, 100)
	b := GaussianCluster(1, geom.Point{0, 0}, 1, 100)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("len=%d,%d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Points.At(i).Equal(b.Points.At(i)) {
			t.Fatalf("point %d differs across same-seed runs", i)
		}
	}
	c := GaussianCluster(2, geom.Point{0, 0}, 1, 100)
	same := true
	for i := 0; i < a.Len(); i++ {
		if !a.Points.At(i).Equal(c.Points.At(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGaussianClusterMoments(t *testing.T) {
	d := GaussianCluster(7, geom.Point{5, -3}, 2, 20000)
	for dim, want := range []float64{5, -3} {
		s, err := stats.Summarize(d.Column(dim))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Mean-want) > 0.1 {
			t.Errorf("dim %d mean=%v want %v", dim, s.Mean, want)
		}
		if math.Abs(s.Std-2) > 0.1 {
			t.Errorf("dim %d std=%v want 2", dim, s.Std)
		}
	}
}

func TestUniformBoxWithinBounds(t *testing.T) {
	lo, hi := geom.Point{-1, 2}, geom.Point{1, 5}
	d := UniformBox(3, lo, hi, 500)
	for i := 0; i < d.Len(); i++ {
		p := d.Points.At(i)
		for j := range p {
			if p[j] < lo[j] || p[j] > hi[j] {
				t.Fatalf("point %d outside box: %v", i, p)
			}
		}
	}
}

func TestMixtureStructure(t *testing.T) {
	d := Mixture(9, MixtureSpec{
		Name:      "m",
		Gaussians: []GaussianSpec{{Center: geom.Point{0, 0}, Sigma: 1, N: 10}},
		Uniforms:  []UniformSpec{{Lo: geom.Point{5, 5}, Hi: geom.Point{6, 6}, N: 5}},
		Outliers:  []geom.Point{{100, 100}},
	})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 16 {
		t.Fatalf("len=%d", d.Len())
	}
	if len(d.Outliers) != 1 || d.Cluster[d.Outliers[0]] != -1 {
		t.Fatalf("outliers=%v cluster=%v", d.Outliers, d.Cluster[d.Outliers[0]])
	}
	if got := d.Label(d.Outliers[0]); got != "o1" {
		t.Fatalf("outlier label=%q", got)
	}
	// Gaussian points carry cluster 0, uniform points cluster 1.
	if d.Cluster[0] != 0 || d.Cluster[10] != 1 {
		t.Fatalf("cluster ids=%v", d.Cluster[:12])
	}
}

func TestRandomClustersSize(t *testing.T) {
	d := RandomClusters(5, 1000, 5, 4)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 5 {
		t.Fatalf("dim=%d", d.Dim())
	}
	if math.Abs(float64(d.Len()-1000)) > 4 {
		t.Fatalf("len=%d want ~1000", d.Len())
	}
	ids := map[int]bool{}
	for _, c := range d.Cluster {
		ids[c] = true
	}
	if len(ids) != 4 {
		t.Fatalf("cluster ids=%v", ids)
	}
}

func TestRandomClustersPanicsOnBadArgs(t *testing.T) {
	for _, args := range [][3]int{{0, 2, 1}, {10, 0, 1}, {10, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomClusters%v did not panic", args)
				}
			}()
			RandomClusters(1, args[0], args[1], args[2])
		}()
	}
}

func TestConcat(t *testing.T) {
	a := GaussianCluster(1, geom.Point{0, 0}, 1, 5)
	b := Mixture(2, MixtureSpec{
		Name:      "b",
		Gaussians: []GaussianSpec{{Center: geom.Point{9, 9}, Sigma: 1, N: 3}},
		Outliers:  []geom.Point{{50, 50}},
	})
	m, err := Concat("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 9 {
		t.Fatalf("len=%d", m.Len())
	}
	// Cluster ids must not collide across parts.
	if m.Cluster[0] != 0 || m.Cluster[5] != 1 {
		t.Fatalf("cluster=%v", m.Cluster)
	}
	if len(m.Outliers) != 1 {
		t.Fatalf("outliers=%v", m.Outliers)
	}
	if _, err := Concat("bad", a, GaussianCluster(1, geom.Point{0, 0, 0}, 1, 2)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Concat("empty"); err == nil {
		t.Fatal("empty concat accepted")
	}
}

func TestDS1Shape(t *testing.T) {
	d := DS1(42)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 502 {
		t.Fatalf("DS1 has %d objects, want 502", d.Len())
	}
	if len(d.Outliers) != 2 {
		t.Fatalf("DS1 outliers=%v", d.Outliers)
	}
	if d.Label(d.Outliers[0]) != "o1" || d.Label(d.Outliers[1]) != "o2" {
		t.Fatalf("outlier labels=%q,%q", d.Label(d.Outliers[0]), d.Label(d.Outliers[1]))
	}
	var c1, c2 int
	for _, c := range d.Cluster {
		switch c {
		case 0:
			c1++
		case 1:
			c2++
		}
	}
	if c1 != 400 || c2 != 100 {
		t.Fatalf("C1=%d C2=%d want 400/100", c1, c2)
	}
	// C2 must be denser than C1: compare mean distance to cluster center.
	spread := func(cid int) float64 {
		var sum float64
		var n int
		// centroid
		cen := make(geom.Point, d.Dim())
		for i := 0; i < d.Len(); i++ {
			if d.Cluster[i] != cid {
				continue
			}
			for j, v := range d.Points.At(i) {
				cen[j] += v
			}
			n++
		}
		for j := range cen {
			cen[j] /= float64(n)
		}
		for i := 0; i < d.Len(); i++ {
			if d.Cluster[i] != cid {
				continue
			}
			sum += (geom.Euclidean{}).Distance(d.Points.At(i), cen)
		}
		return sum / float64(n)
	}
	if spread(1) >= spread(0) {
		t.Fatalf("C2 spread %v not denser than C1 spread %v", spread(1), spread(0))
	}
}

func TestFig8DatasetShape(t *testing.T) {
	r := Fig8Dataset(42)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 545 {
		t.Fatalf("len=%d want 545 (10+35+500)", r.Len())
	}
	counts := map[int]int{}
	for _, c := range r.Cluster {
		counts[c]++
	}
	if counts[0] != 10 || counts[1] != 35 || counts[2] != 500 {
		t.Fatalf("cluster sizes=%v", counts)
	}
	for i, rep := range []int{r.RepS1, r.RepS2, r.RepS3} {
		if rep < 0 || rep >= r.Len() {
			t.Fatalf("rep %d out of range: %d", i, rep)
		}
		if r.Cluster[rep] != i {
			t.Fatalf("rep %d is in cluster %d", i, r.Cluster[rep])
		}
	}
}

func TestFig9DatasetShape(t *testing.T) {
	d := Fig9Dataset(42)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200+500+500+500+7 {
		t.Fatalf("len=%d", d.Len())
	}
	if len(d.Outliers) != 7 {
		t.Fatalf("outliers=%d", len(d.Outliers))
	}
}

func TestFig7Gaussian(t *testing.T) {
	d := Fig7Gaussian(1, 500)
	if d.Len() != 500 || d.Dim() != 2 || d.Name != "fig7-gaussian" {
		t.Fatalf("%s len=%d dim=%d", d.Name, d.Len(), d.Dim())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := GaussianCluster(1, geom.Point{0, 0}, 1, 3)
	d.Labels = []string{"a"}
	if err := d.Validate(); err == nil {
		t.Error("short Labels accepted")
	}
	d = GaussianCluster(1, geom.Point{0, 0}, 1, 3)
	d.Cluster = []int{0}
	if err := d.Validate(); err == nil {
		t.Error("short Cluster accepted")
	}
	d = GaussianCluster(1, geom.Point{0, 0}, 1, 3)
	d.Outliers = []int{99}
	if err := d.Validate(); err == nil {
		t.Error("out-of-range outlier accepted")
	}
	if err := (&Dataset{}).Validate(); err == nil {
		t.Error("nil Points accepted")
	}
}

func TestLabelFallback(t *testing.T) {
	d := GaussianCluster(1, geom.Point{0, 0}, 1, 2)
	if got := d.Label(1); got != "#1" {
		t.Fatalf("Label(1)=%q", got)
	}
	if got := d.IndexOfLabel("nope"); got != -1 {
		t.Fatalf("IndexOfLabel=%d", got)
	}
}

// Generators must be deterministic: same seed, same bytes.
func TestGeneratorDeterminismProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := RandomClusters(seed, 200, 3, 3)
		b := RandomClusters(seed, 200, 3, 3)
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !a.Points.At(i).Equal(b.Points.At(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
