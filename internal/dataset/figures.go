package dataset

import (
	"lof/internal/geom"
)

// DS1 reconstructs the 2-d dataset of figure 1: 502 objects — a 400-object
// low-density cluster C1, a 100-object dense cluster C2, and two additional
// objects o1 and o2. o2 sits just outside the dense cluster C2 (a local
// outlier the DB(pct,dmin) framework cannot isolate without also flagging
// all of C1), and o1 lies far from both clusters (a global outlier).
//
// The returned dataset labels the two outliers "o1" and "o2"; C1 has
// cluster id 0 and C2 cluster id 1.
func DS1(seed int64) *Dataset {
	d := Mixture(seed, MixtureSpec{
		Name: "DS1",
		Gaussians: []GaussianSpec{
			{Center: geom.Point{30, 30}, Sigma: 7.0, N: 400}, // C1: sparse
			{Center: geom.Point{75, 75}, Sigma: 1.2, N: 100}, // C2: dense
		},
		Outliers: []geom.Point{
			{62, 10}, // o1: far from both clusters
			{70, 70}, // o2: near C2 but clearly outside its tight core
		},
	})
	return d
}

// Fig7Gaussian is the single-Gaussian dataset behind figure 7 ("fluctuation
// of the outlier-factors within a Gaussian cluster"): LOF minimum, maximum,
// mean and standard deviation are tracked for MinPts 2..50.
func Fig7Gaussian(seed int64, n int) *Dataset {
	d := GaussianCluster(seed, geom.Point{0, 0}, 1.0, n)
	d.Name = "fig7-gaussian"
	return d
}

// Fig8Result bundles the figure 8 dataset with the indices of one
// representative object deep inside each of its three clusters.
type Fig8Result struct {
	*Dataset
	// RepS1, RepS2, RepS3 index a point near the center of S1 (10 objects),
	// S2 (35 objects) and S3 (500 objects) respectively.
	RepS1, RepS2, RepS3 int
}

// Fig8Dataset reconstructs the dataset of figure 8: three clusters S1 (10
// objects), S2 (35 objects) and S3 (500 objects). S1 and S2 are small tight
// clusters near each other; S3 is a large cluster further away. The paper
// tracks LOF over MinPts 10..50 for one object of each cluster: S3 members
// stay near 1, S1 members become strong outliers once MinPts exceeds 10,
// and S2 members become outliers once the combined S1∪S2 neighborhoods
// spill into S3 (around MinPts 45).
func Fig8Dataset(seed int64) *Fig8Result {
	d := Mixture(seed, MixtureSpec{
		Name: "fig8",
		Gaussians: []GaussianSpec{
			{Center: geom.Point{0, 0}, Sigma: 0.25, N: 10},  // S1
			{Center: geom.Point{6, 0}, Sigma: 0.45, N: 35},  // S2
			{Center: geom.Point{30, 0}, Sigma: 3.0, N: 500}, // S3
		},
	})
	res := &Fig8Result{Dataset: d}
	res.RepS1 = nearestToCenter(d, 0, geom.Point{0, 0})
	res.RepS2 = nearestToCenter(d, 1, geom.Point{6, 0})
	res.RepS3 = nearestToCenter(d, 2, geom.Point{30, 0})
	return res
}

// nearestToCenter returns the index of the cluster-cid point closest to c.
func nearestToCenter(d *Dataset, cid int, c geom.Point) int {
	best, bestD := -1, 0.0
	for i := 0; i < d.Len(); i++ {
		if d.Cluster[i] != cid {
			continue
		}
		dist := geom.SqDist(d.Points.At(i), c)
		if best == -1 || dist < bestD {
			best, bestD = i, dist
		}
	}
	return best
}

// Fig9Dataset reconstructs the dataset of figure 9: one low-density
// Gaussian cluster of 200 objects, one dense Gaussian cluster of 500
// objects, two uniform clusters of 500 objects each with different
// densities, and seven planted outliers. At MinPts=40 the uniform clusters'
// members all have LOF ≈ 1, most Gaussian members have LOF ≈ 1 with weak
// outliers at the fringes, and the planted outliers have clearly larger LOF
// values that grow with the relative density of — and distance to — their
// nearest cluster.
func Fig9Dataset(seed int64) *Dataset {
	return Mixture(seed, MixtureSpec{
		Name: "fig9",
		Gaussians: []GaussianSpec{
			{Center: geom.Point{20, 80}, Sigma: 6.0, N: 200}, // low density
			{Center: geom.Point{80, 80}, Sigma: 2.0, N: 500}, // dense
		},
		Uniforms: []UniformSpec{
			{Lo: geom.Point{5, 5}, Hi: geom.Point{45, 35}, N: 500},   // sparse uniform
			{Lo: geom.Point{65, 10}, Hi: geom.Point{90, 28}, N: 500}, // denser uniform
		},
		Outliers: []geom.Point{
			{50, 95}, // between the Gaussians, closer to the sparse one
			{70, 65}, // just off the dense Gaussian
			{92, 90}, // off the dense Gaussian, other side
			{55, 20}, // between the uniform boxes
			{25, 50}, // above the sparse uniform box
			{5, 60},  // far left, isolated
			{98, 45}, // far right, isolated
		},
	})
}
