package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts ReadCSV never panics and that every accepted dataset
// validates and round-trips.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n", false, -1)
	f.Add("name,x\nalice,1\n", true, 0)
	f.Add("", false, -1)
	f.Add("a,b,c\n1,2,3\n", true, -1)
	f.Add("1\n2\nnotanumber\n", false, -1)
	f.Add("1,NaN\n", false, -1)
	f.Add("\"quoted,field\",2\n1,3\n", false, 0)
	f.Fuzz(func(t *testing.T, input string, header bool, labelCol int) {
		if labelCol < -1 || labelCol > 8 {
			labelCol = -1
		}
		d, err := ReadCSV(strings.NewReader(input), "fuzz", CSVOptions{Header: header, LabelColumn: labelCol})
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d, CSVOptions{Header: header, LabelColumn: labelCol}); err != nil {
			t.Fatalf("accepted dataset fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf, "fuzz2", CSVOptions{Header: header, LabelColumn: labelCol})
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != d.Len() || back.Dim() != d.Dim() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				back.Len(), back.Dim(), d.Len(), d.Dim())
		}
	})
}
