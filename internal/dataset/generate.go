package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"lof/internal/geom"
)

// GaussianSpec describes one spherical Gaussian cluster.
type GaussianSpec struct {
	Center geom.Point
	Sigma  float64
	N      int
}

// UniformSpec describes one axis-aligned uniform box cluster.
type UniformSpec struct {
	Lo, Hi geom.Point
	N      int
}

// gaussianPoint draws one point from a spherical Gaussian.
func gaussianPoint(rng *rand.Rand, center geom.Point, sigma float64) geom.Point {
	p := make(geom.Point, len(center))
	for i, c := range center {
		p[i] = c + rng.NormFloat64()*sigma
	}
	return p
}

// uniformPoint draws one point uniformly from the box [lo, hi].
func uniformPoint(rng *rand.Rand, lo, hi geom.Point) geom.Point {
	p := make(geom.Point, len(lo))
	for i := range lo {
		p[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
	}
	return p
}

// GaussianCluster generates n points from a spherical Gaussian around
// center. It is the workload of figure 7.
func GaussianCluster(seed int64, center geom.Point, sigma float64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("gaussian(n=%d,sigma=%g)", n, sigma), len(center), n)
	for i := 0; i < n; i++ {
		b.add(gaussianPoint(rng, center, sigma), 0, "")
	}
	return b.build()
}

// UniformBox generates n points uniformly inside [lo, hi].
func UniformBox(seed int64, lo, hi geom.Point, n int) *Dataset {
	if len(lo) != len(hi) {
		panic("dataset: UniformBox bounds dimension mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("uniform(n=%d)", n), len(lo), n)
	for i := 0; i < n; i++ {
		b.add(uniformPoint(rng, lo, hi), 0, "")
	}
	return b.build()
}

// MixtureSpec describes a dataset of Gaussian and uniform clusters plus
// planted outliers, the general shape of the paper's synthetic evaluation
// data ("generated randomly, containing different numbers of Gaussian
// clusters of different sizes and densities", Sec. 7.4).
type MixtureSpec struct {
	Name      string
	Gaussians []GaussianSpec
	Uniforms  []UniformSpec
	// Outliers are planted verbatim.
	Outliers []geom.Point
}

// Mixture generates the dataset described by spec. Cluster ids are assigned
// in order: Gaussians first, then uniforms; planted outliers get id -1.
func Mixture(seed int64, spec MixtureSpec) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dim := 0
	switch {
	case len(spec.Gaussians) > 0:
		dim = len(spec.Gaussians[0].Center)
	case len(spec.Uniforms) > 0:
		dim = len(spec.Uniforms[0].Lo)
	case len(spec.Outliers) > 0:
		dim = len(spec.Outliers[0])
	default:
		panic("dataset: empty MixtureSpec")
	}
	total := len(spec.Outliers)
	for _, g := range spec.Gaussians {
		total += g.N
	}
	for _, u := range spec.Uniforms {
		total += u.N
	}
	b := newBuilder(spec.Name, dim, total)
	cid := 0
	for _, g := range spec.Gaussians {
		for i := 0; i < g.N; i++ {
			b.add(gaussianPoint(rng, g.Center, g.Sigma), cid, "")
		}
		cid++
	}
	for _, u := range spec.Uniforms {
		for i := 0; i < u.N; i++ {
			b.add(uniformPoint(rng, u.Lo, u.Hi), cid, "")
		}
		cid++
	}
	for i, o := range spec.Outliers {
		b.addOutlier(o.Clone(), fmt.Sprintf("o%d", i+1))
	}
	return b.build()
}

// RandomClusters generates the performance-experiment workload of
// section 7.4: k Gaussian clusters with random centers, sizes and densities
// in d dimensions, totalling roughly n points. The layout is deterministic
// in the seed.
func RandomClusters(seed int64, n, dim, k int) *Dataset {
	if n <= 0 || dim <= 0 || k <= 0 {
		panic(fmt.Sprintf("dataset: RandomClusters invalid n=%d dim=%d k=%d", n, dim, k))
	}
	rng := rand.New(rand.NewSource(seed))
	spec := MixtureSpec{Name: fmt.Sprintf("randclusters(n=%d,d=%d,k=%d)", n, dim, k)}
	// Random relative cluster sizes.
	weights := make([]float64, k)
	var wsum float64
	for i := range weights {
		weights[i] = 0.2 + rng.Float64()
		wsum += weights[i]
	}
	assigned := 0
	for i := 0; i < k; i++ {
		size := int(math.Round(float64(n) * weights[i] / wsum))
		if i == k-1 {
			size = n - assigned
		}
		if size <= 0 {
			size = 1
		}
		assigned += size
		center := make(geom.Point, dim)
		for d := range center {
			center[d] = rng.Float64() * 100
		}
		spec.Gaussians = append(spec.Gaussians, GaussianSpec{
			Center: center,
			Sigma:  0.5 + rng.Float64()*3, // different densities
			N:      size,
		})
	}
	return Mixture(rng.Int63(), spec)
}

// Concat merges datasets into one, offsetting cluster ids so ids stay
// distinct across inputs. Labels are preserved. All inputs must share the
// same dimensionality.
func Concat(name string, parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("dataset: Concat of nothing")
	}
	dim := parts[0].Dim()
	total := 0
	for _, p := range parts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("dataset: Concat dimension mismatch: %d vs %d", p.Dim(), dim)
		}
		total += p.Len()
	}
	b := newBuilder(name, dim, total)
	clusterBase := 0
	for _, p := range parts {
		maxID := -1
		for i := 0; i < p.Len(); i++ {
			cid := 0
			if p.Cluster != nil {
				cid = p.Cluster[i]
			}
			label := ""
			if p.Labels != nil {
				label = p.Labels[i]
			}
			if cid < 0 {
				b.addOutlier(p.Points.At(i).Clone(), label)
				continue
			}
			if cid > maxID {
				maxID = cid
			}
			b.add(p.Points.At(i).Clone(), clusterBase+cid, label)
		}
		clusterBase += maxID + 1
	}
	return b.build(), nil
}
