package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"lof/internal/geom"
)

// The paper's section 7.2 evaluates LOF on the NHL96 player statistics used
// by Knorr and Ng [13]. That dataset is not redistributable, so we build a
// deterministic synthetic league with the same evaluated subspaces and embed
// the documented outlier records (Konstantinov, Barnaby, Osgood, Lemieux,
// Poapst) with statistics matching the paper's description. LOF depends
// only on the geometry of the point set, so reproducing the documented
// extreme records inside realistically-shaped bulk clusters exercises the
// identical code path and reproduces the published rankings.

// HockeyPlayer is one synthetic NHL96-like player record.
type HockeyPlayer struct {
	Name        string
	Games       float64 // games played
	Goals       float64 // goals scored
	Points      float64 // points scored (goals + assists)
	PlusMinus   float64 // plus-minus statistic
	PenaltyMin  float64 // penalty minutes
	ShootingPct float64 // shooting percentage (0..100)
	Role        int     // bulk cluster id (0 grinder, 1 scorer, 2 defenseman, 3 goalie)
}

// HockeyLeague is the full synthetic league. Subspace projections for the
// paper's two tests are derived from it.
type HockeyLeague struct {
	Players []HockeyPlayer
}

// Hockey generates the synthetic league. The league contains about 650 bulk
// players in four role clusters plus the five documented outliers.
func Hockey(seed int64) *HockeyLeague {
	rng := rand.New(rand.NewSource(seed))
	l := &HockeyLeague{}

	clamp := func(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
	r := func(mu, sigma, lo, hi float64) float64 {
		return math.Round(clamp(mu+rng.NormFloat64()*sigma, lo, hi))
	}
	// pos draws a non-negative rounded normal.
	pos := func(mu, sigma float64) float64 {
		return math.Max(0, math.Round(mu+rng.NormFloat64()*sigma))
	}
	// plusMinus draws a smooth plus-minus value, resampling the far tail so
	// no bulk skater exceeds ±30, well short of Konstantinov's +60.
	plusMinus := func(mu, sigma float64) float64 {
		for {
			v := math.Round(mu + rng.NormFloat64()*sigma)
			if v >= -30 && v <= 30 {
				return v
			}
		}
	}
	// pim draws a right-skewed (lognormal) penalty-minute total capped at
	// 315, so the league's PIM distribution is a smooth continuum whose
	// extreme end sits below Barnaby's 335.
	pim := func(muLog, sigmaLog float64) float64 {
		return math.Round(math.Min(math.Exp(muLog+rng.NormFloat64()*sigmaLog), 315))
	}
	shootPct := func(goals, shots float64) float64 {
		if shots <= 0 {
			return 0
		}
		return math.Round(goals/shots*1000) / 10
	}

	// Bulk skaters in three overlapping role populations plus a star tier.
	// All statistics are drawn from smooth unimodal distributions — no hard
	// clamps except the PIM cap — so the synthetic league has no artificial
	// sparse corners that would read as local outliers.
	addSkaters := func(n int, prefix string, role int,
		goalsMu, goalsSigma, assistsMu, assistsSigma, pmMu, pmSigma, pimMuLog, pimSigmaLog, shotsPerGoal float64) {
		for i := 0; i < n; i++ {
			games := r(65, 14, 5, 82)
			// The best bulk season stays below Lemieux's 69 goals and 161
			// points (the real 1995/96 runners-up had 62 and 149).
			goals := math.Min(pos(goalsMu, goalsSigma), 62)
			points := math.Min(goals+pos(assistsMu, assistsSigma), 150)
			shots := math.Max(goals*shotsPerGoal+pos(50, 25), math.Max(goals, 1))
			l.Players = append(l.Players, HockeyPlayer{
				Name:        fmt.Sprintf("%s %03d", prefix, i),
				Games:       games,
				Goals:       goals,
				Points:      points,
				PlusMinus:   plusMinus(pmMu, pmSigma),
				PenaltyMin:  pim(pimMuLog, pimSigmaLog),
				ShootingPct: shootPct(goals, shots),
				Role:        role,
			})
		}
	}
	addSkaters(260, "Grinder", 0, 6, 3, 9, 5, 0, 8, 4.4, 0.73, 9)
	addSkaters(160, "Scorer", 1, 28, 10, 38, 13, 8, 8, 3.3, 0.7, 7)
	addSkaters(180, "Defender", 2, 4, 2.5, 16, 8, 2, 8, 4.1, 0.7, 14)
	// Star tier: the 90-150 point range below Lemieux's 161, so his total
	// is the extreme end of a continuum rather than an isolated island.
	addSkaters(24, "Star", 1, 46, 7, 78, 17, 14, 8, 3.3, 0.7, 6)

	// Goalies: no goals, no shots, few penalty minutes.
	for i := 0; i < 60; i++ {
		l.Players = append(l.Players, HockeyPlayer{
			Name:        fmt.Sprintf("Goalie %02d", i),
			Games:       r(35, 18, 1, 75),
			Goals:       0,
			Points:      pos(1.5, 1.5), // assists only
			PlusMinus:   0,
			PenaltyMin:  pos(8, 6),
			ShootingPct: 0,
			Role:        3,
		})
	}
	// Call-ups: skaters with a handful of games and small-sample shooting
	// percentages, the tier Steve Poapst's 3-game, 50%-shooting record
	// stands just beyond (their percentages top out at 25%).
	for i := 0; i < 16; i++ {
		games := r(4, 2, 1, 9)
		goals := r(0.7, 0.8, 0, 2)
		points := goals + r(1, 1, 0, 3)
		shots := goals + math.Max(3, r(5, 2, 3, 12)) // pct tops out at 25%
		l.Players = append(l.Players, HockeyPlayer{
			Name:        fmt.Sprintf("Callup %02d", i),
			Games:       games,
			Goals:       goals,
			Points:      points,
			PlusMinus:   r(0, 2, -4, 4),
			PenaltyMin:  r(4, 3, 0, 12),
			ShootingPct: shootPct(goals, shots),
			Role:        2,
		})
	}

	// Documented outliers (statistics as described in section 7.2):
	l.Players = append(l.Players,
		// Test 1 top outlier: extreme plus-minus for his point total.
		HockeyPlayer{Name: "Vladimir Konstantinov", Games: 81, Goals: 14, Points: 34,
			PlusMinus: 60, PenaltyMin: 139, ShootingPct: 10.1, Role: 2},
		// Test 1 second outlier: extreme penalty minutes.
		HockeyPlayer{Name: "Matthew Barnaby", Games: 68, Goals: 19, Points: 43,
			PlusMinus: -7, PenaltyMin: 335, ShootingPct: 11.4, Role: 0},
		// Test 2 top outlier: a goalie who scored — 100% shooting.
		HockeyPlayer{Name: "Chris Osgood", Games: 50, Goals: 1, Points: 2,
			PlusMinus: 0, PenaltyMin: 4, ShootingPct: 100, Role: 3},
		// Test 2 second outlier: extreme goal total.
		HockeyPlayer{Name: "Mario Lemieux", Games: 70, Goals: 69, Points: 161,
			PlusMinus: 10, PenaltyMin: 54, ShootingPct: 20.4, Role: 1},
		// Test 2 third outlier: 3 games, 1 goal, 50% shooting.
		HockeyPlayer{Name: "Steve Poapst", Games: 3, Goals: 1, Points: 1,
			PlusMinus: 2, PenaltyMin: 2, ShootingPct: 50, Role: 2},
	)
	return l
}

// Test1 projects the league onto the subspace of the paper's first hockey
// experiment: points scored, plus-minus statistic and penalty minutes.
func (l *HockeyLeague) Test1() *Dataset {
	return l.project("hockey-test1", func(p HockeyPlayer) geom.Point {
		return geom.Point{p.Points, p.PlusMinus, p.PenaltyMin}
	})
}

// Test2 projects the league onto the subspace of the paper's second hockey
// experiment: games played, goals scored and shooting percentage.
func (l *HockeyLeague) Test2() *Dataset {
	return l.project("hockey-test2", func(p HockeyPlayer) geom.Point {
		return geom.Point{p.Games, p.Goals, p.ShootingPct}
	})
}

func (l *HockeyLeague) project(name string, f func(HockeyPlayer) geom.Point) *Dataset {
	if len(l.Players) == 0 {
		panic("dataset: empty hockey league")
	}
	b := newBuilder(name, len(f(l.Players[0])), len(l.Players))
	for _, p := range l.Players {
		b.add(f(p), p.Role, p.Name)
	}
	return b.build()
}
