package dataset

import (
	"math"
	"testing"

	"lof/internal/stats"
)

func TestHockeyLeagueShape(t *testing.T) {
	l := Hockey(42)
	if len(l.Players) < 600 {
		t.Fatalf("league too small: %d", len(l.Players))
	}
	t1 := l.Test1()
	t2 := l.Test2()
	if t1.Dim() != 3 || t2.Dim() != 3 {
		t.Fatalf("dims=%d,%d", t1.Dim(), t2.Dim())
	}
	if t1.Len() != len(l.Players) || t2.Len() != len(l.Players) {
		t.Fatalf("projection lost players")
	}
	for _, d := range []*Dataset{t1, t2} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{
		"Vladimir Konstantinov", "Matthew Barnaby",
		"Chris Osgood", "Mario Lemieux", "Steve Poapst",
	} {
		if t1.IndexOfLabel(name) < 0 {
			t.Errorf("missing player %q", name)
		}
	}
}

func TestHockeyDocumentedOutlierGeometry(t *testing.T) {
	l := Hockey(42)
	t1 := l.Test1()

	// Konstantinov's plus-minus must exceed every bulk player's.
	ik := t1.IndexOfLabel("Vladimir Konstantinov")
	ib := t1.IndexOfLabel("Matthew Barnaby")
	for i := 0; i < t1.Len(); i++ {
		if i == ik {
			continue
		}
		if pm := t1.Points.At(i)[1]; pm >= t1.Points.At(ik)[1] {
			t.Fatalf("player %s plus-minus %v >= Konstantinov's", t1.Label(i), pm)
		}
	}
	// Barnaby's penalty minutes must exceed every bulk player's.
	for i := 0; i < t1.Len(); i++ {
		if i == ib {
			continue
		}
		if pim := t1.Points.At(i)[2]; pim >= t1.Points.At(ib)[2] {
			t.Fatalf("player %s PIM %v >= Barnaby's", t1.Label(i), pim)
		}
	}

	t2 := l.Test2()
	io := t2.IndexOfLabel("Chris Osgood")
	im := t2.IndexOfLabel("Mario Lemieux")
	for i := 0; i < t2.Len(); i++ {
		p := t2.Points.At(i)
		if i != io && p[2] >= t2.Points.At(io)[2] {
			t.Fatalf("player %s shooting%% %v >= Osgood's", t2.Label(i), p[2])
		}
		if i != im && p[1] >= t2.Points.At(im)[1] {
			t.Fatalf("player %s goals %v >= Lemieux's", t2.Label(i), p[1])
		}
	}
	// Poapst: 3 games, 1 goal, 50% shooting as published.
	ip := t2.IndexOfLabel("Steve Poapst")
	p := t2.Points.At(ip)
	if p[0] != 3 || p[1] != 1 || p[2] != 50 {
		t.Fatalf("Poapst record=%v want [3 1 50]", p)
	}
}

func TestSoccerLeagueTable3Statistics(t *testing.T) {
	l := Soccer(42)
	if len(l.Players) != 375 {
		t.Fatalf("players=%d want 375", len(l.Players))
	}
	d := l.Dataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 3 {
		t.Fatalf("dim=%d", d.Dim())
	}

	games, err := stats.Summarize(l.GamesColumn())
	if err != nil {
		t.Fatal(err)
	}
	goals, err := stats.Summarize(l.GoalsColumn())
	if err != nil {
		t.Fatal(err)
	}
	// Table 3 reports: games min 0, median 21, max 34, mean 18.0, std 11.0;
	// goals min 0, median 1, max 23, mean 1.9, std 3.0. The synthetic league
	// must land close to those summary statistics.
	check := func(what string, got, want, tol float64) {
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.2f, want %.2f ± %.2f", what, got, want, tol)
		}
	}
	check("games.min", games.Min, 0, 0)
	check("games.max", games.Max, 34, 0)
	check("games.median", games.Median, 21, 4)
	check("games.mean", games.Mean, 18.0, 2.5)
	check("games.std", games.Std, 11.0, 2.5)
	check("goals.min", goals.Min, 0, 0)
	check("goals.max", goals.Max, 23, 0)
	check("goals.median", goals.Median, 1, 1)
	check("goals.mean", goals.Mean, 1.9, 0.7)
	check("goals.std", goals.Std, 3.0, 1.0)
}

func TestSoccerPublishedOutlierRecords(t *testing.T) {
	l := Soccer(42)
	d := l.Dataset()
	want := []struct {
		name         string
		games, goals float64
		pos          Position
	}{
		{"Michael Preetz", 34, 23, Offense},
		{"Michael Schjönberg", 15, 6, Defense},
		{"Hans-Jörg Butt", 34, 7, Goalie},
		{"Ulf Kirsten", 31, 19, Offense},
		{"Giovane Elber", 21, 13, Offense},
	}
	for _, w := range want {
		i := d.IndexOfLabel(w.name)
		if i < 0 {
			t.Fatalf("missing %q", w.name)
		}
		// The raw player record carries the published Table 3 values.
		p := l.Players[i]
		if p.Games != w.games || p.Goals != w.goals || p.Position != w.pos {
			t.Errorf("%s record=(%v,%v,%v) want (%v,%v,%v)",
				w.name, p.Games, p.Goals, p.Position, w.games, w.goals, w.pos)
		}
		// The detection subspace scales games by 34 and goals-per-game
		// by 0.5, keeping the position code raw.
		v := d.Points.At(i)
		if math.Abs(v[0]-w.games/34) > 1e-12 {
			t.Errorf("%s scaled games=%v want %v", w.name, v[0], w.games/34)
		}
		gpg := w.goals / w.games / 0.5
		if math.Abs(v[1]-gpg) > 1e-12 {
			t.Errorf("%s scaled goals/game=%v want %v", w.name, v[1], gpg)
		}
		if Position(v[2]) != w.pos {
			t.Errorf("%s position=%v want %v", w.name, v[2], w.pos)
		}
	}
	// Butt is the only goalie with any goals.
	for _, p := range l.Players {
		if p.Position == Goalie && p.Goals > 0 && p.Name != "Hans-Jörg Butt" {
			t.Errorf("goalie %s scored %v goals", p.Name, p.Goals)
		}
	}
	// Preetz holds both league maxima, as in the paper.
	for _, p := range l.Players {
		if p.Name == "Michael Preetz" {
			continue
		}
		if p.Goals > 23 || p.Games > 34 {
			t.Errorf("player %s (%v games, %v goals) exceeds Preetz's maxima", p.Name, p.Games, p.Goals)
		}
	}
}

func TestSoccerPositionString(t *testing.T) {
	cases := map[Position]string{Goalie: "Goalie", Defense: "Defense", Center: "Center", Offense: "Offense", Position(9): "Position(9)"}
	for pos, want := range cases {
		if got := pos.String(); got != want {
			t.Errorf("%d.String()=%q want %q", int(pos), got, want)
		}
	}
}

func TestGoalsPerGameZeroGames(t *testing.T) {
	p := SoccerPlayer{Games: 0, Goals: 0}
	if g := p.GoalsPerGame(); g != 0 {
		t.Fatalf("GoalsPerGame=%v", g)
	}
}

func TestColorHistograms(t *testing.T) {
	spec := DefaultColorHistSpec()
	d := ColorHistograms(42, spec)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 64 {
		t.Fatalf("dim=%d", d.Dim())
	}
	wantN := spec.Clusters*spec.PerCluster + spec.Outliers
	if d.Len() != wantN {
		t.Fatalf("len=%d want %d", d.Len(), wantN)
	}
	if len(d.Outliers) != spec.Outliers {
		t.Fatalf("outliers=%d", len(d.Outliers))
	}
	// Each histogram must be simplex-normalized.
	for i := 0; i < d.Len(); i++ {
		var s float64
		for _, v := range d.Points.At(i) {
			if v < 0 {
				t.Fatalf("point %d has negative mass", i)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("point %d mass=%v", i, s)
		}
	}
}

func TestColorHistogramsPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ColorHistograms(1, ColorHistSpec{Clusters: 0, PerCluster: 1})
}
