package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"lof/internal/geom"
)

// The paper's section 7.3 evaluates LOF on the 375-player database of the
// German "Fußball 1. Bundesliga", season 1998/99, with the subspace
// (games played, average goals per game, position). That database is not
// available, so we generate a deterministic 375-player league whose
// position-cluster structure and column summary statistics match Table 3
// (games: min 0, median 21, max 34, mean 18.0, std 11.0; goals: min 0,
// median 1, max 23, mean 1.9, std 3.0) and embed the five published outlier
// records verbatim.

// Position is a soccer position, coded as an integer exactly as in the
// paper's experiment.
type Position int

// Position codes. The paper codes position "as an integer"; we use 1..4.
const (
	Goalie  Position = 1
	Defense Position = 2
	Center  Position = 3
	Offense Position = 4
)

// String returns the position name.
func (p Position) String() string {
	switch p {
	case Goalie:
		return "Goalie"
	case Defense:
		return "Defense"
	case Center:
		return "Center"
	case Offense:
		return "Offense"
	default:
		return fmt.Sprintf("Position(%d)", int(p))
	}
}

// SoccerPlayer is one player record of the synthetic Bundesliga season.
type SoccerPlayer struct {
	Name     string
	Games    float64
	Goals    float64
	Position Position
}

// GoalsPerGame returns the derived average-goals-per-game feature. Players
// with zero games have a zero average.
func (p SoccerPlayer) GoalsPerGame() float64 {
	if p.Games == 0 {
		return 0
	}
	return p.Goals / p.Games
}

// SoccerLeague is the 375-player synthetic season.
type SoccerLeague struct {
	Players []SoccerPlayer
}

// Soccer generates the synthetic league: 370 bulk players across the four
// position clusters plus the five outliers of Table 3.
func Soccer(seed int64) *SoccerLeague {
	rng := rand.New(rand.NewSource(seed))
	l := &SoccerLeague{}

	clamp := func(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
	games := func(mu, sigma float64) float64 {
		return math.Round(clamp(mu+rng.NormFloat64()*sigma, 0, 34))
	}
	// goalsFor draws a goal total conditioned on games played: one scoring
	// chance per game with the position's per-game rate (binomial), so goal
	// totals concentrate around rate·games and no bulk player's
	// goals-per-game average rivals the published outliers' (Elber: 0.62,
	// Preetz: 0.68).
	goalsFor := func(rate, capRate, games float64) float64 {
		g := 0.0
		for i := 0; i < int(games); i++ {
			if rng.Float64() < rate {
				g++
			}
		}
		// Small-sample/position cap: a defender with 2 goals in 10 games
		// would rival the published outliers' per-game averages by luck
		// alone, which real position roles make vanishingly rare.
		if max := math.Floor(capRate * games); g > max {
			g = max
		}
		return g
	}

	// Every position cluster starts with a block of never-fielded reserves
	// (identical records at 0 games, 0 goals): real squads carry them, and
	// their presence keeps the zero-games corner of each cluster dense
	// rather than leaving one isolated fringe player per position there.
	const reserves = 7
	add := func(n int, pos Position, prefix string, gamesMu, gamesSigma, rate, capRate float64) {
		for i := 0; i < n; i++ {
			gm := 0.0
			if i >= reserves {
				gm = games(gamesMu, gamesSigma)
			}
			l.Players = append(l.Players, SoccerPlayer{
				Name:     fmt.Sprintf("%s %03d", prefix, i),
				Games:    gm,
				Goals:    goalsFor(rate, capRate, gm),
				Position: pos,
			})
		}
	}

	// 370 bulk players. Squads carry reserves, so each cluster includes
	// many low-game players, keeping the games column spread wide
	// (paper: mean 18.0, std 11.0) and the goals column concentrated at
	// small values (median 1, mean 1.9). Scoring rates per game rise from
	// goalies (never score, except Butt) toward forwards.
	// Goalies outnumber MinPtsUB=50 (three per team in a real season) so
	// the goalie cluster is large enough that its deep members keep
	// LOF ≈ 1 across the whole swept range.
	add(55, Goalie, "Keeper", 21, 10, 0, 0)
	add(115, Defense, "Back", 21, 11, 0.04, 0.15)
	add(115, Center, "Mid", 21, 11, 0.07, 0.18)
	add(85, Offense, "Striker", 21, 11, 0.20, 0.25)

	// The five published outliers (Table 3 feature vectors, verbatim).
	l.Players = append(l.Players,
		SoccerPlayer{Name: "Michael Preetz", Games: 34, Goals: 23, Position: Offense},
		SoccerPlayer{Name: "Michael Schjönberg", Games: 15, Goals: 6, Position: Defense},
		SoccerPlayer{Name: "Hans-Jörg Butt", Games: 34, Goals: 7, Position: Goalie},
		SoccerPlayer{Name: "Ulf Kirsten", Games: 31, Goals: 19, Position: Offense},
		SoccerPlayer{Name: "Giovane Elber", Games: 21, Goals: 13, Position: Offense},
	)
	return l
}

// Dataset projects the league onto the paper's evaluated 3-d subspace:
// number of games, average goals per game, and the integer position code.
// The games and goals-per-game columns are scaled to comparable ranges
// (games by the 34-game season length, goals-per-game by 0.5, the order of
// the league-best averages) — without such scaling the games column would
// dominate every distance and the dataset could not "be partitioned into
// four clusters corresponding to the positions" as the paper observes.
func (l *SoccerLeague) Dataset() *Dataset {
	if len(l.Players) == 0 {
		panic("dataset: empty soccer league")
	}
	b := newBuilder("soccer", 3, len(l.Players))
	for _, p := range l.Players {
		b.add(geom.Point{p.Games / 34, p.GoalsPerGame() / 0.5, float64(p.Position)}, int(p.Position)-1, p.Name)
	}
	return b.build()
}

// GamesColumn returns the games-played column for summary statistics.
func (l *SoccerLeague) GamesColumn() []float64 {
	out := make([]float64, len(l.Players))
	for i, p := range l.Players {
		out[i] = p.Games
	}
	return out
}

// GoalsColumn returns the goals-scored column for summary statistics.
func (l *SoccerLeague) GoalsColumn() []float64 {
	out := make([]float64, len(l.Players))
	for i, p := range l.Players {
		out[i] = p.Goals
	}
	return out
}
