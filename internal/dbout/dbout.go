// Package dbout implements the DB(pct, dmin) distance-based outlier
// definition of Knorr and Ng ([13], Definition 2 of the paper), the
// baseline LOF is contrasted with: an object p is a DB(pct, dmin)-outlier
// if at most (100−pct)% of the objects of the dataset lie within distance
// dmin of p. Two algorithms are provided — the quadratic nested-loop scan
// and the cell-based algorithm of [13] for low-dimensional Euclidean data —
// and both return identical labellings.
package dbout

import (
	"fmt"
	"math"

	"lof/internal/geom"
	"lof/internal/index"
)

// Params are the two parameters of the DB(pct, dmin) definition.
type Params struct {
	// Pct is the percentage (0..100) of objects that must lie farther than
	// Dmin for p to be an outlier.
	Pct float64
	// Dmin is the distance threshold.
	Dmin float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if math.IsNaN(p.Pct) || p.Pct < 0 || p.Pct > 100 {
		return fmt.Errorf("dbout: pct must be in [0,100], got %v", p.Pct)
	}
	if math.IsNaN(p.Dmin) || p.Dmin < 0 {
		return fmt.Errorf("dbout: dmin must be non-negative, got %v", p.Dmin)
	}
	return nil
}

// threshold returns M, the maximum number of objects (including p itself,
// since d(p,p)=0 ≤ dmin) allowed within dmin of an outlier.
func (p Params) threshold(n int) int {
	return int(math.Floor((100 - p.Pct) / 100 * float64(n)))
}

// Detect labels every point with the nested-loop algorithm: p is an
// outlier iff |{q ∈ D : d(p,q) ≤ dmin}| ≤ (100−pct)%·|D|. The inner scan
// stops early once the count exceeds the threshold.
func Detect(pts *geom.Points, m geom.Metric, params Params) ([]bool, error) {
	if pts == nil || pts.Len() == 0 {
		return nil, fmt.Errorf("dbout: empty dataset")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	n := pts.Len()
	maxInside := params.threshold(n)
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		count := 0
		outlier := true
		pi := pts.At(i)
		for j := 0; j < n; j++ {
			if m.Distance(pi, pts.At(j)) <= params.Dmin {
				count++
				if count > maxInside {
					outlier = false
					break
				}
			}
		}
		out[i] = outlier
	}
	return out, nil
}

// DetectIndexed labels every point using range queries against a spatial
// index over the same dataset — the "index-based algorithms" branch of [13].
// A single reusable cursor serves all n range probes, and each probe stops
// contributing work once sorted (the count is just the result length, self
// included since d(p,p)=0 ≤ dmin). The labelling equals Detect's for any
// exact index built over pts with the same metric.
func DetectIndexed(pts *geom.Points, ix index.Index, params Params) ([]bool, error) {
	if pts == nil || pts.Len() == 0 {
		return nil, fmt.Errorf("dbout: empty dataset")
	}
	if ix == nil {
		return nil, fmt.Errorf("dbout: nil index")
	}
	if ix.Len() != pts.Len() {
		return nil, fmt.Errorf("dbout: index covers %d points, dataset has %d", ix.Len(), pts.Len())
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := pts.Len()
	maxInside := params.threshold(n)
	out := make([]bool, n)
	cur := index.NewCursor(ix)
	var buf []index.Neighbor
	for i := 0; i < n; i++ {
		buf = cur.RangeInto(buf[:0], pts.At(i), params.Dmin, index.ExcludeNone)
		out[i] = len(buf) <= maxInside
	}
	return out, nil
}

// DetectCellBased labels every point with the cell-based algorithm of [13]
// for the Euclidean metric: the space is partitioned into cells of side
// dmin/(2√d) so that
//
//   - points within one cell are at most dmin/2 apart,
//   - points in cells at Chebyshev cell distance 1 are at most dmin apart,
//   - points in cells farther than ⌈2√d⌉+1 are more than dmin apart,
//
// letting whole cells be labeled without pairwise distance computations.
// Individual distances are only computed for cells the counting rules
// cannot decide. The labelling equals Detect's.
func DetectCellBased(pts *geom.Points, params Params) ([]bool, error) {
	if pts == nil || pts.Len() == 0 {
		return nil, fmt.Errorf("dbout: empty dataset")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Dmin == 0 {
		// Degenerate cells; fall back to the nested loop.
		return Detect(pts, geom.Euclidean{}, params)
	}
	n := pts.Len()
	dim := pts.Dim()
	side := params.Dmin / (2 * math.Sqrt(float64(dim)))
	lo, hi := pts.Bounds()

	res := make([]int, dim)
	stride := make([]int, dim)
	total := 1
	for d := 0; d < dim; d++ {
		span := hi[d] - lo[d]
		cells := int(math.Floor(span/side)) + 1
		if cells < 1 {
			cells = 1
		}
		res[d] = cells
		stride[d] = total
		total *= cells
		if total > 1<<24 {
			// The lattice would not fit in memory (tiny dmin over a wide
			// extent): the nested loop is the better tool.
			return Detect(pts, geom.Euclidean{}, params)
		}
	}
	cellOf := func(p geom.Point) int {
		li := 0
		for d := 0; d < dim; d++ {
			v := int((p[d] - lo[d]) / side)
			if v >= res[d] {
				v = res[d] - 1
			}
			li += v * stride[d]
		}
		return li
	}
	cells := make([][]int32, total)
	for i := 0; i < n; i++ {
		c := cellOf(pts.At(i))
		cells[c] = append(cells[c], int32(i))
	}

	maxInside := params.threshold(n)
	outer := int(math.Ceil(2*math.Sqrt(float64(dim)))) + 1
	metric := geom.Euclidean{}
	out := make([]bool, n)

	// Enumerate occupied cells; reconstruct multi-coordinates on the fly.
	coord := make([]int, dim)
	var visit func(d, li int)
	visit = func(d, li int) {
		if d == dim {
			ix := cells[li]
			if len(ix) == 0 {
				return
			}
			decideCell(pts, metric, params, cells, coord, res, stride, ix, maxInside, outer, out)
			return
		}
		for v := 0; v < res[d]; v++ {
			coord[d] = v
			visit(d+1, li+v*stride[d])
		}
	}
	visit(0, 0)
	return out, nil
}

// decideCell labels the points of one occupied cell using the layer counts,
// falling back to per-point distance checks when the counts are
// inconclusive.
func decideCell(pts *geom.Points, metric geom.Euclidean, params Params,
	cells [][]int32, coord, res, stride []int, members []int32,
	maxInside, outer int, out []bool) {

	dim := len(coord)
	// countWithin sums occupancy of cells with Chebyshev distance ≤ radius.
	countWithin := func(radius int) int {
		count := 0
		c := make([]int, dim)
		var rec func(d int)
		rec = func(d int) {
			if d == dim {
				li := 0
				for k, v := range c {
					li += v * stride[k]
				}
				count += len(cells[li])
				return
			}
			for v := coord[d] - radius; v <= coord[d]+radius; v++ {
				if v < 0 || v >= res[d] {
					continue
				}
				c[d] = v
				rec(d + 1)
			}
		}
		rec(0)
		return count
	}

	// Rule 1: cell plus layer-1 already holds more than M points — every
	// point there has more than M companions within dmin: none outliers.
	if countWithin(1) > maxInside {
		return // out entries stay false
	}
	// Rule 2: even the full candidate region holds at most M points — all
	// points beyond it are farther than dmin, so everyone here is an
	// outlier.
	if countWithin(outer) <= maxInside {
		for _, pi := range members {
			out[pi] = true
		}
		return
	}
	// Undecided: check each member against the candidate region.
	cand := make([]int32, 0, 64)
	c := make([]int, dim)
	var rec func(d int)
	rec = func(d int) {
		if d == dim {
			li := 0
			for k, v := range c {
				li += v * stride[k]
			}
			cand = append(cand, cells[li]...)
			return
		}
		for v := coord[d] - outer; v <= coord[d]+outer; v++ {
			if v < 0 || v >= res[d] {
				continue
			}
			c[d] = v
			rec(d + 1)
		}
	}
	rec(0)
	for _, pi := range members {
		count := 0
		outlier := true
		p := pts.At(int(pi))
		for _, qi := range cand {
			if metric.Distance(p, pts.At(int(qi))) <= params.Dmin {
				count++
				if count > maxInside {
					outlier = false
					break
				}
			}
		}
		out[pi] = outlier
	}
}

// Outliers returns the indices labeled true.
func Outliers(labels []bool) []int {
	var out []int
	for i, b := range labels {
		if b {
			out = append(out, i)
		}
	}
	return out
}
