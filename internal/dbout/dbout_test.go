package dbout

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/dataset"
	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/grid"
	"lof/internal/index/kdtree"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Pct: 99, Dmin: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{
		{Pct: -1, Dmin: 1},
		{Pct: 101, Dmin: 1},
		{Pct: math.NaN(), Dmin: 1},
		{Pct: 99, Dmin: -1},
		{Pct: 99, Dmin: math.NaN()},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestDetectSimple(t *testing.T) {
	// 10-point tight cluster plus one distant point; with pct demanding
	// nearly everything be far away, only the distant point qualifies.
	rows := []geom.Point{
		{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.2, 0}, {0, 0.2},
		{0.2, 0.1}, {0.1, 0.2}, {0.2, 0.2}, {0.05, 0.05},
		{50, 50},
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Detect(pts, nil, Params{Pct: 90, Dmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := Outliers(labels)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("outliers=%v want [10]", got)
	}
}

func TestDetectThresholdBoundary(t *testing.T) {
	// Three collinear points 1 apart; dmin=1, so each endpoint sees 2
	// objects within dmin (itself + middle), the middle sees all 3. With
	// pct=30 the threshold is M=⌊0.7·3⌋=2: endpoints are outliers, the
	// middle point is not.
	pts, err := geom.FromRows([]geom.Point{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Detect(pts, nil, Params{Pct: 30, Dmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels=%v want %v", labels, want)
		}
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, nil, Params{Pct: 99, Dmin: 1}); err == nil {
		t.Error("nil points accepted")
	}
	pts, _ := geom.FromRows([]geom.Point{{0, 0}})
	if _, err := Detect(pts, nil, Params{Pct: 200, Dmin: 1}); err == nil {
		t.Error("bad pct accepted")
	}
	if _, err := DetectCellBased(nil, Params{Pct: 99, Dmin: 1}); err == nil {
		t.Error("cell-based nil points accepted")
	}
	if _, err := DetectCellBased(pts, Params{Pct: -2, Dmin: 1}); err == nil {
		t.Error("cell-based bad pct accepted")
	}
}

// The cell-based algorithm must agree with the nested loop on random data
// across dimensions and parameter settings.
func TestCellBasedMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		dim := 1 + rng.Intn(3)
		n := 50 + rng.Intn(200)
		pts := geom.NewPoints(dim, n)
		for i := 0; i < n; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				// Two clusters to give both outliers and dense regions.
				if rng.Float64() < 0.5 {
					p[d] = rng.NormFloat64()
				} else {
					p[d] = 8 + rng.NormFloat64()
				}
			}
			if err := pts.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		params := Params{Pct: 90 + rng.Float64()*9.9, Dmin: 0.5 + rng.Float64()*3}
		want, err := Detect(pts, geom.Euclidean{}, params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectCellBased(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (dim=%d n=%d pct=%.2f dmin=%.2f): point %d cell=%v loop=%v",
					trial, dim, n, params.Pct, params.Dmin, i, got[i], want[i])
			}
		}
	}
}

func TestIndexedMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 12; trial++ {
		dim := 1 + rng.Intn(3)
		n := 50 + rng.Intn(200)
		pts := geom.NewPoints(dim, n)
		for i := 0; i < n; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				if rng.Float64() < 0.5 {
					p[d] = rng.NormFloat64()
				} else {
					p[d] = 8 + rng.NormFloat64()
				}
			}
			if err := pts.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		var m geom.Metric = geom.Euclidean{}
		if trial%3 == 1 {
			m = geom.Manhattan{}
		}
		var ix index.Index = grid.New(pts, m)
		if trial%2 == 1 {
			ix = kdtree.New(pts, m)
		}
		params := Params{Pct: 90 + rng.Float64()*9.9, Dmin: 0.5 + rng.Float64()*3}
		want, err := Detect(pts, m, params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectIndexed(pts, ix, params)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (dim=%d n=%d pct=%.2f dmin=%.2f): point %d indexed=%v loop=%v",
					trial, dim, n, params.Pct, params.Dmin, i, got[i], want[i])
			}
		}
	}
}

func TestIndexedErrors(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Pct: 90, Dmin: 1}
	if _, err := DetectIndexed(nil, grid.New(pts, nil), params); err == nil {
		t.Fatal("nil points accepted")
	}
	if _, err := DetectIndexed(pts, nil, params); err == nil {
		t.Fatal("nil index accepted")
	}
	other := geom.NewPoints(2, 0)
	if err := other.Append(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := DetectIndexed(pts, grid.New(other, nil), params); err == nil {
		t.Fatal("mismatched index accepted")
	}
	if _, err := DetectIndexed(pts, grid.New(pts, nil), Params{Pct: -1, Dmin: 1}); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestCellBasedDminZeroFallback(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectCellBased(pts, Params{Pct: 50, Dmin: 0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Detect(pts, nil, Params{Pct: 50, Dmin: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

// The section 3 argument on DS1: there is no (pct, dmin) labelling o2 an
// outlier without also labelling C1 members. We verify the two regimes the
// paper walks through.
func TestDS1Section3Argument(t *testing.T) {
	d := dataset.DS1(42)
	pts := d.Points
	o2 := d.Outliers[1]
	metric := geom.Euclidean{}

	// d(o2, C2): distance from o2 to the nearest C2 member.
	dO2C2 := math.Inf(1)
	for i := 0; i < d.Len(); i++ {
		if d.Cluster[i] != 1 {
			continue
		}
		if dist := metric.Distance(pts.At(o2), pts.At(i)); dist < dO2C2 {
			dO2C2 = dist
		}
	}

	countC1FalsePositives := func(labels []bool) int {
		c := 0
		for i, isOut := range labels {
			if isOut && d.Cluster[i] == 0 {
				c++
			}
		}
		return c
	}

	// Sweep pct and dmin on both sides of d(o2, C2): whenever o2 is
	// flagged, some C1 objects must be flagged as well.
	foundO2Flagged := false
	for _, dmin := range []float64{dO2C2 * 0.5, dO2C2 * 0.9, dO2C2 * 1.1, dO2C2 * 2, dO2C2 * 4} {
		for _, pct := range []float64{95, 98, 99, 99.6} {
			labels, err := Detect(pts, metric, Params{Pct: pct, Dmin: dmin})
			if err != nil {
				t.Fatal(err)
			}
			if labels[o2] {
				foundO2Flagged = true
				if countC1FalsePositives(labels) == 0 {
					t.Fatalf("pct=%v dmin=%v flags o2 without flagging any C1 member — "+
						"contradicts the section 3 impossibility argument", pct, dmin)
				}
			}
		}
	}
	if !foundO2Flagged {
		t.Fatal("sweep never flagged o2; test is vacuous")
	}
}

func TestOutliersHelper(t *testing.T) {
	got := Outliers([]bool{true, false, true, false})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Outliers=%v", got)
	}
	if got := Outliers(nil); got != nil {
		t.Fatalf("Outliers(nil)=%v", got)
	}
}
