// Package dbscan implements the DBSCAN density-based clustering algorithm
// of Ester, Kriegel, Sander and Xu ([7] in the paper). The paper motivates
// LOF partly against clustering-based outlier handling: "the exceptions
// (called 'noise' in the context of clustering) are typically just
// tolerated or ignored ... the notions of outliers are essentially binary".
// This substrate makes that comparison executable: the noise-vs-LOF
// experiment contrasts DBSCAN's binary noise set with LOF's graded
// outlier factors on the same data.
package dbscan

import (
	"fmt"

	"lof/internal/geom"
	"lof/internal/index"
)

// Noise is the cluster id assigned to noise points.
const Noise = -1

// Params are the standard DBSCAN parameters.
type Params struct {
	// Eps is the neighborhood radius.
	Eps float64
	// MinPts is the core-point density threshold: a point is a core point
	// when its eps-neighborhood (including itself) holds at least MinPts
	// points.
	MinPts int
}

// Result is a flat clustering: cluster ids per point, Noise (-1) for noise.
type Result struct {
	// Labels[i] is point i's cluster id, or Noise.
	Labels []int
	// Clusters is the number of clusters found.
	Clusters int
	// CorePoint[i] reports whether point i satisfies the core condition.
	CorePoint []bool
}

// Run clusters all indexed points.
func Run(pts *geom.Points, ix index.Index, p Params) (*Result, error) {
	if pts == nil || ix == nil {
		return nil, fmt.Errorf("dbscan: nil points or index")
	}
	if p.MinPts < 1 {
		return nil, fmt.Errorf("dbscan: MinPts must be positive, got %d", p.MinPts)
	}
	if !(p.Eps > 0) {
		return nil, fmt.Errorf("dbscan: Eps must be positive, got %v", p.Eps)
	}
	n := pts.Len()
	res := &Result{
		Labels:    make([]int, n),
		CorePoint: make([]bool, n),
	}
	const unvisited = -2
	for i := range res.Labels {
		res.Labels[i] = unvisited
	}

	// neighborhood returns the eps-neighborhood including the point itself
	// (the DBSCAN convention for the MinPts count).
	neighborhood := func(i int) []int {
		nn := ix.Range(pts.At(i), p.Eps, i)
		out := make([]int, 0, len(nn)+1)
		out = append(out, i)
		for _, nb := range nn {
			out = append(out, nb.Index)
		}
		return out
	}

	cluster := 0
	for i := 0; i < n; i++ {
		if res.Labels[i] != unvisited {
			continue
		}
		seeds := neighborhood(i)
		if len(seeds) < p.MinPts {
			res.Labels[i] = Noise
			continue
		}
		// i is a core point: start a new cluster and expand.
		res.CorePoint[i] = true
		res.Labels[i] = cluster
		queue := append([]int(nil), seeds[1:]...) // exclude i itself
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if res.Labels[q] == Noise {
				res.Labels[q] = cluster // border point claimed by the cluster
				continue
			}
			if res.Labels[q] != unvisited {
				continue
			}
			res.Labels[q] = cluster
			qn := neighborhood(q)
			if len(qn) >= p.MinPts {
				res.CorePoint[q] = true
				queue = append(queue, qn[1:]...)
			}
		}
		cluster++
	}
	res.Clusters = cluster
	return res, nil
}

// NoisePoints returns the indices labeled Noise.
func (r *Result) NoisePoints() []int {
	var out []int
	for i, l := range r.Labels {
		if l == Noise {
			out = append(out, i)
		}
	}
	return out
}

// ClusterSizes returns the member count per cluster id.
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.Clusters)
	for _, l := range r.Labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}
