package dbscan

import (
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
)

func twoBlobsAndNoise(t *testing.T) (*geom.Points, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 80; i++ {
		if err := pts.Append(geom.Point{rng.NormFloat64() * 0.4, rng.NormFloat64() * 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		if err := pts.Append(geom.Point{15 + rng.NormFloat64()*0.4, rng.NormFloat64() * 0.4}); err != nil {
			t.Fatal(err)
		}
	}
	noiseIdx := pts.Len()
	if err := pts.Append(geom.Point{7, 7}); err != nil {
		t.Fatal(err)
	}
	return pts, noiseIdx
}

func TestRunTwoClusters(t *testing.T) {
	pts, noiseIdx := twoBlobsAndNoise(t)
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{Eps: 1.0, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("clusters=%d", res.Clusters)
	}
	if res.Labels[noiseIdx] != Noise {
		t.Fatalf("isolated point labeled %d", res.Labels[noiseIdx])
	}
	// Points within one ground-truth blob share a label.
	for i := 1; i < 80; i++ {
		if res.Labels[i] != res.Labels[0] && res.Labels[i] != Noise {
			t.Fatalf("blob 1 split: labels[%d]=%d", i, res.Labels[i])
		}
	}
	sizes := res.ClusterSizes()
	if len(sizes) != 2 || sizes[0] < 70 || sizes[1] < 70 {
		t.Fatalf("sizes=%v", sizes)
	}
	if got := res.NoisePoints(); len(got) == 0 {
		t.Fatal("no noise points")
	}
}

func TestRunAllNoiseWhenEpsTiny(t *testing.T) {
	pts, _ := twoBlobsAndNoise(t)
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{Eps: 1e-9, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 || len(res.NoisePoints()) != pts.Len() {
		t.Fatalf("clusters=%d noise=%d", res.Clusters, len(res.NoisePoints()))
	}
}

func TestRunOneClusterWhenEpsHuge(t *testing.T) {
	pts, _ := twoBlobsAndNoise(t)
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{Eps: 100, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 || len(res.NoisePoints()) != 0 {
		t.Fatalf("clusters=%d noise=%d", res.Clusters, len(res.NoisePoints()))
	}
}

func TestBorderPointAssignment(t *testing.T) {
	// A chain: dense core plus one border point reachable from a core
	// point but itself not core.
	rows := []geom.Point{
		{0, 0}, {0.1, 0}, {0.2, 0}, {0.1, 0.1}, {0, 0.1}, // dense core
		{0.8, 0}, // border: within eps of one core point, too few own neighbors
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{Eps: 0.7, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[5] != res.Labels[0] {
		t.Fatalf("border point labeled %d, cluster is %d", res.Labels[5], res.Labels[0])
	}
	if res.CorePoint[5] {
		t.Fatal("border point marked core")
	}
	if !res.CorePoint[0] {
		t.Fatal("core point not marked core")
	}
}

func TestRunValidation(t *testing.T) {
	pts, _ := twoBlobsAndNoise(t)
	ix := linear.New(pts, nil)
	if _, err := Run(nil, ix, Params{Eps: 1, MinPts: 3}); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := Run(pts, nil, Params{Eps: 1, MinPts: 3}); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := Run(pts, ix, Params{Eps: 0, MinPts: 3}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Run(pts, ix, Params{Eps: 1, MinPts: 0}); err == nil {
		t.Error("MinPts=0 accepted")
	}
}
