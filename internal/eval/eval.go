// Package eval provides detection-quality metrics for planted-outlier
// benchmarks: precision/recall at a cutoff, average precision, and the
// area under the ROC curve. The harness uses them to quantify the paper's
// central qualitative claim — that LOF finds local outliers the global
// methods miss — as a measurable ranking-quality gap.
package eval

import (
	"fmt"
	"sort"
)

// Confusion summarizes a thresholded detection against ground truth.
type Confusion struct {
	TP, FP, FN, TN int
}

// Precision returns TP/(TP+FP), 0 when nothing was flagged.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// AtTopK thresholds a score ranking at its top k entries and counts the
// confusion against the positive set.
func AtTopK(scores []float64, positives map[int]bool, k int) (Confusion, error) {
	if k < 0 || k > len(scores) {
		return Confusion{}, fmt.Errorf("eval: k=%d out of range for %d scores", k, len(scores))
	}
	order := rankDesc(scores)
	var c Confusion
	flagged := map[int]bool{}
	for _, i := range order[:k] {
		flagged[i] = true
	}
	for i := range scores {
		switch {
		case flagged[i] && positives[i]:
			c.TP++
		case flagged[i]:
			c.FP++
		case positives[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c, nil
}

// ROCAUC returns the area under the ROC curve of the scores against the
// positive set: the probability that a uniformly random positive outranks
// a uniformly random negative, with ties counted half. It errors when
// either class is empty.
func ROCAUC(scores []float64, positives map[int]bool) (float64, error) {
	var pos, neg []float64
	for i, s := range scores {
		if positives[i] {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0, fmt.Errorf("eval: ROCAUC needs both classes (pos=%d neg=%d)", len(pos), len(neg))
	}
	// Rank-sum formulation with midranks for ties.
	type item struct {
		s   float64
		pos bool
	}
	all := make([]item, 0, len(pos)+len(neg))
	for _, s := range pos {
		all = append(all, item{s, true})
	}
	for _, s := range neg {
		all = append(all, item{s, false})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].s < all[b].s })
	var rankSum float64
	i := 0
	for i < len(all) {
		j := i
		for j < len(all) && all[j].s == all[i].s {
			j++
		}
		// Midrank for the tie group [i, j).
		mid := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if all[k].pos {
				rankSum += mid
			}
		}
		i = j
	}
	nPos, nNeg := float64(len(pos)), float64(len(neg))
	return (rankSum - nPos*(nPos+1)/2) / (nPos * nNeg), nil
}

// AveragePrecision returns the mean of precision values at each positive's
// rank position (the area under the precision-recall curve for a ranking).
func AveragePrecision(scores []float64, positives map[int]bool) (float64, error) {
	total := 0
	for i := range scores {
		if positives[i] {
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("eval: no positives")
	}
	order := rankDesc(scores)
	var sum float64
	hits := 0
	for rank, i := range order {
		if positives[i] {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	return sum / float64(total), nil
}

// rankDesc returns indices sorted by descending score, ties by ascending
// index.
func rankDesc(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
