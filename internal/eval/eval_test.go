package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, FN: 2, TN: 10}
	if got := c.Precision(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("precision=%v", got)
	}
	if got := c.Recall(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("recall=%v", got)
	}
	want := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if got := c.F1(); math.Abs(got-want) > 1e-12 {
		t.Errorf("f1=%v", got)
	}
	empty := Confusion{}
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty confusion not zero")
	}
}

func TestAtTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.8}
	positives := map[int]bool{1: true, 3: true}
	c, err := AtTopK(scores, positives, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 2 || c.FP != 0 || c.FN != 0 || c.TN != 2 {
		t.Fatalf("confusion=%+v", c)
	}
	c, err = AtTopK(scores, positives, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FN != 1 {
		t.Fatalf("confusion=%+v", c)
	}
	if _, err := AtTopK(scores, positives, 5); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := AtTopK(scores, positives, -1); err == nil {
		t.Error("negative k accepted")
	}
}

func TestROCAUCPerfectAndInverted(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	positives := map[int]bool{0: true, 1: true}
	auc, err := ROCAUC(scores, positives)
	if err != nil || auc != 1 {
		t.Fatalf("auc=%v err=%v", auc, err)
	}
	inverted := map[int]bool{2: true, 3: true}
	auc, err = ROCAUC(scores, inverted)
	if err != nil || auc != 0 {
		t.Fatalf("inverted auc=%v err=%v", auc, err)
	}
}

func TestROCAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 by the midrank convention.
	scores := []float64{1, 1, 1, 1}
	auc, err := ROCAUC(scores, map[int]bool{0: true, 1: true})
	if err != nil || math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("auc=%v err=%v", auc, err)
	}
}

func TestROCAUCErrors(t *testing.T) {
	if _, err := ROCAUC([]float64{1, 2}, map[int]bool{}); err == nil {
		t.Error("no positives accepted")
	}
	if _, err := ROCAUC([]float64{1, 2}, map[int]bool{0: true, 1: true}); err == nil {
		t.Error("no negatives accepted")
	}
}

// AUC equals the empirical probability that a random positive outranks a
// random negative.
func TestROCAUCMatchesPairwiseProbability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		scores := make([]float64, n)
		positives := map[int]bool{}
		for i := range scores {
			scores[i] = float64(rng.Intn(10)) // coarse: force ties
			if rng.Float64() < 0.4 {
				positives[i] = true
			}
		}
		if len(positives) == 0 || len(positives) == n {
			return true
		}
		auc, err := ROCAUC(scores, positives)
		if err != nil {
			return false
		}
		var wins, total float64
		for i := range scores {
			if !positives[i] {
				continue
			}
			for j := range scores {
				if positives[j] {
					continue
				}
				total++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					wins += 0.5
				}
			}
		}
		return math.Abs(auc-wins/total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAveragePrecision(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.8, 0.2}
	positives := map[int]bool{0: true, 2: true}
	ap, err := AveragePrecision(scores, positives)
	if err != nil || ap != 1 {
		t.Fatalf("ap=%v err=%v", ap, err)
	}
	// One positive at rank 2: AP = 1/2.
	ap, err = AveragePrecision([]float64{0.9, 0.5}, map[int]bool{1: true})
	if err != nil || ap != 0.5 {
		t.Fatalf("ap=%v err=%v", ap, err)
	}
	if _, err := AveragePrecision(scores, map[int]bool{}); err == nil {
		t.Error("no positives accepted")
	}
}
