package exp

import (
	"fmt"

	"lof"
	"lof/internal/core"
	"lof/internal/dataset"
)

// ApproxRow is one dataset's recall@n-vs-speedup measurement of the
// approximate serving paths against exact LOF.
type ApproxRow struct {
	Dataset string
	N       int
	TopN    int
	// CertifiedFrac is the fraction of fitted points the pruning pass
	// certified as LOF≈1 without exact evaluation.
	CertifiedFrac float64
	// Fit wall clocks: the exact MinPts sweep vs the pruned sweep over the
	// same materialized database.
	FitExactMS, FitPrunedMS float64
	// Score wall clocks for re-scoring every point out-of-sample through
	// the three serving paths.
	ScoreExactMS, ScorePrunedMS, ScoreCoresetMS float64
	// Recall@TopN of each approximate ranking against the exact one.
	PrunedRecall, CoresetRecall float64
	// CoresetM is the coreset size used.
	CoresetM int
}

// ApproxResult is the recall@n-vs-speedup table of the approximate fast
// path (pruning + sensitivity coresets) over the evaluation datasets.
type ApproxResult struct {
	Eps  float64
	Rows []ApproxRow
}

// recallAt computes |topN(exact) ∩ topN(approx)| / n — the fraction of the
// true top-n outliers the approximate ranking recovers.
func recallAt(exact, approx []float64, n int) float64 {
	if n <= 0 {
		return 1
	}
	want := make(map[int]bool, n)
	for _, r := range core.TopN(exact, n) {
		want[r.Index] = true
	}
	hit := 0
	for _, r := range core.TopN(approx, n) {
		if want[r.Index] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// runApproxDataset measures one dataset: exact fit vs pruned fit, then the
// exact, pruned, and coreset scoring paths over all points as out-of-sample
// queries.
func runApproxDataset(name string, data [][]float64, lb, ub, topn, coresetM int, eps float64) (ApproxRow, error) {
	row := ApproxRow{Dataset: name, N: len(data), TopN: topn, CoresetM: coresetM}
	cfg := lof.Config{MinPtsLB: lb, MinPtsUB: ub}
	det, err := lof.New(cfg)
	if err != nil {
		return row, err
	}

	var res *lof.Result
	dFit, err := timed(func() error {
		res, err = det.Fit(data)
		if err != nil {
			return err
		}
		_ = res.Scores() // force the lazy aggregate inside the timing
		return nil
	})
	if err != nil {
		return row, err
	}
	row.FitExactMS = float64(dFit.Microseconds()) / 1000
	model, err := res.Model()
	if err != nil {
		return row, err
	}

	detP, err := lof.New(cfg)
	if err != nil {
		return row, err
	}
	var pruned *lof.PrunedResult
	dPruned, err := timed(func() error {
		pruned, err = detP.FitPruned(data, eps)
		return err
	})
	if err != nil {
		return row, err
	}
	row.FitPrunedMS = float64(dPruned.Microseconds()) / 1000
	row.CertifiedFrac = float64(pruned.PrunedCount()) / float64(len(data))

	// Score paths: every point re-scored out-of-sample. The pruned path
	// answers certified queries from the bound alone; the coreset path
	// scores against the sensitivity-sampled model.
	var exactQ []float64
	dScore, err := timed(func() error {
		exactQ, err = model.ScoreBatch(data)
		return err
	})
	if err != nil {
		return row, err
	}
	row.ScoreExactMS = float64(dScore.Microseconds()) / 1000

	var prunedQ *lof.PrunedBatch
	dScoreP, err := timed(func() error {
		prunedQ, err = model.ScoreBatchPruned(data, eps)
		return err
	})
	if err != nil {
		return row, err
	}
	row.ScorePrunedMS = float64(dScoreP.Microseconds()) / 1000
	row.PrunedRecall = recallAt(exactQ, prunedQ.Scores, topn)

	coreset, err := model.Coreset(coresetM)
	if err != nil {
		return row, err
	}
	var coresetQ []float64
	dScoreC, err := timed(func() error {
		coresetQ, err = coreset.ScoreBatch(data)
		return err
	})
	if err != nil {
		return row, err
	}
	row.ScoreCoresetMS = float64(dScoreC.Microseconds()) / 1000
	row.CoresetRecall = recallAt(exactQ, coresetQ, topn)
	return row, nil
}

// approxSynthetic builds the fixed-seed synthetic workload for the recall
// gate: clusters of varied density whose exact top-n ranking is the ground
// truth.
func approxSynthetic(seed int64, n int) [][]float64 {
	d := dataset.RandomClusters(seed, n, 2, 5)
	data := make([][]float64, d.Len())
	for i := range data {
		data[i] = d.Points.At(i)
	}
	return data
}

// RunApprox produces the recall@n-vs-speedup table over the hockey and
// soccer leagues plus the synthetic cluster workload.
func RunApprox(seed int64, quick bool) (*ApproxResult, error) {
	res := &ApproxResult{Eps: lof.DefaultPruneEps}
	synN := 20000
	if quick {
		synN = 2000
	}

	hockey := dataset.Hockey(seed).Test1()
	hockeyData := make([][]float64, hockey.Len())
	for i := range hockeyData {
		hockeyData[i] = hockey.Points.At(i)
	}
	soccer := dataset.Soccer(seed).Dataset()
	soccerData := make([][]float64, soccer.Len())
	for i := range soccerData {
		soccerData[i] = soccer.Points.At(i)
	}

	for _, spec := range []struct {
		name           string
		data           [][]float64
		lb, ub         int
		topn, coresetM int
	}{
		{"hockey1", hockeyData, 30, 50, 10, len(hockeyData) / 4},
		{"soccer", soccerData, 30, 50, 10, len(soccerData) / 4},
		{"synthetic", approxSynthetic(seed, synN), 10, 40, 50, 2048},
	} {
		row, err := runApproxDataset(spec.name, spec.data, spec.lb, spec.ub, spec.topn, spec.coresetM, res.Eps)
		if err != nil {
			return nil, fmt.Errorf("exp: approx %s: %w", spec.name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the recall/speedup comparison.
func (r *ApproxResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Approximate fast path: recall@n vs speedup (eps=%.2f)", r.Eps),
		Header: []string{"dataset", "n", "top-n", "certified%", "fit-x", "score-x(pruned)",
			"recall(pruned)", "coreset-m", "score-x(coreset)", "recall(coreset)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Dataset, fmt.Sprintf("%d", row.N), fmt.Sprintf("%d", row.TopN),
			fmt.Sprintf("%.1f", 100*row.CertifiedFrac),
			fmt.Sprintf("%.2fx", row.FitExactMS/row.FitPrunedMS),
			fmt.Sprintf("%.2fx", row.ScoreExactMS/row.ScorePrunedMS),
			f(row.PrunedRecall),
			fmt.Sprintf("%d", row.CoresetM),
			fmt.Sprintf("%.2fx", row.ScoreExactMS/row.ScoreCoresetMS),
			f(row.CoresetRecall))
	}
	return t
}

// ApproxGateResult is the CI recall-gate measurement on the fixed-seed
// synthetic dataset.
type ApproxGateResult struct {
	N, TopN                     int
	Eps                         float64
	CertifiedFrac               float64
	PrunedRecall, CoresetRecall float64
	// PrunedSpeedup is the out-of-sample scoring speedup of the pruned
	// path over exact; FitSpeedup compares the pruned sweep to the exact
	// sweep (materialization included in both).
	PrunedSpeedup, CoresetSpeedup, FitSpeedup float64
}

// RunApproxGate runs the recall gate workload: the synthetic cluster
// dataset at a fixed seed, exact vs pruned vs coreset, reporting the
// numbers scripts/approx_gate.sh asserts on.
func RunApproxGate(seed int64, n int) (*ApproxGateResult, error) {
	const topn = 50
	row, err := runApproxDataset("gate", approxSynthetic(seed, n), 10, 40, topn, 2048, lof.DefaultPruneEps)
	if err != nil {
		return nil, err
	}
	return &ApproxGateResult{
		N: row.N, TopN: topn, Eps: lof.DefaultPruneEps,
		CertifiedFrac:  row.CertifiedFrac,
		PrunedRecall:   row.PrunedRecall,
		CoresetRecall:  row.CoresetRecall,
		PrunedSpeedup:  row.ScoreExactMS / row.ScorePrunedMS,
		CoresetSpeedup: row.ScoreExactMS / row.ScoreCoresetMS,
		FitSpeedup:     row.FitExactMS / row.FitPrunedMS,
	}, nil
}

// Table renders the gate result, ending with the machine-parseable GATE
// line scripts/approx_gate.sh greps.
func (r *ApproxGateResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Approx recall gate: n=%d top-%d eps=%.2f", r.N, r.TopN, r.Eps),
		Header: []string{"metric", "value"},
	}
	t.AddRow("certified%", fmt.Sprintf("%.1f", 100*r.CertifiedFrac))
	t.AddRow("pruned recall@50", f(r.PrunedRecall))
	t.AddRow("pruned score speedup", fmt.Sprintf("%.2fx", r.PrunedSpeedup))
	t.AddRow("coreset recall@50", f(r.CoresetRecall))
	t.AddRow("coreset score speedup", fmt.Sprintf("%.2fx", r.CoresetSpeedup))
	t.AddRow("fit speedup", fmt.Sprintf("%.2fx", r.FitSpeedup))
	return t
}

// GateLine is the single parseable line the gate script consumes.
func (r *ApproxGateResult) GateLine() string {
	return fmt.Sprintf("GATE pruned_recall@%d=%.4f pruned_speedup=%.2fx coreset_recall@%d=%.4f coreset_speedup=%.2fx fit_speedup=%.2fx certified=%.4f",
		r.TopN, r.PrunedRecall, r.PrunedSpeedup, r.TopN, r.CoresetRecall, r.CoresetSpeedup, r.FitSpeedup, r.CertifiedFrac)
}
