package exp

import (
	"strings"
	"testing"
)

func TestRecallAt(t *testing.T) {
	exact := []float64{5, 4, 3, 2, 1}
	if got := recallAt(exact, exact, 3); got != 1 {
		t.Fatalf("identical rankings: recall=%v want 1", got)
	}
	// Reversed ranking shares no top-2 member with the exact one.
	reversed := []float64{1, 2, 3, 4, 5}
	if got := recallAt(exact, reversed, 2); got != 0 {
		t.Fatalf("disjoint top-2: recall=%v want 0", got)
	}
	// Swapping the order inside the top set does not change recall.
	swapped := []float64{4, 5, 3, 2, 1}
	if got := recallAt(exact, swapped, 2); got != 1 {
		t.Fatalf("permuted top-2: recall=%v want 1", got)
	}
	if got := recallAt(exact, reversed, 0); got != 1 {
		t.Fatalf("n=0: recall=%v want 1 (vacuous)", got)
	}
}

// The quick harness run is the integration assertion: every dataset row
// measures, the pruned path keeps near-perfect recall (its uncertain scores
// are bit-exact; only certified ≈1 points can reorder), and the table
// renders one line per dataset.
func TestRunApproxQuickShape(t *testing.T) {
	r, err := RunApprox(42, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.N == 0 || row.TopN == 0 {
			t.Fatalf("%s: empty measurement %+v", row.Dataset, row)
		}
		if row.CertifiedFrac < 0 || row.CertifiedFrac > 1 {
			t.Fatalf("%s: certified fraction %v out of range", row.Dataset, row.CertifiedFrac)
		}
		if row.PrunedRecall < 0.9 {
			t.Fatalf("%s: pruned recall %v below 0.9", row.Dataset, row.PrunedRecall)
		}
		if row.FitExactMS <= 0 || row.FitPrunedMS <= 0 || row.ScoreExactMS <= 0 {
			t.Fatalf("%s: non-positive timing %+v", row.Dataset, row)
		}
	}
	if got := len(r.Table().Rows); got != 3 {
		t.Fatalf("table rows=%d want 3", got)
	}
}

func TestRunApproxGateLine(t *testing.T) {
	r, err := RunApproxGate(42, 800)
	if err != nil {
		t.Fatal(err)
	}
	line := r.GateLine()
	for _, key := range []string{"GATE ", "pruned_recall@50=", "pruned_speedup=",
		"coreset_recall@50=", "coreset_speedup=", "fit_speedup=", "certified="} {
		if !strings.Contains(line, key) {
			t.Fatalf("gate line %q missing %q", line, key)
		}
	}
	if r.PrunedRecall < 0.9 {
		t.Fatalf("gate pruned recall %v below 0.9 on the fixed seed", r.PrunedRecall)
	}
	if r.N != 800 || r.TopN != 50 {
		t.Fatalf("gate shape n=%d topn=%d", r.N, r.TopN)
	}
}
