// Package exp is the experiment harness: one entry point per table and
// figure of the paper, each returning structured results that the lofexp
// command prints and the benchmark suite asserts on. Experiments are
// deterministic in their seeds.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a printable experiment result: the rows the corresponding paper
// table or figure reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, row := range t.Rows {
		line(row)
	}
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats with two decimals, matching the paper's LOF reporting style.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }

// timed measures fn's wall-clock time.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
