package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines=%d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "1  ") {
		t.Fatalf("column alignment broken: %q", lines[3])
	}
}

// The central integration assertion for figure 1: LOF isolates o1 and o2 as
// the top two outliers, cluster LOFs stay near 1, and the DB(pct,dmin)
// sweep cannot isolate o2.
func TestRunDS1PaperShape(t *testing.T) {
	r, err := RunDS1(42)
	if err != nil {
		t.Fatal(err)
	}
	if r.RankO2 != 0 || r.RankO1 != 1 {
		t.Fatalf("outlier ranks o2=%d o1=%d want 0,1", r.RankO2, r.RankO1)
	}
	if r.LOFO1 < 2 || r.LOFO2 < 2 {
		t.Fatalf("outlier LOFs too small: o1=%v o2=%v", r.LOFO1, r.LOFO2)
	}
	if r.MeanC1 > 1.3 || r.MeanC2 > 1.3 {
		t.Fatalf("cluster mean LOFs too large: C1=%v C2=%v", r.MeanC1, r.MeanC2)
	}
	if r.DBFlagsO2WithoutC1 {
		t.Fatal("a DB(pct,dmin) setting isolated o2 — contradicts section 3")
	}
	if r.DBSettingsTried < 10 {
		t.Fatalf("too few DB settings swept: %d", r.DBSettingsTried)
	}
	if len(r.Table().Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestRunFig4Shape(t *testing.T) {
	r := RunFig4()
	if len(r.Pcts) != 3 || len(r.LOFMin) != 3 || len(r.LOFMax) != 3 {
		t.Fatalf("series count wrong")
	}
	// The spread grows with pct and with the ratio.
	for p := range r.Pcts {
		for i := range r.Ratios {
			if r.LOFMax[p][i] < r.LOFMin[p][i] {
				t.Fatalf("max < min at pct=%v ratio=%v", r.Pcts[p], r.Ratios[i])
			}
			if i > 0 {
				prev := r.LOFMax[p][i-1] - r.LOFMin[p][i-1]
				cur := r.LOFMax[p][i] - r.LOFMin[p][i]
				if cur < prev {
					t.Fatalf("spread not increasing in ratio at pct=%v", r.Pcts[p])
				}
			}
		}
	}
	// Larger pct, larger spread at the same ratio.
	last := len(r.Ratios) - 1
	if !(r.LOFMax[2][last]-r.LOFMin[2][last] > r.LOFMax[0][last]-r.LOFMin[0][last]) {
		t.Fatal("spread not increasing in pct")
	}
	if len(r.Table().Rows) != len(r.Ratios) {
		t.Fatal("table rows mismatch")
	}
}

func TestRunFig5Shape(t *testing.T) {
	r := RunFig5()
	for i := 1; i < len(r.Spans); i++ {
		if r.Spans[i] <= r.Spans[i-1] {
			t.Fatalf("relative span not strictly increasing at pct=%v", r.Pcts[i])
		}
	}
	if r.Spans[len(r.Spans)-1] < 10 {
		t.Fatalf("span near pct=100 too small: %v", r.Spans[len(r.Spans)-1])
	}
	if len(r.Table().Rows) != len(r.Pcts) {
		t.Fatal("table rows mismatch")
	}
}

func TestRunThm1Demo(t *testing.T) {
	r, err := RunThm1Demo(42)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Lower <= r.Actual && r.Actual <= r.Upper) {
		t.Fatalf("LOF %v outside [%v, %v]", r.Actual, r.Lower, r.Upper)
	}
	// The object is planted well outside the cluster: clearly outlying.
	if r.Actual < 2 {
		t.Fatalf("demo object LOF=%v, expected an outlier", r.Actual)
	}
	if r.DirectMin > r.DirectMax || r.IndirectMin > r.IndirectMax {
		t.Fatal("min/max inverted")
	}
	if len(r.Table().Rows) != 7 {
		t.Fatal("table shape wrong")
	}
}

func TestRunThm2DemoTighter(t *testing.T) {
	r, err := RunThm2Demo(42)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Thm2Lower <= r.Actual+1e-9 && r.Actual <= r.Thm2Upper+1e-9) {
		t.Fatalf("LOF %v outside thm2 [%v, %v]", r.Actual, r.Thm2Lower, r.Thm2Upper)
	}
	// On a neighborhood straddling clusters of different densities,
	// Theorem 2 must be substantially tighter than Theorem 1, not just
	// no worse.
	if (r.Thm2Upper - r.Thm2Lower) > 0.8*(r.Thm1Upper-r.Thm1Lower) {
		t.Fatalf("thm2 spread %v not substantially tighter than thm1 %v",
			r.Thm2Upper-r.Thm2Lower, r.Thm1Upper-r.Thm1Lower)
	}
}

func TestRunFig7Shape(t *testing.T) {
	r, err := RunFig7(42, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MinPts) != 49 || r.MinPts[0] != 2 || r.MinPts[48] != 50 {
		t.Fatalf("MinPts=%v", r.MinPts)
	}
	for i := range r.MinPts {
		if r.Min[i] > r.Mean[i] || r.Mean[i] > r.Max[i] {
			t.Fatalf("ordering broken at MinPts=%d", r.MinPts[i])
		}
		// Mean LOF within a single Gaussian cluster stays near 1.
		if math.Abs(r.Mean[i]-1) > 0.25 {
			t.Fatalf("mean LOF=%v at MinPts=%d", r.Mean[i], r.MinPts[i])
		}
	}
	// The paper: the standard deviation only stabilizes once MinPts
	// reaches ~10 — it must be higher at MinPts=2 than at MinPts=30.
	if r.Std[0] <= r.Std[28] {
		t.Fatalf("std at MinPts=2 (%v) not above std at MinPts=30 (%v)", r.Std[0], r.Std[28])
	}
}

func TestRunFig8PaperShape(t *testing.T) {
	r, err := RunFig8(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MinPts) != 41 {
		t.Fatalf("MinPts count=%d", len(r.MinPts))
	}
	// S3 members stay near 1 across the whole range.
	if r.MaxS3 > 1.3 {
		t.Fatalf("S3 representative max LOF=%v", r.MaxS3)
	}
	// S1 members become strong outliers within the range.
	if r.MaxS1 < 2 {
		t.Fatalf("S1 representative max LOF=%v", r.MaxS1)
	}
	// S2's outlier-ness appears late (the combined-neighborhood effect):
	// its LOF at the start of the range is near 1, its max clearly higher.
	if r.S2[0] > 1.3 {
		t.Fatalf("S2 LOF at MinPts=10 is %v", r.S2[0])
	}
	if r.MaxS2 < 1.2 {
		t.Fatalf("S2 max LOF=%v", r.MaxS2)
	}
	// S1's outlier-ness must peak earlier in the range than S2's.
	argmax := func(xs []float64) int {
		best := 0
		for i, v := range xs {
			if v > xs[best] {
				best = i
			}
		}
		return best
	}
	if argmax(r.S1) >= argmax(r.S2) {
		t.Fatalf("S1 peaks at %d, S2 at %d — expected S1 earlier",
			r.MinPts[argmax(r.S1)], r.MinPts[argmax(r.S2)])
	}
}

func TestRunFig9PaperShape(t *testing.T) {
	r, err := RunFig9(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OutlierLOF) != 7 {
		t.Fatalf("outliers=%d", len(r.OutlierLOF))
	}
	if r.MinOutlierLOF < 1.5 {
		t.Fatalf("weakest planted outlier LOF=%v", r.MinOutlierLOF)
	}
	if r.UniformMax > 1.5 {
		t.Fatalf("uniform cluster max LOF=%v — should be ≈1", r.UniformMax)
	}
	if r.GaussianShare1 < 0.7 {
		t.Fatalf("only %v of Gaussian members near 1", r.GaussianShare1)
	}
	// Every planted outlier scores above every uniform-cluster member.
	if r.MinOutlierLOF <= r.UniformMax {
		t.Fatalf("outlier LOF %v below uniform max %v", r.MinOutlierLOF, r.UniformMax)
	}
}

func TestRunHockeyPaperShape(t *testing.T) {
	r1, err := RunHockey(42, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Test 1: Konstantinov and Barnaby are the top two, in order.
	if r1.RankOf["Vladimir Konstantinov"] != 1 {
		t.Fatalf("Konstantinov rank=%d want 1", r1.RankOf["Vladimir Konstantinov"])
	}
	if r1.RankOf["Matthew Barnaby"] != 2 {
		t.Fatalf("Barnaby rank=%d want 2", r1.RankOf["Matthew Barnaby"])
	}

	r2, err := RunHockey(42, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Test 2: Osgood clearly first; Lemieux and Poapst complete the top 3.
	if r2.RankOf["Chris Osgood"] != 1 {
		t.Fatalf("Osgood rank=%d want 1", r2.RankOf["Chris Osgood"])
	}
	if r2.RankOf["Mario Lemieux"] > 3 || r2.RankOf["Steve Poapst"] > 3 {
		t.Fatalf("Lemieux rank=%d Poapst rank=%d want both ≤3",
			r2.RankOf["Mario Lemieux"], r2.RankOf["Steve Poapst"])
	}
	if len(r1.Top) != 10 || len(r2.Top) != 10 {
		t.Fatalf("top lists %d,%d", len(r1.Top), len(r2.Top))
	}

	if _, err := RunHockey(42, 3); err == nil {
		t.Fatal("invalid test number accepted")
	}
}

func TestRunSoccerPaperShape(t *testing.T) {
	r, err := RunSoccer(42)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the five published outliers exceed LOF 1.5.
	if len(r.Outliers) != 5 {
		names := make([]string, len(r.Outliers))
		for i, o := range r.Outliers {
			names[i] = o.Name
		}
		t.Fatalf("%d outliers above 1.5: %v", len(r.Outliers), names)
	}
	want := map[string]bool{
		"Michael Preetz": true, "Michael Schjönberg": true, "Hans-Jörg Butt": true,
		"Ulf Kirsten": true, "Giovane Elber": true,
	}
	for _, o := range r.Outliers {
		if !want[o.Name] {
			t.Fatalf("unexpected outlier %q", o.Name)
		}
	}
	// Preetz is the strongest outlier, as in Table 3.
	if r.Outliers[0].Name != "Michael Preetz" {
		t.Fatalf("top outlier=%q want Preetz", r.Outliers[0].Name)
	}
	// Summary statistics stay near the published Table 3 values.
	if math.Abs(r.GamesSummary.Mean-18) > 2.5 || math.Abs(r.GamesSummary.Std-11) > 2.5 {
		t.Fatalf("games summary %+v", r.GamesSummary)
	}
	if math.Abs(r.GoalsSummary.Mean-1.9) > 0.8 || r.GoalsSummary.Max != 23 {
		t.Fatalf("goals summary %+v", r.GoalsSummary)
	}
	if got := len(r.Table().Rows); got != 10 { // 5 outliers + 5 summary rows
		t.Fatalf("table rows=%d", got)
	}
}

func TestRunHighDimPaperShape(t *testing.T) {
	r, err := RunHighDim(42)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlantedInTop < r.Planted-2 {
		t.Fatalf("only %d/%d planted outliers in top ranks", r.PlantedInTop, r.Planted)
	}
	// The paper reports 64-d LOF values "of up to 7": comfortably outlying.
	if r.MaxOutlierLOF < 2 {
		t.Fatalf("max planted LOF=%v", r.MaxOutlierLOF)
	}
	if r.MaxOutlierLOF < r.MaxClusterLOF {
		t.Fatalf("planted max %v below cluster max %v", r.MaxOutlierLOF, r.MaxClusterLOF)
	}
}

func TestRunFig10And11SmallSmoke(t *testing.T) {
	r10, err := RunFig10(42, []int{300, 600}, []int{2, 5}, "kdtree")
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Rows) != 4 {
		t.Fatalf("rows=%d", len(r10.Rows))
	}
	for _, row := range r10.Rows {
		if row.Materialze <= 0 {
			t.Fatalf("non-positive time: %+v", row)
		}
	}
	if _, err := RunFig10(42, []int{100}, []int{2}, "bogus"); err == nil {
		t.Fatal("bogus index accepted")
	}

	r11, err := RunFig11(42, []int{300, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(r11.Rows) != 2 {
		t.Fatalf("rows=%d", len(r11.Rows))
	}
	if len(r11.Table().Rows) != 2 || len(r10.Table().Rows) != 4 {
		t.Fatal("tables wrong")
	}
}

func TestRunAblationIndexesSmoke(t *testing.T) {
	r, err := RunAblationIndexes(42, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
}

func TestRunAblationMaterializationAgrees(t *testing.T) {
	r, err := RunAblationMaterialization(42, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxDiff > 1e-9 {
		t.Fatalf("two-step vs naive diverge: %v", r.MaxDiff)
	}
}

func TestRunAblationReachSmoothes(t *testing.T) {
	r, err := RunAblationReach(42, 800)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReachStd >= r.RawStd {
		t.Fatalf("reach-dist std %v not below raw std %v — smoothing claim fails",
			r.ReachStd, r.RawStd)
	}
}

// The quantified form of the paper's central claim: LOF ranks planted
// local outliers that the global methods miss.
func TestRunQualityLOFWinsOnLocals(t *testing.T) {
	r, err := RunQuality(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Methods) != 3 {
		t.Fatalf("methods=%d", len(r.Methods))
	}
	lof, knn := r.Methods[0], r.Methods[1]
	if lof.AUC < 0.99 {
		t.Fatalf("LOF AUC=%v", lof.AUC)
	}
	if lof.AvgPrec <= knn.AvgPrec {
		t.Fatalf("LOF AP %v not above kNN AP %v", lof.AvgPrec, knn.AvgPrec)
	}
	if r.LocalFoundLOF != r.LocalCount {
		t.Fatalf("LOF found %d/%d local outliers", r.LocalFoundLOF, r.LocalCount)
	}
	if r.LocalFoundKNN >= r.LocalFoundLOF {
		t.Fatalf("kNN ranking found %d locals, LOF %d — the contrast is gone",
			r.LocalFoundKNN, r.LocalFoundLOF)
	}
	if len(r.Table().Rows) != 5 {
		t.Fatal("table shape wrong")
	}
}

// Clustering noise is binary; LOF grades it. Both catch the planted
// outliers on figure 9, but only LOF orders them.
func TestRunNoiseVsLOF(t *testing.T) {
	r, err := RunNoiseVsLOF(42)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlantedInNoise < r.Planted-1 {
		t.Fatalf("DBSCAN noise caught %d/%d planted", r.PlantedInNoise, r.Planted)
	}
	if r.NoiseSize <= r.Planted {
		t.Fatalf("noise set %d not larger than planted %d — no binary/graded contrast", r.NoiseSize, r.Planted)
	}
	// LOF spreads the noise set over a wide range of degrees.
	if r.NoiseLOFMax < 2*r.NoiseLOFMin {
		t.Fatalf("LOF range within noise too narrow: %v..%v", r.NoiseLOFMin, r.NoiseLOFMax)
	}
	if r.AUCLOF < r.AUCNoise {
		t.Fatalf("LOF AUC %v below noise-membership AUC %v", r.AUCLOF, r.AUCNoise)
	}
}

func TestRunAblationAggregates(t *testing.T) {
	r, err := RunAblationAggregates(42)
	if err != nil {
		t.Fatal(err)
	}
	// Max keeps the object clearly outlying; min erases it.
	if r.MaxScore < 1.5 {
		t.Fatalf("max-aggregated score=%v", r.MaxScore)
	}
	if r.MinScore > r.MaxScore || r.MeanScore > r.MaxScore {
		t.Fatal("aggregate ordering broken")
	}
	if r.MaxRank > r.MinRank {
		t.Fatalf("max rank %d should be at least as good as min rank %d", r.MaxRank, r.MinRank)
	}
	if r.MaxRank > 3 {
		t.Fatalf("max aggregation ranks the outlier at %d", r.MaxRank)
	}
}
