package exp

import (
	"fmt"
	"math"

	"lof/internal/core"
	"lof/internal/dataset"
	"lof/internal/dbout"
	"lof/internal/geom"
	"lof/internal/index/kdtree"
	"lof/internal/matdb"
	"lof/internal/stats"
)

// sweepDataset materializes and sweeps a dataset with the library defaults
// used across figure experiments.
func sweepDataset(d *dataset.Dataset, lb, ub int) (*matdb.DB, *core.SweepResult, error) {
	ix := kdtree.New(d.Points, nil)
	db, err := matdb.Materialize(d.Points, ix, ub)
	if err != nil {
		return nil, nil, err
	}
	sw, err := core.Sweep(db, lb, ub)
	if err != nil {
		return nil, nil, err
	}
	return db, sw, nil
}

// DS1Result is the figure 1 / section 3 experiment outcome.
type DS1Result struct {
	// LOFO1 and LOFO2 are the max-LOF scores of the two planted outliers.
	LOFO1, LOFO2 float64
	// RankO1 and RankO2 are their positions (0-based) in the LOF ranking.
	RankO1, RankO2 int
	// MeanC1, MeanC2 are the mean LOF of the cluster members.
	MeanC1, MeanC2 float64
	// MaxCluster is the largest LOF among cluster members.
	MaxCluster float64
	// DBFlagsO2WithoutC1 reports whether any swept DB(pct,dmin) setting
	// flags o2 without flagging C1 members (the paper argues none can).
	DBFlagsO2WithoutC1 bool
	// DBSettingsTried is how many (pct, dmin) combinations were swept.
	DBSettingsTried int
}

// RunDS1 reproduces figure 1 and the section 3 impossibility argument:
// LOF isolates both o1 and o2 while no DB(pct, dmin) setting isolates o2
// without drowning it among C1 members.
func RunDS1(seed int64) (*DS1Result, error) {
	d := dataset.DS1(seed)
	_, sw, err := sweepDataset(d, 10, 20)
	if err != nil {
		return nil, err
	}
	scores := sw.Aggregate(core.AggMax)
	ranked := core.Rank(scores)
	res := &DS1Result{}
	o1, o2 := d.Outliers[0], d.Outliers[1]
	res.LOFO1, res.LOFO2 = scores[o1], scores[o2]
	for pos, r := range ranked {
		switch r.Index {
		case o1:
			res.RankO1 = pos
		case o2:
			res.RankO2 = pos
		}
	}
	var c1, c2 stats.Running
	for i, s := range scores {
		switch d.Cluster[i] {
		case 0:
			c1.Add(s)
		case 1:
			c2.Add(s)
		}
		if d.Cluster[i] >= 0 && s > res.MaxCluster {
			res.MaxCluster = s
		}
	}
	res.MeanC1, res.MeanC2 = c1.Mean(), c2.Mean()

	// DB(pct, dmin) sweep around d(o2, C2).
	metric := geom.Euclidean{}
	dO2C2 := math.Inf(1)
	for i := 0; i < d.Len(); i++ {
		if d.Cluster[i] != 1 {
			continue
		}
		if dist := metric.Distance(d.Points.At(o2), d.Points.At(i)); dist < dO2C2 {
			dO2C2 = dist
		}
	}
	for _, dmin := range []float64{dO2C2 * 0.5, dO2C2 * 0.9, dO2C2, dO2C2 * 1.5, dO2C2 * 2, dO2C2 * 4} {
		for _, pct := range []float64{90, 95, 98, 99, 99.6, 99.8} {
			labels, err := dbout.Detect(d.Points, metric, dbout.Params{Pct: pct, Dmin: dmin})
			if err != nil {
				return nil, err
			}
			res.DBSettingsTried++
			if !labels[o2] {
				continue
			}
			anyC1 := false
			for i, isOut := range labels {
				if isOut && d.Cluster[i] == 0 {
					anyC1 = true
					break
				}
			}
			if !anyC1 {
				res.DBFlagsO2WithoutC1 = true
			}
		}
	}
	return res, nil
}

// Table renders the DS1 result.
func (r *DS1Result) Table() *Table {
	t := &Table{
		Title:  "Figure 1 (DS1): local outliers o1, o2 vs. DB(pct,dmin)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("LOF(o1) [max, MinPts 10-20]", f2(r.LOFO1))
	t.AddRow("LOF(o2) [max, MinPts 10-20]", f2(r.LOFO2))
	t.AddRow("rank of o1", fmt.Sprintf("%d", r.RankO1+1))
	t.AddRow("rank of o2", fmt.Sprintf("%d", r.RankO2+1))
	t.AddRow("mean LOF in C1", f2(r.MeanC1))
	t.AddRow("mean LOF in C2", f2(r.MeanC2))
	t.AddRow("max LOF among cluster members", f2(r.MaxCluster))
	t.AddRow("DB(pct,dmin) settings tried", fmt.Sprintf("%d", r.DBSettingsTried))
	t.AddRow("any setting flags o2 w/o C1 false positives", fmt.Sprintf("%v", r.DBFlagsO2WithoutC1))
	return t
}

// Fig4Result holds the bound-spread series of figure 4.
type Fig4Result struct {
	// Ratios are the direct/indirect values of the x axis.
	Ratios []float64
	// LOFMin[pct][i], LOFMax[pct][i] for the three pct settings 1, 5, 10.
	Pcts   []float64
	LOFMin [][]float64
	LOFMax [][]float64
}

// RunFig4 evaluates the analytic LOF bounds of Theorem 1 under the
// Sec. 5.3 fluctuation model for pct ∈ {1, 5, 10}, reproducing figure 4.
func RunFig4() *Fig4Result {
	res := &Fig4Result{Pcts: []float64{1, 5, 10}}
	for ratio := 1.0; ratio <= 10.0001; ratio += 0.5 {
		res.Ratios = append(res.Ratios, ratio)
	}
	for _, pct := range res.Pcts {
		mins := make([]float64, len(res.Ratios))
		maxs := make([]float64, len(res.Ratios))
		for i, ratio := range res.Ratios {
			mins[i], maxs[i] = core.AnalyticBounds(ratio, 1, pct)
		}
		res.LOFMin = append(res.LOFMin, mins)
		res.LOFMax = append(res.LOFMax, maxs)
	}
	return res
}

// Table renders the figure 4 series.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Figure 4: LOF bounds vs direct/indirect for pct = 1%, 5%, 10%",
		Header: []string{"direct/indirect"},
	}
	for _, pct := range r.Pcts {
		t.Header = append(t.Header,
			fmt.Sprintf("LOFmin(%g%%)", pct), fmt.Sprintf("LOFmax(%g%%)", pct))
	}
	for i, ratio := range r.Ratios {
		row := []string{f(ratio)}
		for p := range r.Pcts {
			row = append(row, f(r.LOFMin[p][i]), f(r.LOFMax[p][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig5Result holds the relative-span curve of figure 5.
type Fig5Result struct {
	Pcts  []float64
	Spans []float64
}

// RunFig5 evaluates the closed-form relative span 4(pct/100)/(1−(pct/100)²)
// of figure 5.
func RunFig5() *Fig5Result {
	res := &Fig5Result{}
	for pct := 1.0; pct <= 99.0001; pct += 2 {
		res.Pcts = append(res.Pcts, pct)
		res.Spans = append(res.Spans, core.RelativeSpan(pct))
	}
	return res
}

// Table renders the figure 5 curve.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: (LOFmax-LOFmin)/(direct/indirect) vs pct",
		Header: []string{"pct", "relative span"},
	}
	for i := range r.Pcts {
		t.AddRow(f(r.Pcts[i]), f(r.Spans[i]))
	}
	return t
}

// Thm1DemoResult is the figure 3 scenario: one object p near a cluster C.
type Thm1DemoResult struct {
	DirectMin, DirectMax     float64
	IndirectMin, IndirectMax float64
	Lower, Upper, Actual     float64
}

// RunThm1Demo builds the figure 3 configuration (an object at some distance
// from one cluster, MinPts = 3) and compares the Theorem 1 bounds with the
// actual LOF.
func RunThm1Demo(seed int64) (*Thm1DemoResult, error) {
	d := dataset.Mixture(seed, dataset.MixtureSpec{
		Name:      "thm1-demo",
		Gaussians: []dataset.GaussianSpec{{Center: geom.Point{0, 0}, Sigma: 1, N: 60}},
		Outliers:  []geom.Point{{8, 0}},
	})
	const minPts = 3
	db, sw, err := sweepDataset(d, minPts, minPts)
	if err != nil {
		return nil, err
	}
	p := d.Outliers[0]
	di, err := core.DirectIndirectOf(db, p, minPts)
	if err != nil {
		return nil, err
	}
	lo, hi, err := core.Theorem1Bounds(db, p, minPts)
	if err != nil {
		return nil, err
	}
	return &Thm1DemoResult{
		DirectMin: di.DirectMin, DirectMax: di.DirectMax,
		IndirectMin: di.IndirectMin, IndirectMax: di.IndirectMax,
		Lower: lo, Upper: hi, Actual: sw.Values[0][p],
	}, nil
}

// Table renders the theorem 1 demonstration.
func (r *Thm1DemoResult) Table() *Table {
	t := &Table{
		Title:  "Figure 3 / Theorem 1: bounds for an object outside a cluster (MinPts=3)",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("direct_min", f(r.DirectMin))
	t.AddRow("direct_max", f(r.DirectMax))
	t.AddRow("indirect_min", f(r.IndirectMin))
	t.AddRow("indirect_max", f(r.IndirectMax))
	t.AddRow("LOF lower bound", f(r.Lower))
	t.AddRow("LOF upper bound", f(r.Upper))
	t.AddRow("actual LOF", f(r.Actual))
	return t
}

// Thm2DemoResult is the figure 6 scenario: p's neighborhood straddles two
// clusters of different densities.
type Thm2DemoResult struct {
	Thm1Lower, Thm1Upper float64
	Thm2Lower, Thm2Upper float64
	Actual               float64
}

// RunThm2Demo builds the figure 6 configuration (MinPts = 6, half of p's
// neighbors from each of two clusters) and compares Theorem 1's and
// Theorem 2's bound spreads.
func RunThm2Demo(seed int64) (*Thm2DemoResult, error) {
	d := dataset.Mixture(seed, dataset.MixtureSpec{
		Name: "thm2-demo",
		Gaussians: []dataset.GaussianSpec{
			{Center: geom.Point{-3, 0}, Sigma: 0.3, N: 40}, // dense C1
			{Center: geom.Point{3, 0}, Sigma: 1.0, N: 40},  // sparse C2
		},
		// p sits between the clusters so its 6-nearest neighbors come from
		// both, the situation of figure 6.
		Outliers: []geom.Point{{-0.4, 0}},
	})
	const minPts = 6
	db, sw, err := sweepDataset(d, minPts, minPts)
	if err != nil {
		return nil, err
	}
	p := d.Outliers[0]
	// Guard against a degenerate draw: the demo needs a mixed neighborhood.
	groups := map[int]bool{}
	for _, nb := range db.Neighborhood(p, minPts) {
		groups[d.Cluster[nb.Index]] = true
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("exp: thm2 demo neighborhood not mixed for seed %d", seed)
	}
	lo1, hi1, err := core.Theorem1Bounds(db, p, minPts)
	if err != nil {
		return nil, err
	}
	lo2, hi2, err := core.Theorem2Bounds(db, p, minPts, func(i int) int { return d.Cluster[i] })
	if err != nil {
		return nil, err
	}
	return &Thm2DemoResult{
		Thm1Lower: lo1, Thm1Upper: hi1,
		Thm2Lower: lo2, Thm2Upper: hi2,
		Actual: sw.Values[0][p],
	}, nil
}

// Table renders the theorem 2 demonstration.
func (r *Thm2DemoResult) Table() *Table {
	t := &Table{
		Title:  "Figure 6 / Theorem 2: multi-cluster bounds (MinPts=6)",
		Header: []string{"bound", "lower", "upper", "spread"},
	}
	t.AddRow("theorem 1", f(r.Thm1Lower), f(r.Thm1Upper), f(r.Thm1Upper-r.Thm1Lower))
	t.AddRow("theorem 2", f(r.Thm2Lower), f(r.Thm2Upper), f(r.Thm2Upper-r.Thm2Lower))
	t.AddRow("actual LOF", f(r.Actual), f(r.Actual), "0")
	return t
}

// Fig7Result tracks LOF statistics within a Gaussian cluster per MinPts.
type Fig7Result struct {
	MinPts              []int
	Min, Max, Mean, Std []float64
}

// RunFig7 reproduces figure 7: the minimum, maximum, mean and standard
// deviation of LOF inside one Gaussian cluster for MinPts = 2..50.
func RunFig7(seed int64, n int) (*Fig7Result, error) {
	d := dataset.Fig7Gaussian(seed, n)
	_, sw, err := sweepDataset(d, 2, 50)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	for m, minPts := range sw.MinPts {
		var run stats.Running
		for _, v := range sw.Values[m] {
			run.Add(v)
		}
		res.MinPts = append(res.MinPts, minPts)
		res.Min = append(res.Min, run.Min())
		res.Max = append(res.Max, run.Max())
		res.Mean = append(res.Mean, run.Mean())
		res.Std = append(res.Std, run.Std())
	}
	return res, nil
}

// Table renders the figure 7 series.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:  "Figure 7: LOF fluctuation within a Gaussian cluster",
		Header: []string{"MinPts", "min", "max", "mean", "std"},
	}
	for i := range r.MinPts {
		t.AddRow(fmt.Sprintf("%d", r.MinPts[i]), f(r.Min[i]), f(r.Max[i]), f(r.Mean[i]), f(r.Std[i]))
	}
	return t
}

// Fig8Result tracks LOF-vs-MinPts for one representative object per cluster.
type Fig8Result struct {
	MinPts              []int
	S1, S2, S3          []float64
	MaxS1, MaxS2, MaxS3 float64
}

// RunFig8 reproduces figure 8: LOF over MinPts 10..50 for representative
// objects of the 10-object cluster S1, the 35-object cluster S2 and the
// 500-object cluster S3.
func RunFig8(seed int64) (*Fig8Result, error) {
	d := dataset.Fig8Dataset(seed)
	_, sw, err := sweepDataset(d.Dataset, 10, 50)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{MinPts: sw.MinPts}
	res.S1 = sw.Series(d.RepS1)
	res.S2 = sw.Series(d.RepS2)
	res.S3 = sw.Series(d.RepS3)
	for i := range res.MinPts {
		res.MaxS1 = math.Max(res.MaxS1, res.S1[i])
		res.MaxS2 = math.Max(res.MaxS2, res.S2[i])
		res.MaxS3 = math.Max(res.MaxS3, res.S3[i])
	}
	return res, nil
}

// Table renders the figure 8 series.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:  "Figure 8: LOF over MinPts for objects in S1(10), S2(35), S3(500)",
		Header: []string{"MinPts", "LOF(S1 rep)", "LOF(S2 rep)", "LOF(S3 rep)"},
	}
	for i := range r.MinPts {
		t.AddRow(fmt.Sprintf("%d", r.MinPts[i]), f(r.S1[i]), f(r.S2[i]), f(r.S3[i]))
	}
	return t
}

// Fig9Result summarizes the LOF surface of figure 9 at MinPts = 40.
type Fig9Result struct {
	// OutlierLOF holds the LOF of each planted outlier.
	OutlierLOF []float64
	// UniformMax is the largest LOF among uniform-cluster members (the
	// paper: "the objects in the uniform clusters all have their LOF equal
	// to 1").
	UniformMax float64
	// GaussianShare1 is the fraction of Gaussian-cluster members with
	// LOF < 1.2 ("most objects in the Gaussian clusters also have 1 as
	// their LOF value" with weak outliers at the fringe).
	GaussianShare1 float64
	// MinOutlierLOF is the smallest planted-outlier LOF.
	MinOutlierLOF float64
}

// RunFig9 reproduces figure 9: the LOF values of a four-cluster dataset
// with seven planted outliers at MinPts = 40.
func RunFig9(seed int64) (*Fig9Result, error) {
	d := dataset.Fig9Dataset(seed)
	const minPts = 40
	_, sw, err := sweepDataset(d, minPts, minPts)
	if err != nil {
		return nil, err
	}
	lofs := sw.Values[0]
	res := &Fig9Result{MinOutlierLOF: math.Inf(1)}
	for _, o := range d.Outliers {
		res.OutlierLOF = append(res.OutlierLOF, lofs[o])
		res.MinOutlierLOF = math.Min(res.MinOutlierLOF, lofs[o])
	}
	gaussianLow, gaussianTotal := 0, 0
	for i, l := range lofs {
		switch d.Cluster[i] {
		case 2, 3: // uniform clusters
			if l > res.UniformMax {
				res.UniformMax = l
			}
		case 0, 1: // Gaussian clusters
			gaussianTotal++
			if l < 1.2 {
				gaussianLow++
			}
		}
	}
	res.GaussianShare1 = float64(gaussianLow) / float64(gaussianTotal)
	return res, nil
}

// Table renders the figure 9 summary.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9: LOF surface at MinPts=40 (four clusters + 7 outliers)",
		Header: []string{"quantity", "value"},
	}
	for i, l := range r.OutlierLOF {
		t.AddRow(fmt.Sprintf("LOF(outlier %d)", i+1), f2(l))
	}
	t.AddRow("max LOF in uniform clusters", f2(r.UniformMax))
	t.AddRow("share of Gaussian members with LOF<1.2", f2(r.GaussianShare1))
	t.AddRow("min planted-outlier LOF", f2(r.MinOutlierLOF))
	return t
}
