package exp

import (
	"fmt"
	"math"
	"time"

	"lof/internal/core"
	"lof/internal/dataset"
	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/grid"
	"lof/internal/index/kdtree"
	"lof/internal/index/linear"
	"lof/internal/index/vafile"
	"lof/internal/index/xtree"
	"lof/internal/matdb"
	"lof/internal/stats"
)

// buildIndex constructs the named index over pts; it mirrors the public
// facade's choices but is usable directly by the harness.
func buildIndex(kind string, pts *geom.Points) (index.Index, error) {
	switch kind {
	case "linear":
		return linear.New(pts, nil), nil
	case "grid":
		return grid.New(pts, nil), nil
	case "kdtree":
		return kdtree.New(pts, nil), nil
	case "xtree":
		return xtree.New(pts, nil), nil
	case "xtree-bulk":
		return xtree.BulkLoad(pts, nil), nil
	case "vafile":
		return vafile.New(pts, nil, 0)
	default:
		return nil, fmt.Errorf("exp: unknown index kind %q", kind)
	}
}

// Fig10Row is one (n, d) measurement of the materialization step.
type Fig10Row struct {
	N, Dim     int
	Index      string
	BuildTime  time.Duration // index construction, included as in the paper
	Materialze time.Duration
}

// Fig10Result is the materialization-time experiment of figure 10.
type Fig10Result struct {
	MinPtsUB int
	Rows     []Fig10Row
}

// RunFig10 reproduces figure 10: wall-clock time of the materialization
// step (including index construction, as the paper notes) for several
// dataset sizes and dimensionalities, with MinPtsUB = 50. The sizes are
// scaled down from the paper's hardware but span a full decade so the
// scaling shape (near-linear for low d, degenerating for high d) is
// visible.
func RunFig10(seed int64, sizes []int, dims []int, kind string) (*Fig10Result, error) {
	const minPtsUB = 50
	res := &Fig10Result{MinPtsUB: minPtsUB}
	for _, dim := range dims {
		for _, n := range sizes {
			d := dataset.RandomClusters(seed, n, dim, 10)
			var ix index.Index
			buildTime, err := timed(func() error {
				var err error
				ix, err = buildIndex(kind, d.Points)
				return err
			})
			if err != nil {
				return nil, err
			}
			matTime, err := timed(func() error {
				_, err := matdb.Materialize(d.Points, ix, minPtsUB)
				return err
			})
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig10Row{
				N: d.Len(), Dim: dim, Index: kind,
				BuildTime: buildTime, Materialze: matTime,
			})
		}
	}
	return res, nil
}

// Table renders the figure 10 measurements.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 10: materialization time (MinPtsUB=%d), index build included", r.MinPtsUB),
		Header: []string{"dim", "n", "index", "build ms", "materialize ms", "total ms"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Dim), fmt.Sprintf("%d", row.N), row.Index,
			ms(row.BuildTime), ms(row.Materialze), ms(row.BuildTime+row.Materialze))
	}
	return t
}

// Fig11Row is one LOF-step measurement.
type Fig11Row struct {
	N    int
	Time time.Duration
}

// Fig11Result is the second-step experiment of figure 11.
type Fig11Result struct {
	MinPtsLB, MinPtsUB int
	Rows               []Fig11Row
}

// RunFig11 reproduces figure 11: wall-clock time of the LOF computation
// step (two scans of M per MinPts in 10..50) as a function of n. The paper
// shows this step is linear in n regardless of dimensionality, because it
// only reads the materialization database.
func RunFig11(seed int64, sizes []int) (*Fig11Result, error) {
	const lb, ub = 10, 50
	res := &Fig11Result{MinPtsLB: lb, MinPtsUB: ub}
	for _, n := range sizes {
		d := dataset.RandomClusters(seed, n, 2, 10)
		ix := kdtree.New(d.Points, nil)
		db, err := matdb.Materialize(d.Points, ix, ub)
		if err != nil {
			return nil, err
		}
		elapsed, err := timed(func() error {
			_, err := core.Sweep(db, lb, ub)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig11Row{N: d.Len(), Time: elapsed})
	}
	return res, nil
}

// Table renders the figure 11 measurements.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 11: LOF computation time, MinPts %d..%d", r.MinPtsLB, r.MinPtsUB),
		Header: []string{"n", "lof step ms", "ms per 1000 objects"},
	}
	for _, row := range r.Rows {
		perK := float64(row.Time.Microseconds()) / 1000 / float64(row.N) * 1000
		t.AddRow(fmt.Sprintf("%d", row.N), ms(row.Time), fmt.Sprintf("%.2f", perK))
	}
	return t
}

// AblationIndexesResult compares materialization cost across index
// structures on the same workload.
type AblationIndexesResult struct {
	N, Dim int
	Rows   []Fig10Row
}

// RunAblationIndexes measures materialization (build + queries) under every
// index structure on one workload — the design-choice study behind the
// facade's IndexAuto policy.
func RunAblationIndexes(seed int64, n, dim int) (*AblationIndexesResult, error) {
	res := &AblationIndexesResult{N: n, Dim: dim}
	for _, kind := range []string{"linear", "grid", "kdtree", "xtree", "xtree-bulk", "vafile"} {
		sub, err := RunFig10(seed, []int{n}, []int{dim}, kind)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, sub.Rows...)
	}
	return res, nil
}

// Table renders the index ablation.
func (r *AblationIndexesResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: index choice for materialization (n=%d, d=%d, MinPtsUB=50)", r.N, r.Dim),
		Header: []string{"index", "build ms", "materialize ms", "total ms"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Index, ms(row.BuildTime), ms(row.Materialze), ms(row.BuildTime+row.Materialze))
	}
	return t
}

// AblationMaterializationResult compares the two-step algorithm with naive
// recomputation.
type AblationMaterializationResult struct {
	N, MinPtsLB, MinPtsUB int
	TwoStep, Naive        time.Duration
	MaxDiff               float64
}

// RunAblationMaterialization measures the paper's two-step algorithm
// against recomputing neighborhoods from the index for every MinPts value,
// verifying both produce identical LOF values.
func RunAblationMaterialization(seed int64, n int) (*AblationMaterializationResult, error) {
	const lb, ub = 10, 30
	d := dataset.RandomClusters(seed, n, 2, 5)
	ix := kdtree.New(d.Points, nil)
	res := &AblationMaterializationResult{N: d.Len(), MinPtsLB: lb, MinPtsUB: ub}

	var sweep *core.SweepResult
	var err error
	res.TwoStep, err = timed(func() error {
		db, err := matdb.Materialize(d.Points, ix, ub)
		if err != nil {
			return err
		}
		sweep, err = core.Sweep(db, lb, ub)
		return err
	})
	if err != nil {
		return nil, err
	}

	naive := make([][]float64, 0, ub-lb+1)
	res.Naive, err = timed(func() error {
		for minPts := lb; minPts <= ub; minPts++ {
			naive = append(naive, core.NaiveLOFs(ix, func(i int) []index.Neighbor {
				return index.KNNWithTies(ix, d.Points.At(i), minPts, i)
			}, minPts))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for m := range naive {
		for i := range naive[m] {
			diff := math.Abs(naive[m][i] - sweep.Values[m][i])
			if diff > res.MaxDiff {
				res.MaxDiff = diff
			}
		}
	}
	return res, nil
}

// Table renders the materialization ablation.
func (r *AblationMaterializationResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: two-step vs naive recomputation (n=%d, MinPts %d..%d)", r.N, r.MinPtsLB, r.MinPtsUB),
		Header: []string{"algorithm", "time ms", "max |ΔLOF|"},
	}
	t.AddRow("two-step (materialized)", ms(r.TwoStep), "0")
	t.AddRow("naive recomputation", ms(r.Naive), fmt.Sprintf("%.2e", r.MaxDiff))
	return t
}

// AblationReachResult quantifies the smoothing effect of reach-dist.
type AblationReachResult struct {
	MinPts           int
	ReachStd, RawStd float64
	ReachMax, RawMax float64
}

// RunAblationReach compares LOF computed with reachability distances
// against LOF computed with raw distances inside one uniform cluster: the
// paper introduces reach-dist precisely to suppress statistical
// fluctuation, so the raw variant must fluctuate more.
func RunAblationReach(seed int64, n int) (*AblationReachResult, error) {
	const minPts = 10
	d := dataset.UniformBox(seed, geom.Point{0, 0}, geom.Point{10, 10}, n)
	ix := kdtree.New(d.Points, nil)
	db, err := matdb.Materialize(d.Points, ix, minPts)
	if err != nil {
		return nil, err
	}
	reachLRD, err := core.LRDs(db, minPts)
	if err != nil {
		return nil, err
	}
	rawLRD, err := core.LRDsRaw(db, minPts)
	if err != nil {
		return nil, err
	}
	reachLOF, err := core.LOFsFromLRDs(db, minPts, reachLRD)
	if err != nil {
		return nil, err
	}
	rawLOF, err := core.LOFsFromLRDs(db, minPts, rawLRD)
	if err != nil {
		return nil, err
	}
	var reach, raw stats.Running
	for i := range reachLOF {
		reach.Add(reachLOF[i])
		raw.Add(rawLOF[i])
	}
	return &AblationReachResult{
		MinPts:   minPts,
		ReachStd: reach.Std(), RawStd: raw.Std(),
		ReachMax: reach.Max(), RawMax: raw.Max(),
	}, nil
}

// Table renders the reach-dist ablation.
func (r *AblationReachResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: reach-dist smoothing vs raw distances (uniform cluster, MinPts=%d)", r.MinPts),
		Header: []string{"variant", "LOF std", "LOF max"},
	}
	t.AddRow("reach-dist (Definition 5)", f(r.ReachStd), f(r.ReachMax))
	t.AddRow("raw distance", f(r.RawStd), f(r.RawMax))
	return t
}

// AblationAggregatesResult compares the Sec. 6.2 aggregation choices.
type AblationAggregatesResult struct {
	// OutlierRank[agg] is the planted outlier's rank under each aggregate.
	MaxRank, MeanRank, MinRank int
	// OutlierScore[agg] is its score under each aggregate.
	MaxScore, MeanScore, MinScore float64
}

// RunAblationAggregates demonstrates the paper's argument for max
// aggregation: on a dataset where an object is only outlying for part of
// the MinPts range, min (and to a lesser degree mean) dilute or erase its
// outlier-ness while max preserves it.
func RunAblationAggregates(seed int64) (*AblationAggregatesResult, error) {
	// A small 12-object cluster next to a large one: its members (and a
	// point on its far edge) are outlying only once MinPts exceeds the
	// small cluster's size — exactly the figure 8 effect.
	d := dataset.Mixture(seed, dataset.MixtureSpec{
		Name: "agg-ablation",
		Gaussians: []dataset.GaussianSpec{
			{Center: geom.Point{0, 0}, Sigma: 0.3, N: 12},
			{Center: geom.Point{20, 0}, Sigma: 2.5, N: 400},
		},
		Outliers: []geom.Point{{2.5, 0}},
	})
	_, sw, err := sweepDataset(d, 5, 30)
	if err != nil {
		return nil, err
	}
	p := d.Outliers[0]
	res := &AblationAggregatesResult{}
	rankOf := func(scores []float64) int {
		for pos, r := range core.Rank(scores) {
			if r.Index == p {
				return pos + 1
			}
		}
		return -1
	}
	maxS := sw.Aggregate(core.AggMax)
	meanS := sw.Aggregate(core.AggMean)
	minS := sw.Aggregate(core.AggMin)
	res.MaxRank, res.MaxScore = rankOf(maxS), maxS[p]
	res.MeanRank, res.MeanScore = rankOf(meanS), meanS[p]
	res.MinRank, res.MinScore = rankOf(minS), minS[p]
	return res, nil
}

// Table renders the aggregation ablation.
func (r *AblationAggregatesResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: aggregation over the MinPts range (planted outlier beside a 12-object cluster)",
		Header: []string{"aggregate", "outlier score", "outlier rank"},
	}
	t.AddRow("max (paper)", f(r.MaxScore), fmt.Sprintf("%d", r.MaxRank))
	t.AddRow("mean", f(r.MeanScore), fmt.Sprintf("%d", r.MeanRank))
	t.AddRow("min", f(r.MinScore), fmt.Sprintf("%d", r.MinRank))
	return t
}
