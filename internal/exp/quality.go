package exp

import (
	"fmt"
	"math"

	"lof/internal/core"
	"lof/internal/dataset"
	"lof/internal/dbscan"
	"lof/internal/eval"
	"lof/internal/geom"
	"lof/internal/index/kdtree"
	"lof/internal/knnout"
	"lof/internal/matdb"
	"lof/internal/stats"
)

// MethodQuality is one detector's ranking quality on a planted-outlier
// workload.
type MethodQuality struct {
	Method    string
	AUC       float64
	AvgPrec   float64
	PrecAtP   float64 // precision at |planted|
	RecallAtP float64
}

// QualityResult compares LOF against the global baselines on a
// multi-density workload with planted local and global outliers.
type QualityResult struct {
	N           int
	LocalCount  int
	GlobalCount int
	Methods     []MethodQuality
	// LocalFoundLOF / LocalFoundKNN count planted *local* outliers
	// appearing in each method's top-|planted| — the paper's headline
	// difference.
	LocalFoundLOF, LocalFoundKNN int
}

// RunQuality builds the section 3 situation at benchmark scale — clusters
// of very different densities plus planted local outliers (adjacent to the
// dense cluster) and global outliers (far from everything) — and scores
// LOF, the k-distance ranking of [17], and a DB(pct,dmin)-style
// neighbor-count ranking with ROC-AUC, average precision and
// precision/recall at the planted count.
func RunQuality(seed int64) (*QualityResult, error) {
	const (
		minPts  = 15
		nLocal  = 5
		nGlobal = 5
	)
	spec := dataset.MixtureSpec{
		Name: "quality",
		Gaussians: []dataset.GaussianSpec{
			{Center: geom.Point{0, 0}, Sigma: 0.3, N: 500}, // dense
			{Center: geom.Point{100, 0}, Sigma: 6, N: 500}, // sparse
		},
	}
	// Local outliers: well outside the dense cluster (≥ 8σ) yet closer to
	// it than typical sparse-cluster spacing — invisible to global
	// rankings.
	for i := 0; i < nLocal; i++ {
		angle := float64(i) / nLocal * 2 * math.Pi
		spec.Outliers = append(spec.Outliers, geom.Point{
			3 * math.Cos(angle), 3 * math.Sin(angle),
		})
	}
	// Global outliers: far from both clusters.
	for i := 0; i < nGlobal; i++ {
		spec.Outliers = append(spec.Outliers, geom.Point{
			50, 60 + 12*float64(i),
		})
	}
	d := dataset.Mixture(seed, spec)
	planted := map[int]bool{}
	localSet := map[int]bool{}
	for j, o := range d.Outliers {
		planted[o] = true
		if j < nLocal {
			localSet[o] = true
		}
	}

	ix := kdtree.New(d.Points, nil)
	db, err := matdb.Materialize(d.Points, ix, minPts)
	if err != nil {
		return nil, err
	}
	lofScores, err := core.LOFs(db, minPts)
	if err != nil {
		return nil, err
	}
	knnScores, err := knnout.Scores(d.Points, ix, minPts)
	if err != nil {
		return nil, err
	}
	// DB(pct,dmin)-style ranking: objects with fewer neighbors within dmin
	// are more outlying. dmin is set to twice the median MinPts-distance,
	// a neutral data-driven choice.
	kdists := make([]float64, d.Len())
	for i := range kdists {
		kdists[i] = db.KDistance(i, minPts)
	}
	med, err := stats.Quantile(kdists, 0.5)
	if err != nil {
		return nil, err
	}
	dmin := 2 * med
	dbScores := make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		count := len(ix.Range(d.Points.At(i), dmin, i))
		dbScores[i] = -float64(count) // fewer neighbors = higher score
	}

	res := &QualityResult{N: d.Len(), LocalCount: nLocal, GlobalCount: nGlobal}
	add := func(name string, scores []float64) (eval.Confusion, error) {
		auc, err := eval.ROCAUC(scores, planted)
		if err != nil {
			return eval.Confusion{}, err
		}
		ap, err := eval.AveragePrecision(scores, planted)
		if err != nil {
			return eval.Confusion{}, err
		}
		c, err := eval.AtTopK(scores, planted, nLocal+nGlobal)
		if err != nil {
			return eval.Confusion{}, err
		}
		res.Methods = append(res.Methods, MethodQuality{
			Method: name, AUC: auc, AvgPrec: ap,
			PrecAtP: c.Precision(), RecallAtP: c.Recall(),
		})
		return c, nil
	}
	if _, err := add("LOF", lofScores); err != nil {
		return nil, err
	}
	if _, err := add("kNN-distance [17]", knnScores); err != nil {
		return nil, err
	}
	if _, err := add("DB(pct,dmin) count [13]", dbScores); err != nil {
		return nil, err
	}

	countLocalsInTop := func(scores []float64) int {
		found := 0
		for _, r := range core.TopN(scores, nLocal+nGlobal) {
			if localSet[r.Index] {
				found++
			}
		}
		return found
	}
	res.LocalFoundLOF = countLocalsInTop(lofScores)
	res.LocalFoundKNN = countLocalsInTop(knnScores)
	return res, nil
}

// Table renders the quality comparison.
func (r *QualityResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Detection quality: %d objects, %d local + %d global planted outliers",
			r.N, r.LocalCount, r.GlobalCount),
		Header: []string{"method", "ROC-AUC", "avg precision", "prec@planted", "recall@planted"},
	}
	for _, m := range r.Methods {
		t.AddRow(m.Method, f(m.AUC), f(m.AvgPrec), f(m.PrecAtP), f(m.RecallAtP))
	}
	t.AddRow("local outliers in LOF top ranks", fmt.Sprintf("%d/%d", r.LocalFoundLOF, r.LocalCount), "", "", "")
	t.AddRow("local outliers in kNN top ranks", fmt.Sprintf("%d/%d", r.LocalFoundKNN, r.LocalCount), "", "", "")
	return t
}

// NoiseVsLOFResult contrasts DBSCAN's binary noise set with LOF degrees on
// the figure 9 dataset.
type NoiseVsLOFResult struct {
	NoiseSize int
	// PlantedInNoise counts the seven planted outliers DBSCAN labels noise.
	PlantedInNoise int
	Planted        int
	// NoiseLOFMin/Max show the degree spread LOF assigns within DBSCAN's
	// undifferentiated noise set.
	NoiseLOFMin, NoiseLOFMax float64
	// AUCNoise and AUCLOF score both as outlier rankings of the planted
	// outliers (binary noise membership vs graded LOF).
	AUCNoise, AUCLOF float64
}

// RunNoiseVsLOF runs DBSCAN on the figure 9 dataset and compares its binary
// noise set with LOF values at MinPts 40 — the related-work argument that
// clustering "noise" carries no degrees.
func RunNoiseVsLOF(seed int64) (*NoiseVsLOFResult, error) {
	d := dataset.Fig9Dataset(seed)
	const minPts = 40
	ix := kdtree.New(d.Points, nil)
	db, err := matdb.Materialize(d.Points, ix, minPts)
	if err != nil {
		return nil, err
	}
	lofScores, err := core.LOFs(db, minPts)
	if err != nil {
		return nil, err
	}
	// DBSCAN with a data-driven eps (twice the median 10-distance): the
	// conventional heuristic.
	kdists := make([]float64, d.Len())
	for i := range kdists {
		kdists[i] = db.KDistance(i, 10)
	}
	med, err := stats.Quantile(kdists, 0.5)
	if err != nil {
		return nil, err
	}
	cl, err := dbscan.Run(d.Points, ix, dbscan.Params{Eps: 2 * med, MinPts: 10})
	if err != nil {
		return nil, err
	}

	res := &NoiseVsLOFResult{Planted: len(d.Outliers)}
	planted := map[int]bool{}
	for _, o := range d.Outliers {
		planted[o] = true
	}
	res.NoiseLOFMin, res.NoiseLOFMax = math.Inf(1), math.Inf(-1)
	noiseScores := make([]float64, d.Len())
	for i, l := range cl.Labels {
		if l != dbscan.Noise {
			continue
		}
		res.NoiseSize++
		if planted[i] {
			res.PlantedInNoise++
		}
		noiseScores[i] = 1
		res.NoiseLOFMin = math.Min(res.NoiseLOFMin, lofScores[i])
		res.NoiseLOFMax = math.Max(res.NoiseLOFMax, lofScores[i])
	}
	if res.AUCNoise, err = eval.ROCAUC(noiseScores, planted); err != nil {
		return nil, err
	}
	if res.AUCLOF, err = eval.ROCAUC(lofScores, planted); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the noise-vs-LOF comparison.
func (r *NoiseVsLOFResult) Table() *Table {
	t := &Table{
		Title:  "DBSCAN noise (binary) vs LOF degrees on the figure 9 dataset",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("DBSCAN noise points", fmt.Sprintf("%d", r.NoiseSize))
	t.AddRow("planted outliers in noise", fmt.Sprintf("%d/%d", r.PlantedInNoise, r.Planted))
	t.AddRow("LOF range within the noise set", fmt.Sprintf("%s .. %s", f2(r.NoiseLOFMin), f2(r.NoiseLOFMax)))
	t.AddRow("ROC-AUC of noise membership as a ranking", f(r.AUCNoise))
	t.AddRow("ROC-AUC of LOF as a ranking", f(r.AUCLOF))
	return t
}
