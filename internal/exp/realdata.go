package exp

import (
	"fmt"
	"sort"

	"lof/internal/core"
	"lof/internal/dataset"
	"lof/internal/stats"
)

// RankedPlayer is one row of a ranked-outlier table.
type RankedPlayer struct {
	Rank  int
	Name  string
	Score float64
	// Features are the evaluated subspace values of the player.
	Features []float64
}

// HockeyResult is the outcome of one of the two section 7.2 experiments.
type HockeyResult struct {
	Test int
	Top  []RankedPlayer
	// RankOf maps the documented outlier names to their LOF rank (1-based).
	RankOf map[string]int
}

// RunHockey reproduces a section 7.2 hockey experiment (test 1 or 2) on the
// synthetic NHL96-like league: maximum LOF over MinPts 30..50, top-10
// ranking. Test 1 evaluates (points, plus-minus, penalty minutes); test 2
// evaluates (games played, goals, shooting percentage).
func RunHockey(seed int64, test int) (*HockeyResult, error) {
	l := dataset.Hockey(seed)
	var d *dataset.Dataset
	switch test {
	case 1:
		d = l.Test1()
	case 2:
		d = l.Test2()
	default:
		return nil, fmt.Errorf("exp: hockey test must be 1 or 2, got %d", test)
	}
	_, sw, err := sweepDataset(d, 30, 50)
	if err != nil {
		return nil, err
	}
	scores := sw.Aggregate(core.AggMax)
	res := &HockeyResult{Test: test, RankOf: map[string]int{}}
	for pos, r := range core.TopN(scores, 10) {
		res.Top = append(res.Top, RankedPlayer{
			Rank:     pos + 1,
			Name:     d.Label(r.Index),
			Score:    r.Score,
			Features: d.Points.At(r.Index),
		})
	}
	for pos, r := range core.Rank(scores) {
		name := d.Label(r.Index)
		switch name {
		case "Vladimir Konstantinov", "Matthew Barnaby", "Chris Osgood", "Mario Lemieux", "Steve Poapst":
			if _, seen := res.RankOf[name]; !seen {
				res.RankOf[name] = pos + 1
			}
		}
	}
	return res, nil
}

// Table renders the hockey ranking.
func (r *HockeyResult) Table() *Table {
	var hdr []string
	switch r.Test {
	case 1:
		hdr = []string{"rank", "LOF", "player", "points", "plus-minus", "penalty-min"}
	default:
		hdr = []string{"rank", "LOF", "player", "games", "goals", "shooting-pct"}
	}
	t := &Table{
		Title:  fmt.Sprintf("Section 7.2 hockey test %d: top outliers by max LOF (MinPts 30-50)", r.Test),
		Header: hdr,
	}
	for _, p := range r.Top {
		t.AddRow(fmt.Sprintf("%d", p.Rank), f2(p.Score), p.Name,
			f(p.Features[0]), f(p.Features[1]), f(p.Features[2]))
	}
	return t
}

// SoccerResult is the Table 3 reproduction.
type SoccerResult struct {
	// Outliers lists every player with max-LOF above the threshold 1.5,
	// exactly as Table 3 reports.
	Outliers []RankedPlayer
	// Positions holds each outlier's position name, aligned with Outliers.
	Positions []string
	// GamesSummary and GoalsSummary are the dataset summary rows of
	// Table 3.
	GamesSummary, GoalsSummary stats.Summary
	// RankOf maps the five published outliers to their 1-based LOF rank.
	RankOf map[string]int
}

// RunSoccer reproduces Table 3: LOF in the MinPts range 30..50 on the
// synthetic Bundesliga league, reporting all outliers with LOF > 1.5 plus
// the games/goals summary statistics.
func RunSoccer(seed int64) (*SoccerResult, error) {
	l := dataset.Soccer(seed)
	d := l.Dataset()
	_, sw, err := sweepDataset(d, 30, 50)
	if err != nil {
		return nil, err
	}
	scores := sw.Aggregate(core.AggMax)
	res := &SoccerResult{RankOf: map[string]int{}}
	for pos, r := range core.Rank(scores) {
		name := d.Label(r.Index)
		if r.Score > 1.5 {
			p := l.Players[r.Index]
			res.Outliers = append(res.Outliers, RankedPlayer{
				Rank:     pos + 1,
				Name:     name,
				Score:    r.Score,
				Features: []float64{p.Games, p.Goals},
			})
			res.Positions = append(res.Positions, p.Position.String())
		}
		switch name {
		case "Michael Preetz", "Michael Schjönberg", "Hans-Jörg Butt", "Ulf Kirsten", "Giovane Elber":
			res.RankOf[name] = pos + 1
		}
	}
	if res.GamesSummary, err = stats.Summarize(l.GamesColumn()); err != nil {
		return nil, err
	}
	if res.GoalsSummary, err = stats.Summarize(l.GoalsColumn()); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the Table 3 reproduction.
func (r *SoccerResult) Table() *Table {
	t := &Table{
		Title:  "Table 3: soccer players with max LOF > 1.5 (MinPts 30-50)",
		Header: []string{"rank", "LOF", "player", "games", "goals", "position"},
	}
	for i, p := range r.Outliers {
		t.AddRow(fmt.Sprintf("%d", p.Rank), f2(p.Score), p.Name,
			fmt.Sprintf("%.0f", p.Features[0]), fmt.Sprintf("%.0f", p.Features[1]), r.Positions[i])
	}
	t.AddRow("", "", "minimum", fmt.Sprintf("%.0f", r.GamesSummary.Min), fmt.Sprintf("%.0f", r.GoalsSummary.Min), "")
	t.AddRow("", "", "median", fmt.Sprintf("%.0f", r.GamesSummary.Median), fmt.Sprintf("%.0f", r.GoalsSummary.Median), "")
	t.AddRow("", "", "maximum", fmt.Sprintf("%.0f", r.GamesSummary.Max), fmt.Sprintf("%.0f", r.GoalsSummary.Max), "")
	t.AddRow("", "", "mean", fmt.Sprintf("%.1f", r.GamesSummary.Mean), fmt.Sprintf("%.1f", r.GoalsSummary.Mean), "")
	t.AddRow("", "", "std deviation", fmt.Sprintf("%.1f", r.GamesSummary.Std), fmt.Sprintf("%.1f", r.GoalsSummary.Std), "")
	return t
}

// HighDimResult is the 64-dimensional color-histogram experiment.
type HighDimResult struct {
	// MaxOutlierLOF is the largest planted-outlier LOF (the paper reports
	// "reasonable local outliers with LOF values of up to 7").
	MaxOutlierLOF float64
	// MaxClusterLOF is the largest LOF among scene-cluster members.
	MaxClusterLOF float64
	// PlantedInTop is how many of the planted outliers appear among the
	// top-|planted| ranked objects.
	PlantedInTop int
	// Planted is the number of planted outliers.
	Planted int
}

// RunHighDim reproduces the 64-d color-histogram experiment: LOF separates
// planted outlier frames from scene clusters in 64 dimensions.
func RunHighDim(seed int64) (*HighDimResult, error) {
	d := dataset.ColorHistograms(seed, dataset.DefaultColorHistSpec())
	_, sw, err := sweepDataset(d, 10, 20)
	if err != nil {
		return nil, err
	}
	scores := sw.Aggregate(core.AggMax)
	res := &HighDimResult{Planted: len(d.Outliers)}
	planted := map[int]bool{}
	for _, o := range d.Outliers {
		planted[o] = true
		if scores[o] > res.MaxOutlierLOF {
			res.MaxOutlierLOF = scores[o]
		}
	}
	for i, s := range scores {
		if !planted[i] && s > res.MaxClusterLOF {
			res.MaxClusterLOF = s
		}
	}
	for _, r := range core.TopN(scores, len(d.Outliers)) {
		if planted[r.Index] {
			res.PlantedInTop++
		}
	}
	return res, nil
}

// Table renders the high-dimensional experiment summary.
func (r *HighDimResult) Table() *Table {
	t := &Table{
		Title:  "Section 7 (64-d color histograms): planted outliers vs scene clusters",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("planted outliers", fmt.Sprintf("%d", r.Planted))
	t.AddRow("planted found in top ranks", fmt.Sprintf("%d", r.PlantedInTop))
	t.AddRow("max planted-outlier LOF", f2(r.MaxOutlierLOF))
	t.AddRow("max scene-member LOF", f2(r.MaxClusterLOF))
	return t
}

// sortedNames returns map keys in deterministic order (test helper shared
// by the command output).
func sortedNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RankTable renders a name→rank map.
func RankTable(title string, m map[string]int) *Table {
	t := &Table{Title: title, Header: []string{"player", "LOF rank"}}
	for _, n := range sortedNames(m) {
		t.AddRow(n, fmt.Sprintf("%d", m[n]))
	}
	return t
}
