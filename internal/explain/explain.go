// Package explain implements the paper's first "ongoing work" direction:
// describing why an identified local outlier is exceptional. Two
// complementary views are provided:
//
//   - a per-dimension decomposition: for high-dimensional data "a local
//     outlier may be outlying only on some, but not on all, dimensions"
//     (Sec. 8, citing [14]); DimensionProfile ranks the dimensions by how
//     far the object deviates from its MinPts-neighborhood on each;
//
//   - a cluster context via the OPTICS handshake: which extracted cluster
//     is the object outlying relative to, how far away it lies, and how
//     that cluster's density compares with the object's own neighborhood.
package explain

import (
	"fmt"
	"math"
	"sort"

	"lof/internal/geom"
	"lof/internal/matdb"
	"lof/internal/optics"
	"lof/internal/stats"
)

// DimensionContribution quantifies one dimension's share of an object's
// outlier-ness.
type DimensionContribution struct {
	// Dim is the dimension index.
	Dim int
	// ZScore is |x_dim − neighborhood mean_dim| / neighborhood std_dim
	// (+Inf when the neighborhood is constant on the dimension but the
	// object deviates).
	ZScore float64
	// Delta is the signed raw deviation x_dim − neighborhood mean_dim.
	Delta float64
}

// DimensionProfile decomposes object i's deviation from its
// MinPts-neighborhood dimension by dimension, most deviating first. The
// neighborhood comes from the same materialization database the LOF
// computation used.
func DimensionProfile(db *matdb.DB, pts *geom.Points, i, minPts int) ([]DimensionContribution, error) {
	if pts == nil {
		return nil, fmt.Errorf("explain: nil points")
	}
	if err := db.CheckMinPts(minPts); err != nil {
		return nil, err
	}
	if i < 0 || i >= pts.Len() {
		return nil, fmt.Errorf("explain: point %d out of range", i)
	}
	nn := db.Neighborhood(i, minPts)
	if len(nn) == 0 {
		return nil, fmt.Errorf("explain: point %d has no neighbors", i)
	}
	dim := pts.Dim()
	out := make([]DimensionContribution, dim)
	p := pts.At(i)
	for d := 0; d < dim; d++ {
		var run stats.Running
		for _, nb := range nn {
			run.Add(pts.At(nb.Index)[d])
		}
		delta := p[d] - run.Mean()
		z := math.Inf(1)
		if std := run.Std(); std > 0 {
			z = math.Abs(delta) / std
		} else if delta == 0 {
			z = 0
		}
		out[d] = DimensionContribution{Dim: d, ZScore: z, Delta: delta}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].ZScore != out[b].ZScore {
			return out[a].ZScore > out[b].ZScore
		}
		return out[a].Dim < out[b].Dim
	})
	return out, nil
}

// ClusterContext explains an outlier relative to an OPTICS cluster
// extraction.
type ClusterContext struct {
	// Cluster is the id (into the extraction's cluster list) of the
	// nearest cluster, or -1 if no clusters were extracted.
	Cluster int
	// Distance is the distance from the object to the nearest member of
	// that cluster.
	Distance float64
	// ClusterMeanReach is the cluster's mean reachability distance — its
	// density scale.
	ClusterMeanReach float64
	// Separation is Distance / ClusterMeanReach: how many "cluster
	// spacings" away the object lies. Large values mean the object is far
	// relative to the density of the cluster it is compared against — the
	// quantity LOF localizes.
	Separation float64
}

// NearestCluster locates the extracted cluster nearest to object i and
// quantifies its separation. The metric must match the one the index was
// built with.
func NearestCluster(pts *geom.Points, m geom.Metric, clusters []optics.Cluster, i int) (ClusterContext, error) {
	if pts == nil {
		return ClusterContext{}, fmt.Errorf("explain: nil points")
	}
	if i < 0 || i >= pts.Len() {
		return ClusterContext{}, fmt.Errorf("explain: point %d out of range", i)
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ctx := ClusterContext{Cluster: -1, Distance: math.Inf(1)}
	p := pts.At(i)
	for cid, c := range clusters {
		for _, member := range c.Members {
			if member == i {
				continue
			}
			if d := m.Distance(p, pts.At(member)); d < ctx.Distance {
				ctx.Cluster = cid
				ctx.Distance = d
			}
		}
	}
	if ctx.Cluster >= 0 {
		ctx.ClusterMeanReach = clusters[ctx.Cluster].MeanReach
		if ctx.ClusterMeanReach > 0 && !math.IsInf(ctx.ClusterMeanReach, 1) {
			ctx.Separation = ctx.Distance / ctx.ClusterMeanReach
		} else {
			ctx.Separation = math.Inf(1)
		}
	}
	return ctx, nil
}
