package explain

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
	"lof/internal/matdb"
	"lof/internal/optics"
)

// buildScene creates a tight 3-d cluster plus one outlier that deviates
// only on dimension 1.
func buildScene(t *testing.T) (*geom.Points, *matdb.DB, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	pts := geom.NewPoints(3, 0)
	for i := 0; i < 80; i++ {
		if err := pts.Append(geom.Point{
			rng.NormFloat64() * 0.5,
			rng.NormFloat64() * 0.5,
			rng.NormFloat64() * 0.5,
		}); err != nil {
			t.Fatal(err)
		}
	}
	outlier := pts.Len()
	if err := pts.Append(geom.Point{0.1, 12, -0.1}); err != nil {
		t.Fatal(err)
	}
	db, err := matdb.Materialize(pts, linear.New(pts, nil), 10)
	if err != nil {
		t.Fatal(err)
	}
	return pts, db, outlier
}

func TestDimensionProfileRanksDeviatingDimensionFirst(t *testing.T) {
	pts, db, outlier := buildScene(t)
	prof, err := DimensionProfile(db, pts, outlier, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 3 {
		t.Fatalf("profile len=%d", len(prof))
	}
	if prof[0].Dim != 1 {
		t.Fatalf("top dimension=%d want 1 (profile=%v)", prof[0].Dim, prof)
	}
	if prof[0].Delta < 10 {
		t.Fatalf("delta=%v", prof[0].Delta)
	}
	if prof[0].ZScore < 3*prof[1].ZScore {
		t.Fatalf("dimension 1 not clearly dominant: %v", prof)
	}
}

func TestDimensionProfileInlierIsFlat(t *testing.T) {
	pts, db, _ := buildScene(t)
	prof, err := DimensionProfile(db, pts, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prof {
		if c.ZScore > 4 {
			t.Fatalf("inlier z-score %v on dim %d", c.ZScore, c.Dim)
		}
	}
}

func TestDimensionProfileConstantDimension(t *testing.T) {
	// All points share x=5; a probe deviating on x must get ZScore +Inf,
	// and a conforming probe ZScore 0.
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 20; i++ {
		if err := pts.Append(geom.Point{5, float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := pts.Append(geom.Point{7, 10.5}); err != nil {
		t.Fatal(err)
	}
	db, err := matdb.Materialize(pts, linear.New(pts, nil), 5)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := DimensionProfile(db, pts, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if prof[0].Dim != 0 || !math.IsInf(prof[0].ZScore, 1) {
		t.Fatalf("profile=%v", prof)
	}
	// Probe a point whose neighborhood stays on the line (far from the
	// planted deviator, whose x would otherwise enter the neighborhood).
	prof, err = DimensionProfile(db, pts, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prof {
		if c.Dim == 0 && c.ZScore != 0 {
			t.Fatalf("conforming constant dimension z=%v", c.ZScore)
		}
	}
}

func TestDimensionProfileValidation(t *testing.T) {
	pts, db, _ := buildScene(t)
	if _, err := DimensionProfile(db, nil, 0, 10); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := DimensionProfile(db, pts, 0, 99); err == nil {
		t.Error("MinPts>K accepted")
	}
	if _, err := DimensionProfile(db, pts, -1, 10); err == nil {
		t.Error("negative index accepted")
	}
}

func TestNearestCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 50; i++ { // dense cluster at origin
		if err := pts.Append(geom.Point{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ { // sparse cluster at (30, 0)
		if err := pts.Append(geom.Point{30 + rng.NormFloat64()*2, rng.NormFloat64() * 2}); err != nil {
			t.Fatal(err)
		}
	}
	outlier := pts.Len()
	if err := pts.Append(geom.Point{3, 0}); err != nil { // near the dense cluster
		t.Fatal(err)
	}
	ix := linear.New(pts, nil)
	res, err := optics.Run(pts, ix, optics.Params{MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	clusters, _ := res.ExtractClusters(3, 10)
	if len(clusters) < 2 {
		t.Fatalf("clusters=%d", len(clusters))
	}
	ctx, err := NearestCluster(pts, nil, clusters, outlier)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Cluster < 0 {
		t.Fatal("no cluster found")
	}
	// The nearest cluster must be the dense one (its members are < 50).
	if clusters[ctx.Cluster].Members[0] >= 50 {
		t.Fatalf("nearest cluster is the sparse one")
	}
	// The object lies ~2.8 from the cluster whose spacing is ~0.1: the
	// separation must be large — the signature of a local outlier.
	if ctx.Separation < 5 {
		t.Fatalf("separation=%v", ctx.Separation)
	}

	// A deep member of the dense cluster has a small separation.
	memberCtx, err := NearestCluster(pts, nil, clusters, clusters[ctx.Cluster].Members[0])
	if err != nil {
		t.Fatal(err)
	}
	if memberCtx.Separation >= ctx.Separation {
		t.Fatalf("member separation %v not below outlier separation %v",
			memberCtx.Separation, ctx.Separation)
	}
}

func TestNearestClusterNoClusters(t *testing.T) {
	pts, _, _ := buildScene(t)
	ctx, err := NearestCluster(pts, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Cluster != -1 {
		t.Fatalf("ctx=%+v", ctx)
	}
	if _, err := NearestCluster(nil, nil, nil, 0); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := NearestCluster(pts, nil, nil, 9999); err == nil {
		t.Error("out-of-range index accepted")
	}
}
