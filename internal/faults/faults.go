// Package faults provides deterministic, seed-driven fault injection for
// exercising the serving stack's failure paths: latency spikes, transient
// errors and dropped responses. One Injector carries one fault profile and
// can be wrapped around the layers where real deployments fail —
// an HTTP server (Middleware), an HTTP client's transport (Transport) and
// a kNN index (Index, modeling slow storage under the materialization
// scan). All decisions come from a single seeded PRNG, so a given seed
// reproduces the exact same fault schedule run after run — which is what
// makes chaos tests assertable rather than flaky.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lof/internal/geom"
	"lof/internal/index"
)

// ErrInjected is the sentinel wrapped by every error the injector
// fabricates, so tests and retry policies can distinguish injected faults
// from genuine ones with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// Config is one fault profile. Probabilities are per operation (HTTP
// request, index query) and mutually exclusive with priority
// drop > error > latency: at most one fault fires per operation, so the
// profile's failure rate is exactly DropProb + ErrorProb.
type Config struct {
	// Seed drives every decision. Two injectors with equal configs issue
	// identical fault schedules.
	Seed int64
	// DropProb is the probability of a dropped response: the server
	// middleware aborts the connection without replying; the client
	// transport returns an error after the request was (conceptually)
	// sent. Models crashed peers and severed connections.
	DropProb float64
	// ErrorProb is the probability of a transient error: 503 from the
	// middleware, a retryable error from the transport.
	ErrorProb float64
	// RetryAfter, when positive, is advertised on injected 503s via the
	// Retry-After header (rounded up to whole seconds).
	RetryAfter time.Duration
	// LatencyProb is the probability of a latency spike on an otherwise
	// successful operation.
	LatencyProb float64
	// Latency is the spike ceiling; each spike draws uniformly from
	// (0, Latency]. Zero disables spikes regardless of LatencyProb.
	Latency time.Duration
}

// Stats counts the faults an injector has fired, by kind.
type Stats struct {
	Drops     int64
	Errors    int64
	Latencies int64
}

// Injector makes fault decisions for one profile. Safe for concurrent use;
// the PRNG is mutex-guarded so concurrent callers draw from one stream
// (the schedule is deterministic per seed, though its interleaving across
// goroutines follows scheduling order).
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	drops     atomic.Int64
	errors    atomic.Int64
	latencies atomic.Int64
}

// New returns an injector for the given profile.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the counts of faults fired so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Drops:     in.drops.Load(),
		Errors:    in.errors.Load(),
		Latencies: in.latencies.Load(),
	}
}

// action is one fault decision.
type action int

const (
	actNone action = iota
	actDrop
	actError
	actLatency
)

// decide draws one decision (and, for latency, its duration) from the
// stream. Exactly three uniform draws happen per call regardless of
// outcome, so the schedule depends only on the seed and the call ordinal —
// not on which probabilities are set.
func (in *Injector) decide() (action, time.Duration) {
	in.mu.Lock()
	u1, u2, u3 := in.rng.Float64(), in.rng.Float64(), in.rng.Float64()
	in.mu.Unlock()
	switch {
	case u1 < in.cfg.DropProb:
		in.drops.Add(1)
		return actDrop, 0
	case u2 < in.cfg.ErrorProb:
		in.errors.Add(1)
		return actError, 0
	case u3 < in.cfg.LatencyProb && in.cfg.Latency > 0:
		in.latencies.Add(1)
		// Map u3 back into [0, 1) over its accepted range for the spike
		// size, keeping one draw per decision slot.
		frac := u3 / in.cfg.LatencyProb
		d := time.Duration(frac * float64(in.cfg.Latency))
		if d <= 0 {
			d = 1
		}
		return actLatency, d
	default:
		return actNone, 0
	}
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first. A nil
// ctx sleeps unconditionally.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// --- HTTP server side ----------------------------------------------------

// Middleware wraps next with the injector's fault profile. Drops abort the
// connection without a response (the client observes EOF or a reset);
// errors answer 503 (with Retry-After when configured); latency spikes
// sleep — honoring the request context — before serving normally.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch act, d := in.decide(); act {
		case actDrop:
			// net/http recognizes ErrAbortHandler and closes the
			// connection without writing a response.
			panic(http.ErrAbortHandler)
		case actError:
			if in.cfg.RetryAfter > 0 {
				secs := int64((in.cfg.RetryAfter + time.Second - 1) / time.Second)
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			}
			http.Error(w, `{"error":"injected transient error"}`, http.StatusServiceUnavailable)
		case actLatency:
			sleepCtx(r.Context(), d)
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// --- HTTP client side ----------------------------------------------------

// transport injects faults below an http.RoundTripper.
type transport struct {
	in   *Injector
	next http.RoundTripper
}

// Transport wraps next (nil means http.DefaultTransport) with the
// injector's fault profile on the client side: drops and errors surface as
// request errors wrapping ErrInjected — indistinguishable from a severed
// connection as far as retry logic is concerned — and latency spikes delay
// the round trip, honoring the request context.
func (in *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{in: in, next: next}
}

func (t *transport) RoundTrip(r *http.Request) (*http.Response, error) {
	switch act, d := t.in.decide(); act {
	case actDrop:
		return nil, fmt.Errorf("faults: response dropped: %w", ErrInjected)
	case actError:
		return nil, fmt.Errorf("faults: transient network error: %w", ErrInjected)
	case actLatency:
		sleepCtx(r.Context(), d)
		if err := r.Context().Err(); err != nil {
			return nil, err
		}
	}
	return t.next.RoundTrip(r)
}

// --- index side ----------------------------------------------------------

// faultyIndex injects latency spikes into index queries. Index methods
// return no errors by contract, so drop and error probabilities translate
// to latency here too: any fault decision becomes a stall, modeling slow
// storage (page faults, cold caches) under the materialization scan.
type faultyIndex struct {
	index.Index
	in *Injector
}

// Index wraps ix with the injector's profile. Results are bit-identical to
// the wrapped index — only timing changes. A nil ix returns nil.
func (in *Injector) Index(ix index.Index) index.Index {
	if ix == nil {
		return nil
	}
	return &faultyIndex{Index: ix, in: in}
}

func (f *faultyIndex) stall() {
	act, d := f.in.decide()
	if act == actNone {
		return
	}
	if d <= 0 {
		d = f.in.cfg.Latency
	}
	if d > 0 {
		time.Sleep(d)
	}
}

func (f *faultyIndex) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	f.stall()
	return f.Index.KNN(q, k, exclude)
}

func (f *faultyIndex) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	f.stall()
	return f.Index.Range(q, r, exclude)
}

// NewCursor returns a cursor whose queries pass through the fault profile,
// so the cursor-threading hot path is exercised too.
func (f *faultyIndex) NewCursor() index.Cursor {
	return &faultyCursor{f: f, cur: index.NewCursor(f.Index)}
}

type faultyCursor struct {
	f   *faultyIndex
	cur index.Cursor
}

func (fc *faultyCursor) Index() index.Index { return fc.f }

func (fc *faultyCursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	fc.f.stall()
	return fc.cur.KNNInto(dst, q, k, exclude)
}

func (fc *faultyCursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	fc.f.stall()
	return fc.cur.RangeInto(dst, q, r, exclude)
}
