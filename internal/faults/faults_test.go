package faults

import (
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"lof/internal/geom"
	"lof/internal/index/linear"
)

// TestDeterministicSchedule: two injectors with the same seed make the
// same decisions in the same order; a different seed diverges.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, DropProb: 0.1, ErrorProb: 0.2, LatencyProb: 0.3, Latency: time.Millisecond}
	a, b := New(cfg), New(cfg)
	var seqA, seqB []action
	for i := 0; i < 200; i++ {
		actA, _ := a.decide()
		actB, _ := b.decide()
		seqA = append(seqA, actA)
		seqB = append(seqB, actB)
	}
	if !reflect.DeepEqual(seqA, seqB) {
		t.Fatal("same seed produced different fault schedules")
	}
	cfg.Seed = 8
	c := New(cfg)
	var seqC []action
	for i := 0; i < 200; i++ {
		act, _ := c.decide()
		seqC = append(seqC, act)
	}
	if reflect.DeepEqual(seqA, seqC) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestFaultRates: observed fault frequencies track the configured
// probabilities, and the priority ordering keeps them mutually exclusive.
func TestFaultRates(t *testing.T) {
	in := New(Config{Seed: 42, DropProb: 0.1, ErrorProb: 0.2, LatencyProb: 0.25, Latency: time.Nanosecond})
	const n = 20000
	for i := 0; i < n; i++ {
		in.decide()
	}
	st := in.Stats()
	within := func(name string, got int64, want float64) {
		t.Helper()
		frac := float64(got) / n
		if frac < want*0.8 || frac > want*1.2 {
			t.Errorf("%s rate %.3f, want ≈%.3f", name, frac, want)
		}
	}
	within("drop", st.Drops, 0.1)
	// Error fires only when drop did not: P = (1-0.1)*0.2 is wrong — the
	// draws are independent uniforms, so P(error) = P(u1 ≥ .1, u2 < .2).
	within("error", st.Errors, 0.9*0.2)
	within("latency", st.Latencies, 0.9*0.8*0.25)
}

// TestMiddleware: injected errors answer 503 with the configured
// Retry-After; drops sever the connection; clean requests pass through.
func TestMiddleware(t *testing.T) {
	okBody := "ok\n"
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, okBody)
	})
	in := New(Config{Seed: 3, DropProb: 0.2, ErrorProb: 0.2, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(in.Middleware(next))
	defer srv.Close()

	var ok, errs, drops int
	for i := 0; i < 100; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			drops++
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			errs++
			if got := resp.Header.Get("Retry-After"); got != "2" {
				t.Errorf("injected 503 Retry-After = %q, want \"2\"", got)
			}
		default:
			t.Errorf("unexpected status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if ok == 0 || errs == 0 || drops == 0 {
		t.Fatalf("expected a mix of outcomes, got ok=%d errors=%d drops=%d", ok, errs, drops)
	}
	st := in.Stats()
	if int(st.Drops) != drops || int(st.Errors) != errs {
		t.Errorf("stats {drops=%d errors=%d} disagree with observations {%d %d}",
			st.Drops, st.Errors, drops, errs)
	}
}

// TestTransport: client-side faults surface as errors wrapping ErrInjected
// and never reach the underlying transport.
func TestTransport(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()

	in := New(Config{Seed: 11, DropProb: 0.3, ErrorProb: 0.3})
	client := &http.Client{Transport: in.Transport(nil)}
	var failed int
	for i := 0; i < 60; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("transport error does not wrap ErrInjected: %v", err)
			}
			failed++
			continue
		}
		resp.Body.Close()
	}
	st := in.Stats()
	if int64(failed) != st.Drops+st.Errors {
		t.Errorf("%d failed requests, stats say %d", failed, st.Drops+st.Errors)
	}
	if served+failed != 60 {
		t.Errorf("server saw %d requests, %d failed client-side; want them to partition 60", served, failed)
	}
	if failed == 0 {
		t.Fatal("no faults fired at 60% combined probability over 60 requests")
	}
}

// TestIndexWrapperTransparent: the faulty index returns bit-identical
// results to the wrapped index — only timing differs.
func TestIndexWrapperTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]geom.Point, 200)
	for i := range data {
		data[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	pts, err := geom.FromRows(data)
	if err != nil {
		t.Fatal(err)
	}
	base := linear.New(pts, geom.Euclidean{})
	in := New(Config{Seed: 5, DropProb: 0.2, ErrorProb: 0.2, LatencyProb: 0.5, Latency: time.Microsecond})
	wrapped := in.Index(base)
	if wrapped.Len() != base.Len() {
		t.Fatalf("Len() = %d, want %d", wrapped.Len(), base.Len())
	}
	for i := 0; i < 20; i++ {
		q := geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		if got, want := wrapped.KNN(q, 5, -1), base.KNN(q, 5, -1); !reflect.DeepEqual(got, want) {
			t.Fatalf("KNN mismatch under fault injection: %v vs %v", got, want)
		}
		if got, want := wrapped.Range(q, 0.5, -1), base.Range(q, 0.5, -1); !reflect.DeepEqual(got, want) {
			t.Fatalf("Range mismatch under fault injection: %v vs %v", got, want)
		}
	}
	if in.Stats() == (Stats{}) {
		t.Error("no faults recorded across 40 probed queries at high probabilities")
	}
}
