package flatbin

import (
	"encoding/binary"
	"math"
	"unsafe"

	"lof/internal/index"
)

// Float64bitsOf and Float64frombitsOf are math.Float64bits/Frombits; they
// live here so the encoding layer has no other math dependency and the
// "every float is its exact bit pattern" contract is stated in one place.
func Float64bitsOf(v float64) uint64     { return math.Float64bits(v) }
func Float64frombitsOf(b uint64) float64 { return math.Float64frombits(b) }

// hostLittleEndian reports whether this platform stores integers
// little-endian — the precondition for reinterpreting file bytes (always
// little-endian) as numeric slices.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// neighborCastOK reports whether index.Neighbor's in-memory layout matches
// the 16-byte {u64 index, f64 dist} wire entry: 64-bit int at offset 0,
// float64 at offset 8, no padding, little-endian host. On any platform
// where this fails the loaders transparently fall back to copying.
var neighborCastOK = func() bool {
	var nb index.Neighbor
	return hostLittleEndian &&
		unsafe.Sizeof(nb) == 16 &&
		unsafe.Sizeof(nb.Index) == 8 &&
		unsafe.Offsetof(nb.Index) == 0 &&
		unsafe.Offsetof(nb.Dist) == 8
}()

// NeighborEntrySize is the wire size of one neighbor entry: u64 index
// followed by f64 distance bits.
const NeighborEntrySize = 16

// aligned reports whether b's first byte sits on an n-byte boundary. Empty
// slices are trivially aligned.
func aligned(b []byte, n uintptr) bool {
	if len(b) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&b[0]))%n == 0
}

// Float64s reinterprets b (little-endian float64 bit patterns) as a
// []float64. On a little-endian host with 8-aligned input the result
// aliases b — zero copy, reported by the second return — otherwise it is a
// freshly decoded copy. len(b) must be a multiple of 8.
func Float64s(b []byte) ([]float64, bool) {
	n := len(b) / 8
	if n == 0 {
		return nil, false
	}
	if hostLittleEndian && aligned(b, 8) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, false
}

// Uint64s reinterprets b as a []uint64; same contract as Float64s.
func Uint64s(b []byte) ([]uint64, bool) {
	n := len(b) / 8
	if n == 0 {
		return nil, false
	}
	if hostLittleEndian && aligned(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out, false
}

// Uint32s reinterprets b as a []uint32 (4-byte alignment suffices); same
// contract as Float64s.
func Uint32s(b []byte) ([]uint32, bool) {
	n := len(b) / 4
	if n == 0 {
		return nil, false
	}
	if hostLittleEndian && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, false
}

// Int32s reinterprets b as a []int32; same contract as Uint32s.
func Int32s(b []byte) ([]int32, bool) {
	n := len(b) / 4
	if n == 0 {
		return nil, false
	}
	if hostLittleEndian && aligned(b, 4) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, false
}

// Neighbors reinterprets b (NeighborEntrySize-byte {u64 index, f64 dist}
// entries) as a []index.Neighbor. Zero-copy when the in-memory struct layout
// matches the wire entry (64-bit little-endian platforms) and b is
// 8-aligned; a decoded copy otherwise. len(b) must be a multiple of
// NeighborEntrySize.
func Neighbors(b []byte) ([]index.Neighbor, bool) {
	n := len(b) / NeighborEntrySize
	if n == 0 {
		return nil, false
	}
	if neighborCastOK && aligned(b, 8) {
		return unsafe.Slice((*index.Neighbor)(unsafe.Pointer(&b[0])), n), true
	}
	out := make([]index.Neighbor, n)
	for i := range out {
		off := i * NeighborEntrySize
		out[i] = index.Neighbor{
			Index: int(int64(binary.LittleEndian.Uint64(b[off:]))),
			Dist:  math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:])),
		}
	}
	return out, false
}

// AppendNeighbor appends one wire neighbor entry to b.
func AppendNeighbor(b []byte, nb index.Neighbor) []byte {
	b = AppendU64(b, uint64(int64(nb.Index)))
	return AppendU64(b, math.Float64bits(nb.Dist))
}
