// Package flatbin is the binary-layout toolkit shared by the snapshot
// formats: explicit little-endian scalar encoding (no reflection), sectioned
// file framing, and zero-copy reinterpretation of byte regions as numeric
// slices where the platform allows it.
//
// Every multi-byte value in every snapshot format is little-endian. The
// sectioned formats (model snapshot v3, shard part v2) store their bulk
// payloads — coordinates, neighbor entries, offset tables — in exactly the
// in-memory layout of the serving structures, at 8-byte-aligned offsets, so
// a loader holding the file bytes (read or mmap'd) can serve straight out of
// them: the cast functions below reinterpret the section bytes in place on
// 64-bit little-endian platforms and fall back to an allocate-and-decode
// copy everywhere else. Callers never need to know which happened, except
// that a zero-copy result aliases the input bytes and inherits their
// lifetime.
package flatbin

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Writer encodes little-endian scalars onto an io.Writer with a sticky
// error, so encoders read as straight-line field lists with one error check
// per logical group.
type Writer struct {
	w   io.Writer
	n   int64
	err error
	buf [8]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// N returns the number of bytes successfully written.
func (w *Writer) N() int64 { return w.n }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	w.err = err
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) {
	w.buf[0] = v
	w.write(w.buf[:1])
}

// U16 writes a little-endian uint16.
func (w *Writer) U16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.write(w.buf[:2])
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I32 writes a little-endian int32 (two's complement).
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// F64 writes a little-endian IEEE-754 float64 (its exact bit pattern).
func (w *Writer) F64(v float64) { w.U64(Float64bitsOf(v)) }

// Bytes writes p verbatim.
func (w *Writer) Bytes(p []byte) { w.write(p) }

// String writes s verbatim (no length prefix; the formats carry their own).
func (w *Writer) String(s string) {
	if w.err != nil {
		return
	}
	n, err := io.WriteString(w.w, s)
	w.n += int64(n)
	w.err = err
}

// Reader decodes little-endian scalars from an io.Reader with a sticky
// error. After the first failure every accessor returns zero, so decoders
// can read a whole field group and check Err once; Context wraps the sticky
// error with a field name for descriptive load errors.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first read error, if any.
func (r *Reader) Err() error { return r.err }

// Context returns nil if no error occurred, or the sticky error wrapped
// with the given field description.
func (r *Reader) Context(format string, args ...interface{}) error {
	if r.err == nil {
		return nil
	}
	return fmt.Errorf(format+": %w", append(args, r.err)...)
}

func (r *Reader) read(n int) []byte {
	if r.err != nil {
		return r.buf[:n] // zeroed below via prior failure contract
	}
	if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
		r.err = err
		for i := range r.buf {
			r.buf[i] = 0
		}
	}
	return r.buf[:n]
}

// U8 reads one byte.
func (r *Reader) U8() uint8 { return r.read(1)[0] }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 { return binary.LittleEndian.Uint16(r.read(2)) }

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// F64 reads a little-endian float64.
func (r *Reader) F64() float64 { return Float64frombitsOf(r.U64()) }

// Full fills p or sets the sticky error.
func (r *Reader) Full(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = err
	}
}

// Append helpers for encoders that assemble a sized buffer directly.

// AppendU16 appends a little-endian uint16 to b.
func AppendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

// AppendU32 appends a little-endian uint32 to b.
func AppendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendU64 appends a little-endian uint64 to b.
func AppendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendI32 appends a little-endian int32 to b.
func AppendI32(b []byte, v int32) []byte { return AppendU32(b, uint32(v)) }

// AppendF64 appends a little-endian float64 to b.
func AppendF64(b []byte, v float64) []byte { return AppendU64(b, Float64bitsOf(v)) }

// Align8 returns n rounded up to the next multiple of 8. Section offsets in
// the flat snapshot formats are all 8-aligned so the numeric casts above
// apply; the padding bytes between sections are zero.
func Align8(n int) int { return (n + 7) &^ 7 }
