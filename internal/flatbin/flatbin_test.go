package flatbin

import (
	"bytes"
	"math"
	"testing"

	"lof/internal/index"
)

func TestWriterReaderRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U8(7)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I32(-42)
	w.F64(math.Pi)
	w.String("metric")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.N() != int64(buf.Len()) {
		t.Fatalf("writer counted %d bytes, buffer has %d", w.N(), buf.Len())
	}

	r := NewReader(&buf)
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := r.U16(); v != 0xbeef {
		t.Fatalf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %#x", v)
	}
	if v := r.U64(); v != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", v)
	}
	if v := r.I32(); v != -42 {
		t.Fatalf("I32 = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	name := make([]byte, 6)
	r.Full(name)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if string(name) != "metric" {
		t.Fatalf("string = %q", name)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2}))
	_ = r.U64() // short read
	if r.Err() == nil {
		t.Fatal("expected error from short read")
	}
	if v := r.U32(); v != 0 {
		t.Fatalf("post-error read returned %d, want 0", v)
	}
	if err := r.Context("reading field %d", 3); err == nil {
		t.Fatal("Context should wrap the sticky error")
	}
}

func TestAppendMatchesWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U16(513)
	w.U32(70000)
	w.U64(1 << 40)
	w.I32(-9)
	w.F64(-0.5)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	var b []byte
	b = AppendU16(b, 513)
	b = AppendU32(b, 70000)
	b = AppendU64(b, 1<<40)
	b = AppendI32(b, -9)
	b = AppendF64(b, -0.5)
	if !bytes.Equal(b, buf.Bytes()) {
		t.Fatalf("append bytes %x != writer bytes %x", b, buf.Bytes())
	}
}

func TestFloat64sCast(t *testing.T) {
	want := []float64{1.5, -2.25, math.Inf(1), 0}
	var b []byte
	for _, v := range want {
		b = AppendF64(b, v)
	}
	got, _ := Float64s(b)
	if len(got) != len(want) {
		t.Fatalf("got %d values", len(got))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("value %d: %v != %v", i, got[i], want[i])
		}
	}
	// Misaligned input must still decode correctly (by copy).
	shifted := append(make([]byte, 1, 1+len(b)), b...)
	got2, zc := Float64s(shifted[1:])
	if zc && !aligned(shifted[1:], 8) {
		t.Fatal("claimed zero-copy on misaligned input")
	}
	for i := range want {
		if math.Float64bits(got2[i]) != math.Float64bits(want[i]) {
			t.Fatalf("misaligned value %d: %v != %v", i, got2[i], want[i])
		}
	}
}

func TestNeighborsCast(t *testing.T) {
	want := []index.Neighbor{{Index: 0, Dist: 0.5}, {Index: 1 << 33, Dist: math.Pi}, {Index: 7, Dist: 0}}
	var b []byte
	for _, nb := range want {
		b = AppendNeighbor(b, nb)
	}
	if len(b) != len(want)*NeighborEntrySize {
		t.Fatalf("encoded %d bytes", len(b))
	}
	got, _ := Neighbors(b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestSectionTable(t *testing.T) {
	// Simulate a file: 8-byte header, 2-entry table, two sections, trailer.
	tableOff := 8
	s1 := Section{ID: 1, Off: uint64(tableOff + 2*SectionEntrySize), Len: 5}
	s2 := Section{ID: 2, Off: uint64(Align8(int(s1.Off + s1.Len))), Len: 16}
	end := int(s2.Off + s2.Len)
	file := make([]byte, end+4)
	table := AppendSection(nil, s1)
	table = AppendSection(table, s2)
	copy(file[tableOff:], table)

	ss, err := ParseSections(file, tableOff, 2, end)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := SectionByID(ss, 2); !ok || got != s2 {
		t.Fatalf("section 2 = %+v, %v", got, ok)
	}
	if d := ss[0].Data(file); len(d) != 5 {
		t.Fatalf("section 1 data length %d", len(d))
	}

	// Overlap, misalignment and overflow must all be rejected.
	bad := append([]byte(nil), file...)
	copy(bad[tableOff:], AppendSection(AppendSection(nil, s1), Section{ID: 2, Off: s1.Off, Len: 8}))
	if _, err := ParseSections(bad, tableOff, 2, end); err == nil {
		t.Fatal("overlapping sections accepted")
	}
	bad = append([]byte(nil), file...)
	copy(bad[tableOff:], AppendSection(nil, Section{ID: 1, Off: s1.Off + 1, Len: 4}))
	if _, err := ParseSections(bad, tableOff, 2, end); err == nil {
		t.Fatal("misaligned section accepted")
	}
	bad = append([]byte(nil), file...)
	copy(bad[tableOff:], AppendSection(AppendSection(nil, s1), Section{ID: 2, Off: s2.Off, Len: 1 << 40}))
	if _, err := ParseSections(bad, tableOff, 2, end); err == nil {
		t.Fatal("out-of-bounds section accepted")
	}
}
