package flatbin

import "fmt"

// Section is one entry of a sectioned snapshot's table: a typed, 8-aligned
// byte range within the file. The table itself is a count of fixed
// SectionEntrySize records immediately after the format header:
//
//	id u32 | reserved u32 (zero) | off u64 | len u64
//
// Offsets are absolute file offsets. Sections appear in the table in
// ascending offset order, do not overlap, and leave only zero padding
// between one section's end and the next 8-aligned offset.
type Section struct {
	ID  uint32
	Off uint64
	Len uint64
}

// SectionEntrySize is the wire size of one section-table entry.
const SectionEntrySize = 24

// AppendSection appends s's table entry to b.
func AppendSection(b []byte, s Section) []byte {
	b = AppendU32(b, s.ID)
	b = AppendU32(b, 0)
	b = AppendU64(b, s.Off)
	return AppendU64(b, s.Len)
}

// ParseSections decodes and validates a section table. file is the whole
// snapshot, tableOff the table's offset, count the header's section count,
// and payloadEnd the first byte past the last legal section byte (the CRC
// trailer offset). It checks each entry lies in [end of table, payloadEnd],
// starts 8-aligned, and follows the previous section without overlap.
func ParseSections(file []byte, tableOff, count, payloadEnd int) ([]Section, error) {
	if count < 0 || count > 64 {
		return nil, fmt.Errorf("flatbin: implausible section count %d", count)
	}
	tableEnd := tableOff + count*SectionEntrySize
	if tableEnd > payloadEnd {
		return nil, fmt.Errorf("flatbin: section table (%d entries) exceeds payload", count)
	}
	out := make([]Section, count)
	prevEnd := uint64(tableEnd)
	for i := 0; i < count; i++ {
		e := file[tableOff+i*SectionEntrySize:]
		s := Section{
			ID:  uint32(e[0]) | uint32(e[1])<<8 | uint32(e[2])<<16 | uint32(e[3])<<24,
			Off: leU64(e[8:]),
			Len: leU64(e[16:]),
		}
		if s.Off%8 != 0 {
			return nil, fmt.Errorf("flatbin: section %d (id %d) at misaligned offset %d", i, s.ID, s.Off)
		}
		if s.Off < prevEnd {
			return nil, fmt.Errorf("flatbin: section %d (id %d) at offset %d overlaps previous end %d", i, s.ID, s.Off, prevEnd)
		}
		end := s.Off + s.Len
		if end < s.Off || end > uint64(payloadEnd) {
			return nil, fmt.Errorf("flatbin: section %d (id %d) spans [%d, %d) beyond payload end %d", i, s.ID, s.Off, end, payloadEnd)
		}
		out[i] = s
		prevEnd = end
	}
	return out, nil
}

// SectionByID returns the first section with the given id, or false.
func SectionByID(ss []Section, id uint32) (Section, bool) {
	for _, s := range ss {
		if s.ID == id {
			return s, true
		}
	}
	return Section{}, false
}

// Data returns the byte range of s within file. ParseSections already
// bounds-checked it.
func (s Section) Data(file []byte) []byte {
	return file[s.Off : s.Off+s.Len : s.Off+s.Len]
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
