// Package geom provides the point geometry and distance metrics underlying
// the LOF library. All datasets are flat slices of float64 coordinates; a
// Points value is an immutable-by-convention view of n points in d
// dimensions stored row-major in a single backing slice.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Point is a single position in d-dimensional space.
type Point []float64

// Clone returns a copy of p that shares no storage with it.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every coordinate of p is finite.
func (p Point) Valid() bool {
	for _, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}

// Points is a dense row-major collection of n points in d dimensions.
// The zero value is an empty collection.
type Points struct {
	coords []float64
	dim    int
}

// ErrDimension is returned when points of mismatched dimensionality are
// combined.
var ErrDimension = errors.New("geom: dimension mismatch")

// ErrInvalidCoord is returned when a NaN or infinite coordinate is supplied.
var ErrInvalidCoord = errors.New("geom: non-finite coordinate")

// NewPoints creates an empty collection of points with the given
// dimensionality and capacity hint.
func NewPoints(dim, capHint int) *Points {
	if dim <= 0 {
		panic(fmt.Sprintf("geom: NewPoints dim must be positive, got %d", dim))
	}
	if capHint < 0 {
		capHint = 0
	}
	return &Points{coords: make([]float64, 0, capHint*dim), dim: dim}
}

// FromSlice wraps a row-major coordinate slice as a Points collection.
// The slice is used directly, not copied; its length must be a multiple
// of dim.
func FromSlice(coords []float64, dim int) (*Points, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("geom: dimension must be positive, got %d", dim)
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("geom: coordinate slice length %d is not a multiple of dim %d", len(coords), dim)
	}
	for _, c := range coords {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, ErrInvalidCoord
		}
	}
	return &Points{coords: coords, dim: dim}, nil
}

// FromRows builds a Points collection from a slice of points. All rows must
// share the same dimensionality and contain only finite coordinates.
func FromRows(rows []Point) (*Points, error) {
	if len(rows) == 0 {
		return nil, errors.New("geom: FromRows requires at least one row")
	}
	dim := len(rows[0])
	ps := NewPoints(dim, len(rows))
	for i, r := range rows {
		if err := ps.Append(r); err != nil {
			return nil, fmt.Errorf("geom: row %d: %w", i, err)
		}
	}
	return ps, nil
}

// Append adds one point to the collection.
func (ps *Points) Append(p Point) error {
	if len(p) != ps.dim {
		return fmt.Errorf("%w: have %d, want %d", ErrDimension, len(p), ps.dim)
	}
	if !p.Valid() {
		return ErrInvalidCoord
	}
	ps.coords = append(ps.coords, p...)
	return nil
}

// Len returns the number of points in the collection.
func (ps *Points) Len() int {
	if ps == nil || ps.dim == 0 {
		return 0
	}
	return len(ps.coords) / ps.dim
}

// Dim returns the dimensionality of the collection.
func (ps *Points) Dim() int { return ps.dim }

// At returns a view of point i. The returned slice aliases the backing
// storage; callers must not modify it.
func (ps *Points) At(i int) Point {
	off := i * ps.dim
	return Point(ps.coords[off : off+ps.dim : off+ps.dim])
}

// Row copies point i into dst, which must have length Dim, and returns dst.
// If dst is nil a new slice is allocated.
func (ps *Points) Row(i int, dst Point) Point {
	if dst == nil {
		dst = make(Point, ps.dim)
	}
	copy(dst, ps.At(i))
	return dst
}

// Coords returns the backing row-major coordinate slice. Callers must not
// modify it.
func (ps *Points) Coords() []float64 { return ps.coords }

// Clone returns a deep copy of the collection.
func (ps *Points) Clone() *Points {
	out := &Points{coords: make([]float64, len(ps.coords)), dim: ps.dim}
	copy(out.coords, ps.coords)
	return out
}

// Subset returns a new collection containing the points at the given
// indices, in order.
func (ps *Points) Subset(idx []int) *Points {
	out := NewPoints(ps.dim, len(idx))
	for _, i := range idx {
		out.coords = append(out.coords, ps.At(i)...)
	}
	return out
}

// Bounds returns the coordinate-wise minimum and maximum over all points.
// It panics on an empty collection.
func (ps *Points) Bounds() (lo, hi Point) {
	n := ps.Len()
	if n == 0 {
		panic("geom: Bounds of empty Points")
	}
	lo = ps.At(0).Clone()
	hi = ps.At(0).Clone()
	for i := 1; i < n; i++ {
		p := ps.At(i)
		for d := 0; d < ps.dim; d++ {
			if p[d] < lo[d] {
				lo[d] = p[d]
			}
			if p[d] > hi[d] {
				hi[d] = p[d]
			}
		}
	}
	return lo, hi
}
