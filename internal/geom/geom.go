// Package geom provides the point geometry and distance metrics underlying
// the LOF library. All datasets are flat slices of float64 coordinates; a
// Store (alias Points) is an immutable-by-convention flat point store of n
// points in d dimensions held in a single contiguous backing block at an
// explicit row stride. Distance kernels (kernel.go) run dimension-strided
// loops over that block so the index hot paths never materialize per-row
// slice headers.
package geom

import (
	"math"
)

// Point is a single position in d-dimensional space.
type Point []float64

// Clone returns a copy of p that shares no storage with it.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every coordinate of p is finite.
func (p Point) Valid() bool {
	for _, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}
