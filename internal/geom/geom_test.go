package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatalf("Clone shares storage: p=%v", p)
	}
	if !p.Equal(Point{1, 2, 3}) {
		t.Fatalf("p mutated: %v", p)
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{1, 3}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPointValid(t *testing.T) {
	if !(Point{1, 2}).Valid() {
		t.Error("finite point reported invalid")
	}
	if (Point{1, math.NaN()}).Valid() {
		t.Error("NaN point reported valid")
	}
	if (Point{math.Inf(1), 0}).Valid() {
		t.Error("Inf point reported valid")
	}
}

func TestNewPointsAndAppend(t *testing.T) {
	ps := NewPoints(2, 4)
	if ps.Len() != 0 {
		t.Fatalf("new Points not empty: %d", ps.Len())
	}
	if err := ps.Append(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Append(Point{3, 4}); err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 2 || ps.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", ps.Len(), ps.Dim())
	}
	if !ps.At(1).Equal(Point{3, 4}) {
		t.Fatalf("At(1)=%v", ps.At(1))
	}
}

func TestAppendDimensionMismatch(t *testing.T) {
	ps := NewPoints(2, 0)
	if err := ps.Append(Point{1, 2, 3}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestAppendRejectsNaN(t *testing.T) {
	ps := NewPoints(2, 0)
	if err := ps.Append(Point{1, math.NaN()}); err == nil {
		t.Fatal("expected ErrInvalidCoord")
	}
}

func TestFromSlice(t *testing.T) {
	ps, err := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 2 {
		t.Fatalf("Len=%d", ps.Len())
	}
	if _, err := FromSlice([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := FromSlice([]float64{1, math.Inf(-1)}, 2); err == nil {
		t.Fatal("expected non-finite error")
	}
	if _, err := FromSlice(nil, 0); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestFromRows(t *testing.T) {
	ps, err := FromRows([]Point{{0, 0}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 3 {
		t.Fatalf("Len=%d", ps.Len())
	}
	if _, err := FromRows([]Point{{0, 0}, {1}}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestSubsetAndClone(t *testing.T) {
	ps, _ := FromRows([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	sub := ps.Subset([]int{3, 1})
	if sub.Len() != 2 || !sub.At(0).Equal(Point{3, 3}) || !sub.At(1).Equal(Point{1, 1}) {
		t.Fatalf("Subset wrong: %v %v", sub.At(0), sub.At(1))
	}
	cl := ps.Clone()
	cl.coords[0] = 42
	if ps.coords[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestBounds(t *testing.T) {
	ps, _ := FromRows([]Point{{1, -5}, {-2, 7}, {0, 0}})
	lo, hi := ps.Bounds()
	if !lo.Equal(Point{-2, -5}) || !hi.Equal(Point{1, 7}) {
		t.Fatalf("Bounds=%v %v", lo, hi)
	}
}

func TestBoundsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPoints(2, 0).Bounds()
}

func TestRowCopies(t *testing.T) {
	ps, _ := FromRows([]Point{{1, 2}})
	r := ps.Row(0, nil)
	r[0] = 99
	if ps.At(0)[0] != 1 {
		t.Fatal("Row aliases storage")
	}
	dst := make(Point, 2)
	if got := ps.Row(0, dst); &got[0] != &dst[0] {
		t.Fatal("Row did not use dst")
	}
}

func TestMetricsKnownValues(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if d := (Euclidean{}).Distance(p, q); math.Abs(d-5) > 1e-12 {
		t.Errorf("euclidean=%v want 5", d)
	}
	if d := (Manhattan{}).Distance(p, q); math.Abs(d-7) > 1e-12 {
		t.Errorf("manhattan=%v want 7", d)
	}
	if d := (Chebyshev{}).Distance(p, q); math.Abs(d-4) > 1e-12 {
		t.Errorf("chebyshev=%v want 4", d)
	}
	mk, err := NewMinkowski(2)
	if err != nil {
		t.Fatal(err)
	}
	if d := mk.Distance(p, q); math.Abs(d-5) > 1e-12 {
		t.Errorf("minkowski(2)=%v want 5", d)
	}
}

func TestNewMinkowskiRejectsBadOrder(t *testing.T) {
	for _, p := range []float64{0.5, 0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewMinkowski(p); err == nil {
			t.Errorf("NewMinkowski(%v) accepted", p)
		}
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"euclidean", "l2", "", "manhattan", "l1", "chebyshev", "linf"} {
		if _, err := MetricByName(name); err != nil {
			t.Errorf("MetricByName(%q): %v", name, err)
		}
	}
	if _, err := MetricByName("cosine"); err == nil {
		t.Error("unknown metric accepted")
	}
}

// metricAxioms checks non-negativity, symmetry, identity and the triangle
// inequality on random triples.
func metricAxioms(t *testing.T, m Metric) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		dim := 1 + r.Intn(6)
		mk := func() Point {
			p := make(Point, dim)
			for i := range p {
				p[i] = r.NormFloat64() * 10
			}
			return p
		}
		a, b, c := mk(), mk(), mk()
		dab, dba := m.Distance(a, b), m.Distance(b, a)
		if dab < 0 || math.Abs(dab-dba) > 1e-9 {
			return false
		}
		if m.Distance(a, a) > 1e-12 {
			return false
		}
		// triangle inequality with numeric slack
		if m.Distance(a, c) > dab+m.Distance(b, c)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("%s axioms violated: %v", m.Name(), err)
	}
}

func TestMetricAxiomsProperty(t *testing.T) {
	mk, _ := NewMinkowski(3)
	for _, m := range []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, mk} {
		metricAxioms(t, m)
	}
}

func TestSqDistMatchesEuclidean(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true // avoid overflow in d*d; not a property violation
			}
		}
		a, b := Point{ax, ay}, Point{bx, by}
		d := (Euclidean{}).Distance(a, b)
		return math.Abs(d*d-SqDist(a, b)) <= 1e-6*(1+math.Abs(d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinDistToRect(t *testing.T) {
	lo, hi := Point{0, 0}, Point{2, 2}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},            // inside
		{Point{3, 1}, 1},            // right of box
		{Point{-1, -1}, math.Sqrt2}, // diagonal corner
		{Point{1, 5}, 3},            // above
	}
	for _, c := range cases {
		if got := MinDistToRect(Euclidean{}, c.p, lo, hi); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDistToRect(%v)=%v want %v", c.p, got, c.want)
		}
	}
	// Generic path via Minkowski must match Euclidean for p=2.
	mk, _ := NewMinkowski(2)
	for _, c := range cases {
		if got := MinDistToRect(mk, c.p, lo, hi); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("generic MinDistToRect(%v)=%v want %v", c.p, got, c.want)
		}
	}
}

func TestMaxDistToRect(t *testing.T) {
	lo, hi := Point{0, 0}, Point{2, 2}
	if got := MaxDistToRect(Euclidean{}, Point{-1, -1}, lo, hi); math.Abs(got-3*math.Sqrt2) > 1e-12 {
		t.Errorf("euclidean max=%v", got)
	}
	if got := MaxDistToRect(Manhattan{}, Point{1, 1}, lo, hi); math.Abs(got-2) > 1e-12 {
		t.Errorf("manhattan max=%v", got)
	}
	if got := MaxDistToRect(Chebyshev{}, Point{3, 1}, lo, hi); math.Abs(got-3) > 1e-12 {
		t.Errorf("chebyshev max=%v", got)
	}
}

func TestMaxDistToRectPanicsOnUnsupported(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mk, _ := NewMinkowski(3)
	MaxDistToRect(mk, Point{0}, Point{0}, Point{1})
}

// MaxDistToRect must upper-bound the distance from p to any point inside
// the rectangle.
func TestMaxDistToRectIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range []Metric{Euclidean{}, Manhattan{}, Chebyshev{}} {
		for iter := 0; iter < 300; iter++ {
			dim := 1 + rng.Intn(4)
			lo := make(Point, dim)
			hi := make(Point, dim)
			in := make(Point, dim)
			p := make(Point, dim)
			for i := 0; i < dim; i++ {
				a, b := rng.NormFloat64()*5, rng.NormFloat64()*5
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
				in[i] = a + rng.Float64()*(b-a)
				p[i] = rng.NormFloat64() * 10
			}
			bound := MaxDistToRect(m, p, lo, hi)
			if actual := m.Distance(p, in); bound < actual-1e-9 {
				t.Fatalf("%s: bound %v below actual %v", m.Name(), bound, actual)
			}
		}
	}
}

// MinDistToRect must lower-bound the distance from p to any point inside the
// rectangle — the property the kNN tree pruning relies on.
func TestMinDistToRectIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []Metric{Euclidean{}, Manhattan{}, Chebyshev{}} {
		for iter := 0; iter < 300; iter++ {
			dim := 1 + rng.Intn(4)
			lo := make(Point, dim)
			hi := make(Point, dim)
			in := make(Point, dim)
			p := make(Point, dim)
			for i := 0; i < dim; i++ {
				a, b := rng.NormFloat64()*5, rng.NormFloat64()*5
				if a > b {
					a, b = b, a
				}
				lo[i], hi[i] = a, b
				in[i] = a + rng.Float64()*(b-a)
				p[i] = rng.NormFloat64() * 10
			}
			bound := MinDistToRect(m, p, lo, hi)
			if actual := m.Distance(p, in); bound > actual+1e-9 {
				t.Fatalf("%s: bound %v exceeds actual %v (p=%v lo=%v hi=%v in=%v)",
					m.Name(), bound, actual, p, lo, hi, in)
			}
		}
	}
}

func TestWeightedEuclideanKnownValues(t *testing.T) {
	m, err := NewWeightedEuclidean([]float64{4, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	// sqrt(4·3² + 0.25·4²) = sqrt(36+4) = sqrt(40)
	if d := m.Distance(Point{0, 0}, Point{3, 4}); math.Abs(d-math.Sqrt(40)) > 1e-12 {
		t.Fatalf("d=%v", d)
	}
	if m.Name() != "weighted-euclidean" {
		t.Fatalf("name=%q", m.Name())
	}
	// Zero weight ignores a dimension.
	m2, err := NewWeightedEuclidean([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := m2.Distance(Point{100, 0}, Point{-100, 3}); d != 3 {
		t.Fatalf("d=%v", d)
	}
}

func TestNewWeightedEuclideanValidation(t *testing.T) {
	bad := [][]float64{
		nil,
		{},
		{-1, 1},
		{math.NaN()},
		{math.Inf(1)},
		{0, 0},
	}
	for i, ws := range bad {
		if _, err := NewWeightedEuclidean(ws); err == nil {
			t.Errorf("case %d accepted: %v", i, ws)
		}
	}
	// The weight slice must be copied.
	ws := []float64{1, 2}
	m, err := NewWeightedEuclidean(ws)
	if err != nil {
		t.Fatal(err)
	}
	ws[0] = 99
	if d := m.Distance(Point{0, 0}, Point{1, 0}); d != 1 {
		t.Fatalf("weights not copied: d=%v", d)
	}
}

func TestWeightedEuclideanAxioms(t *testing.T) {
	m, err := NewWeightedEuclidean([]float64{2, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the shared axiom checker via fixed-dimension points.
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 300; iter++ {
		mk := func() Point {
			return Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		a, b, c := mk(), mk(), mk()
		if d := m.Distance(a, b); d < 0 || math.Abs(d-m.Distance(b, a)) > 1e-9 {
			t.Fatal("symmetry/non-negativity violated")
		}
		if m.Distance(a, a) > 1e-12 {
			t.Fatal("identity violated")
		}
		if m.Distance(a, c) > m.Distance(a, b)+m.Distance(b, c)+1e-9 {
			t.Fatal("triangle inequality violated")
		}
	}
}

func TestWeightedRectBounds(t *testing.T) {
	m, err := NewWeightedEuclidean([]float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := Point{0, 0}, Point{2, 2}
	// Point left of the box: gap 1 on x only → sqrt(4·1)=2.
	if got := MinDistToRect(m, Point{-1, 1}, lo, hi); math.Abs(got-2) > 1e-12 {
		t.Fatalf("min=%v", got)
	}
	// Farthest corner from (-1,1) is (2,0) or (2,2): sqrt(4·9+1) = sqrt(37).
	if got := MaxDistToRect(m, Point{-1, 1}, lo, hi); math.Abs(got-math.Sqrt(37)) > 1e-12 {
		t.Fatalf("max=%v", got)
	}
	// Bound properties against points inside the box.
	rng := rand.New(rand.NewSource(20))
	for iter := 0; iter < 200; iter++ {
		p := Point{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		in := Point{rng.Float64() * 2, rng.Float64() * 2}
		d := m.Distance(p, in)
		if MinDistToRect(m, p, lo, hi) > d+1e-9 {
			t.Fatal("min bound exceeds actual")
		}
		if MaxDistToRect(m, p, lo, hi) < d-1e-9 {
			t.Fatal("max bound below actual")
		}
	}
}

func TestAxisGapLowerBound(t *testing.T) {
	if got := AxisGapLowerBound(Euclidean{}, 0, -3); got != 3 {
		t.Fatalf("euclidean gap=%v", got)
	}
	wm, err := NewWeightedEuclidean([]float64{4, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if got := AxisGapLowerBound(wm, 0, 3); got != 6 {
		t.Fatalf("weighted axis0 gap=%v", got)
	}
	if got := AxisGapLowerBound(wm, 1, 4); got != 2 {
		t.Fatalf("weighted axis1 gap=%v", got)
	}
	// Unknown metric: conservative zero (no pruning).
	if got := AxisGapLowerBound(fakeMetric{}, 0, 5); got != 0 {
		t.Fatalf("unknown metric gap=%v", got)
	}
}

type fakeMetric struct{}

func (fakeMetric) Distance(p, q Point) float64 { return 0 }
func (fakeMetric) Name() string                { return "fake" }
