package geom

import "math"

// kernelKind discriminates the metric fast paths a Kernel dispatches over.
// Resolving the metric's dynamic type once per kernel — instead of once per
// candidate inside an index scan — is the point of this type: the scan loop
// pays one integer switch per distance instead of an interface call, and the
// row is addressed by raw offset into the store's contiguous block instead
// of through a freshly built slice header.
type kernelKind uint8

const (
	kernGeneric kernelKind = iota
	kernEuclidean
	kernManhattan
	kernChebyshev
	kernMinkowski
	kernWeighted
)

// Kernel is a resolved distance function over a store: metric dispatch
// hoisted out of the scan loop, rows addressed by (index × stride) offsets.
// The kernel reads the store through its pointer on every call, so it stays
// valid across appends that re-back the coordinate block (the dynamic index
// grows its store between queries).
//
// Every fast path computes, term for term in ascending dimension order, the
// exact arithmetic of the corresponding Metric.Distance — the refactor from
// per-row slices to strided offsets is proven bit-identical by the oracle
// tests — and the generic path falls back to the Metric interface. All
// metrics in this package are symmetric (the metric axioms require it), so
// the kernel fixes one canonical argument order.
type Kernel struct {
	s    *Store
	m    Metric
	kind kernelKind
	w    []float64 // weighted Euclidean weights
	p    float64   // Minkowski order
}

// NewKernel resolves m over s. A nil metric resolves to Euclidean.
func NewKernel(s *Store, m Metric) Kernel {
	if m == nil {
		m = Euclidean{}
	}
	k := Kernel{s: s, m: m, kind: kernGeneric}
	switch mm := m.(type) {
	case Euclidean:
		k.kind = kernEuclidean
	case Manhattan:
		k.kind = kernManhattan
	case Chebyshev:
		k.kind = kernChebyshev
	case Minkowski:
		k.kind = kernMinkowski
		k.p = mm.P
	case *WeightedEuclidean:
		k.kind = kernWeighted
		k.w = mm.weights
	}
	return k
}

// Metric returns the metric the kernel resolves.
func (k *Kernel) Metric() Metric { return k.m }

// Dist returns the distance between row i of the kernel's store and q.
// It is the hot inner loop of every index structure.
func (k *Kernel) Dist(i int, q Point) float64 {
	s := k.s
	off := i * s.stride
	c := s.coords
	switch k.kind {
	case kernEuclidean:
		var sum float64
		_ = c[off+len(q)-1]
		for j, v := range q {
			d := v - c[off+j]
			sum += d * d
		}
		return math.Sqrt(sum)
	case kernManhattan:
		var sum float64
		_ = c[off+len(q)-1]
		for j, v := range q {
			sum += math.Abs(v - c[off+j])
		}
		return sum
	case kernChebyshev:
		var mx float64
		_ = c[off+len(q)-1]
		for j, v := range q {
			if d := math.Abs(v - c[off+j]); d > mx {
				mx = d
			}
		}
		return mx
	case kernMinkowski:
		var sum float64
		_ = c[off+len(q)-1]
		for j, v := range q {
			sum += math.Pow(math.Abs(v-c[off+j]), k.p)
		}
		return math.Pow(sum, 1/k.p)
	case kernWeighted:
		var sum float64
		_ = c[off+len(q)-1]
		_ = k.w[len(q)-1]
		for j, v := range q {
			d := v - c[off+j]
			sum += k.w[j] * d * d
		}
		return math.Sqrt(sum)
	default:
		return k.m.Distance(q, k.s.At(i))
	}
}

// SqDist returns the squared L2 distance between row i and q for Euclidean
// kernels; other kinds fall back to squaring Dist. Index pruning paths that
// compare against squared bounds use it to skip the square root.
func (k *Kernel) SqDist(i int, q Point) float64 {
	if k.kind == kernEuclidean {
		s := k.s
		off := i * s.stride
		c := s.coords
		var sum float64
		_ = c[off+len(q)-1]
		for j, v := range q {
			d := v - c[off+j]
			sum += d * d
		}
		return sum
	}
	d := k.Dist(i, q)
	return d * d
}

// SqDist returns the squared L2 distance between two points. It remains the
// slice-to-slice entry point for callers that do not hold a Store; the
// strided equivalent is Kernel.SqDist.
func SqDist(p, q Point) float64 {
	var s float64
	_ = q[len(p)-1]
	for i, v := range p {
		d := v - q[i]
		s += d * d
	}
	return s
}
