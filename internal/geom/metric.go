package geom

import (
	"fmt"
	"math"
)

// Metric computes the distance between two points of equal dimensionality.
// Implementations must satisfy the metric axioms (non-negativity, identity,
// symmetry, triangle inequality) for the exactness guarantees of the index
// structures to hold.
type Metric interface {
	// Distance returns the distance between p and q.
	Distance(p, q Point) float64
	// Name returns a short identifier such as "euclidean".
	Name() string
}

// Euclidean is the L2 metric used throughout the paper.
type Euclidean struct{}

// Distance returns the L2 distance between p and q.
func (Euclidean) Distance(p, q Point) float64 {
	return math.Sqrt(SqDist(p, q))
}

// Name returns "euclidean".
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the L1 distance between p and q.
func (Manhattan) Distance(p, q Point) float64 {
	var s float64
	_ = q[len(p)-1]
	for i, v := range p {
		s += math.Abs(v - q[i])
	}
	return s
}

// Name returns "manhattan".
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the L∞ distance between p and q.
func (Chebyshev) Distance(p, q Point) float64 {
	var m float64
	_ = q[len(p)-1]
	for i, v := range p {
		d := math.Abs(v - q[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Name returns "chebyshev".
func (Chebyshev) Name() string { return "chebyshev" }

// Minkowski is the Lp metric for a configurable order p ≥ 1.
type Minkowski struct {
	// P is the order of the metric; values below 1 violate the triangle
	// inequality and are rejected by NewMinkowski.
	P float64
}

// NewMinkowski returns an Lp metric. It returns an error if p < 1, because
// such "metrics" break the triangle inequality the indexes rely on.
func NewMinkowski(p float64) (Minkowski, error) {
	if p < 1 || math.IsNaN(p) || math.IsInf(p, 0) {
		return Minkowski{}, fmt.Errorf("geom: Minkowski order must be a finite value >= 1, got %v", p)
	}
	return Minkowski{P: p}, nil
}

// Distance returns the Lp distance between p and q.
func (m Minkowski) Distance(a, b Point) float64 {
	var s float64
	_ = b[len(a)-1]
	for i, v := range a {
		s += math.Pow(math.Abs(v-b[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name returns an identifier of the form "minkowski(p)".
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski(%g)", m.P) }

// WeightedEuclidean is an L2 metric with per-dimension weights — the
// library-level answer to incommensurate feature scales (an alternative to
// rescaling the data itself). A weight of 0 ignores a dimension entirely.
type WeightedEuclidean struct {
	weights []float64
}

// NewWeightedEuclidean validates the weights (finite, non-negative, at
// least one positive) and returns the metric. The weight slice is copied.
func NewWeightedEuclidean(weights []float64) (*WeightedEuclidean, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("geom: weighted metric needs at least one weight")
	}
	anyPositive := false
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("geom: weight %d is %v; weights must be finite and non-negative", i, w)
		}
		if w > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		return nil, fmt.Errorf("geom: all weights are zero")
	}
	cp := make([]float64, len(weights))
	copy(cp, weights)
	return &WeightedEuclidean{weights: cp}, nil
}

// Distance returns sqrt(Σ w_i (p_i − q_i)²). The points' dimensionality
// must equal the weight count.
func (m *WeightedEuclidean) Distance(p, q Point) float64 {
	var s float64
	_ = q[len(p)-1]
	_ = m.weights[len(p)-1]
	for i, v := range p {
		d := v - q[i]
		s += m.weights[i] * d * d
	}
	return math.Sqrt(s)
}

// Name returns "weighted-euclidean".
func (m *WeightedEuclidean) Name() string { return "weighted-euclidean" }

// minDistToRect is the exact weighted lower bound used by tree pruning.
func (m *WeightedEuclidean) minDistToRect(p, lo, hi Point) float64 {
	var s float64
	for i, v := range p {
		var d float64
		if v < lo[i] {
			d = lo[i] - v
		} else if v > hi[i] {
			d = v - hi[i]
		}
		s += m.weights[i] * d * d
	}
	return math.Sqrt(s)
}

// maxDistToRect is the exact weighted upper bound used by the VA-file.
func (m *WeightedEuclidean) maxDistToRect(p, lo, hi Point) float64 {
	var s float64
	for i, v := range p {
		a, b := math.Abs(v-lo[i]), math.Abs(v-hi[i])
		if b > a {
			a = b
		}
		s += m.weights[i] * a * a
	}
	return math.Sqrt(s)
}

// AxisGapLowerBound returns a lower bound on the distance (under m)
// between two points whose coordinates differ by at least gap on the given
// axis. The k-d tree and grid indexes prune with it. For the Lp family the
// coordinate gap itself is a valid bound; for weighted Euclidean it scales
// by √w; for unknown metrics the bound degrades to 0 (no pruning, still
// correct).
func AxisGapLowerBound(m Metric, axis int, gap float64) float64 {
	if gap < 0 {
		gap = -gap
	}
	switch mm := m.(type) {
	case Euclidean, Manhattan, Chebyshev, Minkowski:
		return gap
	case *WeightedEuclidean:
		return math.Sqrt(mm.weights[axis]) * gap
	default:
		return 0
	}
}

// MetricByName returns the named metric: "euclidean", "manhattan" (or "l1"),
// "chebyshev" (or "linf"). Unknown names yield an error.
func MetricByName(name string) (Metric, error) {
	switch name {
	case "euclidean", "l2", "":
		return Euclidean{}, nil
	case "manhattan", "l1":
		return Manhattan{}, nil
	case "chebyshev", "linf":
		return Chebyshev{}, nil
	default:
		return nil, fmt.Errorf("geom: unknown metric %q", name)
	}
}

// MaxDistToRect returns the maximum distance (under metric m) from point p
// to any point of the axis-aligned rectangle [lo, hi]. It supports the
// Euclidean, Manhattan and Chebyshev metrics, which is what the VA-file
// needs for its upper bounds; other metrics cause a panic.
func MaxDistToRect(m Metric, p, lo, hi Point) float64 {
	perDim := func(i int) float64 {
		a, b := math.Abs(p[i]-lo[i]), math.Abs(p[i]-hi[i])
		if a > b {
			return a
		}
		return b
	}
	if wm, ok := m.(*WeightedEuclidean); ok {
		return wm.maxDistToRect(p, lo, hi)
	}
	switch m.(type) {
	case Euclidean:
		var s float64
		for i := range p {
			d := perDim(i)
			s += d * d
		}
		return math.Sqrt(s)
	case Manhattan:
		var s float64
		for i := range p {
			s += perDim(i)
		}
		return s
	case Chebyshev:
		var mx float64
		for i := range p {
			if d := perDim(i); d > mx {
				mx = d
			}
		}
		return mx
	default:
		panic(fmt.Sprintf("geom: MaxDistToRect unsupported for metric %s", m.Name()))
	}
}

// MinDistToRect returns the minimum distance (under metric m) from point p
// to the axis-aligned rectangle [lo, hi]. It is exact for Euclidean,
// Manhattan and Chebyshev metrics and is used by the tree indexes for
// branch-and-bound pruning.
func MinDistToRect(m Metric, p, lo, hi Point) float64 {
	if wm, ok := m.(*WeightedEuclidean); ok {
		return wm.minDistToRect(p, lo, hi)
	}
	switch m.(type) {
	case Euclidean:
		var s float64
		for i, v := range p {
			var d float64
			if v < lo[i] {
				d = lo[i] - v
			} else if v > hi[i] {
				d = v - hi[i]
			}
			s += d * d
		}
		return math.Sqrt(s)
	case Manhattan:
		var s float64
		for i, v := range p {
			if v < lo[i] {
				s += lo[i] - v
			} else if v > hi[i] {
				s += v - hi[i]
			}
		}
		return s
	case Chebyshev:
		var mx float64
		for i, v := range p {
			var d float64
			if v < lo[i] {
				d = lo[i] - v
			} else if v > hi[i] {
				d = v - hi[i]
			}
			if d > mx {
				mx = d
			}
		}
		return mx
	default:
		// Generic lower bound: distance from p to its clamp onto the
		// rectangle. Valid for every true metric because the clamped point
		// is inside the rectangle.
		cl := make(Point, len(p))
		for i, v := range p {
			switch {
			case v < lo[i]:
				cl[i] = lo[i]
			case v > hi[i]:
				cl[i] = hi[i]
			default:
				cl[i] = v
			}
		}
		return m.Distance(p, cl)
	}
}
