package geom

import (
	"errors"
	"fmt"
	"math"
)

// Store is the flat point store underlying every index, the materialization
// database and the snapshot formats: one contiguous []float64 coordinate
// block holding n rows of dim coordinates each, laid out at a fixed Stride
// (Stride ≥ Dim; any padding floats are zero). Row-major contiguity is the
// property the paper's cost analysis rewards — kNN materialization is a
// sequential sweep over coordinates — and the explicit stride is what lets
// the distance kernels in kernel.go address rows by raw offset instead of
// materializing a slice header per candidate.
//
// A Store is immutable by convention once indexed or snapshotted: the
// accessors return views into the backing block, and every consumer in this
// module treats them as read-only. The zero value is an empty store.
//
// Points is an alias of Store kept for the historical name; constructors in
// this package produce packed stores (Stride == Dim), which is also the
// layout the snapshot coordinate sections use, so a snapshot's coords block
// can be wrapped as a Store without copying. StrideAlign exists for callers
// that want cache-line-aligned rows at the cost of padding.
type Store struct {
	coords []float64
	n      int
	dim    int
	stride int
}

// Points is the historical name of the flat point store.
type Points = Store

// ErrDimension is returned when points of mismatched dimensionality are
// combined.
var ErrDimension = errors.New("geom: dimension mismatch")

// ErrInvalidCoord is returned when a NaN or infinite coordinate is supplied.
var ErrInvalidCoord = errors.New("geom: non-finite coordinate")

// StrideAlign is the row granularity NewAligned pads to: 8 float64s, one
// 64-byte cache line, so no row straddles a line it does not have to.
const StrideAlign = 8

// NewPoints creates an empty packed collection of points with the given
// dimensionality and capacity hint.
func NewPoints(dim, capHint int) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("geom: NewPoints dim must be positive, got %d", dim))
	}
	if capHint < 0 {
		capHint = 0
	}
	return &Store{coords: make([]float64, 0, capHint*dim), dim: dim, stride: dim}
}

// NewAligned creates an empty store whose rows are padded to a multiple of
// StrideAlign floats, so every row starts on a 64-byte boundary when the
// backing block does. The padding floats are zero and never observable
// through the accessors.
func NewAligned(dim, capHint int) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("geom: NewAligned dim must be positive, got %d", dim))
	}
	if capHint < 0 {
		capHint = 0
	}
	stride := (dim + StrideAlign - 1) / StrideAlign * StrideAlign
	return &Store{coords: make([]float64, 0, capHint*stride), dim: dim, stride: stride}
}

// FromSlice wraps a packed row-major coordinate slice as a Store. The slice
// is used directly, not copied; its length must be a multiple of dim and
// every coordinate must be finite. This is the zero-copy entry point the
// snapshot loaders use: a coords section cast out of an mmap'd snapshot
// becomes a servable Store without a decode pass.
func FromSlice(coords []float64, dim int) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("geom: dimension must be positive, got %d", dim)
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("geom: coordinate slice length %d is not a multiple of dim %d", len(coords), dim)
	}
	for _, c := range coords {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, ErrInvalidCoord
		}
	}
	return &Store{coords: coords, n: len(coords) / dim, dim: dim, stride: dim}, nil
}

// FromRows builds a packed Store from a slice of points. All rows must
// share the same dimensionality and contain only finite coordinates.
func FromRows(rows []Point) (*Store, error) {
	if len(rows) == 0 {
		return nil, errors.New("geom: FromRows requires at least one row")
	}
	dim := len(rows[0])
	ps := NewPoints(dim, len(rows))
	for i, r := range rows {
		if err := ps.Append(r); err != nil {
			return nil, fmt.Errorf("geom: row %d: %w", i, err)
		}
	}
	return ps, nil
}

// Append adds one point to the store, zero-filling any stride padding.
func (s *Store) Append(p Point) error {
	if len(p) != s.dim {
		return fmt.Errorf("%w: have %d, want %d", ErrDimension, len(p), s.dim)
	}
	if !p.Valid() {
		return ErrInvalidCoord
	}
	s.coords = append(s.coords, p...)
	for pad := s.stride - s.dim; pad > 0; pad-- {
		s.coords = append(s.coords, 0)
	}
	s.n++
	return nil
}

// Len returns the number of points in the store.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Dim returns the dimensionality of the store.
func (s *Store) Dim() int { return s.dim }

// Stride returns the row stride in floats (Stride ≥ Dim; equal for packed
// stores).
func (s *Store) Stride() int { return s.stride }

// Packed reports whether the store has no inter-row padding, i.e. the
// backing block is exactly the row-major coordinate matrix.
func (s *Store) Packed() bool { return s.stride == s.dim }

// At returns a view of point i. The returned slice aliases the backing
// storage; callers must not modify it.
func (s *Store) At(i int) Point {
	off := i * s.stride
	return Point(s.coords[off : off+s.dim : off+s.dim])
}

// Row copies point i into dst, which must have length Dim, and returns dst.
// If dst is nil a new slice is allocated.
func (s *Store) Row(i int, dst Point) Point {
	if dst == nil {
		dst = make(Point, s.dim)
	}
	copy(dst, s.At(i))
	return dst
}

// Coords returns the packed row-major coordinate matrix of the store.
//
// Sharing contract: for packed stores (every store this package's
// constructors produce, and every store restored from a snapshot) the
// returned slice IS the backing block — it aliases the store, mutating it
// corrupts every index and database built over the store, and it remains
// reachable as long as the caller holds it. Callers that need ownership —
// to serialize asynchronously, splice into another store, or outlive a
// snapshot mapping — must use CloneCoords. For padded stores the padding
// must be stripped, so the result is necessarily a fresh packed copy.
func (s *Store) Coords() []float64 {
	if s.Packed() {
		return s.coords
	}
	return s.CloneCoords()
}

// CloneCoords returns a freshly allocated packed row-major copy of the
// coordinates, sharing no storage with the store. It is the explicit-
// ownership counterpart of Coords.
func (s *Store) CloneCoords() []float64 {
	out := make([]float64, s.n*s.dim)
	if s.Packed() {
		copy(out, s.coords[:s.n*s.dim])
		return out
	}
	for i := 0; i < s.n; i++ {
		copy(out[i*s.dim:(i+1)*s.dim], s.At(i))
	}
	return out
}

// Clone returns a deep copy of the store, preserving its stride.
func (s *Store) Clone() *Store {
	out := &Store{coords: make([]float64, len(s.coords)), n: s.n, dim: s.dim, stride: s.stride}
	copy(out.coords, s.coords)
	return out
}

// Subset returns a new packed store containing the points at the given
// indices, in order.
func (s *Store) Subset(idx []int) *Store {
	out := NewPoints(s.dim, len(idx))
	for _, i := range idx {
		out.coords = append(out.coords, s.At(i)...)
	}
	out.n = len(idx)
	return out
}

// Bounds returns the coordinate-wise minimum and maximum over all points.
// It panics on an empty store.
func (s *Store) Bounds() (lo, hi Point) {
	n := s.Len()
	if n == 0 {
		panic("geom: Bounds of empty Points")
	}
	lo = s.At(0).Clone()
	hi = s.At(0).Clone()
	for i := 1; i < n; i++ {
		p := s.At(i)
		for d := 0; d < s.dim; d++ {
			if p[d] < lo[d] {
				lo[d] = p[d]
			}
			if p[d] > hi[d] {
				hi[d] = p[d]
			}
		}
	}
	return lo, hi
}
