// Package incremental maintains exact LOF values under point insertions
// and deletions — the paper's second "ongoing work" direction ("to further
// improve the performance of LOF computation"). Instead of recomputing the
// whole database, an update touches only the affected neighborhoods: the
// changed point's reverse k-nearest neighbors (whose k-distances shift),
// the points whose local reachability density depends on those
// k-distances, and the points whose LOF depends on those densities. All
// values stay exactly equal to a from-scratch batch computation, which the
// tests verify after every update.
//
// Neighborhood and reverse-neighbor queries run through a dynamic spatial
// index (internal/index/dynamic: immutable k-d tree base plus overlay and
// tombstones), so the cost of one update tracks the size of the affected
// neighborhood rather than the dataset. Reverse k-nearest-neighbor sets
// are found exactly with one range query: every point q with
// d(q,p) ≤ kdist(q) lies within maxKdist of p, where maxKdist is a
// maintained upper bound on all live k-distances, so Range(p, maxKdist)
// plus a per-candidate k-distance check yields the reverse set without a
// linear scan.
package incremental

import (
	"fmt"
	"math"

	"lof/internal/core"
	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/dynamic"
)

// boundRecomputeEvery is how many updates may pass before the k-distance
// upper bound is recomputed exactly. Deletions only ever leave the bound
// stale-high (a correct but looser reverse-query radius), so a periodic
// exact pass keeps query cost tight at O(Size/boundRecomputeEvery)
// amortized per update.
const boundRecomputeEvery = 64

// Detector is a dynamic (insert/delete) LOF maintenance structure. It is
// not safe for concurrent mutation; read-only scoring against a quiescent
// detector is safe from many goroutines via ScoreAtCursor (the epoch layer
// in internal/stream builds exactly that discipline on top).
type Detector struct {
	minPts int
	metric geom.Metric

	// ix owns the point storage and tombstones; slot indices are stable
	// across all mutations and compact only via Compact.
	ix *dynamic.Index
	// cur is the writer-owned query cursor over ix.
	cur index.Cursor

	// nn[i] is point i's MinPts-distance neighborhood (with ties), sorted
	// by (distance, index). Empty until at least minPts+1 points exist.
	nn    [][]index.Neighbor
	kdist []float64
	lrd   []float64
	lof   []float64

	// lastAffected records how many points the most recent update
	// touched, for observability and the locality tests.
	lastAffected int

	// kdistBound is an upper bound on every live point's current
	// k-distance — the reverse-query radius. Raised eagerly whenever a
	// recomputed k-distance exceeds it, tightened exactly every
	// boundRecomputeEvery updates and on every rebuild.
	kdistBound   float64
	updatesSince int

	// scratch stages one neighborhood per recomputeNeighborhood call;
	// rscratch stages reverse-range candidates; icands holds the filtered
	// reverse-neighbor indices while their neighborhoods are recomputed.
	scratch  []index.Neighbor
	rscratch []index.Neighbor
	icands   []int
}

// New creates an empty incremental detector. dim is the dimensionality of
// all future points; minPts as in the batch algorithm.
func New(dim, minPts int, m geom.Metric) (*Detector, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("incremental: dim must be positive, got %d", dim)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("incremental: MinPts must be positive, got %d", minPts)
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ix := dynamic.New(dim, m)
	return &Detector{minPts: minPts, metric: m, ix: ix, cur: ix.NewCursor()}, nil
}

// Len returns the number of live (inserted and not deleted) points.
func (d *Detector) Len() int { return d.ix.Len() }

// Size returns the number of slots ever allocated, including tombstones;
// point indices run over [0, Size).
func (d *Detector) Size() int { return d.ix.Size() }

// Dim returns the dimensionality of the detector's points.
func (d *Detector) Dim() int { return d.ix.Dim() }

// MinPts returns the MinPts value the detector maintains LOFs at.
func (d *Detector) MinPts() int { return d.minPts }

// Metric returns the detector's distance metric.
func (d *Detector) Metric() geom.Metric { return d.metric }

// At returns a view of slot i's coordinates (deleted slots keep their last
// coordinates); callers must not modify it.
func (d *Detector) At(i int) geom.Point { return d.ix.At(i) }

// Deleted reports whether index i does not hold a live point: removed
// points and out-of-range indices both report true.
func (d *Detector) Deleted(i int) bool { return d.ix.Deleted(i) }

// LastAffected returns how many points the most recent Insert or Delete
// updated (neighborhood, density or LOF) — including the point inserted
// or deleted by that update.
func (d *Detector) LastAffected() int { return d.lastAffected }

// LOF returns point i's current LOF (NaN for deleted points and
// out-of-range indices, matching the documented "no such live point"
// behavior instead of panicking). Before minPts+1 points exist, every LOF
// is 1 (no meaningful neighborhood).
func (d *Detector) LOF(i int) float64 {
	if d.Deleted(i) {
		return math.NaN()
	}
	return d.lof[i]
}

// LOFs returns a copy of all current LOF values, indexed by insertion
// order; deleted slots hold NaN.
func (d *Detector) LOFs() []float64 {
	out := make([]float64, len(d.lof))
	for i := range d.lof {
		out[i] = d.LOF(i)
	}
	return out
}

// Insert adds p and updates all affected LOF values. It returns the new
// point's index. The coordinates are copied on insert (geom.Points.Append
// clones into the detector's storage), so the caller may reuse or mutate
// p's backing array after Insert returns without affecting any score.
func (d *Detector) Insert(p geom.Point) (int, error) {
	i, err := d.ix.Insert(p)
	if err != nil {
		return 0, err
	}
	d.nn = append(d.nn, nil)
	d.kdist = append(d.kdist, math.Inf(1))
	d.lrd = append(d.lrd, math.Inf(1))
	d.lof = append(d.lof, 1)

	n := d.ix.Len()
	if n <= d.minPts+1 {
		// Not enough points for incremental maintenance: either no
		// MinPts-neighborhood exists yet, or neighborhoods just became
		// defined for everyone. Rebuild (cheap at these sizes).
		d.lastAffected = n
		d.rebuildAll()
		return i, nil
	}

	// 1. The new point's neighborhood.
	d.recomputeNeighborhood(i)

	// 2. Reverse neighbors: points q whose MinPts-distance neighborhood
	// absorbs p (d(q,p) ≤ kdist(q)). Their neighborhoods — and possibly
	// k-distances — change. Candidates come from one range query at the
	// k-distance upper bound; the filter applies each point's own bound.
	kdistChanged := map[int]bool{i: true}
	neighborhoodChanged := map[int]bool{i: true}
	d.icands = d.icands[:0]
	d.rscratch = d.cur.RangeInto(d.rscratch[:0], d.ix.At(i), d.kdistBound, i)
	for _, nb := range d.rscratch {
		if nb.Dist <= d.kdist[nb.Index] {
			d.icands = append(d.icands, nb.Index)
		}
	}
	for _, q := range d.icands {
		old := d.kdist[q]
		d.recomputeNeighborhood(q)
		neighborhoodChanged[q] = true
		if d.kdist[q] != old {
			kdistChanged[q] = true
		}
	}
	d.propagate(kdistChanged, neighborhoodChanged)
	d.countUpdate()
	return i, nil
}

// Delete removes point i, updating all affected LOF values. Deleted slots
// keep their index (subsequent points do not shift) and report NaN; the
// raw LOF slot is also set to NaN so no stale pre-delete value survives.
func (d *Detector) Delete(i int) error {
	if i < 0 || i >= d.ix.Size() {
		return fmt.Errorf("incremental: point %d out of range [0, %d)", i, d.ix.Size())
	}
	if d.ix.Deleted(i) {
		return fmt.Errorf("incremental: point %d already deleted", i)
	}
	p := d.ix.At(i).Clone()
	if err := d.ix.Delete(i); err != nil {
		return err
	}
	d.nn[i] = nil
	d.kdist[i] = math.Inf(1)
	d.lrd[i] = math.Inf(1)
	d.lof[i] = math.NaN()

	if d.ix.Len() <= d.minPts+1 {
		d.lastAffected = d.ix.Len() + 1
		d.rebuildAll()
		return nil
	}

	// Points that held i in their neighborhood lose a neighbor; their
	// k-distances can only grow. The candidate range query uses the
	// pre-delete k-distances, which the bound still covers.
	kdistChanged := map[int]bool{}
	neighborhoodChanged := map[int]bool{}
	d.icands = d.icands[:0]
	d.rscratch = d.cur.RangeInto(d.rscratch[:0], p, d.kdistBound, i)
	for _, nb := range d.rscratch {
		if nb.Dist <= d.kdist[nb.Index] {
			d.icands = append(d.icands, nb.Index)
		}
	}
	for _, q := range d.icands {
		old := d.kdist[q]
		d.recomputeNeighborhood(q)
		neighborhoodChanged[q] = true
		if d.kdist[q] != old {
			kdistChanged[q] = true
		}
	}
	d.propagate(kdistChanged, neighborhoodChanged)
	// Count the removed point itself, mirroring Insert's "including the
	// inserted point" contract.
	d.lastAffected++
	d.countUpdate()
	return nil
}

// countUpdate ticks the periodic exact recomputation of the k-distance
// upper bound.
func (d *Detector) countUpdate() {
	d.updatesSince++
	if d.updatesSince >= boundRecomputeEvery {
		d.recomputeBound()
	}
}

// recomputeBound tightens kdistBound to the exact maximum live
// k-distance.
func (d *Detector) recomputeBound() {
	d.updatesSince = 0
	bound := 0.0
	for q := 0; q < d.ix.Size(); q++ {
		if !d.ix.Deleted(q) && d.kdist[q] > bound {
			bound = d.kdist[q]
		}
	}
	d.kdistBound = bound
}

// reverseDirty marks every live point whose neighborhood contains c. A
// live point o holds c in its neighborhood exactly when d(o,c) ≤ kdist(o)
// (neighborhoods are maintained as "all live points within the
// k-distance"), so one bounded range query around c plus the
// per-candidate check finds the set without a scan.
func (d *Detector) reverseDirty(c int, mark map[int]bool) {
	d.rscratch = d.cur.RangeInto(d.rscratch[:0], d.ix.At(c), d.kdistBound, c)
	for _, nb := range d.rscratch {
		if nb.Dist <= d.kdist[nb.Index] {
			mark[nb.Index] = true
		}
	}
}

// propagate refreshes densities and LOFs downstream of neighborhood and
// k-distance changes — the shared tail of Insert and Delete.
func (d *Detector) propagate(kdistChanged, neighborhoodChanged map[int]bool) {

	// Densities to refresh: any point whose neighborhood changed, plus
	// any point with a kdist-changed neighbor (its reachability distances
	// shift).
	lrdDirty := map[int]bool{}
	for q := range neighborhoodChanged {
		if !d.ix.Deleted(q) {
			lrdDirty[q] = true
		}
	}
	for c := range kdistChanged {
		if !d.ix.Deleted(c) {
			d.reverseDirty(c, lrdDirty)
		}
	}
	lrdChanged := map[int]bool{}
	for o := range lrdDirty {
		old := d.lrd[o]
		d.lrd[o] = d.computeLRD(o)
		if d.lrd[o] != old {
			lrdChanged[o] = true
		}
	}

	// LOFs to refresh: every density-dirty point, plus points with a
	// density-changed neighbor.
	lofDirty := map[int]bool{}
	for o := range lrdDirty {
		lofDirty[o] = true
	}
	for c := range lrdChanged {
		if !d.ix.Deleted(c) {
			d.reverseDirty(c, lofDirty)
		}
	}
	for x := range lofDirty {
		d.lof[x] = d.computeLOF(x)
	}
	d.lastAffected = len(lofDirty)
}

// recomputeNeighborhood rebuilds point q's neighborhood through the
// dynamic index: a kNN-with-ties probe whose cost tracks the neighborhood,
// not the dataset. Candidates are staged in the detector's scratch buffer;
// only the trimmed neighborhood is copied into the retained per-point
// slice.
func (d *Detector) recomputeNeighborhood(q int) {
	ns := index.KNNWithTiesInto(d.cur, d.scratch[:0], d.ix.At(q), d.minPts, q)
	d.scratch = ns[:0]
	row := d.nn[q]
	if cap(row) < len(ns) {
		row = make([]index.Neighbor, len(ns))
	}
	row = row[:len(ns)]
	copy(row, ns)
	d.nn[q] = row
	if len(ns) >= d.minPts {
		d.kdist[q] = ns[d.minPts-1].Dist
	} else if len(ns) > 0 {
		d.kdist[q] = ns[len(ns)-1].Dist
	} else {
		d.kdist[q] = math.Inf(1)
	}
	if d.kdist[q] > d.kdistBound {
		d.kdistBound = d.kdist[q]
	}
}

func (d *Detector) computeLRD(o int) float64 {
	nn := d.nn[o]
	if len(nn) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, nb := range nn {
		sum += core.ReachDist(d.kdist[nb.Index], nb.Dist)
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(nn)) / sum
}

func (d *Detector) computeLOF(x int) float64 {
	nn := d.nn[x]
	if len(nn) == 0 {
		return 1
	}
	var sum float64
	for _, nb := range nn {
		sum += ratio(d.lrd[nb.Index], d.lrd[x])
	}
	return sum / float64(len(nn))
}

// ratio mirrors the batch computation's infinity semantics.
func ratio(lrdO, lrdP float64) float64 {
	oInf, pInf := math.IsInf(lrdO, 1), math.IsInf(lrdP, 1)
	switch {
	case oInf && pInf:
		return 1
	case pInf:
		return 0
	case oInf:
		return math.Inf(1)
	default:
		return lrdO / lrdP
	}
}

// rebuildAll recomputes every structure from scratch (used while the
// dataset is still smaller than MinPts+2) and retightens the k-distance
// bound.
func (d *Detector) rebuildAll() {
	n := d.ix.Size()
	for q := 0; q < n; q++ {
		if !d.ix.Deleted(q) {
			d.recomputeNeighborhood(q)
		}
	}
	for o := 0; o < n; o++ {
		if !d.ix.Deleted(o) {
			d.lrd[o] = d.computeLRD(o)
		}
	}
	for x := 0; x < n; x++ {
		if !d.ix.Deleted(x) {
			d.lof[x] = d.computeLOF(x)
		}
	}
	d.recomputeBound()
}

// Compact rebuilds the detector over only its live points, dropping every
// tombstoned slot: live points keep their relative order but move to
// dense indices [0, Len). No LOF, density or neighborhood value changes —
// the remapping is monotone, so tie-breaking order (and therefore every
// floating-point sum) is preserved bit for bit. It returns the slot
// remapping: remap[old] is the new index of old's point, or -1 if old was
// deleted.
func (d *Detector) Compact() []int {
	size := d.ix.Size()
	remap := make([]int, size)
	nix := dynamic.New(d.Dim(), d.metric)
	nn := make([][]index.Neighbor, 0, d.ix.Len())
	kdist := make([]float64, 0, d.ix.Len())
	lrd := make([]float64, 0, d.ix.Len())
	lof := make([]float64, 0, d.ix.Len())
	for i := 0; i < size; i++ {
		if d.ix.Deleted(i) {
			remap[i] = -1
			continue
		}
		slot, err := nix.Insert(d.ix.At(i))
		if err != nil {
			// Stored coordinates were validated on their original insert.
			panic(fmt.Sprintf("incremental: compact re-insert: %v", err))
		}
		remap[i] = slot
		nn = append(nn, d.nn[i])
		kdist = append(kdist, d.kdist[i])
		lrd = append(lrd, d.lrd[i])
		lof = append(lof, d.lof[i])
	}
	nix.Rebuild()
	for _, row := range nn {
		for j := range row {
			row[j].Index = remap[row[j].Index]
		}
	}
	d.ix = nix
	d.cur = nix.NewCursor()
	d.nn, d.kdist, d.lrd, d.lof = nn, kdist, lrd, lof
	d.recomputeBound()
	return remap
}

// NewCursor returns a query cursor over the detector's current index, for
// use with ScoreAtCursor. Cursors are single-goroutine objects; allocate
// one per concurrent reader. A cursor is bound to the detector's index at
// call time: Compact replaces the index, invalidating prior cursors.
func (d *Detector) NewCursor() index.Cursor { return d.ix.NewCursor() }

// ScoreAt returns the LOF the query point would receive from a full batch
// recomputation over the live points plus q, without inserting it — the
// out-of-sample analogue of Insert followed by LOF and Delete, at a
// fraction of the cost. Uses the detector's internal cursor, so it must
// not run concurrently with mutations or other internal-cursor calls.
func (d *Detector) ScoreAt(q geom.Point) (float64, error) {
	return d.ScoreAtCursor(d.cur, q)
}

// mrow is a merged row for out-of-sample scoring: one point's
// neighborhood and k-distance in live ∪ {q}.
type mrow struct {
	nn    []index.Neighbor
	kdist float64
}

// ScoreAtCursor is ScoreAt through a caller-owned cursor (see NewCursor).
// Many goroutines may score concurrently against a quiescent detector,
// each with its own cursor; scoring must not overlap mutations.
//
// The result is bit-identical to what lof.Fit over the live points plus q
// (in live slot order, q last) would report for q: the query's
// neighborhood is probed with ties, q is spliced into the neighborhoods
// of points it would displace — shrinking their k-distances exactly as a
// refit would — and the Definition 5–7 sums run in the same canonical
// (distance, index) order.
func (d *Detector) ScoreAtCursor(cur index.Cursor, q geom.Point) (float64, error) {
	if len(q) != d.Dim() {
		return 0, fmt.Errorf("incremental: query has %d dimensions, detector has %d", len(q), d.Dim())
	}
	if !q.Valid() {
		return 0, geom.ErrInvalidCoord
	}
	// qIdx orders q after every live slot, exactly where a refit over
	// live ∪ {q} would place it (live slots compact monotonically).
	qIdx := d.ix.Size()
	nq := index.KNNWithTiesInto(cur, nil, q, d.minPts, index.ExcludeNone)
	if len(nq) == 0 {
		return 1, nil // isolated by construction
	}
	kdistQ := nq[len(nq)-1].Dist
	if len(nq) >= d.minPts {
		kdistQ = nq[d.minPts-1].Dist
	}

	// mergedRow computes o's row in live ∪ {q}: if q lands within o's
	// current k-distance it is spliced into the neighborhood — at the
	// position (d(o,q), qIdx) — and the MinPts cut with ties reapplied.
	// The merged neighborhood is a subset of nn[o] ∪ {q}, so the stored
	// rows are a sufficient candidate set.
	rows := map[int]mrow{}
	mergedRow := func(o int) mrow {
		if r, ok := rows[o]; ok {
			return r
		}
		doq := d.ix.DistTo(o, q)
		r := mrow{nn: d.nn[o], kdist: d.kdist[o]}
		if doq <= d.kdist[o] {
			old := d.nn[o]
			cand := make([]index.Neighbor, 0, len(old)+1)
			at := len(old)
			for j, nb := range old {
				// q loses distance ties: qIdx exceeds every live slot.
				if doq < nb.Dist {
					at = j
					break
				}
			}
			cand = append(cand, old[:at]...)
			cand = append(cand, index.Neighbor{Index: qIdx, Dist: doq})
			cand = append(cand, old[at:]...)
			if len(cand) > d.minPts {
				kd := cand[d.minPts-1].Dist
				hi := d.minPts
				for hi < len(cand) && cand[hi].Dist <= kd {
					hi++
				}
				cand = cand[:hi]
			}
			r.nn = cand
			if len(cand) >= d.minPts {
				r.kdist = cand[d.minPts-1].Dist
			} else if len(cand) > 0 {
				r.kdist = cand[len(cand)-1].Dist
			}
		}
		rows[o] = r
		return r
	}
	kdistAt := func(i int) float64 {
		if i == qIdx {
			return kdistQ
		}
		return mergedRow(i).kdist
	}
	lrdOf := func(nn []index.Neighbor) float64 {
		if len(nn) == 0 {
			return math.Inf(1)
		}
		var sum float64
		for _, nb := range nn {
			sum += core.ReachDist(kdistAt(nb.Index), nb.Dist)
		}
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(len(nn)) / sum
	}
	lrdQ := lrdOf(nq)
	var sum float64
	for _, nb := range nq {
		sum += ratio(lrdOf(mergedRow(nb.Index).nn), lrdQ)
	}
	return sum / float64(len(nq)), nil
}
