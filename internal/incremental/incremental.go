// Package incremental maintains exact LOF values under point insertions
// and deletions — the paper's second "ongoing work" direction ("to further
// improve the performance of LOF computation"). Instead of recomputing the
// whole database, an update touches only the affected neighborhoods: the
// changed point's reverse k-nearest neighbors (whose k-distances shift),
// the points whose local reachability density depends on those
// k-distances, and the points whose LOF depends on those densities. All
// values stay exactly equal to a from-scratch batch computation, which the
// tests verify after every update.
package incremental

import (
	"fmt"
	"math"

	"lof/internal/core"
	"lof/internal/geom"
	"lof/internal/index"
)

// Detector is a dynamic (insert/delete) LOF maintenance structure.
type Detector struct {
	minPts int
	metric geom.Metric
	pts    *geom.Points

	// nn[i] is point i's MinPts-distance neighborhood (with ties), sorted
	// by (distance, index). Empty until at least minPts+1 points exist.
	nn    [][]index.Neighbor
	kdist []float64
	lrd   []float64
	lof   []float64

	// deleted marks tombstoned points; they are excluded from every
	// neighborhood and carry NaN LOFs.
	deleted []bool
	live    int

	// lastAffected records how many points the most recent update
	// touched, for observability and the locality tests.
	lastAffected int

	// scratch is the reusable candidate buffer of recomputeNeighborhood:
	// one update recomputes many neighborhoods, each of which stages all
	// live points here before trimming.
	scratch []index.Neighbor
}

// New creates an empty incremental detector. dim is the dimensionality of
// all future points; minPts as in the batch algorithm.
func New(dim, minPts int, m geom.Metric) (*Detector, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("incremental: dim must be positive, got %d", dim)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("incremental: MinPts must be positive, got %d", minPts)
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	return &Detector{minPts: minPts, metric: m, pts: geom.NewPoints(dim, 0)}, nil
}

// Len returns the number of live (inserted and not deleted) points.
func (d *Detector) Len() int { return d.live }

// Size returns the number of slots ever allocated, including tombstones;
// point indices run over [0, Size).
func (d *Detector) Size() int { return d.pts.Len() }

// Deleted reports whether index i does not hold a live point: removed
// points and out-of-range indices both report true.
func (d *Detector) Deleted(i int) bool {
	return i < 0 || i >= len(d.deleted) || d.deleted[i]
}

// LastAffected returns how many points the most recent Insert updated
// (neighborhood, density or LOF) — including the inserted point.
func (d *Detector) LastAffected() int { return d.lastAffected }

// LOF returns point i's current LOF (NaN for deleted points and
// out-of-range indices, matching the documented "no such live point"
// behavior instead of panicking). Before minPts+1 points exist, every LOF
// is 1 (no meaningful neighborhood).
func (d *Detector) LOF(i int) float64 {
	if d.Deleted(i) {
		return math.NaN()
	}
	return d.lof[i]
}

// LOFs returns a copy of all current LOF values, indexed by insertion
// order; deleted slots hold NaN.
func (d *Detector) LOFs() []float64 {
	out := make([]float64, len(d.lof))
	for i := range d.lof {
		out[i] = d.LOF(i)
	}
	return out
}

// Insert adds p and updates all affected LOF values. It returns the new
// point's index.
func (d *Detector) Insert(p geom.Point) (int, error) {
	if err := d.pts.Append(p); err != nil {
		return 0, err
	}
	i := d.pts.Len() - 1
	d.nn = append(d.nn, nil)
	d.kdist = append(d.kdist, math.Inf(1))
	d.lrd = append(d.lrd, math.Inf(1))
	d.lof = append(d.lof, 1)
	d.deleted = append(d.deleted, false)
	d.live++

	n := d.live
	if n <= d.minPts {
		// Not enough points for any MinPts-neighborhood yet: rebuild all
		// once enough arrive (cheap at these sizes).
		d.lastAffected = n
		d.rebuildAll()
		return i, nil
	}
	if n == d.minPts+1 {
		// First time neighborhoods become defined for everyone.
		d.lastAffected = n
		d.rebuildAll()
		return i, nil
	}

	// 1. The new point's neighborhood.
	d.recomputeNeighborhood(i)

	// 2. Reverse neighbors: points q whose MinPts-distance neighborhood
	// absorbs p (d(q,p) ≤ kdist(q)). Their neighborhoods — and possibly
	// k-distances — change.
	kdistChanged := map[int]bool{i: true}
	neighborhoodChanged := map[int]bool{i: true}
	for q := 0; q < d.pts.Len(); q++ {
		if q == i || d.deleted[q] {
			continue
		}
		if d.metric.Distance(d.pts.At(q), p) <= d.kdist[q] {
			old := d.kdist[q]
			d.recomputeNeighborhood(q)
			neighborhoodChanged[q] = true
			if d.kdist[q] != old {
				kdistChanged[q] = true
			}
		}
	}
	d.propagate(kdistChanged, neighborhoodChanged)
	return i, nil
}

// Delete removes point i, updating all affected LOF values. Deleted slots
// keep their index (subsequent points do not shift) and report NaN.
func (d *Detector) Delete(i int) error {
	if i < 0 || i >= d.pts.Len() {
		return fmt.Errorf("incremental: point %d out of range [0, %d)", i, d.pts.Len())
	}
	if d.deleted[i] {
		return fmt.Errorf("incremental: point %d already deleted", i)
	}
	p := d.pts.At(i).Clone()
	d.deleted[i] = true
	d.live--
	d.nn[i] = nil
	d.kdist[i] = math.Inf(1)
	d.lrd[i] = math.Inf(1)

	if d.live <= d.minPts+1 {
		d.lastAffected = d.live
		d.rebuildAll()
		return nil
	}

	// Points that held i in their neighborhood lose a neighbor; their
	// k-distances can only grow.
	kdistChanged := map[int]bool{}
	neighborhoodChanged := map[int]bool{}
	for q := 0; q < d.pts.Len(); q++ {
		if q == i || d.deleted[q] {
			continue
		}
		if d.metric.Distance(d.pts.At(q), p) <= d.kdist[q] {
			old := d.kdist[q]
			d.recomputeNeighborhood(q)
			neighborhoodChanged[q] = true
			if d.kdist[q] != old {
				kdistChanged[q] = true
			}
		}
	}
	d.propagate(kdistChanged, neighborhoodChanged)
	return nil
}

// propagate refreshes densities and LOFs downstream of neighborhood and
// k-distance changes — the shared tail of Insert and Delete.
func (d *Detector) propagate(kdistChanged, neighborhoodChanged map[int]bool) {

	// Densities to refresh: any point whose neighborhood changed, plus
	// any point with a kdist-changed neighbor (its reachability distances
	// shift).
	lrdDirty := map[int]bool{}
	for q := range neighborhoodChanged {
		if !d.deleted[q] {
			lrdDirty[q] = true
		}
	}
	for o := 0; o < d.pts.Len(); o++ {
		if lrdDirty[o] || d.deleted[o] {
			continue
		}
		for _, nb := range d.nn[o] {
			if kdistChanged[nb.Index] {
				lrdDirty[o] = true
				break
			}
		}
	}
	lrdChanged := map[int]bool{}
	for o := range lrdDirty {
		old := d.lrd[o]
		d.lrd[o] = d.computeLRD(o)
		if d.lrd[o] != old {
			lrdChanged[o] = true
		}
	}

	// LOFs to refresh: every density-dirty point, plus points with a
	// density-changed neighbor.
	lofDirty := map[int]bool{}
	for o := range lrdDirty {
		lofDirty[o] = true
	}
	for x := 0; x < d.pts.Len(); x++ {
		if lofDirty[x] || d.deleted[x] {
			continue
		}
		for _, nb := range d.nn[x] {
			if lrdChanged[nb.Index] {
				lofDirty[x] = true
				break
			}
		}
	}
	for x := range lofDirty {
		d.lof[x] = d.computeLOF(x)
	}
	d.lastAffected = len(lofDirty)
}

// recomputeNeighborhood rebuilds point q's neighborhood by scan over live
// points. Candidates are staged in the detector's scratch buffer; only the
// trimmed neighborhood is copied into the retained per-point slice.
func (d *Detector) recomputeNeighborhood(q int) {
	n := d.pts.Len()
	ns := d.scratch[:0]
	pq := d.pts.At(q)
	for j := 0; j < n; j++ {
		if j == q || d.deleted[j] {
			continue
		}
		ns = append(ns, index.Neighbor{Index: j, Dist: d.metric.Distance(pq, d.pts.At(j))})
	}
	index.SortNeighbors(ns)
	if len(ns) > d.minPts {
		kd := ns[d.minPts-1].Dist
		hi := d.minPts
		for hi < len(ns) && ns[hi].Dist <= kd {
			hi++
		}
		ns = ns[:hi]
	}
	d.scratch = ns[:0]
	row := d.nn[q]
	if cap(row) < len(ns) {
		row = make([]index.Neighbor, len(ns))
	}
	row = row[:len(ns)]
	copy(row, ns)
	d.nn[q] = row
	if len(ns) >= d.minPts {
		d.kdist[q] = ns[d.minPts-1].Dist
	} else if len(ns) > 0 {
		d.kdist[q] = ns[len(ns)-1].Dist
	} else {
		d.kdist[q] = math.Inf(1)
	}
}

func (d *Detector) computeLRD(o int) float64 {
	nn := d.nn[o]
	if len(nn) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, nb := range nn {
		sum += core.ReachDist(d.kdist[nb.Index], nb.Dist)
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(nn)) / sum
}

func (d *Detector) computeLOF(x int) float64 {
	nn := d.nn[x]
	if len(nn) == 0 {
		return 1
	}
	var sum float64
	for _, nb := range nn {
		sum += ratio(d.lrd[nb.Index], d.lrd[x])
	}
	return sum / float64(len(nn))
}

// ratio mirrors the batch computation's infinity semantics.
func ratio(lrdO, lrdP float64) float64 {
	oInf, pInf := math.IsInf(lrdO, 1), math.IsInf(lrdP, 1)
	switch {
	case oInf && pInf:
		return 1
	case pInf:
		return 0
	case oInf:
		return math.Inf(1)
	default:
		return lrdO / lrdP
	}
}

// rebuildAll recomputes every structure from scratch (used while the
// dataset is still smaller than MinPts+1).
func (d *Detector) rebuildAll() {
	n := d.pts.Len()
	for q := 0; q < n; q++ {
		if !d.deleted[q] {
			d.recomputeNeighborhood(q)
		}
	}
	for o := 0; o < n; o++ {
		if !d.deleted[o] {
			d.lrd[o] = d.computeLRD(o)
		}
	}
	for x := 0; x < n; x++ {
		if !d.deleted[x] {
			d.lof[x] = d.computeLOF(x)
		}
	}
}
