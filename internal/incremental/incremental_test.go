package incremental

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/core"
	"lof/internal/geom"
	"lof/internal/index/linear"
	"lof/internal/matdb"
)

// batchLOFs computes reference LOF values from scratch.
func batchLOFs(t *testing.T, pts *geom.Points, minPts int) []float64 {
	t.Helper()
	db, err := matdb.Materialize(pts, linear.New(pts, nil), minPts)
	if err != nil {
		t.Fatal(err)
	}
	lofs, err := core.LOFs(db, minPts)
	if err != nil {
		t.Fatal(err)
	}
	return lofs
}

func TestInsertMatchesBatchExactly(t *testing.T) {
	const minPts = 5
	rng := rand.New(rand.NewSource(31))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 120; step++ {
		var p geom.Point
		switch {
		case step%11 == 10:
			p = geom.Point{rng.NormFloat64()*0.5 + 30, rng.NormFloat64() * 0.5} // second cluster
		case step%17 == 16:
			p = geom.Point{rng.Float64() * 60, 40 + rng.Float64()*10} // scattered noise
		default:
			p = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		}
		if _, err := det.Insert(p); err != nil {
			t.Fatal(err)
		}
		if det.Len() <= minPts+1 {
			continue
		}
		want := batchLOFs(t, det.pts, minPts)
		got := det.LOFs()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 && !(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) {
				t.Fatalf("step %d point %d: incremental=%v batch=%v", step, i, got[i], want[i])
			}
		}
	}
}

func TestInsertWithDuplicatesMatchesBatch(t *testing.T) {
	const minPts = 3
	det, err := New(1, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate-heavy stream: sites 0, 1, 2 plus a straggler.
	stream := []float64{0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2, 10, 0, 1}
	for s, x := range stream {
		if _, err := det.Insert(geom.Point{x}); err != nil {
			t.Fatal(err)
		}
		if det.Len() <= minPts+1 {
			continue
		}
		want := batchLOFs(t, det.pts, minPts)
		got := det.LOFs()
		for i := range want {
			same := got[i] == want[i] ||
				(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) ||
				math.Abs(got[i]-want[i]) <= 1e-9
			if !same {
				t.Fatalf("step %d point %d: incremental=%v batch=%v", s, i, got[i], want[i])
			}
		}
	}
}

func TestInsertLocality(t *testing.T) {
	const minPts = 5
	rng := rand.New(rand.NewSource(33))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two well-separated clusters of 200 points each.
	for i := 0; i < 200; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
		if _, err := det.Insert(geom.Point{200 + rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	// Inserting into the first cluster must not touch most of the dataset:
	// the affected set is bounded by the local neighborhood structure.
	if _, err := det.Insert(geom.Point{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if det.LastAffected() > det.Len()/3 {
		t.Fatalf("insertion affected %d of %d points — not local", det.LastAffected(), det.Len())
	}
	// And the result still matches the batch computation.
	want := batchLOFs(t, det.pts, minPts)
	got := det.LOFs()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("point %d: incremental=%v batch=%v", i, got[i], want[i])
		}
	}
}

func TestSmallStreamAllOnes(t *testing.T) {
	det, err := New(2, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := det.Insert(geom.Point{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Fewer than MinPts+1 points: no meaningful neighborhoods; LOFs exist
	// and are finite.
	for i, l := range det.LOFs() {
		if math.IsNaN(l) {
			t.Fatalf("LOF[%d] is NaN", i)
		}
	}
	if det.Len() != 5 {
		t.Fatalf("Len=%d", det.Len())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, nil); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := New(2, 0, nil); err == nil {
		t.Error("MinPts=0 accepted")
	}
}

func TestInsertRejectsBadPoint(t *testing.T) {
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Insert(geom.Point{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := det.Insert(geom.Point{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestLOFAccessor(t *testing.T) {
	det, err := New(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2, 3, 4, 5, 20} {
		if _, err := det.Insert(geom.Point{x}); err != nil {
			t.Fatal(err)
		}
	}
	if det.LOF(6) <= det.LOF(3) {
		t.Fatalf("straggler LOF %v not above interior %v", det.LOF(6), det.LOF(3))
	}
}

func TestDeleteMatchesBatchExactly(t *testing.T) {
	const minPts = 5
	rng := rand.New(rand.NewSource(51))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p := geom.Point{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		if i%9 == 8 {
			p = geom.Point{25 + rng.NormFloat64(), rng.NormFloat64()}
		}
		if _, err := det.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a spread of points and compare against a batch computation
	// over the remaining live points after every deletion.
	for _, victim := range []int{3, 17, 17 + 9, 40, 0, 59} {
		if det.Deleted(victim) {
			continue
		}
		if err := det.Delete(victim); err != nil {
			t.Fatal(err)
		}
		// Build the live point set and an index mapping.
		live := geom.NewPoints(2, det.Len())
		var liveIdx []int
		for i := 0; i < det.Size(); i++ {
			if det.Deleted(i) {
				continue
			}
			if err := live.Append(det.pts.At(i)); err != nil {
				t.Fatal(err)
			}
			liveIdx = append(liveIdx, i)
		}
		want := batchLOFs(t, live, minPts)
		for j, i := range liveIdx {
			got := det.LOF(i)
			if math.Abs(got-want[j]) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want[j], 1)) {
				t.Fatalf("after deleting %d: point %d incremental=%v batch=%v", victim, i, got, want[j])
			}
		}
	}
}

func TestDeleteValidation(t *testing.T) {
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if _, err := det.Insert(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err == nil {
		t.Error("double delete accepted")
	}
	if !math.IsNaN(det.LOF(0)) {
		t.Error("deleted LOF not NaN")
	}
	if det.Len() != 0 || det.Size() != 1 {
		t.Errorf("Len=%d Size=%d", det.Len(), det.Size())
	}
}

func TestDeleteThenInsertReuse(t *testing.T) {
	const minPts = 4
	rng := rand.New(rand.NewSource(52))
	det, err := New(1, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := det.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Insert(geom.Point{rng.NormFloat64()}); err != nil {
		t.Fatal(err)
	}
	// Live values still match the batch over live points.
	live := geom.NewPoints(1, det.Len())
	var liveIdx []int
	for i := 0; i < det.Size(); i++ {
		if det.Deleted(i) {
			continue
		}
		if err := live.Append(det.pts.At(i)); err != nil {
			t.Fatal(err)
		}
		liveIdx = append(liveIdx, i)
	}
	want := batchLOFs(t, live, minPts)
	for j, i := range liveIdx {
		if math.Abs(det.LOF(i)-want[j]) > 1e-9 {
			t.Fatalf("point %d: incremental=%v batch=%v", i, det.LOF(i), want[j])
		}
	}
}

func TestAccessorBoundsChecks(t *testing.T) {
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{-1, 8, 1 << 40} {
		if !det.Deleted(i) {
			t.Errorf("Deleted(%d) = false, want true for out-of-range index", i)
		}
		if got := det.LOF(i); !math.IsNaN(got) {
			t.Errorf("LOF(%d) = %v, want NaN", i, got)
		}
		if err := det.Delete(i); err == nil {
			t.Errorf("Delete(%d) succeeded, want out-of-range error", i)
		}
	}
	if det.Deleted(0) {
		t.Error("Deleted(0) = true for a live point")
	}
}
