package incremental

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/core"
	"lof/internal/geom"
	"lof/internal/index/linear"
	"lof/internal/matdb"
)

// allPts collects every slot's coordinates (valid for insert-only
// detectors, where all slots are live).
func allPts(t *testing.T, det *Detector) *geom.Points {
	t.Helper()
	pts := geom.NewPoints(det.Dim(), det.Size())
	for i := 0; i < det.Size(); i++ {
		if err := pts.Append(det.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

// batchLOFs computes reference LOF values from scratch.
func batchLOFs(t *testing.T, pts *geom.Points, minPts int) []float64 {
	t.Helper()
	db, err := matdb.Materialize(pts, linear.New(pts, nil), minPts)
	if err != nil {
		t.Fatal(err)
	}
	lofs, err := core.LOFs(db, minPts)
	if err != nil {
		t.Fatal(err)
	}
	return lofs
}

func TestInsertMatchesBatchExactly(t *testing.T) {
	const minPts = 5
	rng := rand.New(rand.NewSource(31))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 120; step++ {
		var p geom.Point
		switch {
		case step%11 == 10:
			p = geom.Point{rng.NormFloat64()*0.5 + 30, rng.NormFloat64() * 0.5} // second cluster
		case step%17 == 16:
			p = geom.Point{rng.Float64() * 60, 40 + rng.Float64()*10} // scattered noise
		default:
			p = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		}
		if _, err := det.Insert(p); err != nil {
			t.Fatal(err)
		}
		if det.Len() <= minPts+1 {
			continue
		}
		want := batchLOFs(t, allPts(t, det), minPts)
		got := det.LOFs()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 && !(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) {
				t.Fatalf("step %d point %d: incremental=%v batch=%v", step, i, got[i], want[i])
			}
		}
	}
}

func TestInsertWithDuplicatesMatchesBatch(t *testing.T) {
	const minPts = 3
	det, err := New(1, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate-heavy stream: sites 0, 1, 2 plus a straggler.
	stream := []float64{0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2, 10, 0, 1}
	for s, x := range stream {
		if _, err := det.Insert(geom.Point{x}); err != nil {
			t.Fatal(err)
		}
		if det.Len() <= minPts+1 {
			continue
		}
		want := batchLOFs(t, allPts(t, det), minPts)
		got := det.LOFs()
		for i := range want {
			same := got[i] == want[i] ||
				(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) ||
				math.Abs(got[i]-want[i]) <= 1e-9
			if !same {
				t.Fatalf("step %d point %d: incremental=%v batch=%v", s, i, got[i], want[i])
			}
		}
	}
}

func TestInsertLocality(t *testing.T) {
	const minPts = 5
	rng := rand.New(rand.NewSource(33))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two well-separated clusters of 200 points each.
	for i := 0; i < 200; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
		if _, err := det.Insert(geom.Point{200 + rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	// Inserting into the first cluster must not touch most of the dataset:
	// the affected set is bounded by the local neighborhood structure.
	if _, err := det.Insert(geom.Point{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if det.LastAffected() > det.Len()/3 {
		t.Fatalf("insertion affected %d of %d points — not local", det.LastAffected(), det.Len())
	}
	// And the result still matches the batch computation.
	want := batchLOFs(t, allPts(t, det), minPts)
	got := det.LOFs()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("point %d: incremental=%v batch=%v", i, got[i], want[i])
		}
	}
}

func TestSmallStreamAllOnes(t *testing.T) {
	det, err := New(2, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := det.Insert(geom.Point{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Fewer than MinPts+1 points: no meaningful neighborhoods; LOFs exist
	// and are finite.
	for i, l := range det.LOFs() {
		if math.IsNaN(l) {
			t.Fatalf("LOF[%d] is NaN", i)
		}
	}
	if det.Len() != 5 {
		t.Fatalf("Len=%d", det.Len())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, nil); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := New(2, 0, nil); err == nil {
		t.Error("MinPts=0 accepted")
	}
}

func TestInsertRejectsBadPoint(t *testing.T) {
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Insert(geom.Point{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := det.Insert(geom.Point{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestLOFAccessor(t *testing.T) {
	det, err := New(1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2, 3, 4, 5, 20} {
		if _, err := det.Insert(geom.Point{x}); err != nil {
			t.Fatal(err)
		}
	}
	if det.LOF(6) <= det.LOF(3) {
		t.Fatalf("straggler LOF %v not above interior %v", det.LOF(6), det.LOF(3))
	}
}

func TestDeleteMatchesBatchExactly(t *testing.T) {
	const minPts = 5
	rng := rand.New(rand.NewSource(51))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p := geom.Point{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		if i%9 == 8 {
			p = geom.Point{25 + rng.NormFloat64(), rng.NormFloat64()}
		}
		if _, err := det.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a spread of points and compare against a batch computation
	// over the remaining live points after every deletion.
	for _, victim := range []int{3, 17, 17 + 9, 40, 0, 59} {
		if det.Deleted(victim) {
			continue
		}
		if err := det.Delete(victim); err != nil {
			t.Fatal(err)
		}
		// Build the live point set and an index mapping.
		live := geom.NewPoints(2, det.Len())
		var liveIdx []int
		for i := 0; i < det.Size(); i++ {
			if det.Deleted(i) {
				continue
			}
			if err := live.Append(det.At(i)); err != nil {
				t.Fatal(err)
			}
			liveIdx = append(liveIdx, i)
		}
		want := batchLOFs(t, live, minPts)
		for j, i := range liveIdx {
			got := det.LOF(i)
			if math.Abs(got-want[j]) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want[j], 1)) {
				t.Fatalf("after deleting %d: point %d incremental=%v batch=%v", victim, i, got, want[j])
			}
		}
	}
}

func TestDeleteValidation(t *testing.T) {
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if _, err := det.Insert(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err == nil {
		t.Error("double delete accepted")
	}
	if !math.IsNaN(det.LOF(0)) {
		t.Error("deleted LOF not NaN")
	}
	if det.Len() != 0 || det.Size() != 1 {
		t.Errorf("Len=%d Size=%d", det.Len(), det.Size())
	}
}

func TestDeleteThenInsertReuse(t *testing.T) {
	const minPts = 4
	rng := rand.New(rand.NewSource(52))
	det, err := New(1, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := det.Delete(5); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Insert(geom.Point{rng.NormFloat64()}); err != nil {
		t.Fatal(err)
	}
	// Live values still match the batch over live points.
	live := geom.NewPoints(1, det.Len())
	var liveIdx []int
	for i := 0; i < det.Size(); i++ {
		if det.Deleted(i) {
			continue
		}
		if err := live.Append(det.At(i)); err != nil {
			t.Fatal(err)
		}
		liveIdx = append(liveIdx, i)
	}
	want := batchLOFs(t, live, minPts)
	for j, i := range liveIdx {
		if math.Abs(det.LOF(i)-want[j]) > 1e-9 {
			t.Fatalf("point %d: incremental=%v batch=%v", i, det.LOF(i), want[j])
		}
	}
}

func TestAccessorBoundsChecks(t *testing.T) {
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{-1, 8, 1 << 40} {
		if !det.Deleted(i) {
			t.Errorf("Deleted(%d) = false, want true for out-of-range index", i)
		}
		if got := det.LOF(i); !math.IsNaN(got) {
			t.Errorf("LOF(%d) = %v, want NaN", i, got)
		}
		if err := det.Delete(i); err == nil {
			t.Errorf("Delete(%d) succeeded, want out-of-range error", i)
		}
	}
	if det.Deleted(0) {
		t.Error("Deleted(0) = true for a live point")
	}
}

// liveView collects the live points in slot order plus the slot of each
// collected row — the shape a batch refit sees.
func liveView(t *testing.T, det *Detector) (*geom.Points, []int) {
	t.Helper()
	live := geom.NewPoints(det.Dim(), det.Len())
	var liveIdx []int
	for i := 0; i < det.Size(); i++ {
		if det.Deleted(i) {
			continue
		}
		if err := live.Append(det.At(i)); err != nil {
			t.Fatal(err)
		}
		liveIdx = append(liveIdx, i)
	}
	return live, liveIdx
}

// TestInsertDeleteBitIdentical is the strict form of the batch oracle:
// after every insert and delete, each live LOF equals the from-scratch
// batch value bit for bit (Float64bits), not merely within tolerance.
func TestInsertDeleteBitIdentical(t *testing.T) {
	const minPts = 4
	rng := rand.New(rand.NewSource(97))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slots []int
	check := func(step int) {
		if det.Len() <= minPts+1 {
			return
		}
		live, liveIdx := liveView(t, det)
		want := batchLOFs(t, live, minPts)
		for j, i := range liveIdx {
			got := det.LOF(i)
			if math.Float64bits(got) != math.Float64bits(want[j]) {
				t.Fatalf("step %d slot %d: incremental=%v batch=%v (bits differ)", step, i, got, want[j])
			}
		}
	}
	for step := 0; step < 250; step++ {
		if len(slots) > minPts+2 && rng.Float64() < 0.35 {
			j := rng.Intn(len(slots))
			if err := det.Delete(slots[j]); err != nil {
				t.Fatal(err)
			}
			slots = append(slots[:j], slots[j+1:]...)
		} else {
			p := geom.Point{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
			if rng.Float64() < 0.15 { // duplicate pocket
				p = geom.Point{2, 2}
			}
			if rng.Float64() < 0.05 { // far outlier: stresses the kdist bound
				p = geom.Point{300 + rng.NormFloat64(), 300}
			}
			s, err := det.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			slots = append(slots, s)
		}
		check(step)
	}
}

// TestDeleteTombstoneHygiene pins the satellite fix: after Delete, the raw
// lof slot holds NaN (not a stale pre-delete value), and the neighborhood
// and density slots are cleared too.
func TestDeleteTombstoneHygiene(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	if math.IsNaN(det.lof[7]) {
		t.Fatal("live slot holds NaN before delete")
	}
	if err := det.Delete(7); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(det.lof[7]) {
		t.Errorf("raw lof slot after delete = %v, want NaN", det.lof[7])
	}
	if det.nn[7] != nil {
		t.Error("neighborhood not cleared on delete")
	}
	if !math.IsInf(det.kdist[7], 1) || !math.IsInf(det.lrd[7], 1) {
		t.Errorf("kdist=%v lrd=%v after delete, want +Inf", det.kdist[7], det.lrd[7])
	}
	// The rebuild path (shrinking to ≤ MinPts+1 live points) must clear
	// the slot the same way.
	small, err := New(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := small.Insert(geom.Point{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := small.Delete(2); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(small.lof[2]) {
		t.Errorf("rebuild-path raw lof slot = %v, want NaN", small.lof[2])
	}
}

// TestLastAffectedCountsTheUpdatedPoint pins the unified contract: both
// Insert and Delete count the point being inserted or deleted, so
// LastAffected is always at least 1.
func TestLastAffectedCountsTheUpdatedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	det, err := New(2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slots []int
	for i := 0; i < 40; i++ {
		s, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
		if det.LastAffected() < 1 {
			t.Fatalf("insert %d: LastAffected=%d, want ≥ 1", i, det.LastAffected())
		}
		if det.LastAffected() > det.Len() {
			t.Fatalf("insert %d: LastAffected=%d exceeds live count %d", i, det.LastAffected(), det.Len())
		}
	}
	for i := 0; i < 30; i++ {
		j := rng.Intn(len(slots))
		if err := det.Delete(slots[j]); err != nil {
			t.Fatal(err)
		}
		slots = append(slots[:j], slots[j+1:]...)
		if det.LastAffected() < 1 {
			t.Fatalf("delete %d: LastAffected=%d, want ≥ 1 (deleted point counts)", i, det.LastAffected())
		}
		if det.LastAffected() > det.Len()+1 {
			t.Fatalf("delete %d: LastAffected=%d exceeds live+deleted %d", i, det.LastAffected(), det.Len()+1)
		}
	}
}

// TestInsertDoesNotRetainCallerBuffer is the satellite regression test:
// mutating the caller's coordinate buffer after Insert must not change any
// maintained score — the detector clones coordinates on append.
func TestInsertDoesNotRetainCallerBuffer(t *testing.T) {
	const minPts = 3
	rng := rand.New(rand.NewSource(101))
	reused, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make(geom.Point, 2) // one buffer, reused for every insert
	for i := 0; i < 30; i++ {
		buf[0], buf[1] = rng.NormFloat64(), rng.NormFloat64()
		if _, err := reused.Insert(buf); err != nil {
			t.Fatal(err)
		}
		if _, err := cloned.Insert(buf.Clone()); err != nil {
			t.Fatal(err)
		}
		buf[0], buf[1] = 1e9, -1e9 // clobber after insert
	}
	a, b := reused.LOFs(), cloned.LOFs()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("slot %d: reused-buffer LOF %v != cloned LOF %v", i, a[i], b[i])
		}
	}
}

// TestScoreAtMatchesRefit pins the out-of-sample contract: ScoreAt(q)
// equals, bit for bit, the LOF a batch fit over live ∪ {q} (q last)
// reports for q.
func TestScoreAtMatchesRefit(t *testing.T) {
	const minPts = 4
	rng := rand.New(rand.NewSource(103))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slots []int
	for i := 0; i < 80; i++ {
		p := geom.Point{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		if i%13 == 12 {
			p = geom.Point{40 + rng.NormFloat64(), 40}
		}
		s, err := det.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i := 0; i < 10; i++ { // tombstones in the mix
		if err := det.Delete(slots[i*3]); err != nil {
			t.Fatal(err)
		}
	}
	queries := []geom.Point{
		{0, 0}, {0.5, -0.5}, {40, 40}, {-30, 10},
		det.At(slots[1]).Clone(), // exact duplicate of a live point
	}
	for qi, q := range queries {
		got, err := det.ScoreAt(q)
		if err != nil {
			t.Fatal(err)
		}
		live, _ := liveView(t, det)
		if err := live.Append(q); err != nil {
			t.Fatal(err)
		}
		want := batchLOFs(t, live, minPts)[live.Len()-1]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("query %d: ScoreAt=%v refit=%v (bits differ)", qi, got, want)
		}
	}
	if _, err := det.ScoreAt(geom.Point{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := det.ScoreAt(geom.Point{math.NaN(), 0}); err == nil {
		t.Error("NaN query accepted")
	}
}

// TestScoreAtEmptyAndTiny covers the degenerate regimes: no live points
// (isolated query scores 1) and fewer than MinPts live points.
func TestScoreAtEmptyAndTiny(t *testing.T) {
	det, err := New(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.ScoreAt(geom.Point{5})
	if err != nil || got != 1 {
		t.Fatalf("empty detector: ScoreAt=%v err=%v, want 1", got, err)
	}
	for i := 0; i < 2; i++ {
		if _, err := det.Insert(geom.Point{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Below MinPts+1 live points a batch fit is undefined (K > n-1), so
	// the reference is the detector's own dynamic semantics: inserting the
	// query and reading its LOF must agree with ScoreAt.
	got, err = det.ScoreAt(geom.Point{0.5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := det.Insert(geom.Point{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if want := det.LOF(s); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("tiny detector: ScoreAt=%v insert-then-LOF=%v", got, want)
	}
}

// TestCompactPreservesValues pins Compact: live points move to dense
// indices, every LOF survives bit for bit, and the detector keeps
// answering updates and queries correctly afterwards.
func TestCompactPreservesValues(t *testing.T) {
	const minPts = 4
	rng := rand.New(rand.NewSource(107))
	det, err := New(2, minPts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slots []int
	for i := 0; i < 90; i++ {
		s, err := det.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i := 0; i < 40; i++ {
		j := rng.Intn(len(slots))
		if err := det.Delete(slots[j]); err != nil {
			t.Fatal(err)
		}
		slots = append(slots[:j], slots[j+1:]...)
	}
	before := map[int]float64{}
	coords := map[int]geom.Point{}
	for _, s := range slots {
		before[s] = det.LOF(s)
		coords[s] = det.At(s).Clone()
	}
	remap := det.Compact()
	if det.Size() != det.Len() {
		t.Fatalf("Size=%d after compact, want Len=%d", det.Size(), det.Len())
	}
	for old, want := range before {
		ns := remap[old]
		if ns < 0 || ns >= det.Len() {
			t.Fatalf("remap[%d]=%d out of [0,%d)", old, ns, det.Len())
		}
		if !det.At(ns).Equal(coords[old]) {
			t.Fatalf("slot %d moved to %d but coordinates changed", old, ns)
		}
		if math.Float64bits(det.LOF(ns)) != math.Float64bits(want) {
			t.Fatalf("slot %d→%d: LOF %v != pre-compact %v", old, ns, det.LOF(ns), want)
		}
	}
	// Post-compact updates still match the batch oracle bit for bit.
	if _, err := det.Insert(geom.Point{0.2, -0.3}); err != nil {
		t.Fatal(err)
	}
	if err := det.Delete(0); err != nil {
		t.Fatal(err)
	}
	live, liveIdx := liveView(t, det)
	want := batchLOFs(t, live, minPts)
	for j, i := range liveIdx {
		if math.Float64bits(det.LOF(i)) != math.Float64bits(want[j]) {
			t.Fatalf("post-compact slot %d: %v != batch %v", i, det.LOF(i), want[j])
		}
	}
}
