package index

import (
	"sync/atomic"

	"lof/internal/geom"
)

// Counting wraps an Index and counts queries issued through it. The fit
// pipeline installs it when tracing is enabled so run stats can report how
// many kNN and range probes the materialization actually cost — the
// quantity the paper's Section 7 index comparison is about. Counters are
// atomic, keeping the wrapped index safe for concurrent queries.
type Counting struct {
	Index
	knn, rng atomic.Int64
}

// NewCounting wraps ix; a nil ix returns nil.
func NewCounting(ix Index) *Counting {
	if ix == nil {
		return nil
	}
	return &Counting{Index: ix}
}

// KNN counts the query and delegates to the wrapped index.
func (c *Counting) KNN(q geom.Point, k int, exclude int) []Neighbor {
	c.knn.Add(1)
	return c.Index.KNN(q, k, exclude)
}

// Range counts the query and delegates to the wrapped index.
func (c *Counting) Range(q geom.Point, r float64, exclude int) []Neighbor {
	c.rng.Add(1)
	return c.Index.Range(q, r, exclude)
}

// KNNQueries returns the number of KNN calls observed.
func (c *Counting) KNNQueries() int64 { return c.knn.Load() }

// RangeQueries returns the number of Range calls observed.
func (c *Counting) RangeQueries() int64 { return c.rng.Load() }

// Unwrap returns the underlying index.
func (c *Counting) Unwrap() Index { return c.Index }
