package index

import (
	"sync/atomic"

	"lof/internal/geom"
)

// Counting wraps an Index and counts queries issued through it. The fit
// pipeline installs it when tracing is enabled so run stats can report how
// many kNN and range probes the materialization actually cost — the
// quantity the paper's Section 7 index comparison is about. Counters are
// atomic, keeping the wrapped index safe for concurrent queries.
//
// Counting also observes the cursor layer: it tracks how many cursors were
// created, how many queries were served by a reused cursor (the
// allocation-free hot path), and how many went through the legacy
// KNN/Range shims that build a throwaway cursor per call (cursor misses).
type Counting struct {
	Index
	knn, rng atomic.Int64

	cursors     atomic.Int64 // cursors handed out via NewCursor
	cursorReuse atomic.Int64 // queries served by a cursor after its first
	cursorMiss  atomic.Int64 // legacy KNN/Range calls (throwaway cursor)
}

// NewCounting wraps ix; a nil ix returns nil.
func NewCounting(ix Index) *Counting {
	if ix == nil {
		return nil
	}
	return &Counting{Index: ix}
}

// KNN counts the query as a legacy-path (cursor-miss) probe and delegates
// to the wrapped index.
func (c *Counting) KNN(q geom.Point, k int, exclude int) []Neighbor {
	c.knn.Add(1)
	c.cursorMiss.Add(1)
	return c.Index.KNN(q, k, exclude)
}

// Range counts the query as a legacy-path (cursor-miss) probe and
// delegates to the wrapped index.
func (c *Counting) Range(q geom.Point, r float64, exclude int) []Neighbor {
	c.rng.Add(1)
	c.cursorMiss.Add(1)
	return c.Index.Range(q, r, exclude)
}

// NewCursor returns a counting cursor over the wrapped index's cursor, so
// consumers that thread cursors keep the wrapper's query accounting.
func (c *Counting) NewCursor() Cursor {
	c.cursors.Add(1)
	return &countingCursor{c: c, cur: NewCursor(c.Index)}
}

// countingCursor delegates to the wrapped index's cursor and attributes
// queries to the Counting wrapper's counters.
type countingCursor struct {
	c    *Counting
	cur  Cursor
	used bool
}

func (cc *countingCursor) Index() Index { return cc.c }

func (cc *countingCursor) count(queries *atomic.Int64) {
	queries.Add(1)
	if cc.used {
		cc.c.cursorReuse.Add(1)
	}
	cc.used = true
}

func (cc *countingCursor) KNNInto(dst []Neighbor, q geom.Point, k int, exclude int) []Neighbor {
	cc.count(&cc.c.knn)
	return cc.cur.KNNInto(dst, q, k, exclude)
}

func (cc *countingCursor) RangeInto(dst []Neighbor, q geom.Point, r float64, exclude int) []Neighbor {
	cc.count(&cc.c.rng)
	return cc.cur.RangeInto(dst, q, r, exclude)
}

// KNNQueries returns the number of KNN calls observed (both paths).
func (c *Counting) KNNQueries() int64 { return c.knn.Load() }

// RangeQueries returns the number of Range calls observed (both paths).
func (c *Counting) RangeQueries() int64 { return c.rng.Load() }

// Cursors returns how many cursors were created through the wrapper.
func (c *Counting) Cursors() int64 { return c.cursors.Load() }

// CursorReuse returns how many queries were served by a reused cursor —
// every query after the first on each cursor, the allocation-free path.
func (c *Counting) CursorReuse() int64 { return c.cursorReuse.Load() }

// CursorMisses returns how many queries went through the legacy KNN/Range
// shims, each of which builds and discards a cursor.
func (c *Counting) CursorMisses() int64 { return c.cursorMiss.Load() }

// Unwrap returns the underlying index.
func (c *Counting) Unwrap() Index { return c.Index }
