package index_test

import (
	"sync"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

func TestCountingDelegatesAndCounts(t *testing.T) {
	pts, err := geom.FromSlice([]float64{0, 0, 1, 0, 2, 0, 10, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := linear.New(pts, geom.Euclidean{})
	c := index.NewCounting(base)
	if c.Len() != base.Len() {
		t.Fatalf("Len = %d, want %d", c.Len(), base.Len())
	}
	if c.Unwrap() != index.Index(base) {
		t.Fatal("Unwrap did not return the wrapped index")
	}

	q := pts.At(0)
	got := c.KNN(q, 2, 0)
	want := base.KNN(q, 2, 0)
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("KNN through wrapper = %v, want %v", got, want)
	}
	_ = c.Range(q, 2.5, index.ExcludeNone)
	_ = c.KNN(q, 1, index.ExcludeNone)
	if c.KNNQueries() != 2 || c.RangeQueries() != 1 {
		t.Fatalf("counters knn=%d range=%d, want 2/1", c.KNNQueries(), c.RangeQueries())
	}
}

func TestCountingConcurrent(t *testing.T) {
	pts, err := geom.FromSlice([]float64{0, 0, 1, 1, 2, 2, 3, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := index.NewCounting(linear.New(pts, geom.Euclidean{}))
	const goroutines = 8
	const queries = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				_ = c.KNN(pts.At(i%pts.Len()), 2, index.ExcludeNone)
			}
		}()
	}
	wg.Wait()
	if c.KNNQueries() != goroutines*queries {
		t.Fatalf("knn count = %d, want %d", c.KNNQueries(), goroutines*queries)
	}
}

func TestCountingNil(t *testing.T) {
	if c := index.NewCounting(nil); c != nil {
		t.Fatalf("NewCounting(nil) = %v, want nil", c)
	}
}
