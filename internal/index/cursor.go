package index

import "lof/internal/geom"

// Cursor is a reusable query object over one index. It owns the candidate
// heap, the result scratch and any implementation-specific traversal state
// (kd-tree/X-tree stacks, grid cell lists, VA-file candidate sets), so
// issuing many queries through one cursor performs no per-query
// allocations: results are appended into caller-owned buffers.
//
// A cursor is bound to the index that created it and is NOT safe for
// concurrent use — it is a per-goroutine object. The index itself stays
// immutable and safe for concurrent queries; parallel consumers allocate
// one cursor per worker (see matdb.Materialize). Results are identical to
// the legacy Index.KNN/Range methods, which are themselves thin shims over
// a fresh cursor.
type Cursor interface {
	// Index returns the index this cursor queries.
	Index() Index
	// KNNInto appends the k nearest neighbors of q to dst and returns the
	// extended slice, with the exact semantics of Index.KNN: sorted by
	// (distance, index), self-exclusion via exclude, all points when fewer
	// than k are available.
	KNNInto(dst []Neighbor, q geom.Point, k int, exclude int) []Neighbor
	// RangeInto appends every point within distance r of q (inclusive) to
	// dst and returns the extended slice, with the exact semantics of
	// Index.Range.
	RangeInto(dst []Neighbor, q geom.Point, r float64, exclude int) []Neighbor
}

// CursorIndex is implemented by indexes that hand out reusable cursors.
// All five in-tree implementations (linear, grid, kdtree, xtree, vafile)
// and the Counting wrapper implement it; NewCursor falls back to a legacy
// adapter for any other Index.
type CursorIndex interface {
	Index
	// NewCursor returns a fresh cursor over the index.
	NewCursor() Cursor
}

// NewCursor returns a reusable cursor over ix: the index's own cursor when
// it implements CursorIndex, otherwise an adapter that answers through the
// legacy allocating methods (correct, but without the reuse benefit).
func NewCursor(ix Index) Cursor {
	if ci, ok := ix.(CursorIndex); ok {
		return ci.NewCursor()
	}
	return &legacyCursor{ix: ix}
}

// legacyCursor adapts a plain Index to the Cursor interface by copying out
// of the allocating methods.
type legacyCursor struct {
	ix Index
}

func (c *legacyCursor) Index() Index { return c.ix }

func (c *legacyCursor) KNNInto(dst []Neighbor, q geom.Point, k int, exclude int) []Neighbor {
	return append(dst, c.ix.KNN(q, k, exclude)...)
}

func (c *legacyCursor) RangeInto(dst []Neighbor, q geom.Point, r float64, exclude int) []Neighbor {
	return append(dst, c.ix.Range(q, r, exclude)...)
}

// KNNWithTiesInto is KNNWithTies through a cursor: it appends the
// k-distance neighborhood of q (Definition 4, ties included) to dst and
// returns the extended slice. The intermediate kNN result is staged in dst
// itself and replaced by the range expansion, so the call allocates only
// when dst must grow.
func KNNWithTiesInto(c Cursor, dst []Neighbor, q geom.Point, k int, exclude int) []Neighbor {
	if k <= 0 {
		return dst
	}
	start := len(dst)
	dst = c.KNNInto(dst, q, k, exclude)
	if len(dst)-start < k {
		return dst // fewer than k candidates: no tie expansion possible
	}
	kdist := dst[len(dst)-1].Dist
	return c.RangeInto(dst[:start], q, kdist, exclude)
}
