// Package dynamic implements a mutable k-nearest-neighbor index over a
// growing, tombstoned point set — the spatial index behind the incremental
// LOF detector. The in-tree index structures (kdtree, grid, vafile, …) are
// immutable after construction, which is the right trade for batch fits but
// useless under a stream of inserts and deletes. This package composes
// them into a dynamic structure using the classic base-plus-delta scheme:
//
//   - a base: an immutable index (k-d tree) built over a compacted snapshot
//     of the live points at the last rebuild;
//   - an overlay: the points inserted since that rebuild, queried by
//     sequential scan;
//   - tombstones: a deleted-bit per slot; deletions never move points, they
//     only mark them, and queries filter marked results.
//
// A query therefore costs one base probe (asking for k plus the number of
// base points tombstoned since the rebuild, so filtering can never starve
// the result) plus a scan of the overlay. When the overlay or the tombstone
// backlog outgrows a fraction of the base, the index rebuilds: the live
// points are compacted into a fresh base and both deltas reset. Rebuild
// cost is O(n log n) amortized over the Θ(n) updates that triggered it, so
// per-update cost tracks the affected neighborhood, not the dataset.
//
// Results are exact and bit-identical to a sequential scan over the live
// points: the base index computes distances with the same metric, and ties
// are broken by the canonical (distance, index) order on the *global* slot
// indices. The index is not safe for concurrent mutation; reads through
// separate cursors are safe once mutation stops (the epoch layer in
// internal/stream enforces exactly that discipline).
package dynamic

import (
	"fmt"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/kdtree"
)

// rebuildMinOverlay is the overlay size below which rebuilds never trigger:
// tiny datasets would otherwise rebuild on every insert.
const rebuildMinOverlay = 32

// Index is a dynamic kNN index over tombstoned slots. Slot indices are
// stable across all mutations: Insert appends a slot, Delete marks one, and
// query results carry slot indices.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
	// kern is the resolved distance kernel over pts. It reads the store
	// through the pointer on every call, so it survives appends that
	// re-back the coordinate block.
	kern geom.Kernel

	deleted []bool
	live    int

	// base indexes basePts, a compacted copy of the points that were live
	// at the last rebuild; baseIDs maps base positions back to slot
	// indices, and slotToBase the inverse (-1 for slots not in the base).
	base       index.Index
	basePts    *geom.Points
	baseIDs    []int
	slotToBase []int32
	// baseDead counts base points tombstoned since the rebuild; base kNN
	// queries over-fetch by this amount so filtering cannot starve them.
	baseDead int
	// overlayStart is the first slot not covered by the base.
	overlayStart int
}

// New returns an empty dynamic index for dim-dimensional points under m
// (Euclidean when nil).
func New(dim int, m geom.Metric) *Index {
	if m == nil {
		m = geom.Euclidean{}
	}
	pts := geom.NewPoints(dim, 0)
	return &Index{pts: pts, metric: m, kern: geom.NewKernel(pts, m)}
}

// Len returns the number of live (inserted and not deleted) points.
func (ix *Index) Len() int { return ix.live }

// Size returns the number of slots ever allocated, tombstones included.
func (ix *Index) Size() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// Dim returns the dimensionality of the indexed points.
func (ix *Index) Dim() int { return ix.pts.Dim() }

// At returns a view of slot i's coordinates; callers must not modify it.
func (ix *Index) At(i int) geom.Point { return ix.pts.At(i) }

// DistTo returns the distance between slot i and q under the index's
// metric, through the resolved kernel (no per-call metric dispatch).
func (ix *Index) DistTo(i int, q geom.Point) float64 { return ix.kern.Dist(i, q) }

// Deleted reports whether slot i is tombstoned (out-of-range slots report
// true: there is no live point there).
func (ix *Index) Deleted(i int) bool {
	return i < 0 || i >= len(ix.deleted) || ix.deleted[i]
}

// Insert appends p as a new slot and returns its index. The coordinates
// are copied; the caller may reuse p's backing array afterwards.
func (ix *Index) Insert(p geom.Point) (int, error) {
	if err := ix.pts.Append(p); err != nil {
		return 0, err
	}
	ix.deleted = append(ix.deleted, false)
	ix.live++
	i := ix.pts.Len() - 1
	ix.maybeRebuild()
	return i, nil
}

// Delete tombstones slot i. The slot keeps its index; it just stops
// appearing in query results.
func (ix *Index) Delete(i int) error {
	if i < 0 || i >= ix.pts.Len() {
		return fmt.Errorf("dynamic: slot %d out of range [0, %d)", i, ix.pts.Len())
	}
	if ix.deleted[i] {
		return fmt.Errorf("dynamic: slot %d already deleted", i)
	}
	ix.deleted[i] = true
	ix.live--
	if i < ix.overlayStart && ix.slotToBase[i] >= 0 {
		ix.baseDead++
	}
	ix.maybeRebuild()
	return nil
}

// maybeRebuild compacts the live points into a fresh base when the overlay
// or the tombstone backlog has outgrown it. Thresholds are fractions of the
// base size so rebuild cost amortizes over the updates that caused it.
func (ix *Index) maybeRebuild() {
	overlay := ix.pts.Len() - ix.overlayStart
	if overlay < rebuildMinOverlay && ix.baseDead < rebuildMinOverlay {
		return
	}
	if overlay*4 < len(ix.baseIDs) && ix.baseDead*2 < len(ix.baseIDs) {
		return
	}
	ix.Rebuild()
}

// Rebuild forces compaction: live points are copied into a fresh base
// index and the overlay and tombstone backlog reset. Queries answer
// identically before and after.
func (ix *Index) Rebuild() {
	n := ix.pts.Len()
	basePts := geom.NewPoints(ix.pts.Dim(), ix.live)
	baseIDs := make([]int, 0, ix.live)
	slotToBase := make([]int32, n)
	for i := 0; i < n; i++ {
		if ix.deleted[i] {
			slotToBase[i] = -1
			continue
		}
		slotToBase[i] = int32(len(baseIDs))
		// Append copies the coordinates, so the base snapshot stays valid
		// when ix.pts grows and reallocates underneath it.
		_ = basePts.Append(ix.pts.At(i))
		baseIDs = append(baseIDs, i)
	}
	ix.basePts = basePts
	ix.baseIDs = baseIDs
	ix.slotToBase = slotToBase
	ix.baseDead = 0
	ix.overlayStart = n
	if basePts.Len() > 0 {
		ix.base = kdtree.New(basePts, ix.metric)
	} else {
		ix.base = nil
	}
}

// KNN returns the k nearest live neighbors of q via a fresh cursor; hot
// paths should reuse a cursor.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, q, k, exclude)
}

// Range returns all live points within distance r of q via a fresh cursor.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, q, r, exclude)
}

// NewCursor returns a reusable query object over the index. The cursor
// observes mutations (it holds no snapshot), but must not be used
// concurrently with them.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0)}
}

// Cursor owns the candidate heap, base-probe scratch and sorter for one
// query stream; see index.Cursor.
type Cursor struct {
	ix      *Index
	h       *index.Heap
	sorter  index.Sorter
	scratch []index.Neighbor
	// baseCur is a cursor over the current base; rebuilt lazily when the
	// base it was created for is replaced.
	baseCur index.Cursor
	baseFor index.Index
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// cursor returns a cursor over the current base, reusing the previous one
// while the base is unchanged.
func (c *Cursor) cursor() index.Cursor {
	base := c.ix.base
	if base == nil {
		return nil
	}
	if c.baseFor != base {
		c.baseCur = index.NewCursor(base)
		c.baseFor = base
	}
	return c.baseCur
}

// KNNInto appends the k nearest live neighbors of q to dst, sorted by
// (distance, slot index), self-excluded via exclude; all live points when
// fewer than k exist.
func (c *Cursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 {
		return dst
	}
	ix := c.ix
	c.h.Reset(k)
	if bc := c.cursor(); bc != nil {
		// Over-fetch by the tombstone backlog: of the k+baseDead nearest
		// base points at most baseDead are dead, leaving ≥ k live ones
		// (when the base holds that many). Self-exclusion happens here when
		// the excluded slot is a base point, in the overlay scan otherwise.
		baseK := k + ix.baseDead
		baseExclude := index.ExcludeNone
		if exclude >= 0 && exclude < ix.overlayStart && ix.slotToBase[exclude] >= 0 {
			baseExclude = int(ix.slotToBase[exclude])
		}
		c.scratch = bc.KNNInto(c.scratch[:0], q, baseK, baseExclude)
		for _, nb := range c.scratch {
			slot := ix.baseIDs[nb.Index]
			if ix.deleted[slot] {
				continue
			}
			c.h.Push(index.Neighbor{Index: slot, Dist: nb.Dist})
		}
	}
	for i := ix.overlayStart; i < ix.pts.Len(); i++ {
		if i == exclude || ix.deleted[i] {
			continue
		}
		c.h.Push(index.Neighbor{Index: i, Dist: ix.kern.Dist(i, q)})
	}
	return c.h.AppendSorted(dst)
}

// RangeInto appends every live point within distance r of q (inclusive) to
// dst, sorted by (distance, slot index).
func (c *Cursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 {
		return dst
	}
	ix := c.ix
	start := len(dst)
	if bc := c.cursor(); bc != nil {
		baseExclude := index.ExcludeNone
		if exclude >= 0 && exclude < ix.overlayStart && ix.slotToBase[exclude] >= 0 {
			baseExclude = int(ix.slotToBase[exclude])
		}
		c.scratch = bc.RangeInto(c.scratch[:0], q, r, baseExclude)
		for _, nb := range c.scratch {
			slot := ix.baseIDs[nb.Index]
			if ix.deleted[slot] {
				continue
			}
			dst = append(dst, index.Neighbor{Index: slot, Dist: nb.Dist})
		}
	}
	for i := ix.overlayStart; i < ix.pts.Len(); i++ {
		if i == exclude || ix.deleted[i] {
			continue
		}
		if d := ix.kern.Dist(i, q); d <= r {
			dst = append(dst, index.Neighbor{Index: i, Dist: d})
		}
	}
	c.sorter.Sort(dst[start:])
	return dst
}
