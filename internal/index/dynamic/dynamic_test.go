package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
)

// naiveKNN is the oracle: a scan over live slots with (distance, index)
// tie-breaks, exactly what the dynamic index must reproduce bit for bit.
func naiveKNN(ix *Index, q geom.Point, k, exclude int) []index.Neighbor {
	var all []index.Neighbor
	for i := 0; i < ix.Size(); i++ {
		if i == exclude || ix.Deleted(i) {
			continue
		}
		all = append(all, index.Neighbor{Index: i, Dist: ix.Metric().Distance(q, ix.At(i))})
	}
	index.SortNeighbors(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func naiveRange(ix *Index, q geom.Point, r float64, exclude int) []index.Neighbor {
	var all []index.Neighbor
	for i := 0; i < ix.Size(); i++ {
		if i == exclude || ix.Deleted(i) {
			continue
		}
		if d := ix.Metric().Distance(q, ix.At(i)); d <= r {
			all = append(all, index.Neighbor{Index: i, Dist: d})
		}
	}
	index.SortNeighbors(all)
	return all
}

func equalNeighbors(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
			return false
		}
	}
	return true
}

// TestRandomOpsMatchNaive drives a random insert/delete mix (forcing many
// rebuilds) and checks every query shape against the scan oracle after
// each step.
func TestRandomOpsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ix := New(2, nil)
	cur := ix.NewCursor()
	var liveSlots []int
	for step := 0; step < 600; step++ {
		if len(liveSlots) > 0 && rng.Float64() < 0.3 {
			j := rng.Intn(len(liveSlots))
			victim := liveSlots[j]
			if err := ix.Delete(victim); err != nil {
				t.Fatal(err)
			}
			liveSlots = append(liveSlots[:j], liveSlots[j+1:]...)
		} else {
			p := geom.Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			if rng.Float64() < 0.1 { // duplicate-heavy pocket
				p = geom.Point{1, 1}
			}
			slot, err := ix.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			liveSlots = append(liveSlots, slot)
		}
		if step%7 != 0 || len(liveSlots) == 0 {
			continue
		}
		q := geom.Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		k := 1 + rng.Intn(8)
		exclude := index.ExcludeNone
		if rng.Float64() < 0.5 {
			exclude = liveSlots[rng.Intn(len(liveSlots))]
			q = ix.At(exclude).Clone()
		}
		got := cur.KNNInto(nil, q, k, exclude)
		want := naiveKNN(ix, q, k, exclude)
		if !equalNeighbors(got, want) {
			t.Fatalf("step %d: KNN(k=%d, exclude=%d) = %v, want %v", step, k, exclude, got, want)
		}
		if len(want) > 0 {
			r := want[len(want)-1].Dist
			gotR := cur.RangeInto(nil, q, r, exclude)
			wantR := naiveRange(ix, q, r, exclude)
			if !equalNeighbors(gotR, wantR) {
				t.Fatalf("step %d: Range(r=%v) = %v, want %v", step, r, gotR, wantR)
			}
		}
	}
	if ix.Len() != len(liveSlots) {
		t.Fatalf("Len=%d, want %d", ix.Len(), len(liveSlots))
	}
}

// TestTombstoneBacklogOverfetch pins the over-fetch invariant: deleting
// base points between rebuilds must not starve kNN results.
func TestTombstoneBacklogOverfetch(t *testing.T) {
	ix := New(1, nil)
	for i := 0; i < 100; i++ {
		if _, err := ix.Insert(geom.Point{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Rebuild()
	// Tombstone the 10 nearest slots to the query point without triggering
	// a rebuild (10 < 100/2).
	for i := 0; i < 10; i++ {
		if err := ix.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	got := ix.KNN(geom.Point{0}, 5, index.ExcludeNone)
	want := naiveKNN(ix, geom.Point{0}, 5, index.ExcludeNone)
	if !equalNeighbors(got, want) {
		t.Fatalf("KNN after base tombstones = %v, want %v", got, want)
	}
	if got[0].Index != 10 {
		t.Fatalf("nearest live slot = %d, want 10", got[0].Index)
	}
}

// TestInsertCopiesCoordinates proves the index does not retain the
// caller's slice: mutating the buffer after Insert changes nothing.
func TestInsertCopiesCoordinates(t *testing.T) {
	ix := New(2, nil)
	buf := geom.Point{1, 2}
	slot, err := ix.Insert(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[0], buf[1] = 99, 99
	if p := ix.At(slot); p[0] != 1 || p[1] != 2 {
		t.Fatalf("stored point %v follows caller mutation", p)
	}
}

func TestDeleteValidation(t *testing.T) {
	ix := New(2, nil)
	if err := ix.Delete(0); err == nil {
		t.Error("out-of-range delete accepted")
	}
	slot, err := ix.Insert(geom.Point{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(slot); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(slot); err == nil {
		t.Error("double delete accepted")
	}
	if !ix.Deleted(slot) || ix.Deleted(-1) != true || ix.Deleted(99) != true {
		t.Error("Deleted bounds semantics wrong")
	}
	if _, err := ix.Insert(geom.Point{math.NaN(), 0}); err == nil {
		t.Error("NaN coordinate accepted")
	}
}

// TestManhattanMetric exercises the non-default metric path through base
// and overlay alike.
func TestManhattanMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ix := New(3, geom.Manhattan{})
	cur := ix.NewCursor()
	for i := 0; i < 200; i++ {
		if _, err := ix.Insert(geom.Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		got := cur.KNNInto(nil, q, 7, index.ExcludeNone)
		if want := naiveKNN(ix, q, 7, index.ExcludeNone); !equalNeighbors(got, want) {
			t.Fatalf("trial %d: %v != %v", trial, got, want)
		}
	}
}
