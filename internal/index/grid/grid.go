// Package grid implements the uniform-grid k-NN index the paper prescribes
// for low-dimensional data ("a grid based approach which can answer k-nn
// queries in constant time"). Points are bucketed into a fixed lattice of
// axis-aligned cells; queries scan cells in expanding Chebyshev rings
// around the query cell until no unvisited cell can beat the current k-th
// candidate.
package grid

import (
	"math"

	"lof/internal/geom"
	"lof/internal/index"
)

// targetPerCell is the average number of points per occupied cell the
// resolution heuristic aims for.
const targetPerCell = 4

// maxTotalCells caps memory: the per-dimension resolution is reduced until
// the full lattice fits.
const maxTotalCells = 1 << 21

// Index is a uniform grid over a point set.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
	lo, hi geom.Point
	res    []int     // cells per dimension
	width  []float64 // cell width per dimension
	stride []int     // linear index strides
	cells  [][]int32 // point ids per cell, dense
	wmin   float64   // smallest cell width across dimensions
	// eps is the per-dimension outward slack added to cell box faces, and
	// tol its metric-space counterpart subtracted from ring lower bounds.
	// Bucketing computes floor((p-lo)/width) in floating point, so a point
	// can land in a cell whose nominal box excludes it by a few ulps — most
	// visibly the data maximum, which clamps into the last cell while
	// lo+res·width often rounds below it. Pruning against unwidened boxes
	// would then drop exact-distance matches (a Range(p, 0) that cannot
	// find p's own duplicates), so boxes are widened until they provably
	// contain every point bucketed into them.
	eps []float64
	tol float64
}

// New builds a grid index over pts with the given metric (Euclidean when
// nil). The grid resolution is chosen from the dataset size and bounds.
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("grid: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ix := &Index{pts: pts, metric: m}
	n := pts.Len()
	if n == 0 {
		return ix
	}
	dim := pts.Dim()
	ix.lo, ix.hi = pts.Bounds()

	// Aim for targetPerCell points per cell if points were uniform:
	// res^dim ≈ n/targetPerCell.
	perDim := int(math.Ceil(math.Pow(float64(n)/targetPerCell, 1/float64(dim))))
	if perDim < 1 {
		perDim = 1
	}
	for {
		total := 1
		overflow := false
		for d := 0; d < dim; d++ {
			total *= perDim
			if total > maxTotalCells {
				overflow = true
				break
			}
		}
		if !overflow {
			break
		}
		perDim /= 2
		if perDim < 1 {
			perDim = 1
			break
		}
	}

	ix.res = make([]int, dim)
	ix.width = make([]float64, dim)
	ix.stride = make([]int, dim)
	ix.eps = make([]float64, dim)
	ix.wmin = math.Inf(1)
	total := 1
	for d := 0; d < dim; d++ {
		span := ix.hi[d] - ix.lo[d]
		if span <= 0 {
			// Degenerate dimension: one cell wide.
			ix.res[d] = 1
			ix.width[d] = 1
		} else {
			ix.res[d] = perDim
			ix.width[d] = span / float64(perDim)
		}
		// Bucketing incurs a handful of rounding errors, each relatively
		// tiny; 2⁻⁵⁰ of the coordinate magnitude (8 ulps) dominates their
		// sum, so boxes widened by eps contain every point of their cell.
		ix.eps[d] = (math.Abs(ix.lo[d]) + math.Abs(ix.hi[d]) + span) * 0x1p-50
		// The ring stopping rule needs the smallest metric distance a
		// one-cell coordinate gap can represent on any axis, and the
		// largest metric distance the bucketing slack can hide.
		if mw := geom.AxisGapLowerBound(m, d, ix.width[d]); mw < ix.wmin {
			ix.wmin = mw
		}
		if mt := 2 * geom.AxisGapLowerBound(m, d, ix.eps[d]); mt > ix.tol {
			ix.tol = mt
		}
		ix.stride[d] = total
		total *= ix.res[d]
	}
	ix.cells = make([][]int32, total)
	c := make([]int, dim)
	for i := 0; i < n; i++ {
		ix.cellOfInto(c, pts.At(i))
		ix.cells[ix.linear(c)] = append(ix.cells[ix.linear(c)], int32(i))
	}
	return ix
}

// cellOfInto writes the clamped integer cell coordinates of p into c.
func (ix *Index) cellOfInto(c []int, p geom.Point) {
	for d := range p {
		v := int(math.Floor((p[d] - ix.lo[d]) / ix.width[d]))
		if v < 0 {
			v = 0
		}
		if v >= ix.res[d] {
			v = ix.res[d] - 1
		}
		c[d] = v
	}
}

func (ix *Index) linear(c []int) int {
	li := 0
	for d, v := range c {
		li += v * ix.stride[d]
	}
	return li
}

// cellBoxLinear writes the axis-aligned box of the cell with linear index
// li into lo, hi, decoding the multi-coordinates from the strides. The box
// is conservative: faces are pushed outward by the bucketing slack, and the
// outermost cells extend to the data bounds so the clamped extremes (whose
// nominal box can round short of them) stay inside. Distance lower bounds
// against these boxes therefore never exceed the distance to any point the
// cell actually holds.
func (ix *Index) cellBoxLinear(li int, lo, hi geom.Point) {
	for d := len(ix.stride) - 1; d >= 0; d-- {
		v := li / ix.stride[d]
		li -= v * ix.stride[d]
		l := ix.lo[d] + float64(v)*ix.width[d]
		h := l + ix.width[d]
		if v == ix.res[d]-1 && h < ix.hi[d] {
			h = ix.hi[d]
		}
		lo[d] = l - ix.eps[d]
		hi[d] = h + ix.eps[d]
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// appendRing appends the linear indices of every in-grid cell whose
// Chebyshev cell distance from center is exactly ring to dst, using c as
// the coordinate scratch. The enumeration recursion lives in ringRec — a
// method, not a closure, so ring walks allocate nothing beyond dst growth.
func (ix *Index) appendRing(dst []int32, center, c []int, ring int) []int32 {
	if ring == 0 {
		// The center cell comes from cellOfInto, which clamps into the grid.
		return append(dst, int32(ix.linear(center)))
	}
	return ix.ringRec(dst, center, c, ring, 0, false)
}

func (ix *Index) ringRec(dst []int32, center, c []int, ring, d int, onShell bool) []int32 {
	if d == len(center) {
		if onShell {
			dst = append(dst, int32(ix.linear(c)))
		}
		return dst
	}
	lo := center[d] - ring
	hi := center[d] + ring
	for v := lo; v <= hi; v++ {
		if v < 0 || v >= ix.res[d] {
			continue
		}
		c[d] = v
		delta := v - center[d]
		if delta < 0 {
			delta = -delta
		}
		dst = ix.ringRec(dst, center, c, ring, d+1, onShell || delta == ring)
	}
	return dst
}

// maxRing is the largest possible Chebyshev ring in the grid.
func (ix *Index) maxRing() int {
	m := 0
	for _, r := range ix.res {
		if r-1 > m {
			m = r - 1
		}
	}
	return m
}

// Cursor is a reusable query object over the grid: it owns the candidate
// heap, the cell lists of the expanding-ring walk and the cell-box scratch,
// so repeated queries allocate nothing.
type Cursor struct {
	ix           *Index
	h            *index.Heap
	sorter       index.Sorter
	center       []int
	coord        []int // ring recursion scratch
	ring         []int32
	boxLo, boxHi geom.Point
	kern         geom.Kernel
}

// NewCursor returns a fresh cursor over the index.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0), kern: geom.NewKernel(ix.pts, ix.metric)}
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// prepare sizes the coordinate scratch for a query of dimensionality dim.
func (c *Cursor) prepare(dim int) {
	if cap(c.center) < dim {
		c.center = make([]int, dim)
		c.coord = make([]int, dim)
		c.boxLo = make(geom.Point, dim)
		c.boxHi = make(geom.Point, dim)
	}
	c.center = c.center[:dim]
	c.coord = c.coord[:dim]
	c.boxLo = c.boxLo[:dim]
	c.boxHi = c.boxHi[:dim]
}

// KNNInto appends the k nearest neighbors of q to dst by expanding-ring
// search.
func (c *Cursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	ix := c.ix
	if k <= 0 || ix.pts.Len() == 0 {
		return dst
	}
	c.prepare(len(q))
	c.h.Reset(k)
	ix.cellOfInto(c.center, q)
	for ring := 0; ring <= ix.maxRing(); ring++ {
		// Once k candidates are held, no cell at this ring or beyond can
		// contain anything closer if even the nearest face of the ring is
		// too far away; tol keeps the bound valid for points the bucketing
		// slack pushed just outside their nominal cell.
		if w, full := c.h.Worst(); full && float64(ring-1)*ix.wmin > w+ix.tol {
			break
		}
		c.ring = ix.appendRing(c.ring[:0], c.center, c.coord, ring)
		for _, li := range c.ring {
			ix.cellBoxLinear(int(li), c.boxLo, c.boxHi)
			if w, full := c.h.Worst(); full && geom.MinDistToRect(ix.metric, q, c.boxLo, c.boxHi) > w {
				continue
			}
			for _, pi := range ix.cells[li] {
				if int(pi) == exclude {
					continue
				}
				c.h.Push(index.Neighbor{Index: int(pi), Dist: c.kern.Dist(int(pi), q)})
			}
		}
	}
	return c.h.AppendSorted(dst)
}

// RangeInto appends all points within distance r of q to dst.
func (c *Cursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	ix := c.ix
	if r < 0 || ix.pts.Len() == 0 {
		return dst
	}
	c.prepare(len(q))
	start := len(dst)
	ix.cellOfInto(c.center, q)
	for ring := 0; ring <= ix.maxRing(); ring++ {
		if float64(ring-1)*ix.wmin > r+ix.tol {
			break
		}
		c.ring = ix.appendRing(c.ring[:0], c.center, c.coord, ring)
		for _, li := range c.ring {
			ix.cellBoxLinear(int(li), c.boxLo, c.boxHi)
			if geom.MinDistToRect(ix.metric, q, c.boxLo, c.boxHi) > r {
				continue
			}
			for _, pi := range ix.cells[li] {
				if int(pi) == exclude {
					continue
				}
				if d := c.kern.Dist(int(pi), q); d <= r {
					dst = append(dst, index.Neighbor{Index: int(pi), Dist: d})
				}
			}
		}
	}
	c.sorter.Sort(dst[start:])
	return dst
}

// KNN returns the k nearest neighbors of q via a fresh cursor; hot paths
// should reuse a cursor.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, q, k, exclude)
}

// Range returns all points within distance r of q via a fresh cursor.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, q, r, exclude)
}
