// Package grid implements the uniform-grid k-NN index the paper prescribes
// for low-dimensional data ("a grid based approach which can answer k-nn
// queries in constant time"). Points are bucketed into a fixed lattice of
// axis-aligned cells; queries scan cells in expanding Chebyshev rings
// around the query cell until no unvisited cell can beat the current k-th
// candidate.
package grid

import (
	"math"

	"lof/internal/geom"
	"lof/internal/index"
)

// targetPerCell is the average number of points per occupied cell the
// resolution heuristic aims for.
const targetPerCell = 4

// maxTotalCells caps memory: the per-dimension resolution is reduced until
// the full lattice fits.
const maxTotalCells = 1 << 21

// Index is a uniform grid over a point set.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
	lo, hi geom.Point
	res    []int     // cells per dimension
	width  []float64 // cell width per dimension
	stride []int     // linear index strides
	cells  [][]int32 // point ids per cell, dense
	wmin   float64   // smallest cell width across dimensions
}

// New builds a grid index over pts with the given metric (Euclidean when
// nil). The grid resolution is chosen from the dataset size and bounds.
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("grid: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ix := &Index{pts: pts, metric: m}
	n := pts.Len()
	if n == 0 {
		return ix
	}
	dim := pts.Dim()
	ix.lo, ix.hi = pts.Bounds()

	// Aim for targetPerCell points per cell if points were uniform:
	// res^dim ≈ n/targetPerCell.
	perDim := int(math.Ceil(math.Pow(float64(n)/targetPerCell, 1/float64(dim))))
	if perDim < 1 {
		perDim = 1
	}
	for {
		total := 1
		overflow := false
		for d := 0; d < dim; d++ {
			total *= perDim
			if total > maxTotalCells {
				overflow = true
				break
			}
		}
		if !overflow {
			break
		}
		perDim /= 2
		if perDim < 1 {
			perDim = 1
			break
		}
	}

	ix.res = make([]int, dim)
	ix.width = make([]float64, dim)
	ix.stride = make([]int, dim)
	ix.wmin = math.Inf(1)
	total := 1
	for d := 0; d < dim; d++ {
		span := ix.hi[d] - ix.lo[d]
		if span <= 0 {
			// Degenerate dimension: one cell wide.
			ix.res[d] = 1
			ix.width[d] = 1
		} else {
			ix.res[d] = perDim
			ix.width[d] = span / float64(perDim)
		}
		// The ring stopping rule needs the smallest metric distance a
		// one-cell coordinate gap can represent on any axis.
		if mw := geom.AxisGapLowerBound(m, d, ix.width[d]); mw < ix.wmin {
			ix.wmin = mw
		}
		ix.stride[d] = total
		total *= ix.res[d]
	}
	ix.cells = make([][]int32, total)
	for i := 0; i < n; i++ {
		c := ix.linear(ix.cellOf(pts.At(i)))
		ix.cells[c] = append(ix.cells[c], int32(i))
	}
	return ix
}

// cellOf maps a point to clamped integer cell coordinates.
func (ix *Index) cellOf(p geom.Point) []int {
	c := make([]int, len(p))
	for d := range p {
		v := int(math.Floor((p[d] - ix.lo[d]) / ix.width[d]))
		if v < 0 {
			v = 0
		}
		if v >= ix.res[d] {
			v = ix.res[d] - 1
		}
		c[d] = v
	}
	return c
}

func (ix *Index) linear(c []int) int {
	li := 0
	for d, v := range c {
		li += v * ix.stride[d]
	}
	return li
}

// cellBox returns the axis-aligned box of cell c.
func (ix *Index) cellBox(c []int, lo, hi geom.Point) {
	for d, v := range c {
		lo[d] = ix.lo[d] + float64(v)*ix.width[d]
		hi[d] = lo[d] + ix.width[d]
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// forRing invokes f for every in-grid cell whose Chebyshev cell distance
// from center is exactly ring. It returns the number of cells visited.
func (ix *Index) forRing(center []int, ring int, f func(c []int)) int {
	dim := len(center)
	c := make([]int, dim)
	visited := 0
	var rec func(d int, onShell bool)
	rec = func(d int, onShell bool) {
		if d == dim {
			if onShell || ring == 0 {
				visited++
				f(c)
			}
			return
		}
		lo := center[d] - ring
		hi := center[d] + ring
		for v := lo; v <= hi; v++ {
			if v < 0 || v >= ix.res[d] {
				continue
			}
			c[d] = v
			delta := v - center[d]
			if delta < 0 {
				delta = -delta
			}
			rec(d+1, onShell || delta == ring)
		}
	}
	if ring == 0 {
		copy(c, center)
		inGrid := true
		for d, v := range c {
			if v < 0 || v >= ix.res[d] {
				inGrid = false
				break
			}
		}
		if inGrid {
			f(c)
			return 1
		}
		return 0
	}
	rec(0, false)
	return visited
}

// maxRing is the largest possible Chebyshev ring in the grid.
func (ix *Index) maxRing() int {
	m := 0
	for _, r := range ix.res {
		if r-1 > m {
			m = r - 1
		}
	}
	return m
}

// KNN returns the k nearest neighbors of q by expanding-ring search.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 || ix.pts.Len() == 0 {
		return nil
	}
	h := index.NewHeap(k)
	center := ix.cellOf(q)
	boxLo := make(geom.Point, len(q))
	boxHi := make(geom.Point, len(q))
	for ring := 0; ring <= ix.maxRing(); ring++ {
		// Once k candidates are held, no cell at this ring or beyond can
		// contain anything closer if even the nearest face of the ring is
		// too far away.
		if w, full := h.Worst(); full && float64(ring-1)*ix.wmin > w {
			break
		}
		ix.forRing(center, ring, func(c []int) {
			ix.cellBox(c, boxLo, boxHi)
			if w, full := h.Worst(); full && geom.MinDistToRect(ix.metric, q, boxLo, boxHi) > w {
				return
			}
			for _, pi := range ix.cells[ix.linear(c)] {
				if int(pi) == exclude {
					continue
				}
				h.Push(index.Neighbor{Index: int(pi), Dist: ix.metric.Distance(q, ix.pts.At(int(pi)))})
			}
		})
	}
	return h.Sorted()
}

// Range returns all points within distance r of q.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 || ix.pts.Len() == 0 {
		return nil
	}
	var out []index.Neighbor
	center := ix.cellOf(q)
	boxLo := make(geom.Point, len(q))
	boxHi := make(geom.Point, len(q))
	for ring := 0; ring <= ix.maxRing(); ring++ {
		if float64(ring-1)*ix.wmin > r {
			break
		}
		ix.forRing(center, ring, func(c []int) {
			ix.cellBox(c, boxLo, boxHi)
			if geom.MinDistToRect(ix.metric, q, boxLo, boxHi) > r {
				return
			}
			for _, pi := range ix.cells[ix.linear(c)] {
				if int(pi) == exclude {
					continue
				}
				if d := ix.metric.Distance(q, ix.pts.At(int(pi))); d <= r {
					out = append(out, index.Neighbor{Index: int(pi), Dist: d})
				}
			}
		})
	}
	index.SortNeighbors(out)
	return out
}
