package grid_test

import (
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/grid"
	"lof/internal/index/indextest"
)

func build(pts *geom.Points, m geom.Metric) index.Index { return grid.New(pts, m) }

func TestGridContract(t *testing.T)  { indextest.Run(t, build) }
func TestGridEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, build) }
func TestGridZeroAlloc(t *testing.T) { indextest.RunZeroAlloc(t, build) }

func TestGridQueryFarOutsideBounds(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix := grid.New(pts, nil)
	got := ix.KNN(geom.Point{100, 100}, 2, index.ExcludeNone)
	if len(got) != 2 || got[0].Index != 3 {
		t.Fatalf("KNN from far outside=%v", got)
	}
}

func TestGridDegenerateDimension(t *testing.T) {
	// All points share the y coordinate: the grid must handle a
	// zero-span dimension.
	pts := geom.NewPoints(2, 50)
	for i := 0; i < 50; i++ {
		if err := pts.Append(geom.Point{float64(i), 3}); err != nil {
			t.Fatal(err)
		}
	}
	ix := grid.New(pts, nil)
	got := ix.KNN(geom.Point{25, 3}, 2, 25)
	if len(got) != 2 || got[0].Dist != 1 || got[1].Dist != 1 {
		t.Fatalf("KNN=%v", got)
	}
}

func TestGridSinglePointRange(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix := grid.New(pts, nil)
	if got := ix.Range(geom.Point{2, 2}, 0, index.ExcludeNone); len(got) != 1 {
		t.Fatalf("Range=%v", got)
	}
}

func TestGridNilPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	grid.New(nil, nil)
}
