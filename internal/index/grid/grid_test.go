package grid_test

import (
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/grid"
	"lof/internal/index/indextest"
	"lof/internal/index/linear"
)

func build(pts *geom.Points, m geom.Metric) index.Index { return grid.New(pts, m) }

func TestGridContract(t *testing.T)  { indextest.Run(t, build) }
func TestGridEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, build) }
func TestGridZeroAlloc(t *testing.T) { indextest.RunZeroAlloc(t, build) }

func TestGridQueryFarOutsideBounds(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix := grid.New(pts, nil)
	got := ix.KNN(geom.Point{100, 100}, 2, index.ExcludeNone)
	if len(got) != 2 || got[0].Index != 3 {
		t.Fatalf("KNN from far outside=%v", got)
	}
}

func TestGridDegenerateDimension(t *testing.T) {
	// All points share the y coordinate: the grid must handle a
	// zero-span dimension.
	pts := geom.NewPoints(2, 50)
	for i := 0; i < 50; i++ {
		if err := pts.Append(geom.Point{float64(i), 3}); err != nil {
			t.Fatal(err)
		}
	}
	ix := grid.New(pts, nil)
	got := ix.KNN(geom.Point{25, 3}, 2, 25)
	if len(got) != 2 || got[0].Dist != 1 || got[1].Dist != 1 {
		t.Fatalf("KNN=%v", got)
	}
}

func TestGridSinglePointRange(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	ix := grid.New(pts, nil)
	if got := ix.Range(geom.Point{2, 2}, 0, index.ExcludeNone); len(got) != 1 {
		t.Fatalf("Range=%v", got)
	}
}

func TestGridBoundaryCellZeroRange(t *testing.T) {
	// Regression: the data maximum clamps into the last cell, but that
	// cell's nominal upper face (lo + res·width) can round a few ulps below
	// the maximum. Range pruning against the unwidened box then skipped the
	// cell for radii smaller than the rounding error — here, duplicates of
	// the extreme point vanished from Range(p, 0), which upstream turned
	// a duplicate-heavy point's neighborhood empty and its LOF into NaN.
	pts, err := geom.FromRows([]geom.Point{
		{2}, {2}, {2}, {13}, {2}, {8}, {8}, {13}, {13},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := grid.New(pts, nil)
	for _, i := range []int{3, 7, 8} {
		got := ix.Range(pts.At(i), 0, i)
		if len(got) != 2 {
			t.Fatalf("Range(point %d, 0)=%v, want both duplicates", i, got)
		}
		for _, nb := range got {
			if nb.Dist != 0 {
				t.Fatalf("Range(point %d, 0)=%v: nonzero distance", i, got)
			}
		}
	}
}

func TestGridMatchesLinearOnBoundaryHeavyData(t *testing.T) {
	// Cross-check grid against the always-correct scan on data whose
	// extremes carry duplicates in every dimension, at radii equal to
	// exact inter-point distances (the kdist radii LOF issues).
	rows := []geom.Point{
		{0, 0}, {0, 0}, {10, 10}, {10, 10}, {10, 0}, {0, 10},
		{3, 3}, {3, 7}, {7, 3}, {7, 7}, {5, 5}, {5, 5},
		{10, 10}, {0, 0}, {2, 8},
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	gix := grid.New(pts, nil)
	lix := linear.New(pts, nil)
	for i := 0; i < pts.Len(); i++ {
		for k := 1; k <= 4; k++ {
			g := gix.KNN(pts.At(i), k, i)
			l := lix.KNN(pts.At(i), k, i)
			if !neighborsEqual(g, l) {
				t.Fatalf("KNN(%d, k=%d): grid=%v linear=%v", i, k, g, l)
			}
			if len(l) > 0 {
				r := l[len(l)-1].Dist
				g = gix.Range(pts.At(i), r, i)
				l = lix.Range(pts.At(i), r, i)
				if !neighborsEqual(g, l) {
					t.Fatalf("Range(%d, %v): grid=%v linear=%v", i, r, g, l)
				}
			}
		}
	}
}

func neighborsEqual(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridNilPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	grid.New(nil, nil)
}
