// Package index defines the k-nearest-neighbor query interface that the
// LOF materialization step is built on, together with shared helpers for
// implementations. The paper evaluates three regimes (Sec. 7.4): a grid
// for low-dimensional data (constant-time kNN), a tree index for medium
// dimensionality (the paper uses an X-tree variant), and a sequential scan
// or VA-file for high-dimensional data. Subpackages provide one exact
// implementation per regime; all of them satisfy Index and return identical
// results, which the contract tests in indextest verify.
package index

import (
	"sort"

	"lof/internal/geom"
)

// Neighbor is one kNN query result: the index of a data point and its
// distance from the query.
type Neighbor struct {
	// Index identifies the point within the indexed dataset.
	Index int
	// Dist is the distance from the query point under the index's metric.
	Dist float64
}

// Index answers exact nearest-neighbor and range queries over a fixed
// dataset. Implementations are immutable after construction and safe for
// concurrent queries.
type Index interface {
	// Len returns the number of indexed points.
	Len() int
	// Metric returns the distance metric the index was built with.
	Metric() geom.Metric
	// KNN returns the k nearest neighbors of q, excluding the point with
	// index exclude (pass ExcludeNone to keep all points). Results are
	// sorted by (distance, index). If fewer than k points are available,
	// all of them are returned. Ties at the k-th distance are broken by
	// index; use KNNWithTies for the paper's tie-inclusive neighborhoods.
	KNN(q geom.Point, k int, exclude int) []Neighbor
	// Range returns every point within distance r of q (inclusive),
	// excluding the point with index exclude, sorted by (distance, index).
	Range(q geom.Point, r float64, exclude int) []Neighbor
}

// ExcludeNone disables self-exclusion in KNN and Range queries.
const ExcludeNone = -1

// KNNWithTies returns the k-distance neighborhood of q (Definition 4 of the
// paper): every point whose distance from q is at most the k-th smallest
// distance. The result can contain more than k points when several points
// tie at the k-distance. It is empty when the index holds no other points.
func KNNWithTies(ix Index, q geom.Point, k int, exclude int) []Neighbor {
	nn := ix.KNN(q, k, exclude)
	if len(nn) < k {
		return nn // fewer than k candidates: no tie expansion possible
	}
	kdist := nn[len(nn)-1].Dist
	return ix.Range(q, kdist, exclude)
}

// SortNeighbors orders ns by (distance, index), the canonical result order.
func SortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].Index < ns[j].Index
	})
}

// Heap is a bounded max-heap of neighbor candidates used by k-NN searches:
// it keeps the k smallest distances seen so far, with the largest of them
// at the root for O(1) pruning checks.
type Heap struct {
	k  int
	ns []Neighbor
}

// NewHeap returns a heap that retains the k closest candidates.
func NewHeap(k int) *Heap {
	return &Heap{k: k, ns: make([]Neighbor, 0, k)}
}

// Len returns the number of candidates currently held.
func (h *Heap) Len() int { return len(h.ns) }

// Full reports whether k candidates are held.
func (h *Heap) Full() bool { return len(h.ns) >= h.k }

// Worst returns the largest retained distance, or +Inf semantics via
// ok=false when the heap is not yet full (callers must not prune then).
func (h *Heap) Worst() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.root(), true
}

func (h *Heap) root() float64 { return h.ns[0].Dist }

// less orders candidates so the "worst" (max distance, then max index) is
// at the root; using the index as a tiebreak makes results deterministic.
func (h *Heap) less(i, j int) bool {
	if h.ns[i].Dist != h.ns[j].Dist {
		return h.ns[i].Dist > h.ns[j].Dist
	}
	return h.ns[i].Index > h.ns[j].Index
}

// Push offers a candidate; it is ignored when k candidates closer than it
// are already held.
func (h *Heap) Push(n Neighbor) {
	if h.k == 0 {
		return
	}
	if !h.Full() {
		h.ns = append(h.ns, n)
		h.up(len(h.ns) - 1)
		return
	}
	// Replace the root if the candidate is strictly better.
	if n.Dist > h.ns[0].Dist || (n.Dist == h.ns[0].Dist && n.Index > h.ns[0].Index) {
		return
	}
	h.ns[0] = n
	h.down(0)
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ns[i], h.ns[parent] = h.ns[parent], h.ns[i]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.ns)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.ns[i], h.ns[best] = h.ns[best], h.ns[i]
		i = best
	}
}

// Sorted drains the heap into a slice ordered by (distance, index).
func (h *Heap) Sorted() []Neighbor {
	out := make([]Neighbor, len(h.ns))
	copy(out, h.ns)
	SortNeighbors(out)
	h.ns = h.ns[:0]
	return out
}
