// Package index defines the k-nearest-neighbor query interface that the
// LOF materialization step is built on, together with shared helpers for
// implementations. The paper evaluates three regimes (Sec. 7.4): a grid
// for low-dimensional data (constant-time kNN), a tree index for medium
// dimensionality (the paper uses an X-tree variant), and a sequential scan
// or VA-file for high-dimensional data. Subpackages provide one exact
// implementation per regime; all of them satisfy Index and return identical
// results, which the contract tests in indextest verify.
package index

import (
	"sort"

	"lof/internal/geom"
)

// Neighbor is one kNN query result: the index of a data point and its
// distance from the query.
type Neighbor struct {
	// Index identifies the point within the indexed dataset.
	Index int
	// Dist is the distance from the query point under the index's metric.
	Dist float64
}

// Index answers exact nearest-neighbor and range queries over a fixed
// dataset. Implementations are immutable after construction and safe for
// concurrent queries.
type Index interface {
	// Len returns the number of indexed points.
	Len() int
	// Metric returns the distance metric the index was built with.
	Metric() geom.Metric
	// KNN returns the k nearest neighbors of q, excluding the point with
	// index exclude (pass ExcludeNone to keep all points). Results are
	// sorted by (distance, index). If fewer than k points are available,
	// all of them are returned. Ties at the k-th distance are broken by
	// index; use KNNWithTies for the paper's tie-inclusive neighborhoods.
	KNN(q geom.Point, k int, exclude int) []Neighbor
	// Range returns every point within distance r of q (inclusive),
	// excluding the point with index exclude, sorted by (distance, index).
	Range(q geom.Point, r float64, exclude int) []Neighbor
}

// ExcludeNone disables self-exclusion in KNN and Range queries.
const ExcludeNone = -1

// KNNWithTies returns the k-distance neighborhood of q (Definition 4 of the
// paper): every point whose distance from q is at most the k-th smallest
// distance. The result can contain more than k points when several points
// tie at the k-distance. It is empty when the index holds no other points
// or when k is not positive (no k-distance exists then).
func KNNWithTies(ix Index, q geom.Point, k int, exclude int) []Neighbor {
	if k <= 0 {
		return nil
	}
	nn := ix.KNN(q, k, exclude)
	if len(nn) < k {
		return nn // fewer than k candidates: no tie expansion possible
	}
	kdist := nn[len(nn)-1].Dist
	return ix.Range(q, kdist, exclude)
}

// byDistIndex implements sort.Interface over neighbors in the canonical
// (distance, index) order. A named slice type instead of sort.Slice keeps
// the per-call closure and reflect-based swapper off the query hot path.
type byDistIndex []Neighbor

func (ns byDistIndex) Len() int { return len(ns) }
func (ns byDistIndex) Less(i, j int) bool {
	if ns[i].Dist != ns[j].Dist {
		return ns[i].Dist < ns[j].Dist
	}
	return ns[i].Index < ns[j].Index
}
func (ns byDistIndex) Swap(i, j int) { ns[i], ns[j] = ns[j], ns[i] }

// SortNeighbors orders ns by (distance, index), the canonical result order.
func SortNeighbors(ns []Neighbor) {
	sort.Sort(byDistIndex(ns))
}

// Sorter sorts neighbor slices through a reusable sort.Interface value.
// Cursors embed one so result sorting performs no per-query allocation:
// sort.Sort takes a pointer to the embedded struct, which never escapes
// anew, unlike the interface conversion in SortNeighbors.
type Sorter struct {
	ns byDistIndex
}

// Len, Less and Swap implement sort.Interface over the staged slice.
func (s *Sorter) Len() int           { return s.ns.Len() }
func (s *Sorter) Less(i, j int) bool { return s.ns.Less(i, j) }
func (s *Sorter) Swap(i, j int)      { s.ns.Swap(i, j) }

// Sort orders ns by (distance, index) without allocating.
func (s *Sorter) Sort(ns []Neighbor) {
	s.ns = ns
	sort.Sort(s)
	s.ns = nil
}

// Heap is a bounded max-heap of neighbor candidates used by k-NN searches:
// it keeps the k smallest distances seen so far, with the largest of them
// at the root for O(1) pruning checks.
type Heap struct {
	k  int
	ns []Neighbor
}

// NewHeap returns a heap that retains the k closest candidates.
func NewHeap(k int) *Heap {
	return &Heap{k: k, ns: make([]Neighbor, 0, k)}
}

// Reset empties the heap and retargets it to the k closest candidates,
// keeping the backing storage so cursors can reuse one heap across queries
// without allocating (storage grows once when a larger k arrives).
func (h *Heap) Reset(k int) {
	h.k = k
	if cap(h.ns) < k {
		h.ns = make([]Neighbor, 0, k)
	} else {
		h.ns = h.ns[:0]
	}
}

// Len returns the number of candidates currently held.
func (h *Heap) Len() int { return len(h.ns) }

// Full reports whether k candidates are held.
func (h *Heap) Full() bool { return len(h.ns) >= h.k }

// Worst returns the largest retained distance, or +Inf semantics via
// ok=false when the heap is not yet full (callers must not prune then).
func (h *Heap) Worst() (float64, bool) {
	if !h.Full() {
		return 0, false
	}
	return h.root(), true
}

func (h *Heap) root() float64 { return h.ns[0].Dist }

// less orders candidates so the "worst" (max distance, then max index) is
// at the root; using the index as a tiebreak makes results deterministic.
func (h *Heap) less(i, j int) bool {
	if h.ns[i].Dist != h.ns[j].Dist {
		return h.ns[i].Dist > h.ns[j].Dist
	}
	return h.ns[i].Index > h.ns[j].Index
}

// Push offers a candidate; it is ignored when k candidates closer than it
// are already held.
func (h *Heap) Push(n Neighbor) {
	if h.k == 0 {
		return
	}
	if !h.Full() {
		h.ns = append(h.ns, n)
		h.up(len(h.ns) - 1)
		return
	}
	// Replace the root if the candidate is strictly better.
	if n.Dist > h.ns[0].Dist || (n.Dist == h.ns[0].Dist && n.Index > h.ns[0].Index) {
		return
	}
	h.ns[0] = n
	h.down(0)
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ns[i], h.ns[parent] = h.ns[parent], h.ns[i]
		i = parent
	}
}

func (h *Heap) down(i int) { h.downTo(i, len(h.ns)) }

// downTo sifts element i down within the heap prefix h.ns[:n].
func (h *Heap) downTo(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.ns[i], h.ns[best] = h.ns[best], h.ns[i]
		i = best
	}
}

// AppendSorted drains the heap into dst ordered by (distance, index) and
// returns the extended slice. The ordering is produced by an in-place
// heapsort of the heap's own storage — repeatedly moving the worst
// candidate to the end yields ascending (distance, index) order, since the
// heap roots the maximum under exactly that comparison — so draining
// performs no allocation beyond growing dst.
func (h *Heap) AppendSorted(dst []Neighbor) []Neighbor {
	for end := len(h.ns) - 1; end > 0; end-- {
		h.ns[0], h.ns[end] = h.ns[end], h.ns[0]
		h.downTo(0, end)
	}
	dst = append(dst, h.ns...)
	h.ns = h.ns[:0]
	return dst
}

// Sorted drains the heap into a fresh slice ordered by (distance, index).
func (h *Heap) Sorted() []Neighbor {
	if len(h.ns) == 0 {
		return nil
	}
	return h.AppendSorted(make([]Neighbor, 0, len(h.ns)))
}
