package index

import (
	"math/rand"
	"sort"
	"testing"

	"lof/internal/geom"
)

// panicIndex fails the test if any query reaches the index, proving a
// guard short-circuited before touching it.
type panicIndex struct{}

func (panicIndex) Len() int            { return 3 }
func (panicIndex) Metric() geom.Metric { return geom.Euclidean{} }
func (panicIndex) KNN(geom.Point, int, int) []Neighbor {
	panic("index: KNN called")
}
func (panicIndex) Range(geom.Point, float64, int) []Neighbor {
	panic("index: Range called")
}

// KNNWithTies used to panic on non-positive k by indexing an empty kNN
// result; it must now return nil without issuing any query.
func TestKNNWithTiesNonPositiveK(t *testing.T) {
	for _, k := range []int{0, -1, -100} {
		if got := KNNWithTies(panicIndex{}, geom.Point{0}, k, ExcludeNone); got != nil {
			t.Fatalf("KNNWithTies(k=%d)=%v, want nil", k, got)
		}
	}
	cur := NewCursor(panicIndex{})
	prefix := []Neighbor{{Index: 1, Dist: 1}}
	if got := KNNWithTiesInto(cur, prefix, geom.Point{0}, 0, ExcludeNone); len(got) != 1 {
		t.Fatalf("KNNWithTiesInto(k=0)=%v, want untouched prefix", got)
	}
}

func TestHeapKeepsKSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(100)
		h := NewHeap(k)
		all := make([]Neighbor, 0, n)
		for i := 0; i < n; i++ {
			nb := Neighbor{Index: i, Dist: float64(rng.Intn(20))}
			all = append(all, nb)
			h.Push(nb)
		}
		got := h.Sorted()
		SortNeighbors(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestHeapWorst(t *testing.T) {
	h := NewHeap(2)
	if _, full := h.Worst(); full {
		t.Fatal("empty heap reported full")
	}
	h.Push(Neighbor{Index: 0, Dist: 5})
	if _, full := h.Worst(); full {
		t.Fatal("half-full heap reported full")
	}
	h.Push(Neighbor{Index: 1, Dist: 3})
	if w, full := h.Worst(); !full || w != 5 {
		t.Fatalf("Worst=%v full=%v", w, full)
	}
	h.Push(Neighbor{Index: 2, Dist: 1})
	if w, _ := h.Worst(); w != 3 {
		t.Fatalf("Worst after improvement=%v", w)
	}
}

func TestHeapZeroK(t *testing.T) {
	h := NewHeap(0)
	h.Push(Neighbor{Index: 0, Dist: 1})
	if h.Len() != 0 {
		t.Fatalf("Len=%d", h.Len())
	}
	if got := h.Sorted(); len(got) != 0 {
		t.Fatalf("Sorted=%v", got)
	}
}

func TestHeapDeterministicTieBreak(t *testing.T) {
	// With equal distances the heap must keep the smallest indices.
	h := NewHeap(2)
	for _, i := range []int{5, 3, 9, 1, 7} {
		h.Push(Neighbor{Index: i, Dist: 2})
	}
	got := h.Sorted()
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 3 {
		t.Fatalf("got %v, want indices 1,3", got)
	}
}

func TestHeapSortedDrains(t *testing.T) {
	h := NewHeap(3)
	h.Push(Neighbor{Index: 0, Dist: 1})
	_ = h.Sorted()
	if h.Len() != 0 {
		t.Fatalf("Len after drain=%d", h.Len())
	}
}

func TestHeapResetReusesStorage(t *testing.T) {
	h := NewHeap(4)
	for i := 0; i < 8; i++ {
		h.Push(Neighbor{Index: i, Dist: float64(8 - i)})
	}
	h.Reset(2)
	h.Push(Neighbor{Index: 0, Dist: 3})
	h.Push(Neighbor{Index: 1, Dist: 1})
	h.Push(Neighbor{Index: 2, Dist: 2})
	got := h.Sorted()
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("after Reset: %v", got)
	}
	// Regrow beyond the original capacity.
	h.Reset(16)
	for i := 0; i < 20; i++ {
		h.Push(Neighbor{Index: i, Dist: float64(i)})
	}
	if h.Len() != 16 {
		t.Fatalf("Len after regrow=%d", h.Len())
	}
}

func TestHeapAppendSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(8)
		h := NewHeap(k)
		var all []Neighbor
		for i := 0; i < rng.Intn(40); i++ {
			nb := Neighbor{Index: i, Dist: float64(rng.Intn(10))}
			all = append(all, nb)
			h.Push(nb)
		}
		prefix := Neighbor{Index: -1, Dist: -1}
		got := h.AppendSorted([]Neighbor{prefix})
		if got[0] != prefix {
			t.Fatalf("trial %d: prefix clobbered: %v", trial, got[0])
		}
		SortNeighbors(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got)-1 != len(want) {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got)-1, len(want))
		}
		for i := range want {
			if got[i+1] != want[i] {
				t.Fatalf("trial %d: got[%d]=%v want %v", trial, i, got[i+1], want[i])
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: heap not drained, Len=%d", trial, h.Len())
		}
	}
}

func TestSorterMatchesSortNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Sorter
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(50)
		a := make([]Neighbor, n)
		for i := range a {
			a[i] = Neighbor{Index: rng.Intn(10), Dist: float64(rng.Intn(5))}
		}
		b := append([]Neighbor(nil), a...)
		SortNeighbors(a)
		s.Sort(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: Sorter diverges at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestSortNeighbors(t *testing.T) {
	ns := []Neighbor{{3, 2}, {1, 2}, {2, 1}}
	SortNeighbors(ns)
	want := []Neighbor{{2, 1}, {1, 2}, {3, 2}}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("ns=%v", ns)
		}
	}
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i].Dist < ns[j].Dist }) {
		t.Fatal("not sorted by distance")
	}
}
