package index

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapKeepsKSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(100)
		h := NewHeap(k)
		all := make([]Neighbor, 0, n)
		for i := 0; i < n; i++ {
			nb := Neighbor{Index: i, Dist: float64(rng.Intn(20))}
			all = append(all, nb)
			h.Push(nb)
		}
		got := h.Sorted()
		SortNeighbors(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestHeapWorst(t *testing.T) {
	h := NewHeap(2)
	if _, full := h.Worst(); full {
		t.Fatal("empty heap reported full")
	}
	h.Push(Neighbor{Index: 0, Dist: 5})
	if _, full := h.Worst(); full {
		t.Fatal("half-full heap reported full")
	}
	h.Push(Neighbor{Index: 1, Dist: 3})
	if w, full := h.Worst(); !full || w != 5 {
		t.Fatalf("Worst=%v full=%v", w, full)
	}
	h.Push(Neighbor{Index: 2, Dist: 1})
	if w, _ := h.Worst(); w != 3 {
		t.Fatalf("Worst after improvement=%v", w)
	}
}

func TestHeapZeroK(t *testing.T) {
	h := NewHeap(0)
	h.Push(Neighbor{Index: 0, Dist: 1})
	if h.Len() != 0 {
		t.Fatalf("Len=%d", h.Len())
	}
	if got := h.Sorted(); len(got) != 0 {
		t.Fatalf("Sorted=%v", got)
	}
}

func TestHeapDeterministicTieBreak(t *testing.T) {
	// With equal distances the heap must keep the smallest indices.
	h := NewHeap(2)
	for _, i := range []int{5, 3, 9, 1, 7} {
		h.Push(Neighbor{Index: i, Dist: 2})
	}
	got := h.Sorted()
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 3 {
		t.Fatalf("got %v, want indices 1,3", got)
	}
}

func TestHeapSortedDrains(t *testing.T) {
	h := NewHeap(3)
	h.Push(Neighbor{Index: 0, Dist: 1})
	_ = h.Sorted()
	if h.Len() != 0 {
		t.Fatalf("Len after drain=%d", h.Len())
	}
}

func TestSortNeighbors(t *testing.T) {
	ns := []Neighbor{{3, 2}, {1, 2}, {2, 1}}
	SortNeighbors(ns)
	want := []Neighbor{{2, 1}, {1, 2}, {3, 2}}
	for i := range ns {
		if ns[i] != want[i] {
			t.Fatalf("ns=%v", ns)
		}
	}
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i].Dist < ns[j].Dist }) {
		t.Fatal("not sorted by distance")
	}
}
