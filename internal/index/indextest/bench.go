package indextest

import (
	"fmt"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
)

// BenchKNN is the shared micro-benchmark every index package runs: build
// once, then measure kNN query latency over clustered data at a spread of
// sizes and dimensionalities.
func BenchKNN(b *testing.B, build Builder) {
	b.Helper()
	for _, cfg := range []struct{ n, dim, k int }{
		{1000, 2, 10},
		{10000, 2, 10},
		{10000, 8, 10},
		{10000, 32, 10},
	} {
		b.Run(fmt.Sprintf("n=%d/d=%d/k=%d", cfg.n, cfg.dim, cfg.k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			pts := geom.NewPoints(cfg.dim, cfg.n)
			for i := 0; i < cfg.n; i++ {
				p := make(geom.Point, cfg.dim)
				center := float64(rng.Intn(8)) * 10
				for d := range p {
					p[d] = center + rng.NormFloat64()
				}
				if err := pts.Append(p); err != nil {
					b.Fatal(err)
				}
			}
			ix := build(pts, geom.Euclidean{})
			queries := make([]geom.Point, 64)
			for qi := range queries {
				q := make(geom.Point, cfg.dim)
				center := float64(rng.Intn(8)) * 10
				for d := range q {
					q[d] = center + rng.NormFloat64()
				}
				queries[qi] = q
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nn := ix.KNN(queries[i%len(queries)], cfg.k, index.ExcludeNone)
				if len(nn) != cfg.k {
					b.Fatalf("got %d results", len(nn))
				}
			}
		})
	}
}

// BenchKNNCursor is BenchKNN through a reused cursor and caller-owned
// buffer — the allocation-free hot path the materialization step runs on.
// Comparing it against BenchKNN isolates the cursor refactor's effect.
func BenchKNNCursor(b *testing.B, build Builder) {
	b.Helper()
	for _, cfg := range []struct{ n, dim, k int }{
		{1000, 2, 10},
		{10000, 2, 10},
		{10000, 8, 10},
		{10000, 32, 10},
	} {
		b.Run(fmt.Sprintf("n=%d/d=%d/k=%d", cfg.n, cfg.dim, cfg.k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(17))
			pts := geom.NewPoints(cfg.dim, cfg.n)
			for i := 0; i < cfg.n; i++ {
				p := make(geom.Point, cfg.dim)
				center := float64(rng.Intn(8)) * 10
				for d := range p {
					p[d] = center + rng.NormFloat64()
				}
				if err := pts.Append(p); err != nil {
					b.Fatal(err)
				}
			}
			ix := build(pts, geom.Euclidean{})
			queries := make([]geom.Point, 64)
			for qi := range queries {
				q := make(geom.Point, cfg.dim)
				center := float64(rng.Intn(8)) * 10
				for d := range q {
					q[d] = center + rng.NormFloat64()
				}
				queries[qi] = q
			}
			cur := index.NewCursor(ix)
			var dst []index.Neighbor
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = cur.KNNInto(dst[:0], queries[i%len(queries)], cfg.k, index.ExcludeNone)
				if len(dst) != cfg.k {
					b.Fatalf("got %d results", len(dst))
				}
			}
		})
	}
}

// BenchBuild measures index construction time.
func BenchBuild(b *testing.B, build Builder) {
	b.Helper()
	for _, cfg := range []struct{ n, dim int }{
		{10000, 2},
		{10000, 8},
	} {
		b.Run(fmt.Sprintf("n=%d/d=%d", cfg.n, cfg.dim), func(b *testing.B) {
			rng := rand.New(rand.NewSource(18))
			pts := geom.NewPoints(cfg.dim, cfg.n)
			for i := 0; i < cfg.n; i++ {
				p := make(geom.Point, cfg.dim)
				for d := range p {
					p[d] = rng.NormFloat64() * 10
				}
				if err := pts.Append(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ix := build(pts, geom.Euclidean{}); ix.Len() != cfg.n {
					b.Fatal("bad build")
				}
			}
		})
	}
}
