package indextest

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

// FuzzHeapVsSortOracle drives the bounded heap — the core of every kNN
// path — against the obvious oracle: sort all candidates by (distance,
// index) and truncate to k. Distances are quantized to a few levels so tie
// runs are long, the regime where heap tie-breaking bugs hide.
func FuzzHeapVsSortOracle(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0), uint8(3))
	f.Add(int64(42), uint8(8), uint8(200), uint8(4))
	f.Add(int64(7), uint8(16), uint8(16), uint8(1))
	f.Add(int64(99), uint8(3), uint8(255), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, kRaw, nRaw, levelsRaw uint8) {
		k := 1 + int(kRaw)%32
		n := int(nRaw)
		levels := 1 + int(levelsRaw)%8
		rng := rand.New(rand.NewSource(seed))

		h := index.NewHeap(k)
		all := make([]index.Neighbor, 0, n)
		for i := 0; i < n; i++ {
			nb := index.Neighbor{Index: i, Dist: float64(rng.Intn(levels))}
			all = append(all, nb)
			h.Push(nb)
		}
		got := h.AppendSorted(nil)

		oracle := append([]index.Neighbor(nil), all...)
		index.SortNeighbors(oracle)
		if len(oracle) > k {
			oracle = oracle[:k]
		}

		if len(got) != len(oracle) {
			t.Fatalf("heap kept %d, oracle %d (k=%d n=%d)", len(got), len(oracle), k, n)
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("position %d: heap %v, oracle %v (k=%d n=%d levels=%d)",
					i, got[i], oracle[i], k, n, levels)
			}
		}
	})
}

// FuzzCursorVsLegacy feeds random tie-heavy datasets through the full
// cursor kNN path of a real index and checks it against the legacy method
// and the sorted-scan oracle.
func FuzzCursorVsLegacy(f *testing.F) {
	f.Add(int64(3), uint8(4), uint8(60), uint8(2))
	f.Add(int64(21), uint8(10), uint8(10), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, kRaw, nRaw, dimRaw uint8) {
		k := 1 + int(kRaw)%16
		n := 1 + int(nRaw)%128
		dim := 1 + int(dimRaw)%4
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, n, dim)
		ix := linear.New(pts, geom.Euclidean{})
		cur := index.NewCursor(ix)

		q := make(geom.Point, dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 8
		}
		exclude := index.ExcludeNone
		if rng.Intn(2) == 0 {
			exclude = rng.Intn(n)
			q = pts.At(exclude)
		}

		legacy := ix.KNN(q, k, exclude)
		got := cur.KNNInto(nil, q, k, exclude)
		if !exactEqual(got, legacy) {
			t.Fatalf("cursor diverges from legacy:\n got %v\nwant %v", got, legacy)
		}

		oracle := make([]index.Neighbor, 0, n)
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			d := math.Sqrt(geom.SqDist(q, pts.At(i)))
			oracle = append(oracle, index.Neighbor{Index: i, Dist: d})
		}
		index.SortNeighbors(oracle)
		if len(oracle) > k {
			oracle = oracle[:k]
		}
		if !exactEqual(got, oracle) {
			t.Fatalf("cursor diverges from sort oracle:\n got %v\nwant %v", got, oracle)
		}
	})
}
