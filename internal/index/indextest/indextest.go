// Package indextest provides the contract test every index implementation
// must pass: on random datasets, KNN and Range results must match the
// sequential scan exactly, including tie handling and self-exclusion.
package indextest

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

// Builder constructs the index under test over the given points and metric.
type Builder func(pts *geom.Points, m geom.Metric) index.Index

// randomPoints draws n points in dim dimensions; a fraction is duplicated
// or grid-snapped to force distance ties.
func randomPoints(rng *rand.Rand, n, dim int) *geom.Points {
	pts := geom.NewPoints(dim, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		switch {
		case i > 0 && rng.Float64() < 0.1:
			// Exact duplicate of an earlier point.
			copy(p, pts.At(rng.Intn(i)))
		case rng.Float64() < 0.3:
			// Grid-snapped coordinates: many equidistant pairs.
			for d := range p {
				p[d] = float64(rng.Intn(8))
			}
		default:
			for d := range p {
				p[d] = rng.NormFloat64() * 10
			}
		}
		if err := pts.Append(p); err != nil {
			panic(err)
		}
	}
	return pts
}

func neighborsEqual(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

// Run exercises the builder against the linear-scan reference on a spread
// of dimensionalities, sizes, ks, radii and metrics.
func Run(t *testing.T, build Builder) {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))

	for trial := 0; trial < 28; trial++ {
		dim := 1 + rng.Intn(4)
		n := 1 + rng.Intn(300)
		var m geom.Metric
		switch trial % 4 {
		case 0:
			m = geom.Euclidean{}
		case 1:
			m = geom.Manhattan{}
		case 2:
			m = geom.Chebyshev{}
		default:
			// Weighted Euclidean with weights spanning below and above 1
			// to stress the axis-gap pruning bounds.
			ws := make([]float64, dim)
			for i := range ws {
				ws[i] = 0.05 + rng.Float64()*4
			}
			wm, err := geom.NewWeightedEuclidean(ws)
			if err != nil {
				panic(err)
			}
			m = wm
		}
		pts := randomPoints(rng, n, dim)
		ref := linear.New(pts, m)
		ix := build(pts, m)

		if ix.Len() != n {
			t.Fatalf("trial %d: Len=%d want %d", trial, ix.Len(), n)
		}
		if ix.Metric().Name() != m.Name() {
			t.Fatalf("trial %d: metric %s want %s", trial, ix.Metric().Name(), m.Name())
		}

		for qi := 0; qi < 12; qi++ {
			var q geom.Point
			exclude := index.ExcludeNone
			if qi%2 == 0 && n > 0 {
				// Query at a dataset point with self-exclusion: the LOF
				// materialization access pattern.
				exclude = rng.Intn(n)
				q = pts.At(exclude)
			} else {
				q = make(geom.Point, dim)
				for d := range q {
					q[d] = rng.NormFloat64() * 12
				}
			}
			k := 1 + rng.Intn(12)
			got := ix.KNN(q, k, exclude)
			want := ref.KNN(q, k, exclude)
			if !neighborsEqual(got, want) {
				t.Fatalf("trial %d query %d: KNN(k=%d, exclude=%d, metric=%s, n=%d, dim=%d)\n got %v\nwant %v",
					trial, qi, k, exclude, m.Name(), n, dim, got, want)
			}

			r := rng.Float64() * 15
			gotR := ix.Range(q, r, exclude)
			wantR := ref.Range(q, r, exclude)
			if !neighborsEqual(gotR, wantR) {
				t.Fatalf("trial %d query %d: Range(r=%v, exclude=%d, metric=%s, n=%d, dim=%d)\n got %v\nwant %v",
					trial, qi, r, exclude, m.Name(), n, dim, gotR, wantR)
			}

			// The tie-inclusive neighborhood must contain the plain kNN
			// set and every member must be within the k-distance.
			ties := index.KNNWithTies(ix, q, k, exclude)
			if len(want) > 0 && len(ties) >= len(want) {
				kdist := want[len(want)-1].Dist
				for _, nb := range ties {
					if nb.Dist > kdist+1e-9 {
						t.Fatalf("trial %d: tie result %v beyond k-distance %v", trial, nb, kdist)
					}
				}
				if len(ties) < len(want) {
					t.Fatalf("trial %d: ties %d < knn %d", trial, len(ties), len(want))
				}
			}
		}
	}
}

// RunEdgeCases exercises empty datasets, k larger than n, zero k, negative
// radius and single-point datasets.
func RunEdgeCases(t *testing.T, build Builder) {
	t.Helper()
	m := geom.Euclidean{}

	empty := geom.NewPoints(2, 0)
	ix := build(empty, m)
	if got := ix.KNN(geom.Point{0, 0}, 3, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("empty KNN=%v", got)
	}
	if got := ix.Range(geom.Point{0, 0}, 5, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("empty Range=%v", got)
	}

	one, err := geom.FromRows([]geom.Point{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix = build(one, m)
	if got := ix.KNN(geom.Point{0, 0}, 5, index.ExcludeNone); len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("single-point KNN=%v", got)
	}
	if got := ix.KNN(geom.Point{1, 1}, 5, 0); len(got) != 0 {
		t.Fatalf("self-excluded single-point KNN=%v", got)
	}
	if got := ix.KNN(geom.Point{0, 0}, 0, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("k=0 KNN=%v", got)
	}
	if got := ix.Range(geom.Point{0, 0}, -1, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("negative-radius Range=%v", got)
	}
	// Zero radius at an exact point location includes that point.
	if got := ix.Range(geom.Point{1, 1}, 0, index.ExcludeNone); len(got) != 1 {
		t.Fatalf("zero-radius Range=%v", got)
	}
}
