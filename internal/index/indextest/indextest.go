// Package indextest provides the contract test every index implementation
// must pass: on random datasets, KNN and Range results must match the
// sequential scan exactly, including tie handling and self-exclusion.
package indextest

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

// Builder constructs the index under test over the given points and metric.
type Builder func(pts *geom.Points, m geom.Metric) index.Index

// randomPoints draws n points in dim dimensions; a fraction is duplicated
// or grid-snapped to force distance ties.
func randomPoints(rng *rand.Rand, n, dim int) *geom.Points {
	pts := geom.NewPoints(dim, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		switch {
		case i > 0 && rng.Float64() < 0.1:
			// Exact duplicate of an earlier point.
			copy(p, pts.At(rng.Intn(i)))
		case rng.Float64() < 0.3:
			// Grid-snapped coordinates: many equidistant pairs.
			for d := range p {
				p[d] = float64(rng.Intn(8))
			}
		default:
			for d := range p {
				p[d] = rng.NormFloat64() * 10
			}
		}
		if err := pts.Append(p); err != nil {
			panic(err)
		}
	}
	return pts
}

func neighborsEqual(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

// Run exercises the builder against the linear-scan reference on a spread
// of dimensionalities, sizes, ks, radii and metrics.
func Run(t *testing.T, build Builder) {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))

	for trial := 0; trial < 28; trial++ {
		dim := 1 + rng.Intn(4)
		n := 1 + rng.Intn(300)
		var m geom.Metric
		switch trial % 4 {
		case 0:
			m = geom.Euclidean{}
		case 1:
			m = geom.Manhattan{}
		case 2:
			m = geom.Chebyshev{}
		default:
			// Weighted Euclidean with weights spanning below and above 1
			// to stress the axis-gap pruning bounds.
			ws := make([]float64, dim)
			for i := range ws {
				ws[i] = 0.05 + rng.Float64()*4
			}
			wm, err := geom.NewWeightedEuclidean(ws)
			if err != nil {
				panic(err)
			}
			m = wm
		}
		pts := randomPoints(rng, n, dim)
		ref := linear.New(pts, m)
		ix := build(pts, m)

		if ix.Len() != n {
			t.Fatalf("trial %d: Len=%d want %d", trial, ix.Len(), n)
		}
		if ix.Metric().Name() != m.Name() {
			t.Fatalf("trial %d: metric %s want %s", trial, ix.Metric().Name(), m.Name())
		}

		// One cursor and one destination buffer serve every query of the
		// trial: cursor results must match the legacy methods bit for bit,
		// and appending must leave the existing prefix of dst untouched.
		cur := index.NewCursor(ix)
		if cur.Index() != index.Index(ix) {
			t.Fatalf("trial %d: cursor.Index() does not return its index", trial)
		}
		sentinel := index.Neighbor{Index: -7, Dist: -1}
		var dst []index.Neighbor

		for qi := 0; qi < 12; qi++ {
			var q geom.Point
			exclude := index.ExcludeNone
			if qi%2 == 0 && n > 0 {
				// Query at a dataset point with self-exclusion: the LOF
				// materialization access pattern.
				exclude = rng.Intn(n)
				q = pts.At(exclude)
			} else {
				q = make(geom.Point, dim)
				for d := range q {
					q[d] = rng.NormFloat64() * 12
				}
			}
			k := 1 + rng.Intn(12)
			got := ix.KNN(q, k, exclude)
			want := ref.KNN(q, k, exclude)
			if !neighborsEqual(got, want) {
				t.Fatalf("trial %d query %d: KNN(k=%d, exclude=%d, metric=%s, n=%d, dim=%d)\n got %v\nwant %v",
					trial, qi, k, exclude, m.Name(), n, dim, got, want)
			}

			// Cursor path: identical results, appended after an intact
			// prefix, through the cursor reused across every query.
			dst = append(dst[:0], sentinel)
			dst = cur.KNNInto(dst, q, k, exclude)
			if dst[0] != sentinel {
				t.Fatalf("trial %d query %d: KNNInto clobbered dst prefix: %v", trial, qi, dst[0])
			}
			if !exactEqual(dst[1:], got) {
				t.Fatalf("trial %d query %d: KNNInto(k=%d, exclude=%d, metric=%s)\n got %v\nwant %v",
					trial, qi, k, exclude, m.Name(), dst[1:], got)
			}

			r := rng.Float64() * 15
			gotR := ix.Range(q, r, exclude)
			wantR := ref.Range(q, r, exclude)
			if !neighborsEqual(gotR, wantR) {
				t.Fatalf("trial %d query %d: Range(r=%v, exclude=%d, metric=%s, n=%d, dim=%d)\n got %v\nwant %v",
					trial, qi, r, exclude, m.Name(), n, dim, gotR, wantR)
			}
			dst = append(dst[:0], sentinel)
			dst = cur.RangeInto(dst, q, r, exclude)
			if dst[0] != sentinel {
				t.Fatalf("trial %d query %d: RangeInto clobbered dst prefix: %v", trial, qi, dst[0])
			}
			if !exactEqual(dst[1:], gotR) {
				t.Fatalf("trial %d query %d: RangeInto(r=%v, exclude=%d, metric=%s)\n got %v\nwant %v",
					trial, qi, r, exclude, m.Name(), dst[1:], gotR)
			}

			// The tie-inclusive neighborhood must contain the plain kNN
			// set and every member must be within the k-distance.
			ties := index.KNNWithTies(ix, q, k, exclude)
			if len(want) > 0 && len(ties) >= len(want) {
				kdist := want[len(want)-1].Dist
				for _, nb := range ties {
					if nb.Dist > kdist+1e-9 {
						t.Fatalf("trial %d: tie result %v beyond k-distance %v", trial, nb, kdist)
					}
				}
				if len(ties) < len(want) {
					t.Fatalf("trial %d: ties %d < knn %d", trial, len(ties), len(want))
				}
			}
			dst = append(dst[:0], sentinel)
			dst = index.KNNWithTiesInto(cur, dst, q, k, exclude)
			if dst[0] != sentinel {
				t.Fatalf("trial %d query %d: KNNWithTiesInto clobbered dst prefix: %v", trial, qi, dst[0])
			}
			if !exactEqual(dst[1:], ties) {
				t.Fatalf("trial %d query %d: KNNWithTiesInto(k=%d, exclude=%d, metric=%s)\n got %v\nwant %v",
					trial, qi, k, exclude, m.Name(), dst[1:], ties)
			}
		}
	}
}

// exactEqual is bitwise equality — the cursor path must not merely be
// close to the legacy path, it must be the same computation.
func exactEqual(a, b []index.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunEdgeCases exercises empty datasets, k larger than n, zero k, negative
// radius and single-point datasets.
func RunEdgeCases(t *testing.T, build Builder) {
	t.Helper()
	m := geom.Euclidean{}

	empty := geom.NewPoints(2, 0)
	ix := build(empty, m)
	if got := ix.KNN(geom.Point{0, 0}, 3, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("empty KNN=%v", got)
	}
	if got := ix.Range(geom.Point{0, 0}, 5, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("empty Range=%v", got)
	}

	one, err := geom.FromRows([]geom.Point{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix = build(one, m)
	if got := ix.KNN(geom.Point{0, 0}, 5, index.ExcludeNone); len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("single-point KNN=%v", got)
	}
	if got := ix.KNN(geom.Point{1, 1}, 5, 0); len(got) != 0 {
		t.Fatalf("self-excluded single-point KNN=%v", got)
	}
	if got := ix.KNN(geom.Point{0, 0}, 0, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("k=0 KNN=%v", got)
	}
	if got := ix.Range(geom.Point{0, 0}, -1, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("negative-radius Range=%v", got)
	}
	// Zero radius at an exact point location includes that point.
	if got := ix.Range(geom.Point{1, 1}, 0, index.ExcludeNone); len(got) != 1 {
		t.Fatalf("zero-radius Range=%v", got)
	}

	// Cursor edge cases: degenerate queries must leave dst untouched, and
	// the cursor must stay usable after them.
	emptyCur := index.NewCursor(build(empty, m))
	if got := emptyCur.KNNInto(nil, geom.Point{0, 0}, 3, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("empty cursor KNNInto=%v", got)
	}
	if got := emptyCur.RangeInto(nil, geom.Point{0, 0}, 5, index.ExcludeNone); len(got) != 0 {
		t.Fatalf("empty cursor RangeInto=%v", got)
	}
	cur := index.NewCursor(ix)
	prefix := []index.Neighbor{{Index: 9, Dist: 9}}
	if got := cur.KNNInto(prefix, geom.Point{0, 0}, 0, index.ExcludeNone); len(got) != 1 || got[0] != prefix[0] {
		t.Fatalf("k=0 KNNInto=%v", got)
	}
	if got := cur.KNNInto(prefix, geom.Point{0, 0}, -3, index.ExcludeNone); len(got) != 1 || got[0] != prefix[0] {
		t.Fatalf("k=-3 KNNInto=%v", got)
	}
	if got := cur.RangeInto(prefix, geom.Point{0, 0}, -1, index.ExcludeNone); len(got) != 1 || got[0] != prefix[0] {
		t.Fatalf("negative-radius RangeInto=%v", got)
	}
	if got := index.KNNWithTiesInto(cur, prefix, geom.Point{0, 0}, 0, index.ExcludeNone); len(got) != 1 || got[0] != prefix[0] {
		t.Fatalf("k=0 KNNWithTiesInto=%v", got)
	}
	if got := cur.KNNInto(nil, geom.Point{0, 0}, 5, index.ExcludeNone); len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("cursor KNN after degenerate queries=%v", got)
	}
}

// RunZeroAlloc pins the cursor hot path to zero allocations per query for
// the index under test: after a warm-up query sizes the cursor scratch and
// the destination buffer, KNNInto, RangeInto and KNNWithTiesInto must not
// allocate at all. Only implementations whose traversal state is fully
// cursor-owned can pass; callers opt in per package.
func RunZeroAlloc(t *testing.T, build Builder) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	const n, dim, k = 512, 3, 8
	pts := randomPoints(rng, n, dim)
	ix := build(pts, geom.Euclidean{})
	cur := index.NewCursor(ix)

	queries := make([]geom.Point, 16)
	for i := range queries {
		q := make(geom.Point, dim)
		for d := range q {
			q[d] = rng.NormFloat64() * 10
		}
		queries[i] = q
	}
	// Warm up: run every query through every operation once so the heap,
	// the traversal scratch and the destination buffer reach their final
	// sizes before allocations are counted.
	dst := cur.KNNInto(nil, queries[0], k, index.ExcludeNone)
	r := dst[len(dst)-1].Dist * 1.5
	for _, q := range queries {
		dst = cur.KNNInto(dst[:0], q, k, 3)
		dst = cur.RangeInto(dst[:0], q, r, index.ExcludeNone)
		dst = index.KNNWithTiesInto(cur, dst[:0], q, k, index.ExcludeNone)
	}

	qi := 0
	allocs := testing.AllocsPerRun(200, func() {
		q := queries[qi%len(queries)]
		qi++
		dst = cur.KNNInto(dst[:0], q, k, 3)
		dst = cur.RangeInto(dst[:0], q, r, index.ExcludeNone)
		dst = index.KNNWithTiesInto(cur, dst[:0], q, k, index.ExcludeNone)
	})
	if allocs != 0 {
		t.Fatalf("cursor hot path allocates: %v allocs/query, want 0", allocs)
	}
}
