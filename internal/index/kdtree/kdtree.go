// Package kdtree implements an exact k-d tree for the medium-dimensionality
// regime of the paper's materialization step. The tree is built once by
// recursive median splits and answers kNN queries by branch-and-bound
// descent with splitting-plane pruning, which is valid for every Lp metric
// because the coordinate distance to the splitting plane lower-bounds the
// full distance.
package kdtree

import (
	"sort"

	"lof/internal/geom"
	"lof/internal/index"
)

// leafSize is the number of points at which recursion stops; small leaves
// trade tree depth against scan cost.
const leafSize = 16

// node is one k-d tree node. Leaves hold a [start,end) range into the
// permuted point order; internal nodes split on axis at value split.
type node struct {
	axis        int
	split       float64
	left, right *node
	start, end  int // leaf point range in perm
}

// Index is an immutable k-d tree over a point set.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
	perm   []int // permutation of point indices, partitioned by the tree
	root   *node
}

// New builds a k-d tree over pts with the given metric (Euclidean when nil).
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("kdtree: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ix := &Index{pts: pts, metric: m, perm: make([]int, pts.Len())}
	for i := range ix.perm {
		ix.perm[i] = i
	}
	if pts.Len() > 0 {
		ix.root = ix.build(0, pts.Len(), 0)
	}
	return ix
}

// build partitions perm[start:end) and returns the subtree for it.
func (ix *Index) build(start, end, depth int) *node {
	if end-start <= leafSize {
		return &node{start: start, end: end, axis: -1}
	}
	axis := ix.widestAxis(start, end)
	sub := ix.perm[start:end]
	mid := len(sub) / 2
	// Median split: full sort is O(m log m) but build is not the hot path.
	sort.Slice(sub, func(a, b int) bool {
		return ix.pts.At(sub[a])[axis] < ix.pts.At(sub[b])[axis]
	})
	split := ix.pts.At(sub[mid])[axis]
	// Guard against all-equal coordinates on this axis: fall back to a leaf
	// when the median does not separate anything.
	if ix.pts.At(sub[0])[axis] == ix.pts.At(sub[len(sub)-1])[axis] {
		return &node{start: start, end: end, axis: -1}
	}
	// Advance mid past duplicates of the split value so the right subtree
	// holds values >= split and is nonempty.
	for mid > 0 && ix.pts.At(sub[mid-1])[axis] == split {
		mid--
	}
	if mid == 0 {
		for mid < len(sub) && ix.pts.At(sub[mid])[axis] == split {
			mid++
		}
		split = ix.pts.At(sub[mid])[axis]
	}
	n := &node{axis: axis, split: split}
	n.left = ix.build(start, start+mid, depth+1)
	n.right = ix.build(start+mid, end, depth+1)
	return n
}

// widestAxis returns the dimension with the largest coordinate spread over
// perm[start:end), which gives better-balanced space partitions than
// cycling axes.
func (ix *Index) widestAxis(start, end int) int {
	dim := ix.pts.Dim()
	lo := ix.pts.At(ix.perm[start]).Clone()
	hi := lo.Clone()
	for i := start + 1; i < end; i++ {
		p := ix.pts.At(ix.perm[i])
		for d := 0; d < dim; d++ {
			if p[d] < lo[d] {
				lo[d] = p[d]
			}
			if p[d] > hi[d] {
				hi[d] = p[d]
			}
		}
	}
	best, bestSpread := 0, hi[0]-lo[0]
	for d := 1; d < dim; d++ {
		if s := hi[d] - lo[d]; s > bestSpread {
			best, bestSpread = d, s
		}
	}
	return best
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// Cursor is a reusable query object over the tree: it owns the candidate
// heap, the range accumulation buffer, the result sorter and the resolved
// distance kernel, so repeated queries allocate nothing and leaf scans pay
// no per-candidate metric dispatch. Branch-and-bound descent state lives on
// the call stack (method recursion), which costs no heap allocation.
type Cursor struct {
	ix     *Index
	h      *index.Heap
	sorter index.Sorter
	kern   geom.Kernel
	// out stages the in-flight RangeInto destination so the recursion can
	// append without taking the address of a local slice (which would
	// force a heap escape per query).
	out []index.Neighbor
}

// NewCursor returns a fresh cursor over the index.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0), kern: geom.NewKernel(ix.pts, ix.metric)}
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// KNNInto appends the k nearest neighbors of q to dst.
func (c *Cursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 || c.ix.root == nil {
		return dst
	}
	c.h.Reset(k)
	c.knn(c.ix.root, q, exclude)
	return c.h.AppendSorted(dst)
}

func (c *Cursor) knn(n *node, q geom.Point, exclude int) {
	ix := c.ix
	if n.axis < 0 { // leaf
		for _, pi := range ix.perm[n.start:n.end] {
			if pi == exclude {
				continue
			}
			c.h.Push(index.Neighbor{Index: pi, Dist: c.kern.Dist(pi, q)})
		}
		return
	}
	near, far := n.left, n.right
	if q[n.axis] >= n.split {
		near, far = far, near
	}
	c.knn(near, q, exclude)
	// The splitting-plane gap, scaled per metric, lower-bounds the distance
	// to any point in the far subtree.
	gap := geom.AxisGapLowerBound(ix.metric, n.axis, q[n.axis]-n.split)
	if w, full := c.h.Worst(); !full || gap <= w {
		c.knn(far, q, exclude)
	}
}

// RangeInto appends all points within distance r of q to dst.
func (c *Cursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 || c.ix.root == nil {
		return dst
	}
	start := len(dst)
	c.out = dst
	c.rangeQuery(c.ix.root, q, r, exclude)
	dst = c.out
	c.out = nil
	c.sorter.Sort(dst[start:])
	return dst
}

func (c *Cursor) rangeQuery(n *node, q geom.Point, r float64, exclude int) {
	ix := c.ix
	if n.axis < 0 {
		for _, pi := range ix.perm[n.start:n.end] {
			if pi == exclude {
				continue
			}
			if d := c.kern.Dist(pi, q); d <= r {
				c.out = append(c.out, index.Neighbor{Index: pi, Dist: d})
			}
		}
		return
	}
	near, far := n.left, n.right
	if q[n.axis] >= n.split {
		near, far = far, near
	}
	c.rangeQuery(near, q, r, exclude)
	if geom.AxisGapLowerBound(ix.metric, n.axis, q[n.axis]-n.split) <= r {
		c.rangeQuery(far, q, r, exclude)
	}
}

// KNN returns the k nearest neighbors of q via a fresh cursor; hot paths
// should reuse a cursor.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, q, k, exclude)
}

// Range returns all points within distance r of q via a fresh cursor.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, q, r, exclude)
}
