package kdtree_test

import (
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/indextest"
	"lof/internal/index/kdtree"
)

func build(pts *geom.Points, m geom.Metric) index.Index { return kdtree.New(pts, m) }

func TestKDTreeContract(t *testing.T)  { indextest.Run(t, build) }
func TestKDTreeEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, build) }

func TestKDTreeAllDuplicatePoints(t *testing.T) {
	// Every coordinate identical: the build must fall back to a leaf
	// rather than recurse forever.
	rows := make([]geom.Point, 100)
	for i := range rows {
		rows[i] = geom.Point{5, 5}
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ix := kdtree.New(pts, nil)
	got := ix.KNN(geom.Point{5, 5}, 3, 0)
	if len(got) != 3 {
		t.Fatalf("KNN=%v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("duplicate dist=%v", nb.Dist)
		}
	}
}

func TestKDTreeConstantAxis(t *testing.T) {
	// One axis constant: splits must happen on the varying axis.
	pts := geom.NewPoints(2, 200)
	for i := 0; i < 200; i++ {
		if err := pts.Append(geom.Point{float64(i), 7}); err != nil {
			t.Fatal(err)
		}
	}
	ix := kdtree.New(pts, nil)
	got := ix.KNN(geom.Point{100, 7}, 2, 100)
	if len(got) != 2 {
		t.Fatalf("KNN=%v", got)
	}
	if got[0].Dist != 1 || got[1].Dist != 1 {
		t.Fatalf("dists=%v", got)
	}
}

func TestKDTreeNilPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	kdtree.New(nil, nil)
}
