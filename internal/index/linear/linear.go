// Package linear implements k-NN queries by sequential scan — the exact
// baseline every other index is validated against, and the regime the paper
// prescribes for extremely high-dimensional data (O(n) per query, O(n²)
// materialization).
package linear

import (
	"math"

	"lof/internal/geom"
	"lof/internal/index"
)

// Index scans all points for every query.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
}

// New builds a sequential-scan index over pts.
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("linear: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	return &Index{pts: pts, metric: m}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// Cursor is a reusable query object over the scan: it owns the candidate
// heap and result sorter, so repeated queries allocate nothing.
type Cursor struct {
	ix     *Index
	h      *index.Heap
	sorter index.Sorter
}

// NewCursor returns a fresh cursor over the index.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0)}
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// KNNInto appends the k nearest neighbors of q to dst by full scan.
func (c *Cursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 {
		return dst
	}
	ix := c.ix
	c.h.Reset(k)
	n := ix.pts.Len()
	if _, ok := ix.metric.(geom.Euclidean); ok {
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			// Pruning and result distances both use the rounded sqrt value
			// so boundary ties stay consistent with Range.
			c.h.Push(index.Neighbor{Index: i, Dist: sqrt(geom.SqDist(q, ix.pts.At(i)))})
		}
		return c.h.AppendSorted(dst)
	}
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		c.h.Push(index.Neighbor{Index: i, Dist: ix.metric.Distance(q, ix.pts.At(i))})
	}
	return c.h.AppendSorted(dst)
}

// RangeInto appends all points within distance r of q to dst.
func (c *Cursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 {
		return dst
	}
	ix := c.ix
	start := len(dst)
	n := ix.pts.Len()
	if _, ok := ix.metric.(geom.Euclidean); ok {
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			// Compare rounded distances, not squares: r is typically a
			// k-distance produced by KNN, and squaring it can round below
			// the boundary point's squared distance.
			if d := sqrt(geom.SqDist(q, ix.pts.At(i))); d <= r {
				dst = append(dst, index.Neighbor{Index: i, Dist: d})
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			if d := ix.metric.Distance(q, ix.pts.At(i)); d <= r {
				dst = append(dst, index.Neighbor{Index: i, Dist: d})
			}
		}
	}
	c.sorter.Sort(dst[start:])
	return dst
}

// KNN returns the k nearest neighbors of q by full scan. It is a
// compatibility shim over a fresh cursor; hot paths should reuse a cursor.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, q, k, exclude)
}

// Range returns all points within distance r of q via a fresh cursor.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, q, r, exclude)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
