// Package linear implements k-NN queries by sequential scan — the exact
// baseline every other index is validated against, and the regime the paper
// prescribes for extremely high-dimensional data (O(n) per query, O(n²)
// materialization).
package linear

import (
	"math"

	"lof/internal/geom"
	"lof/internal/index"
)

// Index scans all points for every query.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
}

// New builds a sequential-scan index over pts.
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("linear: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	return &Index{pts: pts, metric: m}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// KNN returns the k nearest neighbors of q by full scan.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 {
		return nil
	}
	h := index.NewHeap(k)
	n := ix.pts.Len()
	if _, ok := ix.metric.(geom.Euclidean); ok {
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			// Pruning and result distances both use the rounded sqrt value
			// so boundary ties stay consistent with Range.
			h.Push(index.Neighbor{Index: i, Dist: sqrt(geom.SqDist(q, ix.pts.At(i)))})
		}
		return h.Sorted()
	}
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		h.Push(index.Neighbor{Index: i, Dist: ix.metric.Distance(q, ix.pts.At(i))})
	}
	return h.Sorted()
}

// Range returns all points within distance r of q.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 {
		return nil
	}
	var out []index.Neighbor
	n := ix.pts.Len()
	if _, ok := ix.metric.(geom.Euclidean); ok {
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			// Compare rounded distances, not squares: r is typically a
			// k-distance produced by KNN, and squaring it can round below
			// the boundary point's squared distance.
			if d := sqrt(geom.SqDist(q, ix.pts.At(i))); d <= r {
				out = append(out, index.Neighbor{Index: i, Dist: d})
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if i == exclude {
				continue
			}
			if d := ix.metric.Distance(q, ix.pts.At(i)); d <= r {
				out = append(out, index.Neighbor{Index: i, Dist: d})
			}
		}
	}
	index.SortNeighbors(out)
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
