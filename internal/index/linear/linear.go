// Package linear implements k-NN queries by sequential scan — the exact
// baseline every other index is validated against, and the regime the paper
// prescribes for extremely high-dimensional data (O(n) per query, O(n²)
// materialization).
package linear

import (
	"lof/internal/geom"
	"lof/internal/index"
)

// Index scans all points for every query.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
}

// New builds a sequential-scan index over pts.
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("linear: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	return &Index{pts: pts, metric: m}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// Cursor is a reusable query object over the scan: it owns the candidate
// heap, result sorter and resolved distance kernel, so repeated queries
// allocate nothing and the scan loop performs no per-candidate metric
// dispatch.
type Cursor struct {
	ix     *Index
	h      *index.Heap
	sorter index.Sorter
	kern   geom.Kernel
}

// NewCursor returns a fresh cursor over the index.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0), kern: geom.NewKernel(ix.pts, ix.metric)}
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// KNNInto appends the k nearest neighbors of q to dst by full scan. The
// kernel addresses rows by strided offset into the store's contiguous
// block; pruning and result distances use the same rounded value so
// boundary ties stay consistent with Range.
func (c *Cursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 {
		return dst
	}
	c.h.Reset(k)
	n := c.ix.pts.Len()
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		c.h.Push(index.Neighbor{Index: i, Dist: c.kern.Dist(i, q)})
	}
	return c.h.AppendSorted(dst)
}

// RangeInto appends all points within distance r of q to dst. Distances are
// compared in rounded (not squared) form: r is typically a k-distance
// produced by KNN, and squaring it can round below the boundary point's
// squared distance.
func (c *Cursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 {
		return dst
	}
	start := len(dst)
	n := c.ix.pts.Len()
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		if d := c.kern.Dist(i, q); d <= r {
			dst = append(dst, index.Neighbor{Index: i, Dist: d})
		}
	}
	c.sorter.Sort(dst[start:])
	return dst
}

// KNN returns the k nearest neighbors of q by full scan. It is a
// compatibility shim over a fresh cursor; hot paths should reuse a cursor.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, q, k, exclude)
}

// Range returns all points within distance r of q via a fresh cursor.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, q, r, exclude)
}
