package linear_test

import (
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/indextest"
	"lof/internal/index/linear"
)

func build(pts *geom.Points, m geom.Metric) index.Index { return linear.New(pts, m) }

// The linear scan is the reference, so the contract run checks it against
// itself — still worthwhile, because it exercises the tie and exclusion
// plumbing and the KNNWithTies invariants.
func TestLinearContract(t *testing.T)  { indextest.Run(t, build) }
func TestLinearEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, build) }
func TestLinearZeroAlloc(t *testing.T) { indextest.RunZeroAlloc(t, build) }

func TestLinearKnownAnswers(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}, {1, 0}, {2, 0}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, nil) // nil metric defaults to Euclidean
	got := ix.KNN(geom.Point{0, 0}, 2, 0)
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 2 {
		t.Fatalf("KNN=%v", got)
	}
	if got[0].Dist != 1 || got[1].Dist != 2 {
		t.Fatalf("dists=%v", got)
	}
	r := ix.Range(geom.Point{0, 0}, 2, index.ExcludeNone)
	if len(r) != 3 {
		t.Fatalf("Range=%v", r)
	}
}

func TestLinearTieInclusion(t *testing.T) {
	// Paper's example after Definition 4: 1 object at distance 1, 2 at
	// distance 2, 3 at distance 3 → |N4| = 6 because 4-distance = 3.
	pts, err := geom.FromRows([]geom.Point{
		{0, 0},
		{1, 0},
		{2, 0}, {0, 2},
		{3, 0}, {0, 3}, {-3, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, geom.Euclidean{})
	nn := index.KNNWithTies(ix, pts.At(0), 4, 0)
	if len(nn) != 6 {
		t.Fatalf("|N4| = %d, want 6 (paper's Definition 4 example): %v", len(nn), nn)
	}
	if nn[len(nn)-1].Dist != 3 {
		t.Fatalf("4-distance=%v want 3", nn[len(nn)-1].Dist)
	}
}

func TestLinearNilPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	linear.New(nil, nil)
}
