package vafile_test

import (
	"testing"

	"lof/internal/index/indextest"
)

func BenchmarkKNN(b *testing.B)       { indextest.BenchKNN(b, build) }
func BenchmarkKNNCursor(b *testing.B) { indextest.BenchKNNCursor(b, build) }
func BenchmarkBuild(b *testing.B)     { indextest.BenchBuild(b, build) }
