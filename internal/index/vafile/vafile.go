// Package vafile implements the vector-approximation file of Weber et al.
// ([21] in the paper), the structure the paper recommends for extremely
// high-dimensional data. Every point is quantized to a few bits per
// dimension; a kNN query first scans the compact approximations, computing
// per-point lower and upper distance bounds, and only fetches the exact
// vectors of points whose lower bound can still beat the running k-th
// smallest upper bound. Results are exact.
//
// The VA-file needs both lower and upper distance bounds to a quantization
// cell, which geom provides for the Euclidean, Manhattan and Chebyshev
// metrics; New rejects other metrics.
package vafile

import (
	"fmt"
	"math"
	"sort"

	"lof/internal/geom"
	"lof/internal/index"
)

// DefaultBits is the per-dimension quantization used when 0 is passed to New.
const DefaultBits = 5

// Index is an immutable VA-file over a point set.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
	bits   int
	levels int       // 1<<bits
	bounds []float64 // per dim: levels+1 boundary values, row-major
	approx []uint16  // per point per dim: cell id
}

// New builds a VA-file with the given bits per dimension (DefaultBits when
// bits is 0). Cell boundaries are equi-depth (quantiles), which keeps cells
// informative for clustered data.
func New(pts *geom.Points, m geom.Metric, bits int) (*Index, error) {
	if pts == nil {
		return nil, fmt.Errorf("vafile: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	switch m.(type) {
	case geom.Euclidean, geom.Manhattan, geom.Chebyshev, *geom.WeightedEuclidean:
	default:
		return nil, fmt.Errorf("vafile: metric %s not supported (no rectangle upper bound)", m.Name())
	}
	if bits == 0 {
		bits = DefaultBits
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("vafile: bits per dimension must be in [1,16], got %d", bits)
	}
	ix := &Index{pts: pts, metric: m, bits: bits, levels: 1 << bits}
	n, dim := pts.Len(), pts.Dim()
	if n == 0 {
		return ix, nil
	}

	// Equi-depth boundaries per dimension.
	ix.bounds = make([]float64, dim*(ix.levels+1))
	col := make([]float64, n)
	for d := 0; d < dim; d++ {
		for i := 0; i < n; i++ {
			col[i] = pts.At(i)[d]
		}
		sort.Float64s(col)
		b := ix.bounds[d*(ix.levels+1) : (d+1)*(ix.levels+1)]
		for l := 0; l <= ix.levels; l++ {
			pos := float64(l) / float64(ix.levels) * float64(n-1)
			b[l] = col[int(pos)]
		}
		// Widen the outermost boundaries marginally so every point falls
		// strictly inside some cell interval.
		b[0] = math.Nextafter(b[0], math.Inf(-1))
		b[ix.levels] = math.Nextafter(b[ix.levels], math.Inf(1))
	}

	// Quantize all points.
	ix.approx = make([]uint16, n*dim)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for d := 0; d < dim; d++ {
			ix.approx[i*dim+d] = ix.cellFor(d, p[d])
		}
	}
	return ix, nil
}

// cellFor locates the quantization cell of value v in dimension d by
// binary search over the boundary array.
func (ix *Index) cellFor(d int, v float64) uint16 {
	b := ix.bounds[d*(ix.levels+1) : (d+1)*(ix.levels+1)]
	// Find the first boundary > v; the cell is the preceding interval.
	c := sort.SearchFloat64s(b, v)
	// SearchFloat64s returns the first i with b[i] >= v; cell spans
	// [b[c-1], b[c]).
	if c == 0 {
		return 0
	}
	if c > ix.levels {
		c = ix.levels
	}
	return uint16(c - 1)
}

// cellRect writes the quantization rectangle of point i into lo, hi.
func (ix *Index) cellRect(i int, lo, hi geom.Point) {
	dim := ix.pts.Dim()
	for d := 0; d < dim; d++ {
		c := int(ix.approx[i*dim+d])
		b := ix.bounds[d*(ix.levels+1) : (d+1)*(ix.levels+1)]
		lo[d], hi[d] = b[c], b[c+1]
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// Bits returns the quantization width per dimension.
func (ix *Index) Bits() int { return ix.bits }

// cand is a phase-1 candidate: a point whose approximation lower bound may
// still beat the running k-th upper bound.
type cand struct {
	idx   int
	lower float64
}

// candSorter sorts a cand slice by (lower bound, index). It is held by
// pointer inside the cursor so sorting does not allocate: the interface
// conversion of a *candSorter is allocation-free, and the slice lives in a
// struct field rather than a boxed value.
type candSorter struct {
	cs []cand
}

func (s *candSorter) Len() int      { return len(s.cs) }
func (s *candSorter) Swap(i, j int) { s.cs[i], s.cs[j] = s.cs[j], s.cs[i] }
func (s *candSorter) Less(i, j int) bool {
	if s.cs[i].lower != s.cs[j].lower {
		return s.cs[i].lower < s.cs[j].lower
	}
	return s.cs[i].idx < s.cs[j].idx
}

// sort sorts cs by (lower, idx) using the sorter's field as scratch.
func (s *candSorter) sort(cs []cand) {
	s.cs = cs
	sort.Sort(s)
	s.cs = nil
}

// Cursor is a reusable query object over the VA-file: it owns the cell
// rectangle scratch, the candidate set of the filter phase, both bound
// heaps, the sorters and the resolved distance kernel, so repeated queries
// allocate nothing and the refinement phase pays no per-candidate metric
// dispatch.
type Cursor struct {
	ix         *Index
	h          *index.Heap // exact result heap
	ubHeap     *index.Heap // k smallest upper bounds (filter phase)
	sorter     index.Sorter
	candSorter candSorter
	cands      []cand
	lo, hi     geom.Point
	kern       geom.Kernel
}

// NewCursor returns a fresh cursor over the index.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0), ubHeap: index.NewHeap(0), kern: geom.NewKernel(ix.pts, ix.metric)}
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// prepare sizes the rectangle scratch for a query of dimensionality dim.
func (c *Cursor) prepare(dim int) {
	if cap(c.lo) < dim {
		c.lo = make(geom.Point, dim)
		c.hi = make(geom.Point, dim)
	}
	c.lo = c.lo[:dim]
	c.hi = c.hi[:dim]
}

// KNNInto appends the exact k nearest neighbors of q to dst via the
// two-phase VA-file scan.
func (c *Cursor) KNNInto(dst []index.Neighbor, q geom.Point, k int, exclude int) []index.Neighbor {
	ix := c.ix
	if k <= 0 || ix.pts.Len() == 0 {
		return dst
	}
	n := ix.pts.Len()
	c.prepare(ix.pts.Dim())

	// Phase 1: bound every point from its approximation; keep the k
	// smallest upper bounds to prune candidates.
	c.ubHeap.Reset(k)
	cands := c.cands[:0]
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		ix.cellRect(i, c.lo, c.hi)
		lb := geom.MinDistToRect(ix.metric, q, c.lo, c.hi)
		if w, full := c.ubHeap.Worst(); full && lb > w {
			continue
		}
		ub := geom.MaxDistToRect(ix.metric, q, c.lo, c.hi)
		c.ubHeap.Push(index.Neighbor{Index: i, Dist: ub})
		cands = append(cands, cand{idx: i, lower: lb})
	}
	c.cands = cands
	kthUpper := math.Inf(1)
	if w, full := c.ubHeap.Worst(); full {
		kthUpper = w
	}

	// Phase 2: exact distances for surviving candidates, cheapest lower
	// bound first so the result heap tightens quickly.
	c.candSorter.sort(cands)
	c.h.Reset(k)
	for _, cd := range cands {
		if cd.lower > kthUpper {
			break
		}
		if w, full := c.h.Worst(); full && cd.lower > w {
			break
		}
		c.h.Push(index.Neighbor{Index: cd.idx, Dist: c.kern.Dist(cd.idx, q)})
	}
	return c.h.AppendSorted(dst)
}

// RangeInto appends all points within distance r of q to dst, using
// approximation lower bounds to skip exact computations.
func (c *Cursor) RangeInto(dst []index.Neighbor, q geom.Point, r float64, exclude int) []index.Neighbor {
	ix := c.ix
	if r < 0 || ix.pts.Len() == 0 {
		return dst
	}
	n := ix.pts.Len()
	c.prepare(ix.pts.Dim())
	start := len(dst)
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		ix.cellRect(i, c.lo, c.hi)
		if geom.MinDistToRect(ix.metric, q, c.lo, c.hi) > r {
			continue
		}
		if d := c.kern.Dist(i, q); d <= r {
			dst = append(dst, index.Neighbor{Index: i, Dist: d})
		}
	}
	c.sorter.Sort(dst[start:])
	return dst
}

// KNN returns the exact k nearest neighbors of q via a fresh cursor; hot
// paths should reuse a cursor.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, q, k, exclude)
}

// Range returns all points within distance r of q via a fresh cursor.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, q, r, exclude)
}
