// Package vafile implements the vector-approximation file of Weber et al.
// ([21] in the paper), the structure the paper recommends for extremely
// high-dimensional data. Every point is quantized to a few bits per
// dimension; a kNN query first scans the compact approximations, computing
// per-point lower and upper distance bounds, and only fetches the exact
// vectors of points whose lower bound can still beat the running k-th
// smallest upper bound. Results are exact.
//
// The VA-file needs both lower and upper distance bounds to a quantization
// cell, which geom provides for the Euclidean, Manhattan and Chebyshev
// metrics; New rejects other metrics.
package vafile

import (
	"fmt"
	"math"
	"sort"

	"lof/internal/geom"
	"lof/internal/index"
)

// DefaultBits is the per-dimension quantization used when 0 is passed to New.
const DefaultBits = 5

// Index is an immutable VA-file over a point set.
type Index struct {
	pts    *geom.Points
	metric geom.Metric
	bits   int
	levels int       // 1<<bits
	bounds []float64 // per dim: levels+1 boundary values, row-major
	approx []uint16  // per point per dim: cell id
}

// New builds a VA-file with the given bits per dimension (DefaultBits when
// bits is 0). Cell boundaries are equi-depth (quantiles), which keeps cells
// informative for clustered data.
func New(pts *geom.Points, m geom.Metric, bits int) (*Index, error) {
	if pts == nil {
		return nil, fmt.Errorf("vafile: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	switch m.(type) {
	case geom.Euclidean, geom.Manhattan, geom.Chebyshev, *geom.WeightedEuclidean:
	default:
		return nil, fmt.Errorf("vafile: metric %s not supported (no rectangle upper bound)", m.Name())
	}
	if bits == 0 {
		bits = DefaultBits
	}
	if bits < 1 || bits > 16 {
		return nil, fmt.Errorf("vafile: bits per dimension must be in [1,16], got %d", bits)
	}
	ix := &Index{pts: pts, metric: m, bits: bits, levels: 1 << bits}
	n, dim := pts.Len(), pts.Dim()
	if n == 0 {
		return ix, nil
	}

	// Equi-depth boundaries per dimension.
	ix.bounds = make([]float64, dim*(ix.levels+1))
	col := make([]float64, n)
	for d := 0; d < dim; d++ {
		for i := 0; i < n; i++ {
			col[i] = pts.At(i)[d]
		}
		sort.Float64s(col)
		b := ix.bounds[d*(ix.levels+1) : (d+1)*(ix.levels+1)]
		for l := 0; l <= ix.levels; l++ {
			pos := float64(l) / float64(ix.levels) * float64(n-1)
			b[l] = col[int(pos)]
		}
		// Widen the outermost boundaries marginally so every point falls
		// strictly inside some cell interval.
		b[0] = math.Nextafter(b[0], math.Inf(-1))
		b[ix.levels] = math.Nextafter(b[ix.levels], math.Inf(1))
	}

	// Quantize all points.
	ix.approx = make([]uint16, n*dim)
	for i := 0; i < n; i++ {
		p := pts.At(i)
		for d := 0; d < dim; d++ {
			ix.approx[i*dim+d] = ix.cellFor(d, p[d])
		}
	}
	return ix, nil
}

// cellFor locates the quantization cell of value v in dimension d by
// binary search over the boundary array.
func (ix *Index) cellFor(d int, v float64) uint16 {
	b := ix.bounds[d*(ix.levels+1) : (d+1)*(ix.levels+1)]
	// Find the first boundary > v; the cell is the preceding interval.
	c := sort.SearchFloat64s(b, v)
	// SearchFloat64s returns the first i with b[i] >= v; cell spans
	// [b[c-1], b[c]).
	if c == 0 {
		return 0
	}
	if c > ix.levels {
		c = ix.levels
	}
	return uint16(c - 1)
}

// cellRect writes the quantization rectangle of point i into lo, hi.
func (ix *Index) cellRect(i int, lo, hi geom.Point) {
	dim := ix.pts.Dim()
	for d := 0; d < dim; d++ {
		c := int(ix.approx[i*dim+d])
		b := ix.bounds[d*(ix.levels+1) : (d+1)*(ix.levels+1)]
		lo[d], hi[d] = b[c], b[c+1]
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// Bits returns the quantization width per dimension.
func (ix *Index) Bits() int { return ix.bits }

// KNN returns the exact k nearest neighbors of q via the two-phase VA-file
// scan.
func (ix *Index) KNN(q geom.Point, k int, exclude int) []index.Neighbor {
	if k <= 0 || ix.pts.Len() == 0 {
		return nil
	}
	n := ix.pts.Len()
	dim := ix.pts.Dim()
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)

	// Phase 1: bound every point from its approximation; keep the k
	// smallest upper bounds to prune candidates.
	type cand struct {
		idx   int
		lower float64
	}
	ubHeap := index.NewHeap(k) // tracks k smallest upper bounds
	cands := make([]cand, 0, n)
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		ix.cellRect(i, lo, hi)
		lb := geom.MinDistToRect(ix.metric, q, lo, hi)
		if w, full := ubHeap.Worst(); full && lb > w {
			continue
		}
		ub := geom.MaxDistToRect(ix.metric, q, lo, hi)
		ubHeap.Push(index.Neighbor{Index: i, Dist: ub})
		cands = append(cands, cand{idx: i, lower: lb})
	}
	kthUpper := math.Inf(1)
	if w, full := ubHeap.Worst(); full {
		kthUpper = w
	}

	// Phase 2: exact distances for surviving candidates, cheapest lower
	// bound first so the result heap tightens quickly.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].lower != cands[b].lower {
			return cands[a].lower < cands[b].lower
		}
		return cands[a].idx < cands[b].idx
	})
	h := index.NewHeap(k)
	for _, c := range cands {
		if c.lower > kthUpper {
			break
		}
		if w, full := h.Worst(); full && c.lower > w {
			break
		}
		h.Push(index.Neighbor{Index: c.idx, Dist: ix.metric.Distance(q, ix.pts.At(c.idx))})
	}
	return h.Sorted()
}

// Range returns all points within distance r of q, using approximation
// lower bounds to skip exact computations.
func (ix *Index) Range(q geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 || ix.pts.Len() == 0 {
		return nil
	}
	n := ix.pts.Len()
	dim := ix.pts.Dim()
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	var out []index.Neighbor
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		ix.cellRect(i, lo, hi)
		if geom.MinDistToRect(ix.metric, q, lo, hi) > r {
			continue
		}
		if d := ix.metric.Distance(q, ix.pts.At(i)); d <= r {
			out = append(out, index.Neighbor{Index: i, Dist: d})
		}
	}
	index.SortNeighbors(out)
	return out
}
