package vafile_test

import (
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/indextest"
	"lof/internal/index/vafile"
)

func build(pts *geom.Points, m geom.Metric) index.Index {
	ix, err := vafile.New(pts, m, 0)
	if err != nil {
		panic(err)
	}
	return ix
}

func TestVAFileContract(t *testing.T)  { indextest.Run(t, build) }
func TestVAFileEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, build) }

func TestVAFileRejectsUnsupportedMetric(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	mk, err := geom.NewMinkowski(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vafile.New(pts, mk, 0); err == nil {
		t.Fatal("Minkowski(3) accepted")
	}
}

func TestVAFileRejectsBadBits(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bits := range []int{-1, 17, 100} {
		if _, err := vafile.New(pts, nil, bits); err == nil {
			t.Errorf("bits=%d accepted", bits)
		}
	}
}

func TestVAFileRejectsNilPoints(t *testing.T) {
	if _, err := vafile.New(nil, nil, 0); err == nil {
		t.Fatal("nil points accepted")
	}
}

func TestVAFileDefaultBits(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0, 0}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := vafile.New(pts, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Bits() != vafile.DefaultBits {
		t.Fatalf("Bits=%d", ix.Bits())
	}
}

func TestVAFileCoarseQuantizationStillExact(t *testing.T) {
	// 1 bit per dimension: bounds are very loose, results must still be
	// exact because phase 2 verifies candidates.
	pts := geom.NewPoints(3, 200)
	for i := 0; i < 200; i++ {
		if err := pts.Append(geom.Point{float64(i % 17), float64(i % 13), float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	coarse, err := vafile.New(pts, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := vafile.New(pts, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{3.5, 2.2, 1.1}
	a := coarse.KNN(q, 7, index.ExcludeNone)
	b := fine.KNN(q, 7, index.ExcludeNone)
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
