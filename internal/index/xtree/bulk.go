package xtree

import (
	"math"
	"sort"

	"lof/internal/geom"
)

// BulkLoad builds the tree bottom-up with Sort-Tile-Recursive packing
// instead of repeated insertion. For the static datasets of the LOF
// materialization step this produces tighter, fuller nodes (no supernodes
// are ever needed) and builds in O(n log n). Queries are identical in
// semantics to an insertion-built tree.
func BulkLoad(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("xtree: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ix := &Index{pts: pts, metric: m}
	n := pts.Len()
	if n == 0 {
		return ix
	}

	// Leaf level: tile point indices into runs of up to baseCapacity.
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	groups := strTile(idx, baseCapacity, pts.Dim(), func(a int32, axis int) float64 {
		return pts.At(int(a))[axis]
	})
	level := make([]*node, 0, len(groups))
	for _, g := range groups {
		leaf := &node{leaf: true, capacity: baseCapacity, points: g}
		ix.recomputeLeafMBR(leaf)
		level = append(level, leaf)
	}
	ix.height = 1

	// Directory levels: tile child nodes by their MBR centers.
	for len(level) > 1 {
		childIdx := make([]int32, len(level))
		for i := range childIdx {
			childIdx[i] = int32(i)
		}
		nodeGroups := strTile(childIdx, baseCapacity, pts.Dim(), func(a int32, axis int) float64 {
			mbr := level[a].mbr
			return (mbr.lo[axis] + mbr.hi[axis]) / 2
		})
		next := make([]*node, 0, len(nodeGroups))
		for _, g := range nodeGroups {
			dir := &node{leaf: false, capacity: baseCapacity}
			for _, ci := range g {
				dir.children = append(dir.children, level[ci])
			}
			ix.recomputeDirMBR(dir)
			next = append(next, dir)
		}
		level = next
		ix.height++
	}
	ix.root = level[0]
	return ix
}

// strTile partitions items into groups of at most cap elements using
// Sort-Tile-Recursive: sort by the current axis, cut into equal slabs whose
// count is the (remaining-axes)-th root of the page count, and recurse on
// the next axis within each slab.
func strTile(items []int32, cap, dim int, coord func(int32, int) float64) [][]int32 {
	var out [][]int32
	var rec func(items []int32, axis int)
	rec = func(items []int32, axis int) {
		if len(items) <= cap {
			g := make([]int32, len(items))
			copy(g, items)
			out = append(out, g)
			return
		}
		if axis >= dim-1 {
			// Last axis: emit consecutive runs.
			sort.Slice(items, func(a, b int) bool {
				return coord(items[a], axis) < coord(items[b], axis)
			})
			for start := 0; start < len(items); start += cap {
				end := start + cap
				if end > len(items) {
					end = len(items)
				}
				g := make([]int32, end-start)
				copy(g, items[start:end])
				out = append(out, g)
			}
			return
		}
		sort.Slice(items, func(a, b int) bool {
			return coord(items[a], axis) < coord(items[b], axis)
		})
		pages := int(math.Ceil(float64(len(items)) / float64(cap)))
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-axis))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(items) + slabs - 1) / slabs
		for start := 0; start < len(items); start += per {
			end := start + per
			if end > len(items) {
				end = len(items)
			}
			rec(items[start:end], axis+1)
		}
	}
	rec(items, 0)
	return out
}
