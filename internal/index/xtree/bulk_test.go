package xtree_test

import (
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/indextest"
	"lof/internal/index/xtree"
)

func buildBulk(pts *geom.Points, m geom.Metric) index.Index { return xtree.BulkLoad(pts, m) }

func TestBulkLoadContract(t *testing.T)  { indextest.Run(t, buildBulk) }
func TestBulkLoadEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, buildBulk) }

func TestBulkLoadNoSupernodes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := geom.NewPoints(10, 5000)
	for i := 0; i < 5000; i++ {
		p := make(geom.Point, 10)
		for d := range p {
			p[d] = rng.NormFloat64()
		}
		if err := pts.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	ix := xtree.BulkLoad(pts, nil)
	if ix.Supernodes() != 0 {
		t.Fatalf("bulk load created %d supernodes", ix.Supernodes())
	}
	if ix.Height() < 2 {
		t.Fatalf("height=%d", ix.Height())
	}
}

func TestBulkLoadAgreesWithInsertionBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := geom.NewPoints(3, 800)
	for i := 0; i < 800; i++ {
		if err := pts.Append(geom.Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	a := xtree.New(pts, nil)
	b := xtree.BulkLoad(pts, nil)
	for q := 0; q < 40; q++ {
		query := geom.Point{rng.NormFloat64() * 2, rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		ra := a.KNN(query, 7, index.ExcludeNone)
		rb := b.KNN(query, 7, index.ExcludeNone)
		if len(ra) != len(rb) {
			t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %d result %d: %v vs %v", q, i, ra[i], rb[i])
			}
		}
	}
}

func TestBulkLoadNilPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	xtree.BulkLoad(nil, nil)
}
