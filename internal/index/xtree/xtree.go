// Package xtree implements the tree index of the paper's performance
// experiments: an R-tree with R*-style topological splits extended by the
// X-tree's supernode mechanism ([4] in the paper). When a directory split
// would produce heavily overlapping halves — the failure mode that makes
// plain R-trees degenerate in higher dimensions — the node is turned into a
// supernode of extended capacity instead, so the tree degrades gracefully
// toward a sequential scan exactly as the X-tree does.
//
// Queries are exact: k-NN uses best-first search over minimum bounding
// rectangles; range queries recurse with rectangle pruning.
package xtree

import (
	"math"
	"sort"

	"lof/internal/geom"
	"lof/internal/index"
)

const (
	// baseCapacity is the fan-out M of a normal node.
	baseCapacity = 32
	// minFill is the R*-tree minimum fill fraction used by splits.
	minFill = 0.4
	// maxOverlapFraction is the X-tree split-quality threshold. Split
	// quality is the geometric-mean per-axis overlap of the two halves
	// (the d-th root of intersection volume over node volume), which
	// unlike the raw volume ratio stays comparable across dimensions.
	// Splits worse than this are rejected in favor of a supernode.
	maxOverlapFraction = 0.3
)

// rect is an axis-aligned minimum bounding rectangle.
type rect struct {
	lo, hi geom.Point
}

func newRect(p geom.Point) rect {
	return rect{lo: p.Clone(), hi: p.Clone()}
}

func (r *rect) extendPoint(p geom.Point) {
	for i, v := range p {
		if v < r.lo[i] {
			r.lo[i] = v
		}
		if v > r.hi[i] {
			r.hi[i] = v
		}
	}
}

func (r *rect) extendRect(o rect) {
	for i := range r.lo {
		if o.lo[i] < r.lo[i] {
			r.lo[i] = o.lo[i]
		}
		if o.hi[i] > r.hi[i] {
			r.hi[i] = o.hi[i]
		}
	}
}

// margin returns the half-perimeter, the R*-split goodness measure.
func (r rect) margin() float64 {
	var s float64
	for i := range r.lo {
		s += r.hi[i] - r.lo[i]
	}
	return s
}

// volume returns the rectangle's d-dimensional volume.
func (r rect) volume() float64 {
	v := 1.0
	for i := range r.lo {
		v *= r.hi[i] - r.lo[i]
	}
	return v
}

// enlargement returns the volume increase needed to absorb o.
func (r rect) enlargement(o rect) float64 {
	grown := rect{lo: r.lo.Clone(), hi: r.hi.Clone()}
	grown.extendRect(o)
	return grown.volume() - r.volume()
}

// overlap returns the volume of the intersection of r and o.
func (r rect) overlap(o rect) float64 {
	v := 1.0
	for i := range r.lo {
		lo := math.Max(r.lo[i], o.lo[i])
		hi := math.Min(r.hi[i], o.hi[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// node is an X-tree node. Leaves hold point ids; directory nodes hold
// children. capacity exceeds baseCapacity for supernodes.
type node struct {
	mbr      rect
	leaf     bool
	points   []int32 // leaf entries
	children []*node // directory entries
	capacity int
}

// Index is an immutable-after-construction X-tree.
type Index struct {
	pts        *geom.Points
	metric     geom.Metric
	root       *node
	height     int
	supernodes int
}

// New builds an X-tree over pts by repeated insertion with the given metric
// (Euclidean when nil).
func New(pts *geom.Points, m geom.Metric) *Index {
	if pts == nil {
		panic("xtree: nil points")
	}
	if m == nil {
		m = geom.Euclidean{}
	}
	ix := &Index{pts: pts, metric: m}
	for i := 0; i < pts.Len(); i++ {
		ix.insert(int32(i))
	}
	return ix
}

// Supernodes reports how many supernodes the tree created — the X-tree's
// indicator of dimensionality-driven degradation.
func (ix *Index) Supernodes() int { return ix.supernodes }

// Height returns the tree height (0 for an empty tree, 1 for a single leaf).
func (ix *Index) Height() int { return ix.height }

func (ix *Index) insert(pi int32) {
	p := ix.pts.At(int(pi))
	if ix.root == nil {
		ix.root = &node{mbr: newRect(p), leaf: true, capacity: baseCapacity, points: []int32{pi}}
		ix.height = 1
		return
	}
	split := ix.insertInto(ix.root, pi)
	if split != nil {
		// Root split: grow the tree by one level.
		newRoot := &node{leaf: false, capacity: baseCapacity, children: []*node{ix.root, split}}
		newRoot.mbr = rect{lo: ix.root.mbr.lo.Clone(), hi: ix.root.mbr.hi.Clone()}
		newRoot.mbr.extendRect(split.mbr)
		ix.root = newRoot
		ix.height++
	}
}

// insertInto adds point pi to the subtree rooted at n. It returns a new
// sibling node if n was split, or nil.
func (ix *Index) insertInto(n *node, pi int32) *node {
	p := ix.pts.At(int(pi))
	n.mbr.extendPoint(p)
	if n.leaf {
		n.points = append(n.points, pi)
		if len(n.points) <= n.capacity {
			return nil
		}
		return ix.splitLeaf(n)
	}
	child := ix.chooseSubtree(n, p)
	if split := ix.insertInto(child, pi); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > n.capacity {
			return ix.splitDirectory(n)
		}
	}
	return nil
}

// chooseSubtree picks the child needing the least volume enlargement to
// absorb p, breaking ties by smaller volume (the classic R-tree rule).
func (ix *Index) chooseSubtree(n *node, p geom.Point) *node {
	target := newRect(p)
	var best *node
	bestEnl, bestVol := math.Inf(1), math.Inf(1)
	for _, c := range n.children {
		enl := c.mbr.enlargement(target)
		vol := c.mbr.volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = c, enl, vol
		}
	}
	return best
}

// splitLeaf performs an R*-style topological split of an overfull leaf.
// Leaves always split (point sets cannot meaningfully "overlap"), so
// supernodes are a directory-level mechanism, as in the X-tree.
func (ix *Index) splitLeaf(n *node) *node {
	axis, splitAt := ix.chooseLeafSplit(n)
	sort.Slice(n.points, func(a, b int) bool {
		return ix.pts.At(int(n.points[a]))[axis] < ix.pts.At(int(n.points[b]))[axis]
	})
	right := &node{leaf: true, capacity: baseCapacity}
	right.points = append(right.points, n.points[splitAt:]...)
	n.points = n.points[:splitAt]
	ix.recomputeLeafMBR(n)
	ix.recomputeLeafMBR(right)
	return right
}

// chooseLeafSplit evaluates margin sums over split positions on every axis
// (the R* axis choice) and returns the best axis and split position.
func (ix *Index) chooseLeafSplit(n *node) (axis, splitAt int) {
	m := len(n.points)
	lower := int(math.Ceil(minFill * float64(m)))
	if lower < 1 {
		lower = 1
	}
	upper := m - lower
	if upper < lower {
		upper = lower
	}
	bestAxis, bestPos, bestScore := 0, m/2, math.Inf(1)
	order := make([]int32, m)
	dim := ix.pts.Dim()
	for a := 0; a < dim; a++ {
		copy(order, n.points)
		sort.Slice(order, func(x, y int) bool {
			return ix.pts.At(int(order[x]))[a] < ix.pts.At(int(order[y]))[a]
		})
		// Prefix/suffix MBRs for margin evaluation.
		prefix := make([]rect, m)
		suffix := make([]rect, m)
		prefix[0] = newRect(ix.pts.At(int(order[0])))
		for i := 1; i < m; i++ {
			prefix[i] = rect{lo: prefix[i-1].lo.Clone(), hi: prefix[i-1].hi.Clone()}
			prefix[i].extendPoint(ix.pts.At(int(order[i])))
		}
		suffix[m-1] = newRect(ix.pts.At(int(order[m-1])))
		for i := m - 2; i >= 0; i-- {
			suffix[i] = rect{lo: suffix[i+1].lo.Clone(), hi: suffix[i+1].hi.Clone()}
			suffix[i].extendPoint(ix.pts.At(int(order[i])))
		}
		for pos := lower; pos <= upper; pos++ {
			score := prefix[pos-1].margin() + suffix[pos].margin()
			if score < bestScore {
				bestAxis, bestPos, bestScore = a, pos, score
			}
		}
	}
	return bestAxis, bestPos
}

func (ix *Index) recomputeLeafMBR(n *node) {
	n.mbr = newRect(ix.pts.At(int(n.points[0])))
	for _, pi := range n.points[1:] {
		n.mbr.extendPoint(ix.pts.At(int(pi)))
	}
}

// splitDirectory attempts an R*-style split of an overfull directory node.
// If the best split's halves overlap too much — the X-tree's split-failure
// criterion — the node becomes a supernode with doubled capacity instead
// and nil is returned.
func (ix *Index) splitDirectory(n *node) *node {
	m := len(n.children)
	lower := int(math.Ceil(minFill * float64(m)))
	if lower < 1 {
		lower = 1
	}
	upper := m - lower
	if upper < lower {
		upper = lower
	}
	dim := ix.pts.Dim()
	bestAxis, bestPos, bestScore := -1, 0, math.Inf(1)
	var bestOverlap float64
	order := make([]*node, m)
	for a := 0; a < dim; a++ {
		copy(order, n.children)
		sort.Slice(order, func(x, y int) bool {
			if order[x].mbr.lo[a] != order[y].mbr.lo[a] {
				return order[x].mbr.lo[a] < order[y].mbr.lo[a]
			}
			return order[x].mbr.hi[a] < order[y].mbr.hi[a]
		})
		prefix := make([]rect, m)
		suffix := make([]rect, m)
		prefix[0] = rect{lo: order[0].mbr.lo.Clone(), hi: order[0].mbr.hi.Clone()}
		for i := 1; i < m; i++ {
			prefix[i] = rect{lo: prefix[i-1].lo.Clone(), hi: prefix[i-1].hi.Clone()}
			prefix[i].extendRect(order[i].mbr)
		}
		suffix[m-1] = rect{lo: order[m-1].mbr.lo.Clone(), hi: order[m-1].mbr.hi.Clone()}
		for i := m - 2; i >= 0; i-- {
			suffix[i] = rect{lo: suffix[i+1].lo.Clone(), hi: suffix[i+1].hi.Clone()}
			suffix[i].extendRect(order[i].mbr)
		}
		for pos := lower; pos <= upper; pos++ {
			left, right := prefix[pos-1], suffix[pos]
			score := left.overlap(right)
			if score < bestScore {
				bestAxis, bestPos, bestScore = a, pos, score
				bestOverlap = score
			}
		}
	}
	// X-tree decision: reject high-overlap splits.
	frac := 0.0
	if vol := n.mbr.volume(); vol > 0 && bestOverlap > 0 {
		frac = math.Pow(bestOverlap/vol, 1/float64(dim))
	}
	if frac > maxOverlapFraction {
		n.capacity *= 2
		ix.supernodes++
		return nil
	}
	sort.Slice(n.children, func(x, y int) bool {
		a := bestAxis
		if n.children[x].mbr.lo[a] != n.children[y].mbr.lo[a] {
			return n.children[x].mbr.lo[a] < n.children[y].mbr.lo[a]
		}
		return n.children[x].mbr.hi[a] < n.children[y].mbr.hi[a]
	})
	right := &node{leaf: false, capacity: baseCapacity}
	right.children = append(right.children, n.children[bestPos:]...)
	n.children = n.children[:bestPos]
	ix.recomputeDirMBR(n)
	ix.recomputeDirMBR(right)
	return right
}

func (ix *Index) recomputeDirMBR(n *node) {
	n.mbr = rect{lo: n.children[0].mbr.lo.Clone(), hi: n.children[0].mbr.hi.Clone()}
	for _, c := range n.children[1:] {
		n.mbr.extendRect(c.mbr)
	}
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.pts.Len() }

// Metric returns the index's metric.
func (ix *Index) Metric() geom.Metric { return ix.metric }

// pqItem is a best-first search frontier entry.
type pqItem struct {
	n    *node
	dist float64
}

// frontier is a hand-rolled min-heap of pqItems ordered by dist. Unlike
// container/heap it takes items by value, so pushes do not box the item
// into an interface — the backing array is cursor-owned scratch reused
// across queries.
type frontier []pqItem

func (f *frontier) push(it pqItem) {
	*f = append(*f, it)
	q := *f
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].dist <= q[i].dist {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (f *frontier) pop() pqItem {
	q := *f
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*f = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(q) && q[l].dist < q[least].dist {
			least = l
		}
		if r < len(q) && q[r].dist < q[least].dist {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Cursor is a reusable query object over the tree: it owns the candidate
// heap, the best-first frontier, the range accumulation buffer, the result
// sorter and the resolved distance kernel, so repeated queries allocate
// nothing and leaf scans pay no per-candidate metric dispatch.
type Cursor struct {
	ix       *Index
	h        *index.Heap
	sorter   index.Sorter
	frontier frontier
	kern     geom.Kernel
	// out stages the in-flight RangeInto destination so the recursion can
	// append without forcing the slice to escape through a pointer.
	out []index.Neighbor
}

// NewCursor returns a fresh cursor over the index.
func (ix *Index) NewCursor() index.Cursor {
	return &Cursor{ix: ix, h: index.NewHeap(0), kern: geom.NewKernel(ix.pts, ix.metric)}
}

// Index returns the cursor's index.
func (c *Cursor) Index() index.Index { return c.ix }

// KNNInto appends the k nearest neighbors of q to dst using best-first MBR
// search.
func (c *Cursor) KNNInto(dst []index.Neighbor, qp geom.Point, k int, exclude int) []index.Neighbor {
	ix := c.ix
	if k <= 0 || ix.root == nil {
		return dst
	}
	c.h.Reset(k)
	c.frontier = c.frontier[:0]
	c.frontier.push(pqItem{n: ix.root, dist: geom.MinDistToRect(ix.metric, qp, ix.root.mbr.lo, ix.root.mbr.hi)})
	for len(c.frontier) > 0 {
		it := c.frontier.pop()
		if w, full := c.h.Worst(); full && it.dist > w {
			break
		}
		if it.n.leaf {
			for _, pi := range it.n.points {
				if int(pi) == exclude {
					continue
				}
				c.h.Push(index.Neighbor{Index: int(pi), Dist: c.kern.Dist(int(pi), qp)})
			}
			continue
		}
		for _, ch := range it.n.children {
			d := geom.MinDistToRect(ix.metric, qp, ch.mbr.lo, ch.mbr.hi)
			if w, full := c.h.Worst(); full && d > w {
				continue
			}
			c.frontier.push(pqItem{n: ch, dist: d})
		}
	}
	return c.h.AppendSorted(dst)
}

// RangeInto appends all points within distance r of q to dst.
func (c *Cursor) RangeInto(dst []index.Neighbor, qp geom.Point, r float64, exclude int) []index.Neighbor {
	if r < 0 || c.ix.root == nil {
		return dst
	}
	start := len(dst)
	c.out = dst
	c.rangeQuery(c.ix.root, qp, r, exclude)
	dst = c.out
	c.out = nil
	c.sorter.Sort(dst[start:])
	return dst
}

func (c *Cursor) rangeQuery(n *node, qp geom.Point, r float64, exclude int) {
	ix := c.ix
	if geom.MinDistToRect(ix.metric, qp, n.mbr.lo, n.mbr.hi) > r {
		return
	}
	if n.leaf {
		for _, pi := range n.points {
			if int(pi) == exclude {
				continue
			}
			if d := c.kern.Dist(int(pi), qp); d <= r {
				c.out = append(c.out, index.Neighbor{Index: int(pi), Dist: d})
			}
		}
		return
	}
	for _, ch := range n.children {
		c.rangeQuery(ch, qp, r, exclude)
	}
}

// KNN returns the k nearest neighbors of q via a fresh cursor; hot paths
// should reuse a cursor.
func (ix *Index) KNN(qp geom.Point, k int, exclude int) []index.Neighbor {
	return ix.NewCursor().KNNInto(nil, qp, k, exclude)
}

// Range returns all points within distance r of q via a fresh cursor.
func (ix *Index) Range(qp geom.Point, r float64, exclude int) []index.Neighbor {
	return ix.NewCursor().RangeInto(nil, qp, r, exclude)
}
