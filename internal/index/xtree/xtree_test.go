package xtree_test

import (
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/indextest"
	"lof/internal/index/xtree"
)

func build(pts *geom.Points, m geom.Metric) index.Index { return xtree.New(pts, m) }

func TestXTreeContract(t *testing.T)  { indextest.Run(t, build) }
func TestXTreeEdgeCases(t *testing.T) { indextest.RunEdgeCases(t, build) }

func TestXTreeGrowsHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := geom.NewPoints(2, 5000)
	for i := 0; i < 5000; i++ {
		if err := pts.Append(geom.Point{rng.Float64() * 100, rng.Float64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	ix := xtree.New(pts, nil)
	if ix.Height() < 3 {
		t.Fatalf("height=%d for 5000 points; tree did not grow", ix.Height())
	}
}

func TestXTreeSupernodesInHighDim(t *testing.T) {
	// In high dimensions, directory splits overlap badly and the X-tree
	// must start creating supernodes; in 2-d it should rarely need them.
	rng := rand.New(rand.NewSource(4))
	mk := func(dim, n int) *geom.Points {
		pts := geom.NewPoints(dim, n)
		for i := 0; i < n; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				p[d] = rng.NormFloat64()
			}
			if err := pts.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		return pts
	}
	lowDim := xtree.New(mk(2, 4000), nil)
	highDim := xtree.New(mk(20, 4000), nil)
	if highDim.Supernodes() <= lowDim.Supernodes() {
		t.Fatalf("supernodes: 20-d=%d should exceed 2-d=%d",
			highDim.Supernodes(), lowDim.Supernodes())
	}
}

func TestXTreeDuplicateHeavy(t *testing.T) {
	// Many duplicates stress zero-volume MBR handling.
	pts := geom.NewPoints(2, 300)
	for i := 0; i < 300; i++ {
		if err := pts.Append(geom.Point{float64(i % 3), float64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	ix := xtree.New(pts, nil)
	got := ix.KNN(geom.Point{0, 0}, 5, index.ExcludeNone)
	if len(got) != 5 {
		t.Fatalf("KNN=%v", got)
	}
	for _, nb := range got {
		if nb.Dist != 0 {
			t.Fatalf("expected only exact duplicates at distance 0, got %v", got)
		}
	}
}

func TestXTreeNilPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	xtree.New(nil, nil)
}
