// Package knnout implements the distance-to-k-th-nearest-neighbor outlier
// ranking of Ramaswamy, Rastogi and Shim ([17] in the paper): objects are
// ranked by their k-distance, and the top n are reported as outliers. The
// paper cites it as the ranked extension of distance-based outliers; it
// serves as a second baseline that, unlike LOF, is still global — it cannot
// separate an object adjacent to a dense cluster from the working set of a
// sparse cluster.
package knnout

import (
	"fmt"
	"sort"

	"lof/internal/geom"
	"lof/internal/index"
)

// Outlier is one ranked outlier: a point index and its k-distance score.
type Outlier struct {
	Index int
	// KDist is the distance to the point's k-th nearest neighbor.
	KDist float64
}

// TopN returns the n objects with the largest k-distances, in descending
// order (ties by ascending index). k must be positive and smaller than the
// dataset size.
func TopN(pts *geom.Points, ix index.Index, k, n int) ([]Outlier, error) {
	if pts == nil || ix == nil {
		return nil, fmt.Errorf("knnout: nil points or index")
	}
	if k <= 0 || k > pts.Len()-1 {
		return nil, fmt.Errorf("knnout: k=%d out of range for %d points", k, pts.Len())
	}
	if n < 0 {
		return nil, fmt.Errorf("knnout: n=%d must be non-negative", n)
	}
	scores, err := Scores(pts, ix, k)
	if err != nil {
		return nil, err
	}
	ranked := make([]Outlier, len(scores))
	for i, s := range scores {
		ranked[i] = Outlier{Index: i, KDist: s}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].KDist != ranked[b].KDist {
			return ranked[a].KDist > ranked[b].KDist
		}
		return ranked[a].Index < ranked[b].Index
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n], nil
}

// Scores returns every point's k-distance.
func Scores(pts *geom.Points, ix index.Index, k int) ([]float64, error) {
	if pts == nil || ix == nil {
		return nil, fmt.Errorf("knnout: nil points or index")
	}
	if k <= 0 || k > pts.Len()-1 {
		return nil, fmt.Errorf("knnout: k=%d out of range for %d points", k, pts.Len())
	}
	n := pts.Len()
	out := make([]float64, n)
	// One cursor and one result buffer serve the whole scan: each query
	// only needs its k-th distance, so the buffer is reset between points.
	cur := index.NewCursor(ix)
	var buf []index.Neighbor
	for i := 0; i < n; i++ {
		buf = cur.KNNInto(buf[:0], pts.At(i), k, i)
		out[i] = buf[len(buf)-1].Dist
	}
	return out, nil
}
