package knnout

import (
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
)

func TestTopNSimple(t *testing.T) {
	rows := []geom.Point{
		{0, 0}, {1, 0}, {0, 1}, {1, 1},
		{10, 10}, // farthest from everything
		{5, 5},
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, nil)
	top, err := TopN(pts, ix, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Index != 4 || top[1].Index != 5 {
		t.Fatalf("top=%v", top)
	}
	if top[0].KDist <= top[1].KDist {
		t.Fatalf("not descending: %v", top)
	}
}

func TestScoresMatchManual(t *testing.T) {
	pts, err := geom.FromRows([]geom.Point{{0}, {1}, {3}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, nil)
	scores, err := Scores(pts, ix, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 3, 6} // 2nd-nearest distances
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("scores=%v want %v", scores, want)
		}
	}
}

func TestValidation(t *testing.T) {
	pts, _ := geom.FromRows([]geom.Point{{0}, {1}, {2}})
	ix := linear.New(pts, nil)
	if _, err := TopN(nil, ix, 1, 1); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := TopN(pts, nil, 1, 1); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := TopN(pts, ix, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopN(pts, ix, 3, 1); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := TopN(pts, ix, 1, -1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Scores(pts, ix, 5); err == nil {
		t.Error("Scores k out of range accepted")
	}
}

func TestTopNClampsN(t *testing.T) {
	pts, _ := geom.FromRows([]geom.Point{{0}, {1}, {2}})
	ix := linear.New(pts, nil)
	top, err := TopN(pts, ix, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("len=%d", len(top))
	}
}

// The global weakness LOF fixes: a point near a dense cluster at the same
// distance as sparse-cluster members' mutual spacing is NOT found by
// k-distance ranking, because sparse-cluster members score at least as
// high.
func TestGlobalRankingMissesLocalOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := geom.NewPoints(2, 0)
	// Dense cluster: 100 points, sigma 0.1.
	for i := 0; i < 100; i++ {
		if err := pts.Append(geom.Point{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	// Sparse cluster: 100 points, spacing ~3.
	for i := 0; i < 100; i++ {
		if err := pts.Append(geom.Point{50 + rng.NormFloat64()*3, rng.NormFloat64() * 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Local outlier: 1.5 away from the dense cluster — far in local terms,
	// nearer than typical sparse-cluster spacing in global terms.
	localOutlier := pts.Len()
	if err := pts.Append(geom.Point{1.5, 0}); err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, nil)
	top, err := TopN(pts, ix, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range top {
		if o.Index == localOutlier {
			t.Fatalf("k-distance ranking found the local outlier in its top 20 — "+
				"dataset no longer demonstrates the global-ranking weakness: %v", top)
		}
	}
}
