package matdb

import (
	"fmt"
	"math"

	"lof/internal/index"
)

// This file is the flat-layout face of the database: the accessors the
// sectioned snapshot formats serialize from, and the constructor that
// rebuilds a DB over flat arrays restored (possibly zero-copy, straight out
// of an mmap'd snapshot) by a loader. The flat representation is exactly
// what compact() produces in memory — one contiguous neighbor array plus
// per-row offsets — so a snapshot written from these accessors and loaded
// through FromFlat reproduces the in-memory database without a decode pass.

// RankEntries returns the total number of stored distinct-rank entries,
// zero for raw-mode databases. It is the rank analogue of Entries.
func (db *DB) RankEntries() int {
	total := 0
	for _, rk := range db.distinctAt {
		total += len(rk)
	}
	return total
}

// RanksOf returns the distinct-rank list of row i, nil for raw-mode
// databases. The returned slice aliases the database; callers must not
// modify it.
func (db *DB) RanksOf(i int) []int32 {
	if db.distinctAt == nil {
		return nil
	}
	return db.distinctAt[i]
}

// FromFlat assembles a database over flat arrays: one contiguous neighbor
// slice plus (n+1) prefix offsets delimiting each row, and — for distinct
// databases — the analogous flat rank arrays. Row i is
// flat[rowOffs[i]:rowOffs[i+1]]; the rows alias flat, so a caller handing
// in a slice cast out of a snapshot mapping gets a database served straight
// from the mapped bytes.
//
// Every structural invariant the serving path assumes is validated here:
// offsets monotone and bounded, neighbor indices within [0, n), distances
// neither NaN nor negative, ranks within their row. The arrays are the
// caller's: FromFlat never copies or mutates them.
func FromFlat(k int, n int, flat []index.Neighbor, rowOffs []uint64, ranks []int32, rankOffs []uint64, distinct bool) (*DB, error) {
	if k < 1 {
		return nil, fmt.Errorf("matdb: materialized K must be positive, got %d", k)
	}
	if len(rowOffs) != n+1 {
		return nil, fmt.Errorf("matdb: %d row offsets for %d points", len(rowOffs), n)
	}
	if rowOffs[0] != 0 || rowOffs[n] != uint64(len(flat)) {
		return nil, fmt.Errorf("matdb: row offsets span [%d, %d), want [0, %d)", rowOffs[0], rowOffs[n], len(flat))
	}
	db := &DB{K: k, Neighbors: make([][]index.Neighbor, n)}
	for i := 0; i < n; i++ {
		lo, hi := rowOffs[i], rowOffs[i+1]
		if lo > hi {
			return nil, fmt.Errorf("matdb: row %d offsets decrease (%d > %d)", i, lo, hi)
		}
		row := flat[lo:hi:hi]
		for j, nb := range row {
			if nb.Index < 0 || nb.Index >= n {
				return nil, fmt.Errorf("matdb: point %d references out-of-range neighbor %d", i, nb.Index)
			}
			if math.IsNaN(nb.Dist) || nb.Dist < 0 {
				return nil, fmt.Errorf("matdb: point %d neighbor %d has invalid distance %v", i, j, nb.Dist)
			}
		}
		db.Neighbors[i] = row
	}
	if !distinct {
		if len(ranks) != 0 || len(rankOffs) != 0 {
			return nil, fmt.Errorf("matdb: raw database carries %d ranks", len(ranks))
		}
		return db, nil
	}
	if len(rankOffs) != n+1 {
		return nil, fmt.Errorf("matdb: %d rank offsets for %d points", len(rankOffs), n)
	}
	if rankOffs[0] != 0 || rankOffs[n] != uint64(len(ranks)) {
		return nil, fmt.Errorf("matdb: rank offsets span [%d, %d), want [0, %d)", rankOffs[0], rankOffs[n], len(ranks))
	}
	db.distinctAt = make([][]int32, n)
	for i := 0; i < n; i++ {
		lo, hi := rankOffs[i], rankOffs[i+1]
		if lo > hi {
			return nil, fmt.Errorf("matdb: row %d rank offsets decrease (%d > %d)", i, lo, hi)
		}
		rk := ranks[lo:hi:hi]
		rowLen := len(db.Neighbors[i])
		if len(rk) > rowLen {
			return nil, fmt.Errorf("matdb: point %d has %d ranks for %d neighbors", i, len(rk), rowLen)
		}
		for _, r := range rk {
			if r < 0 || int(r) >= rowLen {
				return nil, fmt.Errorf("matdb: point %d rank %d out of range", i, r)
			}
		}
		db.distinctAt[i] = rk
	}
	return db, nil
}
