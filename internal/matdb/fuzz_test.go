package matdb

import (
	"bytes"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

func randomPointsForFuzz() *geom.Points {
	rng := rand.New(rand.NewSource(77))
	pts := geom.NewPoints(2, 10)
	for i := 0; i < 10; i++ {
		if err := pts.Append(geom.Point{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			panic(err)
		}
	}
	return pts
}

func fuzzIndex(pts *geom.Points) index.Index { return linear.New(pts, nil) }

// FuzzRead asserts the binary decoder never panics on corrupt input and
// that everything it accepts is internally consistent.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialization and some mutations of it.
	pts := randomPointsForFuzz()
	db, err := Materialize(pts, fuzzIndex(pts), 3)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("LOFM"))
	f.Add([]byte{})
	mutated := append([]byte{}, valid...)
	mutated[10] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted databases must be structurally sound.
		n := got.Len()
		for i, nn := range got.Neighbors {
			for _, nb := range nn {
				if nb.Index < 0 || nb.Index >= n {
					t.Fatalf("point %d references %d of %d", i, nb.Index, n)
				}
				if nb.Dist < 0 {
					t.Fatalf("negative distance")
				}
			}
		}
		// And re-serialize cleanly.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted db fails to serialize: %v", err)
		}
	})
}
