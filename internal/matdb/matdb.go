// Package matdb implements the materialization database M of the paper's
// two-step algorithm (Sec. 7.4): for every object, the MinPtsUB-nearest
// neighbors and their distances are computed once (step 1) and stored; the
// LOF computation (step 2) then runs entirely against this database in two
// scans per MinPts value without touching the original points. The size of
// M is independent of the dimensionality of the original data.
package matdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"lof/internal/flatbin"
	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/obs"
	"lof/internal/pool"
)

// DB is the materialization database: per point, the K-nearest neighbors
// with ties included (Definition 4 neighborhoods for every MinPts ≤ K).
type DB struct {
	// K is the MinPtsUB the database was materialized for.
	K int
	// Neighbors[i] lists point i's neighbors sorted by (distance, index),
	// self excluded, including all ties at the K-distance.
	Neighbors [][]index.Neighbor
	// distinctAt[i][m] is the position within Neighbors[i] of the (m+1)-th
	// neighbor at a new distinct coordinate. It is non-nil only for
	// databases materialized with Distinct, where k-distances must count
	// distinct positions rather than raw neighbors.
	distinctAt [][]int32
}

// IsDistinct reports whether the database uses k-distinct-distance
// semantics.
func (db *DB) IsDistinct() bool { return db.distinctAt != nil }

// Option configures materialization.
type Option func(*config)

type config struct {
	distinct bool
	workers  int
	pool     *pool.Pool
	tracer   *obs.Tracer
	ctx      context.Context
}

// Distinct switches neighborhoods to the k-distinct-distance semantics the
// paper sketches for duplicate handling (remark after Definition 6): the
// neighborhood of p extends until it contains K neighbors with pairwise
// distinct spatial coordinates, so lrd stays finite even when the dataset
// contains more than K duplicates of p.
func Distinct() Option { return func(c *config) { c.distinct = true } }

// Workers enables parallel materialization with the given goroutine count.
// The result is identical to the sequential computation. This is an
// extension over the paper's single-threaded implementation.
func Workers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithPool runs materialization on a worker pool shared with the rest of
// the pipeline, bounding the combined fan-out of nested parallel stages.
// It supersedes Workers when both are given; a nil pool is sequential.
func WithPool(p *pool.Pool) Option { return func(c *config) { c.pool = p } }

// WithTracer records the materialization phase on t. A nil t falls back to
// the process-default tracer (obs.Default), which is itself nil — and thus
// a no-op — unless a -stats style caller installed one.
func WithTracer(t *obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// WithContext makes materialization cancellable: ctx is polled at chunk
// boundaries and between per-point kNN queries, and a cancelled run returns
// ctx's error with no database — partial rows are never observable. An
// uncancelled run is bit-identical to one without a context. A nil ctx is
// ignored.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// Materialize runs step 1 of the two-step algorithm: it computes the
// K-nearest neighborhoods (with ties) of every indexed point using ix.
// K must be positive and smaller than the dataset size for neighborhoods
// to be meaningful; K ≥ n-1 degenerates to full neighborhoods and is
// rejected to surface configuration errors early.
func Materialize(pts *geom.Points, ix index.Index, k int, opts ...Option) (*DB, error) {
	if pts == nil || ix == nil {
		return nil, errors.New("matdb: nil points or index")
	}
	n := pts.Len()
	if k <= 0 {
		return nil, fmt.Errorf("matdb: K must be positive, got %d", k)
	}
	if n < 2 {
		return nil, fmt.Errorf("matdb: need at least 2 points, have %d", n)
	}
	if k > n-1 {
		return nil, fmt.Errorf("matdb: K=%d exceeds n-1=%d; every neighborhood would be the whole dataset", k, n-1)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}

	db := &DB{K: k, Neighbors: make([][]index.Neighbor, n)}
	if cfg.distinct {
		db.distinctAt = make([][]int32, n)
	}
	// Each chunk runs on one goroutine with one cursor and one arena: rows
	// accumulate in the arena (sliced with a capped three-index expression
	// so later growth cannot clobber them) and queries reuse the cursor's
	// scratch, so the hot path performs no per-query allocations. compact()
	// re-backs every row afterwards, which also releases the arenas. With a
	// context, the per-point loop bails as soon as cancellation is observed;
	// the partially filled database is discarded below, never returned.
	fillRange := func(lo, hi int) {
		cur := index.NewCursor(ix)
		arena := make([]index.Neighbor, 0, (hi-lo)*(k+1))
		for i := lo; i < hi; i++ {
			if cfg.ctx != nil && cfg.ctx.Err() != nil {
				return
			}
			start := len(arena)
			if cfg.distinct {
				arena, db.distinctAt[i] = distinctNeighborhoodInto(cur, pts, arena, pts.At(i), i, k)
			} else {
				arena = index.KNNWithTiesInto(cur, arena, pts.At(i), k, i)
			}
			db.Neighbors[i] = arena[start:len(arena):len(arena)]
		}
	}
	p := cfg.pool
	if p == nil {
		p = pool.New(cfg.workers)
	}
	sp := obs.Resolve(cfg.tracer).Phase(obs.PhaseMaterialize)
	sp.AddItems(n)
	if cfg.ctx != nil {
		if err := p.ChunksCtx(cfg.ctx, n, fillRange); err != nil {
			sp.End()
			return nil, fmt.Errorf("matdb: materialize cancelled: %w", err)
		}
	} else {
		p.Chunks(n, fillRange)
	}
	db.compact()
	sp.End()
	if cfg.distinct {
		obs.Resolve(cfg.tracer).Count(obs.CounterDistinct, 1)
	}
	return db, nil
}

// compact re-backs every neighbor list by one contiguous allocation. The
// LOF step scans the database sequentially dozens of times (twice per
// MinPts value), so locality dominates its running time at larger n.
func (db *DB) compact() {
	total := 0
	for _, nn := range db.Neighbors {
		total += len(nn)
	}
	flat := make([]index.Neighbor, 0, total)
	for i, nn := range db.Neighbors {
		start := len(flat)
		flat = append(flat, nn...)
		db.Neighbors[i] = flat[start:len(flat):len(flat)]
	}
}

// distinctNeighborhoodInto grows the query k until the neighborhood of q
// contains want neighbors at pairwise-distinct coordinates, then appends
// all neighbors within the k-distinct-distance to dst and returns the
// extended slice together with the positions of the first `want` distinct
// coordinates within the appended suffix. exclude is the index of q itself
// for in-sample rows, or index.ExcludeNone for out-of-sample query points.
// Every retry round restages over the same dst suffix, so the search
// allocates only when dst must grow.
func distinctNeighborhoodInto(cur index.Cursor, pts *geom.Points, dst []index.Neighbor, q geom.Point, exclude, want int) ([]index.Neighbor, []int32) {
	maxCand := pts.Len()
	if exclude != index.ExcludeNone {
		maxCand--
	}
	start := len(dst)
	k := want
	for {
		dst = cur.KNNInto(dst[:start], q, k, exclude)
		nn := dst[start:]
		cut := distinctRanks(pts, nn, want)
		if len(cut) == want {
			kdist := nn[cut[want-1]].Dist
			dst = cur.RangeInto(dst[:start], q, kdist, exclude)
			return dst, distinctRanks(pts, dst[start:], want)
		}
		if len(nn) >= maxCand {
			// The whole dataset holds fewer than want distinct positions;
			// the full neighborhood is the best possible answer.
			return dst, cut
		}
		k *= 2
		if k > maxCand {
			k = maxCand
		}
	}
}

// distinctRanks returns the positions of the first `want` neighbors that
// introduce a new distinct coordinate, fewer if nn does not contain that
// many distinct positions.
func distinctRanks(pts *geom.Points, nn []index.Neighbor, want int) []int32 {
	return distinctRanksAt(pts.At, nn, want)
}

// distinctRanksAt is distinctRanks over an arbitrary index→point accessor,
// which lets merged rows resolve the virtual index of a query point.
func distinctRanksAt(at func(int) geom.Point, nn []index.Neighbor, want int) []int32 {
	ranks := make([]int32, 0, want)
	for j := range nn {
		if !duplicateOfEarlier(at, nn, j) {
			ranks = append(ranks, int32(j))
			if len(ranks) == want {
				break
			}
		}
	}
	return ranks
}

// duplicateOfEarlier reports whether nn[j] shares coordinates with an
// earlier entry. Identical points are equidistant from the query, so only
// the preceding run of equal distances needs coordinate comparisons.
func duplicateOfEarlier(at func(int) geom.Point, nn []index.Neighbor, j int) bool {
	pj := at(nn[j].Index)
	for l := j - 1; l >= 0 && nn[l].Dist == nn[j].Dist; l-- {
		if pj.Equal(at(nn[l].Index)) {
			return true
		}
	}
	return false
}

// Len returns the number of materialized points.
func (db *DB) Len() int { return len(db.Neighbors) }

// Neighborhood returns the MinPts-distance neighborhood of point i
// (Definition 4): all stored neighbors within the MinPts-distance,
// including ties. For distinct-mode databases, the MinPts-distance counts
// distinct coordinates (the k-distinct-distance of the paper's Def. 6
// remark). minPts must be in [1, K].
func (db *DB) Neighborhood(i, minPts int) []index.Neighbor {
	return db.Row(i).Neighborhood(minPts)
}

// KDistance returns the MinPts-distance of point i (Definition 3), or the
// MinPts-distinct-distance for distinct-mode databases.
func (db *DB) KDistance(i, minPts int) float64 {
	return db.Row(i).KDistance(minPts)
}

// CheckMinPts validates that a MinPts value can be served by this database.
func (db *DB) CheckMinPts(minPts int) error {
	if minPts < 1 {
		return fmt.Errorf("matdb: MinPts must be at least 1, got %d", minPts)
	}
	if minPts > db.K {
		return fmt.Errorf("matdb: MinPts=%d exceeds materialized K=%d", minPts, db.K)
	}
	return nil
}

// --- Binary persistence -------------------------------------------------
//
// The paper's implementation writes M to a file between the two steps; we
// provide the same capability with a small self-describing binary format:
//
//	magic "LOFM" | version u32 | K u32 | distinct u8 | n u64
//	then per point: count u32, count × (index u32, dist f64),
//	and for distinct databases: rankCount u32, rankCount × u32

const (
	magic   = "LOFM"
	version = 1
)

// WriteTo serializes the database with explicit little-endian encoding (no
// reflection). It implements io.WriterTo.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	fw := flatbin.NewWriter(w)
	fw.String(magic)
	fw.U32(version)
	fw.U32(uint32(db.K))
	distinct := uint8(0)
	if db.distinctAt != nil {
		distinct = 1
	}
	fw.U8(distinct)
	fw.U64(uint64(len(db.Neighbors)))
	for i, nn := range db.Neighbors {
		fw.U32(uint32(len(nn)))
		for _, nb := range nn {
			fw.U32(uint32(nb.Index))
			fw.F64(nb.Dist)
		}
		if distinct == 1 {
			ranks := db.distinctAt[i]
			fw.U32(uint32(len(ranks)))
			for _, rk := range ranks {
				fw.U32(uint32(rk))
			}
		}
	}
	return fw.N(), fw.Err()
}

// Read deserializes a database written by WriteTo.
func Read(r io.Reader) (*DB, error) {
	fr := flatbin.NewReader(r)
	head := make([]byte, len(magic))
	fr.Full(head)
	if err := fr.Context("matdb: reading magic"); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, fmt.Errorf("matdb: bad magic %q", head)
	}
	ver := fr.U32()
	if err := fr.Context("matdb: reading version"); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("matdb: unsupported version %d", ver)
	}
	k := fr.U32()
	distinct := fr.U8()
	n := fr.U64()
	if err := fr.Context("matdb: reading header"); err != nil {
		return nil, err
	}
	if distinct > 1 {
		return nil, fmt.Errorf("matdb: invalid distinct flag %d", distinct)
	}
	const maxPoints = 1 << 40
	if n > maxPoints {
		return nil, fmt.Errorf("matdb: implausible point count %d", n)
	}
	// Allocations grow with successfully parsed data, never with header
	// values alone, so a corrupt header cannot trigger a huge allocation.
	db := &DB{K: int(k)}
	db.Neighbors = make([][]index.Neighbor, 0, min(n, 1024))
	if distinct == 1 {
		db.distinctAt = make([][]int32, 0, min(n, 1024))
	}
	for i := uint64(0); i < n; i++ {
		count := fr.U32()
		if err := fr.Context("matdb: reading point %d", i); err != nil {
			return nil, err
		}
		if uint64(count) > n {
			return nil, fmt.Errorf("matdb: point %d claims %d neighbors for %d points", i, count, n)
		}
		nn := make([]index.Neighbor, 0, min(uint64(count), 1024))
		for j := uint32(0); j < count; j++ {
			idx := fr.U32()
			dist := fr.F64()
			if err := fr.Context("matdb: reading point %d neighbor %d", i, j); err != nil {
				return nil, err
			}
			if uint64(idx) >= n {
				return nil, fmt.Errorf("matdb: point %d references out-of-range neighbor %d", i, idx)
			}
			if math.IsNaN(dist) || dist < 0 {
				return nil, fmt.Errorf("matdb: point %d neighbor %d has invalid distance %v", i, j, dist)
			}
			nn = append(nn, index.Neighbor{Index: int(idx), Dist: dist})
		}
		db.Neighbors = append(db.Neighbors, nn)
		if distinct == 1 {
			rc := fr.U32()
			if err := fr.Context("matdb: reading point %d ranks", i); err != nil {
				return nil, err
			}
			if rc > count {
				return nil, fmt.Errorf("matdb: point %d has %d ranks for %d neighbors", i, rc, count)
			}
			ranks := make([]int32, 0, min(uint64(rc), 1024))
			for j := uint32(0); j < rc; j++ {
				rk := fr.U32()
				if err := fr.Context("matdb: reading point %d rank %d", i, j); err != nil {
					return nil, err
				}
				if rk >= count {
					return nil, fmt.Errorf("matdb: point %d rank %d out of range", i, rk)
				}
				ranks = append(ranks, int32(rk))
			}
			db.distinctAt = append(db.distinctAt, ranks)
		}
	}
	return db, nil
}

// Entries returns the total number of stored neighbor entries. The paper
// notes the materialization database holds n·MinPtsUB distances "independent
// of the dimension of the original data"; Entries exceeds n·K only by
// distance ties.
func (db *DB) Entries() int {
	total := 0
	for _, nn := range db.Neighbors {
		total += len(nn)
	}
	return total
}
