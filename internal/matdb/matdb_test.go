package matdb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

func randomPoints(t *testing.T, seed int64, n, dim int) *geom.Points {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(dim, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 5
		}
		if err := pts.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	return pts
}

func mustMaterialize(t *testing.T, pts *geom.Points, k int, opts ...Option) *DB {
	t.Helper()
	db, err := Materialize(pts, linear.New(pts, nil), k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMaterializeBasics(t *testing.T) {
	pts := randomPoints(t, 1, 50, 2)
	db := mustMaterialize(t, pts, 10)
	if db.Len() != 50 || db.K != 10 {
		t.Fatalf("Len=%d K=%d", db.Len(), db.K)
	}
	for i, nn := range db.Neighbors {
		if len(nn) < 10 {
			t.Fatalf("point %d has %d neighbors", i, len(nn))
		}
		for j, nb := range nn {
			if nb.Index == i {
				t.Fatalf("point %d lists itself", i)
			}
			if j > 0 && nn[j-1].Dist > nb.Dist {
				t.Fatalf("point %d neighbors unsorted", i)
			}
		}
	}
}

func TestMaterializeValidation(t *testing.T) {
	pts := randomPoints(t, 1, 10, 2)
	ix := linear.New(pts, nil)
	if _, err := Materialize(nil, ix, 3); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := Materialize(pts, nil, 3); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := Materialize(pts, ix, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Materialize(pts, ix, 10); err == nil {
		t.Error("K=n accepted")
	}
	one, _ := geom.FromRows([]geom.Point{{0, 0}})
	if _, err := Materialize(one, linear.New(one, nil), 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestNeighborhoodPrefixSemantics(t *testing.T) {
	// Points on a line at 0,1,2,...: MinPts-distance neighborhoods of the
	// leftmost point are exact prefixes.
	pts := geom.NewPoints(1, 10)
	for i := 0; i < 10; i++ {
		if err := pts.Append(geom.Point{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	db := mustMaterialize(t, pts, 5)
	for minPts := 1; minPts <= 5; minPts++ {
		nn := db.Neighborhood(0, minPts)
		if len(nn) != minPts {
			t.Fatalf("minPts=%d |N|=%d", minPts, len(nn))
		}
		if db.KDistance(0, minPts) != float64(minPts) {
			t.Fatalf("kdist=%v", db.KDistance(0, minPts))
		}
	}
}

func TestNeighborhoodIncludesTies(t *testing.T) {
	// Paper's Definition 4 example: 1 object at distance 1, 2 at distance
	// 2, 3 at distance 3 → |N2| = 3 (2-distance = 2 covers 3 objects) and
	// |N4| = 6.
	rows := []geom.Point{
		{0, 0},
		{1, 0},
		{2, 0}, {0, 2},
		{3, 0}, {0, 3}, {-3, 0},
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	db := mustMaterialize(t, pts, 6)
	if nn := db.Neighborhood(0, 2); len(nn) != 3 {
		t.Fatalf("|N2|=%d want 3: %v", len(nn), nn)
	}
	if nn := db.Neighborhood(0, 4); len(nn) != 6 {
		t.Fatalf("|N4|=%d want 6: %v", len(nn), nn)
	}
	if kd := db.KDistance(0, 4); kd != 3 {
		t.Fatalf("4-distance=%v want 3", kd)
	}
	if kd := db.KDistance(0, 2); kd != 2 {
		t.Fatalf("2-distance=%v want 2 (equal to 3-distance)", kd)
	}
}

func TestCheckMinPts(t *testing.T) {
	pts := randomPoints(t, 2, 30, 2)
	db := mustMaterialize(t, pts, 10)
	if err := db.CheckMinPts(10); err != nil {
		t.Error(err)
	}
	if err := db.CheckMinPts(0); err == nil {
		t.Error("MinPts=0 accepted")
	}
	if err := db.CheckMinPts(11); err == nil {
		t.Error("MinPts>K accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	pts := randomPoints(t, 3, 200, 3)
	seq := mustMaterialize(t, pts, 15)
	par := mustMaterialize(t, pts, 15, Workers(4))
	for i := range seq.Neighbors {
		if len(seq.Neighbors[i]) != len(par.Neighbors[i]) {
			t.Fatalf("point %d: %d vs %d neighbors", i, len(seq.Neighbors[i]), len(par.Neighbors[i]))
		}
		for j := range seq.Neighbors[i] {
			if seq.Neighbors[i][j] != par.Neighbors[i][j] {
				t.Fatalf("point %d neighbor %d differs", i, j)
			}
		}
	}
}

func TestDistinctNeighborhoodsWithDuplicates(t *testing.T) {
	// 20 copies of the origin plus a line of distinct points. With plain
	// neighborhoods, K=5 yields only duplicate neighbors (distance 0);
	// with Distinct, each origin copy must reach 5 distinct positions.
	var rows []geom.Point
	for i := 0; i < 20; i++ {
		rows = append(rows, geom.Point{0, 0})
	}
	for i := 1; i <= 10; i++ {
		rows = append(rows, geom.Point{float64(i), 0})
	}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	ix := linear.New(pts, nil)

	plain, err := Materialize(pts, ix, 5)
	if err != nil {
		t.Fatal(err)
	}
	if kd := plain.KDistance(0, 5); kd != 0 {
		t.Fatalf("plain 5-distance of duplicate=%v want 0", kd)
	}

	dist, err := Materialize(pts, ix, 5, Distinct())
	if err != nil {
		t.Fatal(err)
	}
	// Distinct positions within reach: origin (19 dups), 1, 2, 3, 4 → the
	// 5-distinct-distance is 4.
	if kd := dist.KDistance(0, 5); kd != 4 {
		t.Fatalf("distinct 5-distance=%v want 4", kd)
	}
	// The neighborhood must include the 19 duplicates and points 1..4.
	if nn := dist.Neighborhood(0, 5); len(nn) != 19+4 {
		t.Fatalf("|N|=%d want 23", len(nn))
	}
}

func TestDistinctFallbackWhenTooFewPositions(t *testing.T) {
	// Only 3 distinct positions exist but 5 are requested: the
	// neighborhood degrades to everything.
	rows := []geom.Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {2, 0}, {2, 0}}
	pts, err := geom.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Materialize(pts, linear.New(pts, nil), 5, Distinct())
	if err != nil {
		t.Fatal(err)
	}
	if nn := db.Neighbors[0]; len(nn) != 5 {
		t.Fatalf("|N|=%d want 5 (all other points)", len(nn))
	}
}

func TestRoundTrip(t *testing.T) {
	pts := randomPoints(t, 4, 120, 4)
	db := mustMaterialize(t, pts, 20)
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != db.K || back.Len() != db.Len() {
		t.Fatalf("K=%d Len=%d", back.K, back.Len())
	}
	for i := range db.Neighbors {
		for j := range db.Neighbors[i] {
			if db.Neighbors[i][j] != back.Neighbors[i][j] {
				t.Fatalf("point %d neighbor %d differs after round trip", i, j)
			}
		}
	}
}

func TestReadRejectsCorruptInput(t *testing.T) {
	pts := randomPoints(t, 5, 20, 2)
	db := mustMaterialize(t, pts, 5)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)/2],
		"short header": good[:6],
	}
	// Bad version.
	bad := append([]byte{}, good...)
	bad[4] = 99
	cases["bad version"] = bad
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRejectsOutOfRangeNeighbor(t *testing.T) {
	pts := randomPoints(t, 6, 5, 2)
	db := mustMaterialize(t, pts, 2)
	db.Neighbors[0][0].Index = 999 // corrupt in memory, then serialize
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
}

func TestNeighborhoodAllPointsBound(t *testing.T) {
	// With K = n-1 every neighborhood is everything else.
	pts := randomPoints(t, 7, 8, 2)
	db := mustMaterialize(t, pts, 7)
	for i := 0; i < 8; i++ {
		if nn := db.Neighborhood(i, 7); len(nn) != 7 {
			t.Fatalf("|N|=%d", len(nn))
		}
	}
}

func TestKDistanceEmptyNeighbors(t *testing.T) {
	db := &DB{K: 1, Neighbors: [][]index.Neighbor{{}}}
	if kd := db.KDistance(0, 1); !math.IsInf(kd, 1) {
		t.Fatalf("kd=%v want +Inf", kd)
	}
}

func TestEntriesIndependentOfDimension(t *testing.T) {
	// The paper's size claim: |M| ≈ n·K regardless of dimensionality.
	for _, dim := range []int{2, 8, 32} {
		pts := randomPoints(t, 9, 100, dim)
		db := mustMaterialize(t, pts, 10)
		if e := db.Entries(); e < 100*10 || e > 100*10+50 {
			t.Fatalf("dim=%d entries=%d want ≈1000", dim, e)
		}
	}
}
