package matdb

import (
	"fmt"

	"lof/internal/geom"
	"lof/internal/index"
)

// This file is the exported merge surface of the materialization database:
// the primitives a distributed serving tier needs to reassemble exact
// global LOF state from per-shard pieces. A shard holds only its partition
// of the fitted points, but each point's stored row is the *global* row (the
// neighborhoods computed during the single global materialization), so:
//
//   - MergeCandidates turns the union of per-shard kNN candidate lists into
//     the exact row a query point would occupy in the full database, and
//   - SpliceRow turns a stored global row into the merged row of
//     data ∪ {q}, the same computation MergedRow performs in-process.
//
// Both functions are the single implementation the in-process scoring path
// also runs through, so a scatter-gather evaluation is bit-identical to a
// single-node one by construction, not by parallel maintenance.

// NewRow assembles a Row from its serialized parts: a neighbor list sorted
// by (distance, index) and, for distinct-semantics databases, the positions
// of the first distinct coordinates. It is the inverse of Row.Neighbors plus
// Row.Ranks, for rows that crossed a process boundary.
func NewRow(neighbors []index.Neighbor, ranks []int32, distinct bool) Row {
	r := Row{Neighbors: neighbors, distinct: distinct}
	if distinct {
		r.ranks = ranks
	}
	return r
}

// Ranks returns the distinct-coordinate positions of a distinct-mode row,
// nil otherwise. The returned slice aliases the row's storage.
func (r Row) Ranks() []int32 { return r.ranks }

// IsDistinct reports whether the row carries k-distinct-distance semantics.
func (r Row) IsDistinct() bool { return r.distinct }

// SpliceRow computes the row point's merged row in data ∪ {q}: the stored
// (global) row with the query point spliced in at distance d, under the
// virtual index qIdx. Callers pass the total dataset size as qIdx — every
// stored index is smaller, which fixes q's position among distance ties.
// at resolves stored neighbor indices to coordinates and is consulted only
// for distinct-mode rows, where the distinct ranks must be recomputed with
// q in place; the resolver never sees qIdx. k is the materialized K of the
// database the row came from.
//
// DB.MergedRow is this function applied to an in-process row; a shard
// applies it to its partition's rows with a resolver backed by its halo of
// neighbor coordinates.
func SpliceRow(stored Row, q geom.Point, qIdx int, d float64, at func(int) geom.Point, k int) Row {
	return SpliceRowInto(make([]index.Neighbor, 0, len(stored.Neighbors)+1), stored, q, qIdx, d, at, k)
}

// SpliceRowInto is SpliceRow building the merged neighbor list in dst
// (which must be empty with capacity for len(stored.Neighbors)+1 entries),
// so a scorer filling many rows can carve them out of one arena instead of
// allocating per row.
func SpliceRowInto(dst []index.Neighbor, stored Row, q geom.Point, qIdx int, d float64, at func(int) geom.Point, k int) Row {
	nn := stored.Neighbors
	// q sorts after every stored tie at distance d: stored indexes are all
	// smaller than the virtual index.
	pos := 0
	for pos < len(nn) && nn[pos].Dist <= d {
		pos++
	}
	merged := append(dst, nn[:pos]...)
	merged = append(merged, index.Neighbor{Index: qIdx, Dist: d})
	merged = append(merged, nn[pos:]...)
	r := Row{Neighbors: merged, distinct: stored.distinct}
	if r.distinct {
		resolve := func(idx int) geom.Point {
			if idx == qIdx {
				return q
			}
			return at(idx)
		}
		r.ranks = distinctRanksAt(resolve, merged, k)
	}
	return r
}

// QueryCandidates returns q's k-nearest neighborhood (with ties, under the
// given duplicate semantics) among the indexed points — the per-partition
// candidate set a shard contributes to a scatter-gather query. Indices in
// the result are positions within pts; the caller maps them to global ids.
// It is exactly the neighbor list QueryRow computes, detached from a DB so
// a shard can serve candidates without rematerializing one.
func QueryCandidates(cur index.Cursor, pts *geom.Points, q geom.Point, k int, distinct bool) []index.Neighbor {
	if !distinct {
		return index.KNNWithTiesInto(cur, nil, q, k, index.ExcludeNone)
	}
	nn, _ := distinctNeighborhoodInto(cur, pts, nil, q, index.ExcludeNone, k)
	return nn
}

// MergeCandidates merges per-shard candidate lists into the exact row q
// would occupy in the full database — the distributed counterpart of
// QueryRow. cands is the concatenation of every shard's QueryCandidates
// result with indices already mapped to global ids (shards own disjoint
// id sets, so no deduplication is needed); each shard's list must cover its
// partition's contribution to the global neighborhood, which QueryCandidates
// guarantees: a partition's k-(distinct-)distance is never smaller than the
// global one. at resolves global ids to coordinates and is consulted only
// in distinct mode. cands is sorted in place.
func MergeCandidates(cands []index.Neighbor, at func(int) geom.Point, k int, distinct bool) (Row, error) {
	if k <= 0 {
		return Row{}, fmt.Errorf("matdb: merge K must be positive, got %d", k)
	}
	index.SortNeighbors(cands)
	for i := 1; i < len(cands); i++ {
		if cands[i].Index == cands[i-1].Index {
			return Row{}, fmt.Errorf("matdb: duplicate candidate id %d; shard partitions must be disjoint", cands[i].Index)
		}
	}
	if !distinct {
		if len(cands) <= k {
			return Row{Neighbors: cands}, nil
		}
		kdist := cands[k-1].Dist
		hi := k
		for hi < len(cands) && cands[hi].Dist <= kdist {
			hi++
		}
		return Row{Neighbors: cands[:hi]}, nil
	}
	ranks := distinctRanksAt(at, cands, k)
	if len(ranks) < k {
		// Fewer than k distinct positions exist in the whole dataset; the
		// full candidate union is the best possible neighborhood, matching
		// distinctNeighborhoodInto's degenerate case.
		return Row{Neighbors: cands, ranks: ranks, distinct: true}, nil
	}
	kdist := cands[ranks[k-1]].Dist
	hi := int(ranks[k-1]) + 1
	for hi < len(cands) && cands[hi].Dist <= kdist {
		hi++
	}
	cut := cands[:hi]
	return Row{Neighbors: cut, ranks: distinctRanksAt(at, cut, k), distinct: true}, nil
}
