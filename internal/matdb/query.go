package matdb

import (
	"math"

	"lof/internal/geom"
	"lof/internal/index"
)

// Row is a neighbor list carrying the database's k-distance semantics. It
// unifies three cases the out-of-sample scoring path needs to treat alike:
// a stored row of the database, the virtual row an un-indexed query point
// would have, and a stored row merged with such a query point — the row a
// point would have in data ∪ {q}. All three answer Definition 3/4 lookups
// through the same KDistance/Neighborhood methods the in-sample scans use.
type Row struct {
	// Neighbors is sorted by (distance, index), self excluded, including
	// all ties at the row's K-distance.
	Neighbors []index.Neighbor
	// ranks holds the distinct-coordinate positions (see DB.distinctAt);
	// nil for raw-mode rows.
	ranks    []int32
	distinct bool
}

// Row returns the stored row of point i.
func (db *DB) Row(i int) Row {
	r := Row{Neighbors: db.Neighbors[i], distinct: db.distinctAt != nil}
	if db.distinctAt != nil {
		r.ranks = db.distinctAt[i]
	}
	return r
}

// rankIndex maps a MinPts value to the position within Neighbors that
// carries the MinPts-distance, mirroring DB.rankIndex.
func (r Row) rankIndex(minPts int) int {
	if !r.distinct {
		return minPts - 1
	}
	if len(r.ranks) == 0 {
		return len(r.Neighbors) // degenerate: no distinct info
	}
	if minPts > len(r.ranks) {
		minPts = len(r.ranks)
	}
	return int(r.ranks[minPts-1])
}

// KDistance returns the row's MinPts-distance (Definition 3), or the
// MinPts-distinct-distance for distinct-mode rows.
func (r Row) KDistance(minPts int) float64 {
	if len(r.Neighbors) == 0 {
		return math.Inf(1)
	}
	at := r.rankIndex(minPts)
	if at >= len(r.Neighbors) {
		at = len(r.Neighbors) - 1
	}
	return r.Neighbors[at].Dist
}

// Neighborhood returns the row's MinPts-distance neighborhood
// (Definition 4): all neighbors within the MinPts-distance, ties included.
func (r Row) Neighborhood(minPts int) []index.Neighbor {
	nn := r.Neighbors
	if len(nn) == 0 {
		return nn
	}
	at := r.rankIndex(minPts)
	if at >= len(nn) {
		return nn
	}
	kdist := nn[at].Dist
	hi := at + 1
	for hi < len(nn) && nn[hi].Dist <= kdist {
		hi++
	}
	return nn[:hi]
}

// QueryRow computes the row an out-of-sample query point q would occupy in
// the database: its K-nearest neighborhood (with ties, and with the
// database's distinct semantics) among the indexed points. pts and ix must
// be the collection and index the database was materialized from. The
// result is exactly the row q would get from a re-materialization of
// data ∪ {q}, because q never belongs to its own neighborhood either way.
func (db *DB) QueryRow(pts *geom.Points, ix index.Index, q geom.Point) Row {
	return db.QueryRowCursor(pts, index.NewCursor(ix), q)
}

// QueryRowCursor is QueryRow through a reusable cursor: batch scorers hold
// one cursor per goroutine so consecutive query rows share its scratch. The
// returned row's neighbor list is freshly allocated (rows outlive the call),
// but the queries behind it run allocation-free on the cursor.
func (db *DB) QueryRowCursor(pts *geom.Points, cur index.Cursor, q geom.Point) Row {
	if db.distinctAt == nil {
		return Row{Neighbors: index.KNNWithTiesInto(cur, nil, q, db.K, index.ExcludeNone)}
	}
	nn, ranks := distinctNeighborhoodInto(cur, pts, nil, q, index.ExcludeNone, db.K)
	return Row{Neighbors: nn, ranks: ranks, distinct: true}
}

// MergedRow computes the row point i would occupy in data ∪ {q}: its stored
// row with the query point spliced in at distance d = d(i, q), under the
// virtual index qIdx (callers pass pts.Len(), matching the row number q
// would receive in a refit). The result is valid for MinPts values up to K:
// inserting a point can only shrink k-distances, so every neighbor relevant
// at MinPts ≤ K is already present in the stored row. The splice itself is
// SpliceRow, the exported entry point sharded serving applies to rows that
// crossed a process boundary.
func (db *DB) MergedRow(pts *geom.Points, i int, q geom.Point, qIdx int, d float64) Row {
	return SpliceRow(db.Row(i), q, qIdx, d, pts.At, db.K)
}

// MergedRowInto is MergedRow splicing into dst; see SpliceRowInto.
func (db *DB) MergedRowInto(dst []index.Neighbor, pts *geom.Points, i int, q geom.Point, qIdx int, d float64) Row {
	return SpliceRowInto(dst, db.Row(i), q, qIdx, d, pts.At, db.K)
}
