package matdb

import (
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/index/linear"
)

// queryTestPoints builds a small 2-d dataset with planted duplicates.
func queryTestPoints(rng *rand.Rand, n int) *geom.Points {
	pts := geom.NewPoints(2, n)
	for i := 0; i < n; i++ {
		p := geom.Point{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if i%7 == 0 && i > 0 {
			p = pts.At(i - 1).Clone() // duplicate run
		}
		if err := pts.Append(p); err != nil {
			panic(err)
		}
	}
	return pts
}

// neighborSet canonicalizes a neighbor list for set comparison.
func neighborSet(nn []index.Neighbor) map[int]float64 {
	out := make(map[int]float64, len(nn))
	for _, nb := range nn {
		out[nb.Index] = nb.Dist
	}
	return out
}

// TestQueryAndMergedRowsMatchRefit checks the virtual rows against the
// ground truth: a database materialized on data ∪ {q}. The query row must
// equal q's refit row, and every merged row must answer KDistance and
// Neighborhood lookups exactly like the refit row of the same point.
func TestQueryAndMergedRowsMatchRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k = 5
	metric := geom.Euclidean{}
	for _, distinct := range []bool{false, true} {
		pts := queryTestPoints(rng, 40)
		var opts []Option
		if distinct {
			opts = append(opts, Distinct())
		}
		ix := linear.New(pts, metric)
		db, err := Materialize(pts, ix, k, opts...)
		if err != nil {
			t.Fatal(err)
		}
		queries := []geom.Point{
			{0.1, 0.4},        // inside the cloud
			{25, -30},         // far away
			pts.At(3).Clone(), // exact duplicate of a data point
		}
		for qi, q := range queries {
			all := pts.Clone()
			if err := all.Append(q); err != nil {
				t.Fatal(err)
			}
			allIx := linear.New(all, metric)
			refit, err := Materialize(all, allIx, k, opts...)
			if err != nil {
				t.Fatal(err)
			}
			qIdx := pts.Len()

			qRow := db.QueryRow(pts, ix, q)
			for m := 1; m <= k; m++ {
				if got, want := qRow.KDistance(m), refit.KDistance(qIdx, m); got != want {
					t.Errorf("distinct=%v query %d: QueryRow.KDistance(%d)=%v, refit %v", distinct, qi, m, got, want)
				}
				got, want := neighborSet(qRow.Neighborhood(m)), neighborSet(refit.Neighborhood(qIdx, m))
				if len(got) != len(want) {
					t.Errorf("distinct=%v query %d: QueryRow.Neighborhood(%d) size %d, refit %d", distinct, qi, m, len(got), len(want))
				}
				for idx, d := range want {
					if got[idx] != d {
						t.Errorf("distinct=%v query %d m=%d: neighbor %d dist %v, refit %v", distinct, qi, m, idx, got[idx], d)
					}
				}
			}

			for i := 0; i < pts.Len(); i++ {
				mr := db.MergedRow(pts, i, q, qIdx, metric.Distance(pts.At(i), q))
				for m := 1; m <= k; m++ {
					if got, want := mr.KDistance(m), refit.KDistance(i, m); got != want {
						t.Errorf("distinct=%v query %d point %d: MergedRow.KDistance(%d)=%v, refit %v",
							distinct, qi, i, m, got, want)
					}
					got, want := neighborSet(mr.Neighborhood(m)), neighborSet(refit.Neighborhood(i, m))
					if len(got) != len(want) {
						t.Errorf("distinct=%v query %d point %d m=%d: neighborhood size %d, refit %d",
							distinct, qi, i, m, len(got), len(want))
						continue
					}
					for idx, d := range want {
						if got[idx] != d {
							t.Errorf("distinct=%v query %d point %d m=%d: neighbor %d dist %v, refit %v",
								distinct, qi, i, m, idx, got[idx], d)
						}
					}
				}
			}
		}
	}
}

// TestRowMatchesDBLookups pins Row as the single source of truth for the
// stored-row accessors.
func TestRowMatchesDBLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := queryTestPoints(rng, 30)
	for _, distinct := range []bool{false, true} {
		var opts []Option
		if distinct {
			opts = append(opts, Distinct())
		}
		ix := linear.New(pts, geom.Euclidean{})
		db, err := Materialize(pts, ix, 4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < db.Len(); i++ {
			row := db.Row(i)
			for m := 1; m <= 4; m++ {
				if row.KDistance(m) != db.KDistance(i, m) {
					t.Fatalf("distinct=%v: Row(%d).KDistance(%d) diverges", distinct, i, m)
				}
				if len(row.Neighborhood(m)) != len(db.Neighborhood(i, m)) {
					t.Fatalf("distinct=%v: Row(%d).Neighborhood(%d) diverges", distinct, i, m)
				}
			}
		}
	}
}
