package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the fixed histogram bounds, in seconds, used
// for both pipeline phases and HTTP request latencies. They span sub-ms
// span bookkeeping up to multi-second fits on large datasets.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters,
// safe for concurrent Observe and Snapshot. Bounds are upper bucket
// edges in seconds; observations above the last bound land in the
// implicit +Inf bucket.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sumNS  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds). The bounds slice is not copied and must not be mutated.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, sec)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the entry past the last bound is the +Inf
// bucket, so the total observation count is the sum of Counts. Counts and
// Sum are read bucket-by-bucket and may tear slightly against each other
// under concurrent Observe, but each individual counter is consistent and
// the cumulative-bucket invariant holds by construction.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    time.Duration
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sumNS.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Count is the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear interpolation
// within the bucket that holds the q-th observation — the standard
// histogram_quantile estimate, so load reports match what Prometheus would
// compute from the same buckets. Observations in the +Inf bucket clamp to
// the last finite bound. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	total := s.Count()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return time.Duration(s.Bounds[len(s.Bounds)-1] * float64(time.Second))
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := 0.0
		if c > 0 {
			frac = (rank - float64(prev)) / float64(c)
		}
		return time.Duration((lo + (hi-lo)*frac) * float64(time.Second))
	}
	return time.Duration(s.Bounds[len(s.Bounds)-1] * float64(time.Second))
}

// PromWriter emits Prometheus text exposition format (version 0.0.4).
// Methods append to w in call order; callers group samples by family.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error encountered, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family writes the # HELP and # TYPE header for a metric family.
// typ is "counter", "gauge" or "histogram".
func (p *PromWriter) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line. labels alternate key, value; values are
// escaped per the text format.
func (p *PromWriter) Sample(name string, value float64, labels ...string) {
	p.printf("%s%s %s\n", name, labelSet(labels), formatValue(value))
}

// IntSample writes one sample line with an integer value.
func (p *PromWriter) IntSample(name string, value int64, labels ...string) {
	p.printf("%s%s %d\n", name, labelSet(labels), value)
}

// Histo writes the _bucket/_sum/_count series for one histogram snapshot,
// with the given extra labels on every line. Bucket counts are emitted
// cumulatively, as the format requires.
func (p *PromWriter) Histo(name string, s HistogramSnapshot, labels ...string) {
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		p.printf("%s_bucket%s %d\n", name, labelSet(append(labels, "le", formatValue(b))), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	p.printf("%s_bucket%s %d\n", name, labelSet(append(labels, "le", "+Inf")), cum)
	p.printf("%s_sum%s %s\n", name, labelSet(labels), formatValue(s.Sum.Seconds()))
	p.printf("%s_count%s %d\n", name, labelSet(labels), cum)
}

func labelSet(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
