// Package obs is the stdlib-only observability substrate for the LOF
// pipeline: nestable phase tracing with fixed-bucket latency histograms
// and named counters, plus Prometheus text-format exposition helpers used
// by the HTTP server.
//
// The paper's entire Section 7 evaluation is a performance story — index
// build vs. kNN materialization vs. the per-MinPts two-scan LOF step —
// and this package makes those phases measurable from the outside without
// perturbing them: a nil *Tracer (the default) is a no-op on every method,
// allocates nothing, and performs no time measurement, so the fitted
// results stay bit-identical whether tracing is enabled or not.
//
// Phase names form a two-level hierarchy separated by '/': top-level
// phases ("materialize", "sweep") are measured serially on the
// coordinating goroutine and sum to the pipeline's wall-clock time;
// nested phases ("sweep/lrd") measure busy time inside parallel regions
// and can exceed wall clock when the worker pool overlaps them.
package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical phase names recorded by the pipeline. Nested phases (those
// containing '/') run inside parallel regions; their totals are busy time,
// not wall time.
const (
	// PhaseIngest is input validation and conversion to the flat point set.
	PhaseIngest = "ingest"
	// PhaseIndexBuild is spatial index construction.
	PhaseIndexBuild = "index_build"
	// PhaseMaterialize is step 1: the kNN materialization of database M.
	PhaseMaterialize = "materialize"
	// PhaseSweep is step 2: the MinPts-range sweep (both scans, all values).
	PhaseSweep = "sweep"
	// PhaseSweepLRD is scan 1 of one MinPts value: local reachability
	// densities.
	PhaseSweepLRD = "sweep/lrd"
	// PhaseSweepLOF is scan 2 of one MinPts value: LOF from densities.
	PhaseSweepLOF = "sweep/lof"
	// PhaseAggregate folds per-MinPts values into final scores.
	PhaseAggregate = "aggregate"
	// PhaseScore is one out-of-sample query scored against a fitted model.
	PhaseScore = "score"
	// PhaseScoreKNN is the query point's own neighborhood lookup.
	PhaseScoreKNN = "score/knn"
	// PhaseScoreMerge is the merged-row cache construction around the query.
	PhaseScoreMerge = "score/merge"
)

// Canonical counter names.
const (
	// CounterIndexFallback counts auto-selected indexes that degraded to the
	// linear scan (e.g. a VA-file rejecting a non-boundable metric).
	CounterIndexFallback = "index_fallback_total"
	// CounterDistinct counts fits run with k-distinct-distance neighborhoods.
	CounterDistinct = "distinct_mode_total"
	// CounterKNNQueries counts kNN index queries issued during the fit.
	CounterKNNQueries = "knn_queries_total"
	// CounterRangeQueries counts range index queries issued during the fit.
	CounterRangeQueries = "range_queries_total"
	// CounterCursors counts index cursors created during the fit — one per
	// pool chunk on the materialization hot path.
	CounterCursors = "index_cursors_total"
	// CounterCursorReuse counts queries served by a reused cursor (every
	// query after a cursor's first), the allocation-free path.
	CounterCursorReuse = "cursor_reuse_total"
	// CounterCursorMisses counts queries that went through the legacy
	// KNN/Range shims, each building a throwaway cursor.
	CounterCursorMisses = "cursor_miss_total"
	// CounterPoolTasks counts parallel regions entered on the worker pool.
	CounterPoolTasks = "pool_tasks_total"
	// CounterPoolChunks counts chunks dispatched across those regions.
	CounterPoolChunks = "pool_chunks_total"
	// CounterPoolBorrows counts spare-worker tokens borrowed from the pool.
	CounterPoolBorrows = "pool_borrows_total"
)

// Nested reports whether a phase name denotes a nested (parallel-region)
// phase rather than a top-level coordinator phase.
func Nested(name string) bool { return strings.Contains(name, "/") }

// Tracer aggregates phase spans and counters. All methods are safe for
// concurrent use and safe on a nil receiver, where they do nothing; the
// pipeline threads a nil tracer by default, so tracing costs one pointer
// comparison per phase when disabled.
type Tracer struct {
	mu       sync.Mutex
	phases   map[string]*phaseAgg
	order    []string
	counters map[string]int64
	corder   []string
}

type phaseAgg struct {
	count, items int64
	total        time.Duration
	min, max     time.Duration
	hist         *Histogram
}

// NewTracer returns an empty tracer ready to record.
func NewTracer() *Tracer {
	return &Tracer{
		phases:   make(map[string]*phaseAgg),
		counters: make(map[string]int64),
	}
}

// Phase starts a span for the named phase. End the returned span to record
// it; a nil tracer returns a nil span, which is itself a no-op. The phase
// is registered at start so snapshot order follows when phases begin —
// a nested phase like sweep/lrd lists after its enclosing sweep even
// though the enclosing span ends last.
func (t *Tracer) Phase(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.ensure(name)
	t.mu.Unlock()
	return &Span{t: t, name: name, start: time.Now()}
}

// ensure registers the phase aggregate under t.mu.
func (t *Tracer) ensure(name string) *phaseAgg {
	agg, ok := t.phases[name]
	if !ok {
		agg = &phaseAgg{hist: NewHistogram(DefaultLatencyBuckets)}
		t.phases[name] = agg
		t.order = append(t.order, name)
	}
	return agg
}

// Count adds delta to the named counter. No-op on a nil tracer.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.counters[name]; !ok {
		t.corder = append(t.corder, name)
	}
	t.counters[name] += delta
	t.mu.Unlock()
}

func (t *Tracer) record(name string, d time.Duration, items int64) {
	t.mu.Lock()
	agg := t.ensure(name)
	if agg.count == 0 || d < agg.min {
		agg.min = d
	}
	agg.count++
	agg.items += items
	agg.total += d
	if d > agg.max {
		agg.max = d
	}
	agg.hist.Observe(d)
	t.mu.Unlock()
}

// Span is one in-flight phase measurement. The zero of use is: obtain from
// Tracer.Phase, optionally AddItems, then End exactly once. All methods are
// no-ops on a nil span.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	items int64
}

// AddItems attributes n work items (points, MinPts values, queries) to the
// span, reported as RunStats items and rates.
func (s *Span) AddItems(n int) {
	if s == nil {
		return
	}
	s.items += int64(n)
}

// End records the span into its tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.record(s.name, time.Since(s.start), s.items)
}

// PhaseStats is the aggregated view of one phase.
type PhaseStats struct {
	// Name is the phase name; Nested(Name) phases measure busy time inside
	// parallel regions.
	Name string
	// Count is the number of recorded spans.
	Count int64
	// Items is the total work items attributed across spans.
	Items int64
	// Total is the summed span duration; Min and Max bound individual spans.
	Total, Min, Max time.Duration
	// Latency is the fixed-bucket histogram of span durations.
	Latency HistogramSnapshot
}

// CounterStat is one named counter value.
type CounterStat struct {
	Name  string
	Value int64
}

// RunStats is a point-in-time snapshot of a tracer: phases in first-seen
// order followed by counters in first-seen order.
type RunStats struct {
	Phases   []PhaseStats
	Counters []CounterStat
}

// Snapshot returns the tracer's current aggregates; nil for a nil tracer.
func (t *Tracer) Snapshot() *RunStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &RunStats{
		Phases:   make([]PhaseStats, 0, len(t.order)),
		Counters: make([]CounterStat, 0, len(t.corder)),
	}
	for _, name := range t.order {
		agg := t.phases[name]
		out.Phases = append(out.Phases, PhaseStats{
			Name: name, Count: agg.count, Items: agg.items,
			Total: agg.total, Min: agg.min, Max: agg.max,
			Latency: agg.hist.Snapshot(),
		})
	}
	for _, name := range t.corder {
		out.Counters = append(out.Counters, CounterStat{Name: name, Value: t.counters[name]})
	}
	return out
}

// Phase returns the named phase's aggregate, if recorded.
func (s *RunStats) Phase(name string) (PhaseStats, bool) {
	if s == nil {
		return PhaseStats{}, false
	}
	for _, p := range s.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStats{}, false
}

// Counter returns the named counter's value, zero if never counted.
func (s *RunStats) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TopLevelTotal sums the durations of top-level (non-nested) phases. These
// run serially on the coordinating goroutine, so the sum tracks the traced
// pipeline's wall-clock time.
func (s *RunStats) TopLevelTotal() time.Duration {
	if s == nil {
		return 0
	}
	var sum time.Duration
	for _, p := range s.Phases {
		if !Nested(p.Name) {
			sum += p.Total
		}
	}
	return sum
}

// defaultTracer is the process-default tracer consulted by pipeline stages
// that are handed no explicit tracer. It exists for CLI-style callers
// (lofexp -stats) that drive internal packages directly; libraries should
// thread tracers explicitly.
var defaultTracer atomic.Pointer[Tracer]

// Default returns the process-default tracer, nil unless SetDefault was
// called.
func Default() *Tracer { return defaultTracer.Load() }

// SetDefault installs t as the process-default tracer; pass nil to disable.
func SetDefault(t *Tracer) { defaultTracer.Store(t) }

// Resolve returns t, falling back to the process-default tracer when t is
// nil. Pipeline stages call it once per phase boundary.
func Resolve(t *Tracer) *Tracer {
	if t != nil {
		return t
	}
	return Default()
}
