package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Phase(PhaseSweep)
	if sp != nil {
		t.Fatalf("nil tracer Phase = %v, want nil span", sp)
	}
	sp.AddItems(10)
	sp.End()
	tr.Count(CounterPoolTasks, 3)
	if snap := tr.Snapshot(); snap != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", snap)
	}
	var s *RunStats
	if _, ok := s.Phase(PhaseSweep); ok {
		t.Fatal("nil RunStats reported a phase")
	}
	if v := s.Counter(CounterPoolTasks); v != 0 {
		t.Fatalf("nil RunStats Counter = %d, want 0", v)
	}
	if d := s.TopLevelTotal(); d != 0 {
		t.Fatalf("nil RunStats TopLevelTotal = %v, want 0", d)
	}
}

// TestNilTracerZeroAlloc is the no-op overhead guard: with tracing
// disabled (nil tracer), the span lifecycle must not allocate at all.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Phase(PhaseSweepLRD)
		sp.AddItems(1)
		sp.End()
		tr.Count(CounterPoolChunks, 1)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates %v allocs/op, want 0", allocs)
	}
}

func TestTracerRecordsPhasesAndCounters(t *testing.T) {
	tr := NewTracer()
	sp := tr.Phase(PhaseMaterialize)
	sp.AddItems(100)
	time.Sleep(time.Millisecond)
	sp.End()
	sp = tr.Phase(PhaseSweep)
	sp.AddItems(5)
	sp.End()
	tr.Count(CounterPoolTasks, 2)
	tr.Count(CounterPoolTasks, 3)

	snap := tr.Snapshot()
	if len(snap.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(snap.Phases))
	}
	if snap.Phases[0].Name != PhaseMaterialize || snap.Phases[1].Name != PhaseSweep {
		t.Fatalf("phase order = %q, %q; want first-seen order", snap.Phases[0].Name, snap.Phases[1].Name)
	}
	mat, ok := snap.Phase(PhaseMaterialize)
	if !ok {
		t.Fatal("materialize phase missing")
	}
	if mat.Count != 1 || mat.Items != 100 {
		t.Fatalf("materialize count=%d items=%d, want 1/100", mat.Count, mat.Items)
	}
	if mat.Total < time.Millisecond {
		t.Fatalf("materialize total = %v, want >= 1ms", mat.Total)
	}
	if mat.Min > mat.Max || mat.Total < mat.Max {
		t.Fatalf("inconsistent min/max/total: %v/%v/%v", mat.Min, mat.Max, mat.Total)
	}
	if got := mat.Latency.Count(); got != 1 {
		t.Fatalf("materialize histogram count = %d, want 1", got)
	}
	if v := snap.Counter(CounterPoolTasks); v != 5 {
		t.Fatalf("pool tasks counter = %d, want 5", v)
	}
	if v := snap.Counter(CounterIndexFallback); v != 0 {
		t.Fatalf("unset counter = %d, want 0", v)
	}
}

func TestTopLevelTotalExcludesNested(t *testing.T) {
	tr := NewTracer()
	for _, name := range []string{PhaseMaterialize, PhaseSweep, PhaseSweepLRD, PhaseSweepLOF} {
		tr.Phase(name).End()
	}
	snap := tr.Snapshot()
	var want time.Duration
	for _, p := range snap.Phases {
		if p.Name == PhaseMaterialize || p.Name == PhaseSweep {
			want += p.Total
		}
	}
	if got := snap.TopLevelTotal(); got != want {
		t.Fatalf("TopLevelTotal = %v, want %v (top-level phases only)", got, want)
	}
	if !Nested(PhaseSweepLRD) || Nested(PhaseSweep) {
		t.Fatal("Nested misclassifies phase names")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := tr.Phase(PhaseSweepLRD)
				sp.AddItems(3)
				sp.End()
				tr.Count(CounterPoolChunks, 1)
				if i%10 == 0 {
					_ = tr.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := tr.Snapshot()
	p, ok := snap.Phase(PhaseSweepLRD)
	if !ok {
		t.Fatal("phase missing after concurrent recording")
	}
	if p.Count != goroutines*iters {
		t.Fatalf("span count = %d, want %d", p.Count, goroutines*iters)
	}
	if p.Items != goroutines*iters*3 {
		t.Fatalf("items = %d, want %d", p.Items, goroutines*iters*3)
	}
	if got := p.Latency.Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if v := snap.Counter(CounterPoolChunks); v != goroutines*iters {
		t.Fatalf("chunk counter = %d, want %d", v, goroutines*iters)
	}
}

func TestDefaultTracer(t *testing.T) {
	if Default() != nil {
		t.Fatal("process default tracer should start nil")
	}
	tr := NewTracer()
	SetDefault(tr)
	defer SetDefault(nil)
	if Default() != tr {
		t.Fatal("SetDefault did not install tracer")
	}
	if Resolve(nil) != tr {
		t.Fatal("Resolve(nil) should fall back to default")
	}
	other := NewTracer()
	if Resolve(other) != other {
		t.Fatal("Resolve should prefer the explicit tracer")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(time.Millisecond)       // boundary: le=0.001 bucket
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(time.Second)            // +Inf
	s := h.Snapshot()
	want := []int64{2, 1, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("total count = %d, want 4", s.Count())
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond + time.Second
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Second)
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Family("lof_test_seconds", "histogram", "test histogram")
	p.Histo("lof_test_seconds", h.Snapshot(), "route", "/v1/fit")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP lof_test_seconds test histogram\n",
		"# TYPE lof_test_seconds histogram\n",
		`lof_test_seconds_bucket{route="/v1/fit",le="0.001"} 0` + "\n",
		`lof_test_seconds_bucket{route="/v1/fit",le="0.01"} 1` + "\n",
		`lof_test_seconds_bucket{route="/v1/fit",le="+Inf"} 2` + "\n",
		`lof_test_seconds_sum{route="/v1/fit"} 3.002` + "\n",
		`lof_test_seconds_count{route="/v1/fit"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromWriterEscaping(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Family("lof_x_total", "counter", "line1\nline2 with \\ backslash")
	p.IntSample("lof_x_total", 7, "path", `a"b\c`+"\n")
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP lof_x_total line1\nline2 with \\ backslash`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `lof_x_total{path="a\"b\\c\n"} 7`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatValue(+Inf) = %q", got)
	}
	if got := formatValue(0.25); got != "0.25" {
		t.Fatalf("formatValue(0.25) = %q", got)
	}
}
