// Package optics implements the OPTICS cluster-ordering algorithm of
// Ankerst, Breunig, Kriegel and Sander ([2] in the paper). The paper's
// "ongoing work" section proposes a handshake between LOF and a
// hierarchical clustering algorithm like OPTICS: the clustering provides
// context for the identified outliers (which cluster is an object outlying
// relative to?), and the two computations share k-nn queries and
// reachability distances. This package provides that substrate: the
// cluster ordering, reachability plot, and a threshold-based cluster
// extraction, all driven by the same index and materialization machinery
// LOF uses.
package optics

import (
	"container/heap"
	"fmt"
	"math"

	"lof/internal/geom"
	"lof/internal/index"
	"lof/internal/stats"
)

// Undefined marks an undefined reachability distance (the first point of
// each new component in the ordering).
var Undefined = math.Inf(1)

// Result is the OPTICS cluster ordering.
type Result struct {
	// Order lists point indices in OPTICS processing order.
	Order []int
	// Reach[k] is the reachability distance of Order[k] (Undefined for
	// component starts).
	Reach []float64
	// Core[i] is point i's core distance (its MinPts-distance), Undefined
	// if the point never had MinPts neighbors within eps.
	Core []float64
}

// Params configures the ordering.
type Params struct {
	// MinPts plays the same role as in LOF: the neighborhood size defining
	// density. Must be at least 2.
	MinPts int
	// Eps bounds the neighborhood radius used for seed expansion. When
	// zero or negative, it is derived from the data as four times the
	// median MinPts-distance, which comfortably covers intra-cluster
	// reachabilities while keeping range queries local.
	Eps float64
}

// pqItem is a seed-list entry ordered by reachability distance.
type pqItem struct {
	point int
	reach float64
}

type seedQueue struct {
	items []pqItem
	pos   map[int]int // point -> index in items
}

func newSeedQueue() *seedQueue { return &seedQueue{pos: map[int]int{}} }

func (q *seedQueue) Len() int { return len(q.items) }
func (q *seedQueue) Less(i, j int) bool {
	if q.items[i].reach != q.items[j].reach {
		return q.items[i].reach < q.items[j].reach
	}
	return q.items[i].point < q.items[j].point
}
func (q *seedQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].point] = i
	q.pos[q.items[j].point] = j
}
func (q *seedQueue) Push(x interface{}) {
	it := x.(pqItem)
	q.pos[it.point] = len(q.items)
	q.items = append(q.items, it)
}
func (q *seedQueue) Pop() interface{} {
	it := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	delete(q.pos, it.point)
	return it
}

// decrease updates a point's reachability if the new value is smaller,
// or inserts it if absent.
func (q *seedQueue) decrease(point int, reach float64) {
	if i, ok := q.pos[point]; ok {
		if reach < q.items[i].reach {
			q.items[i].reach = reach
			heap.Fix(q, i)
		}
		return
	}
	heap.Push(q, pqItem{point: point, reach: reach})
}

// Run computes the OPTICS ordering of all indexed points.
func Run(pts *geom.Points, ix index.Index, p Params) (*Result, error) {
	if pts == nil || ix == nil {
		return nil, fmt.Errorf("optics: nil points or index")
	}
	if p.MinPts < 2 {
		return nil, fmt.Errorf("optics: MinPts must be at least 2, got %d", p.MinPts)
	}
	n := pts.Len()
	if p.MinPts > n-1 {
		return nil, fmt.Errorf("optics: MinPts=%d too large for %d points", p.MinPts, n)
	}
	// One cursor and one neighbor buffer serve the whole ordering: every
	// expansion set is fully consumed (seed updates, core distance) before
	// the next query overwrites the buffer.
	cur := index.NewCursor(ix)
	var buf []index.Neighbor
	eps := p.Eps
	if eps <= 0 {
		eps = deriveEps(pts, cur, p.MinPts)
	}

	res := &Result{
		Order: make([]int, 0, n),
		Reach: make([]float64, 0, n),
		Core:  make([]float64, n),
	}
	processed := make([]bool, n)

	// neighbors returns the full eps-neighborhood (the OPTICS expansion
	// set) and the core distance of point i. The returned slice aliases the
	// shared buffer and is only valid until the next call.
	neighbors := func(i int) ([]index.Neighbor, float64) {
		buf = cur.RangeInto(buf[:0], pts.At(i), eps, i)
		core := Undefined
		if len(buf) >= p.MinPts {
			core = buf[p.MinPts-1].Dist
		}
		return buf, core
	}

	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		processed[start] = true
		nn, core := neighbors(start)
		res.Core[start] = core
		res.Order = append(res.Order, start)
		res.Reach = append(res.Reach, Undefined)

		if math.IsInf(core, 1) {
			continue
		}
		seeds := newSeedQueue()
		update := func(center int, centerCore float64, nn []index.Neighbor) {
			for _, nb := range nn {
				if processed[nb.Index] {
					continue
				}
				seeds.decrease(nb.Index, math.Max(centerCore, nb.Dist))
			}
		}
		update(start, core, nn)
		for seeds.Len() > 0 {
			it := heap.Pop(seeds).(pqItem)
			processed[it.point] = true
			nnQ, coreQ := neighbors(it.point)
			res.Core[it.point] = coreQ
			res.Order = append(res.Order, it.point)
			res.Reach = append(res.Reach, it.reach)
			if !math.IsInf(coreQ, 1) {
				update(it.point, coreQ, nnQ)
			}
		}
	}
	return res, nil
}

// deriveEps returns four times the median MinPts-distance of the dataset,
// the default expansion radius when the caller does not supply one.
func deriveEps(pts *geom.Points, cur index.Cursor, minPts int) float64 {
	n := pts.Len()
	kdists := make([]float64, 0, n)
	var buf []index.Neighbor
	for i := 0; i < n; i++ {
		buf = cur.KNNInto(buf[:0], pts.At(i), minPts, i)
		if len(buf) > 0 {
			kdists = append(kdists, buf[len(buf)-1].Dist)
		}
	}
	med, err := stats.Quantile(kdists, 0.5)
	if err != nil {
		return math.Inf(1)
	}
	if med == 0 {
		return math.Inf(1)
	}
	return 4 * med
}

// Cluster is one extracted cluster: the point indices of a maximal run of
// the ordering whose reachability stays below the extraction threshold.
type Cluster struct {
	// Members lists point indices.
	Members []int
	// MeanReach is the mean reachability distance within the cluster — a
	// density surrogate (smaller = denser).
	MeanReach float64
}

// ExtractClusters cuts the reachability plot at threshold: maximal runs of
// consecutive ordering positions with reachability ≤ threshold form
// clusters (each run's leading point is included: it is the point from
// which the dense region was entered). Runs shorter than minSize are
// treated as noise. Points outside every cluster are returned as noise.
func (r *Result) ExtractClusters(threshold float64, minSize int) (clusters []Cluster, noise []int) {
	if minSize < 1 {
		minSize = 1
	}
	var current []int
	var reachSum float64
	var reachCnt int
	flush := func() {
		if len(current) >= minSize {
			mean := Undefined
			if reachCnt > 0 {
				mean = reachSum / float64(reachCnt)
			}
			members := make([]int, len(current))
			copy(members, current)
			clusters = append(clusters, Cluster{Members: members, MeanReach: mean})
		} else {
			noise = append(noise, current...)
		}
		current = current[:0]
		reachSum, reachCnt = 0, 0
	}
	for k, pt := range r.Order {
		if r.Reach[k] > threshold {
			// pt is not density-reachable from the current run: close the
			// run and start a new one headed by pt (pt may be the entry
			// point of the next dense region).
			flush()
			current = append(current, pt)
			continue
		}
		current = append(current, pt)
		reachSum += r.Reach[k]
		reachCnt++
	}
	flush()
	return clusters, noise
}

// Assignment maps every point to a cluster id (-1 for noise) from an
// extraction.
func Assignment(n int, clusters []Cluster) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for cid, c := range clusters {
		for _, m := range c.Members {
			out[m] = cid
		}
	}
	return out
}
