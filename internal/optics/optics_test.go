package optics

import (
	"math"
	"math/rand"
	"testing"

	"lof/internal/geom"
	"lof/internal/index/linear"
)

func twoClusters(t *testing.T, seed int64) (*geom.Points, int, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := geom.NewPoints(2, 0)
	for i := 0; i < 60; i++ { // dense cluster at origin
		if err := pts.Append(geom.Point{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ { // sparser cluster at (20, 0)
		if err := pts.Append(geom.Point{20 + rng.NormFloat64()*1.2, rng.NormFloat64() * 1.2}); err != nil {
			t.Fatal(err)
		}
	}
	return pts, 60, 60
}

func TestRunOrderingCoversAllPointsOnce(t *testing.T) {
	pts, _, _ := twoClusters(t, 1)
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != pts.Len() || len(res.Reach) != pts.Len() {
		t.Fatalf("order=%d reach=%d", len(res.Order), len(res.Reach))
	}
	seen := map[int]bool{}
	for _, p := range res.Order {
		if seen[p] {
			t.Fatalf("point %d appears twice", p)
		}
		seen[p] = true
	}
}

func TestRunSeparatesClusters(t *testing.T) {
	pts, n1, _ := twoClusters(t, 2)
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A threshold between the intra-cluster reachabilities (≤ ~1.5) and
	// the inter-cluster jump (~18) must yield exactly two clusters that
	// coincide with the ground truth.
	clusters, noise := res.ExtractClusters(3, 5)
	if len(clusters) != 2 {
		t.Fatalf("clusters=%d noise=%d", len(clusters), len(noise))
	}
	for _, c := range clusters {
		firstCluster := c.Members[0] < n1
		for _, m := range c.Members {
			if (m < n1) != firstCluster {
				t.Fatalf("cluster mixes ground-truth clusters")
			}
		}
	}
	if len(noise) > 2 {
		t.Fatalf("noise=%v", noise)
	}
	// The dense cluster has the smaller mean reachability.
	var dense, sparse Cluster
	if clusters[0].Members[0] < n1 {
		dense, sparse = clusters[0], clusters[1]
	} else {
		dense, sparse = clusters[1], clusters[0]
	}
	if dense.MeanReach >= sparse.MeanReach {
		t.Fatalf("dense mean reach %v not below sparse %v", dense.MeanReach, sparse.MeanReach)
	}
}

func TestRunWithEpsBound(t *testing.T) {
	pts, _, _ := twoClusters(t, 3)
	ix := linear.New(pts, nil)
	res, err := Run(pts, ix, Params{MinPts: 5, Eps: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With eps below the cluster gap, reachabilities never bridge the
	// clusters: at least two Undefined entries (component starts).
	undefined := 0
	for _, r := range res.Reach {
		if math.IsInf(r, 1) {
			undefined++
		}
	}
	if undefined < 2 {
		t.Fatalf("undefined starts=%d, want >=2", undefined)
	}
	// No finite reachability may exceed eps... except via core distances,
	// which are also bounded by eps here.
	for k, r := range res.Reach {
		if !math.IsInf(r, 1) && r > 3+1e-9 {
			t.Fatalf("reach[%d]=%v exceeds eps", k, r)
		}
	}
}

func TestRunValidation(t *testing.T) {
	pts, _, _ := twoClusters(t, 4)
	ix := linear.New(pts, nil)
	if _, err := Run(nil, ix, Params{MinPts: 5}); err == nil {
		t.Error("nil points accepted")
	}
	if _, err := Run(pts, nil, Params{MinPts: 5}); err == nil {
		t.Error("nil index accepted")
	}
	if _, err := Run(pts, ix, Params{MinPts: 1}); err == nil {
		t.Error("MinPts=1 accepted")
	}
	if _, err := Run(pts, ix, Params{MinPts: pts.Len()}); err == nil {
		t.Error("MinPts=n accepted")
	}
}

func TestCoreDistancesMatchKDistance(t *testing.T) {
	pts, _, _ := twoClusters(t, 5)
	ix := linear.New(pts, nil)
	const minPts = 4
	// With eps covering the whole dataset, every core distance equals the
	// plain MinPts-distance.
	res, err := Run(pts, ix, Params{MinPts: minPts, Eps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pts.Len(); i++ {
		nn := ix.KNN(pts.At(i), minPts, i)
		want := nn[len(nn)-1].Dist
		if math.Abs(res.Core[i]-want) > 1e-12 {
			t.Fatalf("core[%d]=%v want %v", i, res.Core[i], want)
		}
	}
}

func TestAssignment(t *testing.T) {
	clusters := []Cluster{{Members: []int{0, 2}}, {Members: []int{3}}}
	got := Assignment(5, clusters)
	want := []int{0, -1, 0, 1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment=%v want %v", got, want)
		}
	}
}

func TestExtractClustersMinSize(t *testing.T) {
	res := &Result{
		Order: []int{0, 1, 2, 3, 4},
		Reach: []float64{Undefined, 0.5, 9, 0.5, 0.5},
	}
	clusters, noise := res.ExtractClusters(1, 3)
	if len(clusters) != 1 {
		t.Fatalf("clusters=%v", clusters)
	}
	// Run 1 is {0,1} (too small → noise); run 2 is {2,3,4} (2 heads the
	// new dense region).
	if len(clusters[0].Members) != 3 || clusters[0].Members[0] != 2 {
		t.Fatalf("members=%v", clusters[0].Members)
	}
	if len(noise) != 2 {
		t.Fatalf("noise=%v", noise)
	}
}

func TestSingletonRunsAreNoise(t *testing.T) {
	res := &Result{
		Order: []int{0, 1, 2},
		Reach: []float64{Undefined, 9, 9},
	}
	clusters, noise := res.ExtractClusters(1, 2)
	if len(clusters) != 0 || len(noise) != 3 {
		t.Fatalf("clusters=%v noise=%v", clusters, noise)
	}
}
