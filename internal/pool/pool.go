// Package pool provides the bounded worker pool shared by every parallel
// stage of the LOF pipeline: k-NN materialization (matdb.Materialize), the
// MinPts sweep and its per-point scans (core.SweepPool), and out-of-sample
// scoring (Model.ScoreBatch, core.Scorer). Sharing one pool across stages
// bounds the total goroutine fan-out, so nested parallel regions — a batch
// of queries each sweeping a MinPts range, or a sweep whose per-value scans
// also chunk — cannot oversubscribe the configured worker count.
//
// The pool hands out "spare worker" tokens. Every parallel region runs on
// the calling goroutine plus however many spare workers it can lend at that
// moment; a nested region that finds no spare workers simply runs inline on
// its caller. This makes nesting deadlock-free by construction: callers
// always make progress, tokens only add concurrency.
//
// A nil *Pool is valid and means "sequential": every method runs the work
// inline on the caller. Parallel execution is deterministic as long as
// callers write results only to index-addressed locations, which is how the
// whole pipeline uses it; the pool never reorders reductions itself.
package pool

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool bounds the number of goroutines concurrently running work across
// all parallel regions that share it. The zero value is not useful; create
// pools with New.
type Pool struct {
	size  int
	spare chan struct{}

	tasks   atomic.Int64 // parallel regions entered (Chunks calls with n > 0)
	chunks  atomic.Int64 // chunks dispatched, including inline single-chunk runs
	borrows atomic.Int64 // spare-worker tokens borrowed across all regions
}

// Stats is a monotonic snapshot of pool activity since creation, consumed
// by the observability tracer to report how much a run actually fanned out.
type Stats struct {
	// Tasks is the number of parallel regions entered.
	Tasks int64
	// Chunks is the number of work chunks dispatched, counting regions that
	// collapsed to a single inline chunk.
	Chunks int64
	// Borrows is the number of spare-worker tokens borrowed; zero means
	// every region ran inline on its caller.
	Borrows int64
}

// Stats returns cumulative counters; a nil pool reports zeros.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Tasks:   p.tasks.Load(),
		Chunks:  p.chunks.Load(),
		Borrows: p.borrows.Load(),
	}
}

// Sub returns the counter deltas from an earlier snapshot.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Tasks:   s.Tasks - prev.Tasks,
		Chunks:  s.Chunks - prev.Chunks,
		Borrows: s.Borrows - prev.Borrows,
	}
}

// New returns a pool that runs at most workers goroutines at once across
// all regions sharing it. Worker counts below 2 return nil — the valid
// "run everything inline" pool.
func New(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{size: workers, spare: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		p.spare <- struct{}{}
	}
	return p
}

// Size returns the configured worker count; a nil pool has size 1.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Chunks splits [0, n) into at most Size() contiguous chunks and runs fn
// on each. Chunk boundaries depend only on n and Size(), never on timing,
// so callers that write results at index-addressed locations get output
// identical to a sequential run. fn must not retain references past the
// call; Chunks returns only after every chunk completes.
func (p *Pool) Chunks(n int, fn func(lo, hi int)) {
	p.chunked(nil, n, fn)
}

// ChunksCtx is Chunks under cooperative cancellation: ctx is polled before
// each chunk is claimed, and once it is cancelled no further chunks start
// (chunks already running finish, so fn never executes concurrently with
// the return). It returns ctx.Err() when the region was cancelled and nil
// otherwise. Chunk boundaries are identical to Chunks, so an uncancelled
// run produces bit-identical results.
func (p *Pool) ChunksCtx(ctx context.Context, n int, fn func(lo, hi int)) error {
	return p.chunked(ctx, n, fn)
}

// chunked is the shared region body; a nil ctx means "never cancelled" and
// compiles down to the pre-context fast path (one nil check per chunk).
func (p *Pool) chunked(ctx context.Context, n int, fn func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if p != nil {
		p.tasks.Add(1)
	}
	chunks := p.Size()
	if chunks > n {
		chunks = n
	}
	if chunks <= 1 {
		if p != nil {
			p.chunks.Add(1)
		}
		fn(0, n)
		return ctxErr(ctx)
	}
	// Borrow whatever spare workers are free right now, up to one per
	// chunk beyond the caller. Nested regions naturally find fewer (often
	// zero) spares and degrade toward inline execution.
	extra := 0
	for extra < chunks-1 {
		select {
		case <-p.spare:
			extra++
			continue
		default:
		}
		break
	}
	if extra == 0 {
		p.chunks.Add(1)
		fn(0, n)
		return ctxErr(ctx)
	}
	p.borrows.Add(int64(extra))
	p.chunks.Add(int64(chunks))
	var next atomic.Int64
	run := func() {
		for {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			fn(c*n/chunks, (c+1)*n/chunks)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for i := 0; i < extra; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run() // the caller is always one of the workers
	wg.Wait()
	for i := 0; i < extra; i++ {
		p.spare <- struct{}{}
	}
	return ctxErr(ctx)
}

// ctxErr is ctx.Err() tolerating the nil sentinel used by Chunks.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Each runs fn(i) for every i in [0, n), chunked across the pool.
func (p *Pool) Each(n int, fn func(i int)) {
	p.Chunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// EachCtx runs fn(i) for every i in [0, n) with cooperative cancellation:
// ctx is additionally polled before each item, so one region serves as a
// cancellation point even when it collapses to a single inline chunk.
// Returns ctx.Err() when cancelled, nil otherwise.
func (p *Pool) EachCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.ChunksCtx(ctx, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
	})
}
