package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if got := p.Size(); got != 1 {
		t.Fatalf("nil pool size = %d, want 1", got)
	}
	var calls []int
	p.Each(5, func(i int) { calls = append(calls, i) })
	for i, c := range calls {
		if c != i {
			t.Fatalf("nil pool visited %v, want ascending order", calls)
		}
	}
	if len(calls) != 5 {
		t.Fatalf("nil pool visited %d items, want 5", len(calls))
	}
}

func TestNewSmallCountsAreNil(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if New(w) != nil {
			t.Errorf("New(%d) != nil; small pools must collapse to the inline pool", w)
		}
	}
}

func TestChunksCoverEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			p := New(workers)
			visited := make([]int32, n)
			p.Chunks(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestChunkBoundariesAreDeterministic(t *testing.T) {
	p := New(4)
	record := func() [][2]int {
		var mu sync.Mutex
		var got [][2]int
		p.Chunks(37, func(lo, hi int) {
			mu.Lock()
			got = append(got, [2]int{lo, hi})
			mu.Unlock()
		})
		return got
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("chunk count varies across runs: %d vs %d", len(a), len(b))
	}
	seen := make(map[[2]int]bool)
	for _, c := range a {
		seen[c] = true
	}
	for _, c := range b {
		if !seen[c] {
			t.Fatalf("chunk %v appears in one run but not the other", c)
		}
	}
}

// TestNestedFanOutStaysBounded drives nested parallel regions and verifies
// the combined concurrency never exceeds the pool size.
func TestNestedFanOutStaysBounded(t *testing.T) {
	const workers = 4
	p := New(workers)
	var cur, peak atomic.Int64
	enter := func() {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
	}
	p.Each(8, func(i int) {
		p.Each(16, func(j int) {
			enter()
			defer cur.Add(-1)
			// Busy-ish body so overlaps are observable.
			s := 0
			for k := 0; k < 2000; k++ {
				s += k ^ j
			}
			_ = s
		})
	})
	if pk := peak.Load(); pk > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", pk, workers)
	}
}

// TestTokensAreReturned verifies repeated regions keep working (tokens are
// released), including after nested use.
func TestTokensAreReturned(t *testing.T) {
	p := New(3)
	for round := 0; round < 50; round++ {
		total := atomic.Int64{}
		p.Each(10, func(i int) {
			p.Each(3, func(j int) { total.Add(1) })
		})
		if got := total.Load(); got != 30 {
			t.Fatalf("round %d: ran %d units, want 30", round, got)
		}
	}
	if got := len(p.spare); got != p.size-1 {
		t.Fatalf("pool leaked tokens: %d spare, want %d", got, p.size-1)
	}
}

func TestChunksDeterministicOutput(t *testing.T) {
	p := New(5)
	n := 503
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i) * 1.5
	}
	for round := 0; round < 20; round++ {
		out := make([]float64, n)
		p.Chunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.5
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("round %d: out[%d] = %v, want %v", round, i, out[i], ref[i])
			}
		}
	}
}

func TestStatsNilPool(t *testing.T) {
	var p *Pool
	p.Each(10, func(int) {})
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("nil pool Stats = %+v, want zeros", s)
	}
}

func TestStatsCountsInlineAndParallel(t *testing.T) {
	p := New(4)
	// A single-element region collapses to one inline chunk.
	p.Each(1, func(int) {})
	s := p.Stats()
	if s.Tasks != 1 || s.Chunks != 1 || s.Borrows != 0 {
		t.Fatalf("after inline region: %+v, want tasks=1 chunks=1 borrows=0", s)
	}
	// A wide region with all spares free dispatches Size() chunks and
	// borrows Size()-1 tokens.
	p.Each(1000, func(int) {})
	s = p.Stats().Sub(s)
	if s.Tasks != 1 {
		t.Fatalf("parallel region tasks delta = %d, want 1", s.Tasks)
	}
	if s.Chunks != 4 {
		t.Fatalf("parallel region chunks delta = %d, want 4", s.Chunks)
	}
	if s.Borrows != 3 {
		t.Fatalf("parallel region borrows delta = %d, want 3", s.Borrows)
	}
}

func TestStatsConcurrent(t *testing.T) {
	p := New(4)
	const goroutines = 8
	const regions = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < regions; i++ {
				p.Each(64, func(int) {})
				_ = p.Stats()
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Tasks != goroutines*regions {
		t.Fatalf("tasks = %d, want %d", s.Tasks, goroutines*regions)
	}
	// Every region dispatches at least one chunk; borrowed tokens are
	// bounded by Size()-1 extra chunks per region.
	if s.Chunks < s.Tasks || s.Chunks > s.Tasks*4 {
		t.Fatalf("chunks = %d out of range [%d, %d]", s.Chunks, s.Tasks, s.Tasks*4)
	}
	// A region borrows at most one token per chunk beyond its caller, but
	// under contention it may dispatch all its chunks on fewer workers.
	if s.Borrows > s.Chunks-s.Tasks {
		t.Fatalf("borrows = %d exceeds chunks-tasks = %d", s.Borrows, s.Chunks-s.Tasks)
	}
}
