package server

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lof"
	"lof/internal/shard"
)

// approxModel fits a clustered model big enough for the approximate
// serving paths to be meaningfully exercised.
func approxModel(t *testing.T, n int) *lof.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	data := make([][]float64, 0, n+2)
	for i := 0; i < n; i++ {
		c := float64(i%2) * 12
		data = append(data, []float64{c + rng.NormFloat64(), c + rng.NormFloat64()})
	}
	data = append(data, []float64{50, 50}, []float64{-40, 30})
	det, err := lof.New(lof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type approxScoreOut struct {
	Scores    []float64 `json:"scores"`
	Mode      string    `json:"mode"`
	Certified int       `json:"certified"`
}

// TestScoreModePruned: the pruned endpoint answers exactly for uncertain
// queries, 1 for certified ones, reports the certified count, and bumps
// the mode-labeled and certified counters.
func TestScoreModePruned(t *testing.T) {
	m := approxModel(t, 400)
	srv := New(Config{})
	srv.SetModel(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := [][]float64{{0.1, -0.2}, {12.3, 11.9}, {80, 80}, {0.4, 0.6}}
	body := map[string]interface{}{"queries": queries}
	resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/score?mode=pruned", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, raw)
	}
	var out approxScoreOut
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "pruned" {
		t.Fatalf("mode = %q, want pruned", out.Mode)
	}
	if out.Certified == 0 {
		t.Fatal("no query certified; near-cluster queries should fast-path")
	}
	exact, err := m.ScoreBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	eps := lof.DefaultPruneEps
	for i, v := range out.Scores {
		if v == 1 && exact[i] != 1 {
			// Certified answer: the exact score must lie in the band.
			if exact[i] < 1/(1+eps)*(1-1e-9) || exact[i] > (1+eps)*(1+1e-9) {
				t.Fatalf("query %d certified but exact %v outside band", i, exact[i])
			}
			continue
		}
		if math.Abs(v-exact[i]) > 1e-9*math.Abs(exact[i]) {
			t.Fatalf("query %d: pruned %v vs exact %v", i, v, exact[i])
		}
	}
	// The far outlier must never be certified to 1.
	if out.Scores[2] < 1.5 {
		t.Fatalf("outlier query scored %v in pruned mode", out.Scores[2])
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readBody(t, mresp)
	if !strings.Contains(text, `lof_http_score_mode_total{mode="pruned"} 1`) {
		t.Errorf("metrics missing pruned mode count:\n%s", grepLines(text, "score_mode"))
	}
	if !strings.Contains(text, fmt.Sprintf("lof_http_pruned_certified_total %d", out.Certified)) {
		t.Errorf("metrics missing certified total %d:\n%s", out.Certified, grepLines(text, "certified"))
	}
	// Every mode label is pre-seeded so the exposition shape is stable.
	for _, mode := range []string{"full", "coreset", "degraded"} {
		if !strings.Contains(text, `lof_http_score_mode_total{mode="`+mode+`"} 0`) {
			t.Errorf("mode %q not pre-seeded:\n%s", mode, grepLines(text, "score_mode"))
		}
	}
}

// TestScoreModeCoreset: coreset requests serve from the sensitivity-sampled
// model and report the mode; with coreset derivation disabled they fall
// back to the exact model silently.
func TestScoreModeCoreset(t *testing.T) {
	m := approxModel(t, 300)
	srv := New(Config{CoresetSample: 128})
	srv.SetModel(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := map[string]interface{}{"queries": [][]float64{{0.2, 0.1}, {60, 60}}}
	resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/score?mode=coreset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, raw)
	}
	var out approxScoreOut
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "coreset" {
		t.Fatalf("mode = %q, want coreset", out.Mode)
	}
	if out.Scores[1] < 1.5 {
		t.Fatalf("coreset model scored a far outlier %v", out.Scores[1])
	}

	// Disabled coreset: the request still succeeds, exactly, with no mode.
	srv2 := New(Config{CoresetSample: -1})
	srv2.SetModel(m)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, raw = postJSON(t, ts2.Client(), ts2.URL+"/v1/score?mode=coreset", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disabled coreset status %d body %s", resp.StatusCode, raw)
	}
	if strings.Contains(string(raw), `"mode"`) {
		t.Fatalf("disabled coreset still reported a mode: %s", raw)
	}
}

// TestDegradedPrefersCoreset: the degraded fallback chain is coreset →
// stride subsample → full. With both derived models installed, degraded
// answers must come from the coreset (checked by score identity), and with
// the coreset disabled, from the stride subsample.
func TestDegradedPrefersCoreset(t *testing.T) {
	m := approxModel(t, 300)
	q := [][]float64{{0.3, -0.1}}
	coreset, err := m.Coreset(128)
	if err != nil {
		t.Fatal(err)
	}
	stride, err := m.Subsample(128)
	if err != nil {
		t.Fatal(err)
	}
	wantCoreset, err := coreset.ScoreBatch(q)
	if err != nil {
		t.Fatal(err)
	}
	wantStride, err := stride.ScoreBatch(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(wantCoreset[0]) == math.Float64bits(wantStride[0]) {
		t.Fatal("test needs coreset and stride models that disagree on the probe query")
	}

	score := func(srv *Server) approxScoreOut {
		t.Helper()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/score?mode=degraded",
			map[string]interface{}{"queries": q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d body %s", resp.StatusCode, raw)
		}
		var out approxScoreOut
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	both := New(Config{DegradedSample: 128, CoresetSample: 128})
	both.SetModel(m)
	if out := score(both); out.Mode != "degraded" || math.Float64bits(out.Scores[0]) != math.Float64bits(wantCoreset[0]) {
		t.Fatalf("degraded with both models served %v (mode %q), want coreset score %v", out.Scores[0], out.Mode, wantCoreset[0])
	}

	noCoreset := New(Config{DegradedSample: 128, CoresetSample: -1})
	noCoreset.SetModel(m)
	if out := score(noCoreset); out.Mode != "degraded" || math.Float64bits(out.Scores[0]) != math.Float64bits(wantStride[0]) {
		t.Fatalf("degraded without coreset served %v (mode %q), want stride score %v", out.Scores[0], out.Mode, wantStride[0])
	}
}

// TestShardKDists: the kdists endpoint returns stored k-distance envelopes
// matching the part's database, enforces the version pin, and rejects
// unowned ids.
func TestShardKDists(t *testing.T) {
	parts := splitParts(t, 2, 7)
	srv := New(Config{})
	srv.part.Store(parts[0])
	srv.version.Store(parts[0].Version())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := ts.Client()

	ids := make([]uint32, 0, 4)
	for id := uint32(0); len(ids) < 4 && id < 10; id++ {
		if parts[0].Partitioner().Shard(id, 2, 10) == 0 {
			ids = append(ids, id)
		}
	}
	req := shard.KDistsRequest{Version: 7, Lo: 2, Hi: 4, IDs: ids}
	body, _ := json.Marshal(req)
	var out shard.KDistsResponse
	if resp := postBytes(t, c, ts.URL+"/v1/shard/kdists", "application/json", body, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("kdists status %d", resp.StatusCode)
	}
	if len(out.Lo) != len(ids) || len(out.Hi) != len(ids) {
		t.Fatalf("kdists returned %d/%d entries for %d ids", len(out.Lo), len(out.Hi), len(ids))
	}
	wantLo, wantHi, err := parts[0].KDists(ids, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if out.Lo[i] != wantLo[i] || out.Hi[i] != wantHi[i] {
			t.Fatalf("id %d: got [%v, %v], want [%v, %v]", ids[i], out.Lo[i], out.Hi[i], wantLo[i], wantHi[i])
		}
		if out.Lo[i] > out.Hi[i] {
			t.Fatalf("id %d: inverted envelope [%v, %v]", ids[i], out.Lo[i], out.Hi[i])
		}
	}

	// Version pin: a mismatched version is 503 + Retry-After.
	req.Version = 6
	body, _ = json.Marshal(req)
	if resp := postBytes(t, c, ts.URL+"/v1/shard/kdists", "application/json", body, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale kdists status %d, want 503", resp.StatusCode)
	}

	// Unowned id: permanent 400.
	other := uint32(0)
	for ; other < 10; other++ {
		if parts[0].Partitioner().Shard(other, 2, 10) == 1 {
			break
		}
	}
	req.Version = 7
	req.IDs = []uint32{other}
	body, _ = json.Marshal(req)
	if resp := postBytes(t, c, ts.URL+"/v1/shard/kdists", "application/json", body, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unowned kdists status %d, want 400", resp.StatusCode)
	}
}

// grepLines returns the lines of text containing substr, for error output.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
