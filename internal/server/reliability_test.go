package server

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lof"
)

// fitModel builds a model over two clusters for direct SetModel installs.
func fitModel(t *testing.T, n int) *lof.Model {
	t.Helper()
	det, err := lof.New(lof.Config{MinPtsLB: 3, MinPtsUB: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Fit(testData(rand.New(rand.NewSource(9)), n))
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.Model()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// holdFirstScore installs a score-start hook that blocks only the first
// request through it: the returned entered channel closes once that
// request is inside the handler, and it stays there until release is
// closed. Later requests pass straight through.
func holdFirstScore(t *testing.T) (entered, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	testHookScoreStart = func() {
		first := false
		once.Do(func() { first = true })
		if first {
			close(entered)
			<-release
		}
	}
	t.Cleanup(func() { testHookScoreStart = nil })
	return entered, release
}

// TestDegradedMode covers the graceful-degradation path: opt-in
// approximate scoring, reserve admission when the main limiter is full,
// Retry-After on sheds, and the degraded metrics counter.
func TestDegradedMode(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, DegradedSample: 32})
	srv.SetModel(fitModel(t, 200))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	scoreBody := map[string]interface{}{"queries": [][]float64{{0.2, -0.1}}}

	// Unknown modes are rejected outright.
	resp, body := postJSON(t, client, ts.URL+"/v1/score?mode=bogus", scoreBody)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mode=bogus: status %d body %s", resp.StatusCode, body)
	}

	// Unsaturated degraded request: served, and labeled as degraded.
	resp, body = postJSON(t, client, ts.URL+"/v1/score?mode=degraded", scoreBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded score: status %d body %s", resp.StatusCode, body)
	}
	var out struct {
		Scores []float64 `json:"scores"`
		Mode   string    `json:"mode"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "degraded" || len(out.Scores) != 1 {
		t.Fatalf("degraded response = %+v, want mode=degraded with 1 score", out)
	}

	// Full-mode responses must NOT carry the mode marker.
	resp, body = postJSON(t, client, ts.URL+"/v1/score", scoreBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full score: status %d body %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"mode"`) {
		t.Fatalf("full-mode response leaked a mode field: %s", body)
	}

	// Saturate the single main slot with a held request…
	entered, release := holdFirstScore(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, client, ts.URL+"/v1/score", scoreBody)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held request finished with status %d", resp.StatusCode)
		}
	}()
	<-entered

	// …then a plain request is shed with a retry hint…
	resp, body = postJSON(t, client, ts.URL+"/v1/score", scoreBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated full score: status %d body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("shed response Retry-After = %q, want \"1\"", ra)
	}

	// …while a degraded opt-in is admitted through the reserve pool.
	resp, body = postJSON(t, client, ts.URL+"/v1/score?mode=degraded", scoreBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated degraded score: status %d body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Mode != "degraded" {
		t.Fatalf("saturated degraded response mode = %q", out.Mode)
	}

	close(release)
	wg.Wait()

	// The Prometheus view exposes the degraded counter.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	counters, _ := parsePromText(t, readBody(t, resp))
	if got := counters["lof_http_degraded_total"]; got < 2 {
		t.Errorf("lof_http_degraded_total = %d, want ≥2", got)
	}
	if got := counters["lof_http_shed_total"]; got != 1 {
		t.Errorf("lof_http_shed_total = %d, want 1", got)
	}
}

// TestDegradedDisabled: a negative DegradedSample turns the feature off;
// opting in still succeeds, served exactly by the full model.
func TestDegradedDisabled(t *testing.T) {
	srv := New(Config{DegradedSample: -1})
	srv.SetModel(fitModel(t, 120))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/score?mode=degraded",
		map[string]interface{}{"queries": [][]float64{{0.2, -0.1}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), `"mode"`) {
		t.Fatalf("disabled degraded mode still reported a mode: %s", body)
	}
}

// TestGracefulDrainUnderFit: Shutdown waits for an in-flight fit to
// finish and install its model; the late response is a real 200.
func TestGracefulDrainUnderFit(t *testing.T) {
	srv := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	entered := make(chan struct{})
	release := make(chan struct{})
	testHookFitStart = func() {
		close(entered)
		<-release
	}
	defer func() { testHookFitStart = nil }()

	client := &http.Client{}
	fitDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, client, base+"/v1/fit", fitRequest{
			Config: FitConfig{MinPtsLB: 3, MinPtsUB: 6},
			Data:   testData(rand.New(rand.NewSource(10)), 80),
		})
		fitDone <- resp.StatusCode
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(context.Background()) }()

	// Shutdown must not complete while the fit is still being served.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a fit in flight", err)
	case <-time.After(150 * time.Millisecond):
	}

	close(release)
	if status := <-fitDone; status != http.StatusOK {
		t.Fatalf("drained fit finished with status %d", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
	if srv.Model() == nil {
		t.Fatal("drained fit did not install its model")
	}
}

// TestScoreDeadlinePropagation: a request whose deadline expires mid-batch
// frees its limiter slot promptly — the server does not keep computing for
// a client that already got its 503.
func TestScoreDeadlinePropagation(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, RequestTimeout: 50 * time.Millisecond})
	srv.SetModel(fitModel(t, 200))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// A big batch cannot finish inside 50ms; the timeout middleware
	// answers 503 and the context cancels the chunked scorer.
	rng := rand.New(rand.NewSource(11))
	big := make([][]float64, 50000)
	for i := range big {
		big[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	resp, _ := postJSON(t, client, ts.URL+"/v1/score", map[string]interface{}{"queries": big})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized-deadline score: status %d", resp.StatusCode)
	}

	// The slot must free up well before the big batch would have finished;
	// a small follow-up request succeeds instead of being shed.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, _ := postJSON(t, client, ts.URL+"/v1/score",
			map[string]interface{}{"queries": [][]float64{{0, 0}}})
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("limiter slot still held 2s after the timed-out request (status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
