// Package server implements the lofserve HTTP JSON API: fit a model over
// posted data, score out-of-sample query points against the current model,
// and expose health and metrics endpoints. It is stdlib-only and built for
// serving traffic: a concurrency limiter sheds excess load with 429s, every
// request runs under a timeout, the model is swapped atomically so scoring
// never blocks behind a refit, and expvar-style counters track request
// volume, latency and batch sizes.
//
// Endpoints:
//
//	POST /v1/fit     {"config": {...}, "data": [[...], ...]}
//	POST /v1/score   {"queries": [[...], ...]}
//	GET  /v1/model   current model summary
//	GET  /healthz    liveness + model presence
//	GET  /metrics    counters (JSON, expvar vars)
package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"lof"
)

// Config parameterizes a Server. The zero value serves with the defaults
// documented per field.
type Config struct {
	// MaxInFlight bounds concurrently served requests; excess requests are
	// shed immediately with 429. Default 64.
	MaxInFlight int
	// RequestTimeout bounds each request; requests that exceed it receive
	// 503. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// MaxBatch bounds the number of query points per score request.
	// Default 100000.
	MaxBatch int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 100000
	}
	return c
}

// metrics are expvar variables deliberately not published to the global
// expvar registry, so multiple servers (tests, embedding) can coexist in
// one process; the /metrics handler serves them directly.
type metrics struct {
	requests    expvar.Map // per-route completed request counts
	latencyUS   expvar.Map // per-route summed handler latency, microseconds
	batchPoints expvar.Int // total query points scored
	fitPoints   expvar.Int // total data points fitted
	inFlight    expvar.Int // gauge: requests currently being served
	shed        expvar.Int // requests rejected by the concurrency limiter
}

// Server is the HTTP serving state: the current model plus limits and
// counters. Create with New, expose with Handler.
type Server struct {
	cfg     Config
	model   atomic.Pointer[lof.Model]
	limiter chan struct{}
	m       metrics
}

// testHookScoreStart, when non-nil, runs at the start of every score
// request after limiter admission. Tests use it to hold requests in flight
// deterministically.
var testHookScoreStart func()

// New returns a Server with cfg's limits (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, limiter: make(chan struct{}, cfg.MaxInFlight)}
	s.m.requests.Init()
	s.m.latencyUS.Init()
	return s
}

// SetModel installs m as the serving model, replacing any previous one.
// In-flight requests finish against the model they started with.
func (s *Server) SetModel(m *lof.Model) { s.model.Store(m) }

// Model returns the current serving model, or nil when none is installed.
func (s *Server) Model() *lof.Model { return s.model.Load() }

// Handler returns the full route table wrapped with the limiter, metrics
// and timeout middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/fit", s.wrap("/v1/fit", s.handleFit))
	mux.Handle("POST /v1/score", s.wrap("/v1/score", s.handleScore))
	mux.Handle("GET /v1/model", s.wrap("/v1/model", s.handleModel))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// wrap applies, outside-in: concurrency shedding, in-flight accounting,
// request timeout, and per-route count/latency metrics.
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	timed := http.TimeoutHandler(h, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.limiter <- struct{}{}:
			defer func() { <-s.limiter }()
		default:
			s.m.shed.Add(1)
			writeError(w, http.StatusTooManyRequests, "server at capacity")
			return
		}
		s.m.inFlight.Add(1)
		defer s.m.inFlight.Add(-1)
		start := time.Now()
		timed.ServeHTTP(w, r)
		s.m.latencyUS.Add(route, time.Since(start).Microseconds())
		s.m.requests.Add(route, 1)
	})
}

// --- request/response shapes -------------------------------------------

// FitConfig is the JSON shape of a fit request's configuration; fields
// mirror lof.Config with textual enums.
type FitConfig struct {
	MinPts      int       `json:"minPts,omitempty"`
	MinPtsLB    int       `json:"minPtsLB,omitempty"`
	MinPtsUB    int       `json:"minPtsUB,omitempty"`
	Aggregation string    `json:"aggregation,omitempty"`
	Metric      string    `json:"metric,omitempty"`
	Weights     []float64 `json:"weights,omitempty"`
	Index       string    `json:"index,omitempty"`
	Distinct    bool      `json:"distinct,omitempty"`
	Workers     int       `json:"workers,omitempty"`
}

// Detector translates the JSON configuration into a validated detector.
func (c FitConfig) Detector() (*lof.Detector, error) {
	agg, err := lof.ParseAggregation(c.Aggregation)
	if err != nil {
		return nil, err
	}
	kind, err := lof.ParseIndexKind(c.Index)
	if err != nil {
		return nil, err
	}
	return lof.New(lof.Config{
		MinPts:      c.MinPts,
		MinPtsLB:    c.MinPtsLB,
		MinPtsUB:    c.MinPtsUB,
		Aggregation: agg,
		Metric:      c.Metric,
		Weights:     c.Weights,
		Index:       kind,
		Distinct:    c.Distinct,
		Workers:     c.Workers,
	})
}

type fitRequest struct {
	Config FitConfig   `json:"config"`
	Data   [][]float64 `json:"data"`
}

type modelInfo struct {
	Objects  int    `json:"objects"`
	Dims     int    `json:"dims"`
	MinPtsLB int    `json:"minPtsLB"`
	MinPtsUB int    `json:"minPtsUB"`
	Metric   string `json:"metric"`
	Distinct bool   `json:"distinct"`
}

type fitResponse struct {
	modelInfo
	FitMS float64 `json:"fitMillis"`
}

type scoreRequest struct {
	Queries [][]float64 `json:"queries"`
	// Workers, when positive, overrides the scoring pool width for this
	// request only (1 = sequential). Zero keeps the model's fitted
	// configuration.
	Workers int `json:"workers,omitempty"`
}

// maxScoreWorkers caps the per-request workers override; a request cannot
// conscript an unbounded number of goroutines.
const maxScoreWorkers = 256

type scoreResponse struct {
	Scores []jsonFloat `json:"scores"`
}

// jsonFloat marshals non-finite LOF values (possible for duplicate-heavy
// data without distinct mode) as JSON strings instead of failing the whole
// response: +Inf → "+Inf".
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func infoFor(m *lof.Model) modelInfo {
	cfg := m.Config()
	metric := cfg.Metric
	if metric == "" {
		metric = "euclidean"
	}
	if cfg.Weights != nil {
		metric = "weighted-euclidean"
	}
	return modelInfo{
		Objects:  m.Len(),
		Dims:     m.Dim(),
		MinPtsLB: cfg.MinPtsLB,
		MinPtsUB: cfg.MinPtsUB,
		Metric:   metric,
		Distinct: cfg.Distinct,
	}
}

// --- handlers -----------------------------------------------------------

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	var req fitRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Data) == 0 {
		writeError(w, http.StatusBadRequest, "fit requires a non-empty data array")
		return
	}
	det, err := req.Config.Detector()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	res, err := det.Fit(req.Data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, err := res.Model()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.SetModel(m)
	s.m.fitPoints.Add(int64(len(req.Data)))
	writeJSON(w, http.StatusOK, fitResponse{
		modelInfo: infoFor(m),
		FitMS:     float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if hook := testHookScoreStart; hook != nil {
		hook()
	}
	m := s.Model()
	if m == nil {
		writeError(w, http.StatusConflict, "no fitted model; POST /v1/fit first or start with -model")
		return
	}
	var req scoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "score requires a non-empty queries array")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	if req.Workers < 0 || req.Workers > maxScoreWorkers {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("workers must be in [0, %d], got %d", maxScoreWorkers, req.Workers))
		return
	}
	if req.Workers > 0 {
		m = m.WithWorkers(req.Workers)
	}
	scores, err := scoreChunked(r, m, req.Queries)
	if err != nil {
		if r.Context().Err() != nil {
			// The timeout middleware already answered; nothing to write.
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.m.batchPoints.Add(int64(len(req.Queries)))
	out := make([]jsonFloat, len(scores))
	for i, v := range scores {
		out[i] = jsonFloat(v)
	}
	writeJSON(w, http.StatusOK, scoreResponse{Scores: out})
}

// scoreChunkSize bounds how much scoring work happens between context
// checks, so a timed-out request stops burning CPU soon after its deadline.
const scoreChunkSize = 256

func scoreChunked(r *http.Request, m *lof.Model, queries [][]float64) ([]float64, error) {
	ctx := r.Context()
	out := make([]float64, 0, len(queries))
	for off := 0; off < len(queries); off += scoreChunkSize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := off + scoreChunkSize
		if end > len(queries) {
			end = len(queries)
		}
		chunk, err := m.ScoreBatch(queries[off:end])
		if err != nil {
			if off == 0 {
				return nil, err
			}
			// Row numbers in the error are chunk-relative; anchor them.
			return nil, fmt.Errorf("batch offset %d: %w", off, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	m := s.Model()
	if m == nil {
		writeError(w, http.StatusNotFound, "no fitted model")
		return
	}
	writeJSON(w, http.StatusOK, infoFor(m))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"model":  s.Model() != nil,
	})
}

// handleMetrics serves the counters as one JSON object, in expvar's own
// rendering, without requiring the process-global expvar page.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"requests":%s,"latency_us":%s,"batch_points_total":%s,"fit_points_total":%s,"in_flight":%s,"shed_total":%s}`,
		s.m.requests.String(), s.m.latencyUS.String(), s.m.batchPoints.String(),
		s.m.fitPoints.String(), s.m.inFlight.String(), s.m.shed.String())
	fmt.Fprintln(w)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
